// E2 — Fig. 7 of the paper: electrical signature of the dual-rail XOR
// when individual net capacitances are unbalanced.
//
//   (a) Cl31 = 16 fF   — level-3 output net co0 ("one important peak at
//                         the end of each phase")
//   (b) Cl21 = 16 fF   — level-2 net s0 (peak + downstream shift)
//   (c) Cl11 = Cl12 = 16 fF — level-1 nets m1, m2 (whole curve shifted)
//   (d) Cl11 = Cl12 = 32 fF — same nets, 4x default ("signature maximum")
//
// Reported per configuration: the S(t) sparkline, peak |S|, integrated
// |S|, and the phase where the first peak lands.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/stats.hpp"
#include "qdi/util/table.hpp"

namespace qg = qdi::gates;
namespace qs = qdi::sim;
namespace qp = qdi::power;
namespace qu = qdi::util;

namespace {

struct Sig {
  std::vector<double> s;
  /// Evaluation-time difference between the classes: how far the xor=0
  /// curve is shifted against the xor=1 curve ("the electrical curve of
  /// both sets are completely shifted" in fig. 7-d).
  double class_shift_ps = 0.0;
};

Sig signature(qg::XorStage& x) {
  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  qp::PowerModelParams pm;
  qu::VectorMean m0, m1;
  double valid0 = 0.0, valid1 = 0.0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      sim.clear_log();
      const std::vector<int> v{a, b};
      const auto cyc = env.send(v);
      const qp::PowerTrace t =
          qp::synthesize(sim.log(), cyc.t_start, x.env.period_ps, pm, nullptr);
      if ((a ^ b) == 0) {
        m0.add(t.samples());
        valid0 += (cyc.t_valid - cyc.t_start) / 2.0;
      } else {
        m1.add(t.samples());
        valid1 += (cyc.t_valid - cyc.t_start) / 2.0;
      }
    }
  }
  Sig sig;
  sig.s = qu::subtract(m0.mean(), m1.mean());
  sig.class_shift_ps = valid0 - valid1;
  return sig;
}

struct Config {
  const char* label;
  const char* paper_note;
  std::function<void(qg::XorStage&)> apply;
};

}  // namespace

int main() {
  bench::header("Fig. 7 — XOR signature vs load-capacitance imbalance (Cd = 8 fF)");

  const std::vector<Config> configs{
      {"balanced (fig. 6)", "reference",
       [](qg::XorStage&) {}},
      {"(a) Cl31 = 16 fF", "peak at end of each phase",
       [](qg::XorStage& x) { x.nl.net(x.co0).cap_ff = 16.0; }},
      {"(b) Cl21 = 16 fF", "two peaks, downstream shift",
       [](qg::XorStage& x) { x.nl.net(x.s0).cap_ff = 16.0; }},
      {"(c) Cl11 = Cl12 = 16 fF", "curves shifted from level 1",
       [](qg::XorStage& x) {
         x.nl.net(x.m[0]).cap_ff = 16.0;
         x.nl.net(x.m[1]).cap_ff = 16.0;
       }},
      {"(d) Cl11 = Cl12 = 32 fF", "signature maximum",
       [](qg::XorStage& x) {
         x.nl.net(x.m[0]).cap_ff = 32.0;
         x.nl.net(x.m[1]).cap_ff = 32.0;
       }},
  };

  qu::Table table({"config", "peak |S| (uA)", "integral |S| (uA*smp)",
                   "class shift (ps)", "paper's reading"});
  table.set_precision(3);

  for (const Config& cfg : configs) {
    qg::XorStage x = qg::build_xor_stage();
    cfg.apply(x);
    const Sig sig = signature(x);
    bench::print_series(cfg.label, sig.s);
    table.add_row({cfg.label, table.format_double(qu::max_abs(sig.s)),
                   table.format_double(qu::sum_abs(sig.s)),
                   table.format_double(sig.class_shift_ps), cfg.paper_note});
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\nexpected shape (paper): any imbalance produces clear peaks; the\n"
      "deeper in the path the imbalance sits, the earlier the curves diverge,\n"
      "and (d)'s doubled imbalance shifts the classes furthest apart (the\n"
      "class-shift column; the sample-integral saturates once the curves are\n"
      "fully disjoint, so the shift is the faithful 'maximum' metric).\n");
  return 0;
}
