// E1 — Fig. 6 of the paper: electrical signature S(t) of the dual-rail
// XOR gate with all load capacitances equal (Cl_ij = 8 fF), over the
// evaluation phase and the return-to-zero phase.
//
// S(t) = A0(t) - A1(t), the difference between the average current of the
// xor=0 computations and the xor=1 computations. In the paper, balanced
// caps leave only "a few peaks due to internal gate capacitance"; in this
// reproduction internal parasitics are modelled as uniform per node, so
// the balanced signature is numerically zero — the comparison row
// (see fig7_cap_sweep) shows what any imbalance does to it.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/stats.hpp"

namespace qg = qdi::gates;
namespace qs = qdi::sim;
namespace qp = qdi::power;
namespace qu = qdi::util;

namespace {

struct Signature {
  std::vector<double> a0, a1, s;
  double t_valid = 0.0, t_empty = 0.0;
};

Signature xor_signature(qg::XorStage& x) {
  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  qp::PowerModelParams pm;
  qu::VectorMean m0, m1;
  Signature sig;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      sim.clear_log();
      const std::vector<int> v{a, b};
      const auto cyc = env.send(v);
      const qp::PowerTrace t =
          qp::synthesize(sim.log(), cyc.t_start, x.env.period_ps, pm, nullptr);
      ((a ^ b) == 0 ? m0 : m1).add(t.samples());
      sig.t_valid = cyc.t_valid - cyc.t_start;
      sig.t_empty = cyc.t_empty - cyc.t_start;
    }
  }
  sig.a0 = m0.mean();
  sig.a1 = m1.mean();
  sig.s = qu::subtract(sig.a0, sig.a1);
  return sig;
}

}  // namespace

int main() {
  bench::header("Fig. 6 — dual-rail XOR signature, balanced caps (Cl = 8 fF)");
  qg::XorStage x = qg::build_xor_stage();
  const Signature sig = xor_signature(x);

  std::printf("phase boundaries: valid at %.0f ps, empty at %.0f ps "
              "(evaluation | return-to-zero)\n",
              sig.t_valid, sig.t_empty);
  bench::print_series("A0 (xor=0 mean current)", sig.a0);
  bench::print_series("A1 (xor=1 mean current)", sig.a1);
  bench::print_series("S = A0 - A1", sig.s);

  const double peak = qu::max_abs(sig.s);
  const double a_peak = qu::max_abs(sig.a0);
  std::printf("\n  signature peak |S| = %.6f uA  (%.4f %% of the A0 peak)\n",
              peak, a_peak > 0 ? 100.0 * peak / a_peak : 0.0);
  std::printf("  paper's reading: balanced caps leave only residual internal-"
              "capacitance peaks;\n  here internal caps are uniform, so the "
              "balanced signature vanishes.\n");
  return 0;
}
