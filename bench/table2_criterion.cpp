// E4 — Table 2 of the paper: the dissymmetry criterion dA over the
// channels of the QDI AES crypto-processor, comparing
//   AES_v1 — hierarchical place-and-route (constrained block regions),
//   AES_v2 — flat place-and-route (the conventional flow),
// across several seeds of the flat flow ("the most sensitive channels are
// never the same from one place and route to another").
//
// Each run is a flow-only campaign on the registry's aes_core target
// (tens of thousands of cells — criterion studies only, no simulation).
//
// Paper's numbers for reference: flat max dA up to 1.25; hierarchical max
// dA = 0.13; hierarchical core area ~20% larger.
#include <cstdio>
#include <set>

#include "bench_common.hpp"
#include "qdi/qdi.hpp"

namespace qc = qdi::core;
namespace qp = qdi::pnr;
namespace qm = qdi::campaign;
namespace qu = qdi::util;

namespace {
qc::FlowOptions flow_options(qp::FlowMode mode, std::uint64_t seed) {
  qc::FlowOptions opt;
  opt.placer.mode = mode;
  opt.placer.seed = seed;
  opt.placer.moves_per_cell = 40;
  opt.placer.stages = 60;
  return opt;
}
}  // namespace

int main() {
  bench::header("Table 2 — criterion dA: hierarchical (AES_v1) vs flat (AES_v2)");
  std::printf("building the QDI AES crypto-processor netlist (fig. 8)...\n");

  // Build the fig. 8 netlist once; every flow run below campaigns over a
  // fresh copy of this prebuilt instance.
  const qm::CircuitTarget core = qm::prebuilt(qm::aes_core().build(0));

  // Table 2's criterion population is the dual-rail data channels; the
  // 1-of-N code-group channels (decode levels, minterm layers, OR-tree
  // layers) are this reproduction's extension and are reported separately.
  qu::Table summary({"version", "seed", "max dA (dual)", "mean dA (dual)",
                     "dual dA>0.5", "max dA (groups)", "core area (mm^2)",
                     "HPWL (m)"});
  summary.set_precision(3);

  qu::Table critical({"version", "channel", "C_lo (fF)", "C_hi (fF)", "dA"});
  critical.set_precision(2);

  std::set<std::string> flat_worst;
  double flat_max_da = 0.0, hier_max_da = 0.0;
  double flat_area = 0.0, hier_area = 0.0;
  bool printed_size = false;

  struct Run {
    qp::FlowMode mode;
    std::uint64_t seed;
    const char* label;
  };
  const Run runs[] = {
      {qp::FlowMode::Hierarchical, 1, "AES_v1 hier"},
      {qp::FlowMode::Flat, 1, "AES_v2 flat"},
      {qp::FlowMode::Flat, 2, "AES_v2 flat"},
      {qp::FlowMode::Flat, 3, "AES_v2 flat"},
  };

  for (const Run& run : runs) {
    const qm::CampaignResult res =
        qm::Campaign()
            .target(core)
            .flow(flow_options(run.mode, run.seed))
            .run();
    if (!printed_size) {
      std::printf("  %zu gates, %zu nets, %zu dual-rail channels\n\n",
                  res.nl.num_gates(), res.nl.num_nets(),
                  res.nl.num_channels());
      printed_size = true;
    }
    const qc::FlowResult& r = *res.flow;

    std::vector<qc::ChannelCriterion> dual, groups;
    for (const auto& ch : res.criteria) {
      if (res.nl.channel(ch.id).arity() == 2)
        dual.push_back(ch);
      else
        groups.push_back(ch);
    }
    std::size_t hot = 0;
    for (const auto& ch : dual)
      if (ch.dA > 0.5) ++hot;
    summary.add_row(
        {run.label, std::to_string(run.seed),
         summary.format_double(qc::max_dA(dual)),
         summary.format_double(qc::mean_dA(dual)), std::to_string(hot),
         summary.format_double(qc::max_dA(groups)),
         summary.format_double(r.placement.core_area_um2() * 1e-6),
         summary.format_double(r.extraction.total_wirelength_um * 1e-6)});

    for (const auto& ch : qc::most_critical(dual, 3)) {
      critical.add_row({std::string(run.label) + " s" + std::to_string(run.seed),
                        ch.name, critical.format_double(ch.cap_min_ff),
                        critical.format_double(ch.cap_max_ff),
                        critical.format_double(ch.dA)});
    }
    if (run.mode == qp::FlowMode::Flat) {
      flat_max_da = std::max(flat_max_da, qc::max_dA(dual));
      flat_area = r.placement.core_area_um2();
      flat_worst.insert(qc::most_critical(dual, 1)[0].name);
    } else {
      hier_max_da = qc::max_dA(dual);
      hier_area = r.placement.core_area_um2();
    }
  }

  std::printf("%s\n", summary.to_string().c_str());
  std::printf("most critical channels (paper's Table 2 rows):\n%s\n",
              critical.to_string().c_str());

  std::printf("flat worst-channel identities across seeds: %zu distinct of 3 "
              "runs\n  (paper: \"never the same from one place and route to "
              "another\")\n", flat_worst.size());
  std::printf("\nmax dA:   flat = %.3f   hierarchical = %.3f   ratio = %.1fx\n",
              flat_max_da, hier_max_da,
              hier_max_da > 0 ? flat_max_da / hier_max_da : 0.0);
  std::printf("core area: hier/flat = %.2f (paper: ~1.20)\n",
              flat_area > 0 ? hier_area / flat_area : 0.0);
  std::printf("paper's reference: flat up to dA = 1.25, hierarchical <= 0.13\n");
  return 0;
}
