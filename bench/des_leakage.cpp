// DES companion experiment (the paper builds on ref. [5], "DPA on QDI
// asynchronous circuits: Concrete Results", which studied QDI DES):
// known-key DPA bias on a full gate-level DES round, before and after
// rail-capacitance repair, using the paper's historical selection
// function D(C1, P6, K0) = SBOX1(P6 xor K0)(C1).
//
// Each layout variant is one campaign on the registry's des_round
// target: the plaintext sweep drives the round's R half; the bias splits
// traces on the first output bit of SBOX1's first-round computation.
#include <cstdio>

#include "bench_common.hpp"
#include "qdi/qdi.hpp"

namespace qc = qdi::core;
namespace qm = qdi::campaign;
namespace qu = qdi::util;

namespace {
constexpr std::uint64_t kSubkey = 0x1A2B3C4D5E6FULL & 0xffffffffffffULL;
}  // namespace

int main() {
  bench::header("DES round — known-key DPA bias (companion-study style)");
  std::printf("building the gate-level DES round (8 balanced S-Boxes)...\n");

  qu::Table t({"layout", "max dA", "mean dA", "bias peak (uA)",
               "bias integral"});
  t.set_precision(3);

  for (const bool repaired : {false, true}) {
    qc::FlowOptions flow;
    flow.placer.mode = qdi::pnr::FlowMode::Flat;
    flow.placer.seed = 3;
    flow.placer.moves_per_cell = 16;

    // D(C1, P6, K0): single selection bit; the known-key bias of the
    // attack outcome is the designer-side split at the true key chunk
    // K0 = the top 6 bits of the round key.
    qm::Dpa dpa;
    dpa.bits = {0};

    qm::Campaign campaign;
    campaign.target(qm::des_round())
        .key(kSubkey)
        .seed(777)
        .traces(500)
        .threads(4)
        .flow(flow)
        .attack(dpa);
    if (repaired)
      campaign.prepare(
          [](qdi::netlist::Netlist& nl) { qc::repair_rail_caps(nl, 0.0); });

    const qm::CampaignResult r = campaign.run();
    t.add_row({repaired ? "flat + repair" : "flat extracted",
               t.format_double(r.max_da), t.format_double(r.mean_da),
               t.format_double(r.attack->known_key_bias_peak),
               t.format_double(r.attack->known_key_bias_integral)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected: the extracted layout leaks (non-zero bias at the\n"
              "true split); equalizing rail capacitances drives the DPA bias\n"
              "of the same split to zero — the [5]-style concrete result.\n");
  return 0;
}
