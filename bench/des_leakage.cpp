// DES companion experiment (the paper builds on ref. [5], "DPA on QDI
// asynchronous circuits: Concrete Results", which studied QDI DES):
// known-key DPA bias on a full gate-level DES round, before and after
// rail-capacitance repair, using the paper's historical selection
// function D(C1, P6, K0) = SBOX1(P6 xor K0)(C1).
//
// The plaintext sweep drives the round's R half; the bias splits traces
// on the first output bit of SBOX1's first-round computation.
#include <cstdio>

#include "bench_common.hpp"
#include "qdi/core/criterion.hpp"
#include "qdi/core/secure_flow.hpp"
#include "qdi/crypto/des.hpp"
#include "qdi/dpa/acquisition.hpp"
#include "qdi/dpa/dpa.hpp"
#include "qdi/gates/des_datapath.hpp"
#include "qdi/util/table.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;
namespace qc = qdi::core;
namespace qd = qdi::dpa;
namespace qu = qdi::util;

namespace {
constexpr std::uint64_t kSubkey = 0x1A2B3C4D5E6FULL & 0xffffffffffffULL;

/// Acquire traces for the DES round: random R (L = 0), fixed subkey.
/// plaintext(i) records the 6-bit input of SBOX1 (what D consumes).
qd::TraceSet acquire_round(qg::DesRoundSlice& slice, std::size_t n,
                           std::uint64_t seed) {
  qs::Simulator sim(slice.nl);
  qs::FourPhaseEnv env(sim, slice.env);
  return qd::acquire(
      sim, env,
      [](qdi::util::Rng& rng) {
        const std::uint32_t r = static_cast<std::uint32_t>(rng.next());
        std::vector<int> values;
        values.reserve(112);
        for (int i = 0; i < 32; ++i) values.push_back(0);  // L = 0
        for (int i = 0; i < 32; ++i)
          values.push_back(static_cast<int>((r >> (31 - i)) & 1));
        for (int i = 0; i < 48; ++i)
          values.push_back(static_cast<int>((kSubkey >> (47 - i)) & 1));
        // Record SBOX1's 6-bit keyed input so D can re-derive classes:
        // E(R) bits 1..6 xor K bits 1..6.
        std::uint8_t six = 0;
        const auto et = qdi::crypto::des_expansion_table();
        for (int j = 0; j < 6; ++j) {
          const int bit = static_cast<int>((r >> (32 - et[static_cast<std::size_t>(j)])) & 1);
          six = static_cast<std::uint8_t>((six << 1) | bit);
        }
        return std::make_pair(std::move(values),
                              std::vector<std::uint8_t>{six});
      },
      [n, seed] {
        qd::Acquisition cfg;
        cfg.num_traces = n;
        cfg.seed = seed;
        return cfg;
      }());
}
}  // namespace

int main() {
  bench::header("DES round — known-key DPA bias (companion-study style)");
  std::printf("building the gate-level DES round (8 balanced S-Boxes)...\n");

  qu::Table t({"layout", "max dA", "mean dA", "bias peak (uA)",
               "bias integral"});
  t.set_precision(3);

  for (const bool repaired : {false, true}) {
    qg::DesRoundSlice slice = qg::build_des_round_slice();
    qc::FlowOptions flow;
    flow.placer.mode = qdi::pnr::FlowMode::Flat;
    flow.placer.seed = 3;
    flow.placer.moves_per_cell = 16;
    qc::run_secure_flow(slice.nl, flow);
    if (repaired) qc::repair_rail_caps(slice.nl, 0.0);
    const auto crit = qc::evaluate_criterion(slice.nl);

    const qd::TraceSet ts = acquire_round(slice, 500, 777);
    // D(C1, P6, K0) with plaintext(i)[0] = the 6 bits of E(R) entering
    // SBOX1; the designer-side (known-key) split uses the true key chunk
    // K0 = the top 6 bits of the round key.
    const unsigned k6 = static_cast<unsigned>((kSubkey >> 42) & 0x3f);
    const qd::SelectionFn d = qd::des_sbox_selection(0, 0);
    const qd::BiasResult bias = qd::dpa_bias(ts, d, k6);

    t.add_row({repaired ? "flat + repair" : "flat extracted",
               t.format_double(qc::max_dA(crit)),
               t.format_double(qc::mean_dA(crit)),
               t.format_double(bias.peak), t.format_double(bias.integrated)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected: the extracted layout leaks (non-zero bias at the\n"
              "true split); equalizing rail capacitances drives the DPA bias\n"
              "of the same split to zero — the [5]-style concrete result.\n");
  return 0;
}
