// E5 — Fig. 9 of the paper: the constrained floorplan of the AES cipher
// block. Prints the region map produced by the hierarchical flow (block
// name, position, size, occupancy) and the area cost against the flat
// flow, swept over the region-padding factor (the paper's flow pays ~20%
// core area for the constraint).
#include <cstdio>

#include "bench_common.hpp"
#include "qdi/gates/aes_datapath.hpp"
#include "qdi/pnr/placement.hpp"
#include "qdi/util/table.hpp"

namespace qg = qdi::gates;
namespace qp = qdi::pnr;
namespace qu = qdi::util;

int main() {
  bench::header("Fig. 9 — constrained floorplan of the AES cipher block");
  const qg::AesCoreNetlist aes = qg::build_aes_core();

  qp::PlacerOptions hier;
  hier.mode = qp::FlowMode::Hierarchical;
  hier.seed = 1;
  hier.moves_per_cell = 8;  // floorplan geometry, not QoR, is the point here
  hier.stages = 16;
  const qp::Placement p = qp::place(aes.nl, hier);

  // Occupancy per region.
  std::vector<std::size_t> occupancy(p.regions.size(), 0);
  for (int r : p.region_of_cell) ++occupancy[static_cast<std::size_t>(r)];

  qu::Table regions({"block (fig. 8 name)", "x (um)", "y (um)", "w (um)",
                     "h (um)", "cells", "util %"});
  regions.set_precision(0);
  for (std::size_t g = 0; g < p.regions.size(); ++g) {
    const qp::Region& reg = p.regions[g];
    const double x = reg.c0 * hier.site_pitch_um;
    const double y = reg.r0 * hier.row_height_um;
    const double w = reg.width() * hier.site_pitch_um;
    const double h = reg.height() * hier.row_height_um;
    regions.add_row({reg.name, regions.format_double(x), regions.format_double(y),
                     regions.format_double(w), regions.format_double(h),
                     std::to_string(occupancy[g]),
                     regions.format_double(100.0 * static_cast<double>(occupancy[g]) /
                                           static_cast<double>(reg.capacity()))});
  }
  std::printf("%s\n", regions.to_string().c_str());

  // Area sweep over region padding.
  qu::Table area({"region padding", "hier core area (mm^2)", "flat core area",
                  "overhead %"});
  area.set_precision(3);
  qp::PlacerOptions flat = hier;
  flat.mode = qp::FlowMode::Flat;
  const double flat_area = qp::place(aes.nl, flat).core_area_um2();
  for (double pad : {1.05, 1.10, 1.20, 1.35, 1.50}) {
    qp::PlacerOptions opt = hier;
    opt.region_padding = pad;
    const double a = qp::place(aes.nl, opt).core_area_um2();
    area.add_row({area.format_double(pad), area.format_double(a * 1e-6),
                  area.format_double(flat_area * 1e-6),
                  area.format_double(100.0 * (a / flat_area - 1.0))});
  }
  std::printf("%s\n", area.to_string().c_str());
  std::printf("paper's reference: the hierarchical AES_v1 core is ~20%% larger "
              "than the flat AES_v2.\n");
  return 0;
}
