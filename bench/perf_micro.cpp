// E8 — google-benchmark microbenchmarks: throughput of the pillars the
// experiments stand on (event simulation, trace synthesis, DPA bias,
// placement annealing). These quantify the cost of reproducing the
// paper's experiments and guard against performance regressions.
#include <benchmark/benchmark.h>

#include "qdi/qdi.hpp"

namespace qg = qdi::gates;
namespace qs = qdi::sim;
namespace qp = qdi::power;
namespace qd = qdi::dpa;
namespace qc = qdi::core;

static void BM_XorStageCycle(benchmark::State& state) {
  qg::XorStage x = qg::build_xor_stage();
  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  int v = 0;
  for (auto _ : state) {
    const std::vector<int> values{v & 1, (v >> 1) & 1};
    benchmark::DoNotOptimize(env.send(values));
    sim.clear_log();
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XorStageCycle);

static void BM_AesSliceCycle(benchmark::State& state) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  qs::Simulator sim(slice.nl);
  qs::FourPhaseEnv env(sim, slice.env);
  env.apply_reset();
  unsigned p = 0;
  for (auto _ : state) {
    std::vector<int> values;
    for (int b = 0; b < 8; ++b) values.push_back((p >> b) & 1);
    for (int b = 0; b < 8; ++b) values.push_back(0);
    benchmark::DoNotOptimize(env.send(values));
    sim.clear_log();
    ++p;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AesSliceCycle);

static void BM_TraceSynthesis(benchmark::State& state) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  qs::Simulator sim(slice.nl);
  qs::FourPhaseEnv env(sim, slice.env);
  env.apply_reset();
  std::vector<int> values(16, 0);
  values[3] = 1;
  const auto cyc = env.send(values);
  const qp::PowerModelParams pm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qp::synthesize(sim.log(), cyc.t_start, slice.env.period_ps, pm, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSynthesis);

static void BM_DpaBias(benchmark::State& state) {
  // Synthetic set sized like an attack batch.
  qdi::util::Rng rng(1);
  qd::TraceSet ts;
  for (int i = 0; i < 512; ++i) {
    qp::PowerTrace t(0.0, 10.0, 512);
    for (std::size_t j = 0; j < t.size(); ++j) t[j] = rng.gaussian();
    ts.add(std::move(t), {rng.byte()});
  }
  const auto d = qd::aes_sbox_selection(0, 0);
  unsigned g = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qd::dpa_bias(ts, d, g++ & 0xff));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DpaBias);

static void BM_FlatPlacementSlice(benchmark::State& state) {
  const qdi::netlist::Netlist nl = qg::build_aes_byte_slice().nl;
  qp::PowerModelParams unused;
  (void)unused;
  for (auto _ : state) {
    qdi::pnr::PlacerOptions opt;
    opt.mode = qdi::pnr::FlowMode::Flat;
    opt.seed = static_cast<std::uint64_t>(state.iterations());
    opt.moves_per_cell = 10;
    opt.stages = 20;
    benchmark::DoNotOptimize(qdi::pnr::place(nl, opt));
  }
}
BENCHMARK(BM_FlatPlacementSlice)->Unit(benchmark::kMillisecond);

static void BM_CriterionEvaluation(benchmark::State& state) {
  qdi::netlist::Netlist nl = qg::build_aes_byte_slice().nl;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qc::evaluate_criterion(nl));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(nl.num_channels()));
}
BENCHMARK(BM_CriterionEvaluation);

// Campaign acquisition throughput: the batched parallel TraceSource fan-
// out, per thread count. Bit-identical results across rows (asserted by
// test_campaign); this measures the wall-clock side of that contract.
// Runs the default (compiled) engine, end to end including target build.
static void BM_CampaignAcquire(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const qdi::campaign::CircuitTarget target = qdi::campaign::xor_stage();
  for (auto _ : state) {
    const qdi::campaign::CampaignResult r = qdi::campaign::Campaign()
                                                .target(target)
                                                .traces(64)
                                                .threads(threads)
                                                .seed(1)
                                                .run();
    benchmark::DoNotOptimize(r.traces.size());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_CampaignAcquire)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Interpreted-vs-compiled acquisition pair: identical 32-trace batches
// from one prebuilt AES byte slice, differing only in the engine. The CI
// bench job prints the BM_CompiledAcquire / BM_ReferenceAcquire speedup
// from these two rows. (Traces are bit-identical between the rows —
// tests/test_compiled_sim.cpp.)
static void acquire_engine_bench(benchmark::State& state,
                                 qdi::sim::EngineKind kind) {
  const qdi::campaign::TargetInstance inst =
      qdi::campaign::aes_byte_slice().build(0x2b);
  qdi::campaign::SimTraceSourceOptions opt;
  opt.engine = kind;
  // Source (and, for the compiled row, netlist compilation) constructed
  // once outside the timed loop: the rows differ only in per-trace
  // engine cost, exactly what the CI speedup line divides.
  qdi::campaign::SimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qdi::campaign::acquire_batch(src, 32, 1).size());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

static void BM_ReferenceAcquire(benchmark::State& state) {
  acquire_engine_bench(state, qdi::sim::EngineKind::Reference);
}
BENCHMARK(BM_ReferenceAcquire)->Unit(benchmark::kMillisecond);

static void BM_CompiledAcquire(benchmark::State& state) {
  acquire_engine_bench(state, qdi::sim::EngineKind::Compiled);
}
BENCHMARK(BM_CompiledAcquire)->Unit(benchmark::kMillisecond);

// End-to-end campaign including the DPA analysis stage (the per-scenario
// unit of bench/dpa_key_recovery), on each engine. BM_CampaignDpaEndToEnd
// is pinned to the reference interpreter as the baseline row;
// BM_CompiledDpaEndToEnd is the same campaign on the compiled kernel.
static void dpa_end_to_end_bench(benchmark::State& state,
                                 qdi::sim::EngineKind kind) {
  const qdi::campaign::CircuitTarget target = qdi::campaign::des_sbox_slice();
  for (auto _ : state) {
    const qdi::campaign::CampaignResult r =
        qdi::campaign::Campaign()
            .target(target)
            .key(0x2b)
            .traces(32)
            .threads(2)
            .engine(kind)
            .attack(qdi::campaign::Dpa{})
            .run();
    benchmark::DoNotOptimize(r.attack->best_guess);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

static void BM_CampaignDpaEndToEnd(benchmark::State& state) {
  dpa_end_to_end_bench(state, qdi::sim::EngineKind::Reference);
}
BENCHMARK(BM_CampaignDpaEndToEnd)->Unit(benchmark::kMillisecond);

static void BM_CompiledDpaEndToEnd(benchmark::State& state) {
  dpa_end_to_end_bench(state, qdi::sim::EngineKind::Compiled);
}
BENCHMARK(BM_CompiledDpaEndToEnd)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
