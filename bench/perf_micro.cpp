// E8 — google-benchmark microbenchmarks: throughput of the pillars the
// experiments stand on (event simulation, trace synthesis, DPA bias,
// placement annealing). These quantify the cost of reproducing the
// paper's experiments and guard against performance regressions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "qdi/qdi.hpp"

namespace qg = qdi::gates;
namespace qs = qdi::sim;
namespace qp = qdi::power;
namespace qd = qdi::dpa;
namespace qc = qdi::core;

static void BM_XorStageCycle(benchmark::State& state) {
  qg::XorStage x = qg::build_xor_stage();
  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  int v = 0;
  for (auto _ : state) {
    const std::vector<int> values{v & 1, (v >> 1) & 1};
    benchmark::DoNotOptimize(env.send(values));
    sim.clear_log();
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XorStageCycle);

static void BM_AesSliceCycle(benchmark::State& state) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  qs::Simulator sim(slice.nl);
  qs::FourPhaseEnv env(sim, slice.env);
  env.apply_reset();
  unsigned p = 0;
  for (auto _ : state) {
    std::vector<int> values;
    for (int b = 0; b < 8; ++b) values.push_back((p >> b) & 1);
    for (int b = 0; b < 8; ++b) values.push_back(0);
    benchmark::DoNotOptimize(env.send(values));
    sim.clear_log();
    ++p;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AesSliceCycle);

static void BM_TraceSynthesis(benchmark::State& state) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  qs::Simulator sim(slice.nl);
  qs::FourPhaseEnv env(sim, slice.env);
  env.apply_reset();
  std::vector<int> values(16, 0);
  values[3] = 1;
  const auto cyc = env.send(values);
  const qp::PowerModelParams pm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qp::synthesize(sim.log(), cyc.t_start, slice.env.period_ps, pm, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSynthesis);

static void BM_DpaBias(benchmark::State& state) {
  // Synthetic set sized like an attack batch.
  qdi::util::Rng rng(1);
  qd::TraceSet ts;
  for (int i = 0; i < 512; ++i) {
    qp::PowerTrace t(0.0, 10.0, 512);
    for (std::size_t j = 0; j < t.size(); ++j) t[j] = rng.gaussian();
    ts.add(std::move(t), {rng.byte()});
  }
  const auto d = qd::aes_sbox_selection(0, 0);
  unsigned g = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qd::dpa_bias(ts, d, g++ & 0xff));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DpaBias);

static void BM_FlatPlacementSlice(benchmark::State& state) {
  const qdi::netlist::Netlist nl = qg::build_aes_byte_slice().nl;
  qp::PowerModelParams unused;
  (void)unused;
  for (auto _ : state) {
    qdi::pnr::PlacerOptions opt;
    opt.mode = qdi::pnr::FlowMode::Flat;
    opt.seed = static_cast<std::uint64_t>(state.iterations());
    opt.moves_per_cell = 10;
    opt.stages = 20;
    benchmark::DoNotOptimize(qdi::pnr::place(nl, opt));
  }
}
BENCHMARK(BM_FlatPlacementSlice)->Unit(benchmark::kMillisecond);

static void BM_CriterionEvaluation(benchmark::State& state) {
  qdi::netlist::Netlist nl = qg::build_aes_byte_slice().nl;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qc::evaluate_criterion(nl));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(nl.num_channels()));
}
BENCHMARK(BM_CriterionEvaluation);

// Campaign acquisition throughput: the batched parallel TraceSource fan-
// out, per thread count. Bit-identical results across rows (asserted by
// test_campaign); this measures the wall-clock side of that contract.
// Runs the default (compiled) engine, end to end including target build.
static void BM_CampaignAcquire(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const qdi::campaign::CircuitTarget target = qdi::campaign::xor_stage();
  for (auto _ : state) {
    const qdi::campaign::CampaignResult r = qdi::campaign::Campaign()
                                                .target(target)
                                                .traces(64)
                                                .threads(threads)
                                                .seed(1)
                                                .run();
    benchmark::DoNotOptimize(r.traces.size());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_CampaignAcquire)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Run a persistent pool at steady state: acquire_chunked reuses the
// pool's member segment buffer (capacity kept across calls), so after
// warm-up the timed loop is allocation-free — it measures per-trace
// engine cost plus the segment memcpy both engines share, not TraceSet
// construction churn. This is the fused campaign's production feed.
static void steady_state_acquire(qdi::campaign::WorkerPool& pool,
                                 std::size_t traces) {
  pool.acquire_chunked(traces, 1, traces,
                       [](const qdi::dpa::TraceSet& seg, std::size_t) {
                         benchmark::DoNotOptimize(seg.size());
                       });
}

// Scalar-engine acquisition rows: identical 32-trace batches from one
// prebuilt target, differing only in the engine. The CI bench job
// prints the BM_CompiledAcquire / BM_ReferenceAcquire speedup from the
// AES pair, and divides the per-trace times of the des_round /
// des_sbox_slice compiled rows by their BM_BatchAcquire* twins below.
// (Traces are bit-identical between the rows — tests/test_compiled_sim
// and tests/test_batch_sim.)
static void acquire_engine_bench(benchmark::State& state,
                                 const qdi::campaign::TargetInstance& inst,
                                 qdi::sim::EngineKind kind,
                                 std::size_t traces) {
  qdi::campaign::SimTraceSourceOptions opt;
  opt.engine = kind;
  // Source (and, for the compiled rows, netlist compilation) constructed
  // once outside the timed loop: the rows differ only in per-trace
  // engine cost, exactly what the CI speedup lines divide.
  qdi::campaign::SimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);
  // The pool persists across iterations so its scratch slots and chunk
  // buffer reach steady state: the loop measures per-trace acquisition
  // cost, not pool setup.
  qdi::campaign::WorkerPool pool(src, 1);
  for (auto _ : state) {
    steady_state_acquire(pool, traces);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(traces));
}

static const qdi::campaign::TargetInstance& aes_workload() {
  static const qdi::campaign::TargetInstance inst =
      qdi::campaign::aes_byte_slice().build(0x2b);
  return inst;
}

static void BM_ReferenceAcquire(benchmark::State& state) {
  acquire_engine_bench(state, aes_workload(), qdi::sim::EngineKind::Reference,
                       32);
}
BENCHMARK(BM_ReferenceAcquire)->Unit(benchmark::kMillisecond);

static void BM_CompiledAcquire(benchmark::State& state) {
  acquire_engine_bench(state, aes_workload(), qdi::sim::EngineKind::Compiled,
                       32);
}
BENCHMARK(BM_CompiledAcquire)->Unit(benchmark::kMillisecond);

static void BM_CompiledAcquireDes(benchmark::State& state) {
  // Same workload as BM_BatchAcquire: the per-trace quotient of this
  // row and that one is the guarded batch-kernel speedup.
  static const qdi::campaign::TargetInstance inst =
      qdi::campaign::des_round().build(0x2b);
  acquire_engine_bench(state, inst, qdi::sim::EngineKind::Compiled, 32);
}
BENCHMARK(BM_CompiledAcquireDes)->Unit(benchmark::kMillisecond);

static void BM_CompiledAcquireSbox(benchmark::State& state) {
  // Same workload as BM_BatchAcquireSbox.
  static const qdi::campaign::TargetInstance inst =
      qdi::campaign::des_sbox_slice().build(0x2b);
  acquire_engine_bench(state, inst, qdi::sim::EngineKind::Compiled, 32);
}
BENCHMARK(BM_CompiledAcquireSbox)->Unit(benchmark::kMillisecond);

// Batch-engine acquisition rows: the same per-trace contract as the
// compiled rows (bit-identical traces — tests/test_batch_sim.cpp), but
// 64 lanes advance per machine word. Dividing the per-trace times of
// BM_CompiledAcquireDes and BM_BatchAcquire (same des_round workload) is
// the headline speedup of the batch kernel; the CI bench job prints and
// guards that ratio, with the sbox and aes pairs alongside. The
// mean_lane_occupancy counter reports how many of the 64 lanes commit
// per merged event pop — the lockstep quality the speedup rides on.
static void batch_acquire_bench(benchmark::State& state,
                                const qdi::campaign::TargetInstance& inst,
                                std::size_t traces) {
  qdi::campaign::SimTraceSourceOptions opt;
  opt.engine = qdi::sim::EngineKind::Batch;
  // Source (batch compilation, lane state, epoch) constructed once
  // outside the timed loop, mirroring acquire_engine_bench.
  qdi::campaign::BatchSimTraceSource src(inst.nl, inst.env, inst.stimulus,
                                         opt);
  // Persistent pool, as in acquire_engine_bench: steady-state scratch.
  qdi::campaign::WorkerPool pool(src, 1);
  for (auto _ : state) {
    steady_state_acquire(pool, traces);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(traces));
  state.counters["mean_lane_occupancy"] = src.mean_lane_occupancy();
}

static void BM_BatchAcquireAes(benchmark::State& state) {
  static const qdi::campaign::TargetInstance inst =
      qdi::campaign::aes_byte_slice().build(0x2b);
  batch_acquire_bench(state, inst, 64);
}
BENCHMARK(BM_BatchAcquireAes)->Unit(benchmark::kMillisecond);

static void BM_BatchAcquire(benchmark::State& state) {
  // des_round: the heaviest simulatable target (same host as the
  // scheduler rows), one full 64-lane block per iteration.
  static const qdi::campaign::TargetInstance inst =
      qdi::campaign::des_round().build(0x2b);
  batch_acquire_bench(state, inst, 64);
}
BENCHMARK(BM_BatchAcquire)->Unit(benchmark::kMillisecond);

static void BM_BatchAcquireSbox(benchmark::State& state) {
  static const qdi::campaign::TargetInstance inst =
      qdi::campaign::des_sbox_slice().build(0x2b);
  batch_acquire_bench(state, inst, 64);
}
BENCHMARK(BM_BatchAcquireSbox)->Unit(benchmark::kMillisecond);

// End-to-end campaign including the DPA analysis stage (the per-scenario
// unit of bench/dpa_key_recovery), on each engine. BM_CampaignDpaEndToEnd
// is pinned to the reference interpreter as the baseline row;
// BM_CompiledDpaEndToEnd is the same campaign on the compiled kernel.
static void dpa_end_to_end_bench(benchmark::State& state,
                                 qdi::sim::EngineKind kind) {
  const qdi::campaign::CircuitTarget target = qdi::campaign::des_sbox_slice();
  for (auto _ : state) {
    const qdi::campaign::CampaignResult r =
        qdi::campaign::Campaign()
            .target(target)
            .key(0x2b)
            .traces(32)
            .threads(2)
            .engine(kind)
            .attack(qdi::campaign::Dpa{})
            .run();
    benchmark::DoNotOptimize(r.attack->best_guess);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

static void BM_CampaignDpaEndToEnd(benchmark::State& state) {
  dpa_end_to_end_bench(state, qdi::sim::EngineKind::Reference);
}
BENCHMARK(BM_CampaignDpaEndToEnd)->Unit(benchmark::kMillisecond);

static void BM_CompiledDpaEndToEnd(benchmark::State& state) {
  dpa_end_to_end_bench(state, qdi::sim::EngineKind::Compiled);
}
BENCHMARK(BM_CompiledDpaEndToEnd)->Unit(benchmark::kMillisecond);

// Scheduler A/B rows: identical acquisition batches from one prebuilt
// victim, differing only in the compiled kernel's event queue (time
// wheel vs binary heap; traces are bit-identical — see
// tests/test_compiled_sim.cpp and the FuzzScheduler suite). The host is
// the DES Feistel round — the simulatable registry target with the
// widest event wavefront relative to its size, where queue pressure is
// real. (The full aes_core has its own acquisition row below,
// BM_AesCoreAcquire, now that it carries a four-phase environment.)
// The CI bench job prints the BM_SchedulerHeap / BM_SchedulerWheel
// speedup and guards it against regression.
static const qdi::campaign::TargetInstance& scheduler_workload() {
  static const qdi::campaign::TargetInstance inst =
      qdi::campaign::des_round().build(0x2b);
  return inst;
}

static void scheduler_bench(benchmark::State& state,
                            qdi::sim::SchedulerKind kind) {
  const qdi::campaign::TargetInstance& inst = scheduler_workload();
  qdi::campaign::SimTraceSourceOptions opt;
  opt.scheduler = kind;
  qdi::campaign::SimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);
  // Persistent workers: source, compiled netlist, epoch snapshot, and
  // scratch all live across the timed iterations, so the rows measure
  // the per-trace loop — exactly where the schedulers differ.
  qdi::campaign::WorkerPool pool(src, 1);
  for (auto _ : state) {
    steady_state_acquire(pool, 32);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

static void BM_SchedulerWheel(benchmark::State& state) {
  scheduler_bench(state, qdi::sim::SchedulerKind::Wheel);
}
BENCHMARK(BM_SchedulerWheel)->Unit(benchmark::kMillisecond);

static void BM_SchedulerHeap(benchmark::State& state) {
  scheduler_bench(state, qdi::sim::SchedulerKind::Heap);
}
BENCHMARK(BM_SchedulerHeap)->Unit(benchmark::kMillisecond);

// Full-core rows: the fig. 8 ~25k-cell aes_core, end to end. The
// acquisition row measures steady-state per-trace cost of one complete
// four-phase handshake of the whole core (compiled engine, persistent
// worker — the production feed of a fused full-core CPA campaign). The
// cone-balance row runs ConeBalancePass to its fixpoint on a pristine
// copy of the core netlist: the PR's scaling target (plan-then-commit
// with incremental cross-round invalidation; single thread, verify
// scans off so the row measures the transform, not the symmetry
// audit). The CI bench job prints their informational ratio — the
// designer-side balancing cost in units of 64-trace acquisitions.
static const qdi::campaign::TargetInstance& aes_core_workload() {
  static const qdi::campaign::TargetInstance inst =
      qdi::campaign::aes_core().build(0x2b);
  return inst;
}

static void BM_AesCoreAcquire(benchmark::State& state) {
  const qdi::campaign::TargetInstance& inst = aes_core_workload();
  const qdi::campaign::SimTraceSourceOptions opt;
  qdi::campaign::SimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);
  qdi::campaign::WorkerPool pool(src, 1);
  for (auto _ : state) {
    steady_state_acquire(pool, 8);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_AesCoreAcquire)->Unit(benchmark::kMillisecond);

// Fused full-core CPA: BM_AesCoreAcquire's steady-state acquisition
// with the 256-guess streaming analysis fused in — the production
// shape of a full-core attack campaign (acquire a chunk, fold it into
// the accumulators, discard it). The delta against BM_AesCoreAcquire
// is the analysis tax per trace on a ~25k-cell victim; the CI bench
// job prints it as an informational row.
static void BM_AesCoreFusedCpa(benchmark::State& state) {
  const qdi::campaign::TargetInstance& inst = aes_core_workload();
  const qdi::campaign::SimTraceSourceOptions opt;
  qdi::campaign::SimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);
  qdi::campaign::WorkerPool pool(src, 1);
  qd::OnlineCpa acc(inst.leakage, inst.num_guesses);
  for (auto _ : state) {
    pool.acquire_chunked(8, 1, 8,
                         [&](const qdi::dpa::TraceSet& seg, std::size_t) {
                           acc.add_prefix(seg, 0, seg.size());
                         });
    benchmark::DoNotOptimize(acc.count());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_AesCoreFusedCpa)->Unit(benchmark::kMillisecond);

static void BM_ConeBalanceAes(benchmark::State& state) {
  const qdi::campaign::TargetInstance& pristine = aes_core_workload();
  for (auto _ : state) {
    qdi::netlist::Netlist nl = pristine.nl;  // fresh copy per iteration
    const qdi::xform::PassReport rep =
        qdi::xform::ConeBalancePass{{.verify = false, .threads = 1}}.run(nl);
    benchmark::DoNotOptimize(rep.cells_added);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConeBalanceAes)->Unit(benchmark::kMillisecond);

// Batch-vs-online analysis pair on the aes_byte_slice workload: 256
// guesses, full measurements-to-disclosure scan (prefix grid 8, 8).
// BM_CpaBatch runs the scan the way the pre-streaming code did — one
// full cpa_attack per probed prefix; BM_CpaOnline advances one
// dpa::OnlineCpa accumulator across the same grid and finalizes the
// running sums at each probe. Identical results (the batch attack is
// itself a wrapper over the online engine); the CI bench job prints the
// BM_CpaOnline / BM_CpaBatch speedup next to the acquire ratio.
static const qd::TraceSet& cpa_workload() {
  static const qd::TraceSet ts = [] {
    qdi::campaign::TargetInstance inst =
        qdi::campaign::aes_byte_slice().build(0x3c);
    for (qdi::netlist::ChannelId ch = 0; ch < inst.nl.num_channels(); ++ch) {
      const qdi::netlist::Channel& c = inst.nl.channel(ch);
      if (c.name.find("sbox/out") != std::string::npos ||
          c.name.find("hb/q_q") != std::string::npos)
        inst.nl.net(c.rails[1]).cap_ff *= 2.0;
    }
    qdi::campaign::SimTraceSource src(inst.nl, inst.env, inst.stimulus, {});
    return qdi::campaign::acquire_batch(src, 128, 9);
  }();
  return ts;
}

static void BM_CpaBatch(benchmark::State& state) {
  const qd::TraceSet& ts = cpa_workload();
  const qd::LeakageModel model = qd::aes_sbox_hw_model(0);
  for (auto _ : state) {
    std::size_t mtd = 0;
    for (std::size_t n = 8; n <= ts.size(); n += 8) {
      const qd::CpaResult r = qd::cpa_attack(ts, model, 256, n);
      const bool ok = (r.best_guess == 0x3c) && r.best_rho > 0.0;
      if (ok && mtd == 0) mtd = n;
      if (!ok) mtd = 0;
    }
    benchmark::DoNotOptimize(mtd);
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations() * ts.size()));
}
BENCHMARK(BM_CpaBatch)->Unit(benchmark::kMillisecond);

static void BM_CpaOnline(benchmark::State& state) {
  const qd::TraceSet& ts = cpa_workload();
  const qd::LeakageModel model = qd::aes_sbox_hw_model(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qd::cpa_measurements_to_disclosure(ts, model, 256, 0x3c, 8, 8));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations() * ts.size()));
}
BENCHMARK(BM_CpaOnline)->Unit(benchmark::kMillisecond);

// SIMD-dispatch pair: the 256-guess byte-indexed CPA ingest of the
// same materialized 128-trace workload, once pinned to the portable
// kernel arm and once on the load-time kernels::active() pick (AVX2 on
// CI). Identical accumulator state by the arms' bit-identity contract
// (tests/test_dpa_kernels.cpp); the CI bench job prints the
// BM_CpaIngestPortable / BM_CpaIngestSimd per-ingest speedup and
// guards it against regression. Note the portable arm is itself
// autovectorized by -O3 (SSE2 on x86-64), so this ratio measures the
// AVX2 arm against real compiled scalar code, not against a strawman.
static void cpa_ingest_bench(benchmark::State& state,
                             const qd::kernels::KernelTable& table) {
  const qd::TraceSet& ts = cpa_workload();
  const qd::LeakageModel model = qd::aes_sbox_hw_model(0);
  qd::OnlineCpa acc(model, 256);
  acc.set_kernels(table);
  for (auto _ : state) {
    acc.reset();
    acc.add_prefix(ts, 0, ts.size());
    benchmark::DoNotOptimize(acc.count());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations() * ts.size()));
  state.SetLabel(table.name);
}

static void BM_CpaIngestPortable(benchmark::State& state) {
  cpa_ingest_bench(state, *qd::kernels::table(qd::kernels::Kind::Portable));
}
BENCHMARK(BM_CpaIngestPortable)->Unit(benchmark::kMillisecond);

static void BM_CpaIngestSimd(benchmark::State& state) {
  cpa_ingest_bench(state, qd::kernels::active());
}
BENCHMARK(BM_CpaIngestSimd)->Unit(benchmark::kMillisecond);

// Countermeasure-variant campaign rows on the DES round (the heaviest
// simulatable registry target): the same fused CPA campaign against the
// unprotected netlist and against the xform-balanced one (cone
// balancing + capacitance equalization applied through the recipe
// stage, netlist rebuilt and recompiled per iteration like a sweep
// variant does). The pair quantifies the acquisition-side cost of the
// countermeasure — the balanced netlist carries extra cells and padded
// caps — next to its security gain (tests/test_sweep.cpp).
static void sweep_variant_bench(benchmark::State& state,
                                const qdi::xform::Recipe& (*recipe)()) {
  const qdi::campaign::CircuitTarget target = qdi::campaign::des_round();
  // Compile hoisted out of the timed loop: the recipe is deterministic,
  // so the post-transform netlist — and therefore its compiled form —
  // is identical every iteration. Build it once here and hand the
  // shared compiled netlist to each iteration's source; the rows then
  // measure recipe + campaign throughput, not repeated compilation.
  qdi::campaign::TargetInstance pre = target.build(0x2b);
  recipe().pipeline.run(pre.nl);
  const std::shared_ptr<const qdi::sim::CompiledNetlist> cn =
      qdi::sim::compile(pre.nl);
  const auto source = [&cn](const qdi::campaign::TargetInstance& inst,
                            const qdi::campaign::SimTraceSourceOptions& opt)
      -> std::unique_ptr<qdi::campaign::TraceSource> {
    qdi::campaign::SimTraceSourceOptions o = opt;
    o.precompiled = cn;
    return std::make_unique<qdi::campaign::SimTraceSource>(
        inst.nl, inst.env, inst.stimulus, o);
  };
  for (auto _ : state) {
    const qdi::campaign::CampaignResult r = qdi::campaign::Campaign()
                                                .target(target)
                                                .key(0x2b)
                                                .traces(16)
                                                .fused(8)
                                                .recipe(recipe())
                                                .source(source)
                                                .attack(qdi::campaign::Cpa{})
                                                .run();
    benchmark::DoNotOptimize(r.attack->best_guess);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}

static const qdi::xform::Recipe& unprotected_recipe() {
  static const qdi::xform::Recipe r = qdi::xform::unprotected();
  return r;
}

static const qdi::xform::Recipe& balanced_recipe() {
  // Verification scans off: the rows measure campaign throughput, not
  // the designer-side symmetry audit.
  static const qdi::xform::Recipe r =
      qdi::xform::balanced({.verify = false}, {});
  return r;
}

static void BM_SweepVariantUnprotected(benchmark::State& state) {
  sweep_variant_bench(state, unprotected_recipe);
}
BENCHMARK(BM_SweepVariantUnprotected)->Unit(benchmark::kMillisecond);

static void BM_SweepVariantBalanced(benchmark::State& state) {
  sweep_variant_bench(state, balanced_recipe);
}
BENCHMARK(BM_SweepVariantBalanced)->Unit(benchmark::kMillisecond);

// Fused acquire-and-attack campaign: acquisition segments stream into
// the online accumulators, no TraceSet is ever materialized. End to end
// including target build, like BM_CampaignAcquire.
static void BM_FusedCampaign(benchmark::State& state) {
  const qdi::campaign::CircuitTarget target = qdi::campaign::des_sbox_slice();
  for (auto _ : state) {
    const qdi::campaign::CampaignResult r = qdi::campaign::Campaign()
                                                .target(target)
                                                .key(0x2b)
                                                .traces(64)
                                                .fused(16)
                                                .attack(qdi::campaign::Cpa{})
                                                .run();
    benchmark::DoNotOptimize(r.attack->best_guess);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FusedCampaign)->Unit(benchmark::kMillisecond);

// The sharded-overhead pair: the SAME des_round acquire-and-attack
// workload (16384 traces, end to end including target build), once
// through the fused streaming loop and once through the crash-safe
// sharded runtime committing at its DEFAULT checkpoint interval. The
// delta is the per-trace cost of crash safety: the stream digest plus,
// every interval, an accumulator snapshot sealed with SHA-256 and
// published by atomic rename (~6 MB for a des_round DPA state). The CI
// bench job prints the fused/sharded ratio as an informational row —
// at the default interval the tax should stay under ~5% per trace.
// The trace count matters: it has to cover several default-interval
// windows, or the pair would only measure the one final commit.
static void BM_FusedCampaignDes(benchmark::State& state) {
  const qdi::campaign::CircuitTarget target = qdi::campaign::des_round();
  for (auto _ : state) {
    const qdi::campaign::CampaignResult r = qdi::campaign::Campaign()
                                                .target(target)
                                                .key(0x0123456789abULL)
                                                .traces(16384)
                                                .fused(256)
                                                .attack(qdi::campaign::Dpa{})
                                                .run();
    benchmark::DoNotOptimize(r.attack->best_guess);
  }
  state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_FusedCampaignDes)->Unit(benchmark::kMillisecond);

static void BM_ShardedCampaign(benchmark::State& state) {
  const qdi::campaign::CircuitTarget target = qdi::campaign::des_round();
  qdi::campaign::ShardedOptions opt;
  opt.shards = 1;  // isolate the checkpoint tax, not the merge/partition
  opt.checkpoint_dir = "bench_sharded_ckpt";
  for (auto _ : state) {
    // Wipe the previous iteration's checkpoints: a completed store would
    // short-circuit the run into pure recovery and measure nothing.
    std::remove(qdi::campaign::checkpoint_path(opt.checkpoint_dir, 0).c_str());
    std::remove(
        qdi::campaign::checkpoint_prev_path(opt.checkpoint_dir, 0).c_str());
    const qdi::campaign::ShardedResult r = qdi::campaign::Campaign()
                                               .target(target)
                                               .key(0x0123456789abULL)
                                               .traces(16384)
                                               .attack(qdi::campaign::Dpa{})
                                               .sharded(opt);
    benchmark::DoNotOptimize(r.attack->best_guess);
  }
  state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_ShardedCampaign)->Unit(benchmark::kMillisecond);

// Fault-injection sweep on the des_sbox_slice victim: a fixed
// (12 sites x stuck-at-0/1 x 2 repeats) grid, every run classified as
// deadlock / masked / exploitable. The per-run cost is golden cycle +
// epoch rewind + faulted cycle, so one fault run should stay within a
// small factor of one BM_CampaignAcquire trace; the CI bench job prints
// the BM_FaultSweep / BM_CampaignAcquire per-item ratio next to the
// other engine ratios.
static void BM_FaultSweep(benchmark::State& state) {
  // Target build and netlist compilation hoisted out of the timed loop
  // (FaultCampaignOptions::precompiled): every iteration sweeps the same
  // victim, so the rows measure injection + classification throughput,
  // not repeated target construction.
  static const qdi::campaign::TargetInstance inst =
      qdi::campaign::des_sbox_slice().build(0x2b);
  static const std::shared_ptr<const qdi::sim::CompiledNetlist> cn =
      qdi::sim::compile(inst.nl);
  qdi::campaign::FaultCampaignOptions opt;
  opt.max_sites = 12;
  opt.repeats = 2;
  opt.run_dfa = false;
  opt.precompiled = cn;
  std::size_t runs = 0;
  for (auto _ : state) {
    const qdi::campaign::FaultCampaignResult r =
        qdi::campaign::run_fault_campaign(inst, 0x2b, opt, 1, 1);
    runs = r.summary.runs;
    benchmark::DoNotOptimize(r.summary.deadlock);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(runs));
}
BENCHMARK(BM_FaultSweep)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  // The standard library_build_type context key describes the google-
  // benchmark LIBRARY binary (a debug build on some distros); this key
  // records how the qdi code under test was compiled. The CI bench job
  // refuses a committed BENCH_campaign.json whose capture was not an
  // optimized build.
#ifdef NDEBUG
  benchmark::AddCustomContext("qdi_build_type", "release");
#else
  benchmark::AddCustomContext("qdi_build_type", "debug");
#endif
  // Lane width of the batch kernel (BM_BatchAcquire* rows process this
  // many traces per machine word); occupancy is per-row (counters).
  benchmark::AddCustomContext(
      "batch_lane_width", std::to_string(qdi::sim::kBatchLanes));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
