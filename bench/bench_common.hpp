// Shared helpers for the experiment benches: coarse series printing
// (so the paper's figures are reproducible as terminal plots) and common
// acquisition plumbing.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

namespace bench {

/// Reduce a series to `bins` by max-|.|-preserving downsampling.
inline std::vector<double> downsample(std::span<const double> v, std::size_t bins) {
  std::vector<double> out(bins, 0.0);
  if (v.empty()) return out;
  for (std::size_t b = 0; b < bins; ++b) {
    const std::size_t lo = b * v.size() / bins;
    const std::size_t hi = std::max(lo + 1, (b + 1) * v.size() / bins);
    double best = 0.0;
    for (std::size_t j = lo; j < hi && j < v.size(); ++j)
      if (std::fabs(v[j]) > std::fabs(best)) best = v[j];
    out[b] = best;
  }
  return out;
}

/// Signed ASCII sparkline: '#'/'=' above zero, 'o'/'-' below, '.' ~ zero.
inline std::string sparkline(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  std::string s;
  for (double x : v) {
    if (m <= 0.0) {
      s += '.';
      continue;
    }
    const double r = x / m;
    if (r > 0.66)
      s += '#';
    else if (r > 0.15)
      s += '=';
    else if (r < -0.66)
      s += 'o';
    else if (r < -0.15)
      s += '-';
    else
      s += '.';
  }
  return s;
}

/// Print a labelled series as a sparkline plus its extremes.
inline void print_series(const std::string& label, std::span<const double> v,
                         std::size_t bins = 72) {
  const auto d = downsample(v, bins);
  double peak = 0.0;
  for (double x : v) peak = std::max(peak, std::fabs(x));
  std::printf("  %-26s |%s|  peak=%9.3f\n", label.c_str(), sparkline(d).c_str(),
              peak);
}

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace bench
