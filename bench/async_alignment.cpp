// Extension experiment — the asynchronous-alignment story.
//
// The paper's introduction presents asynchronous logic's missing clock as
// a security feature ("their absence of clock signal ... eliminate[s] a
// global synchronization signal"). This bench quantifies that claim and
// the standard attacker countermeasure:
//   1. aligned traces (perfect trigger)       -> baseline DPA bias,
//   2. jittered acquisition windows           -> the bias smears,
//   3. jittered + cross-correlation realign   -> the bias returns.
//
// Swept over the jitter magnitude; victim is the byte slice with the
// attacked channel unbalanced (dA = 2 on the S-Box out0 group).
#include <cstdio>

#include "bench_common.hpp"
#include "qdi/qdi.hpp"

namespace qn = qdi::netlist;
namespace qg = qdi::gates;
namespace qd = qdi::dpa;
namespace qu = qdi::util;

namespace {
constexpr std::uint8_t kKey = 0x4f;

void unbalance(qn::Netlist& nl) {
  for (qn::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
    const qn::Channel& c = nl.channel(ch);
    if (c.name.find("sbox/out0") != std::string::npos ||
        c.name.find("hb/q_q0") != std::string::npos)
      nl.net(c.rails[1]).cap_ff *= 3.0;
  }
}

/// Acquire the unbalanced victim with the given window jitter.
qdi::campaign::CampaignResult acquire(double jitter_ps) {
  return qdi::campaign::Campaign()
      .target(qdi::campaign::aes_byte_slice())
      .key(kKey)
      .seed(4242)
      .traces(300)
      .threads(4)
      .jitter(jitter_ps)
      .prepare(unbalance)
      .run();
}
}  // namespace

int main() {
  bench::header("Async alignment — jitter as obstacle, realignment as answer");
  const auto d = qd::aes_sbox_selection(0, 0);

  qu::Table t({"jitter (ps)", "bias peak aligned", "bias peak jittered",
               "bias peak realigned", "traces moved"});
  t.set_precision(2);

  const double base = qd::dpa_bias(acquire(0.0).traces, d, kKey).peak;

  for (double jitter : {100.0, 300.0, 800.0, 2000.0}) {
    qd::TraceSet ts = std::move(acquire(jitter).traces);
    const double smeared = qd::dpa_bias(ts, d, kKey).peak;
    const std::size_t moved = qd::realign_traces(
        ts, static_cast<std::size_t>(jitter / 10.0) + 10);
    const double restored = qd::dpa_bias(ts, d, kKey).peak;
    t.add_row({t.format_double(jitter), t.format_double(base),
               t.format_double(smeared), t.format_double(restored),
               std::to_string(moved)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "expected: the smeared peak degrades with jitter (the clockless\n"
      "advantage the paper's introduction cites), and cross-correlation\n"
      "realignment recovers most of the aligned bias — absence of a clock\n"
      "raises the attack cost but is not by itself a countermeasure;\n"
      "capacitance balance (the paper's flow) remains the real defence.\n");
  return 0;
}
