// Section II of the paper: "This encoding data scheme [1-of-N] is useful
// to reduce the number of electrical transitions involved in a given
// computation which reduces the power consumption. For the sake of DPA
// resistance, 1-of-N encoding ensures that the same number of
// transitions is required to encode the values 0 to N-1."
//
// This bench quantifies both statements with the campaign registry's
// encoding-template targets: two bits transported as two dual-rail
// channels versus one 1-of-4 channel, comparing transitions per
// four-phase cycle and per-cycle charge, and verifying transition-count
// constancy over all four codeword values in both encodings. The
// exhaustive codeword sweep is the targets' built-in stimulus
// (trace index mod 4).
#include <cstdio>

#include "bench_common.hpp"
#include "qdi/qdi.hpp"

namespace qm = qdi::campaign;
namespace qu = qdi::util;

namespace {

struct Stats {
  std::size_t transitions = 0;
  double charge_fc = 0.0;
  bool constant = true;
};

/// Run all four 2-bit codewords through a target and report per-cycle
/// activity.
Stats measure(const qm::CircuitTarget& target) {
  const qm::CampaignResult r =
      qm::Campaign().target(target).traces(4).run();
  Stats st;
  st.transitions = r.acquisition.per_trace_transitions[0];
  st.charge_fc = r.traces.trace(0).total_charge_fc() / 1000.0;
  for (std::size_t i = 1; i < r.traces.size(); ++i)
    if (r.acquisition.per_trace_transitions[i] != st.transitions)
      st.constant = false;
  return st;
}

}  // namespace

int main() {
  bench::header("1-of-N encoding — transitions and power (section II claim)");

  const Stats dr = measure(qm::dual_rail_pair());
  const Stats q4 = measure(qm::one_of_four());

  qu::Table t({"encoding", "transitions/cycle", "charge (fC)",
               "constant over values"});
  t.set_precision(1);
  t.add_row({"2 x dual-rail (4 wires)", std::to_string(dr.transitions),
             t.format_double(dr.charge_fc), dr.constant ? "yes" : "NO"});
  t.add_row({"1-of-4 (4 wires)", std::to_string(q4.transitions),
             t.format_double(q4.charge_fc), q4.constant ? "yes" : "NO"});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected: the 1-of-4 encoding moves the same 2 bits with half\n"
              "the transitions (one rail fires instead of two) at identical\n"
              "wire count, and both encodings are data-independent — the\n"
              "power/security trade the paper's section II describes.\n");
  return 0;
}
