// Section II of the paper: "This encoding data scheme [1-of-N] is useful
// to reduce the number of electrical transitions involved in a given
// computation which reduces the power consumption. For the sake of DPA
// resistance, 1-of-N encoding ensures that the same number of
// transitions is required to encode the values 0 to N-1."
//
// This bench quantifies both statements: two bits transported as two
// dual-rail channels versus one 1-of-4 channel, comparing internal
// transitions per four-phase cycle and per-cycle charge, and verifying
// transition-count constancy over all four codeword values in both
// encodings.
#include <cstdio>

#include "bench_common.hpp"
#include "qdi/gates/builder.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/util/table.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;
namespace qp = qdi::power;
namespace qu = qdi::util;

namespace {

struct Stats {
  std::size_t internal_transitions = 0;
  double charge_fc = 0.0;
  bool constant = true;
};

/// Run all four 2-bit values through a circuit and report per-cycle
/// internal activity.
Stats measure(qn::Netlist& nl, const qs::EnvSpec& spec) {
  qs::Simulator sim(nl);
  qs::FourPhaseEnv env(sim, spec);
  env.apply_reset();
  Stats st;
  qp::PowerModelParams pm;
  std::size_t first = 0;
  for (int v = 0; v < 4; ++v) {
    sim.clear_log();
    std::vector<int> values;
    if (spec.inputs.size() == 2) {
      values = {v & 1, (v >> 1) & 1};
    } else {
      values = {v};
    }
    const auto cyc = env.send(values);
    if (!cyc.ok) continue;
    std::size_t internal = 0;
    for (const auto& t : sim.log()) {
      const auto& drv = nl.cell(nl.net(t.net).driver);
      if (!qn::is_pseudo(drv.kind)) ++internal;
    }
    const qp::PowerTrace trace =
        qp::synthesize(sim.log(), cyc.t_start, spec.period_ps, pm, nullptr);
    if (v == 0) {
      first = internal;
      st.internal_transitions = internal;
      st.charge_fc = trace.total_charge_fc() / 1000.0;
    } else if (internal != first) {
      st.constant = false;
    }
  }
  return st;
}

}  // namespace

int main() {
  bench::header("1-of-N encoding — transitions and power (section II claim)");

  // (a) Two dual-rail channels through a buffered stage.
  qn::Netlist nl_dr("dual_rail");
  qs::EnvSpec spec_dr;
  {
    qg::Builder b(nl_dr);
    qg::DualRail lo = b.dr_input("lo");
    qg::DualRail hi = b.dr_input("hi");
    for (const qg::DualRail* d : {&lo, &hi}) {
      const qn::NetId q0 = b.buf(d->r0);
      const qn::NetId q1 = b.buf(d->r1);
      const qg::DualRail out = b.as_dual_rail(q0, q1, "q");
      b.dr_output(out, "q");
      spec_dr.outputs.push_back(out.ch);
    }
    spec_dr.inputs = {lo.ch, hi.ch};
    spec_dr.period_ps = 2000.0;
  }

  // (b) The same two bits as one 1-of-4 channel (env drives it directly).
  qn::Netlist nl_q4("one_of_four");
  qs::EnvSpec spec_q4;
  {
    qg::Builder b(nl_q4);
    qg::OneOfN q = b.one_of_n_input("q", 4);
    std::vector<qn::NetId> out_rails;
    for (qn::NetId r : q.rails) out_rails.push_back(b.buf(r));
    const qn::ChannelId out_ch = nl_q4.add_channel("qo", out_rails);
    for (std::size_t i = 0; i < out_rails.size(); ++i)
      b.output(out_rails[i], "qo" + std::to_string(i));
    spec_q4.inputs = {q.ch};
    spec_q4.outputs = {out_ch};
    spec_q4.period_ps = 2000.0;
  }

  const Stats dr = measure(nl_dr, spec_dr);
  const Stats q4 = measure(nl_q4, spec_q4);

  qu::Table t({"encoding", "internal transitions/cycle", "charge (fC)",
               "constant over values"});
  t.set_precision(1);
  t.add_row({"2 x dual-rail (4 wires)", std::to_string(dr.internal_transitions),
             t.format_double(dr.charge_fc), dr.constant ? "yes" : "NO"});
  t.add_row({"1-of-4 (4 wires)", std::to_string(q4.internal_transitions),
             t.format_double(q4.charge_fc), q4.constant ? "yes" : "NO"});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected: the 1-of-4 encoding moves the same 2 bits with half\n"
              "the transitions (one rail fires instead of two) at identical\n"
              "wire count, and both encodings are data-independent — the\n"
              "power/security trade the paper's section II describes.\n");
  return 0;
}
