// E7 — ablation: leakage vs the dissymmetry criterion dA, and the role of
// load-dependent timing.
//
// Section VI claims "the lower the value of dA, the more resistant to DPA
// the chip is". We inject a controlled dA on the attacked S-Box output
// channel and measure the DPA bias and measurements-to-disclosure:
//   * with the full delay model (charge + timing leakage), and
//   * with the load-insensitive model (charge leakage only) — the
//     DESIGN.md ablation of the Δt(C) term in eq. 12.
#include <cstdio>

#include "bench_common.hpp"
#include "qdi/qdi.hpp"

namespace qg = qdi::gates;
namespace qd = qdi::dpa;
namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qu = qdi::util;

namespace {
constexpr std::uint8_t kKey = 0x4f;

void inject_da(qn::Netlist& nl, double da) {
  // dA = (C_hi - C_lo)/C_lo  ->  C_hi = C_lo * (1 + dA) on the channels
  // that carry the attacked bit (S-Box out0 and its latch).
  for (qn::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
    const qn::Channel& c = nl.channel(ch);
    if (c.name.find("sbox/out0") != std::string::npos ||
        c.name.find("hb/q_q0") != std::string::npos)
      nl.net(c.rails[1]).cap_ff = nl.net(c.rails[0]).cap_ff * (1.0 + da);
  }
}

struct Point {
  double bias_peak = 0.0;
  double bias_integral = 0.0;
  std::size_t mtd = 0;
};

Point probe(double da, const qs::DelayModel& dm, double noise,
            std::size_t traces) {
  qdi::power::PowerModelParams pm;
  pm.noise_sigma_ua = noise;
  qdi::campaign::Dpa dpa;
  dpa.bits = {0};
  dpa.compute_mtd = true;
  const auto r = qdi::campaign::Campaign()
                     .target(qdi::campaign::aes_byte_slice())
                     .key(kKey)
                     .seed(7)
                     .traces(traces)
                     .threads(4)
                     .delays(dm)
                     .power(pm)
                     .prepare([da](qn::Netlist& nl) { inject_da(nl, da); })
                     .attack(dpa)
                     .run();
  Point p;
  p.bias_peak = r.attack->known_key_bias_peak;
  p.bias_integral = r.attack->known_key_bias_integral;
  p.mtd = r.attack->mtd;
  return p;
}
}  // namespace

int main() {
  bench::header("E7 — leakage vs dA (and the timing-leakage ablation)");
  const std::size_t traces = 800;
  const double noise = 1.0;

  qu::Table t({"injected dA", "model", "bias peak (uA)", "bias integral",
               "MTD (traces)"});
  t.set_precision(3);
  for (double da : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    const Point full = probe(da, qs::DelayModel{}, noise, traces);
    const Point charge_only =
        probe(da, qs::DelayModel::load_insensitive(), noise, traces);
    t.add_row({t.format_double(da), "charge+timing",
               t.format_double(full.bias_peak),
               t.format_double(full.bias_integral),
               full.mtd == 0 ? std::string("not disclosed")
                             : std::to_string(full.mtd)});
    t.add_row({t.format_double(da), "charge only",
               t.format_double(charge_only.bias_peak),
               t.format_double(charge_only.bias_integral),
               charge_only.mtd == 0 ? std::string("not disclosed")
                                    : std::to_string(charge_only.mtd)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "expected shape: bias grows monotonically with dA (paper: \"the lower\n"
      "dA, the more resistant\"); MTD falls as dA grows; the charge+timing\n"
      "model leaks at least as much as charge-only — the Δt(C) term of\n"
      "eq. 12 is a second, independent leakage channel.\n");
  return 0;
}
