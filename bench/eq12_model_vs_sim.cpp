// E3 — Eq. 12 validation: the formal model's predicted DPA bias
// (section IV, annotated-graph analysis with arrival times and charge
// pulses) against the measured bias from event-driven simulation +
// synthesized traces, across an imbalance sweep on each level of the
// fig. 4 XOR.
//
// Reported: predicted vs measured peak |S| and integrated |S| per config,
// plus the Pearson correlation of the two series across the sweep.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "qdi/core/formal_model.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/stats.hpp"
#include "qdi/util/table.hpp"

namespace qg = qdi::gates;
namespace qs = qdi::sim;
namespace qp = qdi::power;
namespace qu = qdi::util;
namespace qc = qdi::core;
namespace qn = qdi::netlist;

namespace {

std::vector<double> measured_bias(qg::XorStage& x, const qs::DelayModel& dm) {
  qs::Simulator sim(x.nl, dm);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  qp::PowerModelParams pm;
  qu::VectorMean m0, m1;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      sim.clear_log();
      const std::vector<int> v{a, b};
      const auto cyc = env.send(v);
      const qp::PowerTrace t =
          qp::synthesize(sim.log(), cyc.t_start, x.env.period_ps, pm, nullptr);
      ((a ^ b) == 0 ? m0 : m1).add(t.samples());
    }
  }
  return qu::subtract(m0.mean(), m1.mean());
}

std::vector<double> predicted_bias(qg::XorStage& x, const qs::DelayModel& dm) {
  const qn::Graph g(x.nl);
  qp::PowerModelParams pm;
  const std::vector<qn::NetId> class0{x.m[0], x.s0, x.co0, x.ack_out};
  const std::vector<qn::NetId> class1{x.m[2], x.s1, x.co1, x.ack_out};
  return qc::predict_bias(g, dm, pm, class0, class1, x.env.period_ps);
}

}  // namespace

int main() {
  bench::header("Eq. 12 — formal-model bias prediction vs simulation");
  const qs::DelayModel dm;

  struct Sweep {
    const char* label;
    int which;  // 0: m1+m2, 1: s0, 2: co0
    double cap;
  };
  std::vector<Sweep> sweeps;
  for (double cap : {8.0, 12.0, 16.0, 24.0, 32.0, 48.0}) {
    sweeps.push_back({"level1 (Cl11=Cl12)", 0, cap});
    sweeps.push_back({"level2 (Cl21)", 1, cap});
    sweeps.push_back({"level3 (Cl31)", 2, cap});
  }

  qu::Table table({"imbalanced net(s)", "cap (fF)", "predicted peak",
                   "measured peak", "predicted integral", "measured integral"});
  table.set_precision(3);

  std::vector<double> pred_series, meas_series;
  for (const Sweep& s : sweeps) {
    qg::XorStage x = qg::build_xor_stage();
    switch (s.which) {
      case 0:
        x.nl.net(x.m[0]).cap_ff = s.cap;
        x.nl.net(x.m[1]).cap_ff = s.cap;
        break;
      case 1:
        x.nl.net(x.s0).cap_ff = s.cap;
        break;
      default:
        x.nl.net(x.co0).cap_ff = s.cap;
        break;
    }
    const auto pred = predicted_bias(x, dm);
    const auto meas = measured_bias(x, dm);
    table.add_row({s.label, table.format_double(s.cap),
                   table.format_double(qu::max_abs(pred)),
                   table.format_double(qu::max_abs(meas)),
                   table.format_double(qu::sum_abs(pred)),
                   table.format_double(qu::sum_abs(meas))});
    pred_series.push_back(qu::sum_abs(pred));
    meas_series.push_back(qu::sum_abs(meas));
  }

  std::printf("%s", table.to_string().c_str());
  const double corr = qu::pearson(pred_series, meas_series);
  std::printf("\n  Pearson correlation (predicted vs measured integrated bias)"
              " over the sweep: %.4f\n", corr);
  std::printf("  expected: strong positive correlation — the analytic eq. 12 "
              "model tracks the\n  simulated leakage across level and "
              "magnitude (the model covers the evaluation\n  phase only, so "
              "absolute integrals differ by the RTZ-phase contribution).\n");
  return 0;
}
