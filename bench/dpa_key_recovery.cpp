// E6 — end-to-end DPA against the first-round AES byte slice (the
// circuit the paper's section-IV D-function targets), across the layout
// scenarios of section VI, each expressed as one qdi::campaign run:
//
//   1. flat P&R, global residual dissymmetry   (AES_v2: every channel
//      somewhat unbalanced — the uncontrolled-tool outcome),
//   2. hierarchical P&R                        (AES_v1),
//   3. "critical channel" — all channels repaired except the attacked
//      S-Box output latch, which keeps its extracted imbalance. This is
//      the paper's headline observation: "even though most of the
//      channels present a low criterion value, the existence of some
//      channels having a high criterion value greatly degrades the DPA
//      resistance level of the circuit",
//   4. fully repaired (rail-capacitance equalization extension).
//
// Reported per scenario: the criterion statistics, the *known-key* bias
// (designer-side leakage assessment, as in the paper's validation), the
// attacker-side key recovery (rank of the true key, margin, MTD), and
// the acquisition throughput of the parallel batched trace source.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "qdi/qdi.hpp"

namespace qg = qdi::gates;
namespace qc = qdi::core;
namespace qn = qdi::netlist;
namespace qp = qdi::pnr;
namespace qm = qdi::campaign;
namespace qu = qdi::util;

namespace {
constexpr std::uint8_t kSecretKey = 0x4f;

/// Equalize rail caps of every channel except those whose name contains
/// `keep` (nullptr = equalize everything).
void balance_except(qn::Netlist& nl, const char* keep) {
  for (qn::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
    const qn::Channel& c = nl.channel(ch);
    if (keep != nullptr && c.name.find(keep) != std::string::npos) continue;
    double cap_max = 0.0;
    for (qn::NetId r : c.rails) cap_max = std::max(cap_max, nl.net(r).cap_ff);
    for (qn::NetId r : c.rails) nl.net(r).cap_ff = cap_max;
  }
}

struct Scenario {
  const char* label;
  qp::FlowMode mode;
  /// nullptr: leave extraction as-is; "": repair all; else: repair all but
  /// matching channels.
  const char* repair_except;
};

void run_scenario(const Scenario& sc, unsigned threads, qu::Table* out,
                  double* wall_ms) {
  qc::FlowOptions flow;
  flow.placer.mode = sc.mode;
  flow.placer.seed = 1;
  flow.placer.moves_per_cell = 20;

  qm::Campaign campaign;
  campaign.target(qm::aes_byte_slice())
      .key(kSecretKey)
      .seed(99)
      .traces(1000)
      .threads(threads)
      .flow(flow);
  // Timing-only runs (out == nullptr) skip the analysis stage: only the
  // acquisition wall clock is consumed.
  if (out) {
    qm::Dpa dpa;
    dpa.compute_mtd = true;
    campaign.attack(dpa);
  }
  if (sc.repair_except != nullptr) {
    const char* keep = sc.repair_except;
    campaign.prepare([keep](qn::Netlist& nl) {
      balance_except(nl, *keep ? keep : nullptr);
    });
  }

  const qm::CampaignResult r = campaign.run();
  if (out) {
    const qm::AttackOutcome& a = *r.attack;
    out->add_row({sc.label, out->format_double(r.max_da),
                  out->format_double(r.mean_da),
                  out->format_double(a.known_key_bias_peak),
                  std::to_string(a.true_key_rank), out->format_double(a.margin),
                  a.mtd ? std::to_string(a.mtd) : std::string("--"),
                  out->format_double(r.acquisition.traces_per_s)});
  }
  if (wall_ms) *wall_ms = r.acquisition.wall_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads =
      argc > 1 ? static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10)) : 4;
  bench::header("E6 — DPA against layouts of the two flows (secret key 0x4f)");
  std::printf("victim: AddRoundKey + SubBytes byte slice; 1000 traces; "
              "multi-bit S-Box DPA, 256 guesses; %u acquisition threads\n\n",
              threads);

  qu::Table t({"scenario", "max dA", "mean dA", "known-key bias (uA)",
               "true-key rank", "margin", "MTD", "traces/s"});
  t.set_precision(3);

  const Scenario scenarios[] = {
      {"flat, global residual (AES_v2)", qp::FlowMode::Flat, nullptr},
      {"hierarchical (AES_v1)", qp::FlowMode::Hierarchical, nullptr},
      {"one critical channel (hb latch)", qp::FlowMode::Flat, "hb/q_q0"},
      {"fully repaired", qp::FlowMode::Flat, ""},
  };
  for (const Scenario& sc : scenarios) run_scenario(sc, threads, &t, nullptr);

  std::printf("%s\n", t.to_string().c_str());

  // Parallel-acquisition scaling on the first scenario (the acceptance
  // check of the campaign API: same bits, less wall clock).
  double t1 = 0.0, tn = 0.0;
  run_scenario(scenarios[0], 1, nullptr, &t1);
  run_scenario(scenarios[0], threads, nullptr, &tn);
  std::printf("acquisition scaling (1000 traces): 1 thread = %.0f ms, "
              "%u threads = %.0f ms, speedup = %.2fx\n\n",
              t1, threads, tn, tn > 0.0 ? t1 / tn : 0.0);

  std::printf(
      "reading of the rows:\n"
      "  * global residual dissymmetry produces the largest known-key bias, but\n"
      "    full key recovery is obscured by ghost bias from the thousands of\n"
      "    other unbalanced code groups (high resistance against naive DPA —\n"
      "    the finding of the authors' companion 'Concrete Results' study);\n"
      "  * a single high-dA channel among otherwise balanced ones is directly\n"
      "    exploitable: rank 0 with a clear margin (the paper's core warning);\n"
      "  * the hierarchical flow lowers the criterion and the known-key bias;\n"
      "  * rail-capacitance repair removes the leak entirely (bias = 0).\n");
  return 0;
}
