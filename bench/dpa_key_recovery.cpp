// E6 — end-to-end DPA against the first-round AES byte slice (the
// circuit the paper's section-IV D-function targets), across the layout
// scenarios of section VI:
//
//   1. flat P&R, global residual dissymmetry   (AES_v2: every channel
//      somewhat unbalanced — the uncontrolled-tool outcome),
//   2. hierarchical P&R                        (AES_v1),
//   3. "critical channel" — all channels repaired except the attacked
//      S-Box output latch, which keeps its extracted imbalance. This is
//      the paper's headline observation: "even though most of the
//      channels present a low criterion value, the existence of some
//      channels having a high criterion value greatly degrades the DPA
//      resistance level of the circuit",
//   4. fully repaired (rail-capacitance equalization extension).
//
// Reported per scenario: the criterion statistics, the *known-key* bias
// (designer-side leakage assessment, as in the paper's validation), and
// the attacker-side key recovery (rank of the true key, margin, MTD).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "qdi/core/secure_flow.hpp"
#include "qdi/dpa/acquisition.hpp"
#include "qdi/dpa/dpa.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/util/table.hpp"

namespace qg = qdi::gates;
namespace qc = qdi::core;
namespace qn = qdi::netlist;
namespace qp = qdi::pnr;
namespace qd = qdi::dpa;
namespace qu = qdi::util;

namespace {
constexpr std::uint8_t kSecretKey = 0x4f;

/// Equalize rail caps of every channel except those whose name contains
/// `keep` (nullptr = equalize everything).
void balance_except(qn::Netlist& nl, const char* keep) {
  for (qn::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
    const qn::Channel& c = nl.channel(ch);
    if (keep != nullptr && c.name.find(keep) != std::string::npos) continue;
    double cap_max = 0.0;
    for (qn::NetId r : c.rails) cap_max = std::max(cap_max, nl.net(r).cap_ff);
    for (qn::NetId r : c.rails) nl.net(r).cap_ff = cap_max;
  }
}

struct Scenario {
  const char* label;
  qp::FlowMode mode;
  /// nullptr: leave extraction as-is; "": repair all; else: repair all but
  /// matching channels.
  const char* repair_except;
};

void run_scenario(const Scenario& sc, qu::Table& out) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  qc::FlowOptions flow;
  flow.placer.mode = sc.mode;
  flow.placer.seed = 1;
  flow.placer.moves_per_cell = 20;
  qc::run_secure_flow(slice.nl, flow);
  if (sc.repair_except != nullptr)
    balance_except(slice.nl,
                   *sc.repair_except ? sc.repair_except : nullptr);

  const auto criteria = qc::evaluate_criterion(slice.nl);

  qd::Acquisition cfg;
  cfg.num_traces = 1000;
  cfg.seed = 99;
  const qd::TraceSet ts = qd::acquire_aes_byte_slice(slice, kSecretKey, cfg);

  // Designer-side leakage assessment: bias with the known key.
  const qd::BiasResult known =
      qd::dpa_bias(ts, qd::aes_sbox_selection(0, 0), kSecretKey);

  // Attacker-side recovery.
  std::vector<qd::SelectionFn> bits;
  for (int b = 0; b < 8; ++b) bits.push_back(qd::aes_sbox_selection(0, b));
  const qd::KeyRecoveryResult rec = qd::recover_key_multibit(ts, bits, 256);
  const std::size_t mtd =
      rec.rank_of(kSecretKey) == 0
          ? qd::measurements_to_disclosure(ts, qd::aes_sbox_selection(0, 0),
                                           256, kSecretKey, 50, 50)
          : 0;

  out.add_row({sc.label, out.format_double(qc::max_dA(criteria)),
               out.format_double(qc::mean_dA(criteria)),
               out.format_double(known.peak), std::to_string(rec.rank_of(kSecretKey)),
               out.format_double(rec.margin()),
               mtd ? std::to_string(mtd) : std::string("--")});
}

}  // namespace

int main() {
  bench::header("E6 — DPA against layouts of the two flows (secret key 0x4f)");
  std::printf("victim: AddRoundKey + SubBytes byte slice; 1000 traces; "
              "multi-bit S-Box DPA, 256 guesses\n\n");

  qu::Table t({"scenario", "max dA", "mean dA", "known-key bias (uA)",
               "true-key rank", "margin", "MTD"});
  t.set_precision(3);

  const Scenario scenarios[] = {
      {"flat, global residual (AES_v2)", qp::FlowMode::Flat, nullptr},
      {"hierarchical (AES_v1)", qp::FlowMode::Hierarchical, nullptr},
      {"one critical channel (hb latch)", qp::FlowMode::Flat, "hb/q_q0"},
      {"fully repaired", qp::FlowMode::Flat, ""},
  };
  for (const Scenario& sc : scenarios) run_scenario(sc, t);

  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "reading of the rows:\n"
      "  * global residual dissymmetry produces the largest known-key bias, but\n"
      "    full key recovery is obscured by ghost bias from the thousands of\n"
      "    other unbalanced code groups (high resistance against naive DPA —\n"
      "    the finding of the authors' companion 'Concrete Results' study);\n"
      "  * a single high-dA channel among otherwise balanced ones is directly\n"
      "    exploitable: rank 0 with a clear margin (the paper's core warning);\n"
      "  * the hierarchical flow lowers the criterion and the known-key bias;\n"
      "  * rail-capacitance repair removes the leak entirely (bias = 0).\n");
  return 0;
}
