// Ablation of the design choices DESIGN.md §5 calls out on the P&R side:
//   * annealing effort (moves per cell) — how much the criterion depends
//     on placement quality,
//   * extraction repeater distance — the long-net capacitance cap,
//   * target utilization — die-size pressure vs rail divergence.
// Workload: the AES byte slice under the flat flow (criterion over the
// dual-rail data channels).
#include <cstdio>

#include "bench_common.hpp"
#include "qdi/core/secure_flow.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/util/table.hpp"

namespace qn = qdi::netlist;
namespace qc = qdi::core;
namespace qp = qdi::pnr;
namespace qu = qdi::util;

namespace {
struct Point {
  double max_da = 0.0;
  double mean_da = 0.0;
  double hpwl_m = 0.0;
};

Point run(int moves, double repeater_um, double utilization) {
  qn::Netlist nl = qdi::gates::build_aes_byte_slice().nl;
  qc::FlowOptions opt;
  opt.placer.mode = qp::FlowMode::Flat;
  opt.placer.seed = 5;
  opt.placer.moves_per_cell = moves;
  opt.placer.stages = 40;
  opt.placer.target_utilization = utilization;
  opt.extraction.repeater_distance_um = repeater_um;
  const qc::FlowResult r = qc::run_secure_flow(nl, opt);
  Point p;
  // Dual-rail channels only (the Table 2 population).
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& ch : r.criteria) {
    if (nl.channel(ch.id).arity() != 2) continue;
    p.max_da = std::max(p.max_da, ch.dA);
    sum += ch.dA;
    ++n;
  }
  p.mean_da = n ? sum / static_cast<double>(n) : 0.0;
  p.hpwl_m = r.extraction.total_wirelength_um * 1e-6;
  return p;
}
}  // namespace

int main() {
  bench::header("Flow-parameter ablation (flat flow, AES byte slice)");

  qu::Table t({"knob", "value", "max dA (dual)", "mean dA (dual)", "HPWL (m)"});
  t.set_precision(3);

  for (int moves : {2, 8, 32, 96}) {
    const Point p = run(moves, 250.0, 0.65);
    t.add_row({"moves/cell", std::to_string(moves), t.format_double(p.max_da),
               t.format_double(p.mean_da), t.format_double(p.hpwl_m)});
  }
  for (double rep : {0.0, 100.0, 250.0, 1000.0}) {
    const Point p = run(32, rep, 0.65);
    t.add_row({"repeater dist (um)", t.format_double(rep),
               t.format_double(p.max_da), t.format_double(p.mean_da),
               t.format_double(p.hpwl_m)});
  }
  for (double util : {0.4, 0.65, 0.85}) {
    const Point p = run(32, 250.0, util);
    t.add_row({"utilization", t.format_double(util), t.format_double(p.max_da),
               t.format_double(p.mean_da), t.format_double(p.hpwl_m)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "readings: more annealing lowers the mean criterion (wirelength down)\n"
      "but the max dA is tail-dominated and noisy; the repeater-distance cap\n"
      "only bites when nets exceed it — on this slice-sized die (~0.25 mm)\n"
      "most settings are inert and the knob matters at AES-core scale\n"
      "(table2_criterion); higher utilization shrinks the die and with it\n"
      "both the wirelength and the criterion.\n");
  return 0;
}
