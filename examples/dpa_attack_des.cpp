// DPA on a DES S-Box slice with the paper's historical D-function
// (section IV, after Messerges):  D(C1, P6, K0) = SBOX1(P6 xor K0)(C1).
// The victim's rails are unbalanced by hand (as a flat P&R would) so the
// attack has a physical leak to exploit.
//
// Usage: dpa_attack_des [key6_hex] [num_traces]
#include <cstdio>
#include <cstdlib>

#include "qdi/dpa/acquisition.hpp"
#include "qdi/dpa/dpa.hpp"
#include "qdi/gates/testbench.hpp"

int main(int argc, char** argv) {
  using namespace qdi;

  const std::uint8_t key =
      argc > 1 ? static_cast<std::uint8_t>(std::strtoul(argv[1], nullptr, 16) & 0x3f)
               : 0x2b;
  const std::size_t num_traces =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 800;

  gates::DesSboxSlice slice = gates::build_des_sbox_slice(/*box=*/0);

  // Introduce rail dissymmetry on the S-Box output channels (what an
  // uncontrolled place-and-route does to the layout).
  std::size_t unbalanced = 0;
  for (netlist::ChannelId ch = 0; ch < slice.nl.num_channels(); ++ch) {
    const netlist::Channel& c = slice.nl.channel(ch);
    if (c.name.find("sbox/out") != std::string::npos) {
      slice.nl.net(c.rails[1]).cap_ff *= 1.8;
      ++unbalanced;
    }
  }
  std::printf("victim: DES SBOX1 slice, %zu gates, %zu channels unbalanced "
              "(dA = 0.8)\n", slice.nl.num_gates(), unbalanced);

  dpa::Acquisition cfg;
  cfg.num_traces = num_traces;
  cfg.seed = 31337;
  cfg.power.noise_sigma_ua = 1.0;
  std::printf("acquiring %zu traces against secret 6-bit subkey 0x%02x...\n",
              num_traces, key);
  const dpa::TraceSet traces = dpa::acquire_des_sbox_slice(slice, key, cfg);

  // The paper's single-output-bit D-function, then the 4-bit refinement.
  const dpa::KeyRecoveryResult single =
      dpa::recover_key(traces, dpa::des_sbox_selection(0, 0), 64);
  std::vector<dpa::SelectionFn> bits;
  for (int b = 0; b < 4; ++b) bits.push_back(dpa::des_sbox_selection(0, b));
  const dpa::KeyRecoveryResult multi =
      dpa::recover_key_multibit(traces, bits, 64);

  std::printf("\nsingle-bit D (paper's D(C1,P6,K0)): best 0x%02x, rank of true"
              " key %zu, margin %.2f\n",
              single.best_guess, single.rank_of(key), single.margin());
  std::printf("4-bit D:                            best 0x%02x, rank of true"
              " key %zu, margin %.2f\n",
              multi.best_guess, multi.rank_of(key), multi.margin());
  std::printf("\nresult: %s\n", multi.best_guess == key
                                    ? "secret subkey recovered"
                                    : "attack failed (increase traces)");
  return multi.best_guess == key ? 0 : 1;
}
