// DPA on a DES S-Box slice with the paper's historical D-function
// (section IV, after Messerges):  D(C1, P6, K0) = SBOX1(P6 xor K0)(C1).
// The victim's rails are unbalanced by hand (as a flat P&R would) so the
// attack has a physical leak to exploit. One campaign, analysed twice:
// the paper's single-output-bit D, then the 4-bit refinement.
//
// Usage: dpa_attack_des [key6_hex] [num_traces]
#include <cstdio>
#include <cstdlib>

#include "qdi/qdi.hpp"

int main(int argc, char** argv) {
  using namespace qdi;

  const std::uint8_t key =
      argc > 1
          ? static_cast<std::uint8_t>(std::strtoul(argv[1], nullptr, 16) & 0x3f)
          : 0x2b;
  const std::size_t num_traces =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 800;

  power::PowerModelParams pm;
  pm.noise_sigma_ua = 1.0;

  // Introduce rail dissymmetry on the S-Box output channels (what an
  // uncontrolled place-and-route does to the layout).
  const auto unbalance = [](netlist::Netlist& nl) {
    for (netlist::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
      const netlist::Channel& c = nl.channel(ch);
      if (c.name.find("sbox/out") != std::string::npos)
        nl.net(c.rails[1]).cap_ff *= 1.8;
    }
  };

  std::printf("acquiring %zu traces against secret 6-bit subkey 0x%02x...\n",
              num_traces, key);

  // One campaign: acquisition + the 4-bit multi-bit refinement.
  const campaign::CampaignResult multi = campaign::Campaign()
                                             .target(campaign::des_sbox_slice())
                                             .key(key)
                                             .seed(31337)
                                             .traces(num_traces)
                                             .threads(4)
                                             .power(pm)
                                             .prepare(unbalance)
                                             .attack(campaign::Dpa{})
                                             .run();
  std::printf("victim: DES SBOX1 slice, %zu gates, max dA = %.2f\n",
              multi.nl.num_gates(), multi.max_da);

  // The acquired TraceSet interoperates with the dpa:: toolkit directly:
  // re-analyse the same traces with the paper's single-bit D-function.
  const dpa::KeyRecoveryResult single =
      dpa::recover_key(multi.traces, dpa::des_sbox_selection(0, 0), 64);

  std::printf("\nsingle-bit D (paper's D(C1,P6,K0)): best 0x%02x, rank of true"
              " key %zu, margin %.2f\n",
              single.best_guess, single.rank_of(key), single.margin());
  std::printf("4-bit D:                            best 0x%02x, rank of true"
              " key %zu, margin %.2f\n",
              multi.attack->best_guess, multi.attack->true_key_rank,
              multi.attack->margin);
  std::printf("\nresult: %s\n", multi.key_recovered()
                                    ? "secret subkey recovered"
                                    : "attack failed (increase traces)");
  return multi.key_recovered() ? 0 : 1;
}
