// Fault injection and DFA: the paper's sections V-VI claim, measured.
//
// Two victims compute the same DES S-Box lookup:
//
//   * des_sbox_slice — the QDI dual-rail design. A stuck rail starves
//     the completion tree; the four-phase handshake deadlocks and the
//     attacker collects nothing (denial of service, not key leakage).
//   * des_sbox_sync  — a synchronous-style single-rail datapath behind
//     the same channel interface, with a faked completion signal. The
//     same faults sail through as valid-looking wrong ciphertexts, and
//     differential fault analysis votes the 6-bit subkey out of them.
//
// Usage: fault_attack [key6_hex] [max_sites]
#include <cstdio>
#include <cstdlib>

#include "qdi/qdi.hpp"

namespace {

void print_summary(const char* label,
                   const qdi::campaign::FaultCampaignResult& r) {
  std::printf("\n%s: %zu sites, %zu injections, %zu runs\n", label, r.sites,
              r.injections, r.summary.runs);
  std::printf("  deadlock %zu | masked %zu | exploitable %zu (rate %.1f%%)\n",
              r.summary.deadlock, r.summary.masked, r.summary.exploitable,
              100.0 * r.summary.exploitable_rate());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qdi;

  const std::uint8_t key =
      argc > 1
          ? static_cast<std::uint8_t>(std::strtoul(argv[1], nullptr, 16) & 0x3f)
          : 0x2b;
  const std::size_t max_sites =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 24;

  std::printf("fault sweep vs secret 6-bit subkey 0x%02x "
              "(stuck-at-0/1, %zu sites max per victim)\n",
              key, max_sites);

  // The QDI victim: every gate-driven net is a candidate site.
  const campaign::FaultCampaignResult qdi_r = campaign::FaultCampaign()
                                                  .target(campaign::des_sbox_slice())
                                                  .key(key)
                                                  .seed(31337)
                                                  .max_sites(max_sites)
                                                  .repeats(4)
                                                  .threads(4)
                                                  .run();
  print_summary("QDI dual-rail slice", qdi_r);

  // The synchronous-style counterexample, faulted in its key-mixing
  // stage (where DFA differentials carry key information).
  const campaign::FaultCampaignResult sync_r =
      campaign::FaultCampaign()
          .target(campaign::des_sbox_sync())
          .key(key)
          .seed(31337)
          .sites_matching("addkey0")
          .repeats(16)
          .threads(4)
          .run();
  print_summary("sync-style counterexample", sync_r);

  if (sync_r.dfa) {
    const dpa::DfaResult& d = *sync_r.dfa;
    std::printf("\nDFA over %zu exploitable pairs: best guess 0x%02x "
                "(%zu votes), rank of true key %zu, %zu surviving guesses\n",
                d.pairs_used, d.best_guess, d.best_votes,
                d.rank_of(sync_r.true_guess), d.survivors);
  } else {
    std::printf("\nDFA: no exploitable pairs collected\n");
  }

  const bool qdi_resists = qdi_r.summary.exploitable == 0;
  const bool dfa_breaks_sync =
      sync_r.dfa && sync_r.dfa->rank_of(sync_r.true_guess) == 0;
  std::printf("\nresult: QDI %s, sync-style victim %s\n",
              qdi_resists ? "yields no DFA material (deadlock/masked only)"
                          : "LEAKED exploitable faults",
              dfa_breaks_sync ? "broken by DFA (subkey recovered)"
                              : "not broken");
  return qdi_resists && dfa_breaks_sync ? 0 : 1;
}
