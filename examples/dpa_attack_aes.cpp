// End-to-end DPA attack on the first-round AES byte slice (section IV of
// the paper), staged the way the paper tells the story:
//
//   stage 1 — place the circuit with the conventional flat flow and
//     extract real net capacitances: EVERY channel picks up residual
//     dissymmetry. The known-key bias is large, but full key recovery is
//     murky: thousands of comparably-unbalanced code groups produce
//     ghost bias for wrong guesses too (secured QDI logic resists the
//     naive attack — the companion study's finding).
//   stage 2 — the paper's warning case: "the existence of some channels
//     having a high criterion value greatly degrades the DPA resistance".
//     We repair every channel EXCEPT the attacked S-Box output latch
//     (keeping its extracted imbalance) and re-attack: the key falls.
//
// Usage: dpa_attack_aes [key_byte_hex] [num_traces]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "qdi/core/criterion.hpp"
#include "qdi/core/secure_flow.hpp"
#include "qdi/dpa/acquisition.hpp"
#include "qdi/dpa/dpa.hpp"
#include "qdi/gates/testbench.hpp"

namespace {

/// Equalize rail caps of every channel except those matching `keep`.
void balance_except(qdi::netlist::Netlist& nl, const char* keep) {
  for (qdi::netlist::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
    const qdi::netlist::Channel& c = nl.channel(ch);
    if (keep != nullptr && c.name.find(keep) != std::string::npos) continue;
    double cap_max = 0.0;
    for (auto r : c.rails) cap_max = std::max(cap_max, nl.net(r).cap_ff);
    for (auto r : c.rails) nl.net(r).cap_ff = cap_max;
  }
}

void report(const char* stage, const qdi::dpa::KeyRecoveryResult& r,
            std::uint8_t key) {
  std::printf("%s\n", stage);
  std::vector<unsigned> order(256);
  for (unsigned g = 0; g < 256; ++g) order[g] = g;
  std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return r.guess_peak[a] > r.guess_peak[b];
  });
  for (int i = 0; i < 3; ++i)
    std::printf("    #%d  0x%02x : %.3f%s\n", i + 1,
                order[static_cast<std::size_t>(i)],
                r.guess_peak[order[static_cast<std::size_t>(i)]],
                order[static_cast<std::size_t>(i)] == key ? "   <-- secret key"
                                                          : "");
  std::printf("    true-key rank %zu, margin %.3f\n\n", r.rank_of(key),
              r.margin());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qdi;

  const std::uint8_t key =
      argc > 1 ? static_cast<std::uint8_t>(std::strtoul(argv[1], nullptr, 16))
               : 0xa7;
  const std::size_t num_traces =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1000;

  std::vector<dpa::SelectionFn> bits;
  for (int b = 0; b < 8; ++b) bits.push_back(dpa::aes_sbox_selection(0, b));

  // ---- stage 1: flat P&R, global residual dissymmetry --------------------
  gates::AesByteSlice slice = gates::build_aes_byte_slice();
  core::FlowOptions flow;
  flow.placer.mode = pnr::FlowMode::Flat;
  flow.placer.seed = 2026;
  flow.placer.moves_per_cell = 20;
  const core::FlowResult placed = core::run_secure_flow(slice.nl, flow);
  std::printf("victim: %zu gates, flat flow; max dA = %.2f, mean dA = %.3f\n",
              slice.nl.num_gates(), placed.max_da, placed.mean_da);
  for (const auto& ch : core::most_critical(placed.criteria, 3))
    std::printf("  critical channel %-34s dA = %.2f\n", ch.name.c_str(), ch.dA);

  dpa::Acquisition cfg;
  cfg.num_traces = num_traces;
  cfg.seed = 424242;
  std::printf("\nacquiring %zu traces against secret key byte 0x%02x...\n\n",
              num_traces, key);
  const dpa::TraceSet global_traces =
      dpa::acquire_aes_byte_slice(slice, key, cfg);
  const auto global = dpa::recover_key_multibit(global_traces, bits, 256);
  report("stage 1 — global residual dissymmetry (every channel leaks a bit):",
         global, key);

  // ---- stage 2: one critical channel among balanced ones ------------------
  balance_except(slice.nl, "hb/q_q0");
  const auto criteria = core::evaluate_criterion(slice.nl);
  std::printf("stage 2 — all channels repaired except the attacked latch "
              "(max dA now %.2f):\n",
              core::max_dA(criteria));
  const dpa::TraceSet critical_traces =
      dpa::acquire_aes_byte_slice(slice, key, cfg);
  const auto critical = dpa::recover_key_multibit(critical_traces, bits, 256);
  report("", critical, key);

  const std::size_t mtd = dpa::measurements_to_disclosure(
      critical_traces, dpa::aes_sbox_selection(0, 0), 256, key, 50, 50);
  if (critical.best_guess == key) {
    std::printf("secret key byte recovered: 0x%02x", critical.best_guess);
    if (mtd) std::printf(" (measurements to disclosure: %zu traces)", mtd);
    std::printf("\n");
  } else {
    std::printf("attack failed — increase the trace count\n");
  }
  return critical.best_guess == key ? 0 : 1;
}
