// End-to-end DPA attack on the first-round AES byte slice (section IV of
// the paper), staged the way the paper tells the story, as two
// qdi::campaign runs sharing one victim family:
//
//   stage 1 — place the circuit with the conventional flat flow and
//     extract real net capacitances: EVERY channel picks up residual
//     dissymmetry. The known-key bias is large, but full key recovery is
//     murky: thousands of comparably-unbalanced code groups produce
//     ghost bias for wrong guesses too (secured QDI logic resists the
//     naive attack — the companion study's finding).
//   stage 2 — the paper's warning case: "the existence of some channels
//     having a high criterion value greatly degrades the DPA resistance".
//     We repair every channel EXCEPT the attacked S-Box output latch
//     (keeping its extracted imbalance) and re-attack: the key falls.
//
// Usage: dpa_attack_aes [key_byte_hex] [num_traces]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "qdi/qdi.hpp"

namespace {

/// Equalize rail caps of every channel except those matching `keep`.
void balance_except(qdi::netlist::Netlist& nl, const char* keep) {
  for (qdi::netlist::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
    const qdi::netlist::Channel& c = nl.channel(ch);
    if (keep != nullptr && c.name.find(keep) != std::string::npos) continue;
    double cap_max = 0.0;
    for (auto r : c.rails) cap_max = std::max(cap_max, nl.net(r).cap_ff);
    for (auto r : c.rails) nl.net(r).cap_ff = cap_max;
  }
}

void report(const char* stage, const qdi::campaign::CampaignResult& r) {
  std::printf("%s\n", stage);
  const auto& scores = r.attack->guess_scores;
  std::vector<unsigned> order(scores.size());
  for (unsigned g = 0; g < scores.size(); ++g) order[g] = g;
  std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return scores[a] > scores[b];
  });
  for (int i = 0; i < 3; ++i)
    std::printf("    #%d  0x%02x : %.3f%s\n", i + 1,
                order[static_cast<std::size_t>(i)],
                scores[order[static_cast<std::size_t>(i)]],
                order[static_cast<std::size_t>(i)] == (r.key & 0xff)
                    ? "   <-- secret key"
                    : "");
  std::printf("    true-key rank %zu, margin %.3f\n\n",
              r.attack->true_key_rank, r.attack->margin);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qdi;

  const std::uint8_t key =
      argc > 1 ? static_cast<std::uint8_t>(std::strtoul(argv[1], nullptr, 16))
               : 0xa7;
  const std::size_t num_traces =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1000;

  core::FlowOptions flow;
  flow.placer.mode = pnr::FlowMode::Flat;
  flow.placer.seed = 2026;
  flow.placer.moves_per_cell = 20;

  campaign::Dpa dpa;
  dpa.compute_mtd = true;

  const auto base = [&] {
    return campaign::Campaign()
        .target(campaign::aes_byte_slice())
        .key(key)
        .seed(424242)
        .traces(num_traces)
        .threads(4)
        .flow(flow)
        .attack(dpa);
  };

  // ---- stage 1: flat P&R, global residual dissymmetry --------------------
  std::printf("acquiring %zu traces against secret key byte 0x%02x...\n\n",
              num_traces, key);
  const campaign::CampaignResult global = base().run();
  std::printf("victim: %zu gates, flat flow; max dA = %.2f, mean dA = %.3f\n",
              global.nl.num_gates(), global.max_da, global.mean_da);
  for (const auto& ch : core::most_critical(global.criteria, 3))
    std::printf("  critical channel %-34s dA = %.2f\n", ch.name.c_str(), ch.dA);
  report("\nstage 1 — global residual dissymmetry (every channel leaks a "
         "bit):",
         global);

  // ---- stage 2: one critical channel among balanced ones ------------------
  const campaign::CampaignResult critical =
      base()
          .prepare([](netlist::Netlist& nl) { balance_except(nl, "hb/q_q0"); })
          .run();
  std::printf("stage 2 — all channels repaired except the attacked latch "
              "(max dA now %.2f):\n",
              critical.max_da);
  report("", critical);

  if (critical.key_recovered()) {
    std::printf("secret key byte recovered: 0x%02x", critical.attack->best_guess);
    if (critical.attack->mtd)
      std::printf(" (measurements to disclosure: %zu traces)",
                  critical.attack->mtd);
    std::printf("\n");
  } else {
    std::printf("attack failed — increase the trace count\n");
  }
  return critical.key_recovered() ? 0 : 1;
}
