// The fig. 8 QDI AES crypto-processor end to end: every trace is one
// four-phase handshake of the full ~25k-cell core (AES_KEY subkey
// derivation, BYTESUB, DECALHOR, MIXCOLUMN), driven through the
// standard qdi::campaign API like any slice target.
//
//   stage 1 — fused first-round CPA: acquisition segments stream
//     straight into the online correlation accumulators (no TraceSet is
//     ever materialized), guessing the derived subkey byte against
//     sbox(data0 ^ subkey0).
//   stage 2 — bounded fault-resilience probe: a handful of injection
//     sites on the core, classified deadlock / masked / exploitable
//     through the same machinery as the slice studies. The paper's
//     claim is that the QDI handshake turns faults into deadlocks, not
//     DFA material.
//
// Usage: aes_core_campaign [key_word_hex] [num_traces]
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "qdi/qdi.hpp"

int main(int argc, char** argv) {
  namespace qc = qdi::campaign;

  const std::uint64_t key =
      argc > 1 ? std::strtoull(argv[1], nullptr, 16) : 0x2b7e151628aed2a6ull;
  const std::size_t traces =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;

  const qc::TargetInstance probe = qc::aes_core().build(key);
  std::printf("aes_core end-to-end: %zu cells, %zu channels, key %016llx\n",
              probe.nl.num_cells(), probe.nl.num_channels(),
              static_cast<unsigned long long>(key));

  const qc::CampaignResult cpa = qc::Campaign()
                                     .target(qc::aes_core())
                                     .key(key)
                                     .seed(7)
                                     .traces(traces)
                                     .fused(32)
                                     .attack(qc::Cpa{})
                                     .run();
  std::printf(
      "  fused CPA over %zu traces: %zu transitions, best guess 0x%02x "
      "(true subkey byte 0x%02x, rank %zu, margin %.3f)\n",
      traces, cpa.acquisition.transitions, cpa.attack->best_guess,
      probe.true_guess, cpa.attack->true_key_rank, cpa.attack->margin);

  qc::FaultCampaignOptions fopt;
  fopt.max_sites = 6;
  fopt.repeats = 1;
  const qc::CampaignResult flt = qc::Campaign()
                                     .target(qc::aes_core())
                                     .key(key)
                                     .seed(7)
                                     .faults(fopt)
                                     .run();
  const qc::FaultSummary& s = flt.faults->summary;
  std::printf(
      "  fault probe: %zu runs -> %zu deadlock, %zu masked, %zu exploitable "
      "(rate %.3f)\n",
      s.runs, s.deadlock, s.masked, s.exploitable, s.exploitable_rate());
  return 0;
}
