// Asynchronous pipeline demo: an 8-bit wide, 4-deep WCHB FIFO with real
// stage-to-stage acknowledge wiring (fig. 1/2 of the paper: handshake-
// based communication between modules, four-phase protocol).
//
// Shows tokens flowing through, the per-cycle transition count (constant,
// whatever the data), and the self-timed cycle latency.
#include <cstdio>

#include "qdi/qdi.hpp"

int main() {
  using namespace qdi;

  gates::WchbFifo fifo = gates::build_wchb_fifo(/*width=*/8, /*depth=*/4);
  std::printf("WCHB FIFO: 8 channels x 4 stages, %zu gates, %zu nets\n\n",
              fifo.nl.num_gates(), fifo.nl.num_nets());

  sim::Simulator simulator(fifo.nl);
  sim::FourPhaseEnv env(simulator, fifo.env);
  env.apply_reset();

  util::Rng rng(1);
  std::printf("token  value     transitions  latency(ps)  protocol\n");
  for (int t = 0; t < 10; ++t) {
    const std::uint8_t byte = rng.byte();
    std::vector<int> values(8);
    for (int b = 0; b < 8; ++b) values[static_cast<std::size_t>(b)] = (byte >> b) & 1;
    const auto cyc = env.send(values);
    std::uint8_t out = 0;
    for (int b = 0; b < 8; ++b)
      if (cyc.outputs[static_cast<std::size_t>(b)] == 1)
        out |= static_cast<std::uint8_t>(1 << b);
    std::printf("%5d   0x%02x->0x%02x   %8zu   %10.0f   %s\n", t, byte, out,
                cyc.transitions, cyc.t_valid - cyc.t_start,
                cyc.ok && out == byte ? "ok" : "FAIL");
  }
  std::printf("\nglitches observed: %zu (hazard-free QDI logic)\n",
              simulator.glitch_count());
  return 0;
}
