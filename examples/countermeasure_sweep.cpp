// The paper's punchline in one API call: attack the same DES S-Box
// slice in several countermeasure variants and compare. The unprotected
// victim (rails unbalanced, as a flat P&R leaves them) loses its subkey
// in tens of traces; the balanced variant — cone balancing + rail
// capacitance equalization, the qdi::xform pipeline — drives the
// dissymmetry criterion to zero and the attack into noise; the hardened
// variant adds random per-gate delays on top.
//
// Usage: countermeasure_sweep [key6_hex] [num_traces]
#include <cstdio>
#include <cstdlib>

#include "qdi/qdi.hpp"

int main(int argc, char** argv) {
  using namespace qdi;

  const std::uint8_t key =
      argc > 1
          ? static_cast<std::uint8_t>(std::strtoul(argv[1], nullptr, 16) & 0x3f)
          : 0x2b;
  const std::size_t num_traces =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 400;

  // The uncontrolled-P&R stand-in: unbalance the S-Box output rails.
  const auto unbalance = [](netlist::Netlist& nl) {
    for (netlist::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
      const netlist::Channel& c = nl.channel(ch);
      if (c.name.find("sbox/out") != std::string::npos)
        nl.net(c.rails[1]).cap_ff *= 1.8;
    }
  };

  campaign::Cpa cpa;
  cpa.compute_mtd = true;
  cpa.mtd_start = 20;
  cpa.mtd_step = 20;

  campaign::Campaign campaign;
  campaign.target(campaign::des_sbox_slice())
      .key(key)
      .seed(31337)
      .traces(num_traces)
      .threads(4)
      .prepare(unbalance)
      .attack(cpa);

  std::printf("sweeping %zu traces x 3 countermeasure variants against "
              "subkey 0x%02x...\n\n",
              num_traces, key);
  const campaign::SweepResult sweep = campaign.sweep({
      xform::unprotected(),
      xform::balanced(),
      xform::hardened(),
  });

  std::printf("%s\n", sweep.table().to_string().c_str());
  for (const campaign::SweepVariant& v : sweep.variants) {
    if (v.result.xform && v.result.xform->changed()) {
      std::printf("%s transform:\n%s\n", v.recipe.c_str(),
                  v.result.xform->table().to_string().c_str());
    }
  }

  const campaign::SweepVariant* raw = sweep.find("unprotected");
  const campaign::SweepVariant* bal = sweep.find("balanced");
  bool reproduced = false;
  if (raw != nullptr && bal != nullptr) {
    reproduced = raw->result.key_recovered() && !bal->result.key_recovered();
    std::printf("unprotected: %s (MTD %zu traces)\n",
                raw->result.key_recovered() ? "subkey recovered"
                                            : "attack failed",
                raw->mtd());
    std::printf("balanced:    %s (true-key rank %zu)\n",
                bal->result.key_recovered() ? "subkey recovered"
                                            : "attack defeated",
                bal->result.attack->true_key_rank);
  }
  std::printf("\nresult: %s\n",
              reproduced ? "countermeasure reproduced the paper's comparison"
                         : "unexpected outcome (adjust traces)");
  return reproduced ? 0 : 1;
}
