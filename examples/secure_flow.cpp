// The paper's contribution as a tool: run the DPA-aware design flow
// (place -> extract -> criterion -> accept/iterate/repair) on the AES
// byte slice as three flow-only campaigns, comparing the conventional
// flat flow, the hierarchical flow of section VI, and the
// capacitance-repair extension.
//
// Usage: secure_flow [seed]
#include <cstdio>
#include <cstdlib>

#include "qdi/qdi.hpp"

int main(int argc, char** argv) {
  using namespace qdi;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  util::Table table({"flow", "max dA", "mean dA", "accepted",
                     "core area (um^2)", "iterations", "repaired ch",
                     "added cap (fF)"});
  table.set_precision(3);

  auto run = [&](const char* label, pnr::FlowMode mode, bool repair) {
    core::FlowOptions opt;
    opt.placer.mode = mode;
    opt.placer.seed = seed;
    opt.placer.moves_per_cell = 20;
    opt.max_da_threshold = 0.15;  // the paper's hierarchical flow achieves 0.13
    opt.max_iterations = 3;
    opt.repair = repair;
    opt.repair_target_da = 0.05;

    // A flow-only campaign: no traces, no attack — just place, extract,
    // and evaluate the criterion on the chosen target.
    const campaign::CampaignResult r = campaign::Campaign()
                                           .target(campaign::aes_byte_slice())
                                           .flow(opt)
                                           .run();
    const core::FlowResult& f = *r.flow;
    table.add_row({label, table.format_double(f.max_da),
                   table.format_double(f.mean_da), f.accepted ? "yes" : "NO",
                   table.format_double(f.placement.core_area_um2()),
                   std::to_string(f.iterations_used),
                   std::to_string(f.repaired_channels),
                   table.format_double(f.repair_added_cap_ff)});

    std::printf("%-22s -> most critical channels:\n", label);
    for (const auto& ch : core::most_critical(r.criteria, 3))
      std::printf("    %-34s C = %6.2f | %6.2f fF   dA = %.3f\n",
                  ch.name.c_str(), ch.cap_min_ff, ch.cap_max_ff, ch.dA);
    // Physical eq. 12 ranking (charge + timing terms), which can reorder
    // the raw dA list towards what an attacker actually measures.
    const auto leaks = core::rank_leakage(r.nl, sim::DelayModel{},
                                          power::PowerModelParams{});
    std::printf("    worst by physical leakage score: %s (%.2f uA)\n",
                leaks.empty() ? "-" : leaks[0].name.c_str(),
                leaks.empty() ? 0.0 : leaks[0].score_ua);
  };

  run("flat (AES_v2 style)", pnr::FlowMode::Flat, false);
  run("hierarchical (AES_v1)", pnr::FlowMode::Hierarchical, false);
  run("flat + repair pass", pnr::FlowMode::Flat, true);

  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nreading: the hierarchical flow bounds the criterion by "
              "construction (at an\narea cost); the flat flow needs the "
              "post-route repair extension to pass.\n");
  return 0;
}
