// Crash-safe sharded DPA campaign: the trace budget is partitioned into
// shards that checkpoint their accumulator + stream-digest state
// durably as they go, so a killed campaign resumes from the last commit
// instead of re-acquiring everything.
//
// The demo stages a crash on purpose: run 1 "dies" partway through
// (a fault hook aborts every shard after a few chunks, with retries
// disabled — the moral equivalent of SIGKILL), leaving a directory of
// checkpoints and an honest partial result. Run 2 is the SAME campaign
// pointed at the same directory: it adopts the checkpoints, finishes
// the remaining windows, and lands on results bit-identical to an
// uninterrupted run — which run 3 verifies from a fresh directory.
//
// Usage: sharded_campaign [key6_hex] [num_traces]
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "qdi/qdi.hpp"

int main(int argc, char** argv) {
  using namespace qdi;

  const std::uint8_t key =
      argc > 1
          ? static_cast<std::uint8_t>(std::strtoul(argv[1], nullptr, 16) & 0x3f)
          : 0x2b;
  const std::size_t num_traces =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 600;

  power::PowerModelParams pm;
  pm.noise_sigma_ua = 1.0;
  const auto unbalance = [](netlist::Netlist& nl) {
    for (netlist::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
      const netlist::Channel& c = nl.channel(ch);
      if (c.name.find("sbox/out") != std::string::npos)
        nl.net(c.rails[1]).cap_ff *= 1.8;
    }
  };
  const auto campaign = [&] {
    return campaign::Campaign()
        .target(campaign::des_sbox_slice())
        .key(key)
        .seed(31337)
        .traces(num_traces)
        .threads(4)
        .power(pm)
        .prepare(unbalance)
        .attack(campaign::Dpa{});
  };

  campaign::ShardedOptions opt;
  opt.shards = 4;
  opt.checkpoint_interval = 32;
  opt.chunk_traces = 16;
  opt.checkpoint_dir = "sharded_ckpt_demo";
  opt.concurrency = 2;

  // ---- run 1: the campaign that dies --------------------------------------
  std::printf("run 1: %zu traces over %zu shards, killed mid-flight...\n",
              num_traces, opt.shards);
  campaign::ShardedOptions crash = opt;
  crash.max_attempts = 1;  // a real kill gets no in-process retry
  std::array<std::atomic<int>, 16> chunks{};
  crash.on_progress = [&](std::size_t shard, std::uint64_t) {
    if (++chunks[shard] == 5) throw std::runtime_error("simulated power loss");
  };
  const campaign::ShardedResult dead = campaign().sharded(crash);
  std::printf("%s\n", dead.table().to_string().c_str());
  std::printf("covered %zu/%zu traces before the crash\n\n", dead.covered,
              dead.total_traces);

  // ---- run 2: same campaign, same directory -> resume ----------------------
  std::printf("run 2: resuming from '%s'...\n", opt.checkpoint_dir.c_str());
  const campaign::ShardedResult resumed = campaign().sharded(opt);
  std::printf("%s\n", resumed.table().to_string().c_str());

  // ---- run 3: uninterrupted reference -> must be bit-identical -------------
  campaign::ShardedOptions ref_opt = opt;
  ref_opt.checkpoint_dir = "sharded_ckpt_demo_ref";
  const campaign::ShardedResult ref = campaign().sharded(ref_opt);
  bool identical = resumed.complete() && ref.complete() &&
                   resumed.attack.has_value() && ref.attack.has_value() &&
                   resumed.attack->guess_scores == ref.attack->guess_scores;
  for (std::size_t s = 0; identical && s < ref.shards.size(); ++s)
    identical = resumed.shards[s].digest_hex == ref.shards[s].digest_hex;

  std::printf("resumed vs uninterrupted: scores and stream digests %s\n",
              identical ? "bit-identical" : "DIFFER (bug!)");
  if (resumed.attack)
    std::printf("best guess 0x%02x, rank of true key %zu, margin %.2f\n",
                resumed.attack->best_guess, resumed.attack->true_key_rank,
                resumed.attack->margin);
  std::printf("result: %s\n", resumed.key_recovered()
                                  ? "secret subkey recovered"
                                  : "attack failed (increase traces)");
  return identical && resumed.key_recovered() ? 0 : 1;
}
