// Quickstart: the paper's whole methodology — victim circuit, power-trace
// acquisition, DPA key recovery, dissymmetry criterion — in one fluent
// qdi::campaign call, then a peek under the hood at the power trace the
// campaign consumed.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "qdi/qdi.hpp"

int main() {
  using namespace qdi;

  // The section-IV attack in ten lines: build the first-round AES byte
  // slice, give the attacked S-Box output latch the rail imbalance an
  // uncontrolled place-and-route leaves behind (dA = 1 on that channel),
  // acquire 800 traces with 4 worker threads, and run multi-bit DPA over
  // all 256 key-byte guesses.
  const campaign::CampaignResult r =
      campaign::Campaign()
          .target(campaign::aes_byte_slice())
          .key(0xa7)
          .seed(2026)
          .traces(800)
          .threads(4)
          .prepare([](netlist::Netlist& nl) {
            for (netlist::ChannelId ch = 0; ch < nl.num_channels(); ++ch)
              if (nl.channel(ch).name.find("hb/q_q0") != std::string::npos)
                nl.net(nl.channel(ch).rails[1]).cap_ff *= 2.0;
          })
          .attack(campaign::Dpa{})
          .run();

  std::printf("victim '%s': %zu gates, max dA = %.2f (attacked channel)\n",
              r.target.c_str(), r.nl.num_gates(), r.max_da);
  std::printf("acquired %zu traces in %.0f ms (%.0f traces/s, %u threads, "
              "%zu glitches)\n",
              r.traces.size(), r.acquisition.wall_ms,
              r.acquisition.traces_per_s, r.acquisition.threads_used,
              r.acquisition.glitches);
  std::printf("DPA over %zu guesses: best 0x%02x, true-key rank %zu, "
              "margin %.2f\n",
              r.attack->guess_scores.size(), r.attack->best_guess,
              r.attack->true_key_rank, r.attack->margin);
  std::printf("%s\n\n", r.key_recovered()
                            ? "secret key byte recovered"
                            : "attack failed (increase traces)");

  // Under the hood: one acquired supply-current trace, coarse-plotted.
  // The two bursts are the four-phase protocol: evaluation, then
  // return-to-zero — fig. 6's trace window.
  const power::TraceView trace = r.traces.trace(0);
  std::printf("power trace: %zu samples @ %.0f ps, total charge %.1f fC\n",
              trace.size(), trace.dt_ps(), trace.total_charge_fc() / 1000.0);
  const std::size_t bins = 64;
  double peak = 0.0;
  for (std::size_t j = 0; j < trace.size(); ++j)
    if (trace[j] > peak) peak = trace[j];
  std::printf("  I(t): ");
  for (std::size_t b = 0; b < bins; ++b) {
    double v = 0.0;
    for (std::size_t j = b * trace.size() / bins;
         j < (b + 1) * trace.size() / bins; ++j)
      if (trace[j] > v) v = trace[j];
    std::putchar(v > 0.66 * peak ? '#' : v > 0.15 * peak ? '=' : '.');
  }
  std::printf("\n        ^evaluation phase          ^return-to-zero phase\n");
  return r.key_recovered() ? 0 : 1;
}
