// Quickstart: build the paper's fig. 4 dual-rail XOR pipeline stage, run
// four-phase handshake cycles through it, and look at its power trace —
// the three core abstractions of the library in ~60 lines:
//
//   netlist/gates  -> qdi::gates::build_xor_stage()
//   simulation     -> qdi::sim::Simulator + FourPhaseEnv
//   power model    -> qdi::power::synthesize()
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "qdi/gates/testbench.hpp"
#include "qdi/netlist/graph.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/environment.hpp"

int main() {
  using namespace qdi;

  // 1. A circuit: the fig. 4 secured dual-rail XOR (4 Muller minterm
  //    gates, 2 OR merges, 2 Cr output latches, completion NOR).
  gates::XorStage xor_stage = gates::build_xor_stage();
  std::printf("netlist '%s': %zu gates, %zu nets, %zu channels\n",
              xor_stage.nl.name().c_str(), xor_stage.nl.num_gates(),
              xor_stage.nl.num_nets(), xor_stage.nl.num_channels());

  // The annotated directed graph of fig. 5: levels and structure.
  const netlist::Graph graph(xor_stage.nl);
  std::printf("logic levels Nc = %d (paper: 4)\n\n", graph.num_levels());

  // 2. Simulate four-phase cycles for every input pair.
  sim::Simulator simulator(xor_stage.nl);
  sim::FourPhaseEnv env(simulator, xor_stage.env);
  env.apply_reset();

  std::printf("four-phase cycles (a, b) -> a^b  [transitions per cycle]\n");
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const std::vector<int> values{a, b};
      const auto cycle = env.send(values);
      std::printf("  (%d, %d) -> %d   [%zu transitions, valid after %.0f ps]\n",
                  a, b, cycle.outputs[0], cycle.transitions,
                  cycle.t_valid - cycle.t_start);
    }
  }
  std::printf("note: the transition count is identical for every input — the\n"
              "QDI balance property that makes the block's power data-"
              "independent.\n\n");

  // 3. Synthesize the supply-current trace of one more cycle.
  simulator.clear_log();
  const std::vector<int> values{1, 0};
  const auto cycle = env.send(values);
  power::PowerModelParams pm;
  const power::PowerTrace trace = power::synthesize(
      simulator.log(), cycle.t_start, xor_stage.env.period_ps, pm, nullptr);
  std::printf("power trace: %zu samples @ %.0f ps, total charge %.1f fC\n",
              trace.size(), trace.dt_ps(), trace.total_charge_fc() / 1000.0);

  // Coarse terminal plot.
  const std::size_t bins = 64;
  double peak = 0.0;
  for (std::size_t j = 0; j < trace.size(); ++j) peak = std::max(peak, trace[j]);
  std::printf("  I(t): ");
  for (std::size_t b = 0; b < bins; ++b) {
    double v = 0.0;
    for (std::size_t j = b * trace.size() / bins;
         j < (b + 1) * trace.size() / bins; ++j)
      v = std::max(v, trace[j]);
    std::putchar(v > 0.66 * peak ? '#' : v > 0.15 * peak ? '=' : '.');
  }
  std::printf("\n        ^evaluation phase          ^return-to-zero phase\n");
  return 0;
}
