// Design-side tooling tour: export the fig. 4 XOR stage as structural
// Verilog and Graphviz DOT, print its static-timing report before and
// after a placement/extraction round, and show the annotated-graph
// statistics (Nc, level occupancy) the paper's formal model consumes.
//
// Usage: design_reports [output_dir]     (default: current directory)
#include <cstdio>
#include <fstream>
#include <string>

#include "qdi/qdi.hpp"

int main(int argc, char** argv) {
  using namespace qdi;
  const std::string dir = argc > 1 ? argv[1] : ".";

  gates::XorStage x = gates::build_xor_stage();

  // --- netlist exports ----------------------------------------------------
  {
    std::ofstream v(dir + "/xor_stage.v");
    netlist::write_verilog(v, x.nl);
    std::ofstream d(dir + "/xor_stage.dot");
    const netlist::Graph g(x.nl);
    d << g.to_dot();
  }
  std::printf("wrote %s/xor_stage.v and %s/xor_stage.dot\n", dir.c_str(),
              dir.c_str());

  // --- formal-model structure (fig. 5 reading) -----------------------------
  const netlist::Graph g(x.nl);
  std::printf("\nannotated graph: Nc = %d levels, occupancy per level:",
              g.num_levels());
  for (std::size_t n : g.level_occupancy()) std::printf(" %zu", n);
  std::printf("\n");

  // --- timing before physical design ---------------------------------------
  const sim::DelayModel dm;
  core::TimingReport pre = core::analyze_timing(g, dm);
  std::printf("\ncritical path (uniform 8 fF nets):\n%s",
              core::timing_table(pre).to_string().c_str());
  std::printf("cycle estimate: %.0f ps\n", pre.cycle_estimate_ps);

  // --- place, extract, re-time ---------------------------------------------
  pnr::PlacerOptions popt;
  popt.mode = pnr::FlowMode::Flat;
  popt.seed = 11;
  const pnr::Placement placement = pnr::place(x.nl, popt);
  const pnr::ExtractionSummary ext = pnr::extract(x.nl, placement);
  std::printf("\nplaced on a %.0f x %.0f um die; extracted %.1f um of wire, "
              "mean net cap %.2f fF\n",
              placement.die_w_um, placement.die_h_um, ext.total_wirelength_um,
              ext.mean_net_cap_ff);

  const netlist::Graph g2(x.nl);
  core::TimingReport post = core::analyze_timing(g2, dm);
  std::printf("\ncritical path (extracted capacitances):\n%s",
              core::timing_table(post).to_string().c_str());
  std::printf("cycle estimate: %.0f ps (%.1f%% vs pre-layout)\n",
              post.cycle_estimate_ps,
              100.0 * (post.cycle_estimate_ps / pre.cycle_estimate_ps - 1.0));
  return 0;
}
