#include <gtest/gtest.h>

#include <set>

#include "qdi/crypto/aes.hpp"
#include "qdi/gates/aes_datapath.hpp"
#include "qdi/pnr/placement.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/rng.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;
namespace qc = qdi::crypto;

namespace {
/// Simulation harness around a 32-bit combinational bus function.
struct Bus32Fixture {
  qn::Netlist nl{"bus32"};
  qg::Builder b{nl};
  std::vector<qg::DualRail> in;
  std::vector<qg::DualRail> out;
  qs::EnvSpec spec;

  template <typename Fn>
  explicit Bus32Fixture(Fn&& fn) {
    for (int i = 0; i < 32; ++i) in.push_back(b.dr_input("i" + std::to_string(i)));
    out = fn(b, in);
    for (std::size_t i = 0; i < out.size(); ++i)
      b.dr_output(out[i], "o" + std::to_string(i));
    for (const auto& d : in) spec.inputs.push_back(d.ch);
    for (const auto& d : out) spec.outputs.push_back(d.ch);
    spec.period_ps = 40000.0;
  }

  std::uint32_t run(std::uint32_t word) {
    qs::Simulator sim(nl);
    qs::FourPhaseEnv env(sim, spec);
    env.apply_reset();
    std::vector<int> v(32);
    for (int i = 0; i < 32; ++i) v[static_cast<std::size_t>(i)] = (word >> i) & 1;
    const auto cyc = env.send(v);
    EXPECT_TRUE(cyc.ok);
    std::uint32_t r = 0;
    for (std::size_t i = 0; i < cyc.outputs.size(); ++i)
      if (cyc.outputs[i] == 1) r |= (1u << i);
    return r;
  }
};

std::uint32_t reference_mixcolumn(std::uint32_t word) {
  // Bytes LSB-first: byte i = bits [8i, 8i+8).
  qc::Block s{};
  for (int i = 0; i < 4; ++i)
    s[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(word >> (8 * i));
  qc::mix_columns(s);  // operates column-wise; column 0 = bytes 0..3
  std::uint32_t r = 0;
  for (int i = 0; i < 4; ++i) r |= static_cast<std::uint32_t>(s[static_cast<std::size_t>(i)]) << (8 * i);
  return r;
}
}  // namespace

TEST(AesDatapath, XtimeByteMatchesReference) {
  Bus32Fixture f([](qg::Builder& b, std::vector<qg::DualRail>& in) {
    std::vector<qg::DualRail> byte(in.begin(), in.begin() + 8);
    std::vector<qg::DualRail> out = qg::xtime_byte(b, byte, "xt");
    // Pad to pass through the remaining inputs so every input has a sink.
    for (std::size_t i = 8; i < in.size(); ++i) out.push_back(in[i]);
    return out;
  });
  qdi::util::Rng rng(3);
  for (int t = 0; t < 12; ++t) {
    const std::uint8_t a = rng.byte();
    const std::uint32_t out = f.run(a);
    EXPECT_EQ(static_cast<std::uint8_t>(out & 0xff), qc::xtime(a)) << int(a);
  }
}

TEST(AesDatapath, MixColumnMatchesFips197) {
  Bus32Fixture f([](qg::Builder& b, std::vector<qg::DualRail>& in) {
    return qg::mixcolumn_column(b, in, "mix");
  });
  // FIPS-197 example column db 13 53 45 -> 8e 4d a1 bc.
  EXPECT_EQ(f.run(0x455313dbu), 0xbca14d8eu);
  qdi::util::Rng rng(4);
  for (int t = 0; t < 6; ++t) {
    const std::uint32_t w = static_cast<std::uint32_t>(rng.next());
    EXPECT_EQ(f.run(w), reference_mixcolumn(w));
  }
}

TEST(AesDatapath, XorBusMatchesBitwiseXor) {
  qn::Netlist nl("xb");
  qg::Builder b(nl);
  std::vector<qg::DualRail> a, c;
  for (int i = 0; i < 8; ++i) a.push_back(b.dr_input("a" + std::to_string(i)));
  for (int i = 0; i < 8; ++i) c.push_back(b.dr_input("b" + std::to_string(i)));
  const auto o = qg::xor_bus(b, a, c, "x");
  qs::EnvSpec spec;
  for (const auto& d : a) spec.inputs.push_back(d.ch);
  for (const auto& d : c) spec.inputs.push_back(d.ch);
  for (const auto& d : o) {
    b.dr_output(d, "o");
    spec.outputs.push_back(d.ch);
  }
  spec.period_ps = 4000.0;
  qs::Simulator sim(nl);
  qs::FourPhaseEnv env(sim, spec);
  env.apply_reset();
  qdi::util::Rng rng(5);
  for (int t = 0; t < 8; ++t) {
    const std::uint8_t va = rng.byte(), vb = rng.byte();
    std::vector<int> v;
    for (int i = 0; i < 8; ++i) v.push_back((va >> i) & 1);
    for (int i = 0; i < 8; ++i) v.push_back((vb >> i) & 1);
    const auto cyc = env.send(v);
    ASSERT_TRUE(cyc.ok);
    std::uint8_t r = 0;
    for (int i = 0; i < 8; ++i)
      if (cyc.outputs[static_cast<std::size_t>(i)] == 1) r |= static_cast<std::uint8_t>(1 << i);
    EXPECT_EQ(r, va ^ vb);
  }
}

TEST(AesCore, NetlistIsSound) {
  const qg::AesCoreNetlist aes = qg::build_aes_core();
  const auto issues = aes.nl.check();
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues[0]);
}

TEST(AesCore, HasPaperScale) {
  const qg::AesCoreNetlist aes = qg::build_aes_core();
  // The secured AES of the paper is a multi-10k-gate design with eight
  // ByteSub S-Boxes (4 cipher path + 4 key path).
  EXPECT_GT(aes.nl.num_gates(), 20000u);
  EXPECT_GT(aes.nl.num_channels(), 1000u);
  EXPECT_EQ(aes.subkey_channels.size(), 32u);
  EXPECT_EQ(aes.bytesub_in_channels.size(), 32u);
}

TEST(AesCore, Fig8BlocksPresent) {
  const qg::AesCoreNetlist aes = qg::build_aes_core();
  std::set<std::string> regions;
  for (const auto& cell : aes.nl.cells())
    regions.insert(qdi::pnr::region_key(cell, 2));
  for (const char* expected :
       {"aes_core/bytesub", "aes_core/addkey0", "aes_core/addroundkey",
        "aes_core/mixcolumn", "aes_core/dmux", "aes_core/mux4_1",
        "aes_core/dmux1_4", "aes_core/addlastkey", "aes_key/bytesub",
        "aes_key/fifo", "aes_key/xor_key", "aes_key/xor_rc",
        "aes_key/duplicateur", "interface/sa_interface2"}) {
    EXPECT_TRUE(regions.count(expected)) << expected;
  }
}

TEST(AesCore, WithoutKeyPathIsSmaller) {
  qg::AesCoreParams small;
  small.include_key_path = false;
  small.include_interface = false;
  const qg::AesCoreNetlist a = qg::build_aes_core(small);
  const qg::AesCoreNetlist b = qg::build_aes_core();
  EXPECT_LT(a.nl.num_gates(), b.nl.num_gates());
  EXPECT_TRUE(a.nl.check().empty());
}

TEST(AesCore, ChannelArities) {
  const qg::AesCoreNetlist aes = qg::build_aes_core();
  std::size_t dual = 0, groups = 0;
  for (const auto& ch : aes.nl.channels()) {
    EXPECT_GE(ch.arity(), 2u);
    if (ch.arity() == 2)
      ++dual;
    else
      ++groups;
  }
  // Dual-rail data channels plus the 1-of-N code-group channels
  // (minterm layers, decode levels, OR-tree layers).
  EXPECT_GT(dual, 1000u);
  EXPECT_GT(groups, 500u);
}
