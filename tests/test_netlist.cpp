#include <gtest/gtest.h>

#include "qdi/netlist/netlist.hpp"

namespace qn = qdi::netlist;
using qn::CellKind;

namespace {
/// a -> inv -> b -> buf -> c, with a as primary input and c as output.
qn::Netlist tiny_chain() {
  qn::Netlist nl("chain");
  const qn::NetId a = nl.add_input("a");
  const qn::NetId b = nl.add_net("b");
  const qn::NetId c = nl.add_net("c");
  nl.add_cell(CellKind::Inv, "u_inv", {a}, b, "top/left");
  nl.add_cell(CellKind::Buf, "u_buf", {b}, c, "top/right");
  nl.mark_output(c, "c_out");
  return nl;
}
}  // namespace

TEST(Netlist, BuilderWiresDriversAndSinks) {
  const qn::Netlist nl = tiny_chain();
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.num_cells(), 4u);  // input pseudo + inv + buf + output pseudo
  EXPECT_EQ(nl.num_gates(), 2u);

  const qn::NetId a = nl.find_net("a");
  ASSERT_NE(a, qn::kNoNet);
  ASSERT_EQ(nl.net(a).sinks.size(), 1u);
  EXPECT_EQ(nl.cell(nl.net(a).sinks[0].cell).name, "u_inv");

  const qn::NetId b = nl.find_net("b");
  EXPECT_EQ(nl.cell(nl.net(b).driver).name, "u_inv");
}

TEST(Netlist, PrimaryPortsTracked) {
  const qn::Netlist nl = tiny_chain();
  ASSERT_EQ(nl.primary_inputs().size(), 1u);
  ASSERT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.net(nl.primary_inputs()[0]).name, "a");
  EXPECT_EQ(nl.net(nl.primary_outputs()[0]).name, "c");
}

TEST(Netlist, FindByName) {
  const qn::Netlist nl = tiny_chain();
  EXPECT_NE(nl.find_cell("u_inv"), qn::kNoCell);
  EXPECT_EQ(nl.find_cell("nope"), qn::kNoCell);
  EXPECT_EQ(nl.find_net("nope"), qn::kNoNet);
}

TEST(Netlist, DefaultCapIsPaperDefault) {
  const qn::Netlist nl = tiny_chain();
  for (const qn::Net& n : nl.nets()) EXPECT_DOUBLE_EQ(n.cap_ff, 8.0);
}

TEST(Netlist, ResetCapsRestoresDefault) {
  qn::Netlist nl = tiny_chain();
  nl.net(0).cap_ff = 99.0;
  nl.net(0).wirelength_um = 5.0;
  nl.reset_caps(8.0);
  EXPECT_DOUBLE_EQ(nl.net(0).cap_ff, 8.0);
  EXPECT_DOUBLE_EQ(nl.net(0).wirelength_um, 0.0);
}

TEST(Netlist, CheckCleanOnWellFormed) {
  const qn::Netlist nl = tiny_chain();
  EXPECT_TRUE(nl.check().empty());
}

TEST(Netlist, CheckFlagsUndrivenNet) {
  qn::Netlist nl("bad");
  const qn::NetId a = nl.add_net("floating_in");
  const qn::NetId b = nl.add_net("b");
  nl.add_cell(CellKind::Buf, "u", {a}, b);
  const auto issues = nl.check();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("no driver"), std::string::npos);
}

TEST(Netlist, CheckFlagsNonPositiveCap) {
  qn::Netlist nl = tiny_chain();
  nl.net(0).cap_ff = 0.0;
  bool found = false;
  for (const auto& s : nl.check())
    if (s.find("capacitance") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Netlist, ChannelRegistry) {
  qn::Netlist nl("ch");
  const qn::NetId r0 = nl.add_input("d_0");
  const qn::NetId r1 = nl.add_input("d_1");
  const qn::ChannelId ch = nl.add_channel("d", {r0, r1});
  EXPECT_EQ(nl.num_channels(), 1u);
  EXPECT_EQ(nl.channel(ch).arity(), 2u);
  EXPECT_EQ(nl.find_channel("d"), ch);
  EXPECT_EQ(nl.find_channel("x"), qn::Netlist::kNoChannel);
  EXPECT_TRUE(nl.check().empty());
}

TEST(Netlist, OneOfFourChannel) {
  qn::Netlist nl("q");
  std::vector<qn::NetId> rails;
  for (int i = 0; i < 4; ++i)
    rails.push_back(nl.add_input("q_" + std::to_string(i)));
  const qn::ChannelId ch = nl.add_channel("q", rails);
  EXPECT_EQ(nl.channel(ch).arity(), 4u);
}

TEST(Netlist, KindHistogramAndTransistors) {
  const qn::Netlist nl = tiny_chain();
  const auto hist = nl.kind_histogram();
  EXPECT_EQ(hist[static_cast<int>(CellKind::Inv)], 1u);
  EXPECT_EQ(hist[static_cast<int>(CellKind::Buf)], 1u);
  EXPECT_EQ(hist[static_cast<int>(CellKind::Input)], 1u);
  // inv = 2 transistors, buf = 4.
  EXPECT_EQ(nl.transistor_count(), 6u);
}

TEST(Netlist, HierTagsStored) {
  const qn::Netlist nl = tiny_chain();
  EXPECT_EQ(nl.cell(nl.find_cell("u_inv")).hier, "top/left");
  EXPECT_EQ(nl.cell(nl.find_cell("u_buf")).hier, "top/right");
}
