#include <gtest/gtest.h>

#include "qdi/gates/builder.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;

namespace {

/// Harness for a 2-input combinational dual-rail gate.
struct Gate2Fixture {
  qn::Netlist nl{"g2"};
  qg::Builder b{nl};
  qg::DualRail a, c, o;
  qs::EnvSpec spec;

  template <typename Fn>
  explicit Gate2Fixture(Fn&& fn) {
    a = b.dr_input("a");
    c = b.dr_input("b");
    o = fn(b, a, c);
    b.dr_output(o, "o");
    spec.inputs = {a.ch, c.ch};
    spec.outputs = {o.ch};
    spec.period_ps = 2000.0;
  }

  int run(int va, int vb) {
    qs::Simulator sim(nl);
    qs::FourPhaseEnv env(sim, spec);
    env.apply_reset();
    const std::vector<int> v{va, vb};
    const auto cyc = env.send(v);
    EXPECT_TRUE(cyc.ok);
    return cyc.outputs.at(0);
  }
};

}  // namespace

TEST(DualRailGates, XorTruthTable) {
  Gate2Fixture f([](qg::Builder& b, auto& x, auto& y) { return b.dr_xor(x, y, "o"); });
  for (int a = 0; a < 2; ++a)
    for (int c = 0; c < 2; ++c) EXPECT_EQ(f.run(a, c), a ^ c);
}

TEST(DualRailGates, XnorTruthTable) {
  Gate2Fixture f([](qg::Builder& b, auto& x, auto& y) { return b.dr_xnor(x, y, "o"); });
  for (int a = 0; a < 2; ++a)
    for (int c = 0; c < 2; ++c) EXPECT_EQ(f.run(a, c), 1 - (a ^ c));
}

TEST(DualRailGates, AndTruthTable) {
  Gate2Fixture f([](qg::Builder& b, auto& x, auto& y) { return b.dr_and(x, y, "o"); });
  for (int a = 0; a < 2; ++a)
    for (int c = 0; c < 2; ++c) EXPECT_EQ(f.run(a, c), a & c);
}

TEST(DualRailGates, OrTruthTable) {
  Gate2Fixture f([](qg::Builder& b, auto& x, auto& y) { return b.dr_or(x, y, "o"); });
  for (int a = 0; a < 2; ++a)
    for (int c = 0; c < 2; ++c) EXPECT_EQ(f.run(a, c), a | c);
}

TEST(DualRailGates, NotIsFreeRailSwap) {
  qn::Netlist nl("n");
  qg::Builder b(nl);
  const qg::DualRail a = b.dr_input("a");
  const std::size_t gates_before = nl.num_gates();
  const qg::DualRail na = b.dr_not(a);
  EXPECT_EQ(nl.num_gates(), gates_before);  // zero cost
  EXPECT_EQ(na.r0, a.r1);
  EXPECT_EQ(na.r1, a.r0);
}

TEST(DualRailGates, TransitionCountDataIndependentPerGate) {
  // Each DIMS gate must fire the same number of transitions per cycle for
  // every input pair (section II's balanced-path requirement).
  for (auto make : {+[](qg::Builder& b, qg::DualRail& x, qg::DualRail& y) {
                      return b.dr_xor(x, y, "o");
                    },
                    +[](qg::Builder& b, qg::DualRail& x, qg::DualRail& y) {
                      return b.dr_and(x, y, "o");
                    },
                    +[](qg::Builder& b, qg::DualRail& x, qg::DualRail& y) {
                      return b.dr_or(x, y, "o");
                    }}) {
    qn::Netlist nl("t");
    qg::Builder b(nl);
    qg::DualRail a = b.dr_input("a");
    qg::DualRail c = b.dr_input("b");
    const qg::DualRail o = make(b, a, c);
    b.dr_output(o, "o");
    qs::EnvSpec spec;
    spec.inputs = {a.ch, c.ch};
    spec.outputs = {o.ch};
    spec.period_ps = 2000.0;
    qs::Simulator sim(nl);
    qs::FourPhaseEnv env(sim, spec);
    env.apply_reset();
    std::size_t expected = 0;
    for (int va = 0; va < 2; ++va) {
      for (int vb = 0; vb < 2; ++vb) {
        const std::vector<int> v{va, vb};
        const auto cyc = env.send(v);
        ASSERT_TRUE(cyc.ok);
        if (expected == 0)
          expected = cyc.transitions;
        else
          EXPECT_EQ(cyc.transitions, expected) << nl.name();
      }
    }
  }
}

TEST(DualRailGates, Mux2SelectsBetweenInputs) {
  qn::Netlist nl("mux");
  qg::Builder b(nl);
  qg::DualRail sel = b.dr_input("s");
  qg::DualRail a = b.dr_input("a");
  qg::DualRail c = b.dr_input("b");
  const qg::DualRail o = b.dr_mux2(sel, a, c, "o");
  b.dr_output(o, "o");
  qs::EnvSpec spec;
  spec.inputs = {sel.ch, a.ch, c.ch};
  spec.outputs = {o.ch};
  spec.period_ps = 2000.0;
  qs::Simulator sim(nl);
  qs::FourPhaseEnv env(sim, spec);
  env.apply_reset();
  for (int s = 0; s < 2; ++s) {
    for (int va = 0; va < 2; ++va) {
      for (int vb = 0; vb < 2; ++vb) {
        const std::vector<int> v{s, va, vb};
        const auto cyc = env.send(v);
        ASSERT_TRUE(cyc.ok);
        EXPECT_EQ(cyc.outputs[0], s ? vb : va);
      }
    }
  }
}

TEST(DualRailGates, OneOfFourRoundTrip) {
  qn::Netlist nl("q4");
  qg::Builder b(nl);
  qg::DualRail lo = b.dr_input("lo");
  qg::DualRail hi = b.dr_input("hi");
  const qg::OneOfN q = b.to_one_of_four(lo, hi, "q");
  auto [lo2, hi2] = b.from_one_of_four(q, "d");
  b.dr_output(lo2, "lo2");
  b.dr_output(hi2, "hi2");
  qs::EnvSpec spec;
  spec.inputs = {lo.ch, hi.ch};
  spec.outputs = {q.ch, lo2.ch, hi2.ch};
  spec.period_ps = 2000.0;
  qs::Simulator sim(nl);
  qs::FourPhaseEnv env(sim, spec);
  env.apply_reset();
  for (int vl = 0; vl < 2; ++vl) {
    for (int vh = 0; vh < 2; ++vh) {
      const std::vector<int> v{vl, vh};
      const auto cyc = env.send(v);
      ASSERT_TRUE(cyc.ok);
      EXPECT_EQ(cyc.outputs[0], 2 * vh + vl);  // 1-of-4 code index
      EXPECT_EQ(cyc.outputs[1], vl);           // decoded back
      EXPECT_EQ(cyc.outputs[2], vh);
    }
  }
}

TEST(Completion, ValidHighTracksAllChannels) {
  qn::Netlist nl("cd");
  qg::Builder b(nl);
  qg::DualRail a = b.dr_input("a");
  qg::DualRail c = b.dr_input("b");
  std::vector<qg::DualRail> chans{a, c};
  const qn::NetId done = b.completion(chans, qg::CompletionStyle::ValidHigh, "cd");
  b.output(done, "done");

  qs::Simulator sim(nl);
  sim.initialize();
  sim.run_until_stable();
  EXPECT_FALSE(sim.value(done));
  sim.drive(a.r1, true, sim.now() + 10);
  sim.run_until_stable();
  EXPECT_FALSE(sim.value(done));  // only one channel valid
  sim.drive(c.r0, true, sim.now() + 10);
  sim.run_until_stable();
  EXPECT_TRUE(sim.value(done));  // both valid
  sim.drive(a.r1, false, sim.now() + 10);
  sim.run_until_stable();
  EXPECT_TRUE(sim.value(done));  // Muller tree holds until ALL empty
  sim.drive(c.r0, false, sim.now() + 10);
  sim.run_until_stable();
  EXPECT_FALSE(sim.value(done));
}

TEST(Completion, EmptyHighSingleChannelIsNor) {
  // Fig. 4 degenerate case: one dual-rail channel -> a single NOR gate.
  qn::Netlist nl("nor");
  qg::Builder b(nl);
  qg::DualRail a = b.dr_input("a");
  std::vector<qg::DualRail> chans{a};
  const std::size_t before = nl.num_gates();
  const qn::NetId empty = b.completion(chans, qg::CompletionStyle::EmptyHigh, "cd");
  EXPECT_EQ(nl.num_gates(), before + 1);  // exactly one gate
  b.output(empty, "empty");
  qs::Simulator sim(nl);
  sim.initialize();
  sim.run_until_stable();
  EXPECT_TRUE(sim.value(empty));
  sim.drive(a.r0, true, sim.now() + 10);
  sim.run_until_stable();
  EXPECT_FALSE(sim.value(empty));
}

TEST(Builder, HierScopesNest) {
  qn::Netlist nl("h");
  qg::Builder b(nl, "top");
  {
    qg::Builder::HierScope s1(b, "block");
    EXPECT_EQ(b.hier(), "top/block");
    {
      qg::Builder::HierScope s2(b, "sub");
      EXPECT_EQ(b.hier(), "top/block/sub");
      b.dr_input("x");
    }
    EXPECT_EQ(b.hier(), "top/block");
  }
  EXPECT_EQ(b.hier(), "top");
  // The cell created inside carries the nested path.
  bool found = false;
  for (const auto& cell : nl.cells())
    if (cell.hier == "top/block/sub") found = true;
  EXPECT_TRUE(found);
}

TEST(Builder, OrTreeDepthAndFunction) {
  qn::Netlist nl("ot");
  qg::Builder b(nl);
  std::vector<qn::NetId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  const qn::NetId root = b.or_tree(ins, "t");
  b.output(root, "o");
  qs::Simulator sim(nl);
  sim.initialize();
  sim.run_until_stable();
  EXPECT_FALSE(sim.value(root));
  sim.drive(ins[4], true, sim.now() + 10);
  sim.run_until_stable();
  EXPECT_TRUE(sim.value(root));
  sim.drive(ins[4], false, sim.now() + 10);
  sim.run_until_stable();
  EXPECT_FALSE(sim.value(root));
}

TEST(Builder, MullerTreeRequiresAll) {
  qn::Netlist nl("mt");
  qg::Builder b(nl);
  std::vector<qn::NetId> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  const qn::NetId root = b.muller_tree(ins, "t");
  b.output(root, "o");
  qs::Simulator sim(nl);
  sim.initialize();
  sim.run_until_stable();
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(sim.value(root));
    sim.drive(ins[static_cast<std::size_t>(i)], true, sim.now() + 10);
    sim.run_until_stable();
  }
  EXPECT_TRUE(sim.value(root));
}

TEST(Builder, LatchStageGatesOnAck) {
  qn::Netlist nl("ls");
  qg::Builder b(nl);
  qg::DualRail d = b.dr_input("d");
  const qn::NetId ack = b.input("ack");
  std::vector<qg::DualRail> in{d};
  const auto q = b.latch_stage(in, ack, "q");
  ASSERT_EQ(q.size(), 1u);
  b.dr_output(q[0], "q");
  qs::Simulator sim(nl);
  sim.drive(b.reset_net(), true, 0.0);
  sim.initialize();
  sim.run_until_stable();
  sim.drive(b.reset_net(), false, sim.now() + 50);
  sim.run_until_stable();
  // ack low -> latch transparent for rising data.
  sim.drive(d.r1, true, sim.now() + 10);
  sim.run_until_stable();
  EXPECT_TRUE(sim.value(q[0].r1));
  // With ack asserted (consumer busy) and input RTZ, the latch clears.
  sim.drive(ack, true, sim.now() + 10);
  sim.run_until_stable();
  sim.drive(d.r1, false, sim.now() + 10);
  sim.run_until_stable();
  EXPECT_FALSE(sim.value(q[0].r1));
  // ack released, new data with opposite value.
  sim.drive(ack, false, sim.now() + 10);
  sim.drive(d.r0, true, sim.now() + 30);
  sim.run_until_stable();
  EXPECT_TRUE(sim.value(q[0].r0));
  EXPECT_FALSE(sim.value(q[0].r1));
}
