// The async-alignment problem: clockless circuits give the attacker no
// trigger, so traces are mutually shifted. These tests cover the jitter
// model in the acquisition engine and the realignment preprocessing.
#include <gtest/gtest.h>

#include "qdi/campaign/target.hpp"
#include "qdi/core/criterion.hpp"
#include "qdi/dpa/dpa.hpp"
#include "qdi/dpa/spa.hpp"

namespace qc = qdi::campaign;
namespace qd = qdi::dpa;
namespace qn = qdi::netlist;

namespace {
void unbalance_target(qc::TargetInstance& inst, double factor) {
  for (qn::ChannelId ch = 0; ch < inst.nl.num_channels(); ++ch) {
    const qn::Channel& c = inst.nl.channel(ch);
    if (c.name.find("sbox/out0") != std::string::npos ||
        c.name.find("hb/q_q0") != std::string::npos)
      inst.nl.net(c.rails[1]).cap_ff *= factor;
  }
}

qd::TraceSet acquire(const qc::TargetInstance& inst, double jitter_ps,
                     std::size_t n = 300) {
  qc::SimTraceSourceOptions opt;
  opt.start_jitter_ps = jitter_ps;
  qc::SimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);
  return qc::acquire_batch(src, n, 7);
}
}  // namespace

TEST(Jitter, ZeroJitterTracesAreDeterministicPerPlaintext) {
  const qc::TargetInstance inst = qc::aes_byte_slice().build(0x4f);
  const qd::TraceSet ts = acquire(inst, 0.0, 40);
  // Traces with the same plaintext byte must be identical when aligned.
  for (std::size_t i = 0; i < ts.size(); ++i) {
    for (std::size_t j = i + 1; j < ts.size(); ++j) {
      if (ts.plaintext(i)[0] != ts.plaintext(j)[0]) continue;
      EXPECT_NEAR(qd::spa_distance(ts.trace(i), ts.trace(j)), 0.0, 1e-9);
    }
  }
}

TEST(Jitter, ShiftsActivityWithinWindow) {
  const qc::TargetInstance inst = qc::aes_byte_slice().build(0x4f);
  const qd::TraceSet aligned = acquire(inst, 0.0, 20);
  const qd::TraceSet jittered = acquire(inst, 500.0, 20);
  // The shifted window keeps all of this cycle's charge and may pull in
  // the tail of the previous cycle — never less, at most modestly more
  // (like a real scope capture without a trigger).
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_GE(jittered.trace(i).total_charge_fc(),
              aligned.trace(i).total_charge_fc() * 0.999);
    EXPECT_LE(jittered.trace(i).total_charge_fc(),
              aligned.trace(i).total_charge_fc() * 1.25);
  }
  // ...but same-plaintext traces no longer coincide sample-wise.
  bool any_shifted = false;
  for (std::size_t i = 0; i < 20 && !any_shifted; ++i)
    for (std::size_t j = i + 1; j < 20; ++j)
      if (jittered.plaintext(i)[0] == jittered.plaintext(j)[0] &&
          qd::spa_distance(jittered.trace(i), jittered.trace(j)) > 1.0)
        any_shifted = true;
  // (Only triggers when the random plaintexts collide; tolerate absence.)
  SUCCEED();
}

TEST(Alignment, JitterDestroysDpaRealignmentRestoresIt) {
  qc::TargetInstance inst = qc::aes_byte_slice().build(0x4f);
  unbalance_target(inst, 3.0);

  const auto d = qd::aes_sbox_selection(0, 0);

  qd::TraceSet aligned = acquire(inst, 0.0);
  const double peak_aligned = qd::dpa_bias(aligned, d, 0x4f).peak;

  qd::TraceSet jittered = acquire(inst, 800.0);
  const double peak_jittered = qd::dpa_bias(jittered, d, 0x4f).peak;
  // 800 ps of jitter smears the bias peak substantially.
  EXPECT_LT(peak_jittered, 0.6 * peak_aligned);

  // Realign (jitter is at most 80 samples). Sub-sample jitter residue
  // caps the recovery below 100%, and the single-sample peak metric is
  // noisy across seeds (typically 40-70% recovery); realignment must
  // recover a substantial fraction of the aligned peak and beat the
  // smeared one decisively.
  const std::size_t moved = qd::realign_traces(jittered, 100);
  EXPECT_GT(moved, jittered.size() / 2);
  const double peak_realigned = qd::dpa_bias(jittered, d, 0x4f).peak;
  EXPECT_GT(peak_realigned, 0.5 * peak_aligned);
  EXPECT_GT(peak_realigned, 2.0 * peak_jittered);
}

TEST(Alignment, RealignIsNoOpOnAlignedTraces) {
  const qc::TargetInstance inst = qc::aes_byte_slice().build(0x4f);
  qd::TraceSet ts = acquire(inst, 0.0, 30);
  const double before = ts.trace(5)[100];
  qd::realign_traces(ts, 0);
  EXPECT_DOUBLE_EQ(ts.trace(5)[100], before);
}

TEST(Alignment, HandlesDegenerateSets) {
  qd::TraceSet empty;
  EXPECT_EQ(qd::realign_traces(empty, 10), 0u);
  qd::TraceSet one;
  one.add(qdi::power::PowerTrace(0.0, 1.0, 8), {0});
  EXPECT_EQ(qd::realign_traces(one, 10), 0u);
}

TEST(BlockCriterion, AggregatesByBlock) {
  std::vector<qdi::core::ChannelCriterion> rows(4);
  rows[0].name = "aes_core/bytesub/s0/out1";
  rows[0].dA = 0.5;
  rows[1].name = "aes_core/bytesub/s1/out2";
  rows[1].dA = 1.5;
  rows[2].name = "aes_core/addkey0/x3";
  rows[2].dA = 0.2;
  rows[3].name = "toplevel_net";
  rows[3].dA = 0.1;
  const auto blocks = qdi::core::criterion_by_block(rows, 2);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].block, "aes_core/bytesub");  // sorted by max dA
  EXPECT_EQ(blocks[0].channels, 2u);
  EXPECT_DOUBLE_EQ(blocks[0].max_da, 1.5);
  EXPECT_DOUBLE_EQ(blocks[0].mean_da, 1.0);
  const auto table = qdi::core::block_criterion_table(blocks);
  EXPECT_EQ(table.rows(), 3u);
}
