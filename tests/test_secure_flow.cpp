#include <gtest/gtest.h>

#include "qdi/core/secure_flow.hpp"
#include "qdi/gates/testbench.hpp"

namespace qn = qdi::netlist;
namespace qc = qdi::core;
namespace qp = qdi::pnr;
namespace qg = qdi::gates;

namespace {
qc::FlowOptions fast_flow(qp::FlowMode mode, std::uint64_t seed) {
  qc::FlowOptions opt;
  opt.placer.mode = mode;
  opt.placer.seed = seed;
  opt.placer.moves_per_cell = 12;
  opt.placer.stages = 24;
  return opt;
}
}  // namespace

TEST(SecureFlow, PopulatesAllResultFields) {
  qn::Netlist nl = qg::build_aes_byte_slice().nl;
  const qc::FlowResult r = qc::run_secure_flow(nl, fast_flow(qp::FlowMode::Flat, 1));
  EXPECT_EQ(r.criteria.size(), nl.num_channels());
  EXPECT_GT(r.extraction.total_wirelength_um, 0.0);
  EXPECT_GT(r.max_da, 0.0);
  EXPECT_GT(r.mean_da, 0.0);
  EXPECT_GE(r.max_da, r.mean_da);
  EXPECT_EQ(r.iterations_used, 1);
  EXPECT_EQ(r.placement.cell_pos.size(), nl.num_cells());
}

TEST(SecureFlow, HierarchicalBeatsFlatOnCriterion) {
  // The paper's Table 2: hierarchical max dA = 0.13 vs flat up to 1.25.
  // At unit-test scale we assert the direction on the mean over the
  // *dual-rail data channels* (the criterion population of Table 2; the
  // 1-of-N code-group channels are dominated by extreme order statistics
  // of their N rails and are reported separately by the benches),
  // averaged across two seeds for robustness.
  auto dual_rail_mean = [](const qn::Netlist& nl,
                           const std::vector<qc::ChannelCriterion>& rows) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& r : rows) {
      if (nl.channel(r.id).arity() != 2) continue;
      sum += r.dA;
      ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  };
  double flat_mean = 0.0, hier_mean = 0.0;
  for (std::uint64_t seed : {11ull, 12ull}) {
    qn::Netlist nl1 = qg::build_aes_byte_slice().nl;
    const auto rf = qc::run_secure_flow(nl1, fast_flow(qp::FlowMode::Flat, seed));
    flat_mean += dual_rail_mean(nl1, rf.criteria);
    qn::Netlist nl2 = qg::build_aes_byte_slice().nl;
    const auto rh =
        qc::run_secure_flow(nl2, fast_flow(qp::FlowMode::Hierarchical, seed));
    hier_mean += dual_rail_mean(nl2, rh.criteria);
  }
  EXPECT_LT(hier_mean, flat_mean);
}

TEST(SecureFlow, RetriesWithNewSeedOnRejection) {
  qn::Netlist nl = qg::build_aes_byte_slice().nl;
  qc::FlowOptions opt = fast_flow(qp::FlowMode::Flat, 5);
  opt.max_da_threshold = 1e-9;  // unattainable: every iteration rejects
  opt.max_iterations = 3;
  const qc::FlowResult r = qc::run_secure_flow(nl, opt);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.iterations_used, 3);
}

TEST(SecureFlow, RepairForcesAcceptance) {
  qn::Netlist nl = qg::build_aes_byte_slice().nl;
  qc::FlowOptions opt = fast_flow(qp::FlowMode::Flat, 6);
  opt.max_da_threshold = 0.05;
  opt.repair = true;
  opt.repair_target_da = 0.03;
  const qc::FlowResult r = qc::run_secure_flow(nl, opt);
  EXPECT_TRUE(r.accepted);
  EXPECT_GT(r.repaired_channels, 0u);
  EXPECT_GT(r.repair_added_cap_ff, 0.0);
  EXPECT_LE(r.max_da, 0.05);
}

TEST(RepairRailCaps, MeetsTargetExactly) {
  qn::Netlist nl("r");
  const qn::NetId a0 = nl.add_input("a_0");
  const qn::NetId a1 = nl.add_input("a_1");
  nl.net(a0).cap_ff = 10.0;
  nl.net(a1).cap_ff = 30.0;
  nl.add_channel("a", {a0, a1});
  const auto [touched, added] = qc::repair_rail_caps(nl, 0.2);
  EXPECT_EQ(touched, 1u);
  EXPECT_NEAR(added, 30.0 / 1.2 - 10.0, 1e-9);
  EXPECT_NEAR(qc::dissymmetry(nl.net(a0).cap_ff, nl.net(a1).cap_ff), 0.2, 1e-9);
}

TEST(RepairRailCaps, NoOpOnBalancedChannels) {
  qn::Netlist nl("r");
  const qn::NetId a0 = nl.add_input("a_0");
  const qn::NetId a1 = nl.add_input("a_1");
  nl.add_channel("a", {a0, a1});
  const auto [touched, added] = qc::repair_rail_caps(nl, 0.1);
  EXPECT_EQ(touched, 0u);
  EXPECT_DOUBLE_EQ(added, 0.0);
}

TEST(RepairRailCaps, OneOfFourChannels) {
  qn::Netlist nl("q");
  std::vector<qn::NetId> rails;
  for (int i = 0; i < 4; ++i)
    rails.push_back(nl.add_input("q_" + std::to_string(i)));
  nl.net(rails[0]).cap_ff = 8.0;
  nl.net(rails[1]).cap_ff = 9.0;
  nl.net(rails[2]).cap_ff = 10.0;
  nl.net(rails[3]).cap_ff = 20.0;
  nl.add_channel("q", rails);
  qc::repair_rail_caps(nl, 0.1);
  const auto crit = qc::evaluate_criterion(nl);
  EXPECT_LE(qc::max_dA(crit), 0.1 + 1e-9);
}

TEST(SecureFlow, FlatSeedsMoveTheCriticalChannel) {
  // Section VI: "the most sensitive channels are never the same from one
  // place and route to another". Across seeds, the identity of the worst
  // channel changes (checked over three seeds — at least two distinct).
  std::set<std::string> worst_names;
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    qn::Netlist nl = qg::build_aes_byte_slice().nl;
    const auto r = qc::run_secure_flow(nl, fast_flow(qp::FlowMode::Flat, seed));
    const auto top = qc::most_critical(r.criteria, 1);
    ASSERT_FALSE(top.empty());
    worst_names.insert(top[0].name);
  }
  EXPECT_GE(worst_names.size(), 2u);
}
