#include <gtest/gtest.h>

#include "qdi/crypto/des.hpp"
#include "qdi/util/rng.hpp"

namespace qc = qdi::crypto;

TEST(DesSbox, KnownEntries) {
  // S1 row 0 col 0 = 14; input b5..b0 = 000000 -> row 0, col 0.
  EXPECT_EQ(qc::des_sbox(0, 0x00), 14);
  // S1 input 111111 -> row 3, col 15 = 13.
  EXPECT_EQ(qc::des_sbox(0, 0x3f), 13);
  // S8 input 000000 -> 13.
  EXPECT_EQ(qc::des_sbox(7, 0x00), 13);
}

TEST(DesSbox, OutputsAre4Bit) {
  for (int box = 0; box < 8; ++box)
    for (int idx = 0; idx < 64; ++idx)
      EXPECT_LT(qc::des_sbox(box, static_cast<std::uint8_t>(idx)), 16);
}

TEST(DesSbox, OutputBitsAreBalanced) {
  // Every DES S-box output bit is 1 for exactly 32 of the 64 inputs —
  // like AES, this makes the dual-rail OR trees shape-identical.
  for (int box = 0; box < 8; ++box) {
    for (int bit = 0; bit < 4; ++bit) {
      int ones = 0;
      for (int idx = 0; idx < 64; ++idx)
        ones += (qc::des_sbox(box, static_cast<std::uint8_t>(idx)) >> bit) & 1;
      EXPECT_EQ(ones, 32) << "box " << box << " bit " << bit;
    }
  }
}

TEST(DesSbox, EachRowIsPermutation) {
  for (int box = 0; box < 8; ++box) {
    for (int row = 0; row < 4; ++row) {
      bool seen[16] = {};
      for (int col = 0; col < 16; ++col) {
        const std::uint8_t idx = static_cast<std::uint8_t>(
            ((row & 2) << 4) | (col << 1) | (row & 1));
        const std::uint8_t v = qc::des_sbox(box, idx);
        EXPECT_FALSE(seen[v]) << box << "/" << row;
        seen[v] = true;
      }
    }
  }
}

TEST(Des, ClassicKnownAnswer) {
  // Widely published vector: key 133457799BBCDFF1, PT 0123456789ABCDEF
  // -> CT 85E813540F0AB405.
  const qc::Des des(0x133457799BBCDFF1ULL);
  EXPECT_EQ(des.encrypt(0x0123456789ABCDEFULL), 0x85E813540F0AB405ULL);
  EXPECT_EQ(des.decrypt(0x85E813540F0AB405ULL), 0x0123456789ABCDEFULL);
}

TEST(Des, NistStyleVector) {
  // Another published pair: key 0E329232EA6D0D73, PT 8787878787878787
  // -> CT 0000000000000000.
  const qc::Des des(0x0E329232EA6D0D73ULL);
  EXPECT_EQ(des.encrypt(0x8787878787878787ULL), 0x0ULL);
  EXPECT_EQ(des.decrypt(0x0ULL), 0x8787878787878787ULL);
}

class DesRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesRoundTrip, DecryptInvertsEncrypt) {
  qdi::util::Rng rng(GetParam());
  const qc::DesKey key = rng.next();
  const qc::DesBlock pt = rng.next();
  const qc::Des des(key);
  EXPECT_EQ(des.decrypt(des.encrypt(pt)), pt);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DesRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(Des, SubkeysAre48Bit) {
  const qc::Des des(0x133457799BBCDFF1ULL);
  for (int r = 0; r < 16; ++r)
    EXPECT_EQ(des.round_key(r) >> 48, 0u) << "round " << r;
}

TEST(Des, SubkeysDifferAcrossRounds) {
  const qc::Des des(0x133457799BBCDFF1ULL);
  int distinct = 0;
  for (int i = 0; i < 16; ++i) {
    bool unique = true;
    for (int j = 0; j < i; ++j)
      if (des.round_key(i) == des.round_key(j)) unique = false;
    if (unique) ++distinct;
  }
  EXPECT_GE(distinct, 15);
}

TEST(Des, FirstRoundSboxHelpersConsistent) {
  const qc::Des des(0x133457799BBCDFF1ULL);
  const qc::DesBlock pt = 0x0123456789ABCDEFULL;
  const std::uint32_t outs = des.first_round_sbox_outputs(pt);
  for (int box = 0; box < 8; ++box) {
    const std::uint8_t in = des.first_round_sbox_input(pt, box);
    const std::uint8_t expected = qc::des_sbox(box, in);
    const std::uint8_t got =
        static_cast<std::uint8_t>((outs >> (28 - 4 * box)) & 0xf);
    EXPECT_EQ(got, expected) << "box " << box;
  }
}

TEST(Des, ComplementationProperty) {
  // DES(~k, ~p) == ~DES(k, p) — a classic structural identity; catching
  // it validates permutations and key schedule jointly.
  qdi::util::Rng rng(55);
  for (int t = 0; t < 10; ++t) {
    const qc::DesKey k = rng.next();
    const qc::DesBlock p = rng.next();
    const qc::Des des(k), desc(~k);
    EXPECT_EQ(desc.encrypt(~p), ~des.encrypt(p));
  }
}
