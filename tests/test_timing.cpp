#include <gtest/gtest.h>

#include "qdi/core/timing.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"

namespace qn = qdi::netlist;
namespace qc = qdi::core;
namespace qs = qdi::sim;
namespace qg = qdi::gates;

TEST(Timing, XorStageCriticalPathEndsAtCompletion) {
  qg::XorStage x = qg::build_xor_stage();
  const qn::Graph g(x.nl);
  const qc::TimingReport rep = qc::analyze_timing(g, qs::DelayModel{});
  ASSERT_FALSE(rep.critical_path.empty());
  // Path: input -> M -> O -> Cr -> NOR; last step is the level-4 NOR.
  EXPECT_EQ(rep.critical_path.back().level, 4);
  EXPECT_EQ(rep.critical_path.back().kind, "nor2");
  EXPECT_EQ(rep.critical_path.front().level, 0);  // starts at an input
  EXPECT_GT(rep.critical_arrival_ps, 0.0);
}

TEST(Timing, ArrivalsIncreaseAlongThePath) {
  qg::XorStage x = qg::build_xor_stage();
  const qn::Graph g(x.nl);
  const qc::TimingReport rep = qc::analyze_timing(g, qs::DelayModel{});
  for (std::size_t i = 1; i < rep.critical_path.size(); ++i)
    EXPECT_GE(rep.critical_path[i].arrival_ps,
              rep.critical_path[i - 1].arrival_ps);
  EXPECT_DOUBLE_EQ(rep.critical_path.back().arrival_ps, rep.critical_arrival_ps);
}

TEST(Timing, LevelArrivalsAreMonotone) {
  qg::XorStage x = qg::build_xor_stage();
  const qn::Graph g(x.nl);
  const qc::TimingReport rep = qc::analyze_timing(g, qs::DelayModel{});
  ASSERT_EQ(rep.level_arrival_ps.size(), 5u);
  for (std::size_t l = 2; l < rep.level_arrival_ps.size(); ++l)
    EXPECT_GT(rep.level_arrival_ps[l], rep.level_arrival_ps[l - 1]);
}

TEST(Timing, CapacitanceSlowsTheCriticalPath) {
  qg::XorStage x = qg::build_xor_stage();
  const qc::TimingReport before =
      qc::analyze_timing(qn::Graph(x.nl), qs::DelayModel{});
  for (auto& net : const_cast<std::vector<qn::Net>&>(x.nl.nets())) (void)net;
  x.nl.net(x.s0).cap_ff = 64.0;
  x.nl.net(x.s1).cap_ff = 64.0;
  const qc::TimingReport after =
      qc::analyze_timing(qn::Graph(x.nl), qs::DelayModel{});
  EXPECT_GT(after.critical_arrival_ps, before.critical_arrival_ps);
  EXPECT_GT(after.cycle_estimate_ps, before.cycle_estimate_ps);
}

TEST(Timing, StaticEstimateTracksSimulatedLatency) {
  // The analytic critical arrival must approximate (and never exceed by
  // much / fall far below) the event-driven time-to-valid.
  qg::XorStage x = qg::build_xor_stage();
  const qc::TimingReport rep =
      qc::analyze_timing(qn::Graph(x.nl), qs::DelayModel{});

  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  const std::vector<int> v{1, 0};
  const auto cyc = env.send(v);
  const double simulated = cyc.t_valid - cyc.t_start;
  EXPECT_NEAR(rep.critical_arrival_ps, simulated, simulated * 0.25);
}

TEST(Timing, TableRendersPath) {
  qg::XorStage x = qg::build_xor_stage();
  const qc::TimingReport rep =
      qc::analyze_timing(qn::Graph(x.nl), qs::DelayModel{});
  const qdi::util::Table t = qc::timing_table(rep);
  EXPECT_EQ(t.rows(), rep.critical_path.size());
  EXPECT_NE(t.to_string().find("nor2"), std::string::npos);
}

TEST(Timing, SliceDepthMatchesStructure) {
  // AddRoundKey (2 levels) + decode (7) + OR trees (7) + latch +
  // completion: the slice's critical path is deep.
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  const qc::TimingReport rep =
      qc::analyze_timing(qn::Graph(slice.nl), qs::DelayModel{});
  EXPECT_GE(rep.critical_path.size(), 15u);
}
