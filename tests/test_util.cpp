#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qdi/util/rng.hpp"
#include "qdi/util/stats.hpp"
#include "qdi/util/table.hpp"

namespace qu = qdi::util;

TEST(Rng, DeterministicForSeed) {
  qu::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  qu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  qu::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  qu::Rng r(9);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 255ull, 1000003ull}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowCoversRange) {
  qu::Rng r(11);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[r.below(8)];
  for (int h : hits) EXPECT_GT(h, 800);  // each bucket near 1000
}

TEST(Rng, GaussianMoments) {
  qu::Rng r(13);
  qu::RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
  qu::Rng r(17);
  qu::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.gaussian(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> v{1.0, 2.0, 4.0, 8.0, 16.0};
  qu::RunningStats s;
  for (double x : v) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_NEAR(s.variance(), qu::variance(v), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  qu::Rng r(19);
  qu::RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.gaussian();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  qu::RunningStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(VectorMean, AveragesElementwise) {
  qu::VectorMean m;
  m.add(std::vector<double>{1.0, 2.0, 3.0});
  m.add(std::vector<double>{3.0, 2.0, 1.0});
  const auto avg = m.mean();
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_DOUBLE_EQ(avg[0], 2.0);
  EXPECT_DOUBLE_EQ(avg[1], 2.0);
  EXPECT_DOUBLE_EQ(avg[2], 2.0);
}

TEST(VectorMean, EmptyIsSafe) {
  qu::VectorMean m;
  EXPECT_TRUE(m.mean().empty());
  EXPECT_EQ(m.count(), 0u);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(qu::pearson(x, y), 1.0, 1e-12);
  std::vector<double> ny;
  for (double v : y) ny.push_back(-v);
  EXPECT_NEAR(qu::pearson(x, ny), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantInputIsZero) {
  const std::vector<double> x{1, 1, 1, 1};
  const std::vector<double> y{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(qu::pearson(x, y), 0.0);
}

TEST(Stats, WelchTSeparatesShiftedSamples) {
  qu::Rng r(23);
  std::vector<double> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(r.gaussian(0.0, 1.0));
    b.push_back(r.gaussian(1.0, 1.0));
  }
  EXPECT_LT(qu::welch_t(a, b), -5.0);
  EXPECT_GT(qu::welch_t(b, a), 5.0);
}

TEST(Stats, ArgmaxAbsFindsNegativePeaks) {
  const std::vector<double> v{0.1, -5.0, 3.0};
  EXPECT_EQ(qu::argmax_abs(v), 1u);
  EXPECT_DOUBLE_EQ(qu::max_abs(v), 5.0);
  EXPECT_DOUBLE_EQ(qu::sum_abs(v), 8.1);
}

TEST(Stats, SubtractElementwise) {
  const std::vector<double> a{3.0, 2.0};
  const std::vector<double> b{1.0, 5.0};
  const auto d = qu::subtract(a, b);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], -3.0);
}

TEST(Table, AlignsAndCounts) {
  qu::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  EXPECT_EQ(qu::csv_escape("plain"), "plain");
  EXPECT_EQ(qu::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(qu::csv_escape("q\"q"), "\"q\"\"q\"");
  qu::Table t({"x"});
  t.add_row({"v,1"});
  EXPECT_NE(t.to_csv().find("\"v,1\""), std::string::npos);
}

TEST(Table, FormatDoubleRespectsPrecision) {
  qu::Table t({"x"});
  t.set_precision(2);
  EXPECT_EQ(t.format_double(1.23456), "1.23");
}
