#include <gtest/gtest.h>

#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"
#include "qdi/dpa/dpa.hpp"
#include "qdi/util/rng.hpp"

namespace qd = qdi::dpa;
namespace qc = qdi::crypto;
namespace qu = qdi::util;
namespace qp = qdi::power;

namespace {

/// Synthetic trace set: trace[i] leaks `amp * bit(SBOX(p_i ^ key), bit)`
/// at sample `leak_at`, plus Gaussian noise.
qd::TraceSet synthetic_sbox_leak(std::size_t n, std::uint8_t key, int bit,
                                 double amp, double noise, std::uint64_t seed,
                                 std::size_t samples = 64,
                                 std::size_t leak_at = 20) {
  qu::Rng rng(seed);
  qd::TraceSet ts;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t p = rng.byte();
    qp::PowerTrace t(0.0, 10.0, samples);
    for (std::size_t j = 0; j < samples; ++j) t[j] = rng.gaussian(0.0, noise);
    const int d = (qc::aes_sbox(static_cast<std::uint8_t>(p ^ key)) >> bit) & 1;
    t[leak_at] += amp * d;
    ts.add(std::move(t), {p});
  }
  return ts;
}

}  // namespace

TEST(TraceSet, StoresAndTruncates) {
  qd::TraceSet ts;
  qp::PowerTrace t(0.0, 1.0, 4);
  ts.add(t, {1}, {2});
  ts.add(t, {3}, {4});
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.num_samples(), 4u);
  EXPECT_EQ(ts.plaintext(1)[0], 3);
  EXPECT_EQ(ts.ciphertext(0)[0], 2);
  ts.truncate(1);
  EXPECT_EQ(ts.size(), 1u);
  ts.truncate(10);  // no-op
  EXPECT_EQ(ts.size(), 1u);
}

TEST(Selection, AesXorBitExtraction) {
  const auto d = qd::aes_xor_selection(0, 3);
  const std::vector<std::uint8_t> pt{0b00001000};
  EXPECT_EQ(d(pt, 0x00), 1);
  EXPECT_EQ(d(pt, 0x08), 0);  // guess flips the bit
}

TEST(Selection, AesSboxMatchesReference) {
  const auto d = qd::aes_sbox_selection(0, 0);
  for (unsigned p = 0; p < 256; p += 17) {
    const std::vector<std::uint8_t> pt{static_cast<std::uint8_t>(p)};
    for (unsigned g : {0u, 0x42u, 0xffu})
      EXPECT_EQ(d(pt, g),
                (qc::aes_sbox(static_cast<std::uint8_t>(p ^ g)) >> 0) & 1);
  }
}

TEST(Selection, DesSboxMatchesReference) {
  const auto d = qd::des_sbox_selection(0, 2);
  for (unsigned p = 0; p < 64; ++p) {
    const std::vector<std::uint8_t> pt{static_cast<std::uint8_t>(p)};
    EXPECT_EQ(d(pt, 0x15),
              (qdi::crypto::des_sbox(0, static_cast<std::uint8_t>(p ^ 0x15)) >> 2) & 1);
  }
}

TEST(DpaBias, RecoversPlantedLeakAmplitude) {
  const std::uint8_t key = 0x6b;
  const auto ts = synthetic_sbox_leak(4000, key, 0, 5.0, 0.5, 42);
  const auto d = qd::aes_sbox_selection(0, 0);
  const qd::BiasResult b = qd::dpa_bias(ts, d, key);
  EXPECT_EQ(b.peak_index, 20u);
  EXPECT_NEAR(b.peak, 5.0, 0.3);  // |A0 - A1| = amp
  EXPECT_GT(b.n0, 1500u);
  EXPECT_GT(b.n1, 1500u);
}

TEST(DpaBias, WrongGuessShowsNoPeak) {
  const std::uint8_t key = 0x6b;
  const auto ts = synthetic_sbox_leak(4000, key, 0, 5.0, 0.5, 43);
  const auto d = qd::aes_sbox_selection(0, 0);
  const qd::BiasResult wrong = qd::dpa_bias(ts, d, key ^ 0x91);
  EXPECT_LT(wrong.peak, 1.0);
}

TEST(DpaBias, PrefixLimitsTraces) {
  const auto ts = synthetic_sbox_leak(1000, 0x11, 0, 5.0, 0.1, 44);
  const auto d = qd::aes_sbox_selection(0, 0);
  const qd::BiasResult b = qd::dpa_bias(ts, d, 0x11, 100);
  EXPECT_EQ(b.n0 + b.n1, 100u);
}

TEST(DpaBias, DegenerateSplitIsHandled) {
  // A selection that always returns 0 must not crash and yields no bias.
  qd::TraceSet ts;
  qp::PowerTrace t(0.0, 1.0, 8);
  ts.add(t, {0});
  const qd::SelectionFn d = [](std::span<const std::uint8_t>, unsigned) {
    return 0;
  };
  const qd::BiasResult b = qd::dpa_bias(ts, d, 0);
  EXPECT_EQ(b.n1, 0u);
  EXPECT_DOUBLE_EQ(b.peak, 0.0);
}

TEST(RecoverKey, FindsPlantedKey) {
  const std::uint8_t key = 0xc3;
  const auto ts = synthetic_sbox_leak(3000, key, 0, 4.0, 1.0, 45);
  const auto d = qd::aes_sbox_selection(0, 0);
  const qd::KeyRecoveryResult r = qd::recover_key(ts, d, 256);
  EXPECT_EQ(r.best_guess, key);
  EXPECT_EQ(r.rank_of(key), 0u);
  EXPECT_GT(r.margin(), 1.5);
}

TEST(RecoverKey, MultibitSharpensMargin) {
  const std::uint8_t key = 0x3e;
  // Leak on all 8 S-Box output bits at different samples.
  qu::Rng rng(46);
  qd::TraceSet ts;
  for (std::size_t i = 0; i < 2000; ++i) {
    const std::uint8_t p = rng.byte();
    qp::PowerTrace t(0.0, 10.0, 64);
    for (std::size_t j = 0; j < 64; ++j) t[j] = rng.gaussian(0.0, 1.0);
    const std::uint8_t s = qc::aes_sbox(static_cast<std::uint8_t>(p ^ key));
    for (int bit = 0; bit < 8; ++bit)
      t[static_cast<std::size_t>(10 + 3 * bit)] += 2.0 * ((s >> bit) & 1);
    ts.add(std::move(t), {p});
  }
  std::vector<qd::SelectionFn> bits;
  for (int b = 0; b < 8; ++b) bits.push_back(qd::aes_sbox_selection(0, b));
  const qd::KeyRecoveryResult multi = qd::recover_key_multibit(ts, bits, 256);
  const qd::KeyRecoveryResult single =
      qd::recover_key(ts, qd::aes_sbox_selection(0, 0), 256);
  EXPECT_EQ(multi.best_guess, key);
  EXPECT_GE(multi.margin(), single.margin() * 0.9);
}

TEST(RecoverKey, XorSelectionHasGhostPeaks) {
  // Structural property of the paper's AES XOR D-function: a single-bit
  // XOR target cannot distinguish key guesses that share the targeted
  // bit — the bias magnitude is identical (only the sign flips). This is
  // why the end-to-end attack benches target the S-Box output.
  const std::uint8_t key = 0x55;
  qu::Rng rng(47);
  qd::TraceSet ts;
  for (std::size_t i = 0; i < 1500; ++i) {
    const std::uint8_t p = rng.byte();
    qp::PowerTrace t(0.0, 10.0, 32);
    t[5] = 3.0 * ((p ^ key) & 1);  // leak of xor bit 0, no noise
    ts.add(std::move(t), {p});
  }
  const auto d = qd::aes_xor_selection(0, 0);
  const qd::BiasResult right = qd::dpa_bias(ts, d, key);
  const qd::BiasResult ghost = qd::dpa_bias(ts, d, key ^ 0xfe);  // same bit 0
  const qd::BiasResult flipped = qd::dpa_bias(ts, d, key ^ 0x01);
  EXPECT_NEAR(right.peak, ghost.peak, 1e-9);
  EXPECT_NEAR(right.peak, flipped.peak, 1e-9);
  EXPECT_LT(right.bias[5] * flipped.bias[5], 0.0);  // sign flip
}

TEST(Mtd, DecreasesWithLeakAmplitude) {
  const std::uint8_t key = 0x7a;
  const auto d = qd::aes_sbox_selection(0, 0);
  const auto weak = synthetic_sbox_leak(3000, key, 0, 1.0, 2.0, 48);
  const auto strong = synthetic_sbox_leak(3000, key, 0, 8.0, 2.0, 48);
  const std::size_t mtd_weak =
      qd::measurements_to_disclosure(weak, d, 256, key, 32, 32);
  const std::size_t mtd_strong =
      qd::measurements_to_disclosure(strong, d, 256, key, 32, 32);
  ASSERT_GT(mtd_strong, 0u);
  ASSERT_GT(mtd_weak, 0u);
  EXPECT_LE(mtd_strong, mtd_weak);
}

TEST(DpaBias, SampleWindowRestrictsPeakSearch) {
  const std::uint8_t key = 0x2f;
  const auto ts = synthetic_sbox_leak(1500, key, 0, 5.0, 0.3, 50);  // leak at 20
  const auto d = qd::aes_sbox_selection(0, 0);
  // Window containing the leak: full peak at index 20.
  const qd::BiasResult in_window = qd::dpa_bias(ts, d, key, 0, {10, 30});
  EXPECT_EQ(in_window.peak_index, 20u);
  EXPECT_GT(in_window.peak, 4.0);
  // Window excluding it: only the noise floor remains.
  const qd::BiasResult out_window = qd::dpa_bias(ts, d, key, 0, {30, 0});
  EXPECT_LT(out_window.peak, 0.5);
  EXPECT_GE(out_window.peak_index, 30u);
  // The bias vector itself is always full-length.
  EXPECT_EQ(out_window.bias.size(), ts.num_samples());
}

TEST(RecoverKey, WindowedRecoveryMatchesUnwindowed) {
  const std::uint8_t key = 0x77;
  const auto ts = synthetic_sbox_leak(2000, key, 0, 4.0, 1.0, 51);
  const auto d = qd::aes_sbox_selection(0, 0);
  const qd::KeyRecoveryResult full = qd::recover_key(ts, d, 256);
  const qd::KeyRecoveryResult windowed =
      qd::recover_key(ts, d, 256, 0, {15, 25});
  EXPECT_EQ(full.best_guess, key);
  EXPECT_EQ(windowed.best_guess, key);
  // Excluding the off-leak samples can only help the margin.
  EXPECT_GE(windowed.margin(), full.margin() * 0.99);
}

TEST(Mtd, ZeroWhenNoLeak) {
  const auto ts = synthetic_sbox_leak(500, 0x10, 0, 0.0, 1.0, 49);
  const auto d = qd::aes_sbox_selection(0, 0);
  EXPECT_EQ(qd::measurements_to_disclosure(ts, d, 256, 0x10, 64, 64), 0u);
}
