// Tests for the qdi::campaign attack-campaign API: builder validation,
// deterministic RNG stream splitting, single- vs multi-threaded
// acquisition equality, and end-to-end key recovery.
#include <gtest/gtest.h>

#include <stdexcept>

#include "qdi/qdi.hpp"

namespace qc = qdi::campaign;
namespace qn = qdi::netlist;
namespace qu = qdi::util;

#if defined(__SANITIZE_ADDRESS__)
#define QDI_ASAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define QDI_ASAN_ACTIVE 1
#endif
#endif

// ---- builder validation ----------------------------------------------------

TEST(CampaignValidation, EmptyTargetThrows) {
  EXPECT_THROW(qc::Campaign().run(), std::invalid_argument);
}

TEST(CampaignValidation, AttackWithoutTracesThrows) {
  EXPECT_THROW(
      qc::Campaign().target(qc::xor_stage()).attack(qc::Dpa{}).run(),
      std::invalid_argument);
}

TEST(CampaignValidation, AttackOnUnattackableTargetThrows) {
  EXPECT_THROW(qc::Campaign()
                   .target(qc::xor_stage())
                   .traces(4)
                   .attack(qc::Dpa{})
                   .run(),
               std::invalid_argument);
}

TEST(CampaignValidation, DpaBitIndexOutOfRangeThrows) {
  qc::Dpa cfg;
  cfg.bits = {99};
  EXPECT_THROW(qc::Campaign()
                   .target(qc::des_sbox_slice())
                   .traces(4)
                   .attack(cfg)
                   .run(),
               std::invalid_argument);
}

TEST(CampaignValidation, FlowOnlyTargetRefusesAcquisition) {
  // aes_core is simulatable these days; a flow-only victim is modeled
  // with an explicit prebuilt instance that opted out of simulation.
  qc::TargetInstance flow_only;
  flow_only.nl = qn::Netlist("flow_only");
  flow_only.simulatable = false;
  flow_only.name = "flow_only";
  EXPECT_THROW(
      qc::Campaign().target(qc::prebuilt(std::move(flow_only))).traces(1).run(),
      std::invalid_argument);
}

TEST(CampaignValidation, RankTrajectoryWithoutAttackThrows) {
  EXPECT_THROW(qc::Campaign()
                   .target(qc::xor_stage())
                   .traces(4)
                   .rank_trajectory(2)
                   .run(),
               std::invalid_argument);
}

TEST(CampaignValidation, DpaOnTargetWithoutSelectionBitsThrows) {
  // A custom target that claims a guess space but registers no selection
  // functions must be rejected up front, not crash in the analysis stage.
  qc::TargetInstance inst = qc::xor_stage().build(0);
  inst.num_guesses = 4;
  EXPECT_THROW(qc::Campaign()
                   .target(qc::prebuilt(std::move(inst)))
                   .traces(4)
                   .attack(qc::Dpa{})
                   .run(),
               std::invalid_argument);
}

// ---- registry --------------------------------------------------------------

TEST(CampaignRegistry, PrebuiltTargetIsReusableAndDeterministic) {
  const qc::CircuitTarget t = qc::prebuilt(qc::des_sbox_slice().build(0x15));
  const auto run = [&] {
    return qc::Campaign().target(t).seed(9).traces(8).run();
  };
  const qc::CampaignResult a = run();
  const qc::CampaignResult b = run();  // second campaign over the same build
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i)
    for (std::size_t j = 0; j < a.traces.num_samples(); ++j)
      ASSERT_EQ(a.traces.trace(i)[j], b.traces.trace(i)[j]);
}

TEST(CampaignRegistry, EveryListedTargetResolves) {
  for (const std::string& name : qc::list_targets()) {
    const qc::CircuitTarget t = qc::find_target(name);
    EXPECT_TRUE(t.valid());
    EXPECT_EQ(t.name(), name);
  }
  EXPECT_THROW(qc::find_target("no_such_circuit"), std::invalid_argument);
}

// ---- worker-pool simulator clone path --------------------------------------

TEST(CampaignSimClone, SimulatorCloneIsFreshAndIndependent) {
  const qdi::gates::XorStage x = qdi::gates::build_xor_stage();
  qdi::sim::Simulator a(x.nl);
  qdi::sim::FourPhaseEnv env(a, x.env);
  env.apply_reset();
  const std::vector<int> v{1, 0};
  (void)env.send(v);
  ASSERT_GT(a.transition_count(), 0u);

  // A clone shares netlist and delay model but starts from reset state;
  // driving the original must not affect it.
  qdi::sim::Simulator b = a.clone();
  EXPECT_EQ(&b.netlist(), &a.netlist());
  EXPECT_EQ(b.transition_count(), 0u);
  EXPECT_EQ(b.now(), 0.0);
  (void)env.send(v);
  EXPECT_EQ(b.transition_count(), 0u);
}

// ---- deterministic stream split --------------------------------------------

TEST(CampaignRng, SplitStreamIsReproducibleAndIndependent) {
  qu::Rng a = qu::split_stream(42, 7);
  qu::Rng b = qu::split_stream(42, 7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next(), b.next());

  // Different stream or different seed must diverge immediately with
  // overwhelming probability.
  EXPECT_NE(qu::split_stream(42, 7).next(), qu::split_stream(42, 8).next());
  EXPECT_NE(qu::split_stream(42, 7).next(), qu::split_stream(43, 7).next());
}

TEST(CampaignRng, DomainTagSeparatesFaultAndAcquisitionStreams) {
  // The fault campaign draws run i from the kFaultDomain-tagged stream;
  // power acquisition draws trace i from the untagged one. At the same
  // (seed, index) the two must not overlap — arming a fault probe next
  // to an acquisition must never replay the acquisition's plaintexts.
  for (std::uint64_t seed : {1ull, 42ull, 31337ull}) {
    for (std::uint64_t index : {0ull, 1ull, 255ull}) {
      qu::Rng acq = qu::split_stream(seed, index);
      qu::Rng fault = qu::split_stream(seed, index, qu::kFaultDomain);
      EXPECT_NE(acq.next(), fault.next()) << seed << "/" << index;
    }
  }
  // And the tagged stream is itself reproducible.
  qu::Rng a = qu::split_stream(9, 4, qu::kFaultDomain);
  qu::Rng b = qu::split_stream(9, 4, qu::kFaultDomain);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next(), b.next());
}

// ---- acquisition determinism -----------------------------------------------

TEST(CampaignAcquisition, MultiThreadedTracesAreBitIdentical) {
  const auto run = [](unsigned threads) {
    return qc::Campaign()
        .target(qc::des_sbox_slice())
        .key(0x2b)
        .seed(5)
        .traces(24)
        .threads(threads)
        .run();
  };
  const qc::CampaignResult one = run(1);
  const qc::CampaignResult four = run(4);
  ASSERT_EQ(one.traces.size(), four.traces.size());
  EXPECT_EQ(four.acquisition.threads_used, 4u);
  for (std::size_t i = 0; i < one.traces.size(); ++i) {
    ASSERT_EQ(one.traces.plaintext(i)[0], four.traces.plaintext(i)[0])
        << "trace " << i;
    ASSERT_EQ(one.traces.ciphertext(i)[0], four.traces.ciphertext(i)[0]);
    for (std::size_t j = 0; j < one.traces.num_samples(); ++j)
      ASSERT_EQ(one.traces.trace(i)[j], four.traces.trace(i)[j])
          << "trace " << i << " sample " << j;
  }
}

TEST(CampaignAcquisition, NoiseAndJitterStayDeterministicAcrossThreads) {
  const auto run = [](unsigned threads) {
    qdi::power::PowerModelParams pm;
    pm.noise_sigma_ua = 1.0;
    return qc::Campaign()
        .target(qc::xor_stage())
        .seed(17)
        .traces(12)
        .threads(threads)
        .power(pm)
        .jitter(200.0)
        .run();
  };
  const qc::CampaignResult a = run(1);
  const qc::CampaignResult b = run(3);
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i)
    for (std::size_t j = 0; j < a.traces.num_samples(); ++j)
      ASSERT_EQ(a.traces.trace(i)[j], b.traces.trace(i)[j]);
}

TEST(CampaignAcquisition, SeedChangesPlaintextSequence) {
  const auto run = [](std::uint64_t seed) {
    return qc::Campaign()
        .target(qc::aes_byte_slice())
        .key(0x55)
        .seed(seed)
        .traces(16)
        .run();
  };
  const qc::CampaignResult a = run(1);
  const qc::CampaignResult b = run(2);
  bool differs = false;
  for (std::size_t i = 0; i < a.traces.size(); ++i)
    if (a.traces.plaintext(i)[0] != b.traces.plaintext(i)[0]) differs = true;
  EXPECT_TRUE(differs);
}

TEST(CampaignAcquisition, CiphertextsMatchGoldenModelAndStatsFilled) {
  const qc::CampaignResult r = qc::Campaign()
                                   .target(qc::aes_byte_slice())
                                   .key(0x2b)
                                   .traces(20)
                                   .run();
  ASSERT_EQ(r.traces.size(), 20u);
  for (std::size_t i = 0; i < r.traces.size(); ++i) {
    const std::uint8_t p = r.traces.plaintext(i)[0];
    EXPECT_EQ(r.traces.ciphertext(i)[0],
              qdi::crypto::aes_sbox(static_cast<std::uint8_t>(p ^ 0x2b)));
  }
  EXPECT_EQ(r.acquisition.per_trace_transitions.size(), 20u);
  EXPECT_GT(r.acquisition.transitions, 0u);
  EXPECT_EQ(r.acquisition.glitches, 0u);  // hazard-free QDI
  EXPECT_GT(r.acquisition.traces_per_s, 0.0);
}

// ---- end-to-end key recovery -----------------------------------------------

TEST(CampaignEndToEnd, RecoversDesSubkeyOnUnbalancedSlice) {
  qc::Dpa cfg;
  cfg.compute_mtd = true;
  cfg.mtd_start = 40;
  cfg.mtd_step = 40;
  const qc::CampaignResult r =
      qc::Campaign()
          .target(qc::des_sbox_slice())
          .key(0x2b)
          .seed(31337)
          .traces(400)
          .threads(2)
          .prepare([](qn::Netlist& nl) {
            // What an uncontrolled P&R does: unbalance the S-Box outputs.
            for (qn::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
              const qn::Channel& c = nl.channel(ch);
              if (c.name.find("sbox/out") != std::string::npos)
                nl.net(c.rails[1]).cap_ff *= 1.8;
            }
          })
          .attack(cfg)
          .rank_trajectory(100)
          .run();

  ASSERT_TRUE(r.attack.has_value());
  EXPECT_EQ(r.attack->kind, "dpa");
  EXPECT_EQ(r.attack->best_guess, 0x2bu);
  EXPECT_EQ(r.attack->true_key_rank, 0u);
  EXPECT_TRUE(r.key_recovered());
  EXPECT_GT(r.attack->known_key_bias_peak, 0.0);
  // MTD scans with the single-bit D-function, which is weaker than the
  // multi-bit recovery above; 0 means "not stably recovered at this
  // budget" and is a legal outcome — but it must never exceed the budget.
  EXPECT_LE(r.attack->mtd, r.traces.size());
  EXPECT_GT(r.max_da, 0.0);  // the injected dissymmetry shows in dA

  // Trajectory: rank must settle at 0 by the full trace budget.
  ASSERT_FALSE(r.rank_trajectory.empty());
  EXPECT_EQ(r.rank_trajectory.back().traces, r.traces.size());
  EXPECT_EQ(r.rank_trajectory.back().rank, 0u);
}

TEST(CampaignEndToEnd, CpaAgreesOnTheSameCampaign) {
  const qc::CampaignResult r =
      qc::Campaign()
          .target(qc::des_sbox_slice())
          .key(0x19)
          .seed(777)
          .traces(400)
          .prepare([](qn::Netlist& nl) {
            for (qn::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
              const qn::Channel& c = nl.channel(ch);
              if (c.name.find("sbox/out") != std::string::npos)
                nl.net(c.rails[1]).cap_ff *= 1.8;
            }
          })
          .attack(qc::Cpa{})
          .run();
  ASSERT_TRUE(r.attack.has_value());
  EXPECT_EQ(r.attack->kind, "cpa");
  EXPECT_EQ(r.attack->true_key_rank, 0u);
}

TEST(CampaignEndToEnd, AesCoreGoldenPathFusedCpaAndFaultProbe) {
#ifdef QDI_ASAN_ACTIVE
  GTEST_SKIP() << "25k-cell campaigns are minutes-long under sanitizers";
#endif
  const std::uint64_t key = 0x2b7e151628aed2a6ull;

  // Golden path: every materialized trace of the full core decodes to
  // exactly what the crypto::aes-derived reference computes for its
  // plaintext record (data_out and nk_out, all 64 rail-group values).
  const qc::TargetInstance ref = qc::aes_core().build(key);
  const qc::CampaignResult mat =
      qc::Campaign().target(qc::aes_core()).key(key).seed(5).traces(8).run();
  ASSERT_EQ(mat.traces.size(), 8u);
  EXPECT_GT(mat.acquisition.transitions, 0u);
  for (std::size_t i = 0; i < mat.traces.size(); ++i) {
    const auto pt = mat.traces.plaintext(i);
    const std::vector<int> want =
        ref.golden(std::vector<std::uint8_t>(pt.begin(), pt.end()));
    // Trace ciphertexts pack the decoded output-channel bits LSB-first.
    std::vector<std::uint8_t> packed((want.size() + 7) / 8, 0);
    for (std::size_t b = 0; b < want.size(); ++b)
      if (want[b]) packed[b / 8] |= static_cast<std::uint8_t>(1u << (b % 8));
    const auto got = mat.traces.ciphertext(i);
    ASSERT_EQ(got.size(), packed.size()) << "trace " << i;
    for (std::size_t j = 0; j < packed.size(); ++j)
      EXPECT_EQ(got[j], packed[j]) << "trace " << i << " byte " << j;
  }

  // Fused CPA through the standard streaming path: the 256-guess
  // first-round S-Box analysis runs on the whole core without ever
  // materializing a TraceSet.
  const qc::CampaignResult fused = qc::Campaign()
                                       .target(qc::aes_core())
                                       .key(key)
                                       .seed(5)
                                       .traces(64)
                                       .fused(16)
                                       .attack(qc::Cpa{})
                                       .run();
  ASSERT_TRUE(fused.attack.has_value());
  EXPECT_EQ(fused.attack->kind, "cpa");
  EXPECT_EQ(fused.traces.size(), 0u);  // fused mode keeps no samples
  EXPECT_LT(fused.attack->best_guess, 256u);
  EXPECT_LT(fused.attack->true_key_rank, 256u);

  // Bounded fault probe: a handful of injection sites on the full core
  // classify through the same deadlock/masked/exploitable machinery as
  // the slice targets.
  qc::FaultCampaignOptions probe;
  probe.max_sites = 4;
  probe.repeats = 1;
  const qc::CampaignResult faulted = qc::Campaign()
                                         .target(qc::aes_core())
                                         .key(key)
                                         .seed(5)
                                         .faults(probe)
                                         .run();
  ASSERT_TRUE(faulted.faults.has_value());
  EXPECT_GT(faulted.faults->summary.runs, 0u);
  EXPECT_EQ(faulted.faults->summary.runs,
            faulted.faults->summary.deadlock + faulted.faults->summary.masked +
                faulted.faults->summary.exploitable);
}

TEST(CampaignFlow, FlowOnlyCampaignEvaluatesCriterion) {
  qdi::core::FlowOptions flow;
  flow.placer.mode = qdi::pnr::FlowMode::Flat;
  flow.placer.seed = 3;
  flow.placer.moves_per_cell = 4;
  const qc::CampaignResult r =
      qc::Campaign().target(qc::xor_stage()).flow(flow).run();
  ASSERT_TRUE(r.flow.has_value());
  EXPECT_FALSE(r.criteria.empty());
  EXPECT_GE(r.max_da, 0.0);
  EXPECT_EQ(r.traces.size(), 0u);
  EXPECT_FALSE(r.attack.has_value());
  EXPECT_GT(r.nl.num_gates(), 0u);
}
