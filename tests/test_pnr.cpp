#include <gtest/gtest.h>

#include <map>
#include <set>

#include "qdi/gates/testbench.hpp"
#include "qdi/pnr/extraction.hpp"
#include "qdi/pnr/placement.hpp"

namespace qn = qdi::netlist;
namespace qp = qdi::pnr;
namespace qg = qdi::gates;

namespace {
qn::Netlist medium_circuit() {
  return qg::build_aes_byte_slice().nl;  // ~2.5k cells with hierarchy
}

qp::PlacerOptions fast_options(qp::FlowMode mode, std::uint64_t seed) {
  qp::PlacerOptions opt;
  opt.mode = mode;
  opt.seed = seed;
  opt.moves_per_cell = 10;  // keep unit tests quick
  opt.stages = 20;
  return opt;
}
}  // namespace

TEST(RegionKey, TruncatesAtDepth) {
  qn::Cell cell;
  cell.hier = "aes_core/bytesub/sbox0";
  EXPECT_EQ(qp::region_key(cell, 1), "aes_core");
  EXPECT_EQ(qp::region_key(cell, 2), "aes_core/bytesub");
  EXPECT_EQ(qp::region_key(cell, 3), "aes_core/bytesub/sbox0");
  EXPECT_EQ(qp::region_key(cell, 5), "aes_core/bytesub/sbox0");
  cell.hier = "";
  EXPECT_EQ(qp::region_key(cell, 2), "");
}

TEST(Placement, AllCellsInsideDie) {
  const qn::Netlist nl = medium_circuit();
  const qp::Placement p = qp::place(nl, fast_options(qp::FlowMode::Flat, 1));
  ASSERT_EQ(p.cell_pos.size(), nl.num_cells());
  for (const auto& pos : p.cell_pos) {
    EXPECT_GE(pos.x_um, 0.0);
    EXPECT_GE(pos.y_um, 0.0);
    EXPECT_LE(pos.x_um, p.die_w_um);
    EXPECT_LE(pos.y_um, p.die_h_um);
  }
}

TEST(Placement, NoTwoCellsShareASite) {
  const qn::Netlist nl = medium_circuit();
  const qp::Placement p = qp::place(nl, fast_options(qp::FlowMode::Flat, 2));
  std::set<std::pair<long, long>> sites;
  for (const auto& pos : p.cell_pos) {
    const auto key = std::make_pair(static_cast<long>(pos.x_um * 100),
                                    static_cast<long>(pos.y_um * 100));
    EXPECT_TRUE(sites.insert(key).second) << "overlap at " << pos.x_um << ","
                                          << pos.y_um;
  }
}

TEST(Placement, DeterministicPerSeed) {
  const qn::Netlist nl = medium_circuit();
  const qp::Placement a = qp::place(nl, fast_options(qp::FlowMode::Flat, 7));
  const qp::Placement b = qp::place(nl, fast_options(qp::FlowMode::Flat, 7));
  ASSERT_EQ(a.cell_pos.size(), b.cell_pos.size());
  for (std::size_t i = 0; i < a.cell_pos.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cell_pos[i].x_um, b.cell_pos[i].x_um);
    EXPECT_DOUBLE_EQ(a.cell_pos[i].y_um, b.cell_pos[i].y_um);
  }
  EXPECT_DOUBLE_EQ(a.total_hpwl_um, b.total_hpwl_um);
}

TEST(Placement, SeedsProduceDifferentLayouts) {
  const qn::Netlist nl = medium_circuit();
  const qp::Placement a = qp::place(nl, fast_options(qp::FlowMode::Flat, 1));
  const qp::Placement b = qp::place(nl, fast_options(qp::FlowMode::Flat, 2));
  EXPECT_NE(a.total_hpwl_um, b.total_hpwl_um);
}

TEST(Placement, AnnealingImprovesWirelength) {
  const qn::Netlist nl = medium_circuit();
  qp::PlacerOptions barely = fast_options(qp::FlowMode::Flat, 3);
  barely.moves_per_cell = 0;  // ~no optimization: near-random placement
  qp::PlacerOptions real = fast_options(qp::FlowMode::Flat, 3);
  real.moves_per_cell = 20;
  const qp::Placement random_p = qp::place(nl, barely);
  const qp::Placement opt_p = qp::place(nl, real);
  EXPECT_LT(opt_p.total_hpwl_um, 0.8 * random_p.total_hpwl_um);
}

TEST(Placement, HierarchicalKeepsCellsInRegions) {
  const qn::Netlist nl = medium_circuit();
  const qp::Placement p =
      qp::place(nl, fast_options(qp::FlowMode::Hierarchical, 4));
  EXPECT_GT(p.regions.size(), 1u);
  qp::PlacerOptions opt = fast_options(qp::FlowMode::Hierarchical, 4);
  for (qn::CellId c = 0; c < nl.num_cells(); ++c) {
    const qp::Region& reg = p.regions[static_cast<std::size_t>(p.region_of_cell[c])];
    const double x = p.cell_pos[c].x_um;
    const double y = p.cell_pos[c].y_um;
    EXPECT_GE(x, reg.c0 * opt.site_pitch_um);
    EXPECT_LE(x, reg.c1 * opt.site_pitch_um);
    EXPECT_GE(y, reg.r0 * opt.row_height_um);
    EXPECT_LE(y, reg.r1 * opt.row_height_um);
  }
}

TEST(Placement, HierarchicalRegionsMatchHierKeys) {
  const qn::Netlist nl = medium_circuit();
  const qp::Placement p =
      qp::place(nl, fast_options(qp::FlowMode::Hierarchical, 5));
  std::set<std::string> names;
  for (const auto& r : p.regions) names.insert(r.name);
  EXPECT_TRUE(names.count("slice/addkey0"));
  EXPECT_TRUE(names.count("slice/bytesub"));
  EXPECT_TRUE(names.count("slice/hb"));
}

TEST(Placement, HierarchicalCostsArea) {
  // The paper reports ~20% core-area overhead for the constrained flow.
  const qn::Netlist nl = medium_circuit();
  const qp::Placement flat = qp::place(nl, fast_options(qp::FlowMode::Flat, 6));
  const qp::Placement hier =
      qp::place(nl, fast_options(qp::FlowMode::Hierarchical, 6));
  EXPECT_GT(hier.core_area_um2(), 1.1 * flat.core_area_um2());
  EXPECT_LT(hier.core_area_um2(), 1.45 * flat.core_area_um2());
}

TEST(NetHpwl, MatchesManualBoundingBox) {
  qn::Netlist nl("h");
  const qn::NetId a = nl.add_input("a");
  const qn::NetId o = nl.add_net("o");
  nl.add_cell(qn::CellKind::Buf, "u1", {a}, o);
  nl.add_cell(qn::CellKind::Output, "po", {o}, qn::kNoNet);
  qp::Placement p;
  p.cell_pos = {{0.0, 0.0}, {30.0, 40.0}, {10.0, 5.0}};
  // net a: input cell(0,0) -> buf(30,40): HPWL 70. net o: buf -> output.
  EXPECT_DOUBLE_EQ(qp::net_hpwl_um(nl, p, a), 70.0);
  EXPECT_DOUBLE_EQ(qp::net_hpwl_um(nl, p, o), 20.0 + 35.0);
}

TEST(Extraction, CapsAreBackAnnotated) {
  qn::Netlist nl = medium_circuit();
  const qp::Placement p = qp::place(nl, fast_options(qp::FlowMode::Flat, 8));
  const qp::ExtractionSummary s = qp::extract(nl, p);
  EXPECT_GT(s.total_wirelength_um, 0.0);
  EXPECT_GT(s.mean_net_cap_ff, 0.0);
  EXPECT_GE(s.max_net_cap_ff, s.mean_net_cap_ff);
  for (const qn::Net& n : nl.nets()) EXPECT_GT(n.cap_ff, 0.0);
  EXPECT_TRUE(nl.check().empty());
}

TEST(Extraction, CapGrowsWithFanoutAndLength) {
  qn::Netlist nl("f");
  const qn::NetId a = nl.add_input("a");
  const qn::NetId b1 = nl.add_net("b1");
  const qn::NetId b2 = nl.add_net("b2");
  nl.add_cell(qn::CellKind::Buf, "u1", {a}, b1);
  nl.add_cell(qn::CellKind::Buf, "u2", {a}, b2);  // `a` has fanout 2
  nl.mark_output(b1, "o1");
  nl.mark_output(b2, "o2");

  qp::Placement p;
  p.cell_pos = {{0, 0}, {100, 0}, {200, 0}, {210, 0}, {220, 0}};
  qp::ExtractionParams params;
  qp::extract(nl, p, params);
  // Net a spans 200 µm with 2 sinks; nets b1/b2 are short with 1 sink.
  EXPECT_GT(nl.net(a).cap_ff, nl.net(b1).cap_ff);
  EXPECT_GT(nl.net(a).wirelength_um, nl.net(b1).wirelength_um);
}

TEST(Extraction, MinCapFloor) {
  qn::Netlist nl("m");
  const qn::NetId a = nl.add_input("a");
  nl.mark_output(a, "o");
  qp::Placement p;
  p.cell_pos = {{5.0, 5.0}, {5.0, 5.0}};  // zero-length net
  qp::ExtractionParams params;
  params.pin_cap_ff = 0.0;
  params.driver_cap_ff = 0.0;
  params.min_cap_ff = 0.7;
  qp::extract(nl, p, params);
  EXPECT_DOUBLE_EQ(nl.net(a).cap_ff, 0.7);
}

TEST(Extraction, CellsCreatedAfterPlacementGetDefinedDefaultCap) {
  // An xform pass splicing cells after the flow leaves the placement's
  // position table short: re-extraction must neither read out of range
  // nor hand those nets stale caps — they get the pin-model default
  // (zero wirelength, pin + driver caps, min floor) and are counted.
  qn::Netlist nl("post");
  const qn::NetId a = nl.add_input("a");
  const qn::NetId q = nl.add_net("q");
  nl.add_cell(qn::CellKind::Buf, "b", {a}, q);
  nl.mark_output(q, "o");
  const qp::Placement placement =
      qp::place(nl, fast_options(qp::FlowMode::Flat, 3));

  // Created after the placement ran: a second buffer on `a`.
  const qn::NetId q2 = nl.add_net("q2");
  nl.add_cell(qn::CellKind::Buf, "b2", {a}, q2);
  nl.mark_output(q2, "o2");

  qp::ExtractionParams params;
  const qp::ExtractionSummary s = qp::extract(nl, placement, params);
  // q2 touches two unplaced cells; `a` gained an unplaced sink.
  EXPECT_GE(s.unplaced_nets, 2u);
  for (const qn::Net& n : nl.nets()) {
    EXPECT_GE(n.cap_ff, params.min_cap_ff);
    EXPECT_GE(n.wirelength_um, 0.0);
  }
  // The unplaced net's cap is exactly the pin model (one Output sink).
  const qn::Net& fresh = nl.net(q2);
  EXPECT_DOUBLE_EQ(fresh.wirelength_um, 0.0);
  EXPECT_DOUBLE_EQ(fresh.cap_ff,
                   std::max(params.min_cap_ff,
                            params.pin_cap_ff * 1.0 + params.driver_cap_ff));
}

TEST(Placement, RegionCapacityGuard) {
  // An absurd padding below 1.0 with depth so deep each cell is alone
  // should still either succeed or throw a clear error, not corrupt.
  const qn::Netlist nl = medium_circuit();
  qp::PlacerOptions opt = fast_options(qp::FlowMode::Hierarchical, 9);
  opt.target_utilization = 0.99;
  opt.region_padding = 1.0;
  try {
    const qp::Placement p = qp::place(nl, opt);
    EXPECT_EQ(p.cell_pos.size(), nl.num_cells());
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("region"), std::string::npos);
  }
}
