// Functional integration of the AES_KEY path primitives: the key-
// expansion core operation g(w) = SubWord(RotWord(w)) ^ Rcon, built from
// the library's wiring + ByteSub + XOR blocks and verified against the
// FIPS-197 key schedule.
#include <gtest/gtest.h>

#include "qdi/crypto/aes.hpp"
#include "qdi/gates/aes_datapath.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/rng.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;
namespace qc = qdi::crypto;

namespace {

struct KeyGCircuit {
  qn::Netlist nl{"key_g"};
  std::vector<qg::DualRail> w, rc;
  std::vector<qg::DualRail> out;
  qs::EnvSpec spec;

  KeyGCircuit() {
    qg::Builder b(nl);
    for (int i = 0; i < 32; ++i) w.push_back(b.dr_input("w" + std::to_string(i)));
    for (int i = 0; i < 8; ++i) rc.push_back(b.dr_input("rc" + std::to_string(i)));

    // RotWord: rotate the word left by one byte — wiring only (bytes are
    // LSB-first: byte i -> bits [8i, 8i+8); rot takes byte 1,2,3,0).
    std::vector<qg::DualRail> rot;
    rot.reserve(32);
    for (int i = 8; i < 32; ++i) rot.push_back(w[static_cast<std::size_t>(i)]);
    for (int i = 0; i < 8; ++i) rot.push_back(w[static_cast<std::size_t>(i)]);

    // SubWord: four S-Boxes.
    std::vector<qg::DualRail> sub;
    {
      qg::Builder::HierScope s(b, "bytesub");
      sub = qg::bytesub32(b, rot, "bs");
    }

    // Rcon on the first byte.
    std::vector<qg::DualRail> first(sub.begin(), sub.begin() + 8);
    std::vector<qg::DualRail> x;
    {
      qg::Builder::HierScope s(b, "xor_rc");
      x = qg::xor_bus(b, first, rc, "x");
    }
    out = x;
    out.insert(out.end(), sub.begin() + 8, sub.end());

    for (std::size_t i = 0; i < out.size(); ++i)
      b.dr_output(out[i], "o" + std::to_string(i));
    for (const auto& d : w) spec.inputs.push_back(d.ch);
    for (const auto& d : rc) spec.inputs.push_back(d.ch);
    for (const auto& d : out) spec.outputs.push_back(d.ch);
    spec.period_ps = 40000.0;
  }
};

std::uint32_t reference_g(std::uint32_t w, std::uint8_t rcon) {
  // Bytes LSB-first within the word.
  std::uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<std::uint8_t>(w >> (8 * i));
  const std::uint8_t rot[4] = {bytes[1], bytes[2], bytes[3], bytes[0]};
  std::uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    std::uint8_t s = qc::aes_sbox(rot[i]);
    if (i == 0) s = static_cast<std::uint8_t>(s ^ rcon);
    r |= static_cast<std::uint32_t>(s) << (8 * i);
  }
  return r;
}

}  // namespace

TEST(KeyScheduleSlice, MatchesReferenceG) {
  KeyGCircuit c;
  ASSERT_TRUE(c.nl.check().empty());
  qs::Simulator sim(c.nl);
  qs::FourPhaseEnv env(sim, c.spec);
  env.apply_reset();

  qdi::util::Rng rng(99);
  for (int t = 0; t < 6; ++t) {
    const std::uint32_t w = static_cast<std::uint32_t>(rng.next());
    const std::uint8_t rcon = rng.byte();
    std::vector<int> values;
    for (int i = 0; i < 32; ++i) values.push_back((w >> i) & 1);
    for (int i = 0; i < 8; ++i) values.push_back((rcon >> i) & 1);
    const auto cyc = env.send(values);
    ASSERT_TRUE(cyc.ok);
    std::uint32_t got = 0;
    for (std::size_t i = 0; i < cyc.outputs.size(); ++i)
      if (cyc.outputs[i] == 1) got |= (1u << i);
    EXPECT_EQ(got, reference_g(w, rcon)) << "t=" << t;
  }
}

TEST(KeyScheduleSlice, GeneratesRealRoundKeyWords) {
  // Chain the g-function result through the FIPS-197 recurrence for the
  // first expansion word and compare against Aes128's round key 1.
  qc::Aes128Key key{};
  for (int i = 0; i < 16; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(3 * i + 1);
  const qc::Aes128 aes(key);

  auto word_of = [&](std::span<const std::uint8_t, 16> rk, int w) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(rk[static_cast<std::size_t>(4 * w + i)]) << (8 * i);
    return v;
  };
  const std::uint32_t w3 = word_of(aes.round_key(0), 3);
  const std::uint32_t w0 = word_of(aes.round_key(0), 0);
  const std::uint32_t w4_expected = word_of(aes.round_key(1), 0);

  KeyGCircuit c;
  qs::Simulator sim(c.nl);
  qs::FourPhaseEnv env(sim, c.spec);
  env.apply_reset();
  std::vector<int> values;
  for (int i = 0; i < 32; ++i) values.push_back((w3 >> i) & 1);
  for (int i = 0; i < 8; ++i) values.push_back((0x01 >> i) & 1);  // Rcon[1]
  const auto cyc = env.send(values);
  ASSERT_TRUE(cyc.ok);
  std::uint32_t g = 0;
  for (std::size_t i = 0; i < cyc.outputs.size(); ++i)
    if (cyc.outputs[i] == 1) g |= (1u << i);
  EXPECT_EQ(g ^ w0, w4_expected);
}
