// Compiled-kernel equivalence and unit tests.
//
// The CompiledSimulator must be indistinguishable from the reference
// Simulator at every observable level: per-transition (log records),
// per-trace (power samples, ciphertext, transition/glitch counts), and
// per-campaign (any thread count). These tests pin all three, for every
// simulatable CircuitTarget in the registry.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "qdi/campaign/target.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/sim/compiled_simulator.hpp"

namespace qc = qdi::campaign;
namespace qn = qdi::netlist;
namespace qs = qdi::sim;

namespace {

qdi::dpa::TraceSet acquire(const qc::TargetInstance& inst, qs::EngineKind kind,
                           unsigned threads, qc::AcquisitionStats* stats,
                           std::size_t n = 8, double jitter_ps = 0.0,
                           double noise = 0.0) {
  qc::SimTraceSourceOptions opt;
  opt.engine = kind;
  opt.start_jitter_ps = jitter_ps;
  opt.power.noise_sigma_ua = noise;
  qc::SimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);
  return qc::acquire_batch(src, n, /*seed=*/42, threads, stats);
}

void expect_bit_identical(const qdi::dpa::TraceSet& a,
                          const qdi::dpa::TraceSet& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_samples(), b.num_samples());
  const auto bytes = [](std::span<const std::uint8_t> s) {
    return std::vector<std::uint8_t>(s.begin(), s.end());
  };
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(bytes(a.plaintext(i)), bytes(b.plaintext(i))) << "trace " << i;
    ASSERT_EQ(bytes(a.ciphertext(i)), bytes(b.ciphertext(i))) << "trace " << i;
    for (std::size_t j = 0; j < a.num_samples(); ++j)
      ASSERT_EQ(a.trace(i)[j], b.trace(i)[j])
          << "trace " << i << " sample " << j;
  }
}

}  // namespace

// ---- registry-wide trace equivalence ---------------------------------------

TEST(CompiledEquivalence, AllRegistryTargetsBitIdenticalAnyThreadCount) {
  for (const std::string& name : qc::list_targets()) {
    SCOPED_TRACE(name);
    const qc::TargetInstance inst = qc::find_target(name).build(0x2b);
    if (!inst.simulatable || !inst.stimulus) continue;

    qc::AcquisitionStats ref_stats;
    const qdi::dpa::TraceSet ref =
        acquire(inst, qs::EngineKind::Reference, 1, &ref_stats);

    for (unsigned threads : {1u, 3u}) {
      SCOPED_TRACE(threads);
      qc::AcquisitionStats stats;
      const qdi::dpa::TraceSet compiled =
          acquire(inst, qs::EngineKind::Compiled, threads, &stats);
      expect_bit_identical(ref, compiled);
      EXPECT_EQ(stats.transitions, ref_stats.transitions);
      EXPECT_EQ(stats.glitches, ref_stats.glitches);
      EXPECT_EQ(stats.per_trace_transitions, ref_stats.per_trace_transitions);
    }
  }
}

TEST(CompiledEquivalence, JitterAndNoiseStreamsMatchReference) {
  // Jitter exercises the predicted-window path of the streaming
  // accumulator; noise exercises the RNG draw order around it.
  const qc::TargetInstance inst = qc::xor_stage().build(0);
  const qdi::dpa::TraceSet ref = acquire(inst, qs::EngineKind::Reference, 1,
                                         nullptr, 12, 300.0, 1.5);
  const qdi::dpa::TraceSet compiled = acquire(inst, qs::EngineKind::Compiled, 2,
                                              nullptr, 12, 300.0, 1.5);
  expect_bit_identical(ref, compiled);
}

TEST(CompiledEquivalence, UnbalancedCapsSurviveCompilation) {
  // Compilation snapshots per-net capacitance; a prepare-style mutation
  // before source construction must show up identically in both engines.
  qc::TargetInstance inst = qc::des_sbox_slice().build(0x15);
  for (qn::ChannelId ch = 0; ch < inst.nl.num_channels(); ++ch) {
    const qn::Channel& c = inst.nl.channel(ch);
    if (c.name.find("sbox/out") != std::string::npos)
      inst.nl.net(c.rails[1]).cap_ff *= 1.8;
  }
  const qdi::dpa::TraceSet ref =
      acquire(inst, qs::EngineKind::Reference, 1, nullptr, 16);
  const qdi::dpa::TraceSet compiled =
      acquire(inst, qs::EngineKind::Compiled, 1, nullptr, 16);
  expect_bit_identical(ref, compiled);
}

// ---- log-level equivalence -------------------------------------------------

TEST(CompiledKernel, TransitionLogMatchesReferenceExactly) {
  const qdi::gates::XorStage x = qdi::gates::build_xor_stage();

  qs::Simulator ref(x.nl);
  qs::FourPhaseEnv ref_env(ref, x.env);
  ref_env.apply_reset();

  qs::CompiledSimulator comp(qs::compile(x.nl));
  comp.set_log_enabled(true);
  qs::FourPhaseEnv comp_env(comp, x.env);
  comp_env.apply_reset();

  for (int v = 0; v < 4; ++v) {
    const std::vector<int> values{v & 1, (v >> 1) & 1};
    ref.clear_log();
    comp.clear_log();
    const auto rc = ref_env.send(values);
    const auto cc = comp_env.send(values);
    ASSERT_TRUE(rc.ok);
    ASSERT_TRUE(cc.ok);
    EXPECT_EQ(rc.outputs, cc.outputs);
    ASSERT_EQ(ref.log().size(), comp.log().size());
    for (std::size_t i = 0; i < ref.log().size(); ++i) {
      const qs::Transition& a = ref.log()[i];
      const qs::Transition& b = comp.log()[i];
      EXPECT_EQ(a.t_ps, b.t_ps) << "transition " << i;
      EXPECT_EQ(a.net, b.net) << "transition " << i;
      EXPECT_EQ(a.rising, b.rising) << "transition " << i;
      EXPECT_EQ(a.cap_ff, b.cap_ff) << "transition " << i;
      EXPECT_EQ(a.slew_ps, b.slew_ps) << "transition " << i;
    }
    EXPECT_EQ(ref.transition_count(), comp.transition_count());
    EXPECT_EQ(ref.glitch_count(), comp.glitch_count());
  }
}

// ---- epoch snapshot --------------------------------------------------------

TEST(CompiledKernel, EpochRestoreReplaysIdenticalCycles) {
  const qdi::gates::XorStage x = qdi::gates::build_xor_stage();
  qs::CompiledSimulator sim(qs::compile(x.nl));
  sim.set_log_enabled(true);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  const auto epoch = sim.save_epoch();

  const std::vector<int> values{1, 0};
  sim.clear_log();
  auto first = env.send(values);
  ASSERT_TRUE(first.ok);
  const std::vector<qs::Transition> first_log = sim.log();

  // Restoring the epoch must replay the cycle bit-identically — same
  // absolute times, same transition sequence.
  sim.restore_epoch(epoch);
  auto second = env.send(values);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(first.t_start, second.t_start);
  EXPECT_EQ(first.transitions, second.transitions);
  ASSERT_EQ(first_log.size(), sim.log().size());
  for (std::size_t i = 0; i < first_log.size(); ++i) {
    EXPECT_EQ(first_log[i].t_ps, sim.log()[i].t_ps);
    EXPECT_EQ(first_log[i].net, sim.log()[i].net);
    EXPECT_EQ(first_log[i].rising, sim.log()[i].rising);
  }
}

// ---- compiled structure sanity ---------------------------------------------

TEST(CompiledNetlist, CsrStructureMirrorsSource) {
  const qc::TargetInstance inst = qc::xor_stage().build(0);
  const qs::CompiledNetlist cn(inst.nl);
  ASSERT_EQ(cn.num_nets(), inst.nl.num_nets());
  ASSERT_EQ(cn.num_cells(), inst.nl.num_cells());
  for (qn::NetId n = 0; n < cn.num_nets(); ++n)
    EXPECT_EQ(cn.cap_ff[n], inst.nl.net(n).cap_ff);
  for (qn::CellId c = 0; c < cn.num_cells(); ++c) {
    const qn::Cell& cell = inst.nl.cell(c);
    EXPECT_EQ(cn.kind[c], cell.kind);
    const std::uint32_t lo = cn.fanin_offset[c];
    const std::uint32_t hi = cn.fanin_offset[c + 1];
    ASSERT_EQ(hi - lo, cell.inputs.size());
    for (std::size_t i = 0; i < cell.inputs.size(); ++i)
      EXPECT_EQ(cn.fanin_net[lo + i], cell.inputs[i]);
  }
  // Fanout CSR: every non-Output sink pin appears, in order.
  for (qn::NetId n = 0; n < cn.num_nets(); ++n) {
    std::vector<std::uint32_t> expect;
    for (const qn::Pin& p : inst.nl.net(n).sinks)
      if (inst.nl.cell(p.cell).kind != qn::CellKind::Output)
        expect.push_back(p.cell);
    const std::vector<std::uint32_t> got(
        cn.fanout_cell.begin() + cn.fanout_offset[n],
        cn.fanout_cell.begin() + cn.fanout_offset[n + 1]);
    EXPECT_EQ(got, expect) << "net " << n;
  }
}

// ---- name index ------------------------------------------------------------

TEST(NameIndex, HashedLookupMatchesLinearScanAndSurvivesMutation) {
  qn::Netlist nl("idx");
  std::vector<qn::NetId> ids;
  // Well past kNameIndexThreshold so the hashed path is exercised.
  for (int i = 0; i < 100; ++i)
    ids.push_back(nl.add_net("net" + std::to_string(i)));
  EXPECT_EQ(nl.find_net("net0"), ids[0]);
  EXPECT_EQ(nl.find_net("net99"), ids[99]);
  EXPECT_EQ(nl.find_net("net100"), qn::kNoNet);

  // Adding after the index was built must invalidate and find the new net.
  const qn::NetId fresh = nl.add_net("fresh");
  EXPECT_EQ(nl.find_net("fresh"), fresh);

  // Renaming through the mutable accessor must also invalidate.
  nl.net(ids[7]).name = "renamed";
  EXPECT_EQ(nl.find_net("renamed"), ids[7]);
  EXPECT_EQ(nl.find_net("net7"), qn::kNoNet);

  // Duplicate names resolve to the lowest id, like the linear scan.
  nl.net(ids[5]).name = "dup";
  nl.net(ids[9]).name = "dup";
  EXPECT_EQ(nl.find_net("dup"), ids[5]);
}
