// Compiled-kernel equivalence and unit tests.
//
// The CompiledSimulator must be indistinguishable from the reference
// Simulator at every observable level: per-transition (log records),
// per-trace (power samples, ciphertext, transition/glitch counts), and
// per-campaign (any thread count). These tests pin all three, for every
// simulatable CircuitTarget in the registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <span>
#include <stdexcept>
#include <vector>

#include "qdi/campaign/target.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/sim/compiled_simulator.hpp"

namespace qc = qdi::campaign;
namespace qn = qdi::netlist;
namespace qs = qdi::sim;

namespace {

qdi::dpa::TraceSet acquire(const qc::TargetInstance& inst, qs::EngineKind kind,
                           unsigned threads, qc::AcquisitionStats* stats,
                           std::size_t n = 8, double jitter_ps = 0.0,
                           double noise = 0.0,
                           qs::SchedulerKind sched = qs::SchedulerKind::Wheel) {
  qc::SimTraceSourceOptions opt;
  opt.engine = kind;
  opt.scheduler = sched;
  opt.start_jitter_ps = jitter_ps;
  opt.power.noise_sigma_ua = noise;
  qc::SimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);
  return qc::acquire_batch(src, n, /*seed=*/42, threads, stats);
}

void expect_bit_identical(const qdi::dpa::TraceSet& a,
                          const qdi::dpa::TraceSet& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_samples(), b.num_samples());
  const auto bytes = [](std::span<const std::uint8_t> s) {
    return std::vector<std::uint8_t>(s.begin(), s.end());
  };
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(bytes(a.plaintext(i)), bytes(b.plaintext(i))) << "trace " << i;
    ASSERT_EQ(bytes(a.ciphertext(i)), bytes(b.ciphertext(i))) << "trace " << i;
    for (std::size_t j = 0; j < a.num_samples(); ++j)
      ASSERT_EQ(a.trace(i)[j], b.trace(i)[j])
          << "trace " << i << " sample " << j;
  }
}

}  // namespace

// ---- registry-wide trace equivalence ---------------------------------------

TEST(CompiledEquivalence, AllRegistryTargetsBitIdenticalAnyThreadCount) {
  for (const std::string& name : qc::list_targets()) {
    SCOPED_TRACE(name);
    const qc::TargetInstance inst = qc::find_target(name).build(0x2b);
    if (!inst.simulatable || !inst.stimulus) continue;

    qc::AcquisitionStats ref_stats;
    const qdi::dpa::TraceSet ref =
        acquire(inst, qs::EngineKind::Reference, 1, &ref_stats);

    for (qs::SchedulerKind sched :
         {qs::SchedulerKind::Wheel, qs::SchedulerKind::Heap}) {
      SCOPED_TRACE(sched == qs::SchedulerKind::Wheel ? "wheel" : "heap");
      for (unsigned threads : {1u, 3u}) {
        SCOPED_TRACE(threads);
        qc::AcquisitionStats stats;
        const qdi::dpa::TraceSet compiled = acquire(
            inst, qs::EngineKind::Compiled, threads, &stats, 8, 0.0, 0.0,
            sched);
        expect_bit_identical(ref, compiled);
        EXPECT_EQ(stats.transitions, ref_stats.transitions);
        EXPECT_EQ(stats.glitches, ref_stats.glitches);
        EXPECT_EQ(stats.per_trace_transitions, ref_stats.per_trace_transitions);
      }
    }
  }
}

TEST(CompiledEquivalence, JitterAndNoiseStreamsMatchReference) {
  // Jitter exercises the predicted-window path of the streaming
  // accumulator; noise exercises the RNG draw order around it.
  const qc::TargetInstance inst = qc::xor_stage().build(0);
  const qdi::dpa::TraceSet ref = acquire(inst, qs::EngineKind::Reference, 1,
                                         nullptr, 12, 300.0, 1.5);
  const qdi::dpa::TraceSet compiled = acquire(inst, qs::EngineKind::Compiled, 2,
                                              nullptr, 12, 300.0, 1.5);
  expect_bit_identical(ref, compiled);
}

TEST(CompiledEquivalence, UnbalancedCapsSurviveCompilation) {
  // Compilation snapshots per-net capacitance; a prepare-style mutation
  // before source construction must show up identically in both engines.
  qc::TargetInstance inst = qc::des_sbox_slice().build(0x15);
  for (qn::ChannelId ch = 0; ch < inst.nl.num_channels(); ++ch) {
    const qn::Channel& c = inst.nl.channel(ch);
    if (c.name.find("sbox/out") != std::string::npos)
      inst.nl.net(c.rails[1]).cap_ff *= 1.8;
  }
  const qdi::dpa::TraceSet ref =
      acquire(inst, qs::EngineKind::Reference, 1, nullptr, 16);
  const qdi::dpa::TraceSet compiled =
      acquire(inst, qs::EngineKind::Compiled, 1, nullptr, 16);
  expect_bit_identical(ref, compiled);
}

// ---- log-level equivalence -------------------------------------------------

TEST(CompiledKernel, TransitionLogMatchesReferenceExactly) {
  const qdi::gates::XorStage x = qdi::gates::build_xor_stage();

  qs::Simulator ref(x.nl);
  qs::FourPhaseEnv ref_env(ref, x.env);
  ref_env.apply_reset();

  qs::CompiledSimulator comp(qs::compile(x.nl));
  comp.set_log_enabled(true);
  qs::FourPhaseEnv comp_env(comp, x.env);
  comp_env.apply_reset();

  for (int v = 0; v < 4; ++v) {
    const std::vector<int> values{v & 1, (v >> 1) & 1};
    ref.clear_log();
    comp.clear_log();
    const auto rc = ref_env.send(values);
    const auto cc = comp_env.send(values);
    ASSERT_TRUE(rc.ok);
    ASSERT_TRUE(cc.ok);
    EXPECT_EQ(rc.outputs, cc.outputs);
    ASSERT_EQ(ref.log().size(), comp.log().size());
    for (std::size_t i = 0; i < ref.log().size(); ++i) {
      const qs::Transition& a = ref.log()[i];
      const qs::Transition& b = comp.log()[i];
      EXPECT_EQ(a.t_ps, b.t_ps) << "transition " << i;
      EXPECT_EQ(a.net, b.net) << "transition " << i;
      EXPECT_EQ(a.rising, b.rising) << "transition " << i;
      EXPECT_EQ(a.cap_ff, b.cap_ff) << "transition " << i;
      EXPECT_EQ(a.slew_ps, b.slew_ps) << "transition " << i;
    }
    EXPECT_EQ(ref.transition_count(), comp.transition_count());
    EXPECT_EQ(ref.glitch_count(), comp.glitch_count());
  }
}

// ---- epoch snapshot --------------------------------------------------------

TEST(CompiledKernel, EpochRestoreReplaysIdenticalCycles) {
  const qdi::gates::XorStage x = qdi::gates::build_xor_stage();
  qs::CompiledSimulator sim(qs::compile(x.nl));
  sim.set_log_enabled(true);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  const auto epoch = sim.save_epoch();

  const std::vector<int> values{1, 0};
  sim.clear_log();
  auto first = env.send(values);
  ASSERT_TRUE(first.ok);
  const std::vector<qs::Transition> first_log = sim.log();

  // Restoring the epoch must replay the cycle bit-identically — same
  // absolute times, same transition sequence.
  sim.restore_epoch(epoch);
  auto second = env.send(values);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(first.t_start, second.t_start);
  EXPECT_EQ(first.transitions, second.transitions);
  ASSERT_EQ(first_log.size(), sim.log().size());
  for (std::size_t i = 0; i < first_log.size(); ++i) {
    EXPECT_EQ(first_log[i].t_ps, sim.log()[i].t_ps);
    EXPECT_EQ(first_log[i].net, sim.log()[i].net);
    EXPECT_EQ(first_log[i].rising, sim.log()[i].rising);
  }
}

TEST(CompiledKernel, WheelAndHeapSchedulersPopIdenticalSequences) {
  // Per-transition differential check of the two queue implementations
  // across all four codewords of the XOR stage, including epoch reuse.
  const qdi::gates::XorStage x = qdi::gates::build_xor_stage();
  const auto cn = qs::compile(x.nl);

  qs::CompiledSimulator wheel(cn, qs::SchedulerKind::Wheel);
  wheel.set_log_enabled(true);
  qs::FourPhaseEnv wheel_env(wheel, x.env);
  wheel_env.apply_reset();
  const auto wheel_epoch = wheel.save_epoch();

  qs::CompiledSimulator heap(cn, qs::SchedulerKind::Heap);
  heap.set_log_enabled(true);
  qs::FourPhaseEnv heap_env(heap, x.env);
  heap_env.apply_reset();
  const auto heap_epoch = heap.save_epoch();

  for (int v = 0; v < 4; ++v) {
    SCOPED_TRACE(v);
    wheel.restore_epoch(wheel_epoch);
    heap.restore_epoch(heap_epoch);
    const std::vector<int> values{v & 1, (v >> 1) & 1};
    const auto wc = wheel_env.send(values);
    const auto hc = heap_env.send(values);
    ASSERT_TRUE(wc.ok);
    ASSERT_TRUE(hc.ok);
    EXPECT_EQ(wc.outputs, hc.outputs);
    ASSERT_EQ(wheel.log().size(), heap.log().size());
    for (std::size_t i = 0; i < wheel.log().size(); ++i) {
      EXPECT_EQ(wheel.log()[i].t_ps, heap.log()[i].t_ps) << "transition " << i;
      EXPECT_EQ(wheel.log()[i].net, heap.log()[i].net) << "transition " << i;
      EXPECT_EQ(wheel.log()[i].rising, heap.log()[i].rising)
          << "transition " << i;
    }
    EXPECT_EQ(wheel.transition_count(), heap.transition_count());
    EXPECT_EQ(wheel.glitch_count(), heap.glitch_count());
    EXPECT_EQ(wheel.queue_size(), 0u);
    EXPECT_EQ(heap.queue_size(), 0u);
  }
}

TEST(CompiledKernel, RestoringAnOlderEpochFallsBackToFullCopyCorrectly) {
  // The dirty set is accumulated against the most recent save/restore
  // baseline; restoring a DIFFERENT epoch must still be exact (full
  // copy), and re-restoring it afterwards takes the dirty fast path.
  const qdi::gates::XorStage x = qdi::gates::build_xor_stage();
  qs::CompiledSimulator sim(qs::compile(x.nl));
  sim.set_log_enabled(true);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  const auto e1 = sim.save_epoch();

  ASSERT_TRUE(env.send(std::vector<int>{1, 0}).ok);
  const auto e2 = sim.save_epoch();  // mid-campaign snapshot, t advanced

  ASSERT_TRUE(env.send(std::vector<int>{0, 1}).ok);

  // Full-copy path: baseline is e2, restoring e1.
  sim.restore_epoch(e1);
  const auto first = env.send(std::vector<int>{1, 1});
  ASSERT_TRUE(first.ok);
  const std::vector<qs::Transition> first_log = sim.log();

  // Dirty path: baseline is now e1.
  sim.restore_epoch(e1);
  const auto second = env.send(std::vector<int>{1, 1});
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(first.t_start, second.t_start);
  ASSERT_EQ(first_log.size(), sim.log().size());
  for (std::size_t i = 0; i < first_log.size(); ++i) {
    EXPECT_EQ(first_log[i].t_ps, sim.log()[i].t_ps);
    EXPECT_EQ(first_log[i].net, sim.log()[i].net);
    EXPECT_EQ(first_log[i].rising, sim.log()[i].rising);
  }

  // And e2 still restores exactly (full copy again).
  sim.restore_epoch(e2);
  const auto third = env.send(std::vector<int>{1, 1});
  ASSERT_TRUE(third.ok);
  EXPECT_EQ(third.t_start,
            std::ceil((e2.now + 1e-9) / x.env.period_ps) * x.env.period_ps);
}

TEST(CompiledKernel, EpochPreconditionsAreHardErrorsInReleaseBuilds) {
  const qdi::gates::XorStage x = qdi::gates::build_xor_stage();
  qs::CompiledSimulator sim(qs::compile(x.nl));
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  const auto epoch = sim.save_epoch();

  // Undrained queue: schedule an input transition but do not run it.
  sim.drive(x.nl.channel(x.env.inputs[0]).rails[1], true, sim.now() + 10.0);
  ASSERT_GT(sim.queue_size(), 0u);
  EXPECT_THROW(sim.save_epoch(), std::logic_error);
  EXPECT_THROW(sim.restore_epoch(epoch), std::logic_error);
  sim.run_until_stable();

  // Geometry mismatch: an epoch from a different netlist.
  qs::CompiledSimulator other(qs::compile(qdi::gates::build_xor_stage().nl));
  auto foreign = other.save_epoch();
  foreign.values.resize(3);
  EXPECT_THROW(sim.restore_epoch(foreign), std::invalid_argument);

  // Driving a non-input net is rejected in all build modes.
  EXPECT_THROW(sim.drive(x.nl.channel(x.env.outputs[0]).rails[0], true,
                         sim.now()),
               std::invalid_argument);
}

TEST(CompiledKernel, TombstonePurgeBoundsQueueGrowthUnderRetraction) {
  // Pathological retraction: toggle a primary input faster than its
  // inertial commit, so every second drive cancels the pending event and
  // leaves a tombstone. Without the purge the queue grows by one stale
  // event per cancelled pair; with it, stale events never exceed live
  // events (+ purge hysteresis) for both schedulers.
  const qdi::gates::XorStage x = qdi::gates::build_xor_stage();
  const auto cn = qs::compile(x.nl);
  const qn::NetId in0 = x.nl.channel(x.env.inputs[0]).rails[1];
  for (qs::SchedulerKind sched :
       {qs::SchedulerKind::Wheel, qs::SchedulerKind::Heap}) {
    SCOPED_TRACE(sched == qs::SchedulerKind::Wheel ? "wheel" : "heap");
    qs::CompiledSimulator sim(cn, sched);
    qs::FourPhaseEnv env(sim, x.env);
    env.apply_reset();
    const double t0 = sim.now();
    std::size_t max_queue = 0;
    for (int i = 0; i < 4096; ++i) {
      // Alternating far-future drives: each pair schedules then cancels.
      sim.drive(in0, (i & 1) == 0, t0 + 1e6 + i);
      max_queue = std::max(max_queue, sim.queue_size());
      // The purge fires once the queue passes its 64-event hysteresis;
      // below that tombstones may transiently dominate.
      EXPECT_LE(sim.tombstone_count(),
                std::max<std::size_t>(sim.queue_size() / 2 + 1, 64))
          << "tombstones exceeded half the queue at drive " << i;
    }
    EXPECT_LT(max_queue, 128u) << "queue grew unboundedly under retraction";
    sim.run_until_stable();
    EXPECT_EQ(sim.queue_size(), 0u);
    EXPECT_EQ(sim.tombstone_count(), 0u);
  }
}

// ---- allocation-free steady state ------------------------------------------

#if defined(__SANITIZE_ADDRESS__)
#define QDI_ASAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define QDI_ASAN_ACTIVE 1
#endif
#endif

#ifndef QDI_ASAN_ACTIVE
namespace {
std::atomic<std::uint64_t> g_new_count{0};
}  // namespace

// Counting scalar new/delete: pass-through to malloc/free, used only to
// assert the steady-state acquisition loop allocates nothing.
void* operator new(std::size_t n) {
  g_new_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

TEST(CompiledKernel, SteadyStateAcquisitionLoopIsAllocationFree) {
  const qc::TargetInstance inst = qc::find_target("aes_byte_slice").build(0x2b);
  qc::SimTraceSource src(inst.nl, inst.env, inst.stimulus, {});
  qc::AcquiredTrace slot;
  // Warm-up traces pay reset, the epoch snapshot, and buffer sizing.
  for (std::size_t i = 0; i < 8; ++i) src.acquire_into({1, i}, slot);
  const std::uint64_t before = g_new_count.load(std::memory_order_relaxed);
  for (std::size_t i = 8; i < 108; ++i) src.acquire_into({1, i}, slot);
  EXPECT_EQ(g_new_count.load(std::memory_order_relaxed) - before, 0u)
      << "the steady-state per-trace loop allocated";
}
#endif  // !QDI_ASAN_ACTIVE

// ---- compiled structure sanity ---------------------------------------------

TEST(CompiledNetlist, CsrStructureMirrorsSource) {
  const qc::TargetInstance inst = qc::xor_stage().build(0);
  const qs::CompiledNetlist cn(inst.nl);
  ASSERT_EQ(cn.num_nets(), inst.nl.num_nets());
  ASSERT_EQ(cn.num_cells(), inst.nl.num_cells());
  for (qn::NetId n = 0; n < cn.num_nets(); ++n)
    EXPECT_EQ(cn.cap_ff[n], inst.nl.net(n).cap_ff);
  for (qn::CellId c = 0; c < cn.num_cells(); ++c) {
    const qn::Cell& cell = inst.nl.cell(c);
    EXPECT_EQ(cn.kind[c], cell.kind);
    const std::uint32_t lo = cn.fanin_offset[c];
    const std::uint32_t hi = cn.fanin_offset[c + 1];
    ASSERT_EQ(hi - lo, cell.inputs.size());
    for (std::size_t i = 0; i < cell.inputs.size(); ++i)
      EXPECT_EQ(cn.fanin_net[lo + i], cell.inputs[i]);
  }
  // Fanout CSR: every non-Output sink pin appears, in order.
  for (qn::NetId n = 0; n < cn.num_nets(); ++n) {
    std::vector<std::uint32_t> expect;
    for (const qn::Pin& p : inst.nl.net(n).sinks)
      if (inst.nl.cell(p.cell).kind != qn::CellKind::Output)
        expect.push_back(p.cell);
    const std::vector<std::uint32_t> got(
        cn.fanout_cell.begin() + cn.fanout_offset[n],
        cn.fanout_cell.begin() + cn.fanout_offset[n + 1]);
    EXPECT_EQ(got, expect) << "net " << n;
  }
}

// ---- name index ------------------------------------------------------------

TEST(NameIndex, HashedLookupMatchesLinearScanAndSurvivesMutation) {
  qn::Netlist nl("idx");
  std::vector<qn::NetId> ids;
  // Well past kNameIndexThreshold so the hashed path is exercised.
  for (int i = 0; i < 100; ++i)
    ids.push_back(nl.add_net("net" + std::to_string(i)));
  EXPECT_EQ(nl.find_net("net0"), ids[0]);
  EXPECT_EQ(nl.find_net("net99"), ids[99]);
  EXPECT_EQ(nl.find_net("net100"), qn::kNoNet);

  // Adding after the index was built must invalidate and find the new net.
  const qn::NetId fresh = nl.add_net("fresh");
  EXPECT_EQ(nl.find_net("fresh"), fresh);

  // Renaming through the mutable accessor must also invalidate.
  nl.net(ids[7]).name = "renamed";
  EXPECT_EQ(nl.find_net("renamed"), ids[7]);
  EXPECT_EQ(nl.find_net("net7"), qn::kNoNet);

  // Duplicate names resolve to the lowest id, like the linear scan.
  nl.net(ids[5]).name = "dup";
  nl.net(ids[9]).name = "dup";
  EXPECT_EQ(nl.find_net("dup"), ids[5]);
}
