#include <gtest/gtest.h>

#include <cmath>

#include "qdi/core/formal_model.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/stats.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;
namespace qc = qdi::core;
namespace qp = qdi::power;

TEST(AnalyzeBlock, XorStageMatchesFig5) {
  qg::XorStage x = qg::build_xor_stage();
  const qn::Graph g(x.nl);
  const qc::BlockProfile p = qc::analyze_block(g);
  EXPECT_EQ(p.nc, 4);
  ASSERT_EQ(p.nij_max.size(), 4u);
  // 10 real gates: 4 Muller + 2 OR + 2 Cr + NOR + ack inverter.
  EXPECT_EQ(p.gates, 10u);
}

TEST(MeasureActivity, EvaluationPhaseOfXor) {
  // The paper's fig. 5 reading: Nt = Nc = 4, Nij = 1 at each level during
  // a computation.
  qg::XorStage x = qg::build_xor_stage();
  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  sim.clear_log();
  const std::vector<int> v{1, 1};
  const auto cyc = env.send(v);
  ASSERT_TRUE(cyc.ok);

  const qn::Graph g(x.nl);
  const qc::MeasuredActivity a =
      qc::measure_activity(g, sim.log(), cyc.t_start, cyc.t_valid + 1.0);
  EXPECT_EQ(a.nt, 4u);
  ASSERT_EQ(a.nij.size(), 5u);
  EXPECT_EQ(a.nij[1], 1u);
  EXPECT_EQ(a.nij[2], 1u);
  EXPECT_EQ(a.nij[3], 1u);
  EXPECT_EQ(a.nij[4], 1u);
}

TEST(MeasureActivity, FullCycleIsTenTransitions) {
  qg::XorStage x = qg::build_xor_stage();
  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  sim.clear_log();
  const std::vector<int> v{0, 1};
  const auto cyc = env.send(v);
  ASSERT_TRUE(cyc.ok);
  const qn::Graph g(x.nl);
  const qc::MeasuredActivity a =
      qc::measure_activity(g, sim.log(), cyc.t_start, cyc.t_end + 1.0);
  // 4 eval + 4 RTZ + 2 ack-inverter transitions.
  EXPECT_EQ(a.nt, 10u);
}

TEST(DynamicPower, Eq1GateFormula) {
  // Pd = C·Vdd²·f: 10 fF at 1.2 V and 100 MHz = 1.44 µW = 1440 nW.
  EXPECT_NEAR(qc::gate_dynamic_power_nw(10.0, 1.2, 100.0), 1440.0, 1e-9);
  // Activity scales linearly (eq. 2's η).
  EXPECT_NEAR(qc::gate_dynamic_power_nw(10.0, 1.2, 100.0, 0.5), 720.0, 1e-9);
}

TEST(DynamicPower, Eq3BlockSumsNets) {
  qg::XorStage x = qg::build_xor_stage();
  double cap_sum = 0.0;
  for (const auto& n : x.nl.nets()) cap_sum += n.cap_ff;
  const double expected = cap_sum * 1.2 * 1.2 * 50.0;
  EXPECT_NEAR(qc::block_dynamic_power_nw(x.nl, 1.2, 50.0), expected, 1e-6);
}

TEST(ArrivalTimes, MonotoneAlongLevels) {
  qg::XorStage x = qg::build_xor_stage();
  const qn::Graph g(x.nl);
  const qs::DelayModel dm;
  const auto arr = qc::arrival_times_ps(g, dm);
  EXPECT_LT(arr[x.m[0]], arr[x.s0]);
  EXPECT_LT(arr[x.s0], arr[x.co0]);
  EXPECT_LT(arr[x.co0], arr[x.ack_out]);
}

TEST(ArrivalTimes, GrowWithCapacitance) {
  qg::XorStage x = qg::build_xor_stage();
  const qs::DelayModel dm;
  const qn::Graph g1(x.nl);
  const auto arr1 = qc::arrival_times_ps(g1, dm);
  x.nl.net(x.s0).cap_ff = 32.0;  // heavier level-2 net
  const qn::Graph g2(x.nl);
  const auto arr2 = qc::arrival_times_ps(g2, dm);
  EXPECT_GT(arr2[x.co0], arr1[x.co0]);      // downstream shifted
  EXPECT_DOUBLE_EQ(arr2[x.co1], arr1[x.co1]);  // other rail untouched
}

namespace {
std::vector<qn::NetId> xor_class_nets(const qg::XorStage& x, int xor_value) {
  // Firing set of the evaluation phase for output class 0 / 1; both
  // minterm gates of the class are listed with their shared OR and Cr:
  // per computation exactly one of (m1, m2) fires for class 0 — using m1
  // (inputs 0,0) as the representative.
  if (xor_value == 0) return {x.m[0], x.s0, x.co0, x.ack_out};
  return {x.m[2], x.s1, x.co1, x.ack_out};
}
}  // namespace

TEST(PredictBias, ZeroForBalancedCaps) {
  qg::XorStage x = qg::build_xor_stage();
  const qn::Graph g(x.nl);
  const qs::DelayModel dm;
  qp::PowerModelParams pm;
  const auto bias = qc::predict_bias(g, dm, pm, xor_class_nets(x, 0),
                                     xor_class_nets(x, 1), 2000.0);
  EXPECT_NEAR(qdi::util::max_abs(bias), 0.0, 1e-9);
}

TEST(PredictBias, NonzeroWithCapImbalance) {
  qg::XorStage x = qg::build_xor_stage();
  x.nl.net(x.s0).cap_ff = 16.0;  // the paper's fig. 7-b experiment
  const qn::Graph g(x.nl);
  const qs::DelayModel dm;
  qp::PowerModelParams pm;
  const auto bias = qc::predict_bias(g, dm, pm, xor_class_nets(x, 0),
                                     xor_class_nets(x, 1), 2000.0);
  EXPECT_GT(qdi::util::max_abs(bias), 0.1);
}

TEST(PredictBias, DeeperImbalanceShiftsMoreOfTheCurve) {
  // Fig. 7's reading: an imbalance at level 1 (beginning of the path)
  // shifts everything downstream, producing a larger integrated bias
  // than the same imbalance at the last level.
  qp::PowerModelParams pm;
  const qs::DelayModel dm;

  qg::XorStage x_late = qg::build_xor_stage();
  x_late.nl.net(x_late.co0).cap_ff = 16.0;  // level 3 (fig. 7-a)
  const qn::Graph g_late(x_late.nl);
  const auto bias_late =
      qc::predict_bias(g_late, dm, pm, xor_class_nets(x_late, 0),
                       xor_class_nets(x_late, 1), 2000.0);

  qg::XorStage x_early = qg::build_xor_stage();
  x_early.nl.net(x_early.m[0]).cap_ff = 16.0;  // level 1 (fig. 7-c)
  const qn::Graph g_early(x_early.nl);
  const auto bias_early =
      qc::predict_bias(g_early, dm, pm, xor_class_nets(x_early, 0),
                       xor_class_nets(x_early, 1), 2000.0);

  EXPECT_GT(qdi::util::sum_abs(bias_early), qdi::util::sum_abs(bias_late));
}

TEST(PredictBias, ScalesWithImbalanceMagnitude) {
  // Fig. 7-c vs 7-d: 16 fF vs 32 fF on the same nets -> larger signature.
  const qs::DelayModel dm;
  qp::PowerModelParams pm;
  double prev = 0.0;
  for (double cap : {8.0, 16.0, 32.0}) {
    qg::XorStage x = qg::build_xor_stage();
    x.nl.net(x.m[0]).cap_ff = cap;
    x.nl.net(x.m[1]).cap_ff = cap;
    const qn::Graph g(x.nl);
    const auto bias = qc::predict_bias(g, dm, pm, xor_class_nets(x, 0),
                                       xor_class_nets(x, 1), 2000.0);
    const double mag = qdi::util::sum_abs(bias);
    EXPECT_GE(mag, prev);
    prev = mag;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(PredictClassProfile, ChargeMatchesFiringSet) {
  qg::XorStage x = qg::build_xor_stage();
  const qn::Graph g(x.nl);
  const qs::DelayModel dm;
  qp::PowerModelParams pm;
  const auto nets = xor_class_nets(x, 0);
  const qp::PowerTrace prof =
      qc::predict_class_profile(g, dm, pm, nets, 2000.0);
  double q_expected = 0.0;
  for (qn::NetId n : nets)
    q_expected += 1000.0 * pm.total_cap_ff(x.nl.net(n).cap_ff) * pm.vdd;
  EXPECT_NEAR(prof.total_charge_fc(), q_expected, 1e-6);
}

TEST(ModelVsSimulation, BiasAgreesOnPeakLocationSign) {
  // Eq. 12 validation in miniature (the full sweep is a bench): unbalance
  // s0, simulate both classes, and check the analytic bias has the same
  // sign at its peak as the measured bias.
  qg::XorStage x = qg::build_xor_stage();
  x.nl.net(x.s0).cap_ff = 24.0;
  const qs::DelayModel dm;
  qp::PowerModelParams pm;

  qs::Simulator sim(x.nl, dm);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();

  // Measure: average eval-phase trace for xor=0 (inputs 0,0) minus xor=1
  // (inputs 1,0).
  auto trace_for = [&](int a, int b) {
    sim.clear_log();
    const std::vector<int> v{a, b};
    const auto cyc = env.send(v);
    EXPECT_TRUE(cyc.ok);
    return qp::synthesize(sim.log(), cyc.t_start, x.env.period_ps, pm, nullptr);
  };
  const qp::PowerTrace t0 = trace_for(0, 0);
  const qp::PowerTrace t1 = trace_for(1, 0);
  std::vector<double> measured(t0.size());
  for (std::size_t j = 0; j < t0.size(); ++j) measured[j] = t0[j] - t1[j];

  const qn::Graph g(x.nl);
  const std::vector<qn::NetId> class0{x.m[0], x.s0, x.co0, x.ack_out};
  const std::vector<qn::NetId> class1{x.m[2], x.s1, x.co1, x.ack_out};
  std::vector<double> predicted =
      qc::predict_bias(g, dm, pm, class0, class1, x.env.period_ps);

  const std::size_t jp = qdi::util::argmax_abs(predicted);
  const std::size_t jm = qdi::util::argmax_abs(measured);
  // Peaks land in the same part of the evaluation phase (within 250 ps —
  // a few pulse widths; the analytic model ignores the completion NOR's
  // falling-edge timing detail) and have the same sign.
  EXPECT_NEAR(static_cast<double>(jp), static_cast<double>(jm), 25.0);
  EXPECT_GT(predicted[jp] * measured[jm], 0.0);
}
