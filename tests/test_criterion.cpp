#include <gtest/gtest.h>

#include <cmath>

#include "qdi/core/criterion.hpp"
#include "qdi/gates/testbench.hpp"

namespace qn = qdi::netlist;
namespace qc = qdi::core;
namespace qg = qdi::gates;

TEST(Dissymmetry, ZeroForEqualCaps) {
  EXPECT_DOUBLE_EQ(qc::dissymmetry(8.0, 8.0), 0.0);
  EXPECT_DOUBLE_EQ(qc::dissymmetry(123.4, 123.4), 0.0);
}

TEST(Dissymmetry, PaperExampleValues) {
  // Table 2 reports e.g. C pairs (23, 46) -> dA = 1.0 and (25, 30)-ish
  // small values; check the formula directly.
  EXPECT_DOUBLE_EQ(qc::dissymmetry(23.0, 46.0), 1.0);
  EXPECT_DOUBLE_EQ(qc::dissymmetry(8.0, 16.0), 1.0);
  EXPECT_DOUBLE_EQ(qc::dissymmetry(8.0, 32.0), 3.0);
  EXPECT_NEAR(qc::dissymmetry(20.0, 25.0), 0.25, 1e-12);
}

class DissymmetryProperties
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(DissymmetryProperties, SymmetricAndScaleInvariant) {
  const auto [a, b] = GetParam();
  EXPECT_DOUBLE_EQ(qc::dissymmetry(a, b), qc::dissymmetry(b, a));
  EXPECT_NEAR(qc::dissymmetry(3.0 * a, 3.0 * b), qc::dissymmetry(a, b), 1e-12);
  EXPECT_GE(qc::dissymmetry(a, b), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, DissymmetryProperties,
    ::testing::Values(std::pair{8.0, 8.0}, std::pair{8.0, 9.0},
                      std::pair{1.0, 100.0}, std::pair{15.0, 14.0},
                      std::pair{0.5, 2.0}, std::pair{42.0, 41.5}));

TEST(Dissymmetry, MonotoneInImbalance) {
  double prev = -1.0;
  for (double hi = 8.0; hi <= 64.0; hi += 4.0) {
    const double d = qc::dissymmetry(8.0, hi);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(ChannelCriterion, ReadsNetCaps) {
  qg::XorStage x = qg::build_xor_stage();
  x.nl.net(x.co0).cap_ff = 10.0;
  x.nl.net(x.co1).cap_ff = 25.0;
  const qc::ChannelCriterion c = qc::channel_criterion(x.nl, x.out_ch);
  EXPECT_DOUBLE_EQ(c.cap_min_ff, 10.0);
  EXPECT_DOUBLE_EQ(c.cap_max_ff, 25.0);
  EXPECT_DOUBLE_EQ(c.dA, 1.5);
}

TEST(ChannelCriterion, OneOfFourUsesWorstPair) {
  qn::Netlist nl("q");
  std::vector<qn::NetId> rails;
  for (int i = 0; i < 4; ++i)
    rails.push_back(nl.add_input("q_" + std::to_string(i)));
  nl.net(rails[0]).cap_ff = 10.0;
  nl.net(rails[1]).cap_ff = 11.0;
  nl.net(rails[2]).cap_ff = 12.0;
  nl.net(rails[3]).cap_ff = 30.0;  // outlier rail
  const qn::ChannelId ch = nl.add_channel("q", rails);
  const qc::ChannelCriterion c = qc::channel_criterion(nl, ch);
  EXPECT_DOUBLE_EQ(c.dA, 2.0);  // (30-10)/10
  EXPECT_DOUBLE_EQ(c.cap_min_ff, 10.0);
  EXPECT_DOUBLE_EQ(c.cap_max_ff, 30.0);
}

TEST(EvaluateCriterion, CoversEveryChannel) {
  qg::XorStage x = qg::build_xor_stage();
  const auto all = qc::evaluate_criterion(x.nl);
  EXPECT_EQ(all.size(), x.nl.num_channels());
  // Default uniform caps: every dA is zero.
  for (const auto& c : all) EXPECT_DOUBLE_EQ(c.dA, 0.0);
  EXPECT_DOUBLE_EQ(qc::max_dA(all), 0.0);
  EXPECT_DOUBLE_EQ(qc::mean_dA(all), 0.0);
}

TEST(MostCritical, SortsDescendingAndTruncates) {
  std::vector<qc::ChannelCriterion> rows(5);
  for (std::size_t i = 0; i < 5; ++i) {
    rows[i].name = "ch" + std::to_string(i);
    rows[i].dA = static_cast<double>(i) * 0.1;
  }
  const auto top = qc::most_critical(rows, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_DOUBLE_EQ(top[0].dA, 0.4);
  EXPECT_DOUBLE_EQ(top[1].dA, 0.3);
  EXPECT_DOUBLE_EQ(top[2].dA, 0.2);
}

TEST(MostCritical, StableForTies) {
  std::vector<qc::ChannelCriterion> rows(3);
  rows[0].name = "b";
  rows[1].name = "a";
  rows[2].name = "c";
  for (auto& r : rows) r.dA = 0.5;
  const auto top = qc::most_critical(rows, 3);
  EXPECT_EQ(top[0].name, "a");
  EXPECT_EQ(top[1].name, "b");
  EXPECT_EQ(top[2].name, "c");
}

TEST(CriterionTable, RendersRows) {
  std::vector<qc::ChannelCriterion> rows(2);
  rows[0].name = "hb/q3";
  rows[0].cap_min_ff = 23.0;
  rows[0].cap_max_ff = 46.0;
  rows[0].dA = 1.0;
  rows[1].name = "dmux/w1";
  rows[1].dA = 0.13;
  const qdi::util::Table t = qc::criterion_table(rows, "AES_v2");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("AES_v2"), std::string::npos);
  EXPECT_NE(s.find("hb/q3"), std::string::npos);
  EXPECT_NE(s.find("1.00"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Dissymmetry, InfiniteWhenOneRailZero) {
  EXPECT_TRUE(std::isinf(qc::dissymmetry(0.0, 5.0)));
  EXPECT_DOUBLE_EQ(qc::dissymmetry(0.0, 0.0), 0.0);
}
