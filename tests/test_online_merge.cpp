// Merge and state-snapshot tests for the streaming accumulators.
//
// merge() exists so N workers can each stream a disjoint shard of the
// acquisitions and fold their partial sums at the end: every statistic
// in OnlineCpa/OnlineDpa is an additive running sum, so an N-way
// split + merge must agree with one single-pass accumulator over the
// whole stream up to floating-point re-association (1e-12), and the
// integer statistics (counts, DPA partition sizes) must agree exactly.
// serialize_state()/restore_state() round-trips are bit-exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "qdi/qdi.hpp"

namespace qd = qdi::dpa;
namespace qp = qdi::power;
namespace qu = qdi::util;

namespace {

qd::TraceSet random_traces(std::size_t n, std::size_t m, qu::Rng& rng) {
  qd::TraceSet ts;
  for (std::size_t i = 0; i < n; ++i) {
    qp::PowerTrace t(0.0, 10.0, m);
    for (std::size_t j = 0; j < m; ++j) t[j] = rng.gaussian(1.0, 2.0);
    ts.add(t, {rng.byte(), rng.byte()});
  }
  return ts;
}

/// Split [0, n) into `ways` contiguous shards with randomized cut
/// points (some shards may be empty — merging an empty accumulator must
/// be a no-op).
std::vector<std::size_t> random_cuts(std::size_t n, std::size_t ways,
                                     qu::Rng& rng) {
  std::vector<std::size_t> cuts{0};
  for (std::size_t k = 1; k < ways; ++k) cuts.push_back(rng.below(n + 1));
  cuts.push_back(n);
  std::sort(cuts.begin(), cuts.end());
  return cuts;
}

}  // namespace

TEST(OnlineMerge, CpaNWaySplitMergeMatchesSinglePass) {
  qu::Rng rng(0x51);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 8 + rng.below(120);
    const std::size_t m = 1 + rng.below(24);
    const unsigned guesses = 2 + static_cast<unsigned>(rng.below(15));
    const std::size_t ways = 2 + rng.below(5);
    const qd::TraceSet ts = random_traces(n, m, rng);
    const qd::LeakageModel model = qd::aes_xor_hw_model(0);

    qd::OnlineCpa whole(model, guesses);
    whole.add_prefix(ts, 0, n);

    const std::vector<std::size_t> cuts = random_cuts(n, ways, rng);
    qd::OnlineCpa merged(model, guesses);
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
      qd::OnlineCpa shard(model, guesses);
      shard.add_prefix(ts, cuts[k], cuts[k + 1]);
      merged.merge(shard);
    }
    ASSERT_EQ(merged.count(), whole.count());

    const qd::CpaResult a = whole.finalize();
    const qd::CpaResult b = merged.finalize();
    ASSERT_EQ(a.correlation.size(), b.correlation.size());
    for (unsigned g = 0; g < guesses; ++g) {
      EXPECT_NEAR(a.correlation[g], b.correlation[g], 1e-12)
          << "trial " << trial << " guess " << g;
      const std::vector<double> ra = whole.correlation_trace(g);
      const std::vector<double> rb = merged.correlation_trace(g);
      for (std::size_t j = 0; j < ra.size(); ++j)
        EXPECT_NEAR(ra[j], rb[j], 1e-12) << "guess " << g << " sample " << j;
    }
  }
}

TEST(OnlineMerge, DpaNWaySplitMergeMatchesSinglePass) {
  qu::Rng rng(0x52);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 8 + rng.below(120);
    const std::size_t m = 1 + rng.below(24);
    const unsigned guesses = 2 + static_cast<unsigned>(rng.below(15));
    const std::size_t ways = 2 + rng.below(5);
    const qd::TraceSet ts = random_traces(n, m, rng);
    const std::vector<qd::SelectionFn> bits = {qd::aes_sbox_selection(0, 0),
                                               qd::aes_sbox_selection(0, 5)};

    qd::OnlineDpa whole(bits, guesses);
    whole.add_prefix(ts, 0, n);

    const std::vector<std::size_t> cuts = random_cuts(n, ways, rng);
    qd::OnlineDpa merged(bits, guesses);
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
      qd::OnlineDpa shard(bits, guesses);
      shard.add_prefix(ts, cuts[k], cuts[k + 1]);
      merged.merge(shard);
    }
    ASSERT_EQ(merged.count(), whole.count());

    for (unsigned g = 0; g < guesses; ++g) {
      for (std::size_t bit = 0; bit < bits.size(); ++bit) {
        const qd::BiasResult a = whole.bias(g, bit);
        const qd::BiasResult b = merged.bias(g, bit);
        // Partition sizes are integer counts: exact.
        EXPECT_EQ(a.n0, b.n0) << "guess " << g << " bit " << bit;
        EXPECT_EQ(a.n1, b.n1) << "guess " << g << " bit " << bit;
        ASSERT_EQ(a.bias.size(), b.bias.size());
        for (std::size_t j = 0; j < a.bias.size(); ++j)
          EXPECT_NEAR(a.bias[j], b.bias[j], 1e-12)
              << "guess " << g << " bit " << bit << " sample " << j;
      }
    }
    const qd::KeyRecoveryResult ra = whole.recover();
    const qd::KeyRecoveryResult rb = merged.recover();
    for (unsigned g = 0; g < guesses; ++g)
      EXPECT_NEAR(ra.guess_peak[g], rb.guess_peak[g], 1e-12);
  }
}

TEST(OnlineMerge, MergeIntoEmptyAndFromEmpty) {
  qu::Rng rng(0x53);
  const qd::TraceSet ts = random_traces(40, 12, rng);
  const qd::LeakageModel model = qd::aes_xor_hw_model(0);

  qd::OnlineCpa full(model, 16);
  full.add_prefix(ts, 0, 40);

  // empty.merge(full) adopts the geometry; full.merge(empty) is a no-op.
  qd::OnlineCpa empty(model, 16);
  empty.merge(full);
  const qd::CpaResult a = full.finalize();
  const qd::CpaResult b = empty.finalize();
  for (unsigned g = 0; g < 16; ++g)
    EXPECT_DOUBLE_EQ(a.correlation[g], b.correlation[g]);

  qd::OnlineCpa noop(model, 16);
  full.merge(noop);
  EXPECT_EQ(full.count(), 40u);
  const qd::CpaResult c = full.finalize();
  for (unsigned g = 0; g < 16; ++g)
    EXPECT_DOUBLE_EQ(a.correlation[g], c.correlation[g]);
}

TEST(OnlineMerge, MismatchedGeometryThrows) {
  qu::Rng rng(0x54);
  const qd::TraceSet ts = random_traces(10, 8, rng);
  const qd::TraceSet ts_wide = random_traces(10, 9, rng);
  const qd::LeakageModel model = qd::aes_xor_hw_model(0);

  qd::OnlineCpa a(model, 16);
  a.add_prefix(ts, 0, 10);
  qd::OnlineCpa wrong_guesses(model, 8);
  wrong_guesses.add_prefix(ts, 0, 10);
  EXPECT_THROW(a.merge(wrong_guesses), std::invalid_argument);

  qd::OnlineCpa wrong_m(model, 16);
  wrong_m.add_prefix(ts_wide, 0, 10);
  EXPECT_THROW(a.merge(wrong_m), std::invalid_argument);

  qd::OnlineDpa d1({qd::aes_sbox_selection(0, 0)}, 16);
  d1.add_prefix(ts, 0, 10);
  qd::OnlineDpa two_bits(
      {qd::aes_sbox_selection(0, 0), qd::aes_sbox_selection(0, 1)}, 16);
  two_bits.add_prefix(ts, 0, 10);
  EXPECT_THROW(d1.merge(two_bits), std::invalid_argument);
}

TEST(OnlineMerge, CpaSnapshotRoundTripIsBitExact) {
  qu::Rng rng(0x55);
  const qd::TraceSet ts = random_traces(60, 16, rng);
  const qd::LeakageModel model = qd::aes_xor_hw_model(0);

  qd::OnlineCpa acc(model, 16);
  acc.add_prefix(ts, 0, 35);
  const std::vector<std::uint8_t> snap = acc.serialize_state();

  qd::OnlineCpa restored(model, 16);
  restored.restore_state(snap);
  EXPECT_EQ(restored.count(), acc.count());

  // Both continue with the same tail: results stay bit-identical, which
  // is what lets a checkpointed campaign resume mid-stream.
  acc.add_prefix(ts, 35, 60);
  restored.add_prefix(ts, 35, 60);
  const qd::CpaResult a = acc.finalize();
  const qd::CpaResult b = restored.finalize();
  for (unsigned g = 0; g < 16; ++g)
    EXPECT_DOUBLE_EQ(a.correlation[g], b.correlation[g]);
  EXPECT_EQ(a.best_guess, b.best_guess);
}

TEST(OnlineMerge, DpaSnapshotRoundTripIsBitExact) {
  qu::Rng rng(0x56);
  const qd::TraceSet ts = random_traces(60, 16, rng);
  const std::vector<qd::SelectionFn> bits = {qd::aes_sbox_selection(0, 3)};

  qd::OnlineDpa acc(bits, 16);
  acc.add_prefix(ts, 0, 35);
  const std::vector<std::uint8_t> snap = acc.serialize_state();

  qd::OnlineDpa restored(bits, 16);
  restored.restore_state(snap);
  acc.add_prefix(ts, 35, 60);
  restored.add_prefix(ts, 35, 60);
  const qd::KeyRecoveryResult a = acc.recover();
  const qd::KeyRecoveryResult b = restored.recover();
  for (unsigned g = 0; g < 16; ++g)
    EXPECT_DOUBLE_EQ(a.guess_peak[g], b.guess_peak[g]);
}

namespace {

/// Kind of the StateError a restore_state call throws (the call must
/// throw).
template <typename Acc>
qd::StateError::Kind restore_kind(Acc& acc,
                                  const std::vector<std::uint8_t>& bytes) {
  try {
    acc.restore_state(bytes);
  } catch (const qd::StateError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "restore_state accepted a malformed snapshot of "
                << bytes.size() << " bytes";
  return qd::StateError::Kind::Truncated;
}

}  // namespace

TEST(OnlineMerge, MalformedOrMismatchedSnapshotThrowsNamedErrors) {
  qu::Rng rng(0x57);
  const qd::TraceSet ts = random_traces(20, 8, rng);
  const qd::LeakageModel model = qd::aes_xor_hw_model(0);

  qd::OnlineCpa acc(model, 16);
  acc.add_prefix(ts, 0, 20);
  std::vector<std::uint8_t> snap = acc.serialize_state();

  // Wrong receiver configuration.
  qd::OnlineCpa other_guesses(model, 8);
  EXPECT_EQ(restore_kind(other_guesses, snap), qd::StateError::Kind::Geometry);

  // Truncated and trailing-garbage payloads. StateError derives from
  // std::runtime_error, so generic catch sites still work.
  std::vector<std::uint8_t> cut(snap.begin(), snap.end() - 3);
  qd::OnlineCpa fresh(model, 16);
  EXPECT_EQ(restore_kind(fresh, cut), qd::StateError::Kind::Truncated);
  EXPECT_THROW(fresh.restore_state(cut), std::runtime_error);
  snap.push_back(0);
  EXPECT_EQ(restore_kind(fresh, snap), qd::StateError::Kind::Oversized);

  // A CPA snapshot fed to a DPA accumulator (magic mismatch).
  qd::OnlineDpa dpa({qd::aes_sbox_selection(0, 0)}, 16);
  const std::vector<std::uint8_t> cpa_snap = acc.serialize_state();
  EXPECT_EQ(restore_kind(dpa, cpa_snap), qd::StateError::Kind::BadMagic);
}

TEST(OnlineMerge, EveryTruncationLengthIsRejectedAndLeavesStateUntouched) {
  // Tiny geometry so every truncation length is cheap to fuzz: the
  // snapshot must be rejected at EVERY proper prefix, and a failed
  // restore must leave the receiving accumulator bit-identical.
  qu::Rng rng(0x58);
  const qd::TraceSet ts = random_traces(12, 5, rng);
  const qd::LeakageModel model = qd::aes_xor_hw_model(0);

  {
    qd::OnlineCpa acc(model, 4);
    acc.add_prefix(ts, 0, 12);
    const std::vector<std::uint8_t> snap = acc.serialize_state();

    qd::OnlineCpa victim(model, 4);
    victim.add_prefix(ts, 0, 7);
    const std::vector<std::uint8_t> before = victim.serialize_state();
    for (std::size_t len = 0; len < snap.size(); ++len) {
      const std::vector<std::uint8_t> cut(snap.begin(),
                                          snap.begin() + static_cast<long>(len));
      EXPECT_THROW(victim.restore_state(cut), qd::StateError)
          << "CPA snapshot truncated to " << len << " bytes";
      EXPECT_EQ(victim.serialize_state(), before)
          << "failed restore disturbed the accumulator (len " << len << ")";
    }
    victim.restore_state(snap);  // the untruncated snapshot still lands
    EXPECT_EQ(victim.count(), acc.count());
  }

  {
    const std::vector<qd::SelectionFn> bits = {qd::aes_sbox_selection(0, 0)};
    qd::OnlineDpa acc(bits, 4);
    acc.add_prefix(ts, 0, 12);
    const std::vector<std::uint8_t> snap = acc.serialize_state();

    qd::OnlineDpa victim(bits, 4);
    victim.add_prefix(ts, 0, 7);
    const std::vector<std::uint8_t> before = victim.serialize_state();
    for (std::size_t len = 0; len < snap.size(); ++len) {
      const std::vector<std::uint8_t> cut(snap.begin(),
                                          snap.begin() + static_cast<long>(len));
      EXPECT_THROW(victim.restore_state(cut), qd::StateError)
          << "DPA snapshot truncated to " << len << " bytes";
      EXPECT_EQ(victim.serialize_state(), before)
          << "failed restore disturbed the accumulator (len " << len << ")";
    }
    victim.restore_state(snap);
    EXPECT_EQ(victim.count(), acc.count());
  }
}
