#include <gtest/gtest.h>

#include <stdexcept>

#include "qdi/gates/builder.hpp"
#include "qdi/netlist/netlist.hpp"
#include "qdi/sim/simulator.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;
using qn::CellKind;

namespace {
struct InvChain {
  qn::Netlist nl{"invchain"};
  qn::NetId a, b, c;
  InvChain() {
    a = nl.add_input("a");
    b = nl.add_net("b");
    c = nl.add_net("c");
    nl.add_cell(CellKind::Inv, "i1", {a}, b);
    nl.add_cell(CellKind::Inv, "i2", {b}, c);
    nl.mark_output(c, "c");
  }
};
}  // namespace

TEST(Simulator, InitializeSettlesInverters) {
  InvChain f;
  qs::Simulator sim(f.nl);
  sim.initialize();
  sim.run_until_stable();
  EXPECT_FALSE(sim.value(f.a));
  EXPECT_TRUE(sim.value(f.b));   // inv(0)
  EXPECT_FALSE(sim.value(f.c));  // inv(inv(0))
}

TEST(Simulator, DrivePropagates) {
  InvChain f;
  qs::Simulator sim(f.nl);
  sim.initialize();
  sim.run_until_stable();
  sim.drive(f.a, true, 100.0);
  sim.run_until_stable();
  EXPECT_TRUE(sim.value(f.a));
  EXPECT_FALSE(sim.value(f.b));
  EXPECT_TRUE(sim.value(f.c));
  EXPECT_GT(sim.now(), 100.0);
}

TEST(Simulator, DelayScalesWithLoadCap) {
  InvChain f1, f2;
  f2.nl.net(f2.b).cap_ff = 80.0;  // 10x the default load on the inner net
  qs::Simulator s1(f1.nl), s2(f2.nl);
  for (auto* s : {&s1, &s2}) {
    s->initialize();
    s->run_until_stable();
  }
  s1.drive(f1.a, true, 0.0);
  s2.drive(f2.a, true, 0.0);
  s1.run_until_stable();
  s2.run_until_stable();
  EXPECT_GT(s2.now(), s1.now());
}

TEST(Simulator, TransitionLogRecordsCapAndSlew) {
  InvChain f;
  f.nl.net(f.b).cap_ff = 20.0;
  qs::Simulator sim(f.nl);
  sim.initialize();
  sim.run_until_stable();
  sim.clear_log();
  sim.drive(f.a, true, 10.0);
  sim.run_until_stable();
  bool saw_b = false;
  for (const auto& t : sim.log()) {
    if (t.net == f.b) {
      saw_b = true;
      EXPECT_FALSE(t.rising);  // b falls when a rises
      EXPECT_DOUBLE_EQ(t.cap_ff, 20.0);
      EXPECT_DOUBLE_EQ(t.slew_ps, sim.delay_model().slew_ps(20.0));
    }
  }
  EXPECT_TRUE(saw_b);
}

TEST(Simulator, MullerHoldsState) {
  qn::Netlist nl("c");
  const qn::NetId x = nl.add_input("x");
  const qn::NetId y = nl.add_input("y");
  const qn::NetId z = nl.add_net("z");
  nl.add_cell(CellKind::Muller2, "c1", {x, y}, z);
  nl.mark_output(z, "z");

  qs::Simulator sim(nl);
  sim.initialize();
  sim.run_until_stable();
  sim.drive(x, true, 0.0);
  sim.run_until_stable();
  EXPECT_FALSE(sim.value(z));  // only one input high: hold 0
  sim.drive(y, true, sim.now());
  sim.run_until_stable();
  EXPECT_TRUE(sim.value(z));  // consensus high
  sim.drive(x, false, sim.now());
  sim.run_until_stable();
  EXPECT_TRUE(sim.value(z));  // hold 1
  sim.drive(y, false, sim.now());
  sim.run_until_stable();
  EXPECT_FALSE(sim.value(z));  // consensus low
}

TEST(Simulator, GlitchCancellation) {
  // a -> inv -> n1; (a, n1) -> and2 -> g. A 0->1 step on `a` produces a
  // static hazard at `g` under inertial semantics: the momentary (1,1)
  // overlap schedules a rise that the inverter's fall then cancels.
  qn::Netlist nl("hazard");
  const qn::NetId a = nl.add_input("a");
  const qn::NetId n1 = nl.add_net("n1");
  const qn::NetId g = nl.add_net("g");
  nl.add_cell(CellKind::Inv, "i", {a}, n1);
  nl.add_cell(CellKind::And2, "u", {a, n1}, g);
  nl.mark_output(g, "g");

  qs::Simulator sim(nl);
  sim.initialize();
  sim.run_until_stable();
  EXPECT_EQ(sim.glitch_count(), 0u);
  sim.drive(a, true, 0.0);
  sim.run_until_stable();
  EXPECT_FALSE(sim.value(g));       // final value is correct
  EXPECT_GT(sim.glitch_count(), 0u);  // and the hazard was counted
}

TEST(Simulator, OscillationGuardThrows) {
  // Ring oscillator: 3-inverter loop (odd ring has no stable state).
  qn::Netlist nl("ring");
  const qn::NetId a = nl.add_net("a");
  const qn::NetId b = nl.add_net("b");
  const qn::NetId c = nl.add_net("c");
  nl.add_cell(CellKind::Inv, "i1", {a}, b);
  nl.add_cell(CellKind::Inv, "i2", {b}, c);
  nl.add_cell(CellKind::Inv, "i3", {c}, a);
  qs::Simulator sim(nl);
  sim.initialize();
  EXPECT_THROW(sim.run_until_stable(1000), std::runtime_error);
}

TEST(Simulator, TwoInverterLoopIsBistable) {
  // The even ring settles into one of its two stable states instead of
  // oscillating — a latch, not an oscillator.
  qn::Netlist nl("latch");
  const qn::NetId a = nl.add_net("a");
  const qn::NetId b = nl.add_net("b");
  nl.add_cell(CellKind::Inv, "i1", {a}, b);
  nl.add_cell(CellKind::Inv, "i2", {b}, a);
  qs::Simulator sim(nl);
  sim.initialize();
  sim.run_until_stable();
  EXPECT_NE(sim.value(a), sim.value(b));
}

TEST(Simulator, ResetStateClearsEverything) {
  InvChain f;
  qs::Simulator sim(f.nl);
  sim.initialize();
  sim.run_until_stable();
  sim.drive(f.a, true, 50.0);
  sim.run_until_stable();
  sim.reset_state();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.log().empty());
  EXPECT_FALSE(sim.value(f.a));
  EXPECT_FALSE(sim.value(f.b));
  EXPECT_EQ(sim.transition_count(), 0u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  InvChain f;
  auto run = [&] {
    qs::Simulator sim(f.nl);
    sim.initialize();
    sim.run_until_stable();
    sim.drive(f.a, true, 10.0);
    sim.drive(f.a, false, 500.0);
    sim.run_until_stable();
    return std::make_pair(sim.now(), sim.log().size());
  };
  const auto r1 = run();
  const auto r2 = run();
  EXPECT_EQ(r1, r2);
}

TEST(Simulator, ResetWithPendingEventsReplaysIdentically) {
  // reset_state() now clears the event queue in place (capacity
  // retained); resetting with events still pending must leave no stale
  // state behind — a rerun from reset is bit-identical to a fresh run.
  InvChain f;
  qs::Simulator sim(f.nl);
  auto run = [&] {
    sim.initialize();
    sim.run_until_stable();
    sim.drive(f.a, true, 10.0);
    sim.run_until_stable();
    return std::make_pair(sim.now(), sim.log().size());
  };
  const auto fresh = run();
  sim.drive(f.a, false, sim.now() + 5.0);  // leave an event in the queue
  sim.reset_state();
  const auto again = run();
  EXPECT_EQ(fresh, again);
}

TEST(Simulator, PowerSinkSeesEveryCommitAndLogCanBeDisabled) {
  struct Counter final : qs::PowerSink {
    std::size_t seen = 0;
    void on_transition(const qs::Transition&) override { ++seen; }
  };
  InvChain f;
  qs::Simulator sim(f.nl);
  Counter sink;
  sim.set_power_sink(&sink);
  sim.set_log_enabled(false);
  sim.initialize();
  sim.run_until_stable();
  sim.drive(f.a, true, 50.0);
  sim.run_until_stable();
  EXPECT_EQ(sink.seen, sim.transition_count());
  EXPECT_TRUE(sim.log().empty());  // log off: nothing materialized
}

TEST(Simulator, LoadInsensitiveModelHasConstantDelay) {
  const qs::DelayModel m = qs::DelayModel::load_insensitive();
  EXPECT_DOUBLE_EQ(m.delay_ps(CellKind::Inv, 8.0), m.delay_ps(CellKind::Inv, 80.0));
  EXPECT_DOUBLE_EQ(m.slew_ps(8.0), m.slew_ps(80.0));
}

TEST(DelayModel, MonotoneInCapAndArity) {
  const qs::DelayModel m;
  EXPECT_LT(m.delay_ps(CellKind::Inv, 8.0), m.delay_ps(CellKind::Inv, 16.0));
  EXPECT_LT(m.delay_ps(CellKind::Inv, 8.0), m.delay_ps(CellKind::Muller3, 8.0));
  EXPECT_LT(m.slew_ps(4.0), m.slew_ps(64.0));
}
