// Campaign::sweep — the paper's unprotected-vs-balanced comparison as a
// single API call. Asserts the security result (the balanced recipe
// strictly increases measurements-to-disclosure / kills the known-key
// bias on des_sbox_slice), the bit-identical equivalence between sweep
// variants and standalone campaigns, and sweep determinism.
#include <gtest/gtest.h>

#include "qdi/qdi.hpp"

namespace qc = qdi::campaign;
namespace qn = qdi::netlist;
namespace qx = qdi::xform;

namespace {

/// The "uncontrolled P&R" stand-in used across the campaign tests:
/// deterministically unbalance the S-Box output rails.
void unbalance(qn::Netlist& nl) {
  for (qn::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
    const qn::Channel& c = nl.channel(ch);
    if (c.name.find("sbox/out") != std::string::npos)
      nl.net(c.rails[1]).cap_ff *= 1.8;
  }
}

qc::Campaign des_campaign() {
  qc::Cpa cfg;
  cfg.compute_mtd = true;
  cfg.mtd_start = 40;
  cfg.mtd_step = 40;
  qc::Campaign campaign;
  campaign.target(qc::des_sbox_slice())
      .key(0x2b)
      .seed(31337)
      .traces(400)
      .threads(2)
      .prepare(unbalance)
      .attack(cfg);
  return campaign;
}

}  // namespace

TEST(Sweep, BalancedRecipeStrictlyIncreasesMtd) {
  const qc::SweepResult sweep =
      des_campaign().sweep({qx::unprotected(), qx::balanced()});
  ASSERT_EQ(sweep.variants.size(), 2u);
  const qc::SweepVariant* raw = sweep.find("unprotected");
  const qc::SweepVariant* bal = sweep.find("balanced");
  ASSERT_NE(raw, nullptr);
  ASSERT_NE(bal, nullptr);

  // Unprotected: the attack works — key recovered, finite MTD.
  ASSERT_TRUE(raw->result.attack.has_value());
  EXPECT_EQ(raw->result.attack->true_key_rank, 0u);
  ASSERT_GT(raw->mtd(), 0u);

  // Balanced: dA collapses to zero and the attack stops working. MTD 0
  // means "never disclosed at this budget" — strictly above any finite
  // unprotected MTD; a finite balanced MTD must still be strictly
  // larger.
  ASSERT_TRUE(bal->result.attack.has_value());
  EXPECT_DOUBLE_EQ(bal->result.max_da, 0.0);
  EXPECT_GT(raw->result.max_da, 0.0);
  EXPECT_GT(bal->result.attack->true_key_rank, 0u);
  EXPECT_TRUE(bal->mtd() == 0 || bal->mtd() > raw->mtd());

  // Structural side: the balanced variant is also more symmetric, and
  // the transform reports say what it cost.
  EXPECT_LT(bal->asymmetric_channels, raw->asymmetric_channels);
  ASSERT_TRUE(bal->result.xform.has_value());
  EXPECT_GT(bal->result.xform->cells_added(), 0u);
  EXPECT_GT(bal->result.xform->cap_added_ff(), 0.0);
  EXPECT_EQ(bal->result.recipe, "balanced");
  EXPECT_EQ(sweep.table().rows(), 2u);
}

TEST(Sweep, BalancedRecipeDrivesKnownKeyBiasToZero) {
  // Same sweep through the DPA view: the designer-side known-key bias
  // must collapse below any decision threshold (it is orders of
  // magnitude under the unprotected bias, which recovers the key).
  qc::Dpa cfg;
  qc::Campaign campaign;
  campaign.target(qc::des_sbox_slice())
      .key(0x2b)
      .seed(31337)
      .traces(400)
      .threads(2)
      .prepare(unbalance)
      .attack(cfg);
  const qc::SweepResult sweep =
      campaign.sweep({qx::unprotected(), qx::balanced()});
  const qc::SweepVariant* raw = sweep.find("unprotected");
  const qc::SweepVariant* bal = sweep.find("balanced");
  ASSERT_NE(raw, nullptr);
  ASSERT_NE(bal, nullptr);
  EXPECT_EQ(raw->result.attack->true_key_rank, 0u);
  EXPECT_GT(raw->bias_peak(), 0.0);
  EXPECT_LT(bal->bias_peak(), raw->bias_peak() * 1e-3);
  EXPECT_GT(bal->result.attack->true_key_rank, 0u);
}

TEST(Sweep, VariantsMatchStandaloneCampaignsBitIdentically) {
  // A sweep variant must be exactly the campaign it claims to be: the
  // same .recipe(r) campaign run standalone in fused mode.
  const qc::SweepResult sweep =
      des_campaign().sweep({qx::unprotected(), qx::balanced()});
  for (const char* name : {"unprotected", "balanced"}) {
    const qc::SweepVariant* v = sweep.find(name);
    ASSERT_NE(v, nullptr);
    const qc::CampaignResult solo = des_campaign()
                                        .recipe(name == std::string("balanced")
                                                    ? qx::balanced()
                                                    : qx::unprotected())
                                        .fused()
                                        .run();
    ASSERT_TRUE(solo.attack.has_value());
    EXPECT_EQ(v->result.attack->best_guess, solo.attack->best_guess);
    EXPECT_EQ(v->result.attack->true_key_rank, solo.attack->true_key_rank);
    EXPECT_EQ(v->result.attack->mtd, solo.attack->mtd);
    EXPECT_EQ(v->result.attack->best_score, solo.attack->best_score);
    ASSERT_EQ(v->result.attack->guess_scores.size(),
              solo.attack->guess_scores.size());
    for (std::size_t g = 0; g < solo.attack->guess_scores.size(); ++g)
      EXPECT_EQ(v->result.attack->guess_scores[g], solo.attack->guess_scores[g])
          << name << " guess " << g;
  }
}

TEST(Sweep, DeterministicAcrossRunsAndThreadCounts) {
  const qc::SweepResult a =
      des_campaign().sweep({qx::unprotected(), qx::hardened()});
  const qc::SweepResult b =
      des_campaign().sweep({qx::unprotected(), qx::hardened()});
  qc::Campaign single = des_campaign();
  single.threads(1);
  const qc::SweepResult c = single.sweep({qx::unprotected(), qx::hardened()});
  ASSERT_EQ(a.variants.size(), b.variants.size());
  for (std::size_t i = 0; i < a.variants.size(); ++i) {
    for (const qc::SweepResult* other : {&b, &c}) {
      EXPECT_EQ(a.variants[i].recipe, other->variants[i].recipe);
      EXPECT_EQ(a.variants[i].asymmetric_channels,
                other->variants[i].asymmetric_channels);
      ASSERT_TRUE(other->variants[i].result.attack.has_value());
      EXPECT_EQ(a.variants[i].result.attack->best_guess,
                other->variants[i].result.attack->best_guess);
      EXPECT_EQ(a.variants[i].result.attack->best_score,
                other->variants[i].result.attack->best_score);
      EXPECT_EQ(a.variants[i].result.attack->mtd,
                other->variants[i].result.attack->mtd);
    }
  }
}

TEST(Sweep, RejectsEmptyRecipeListAndInvalidConfig) {
  EXPECT_THROW(des_campaign().sweep({}), std::invalid_argument);
  qc::Campaign no_target;
  EXPECT_THROW(no_target.sweep({qx::unprotected()}), std::invalid_argument);
}

TEST(Sweep, FlowStageFeedsRecipesAndUnplacedCellsGetDefinedCaps) {
  // Flow (placement + extraction) before the recipe: the cone-balance
  // clones are created *after* the placement ran, so a re-extraction
  // must give their nets the defined pin-model default instead of
  // reading out-of-range position entries.
  qdi::core::FlowOptions flow;
  flow.placer.mode = qdi::pnr::FlowMode::Flat;
  flow.placer.seed = 5;
  flow.placer.moves_per_cell = 4;
  flow.placer.stages = 8;
  qc::Campaign campaign;
  campaign.target(qc::xor_stage()).flow(flow).recipe(qx::balanced());
  const qc::CampaignResult r = campaign.run();
  ASSERT_TRUE(r.flow.has_value());
  ASSERT_TRUE(r.xform.has_value());
  // Post-flow caps are heterogeneous; the balanced recipe equalizes
  // every channel exactly.
  EXPECT_DOUBLE_EQ(r.max_da, 0.0);
  // Re-extract over the stale placement: defined results, no crash, and
  // any xform-added net is reported as unplaced.
  qn::Netlist nl = r.nl;
  const qdi::pnr::ExtractionSummary s =
      qdi::pnr::extract(nl, r.flow->placement);
  if (r.xform->cells_added() > 0)
    EXPECT_GE(s.unplaced_nets, r.xform->nets_added());
  for (const qn::Net& n : nl.nets()) {
    EXPECT_GT(n.cap_ff, 0.0);
    EXPECT_GE(n.wirelength_um, 0.0);
  }
}

TEST(Sweep, FaultProbeReportsPerVariantResilienceCounts) {
  // The fault-resilience probe rides the sweep: every variant gets the
  // same (site x kind) injection grid on its *transformed* netlist, and
  // the countermeasure recipes must not regress the paper's DFA claim —
  // QDI stays deadlock/masked only, with zero exploitable faults.
  qc::FaultCampaignOptions probe;
  probe.max_sites = 8;
  probe.repeats = 2;
  qc::Campaign campaign;
  campaign.target(qc::des_sbox_slice())
      .key(0x2b)
      .seed(31337)
      .threads(2)
      .prepare(unbalance)
      .faults(probe);
  const qc::SweepResult sweep =
      campaign.sweep({qx::unprotected(), qx::balanced()});
  ASSERT_EQ(sweep.variants.size(), 2u);
  for (const qc::SweepVariant& v : sweep.variants) {
    SCOPED_TRACE(v.recipe);
    const qc::FaultSummary* fs = v.faults();
    ASSERT_NE(fs, nullptr);
    EXPECT_GT(fs->runs, 0u);
    EXPECT_EQ(fs->runs, fs->deadlock + fs->masked + fs->exploitable);
    EXPECT_EQ(fs->exploitable, 0u)
        << "countermeasure recipe regressed fault resilience";
    EXPECT_GT(fs->deadlock, 0u);
  }
  const std::string table = sweep.table().to_string();
  EXPECT_NE(table.find("faults d/m/e"), std::string::npos);
  EXPECT_NE(table.find("/0"), std::string::npos);
}
