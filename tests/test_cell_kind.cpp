#include <gtest/gtest.h>

#include <vector>

#include "qdi/netlist/cell_kind.hpp"

namespace qn = qdi::netlist;
using qn::CellKind;

namespace {
bool eval(CellKind k, std::vector<bool> in, bool prev = false) {
  // std::vector<bool> has no data(); expand into a plain array.
  bool buf[8];
  for (std::size_t i = 0; i < in.size(); ++i) buf[i] = in[i];
  return qn::evaluate(k, std::span<const bool>(buf, in.size()), prev);
}
}  // namespace

TEST(CellKindInfo, AritiesAreConsistent) {
  EXPECT_EQ(qn::info(CellKind::Inv).num_inputs, 1);
  EXPECT_EQ(qn::info(CellKind::Or2).num_inputs, 2);
  EXPECT_EQ(qn::info(CellKind::Or4).num_inputs, 4);
  EXPECT_EQ(qn::info(CellKind::Muller2).num_inputs, 2);
  // The reset pin counts as an input.
  EXPECT_EQ(qn::info(CellKind::Muller2R).num_inputs, 3);
  EXPECT_EQ(qn::info(CellKind::Muller3R).num_inputs, 4);
}

TEST(CellKindInfo, NamesAreUniqueAndNonEmpty) {
  std::vector<std::string_view> names;
  for (int k = 0; k < qn::kNumCellKinds; ++k)
    names.push_back(qn::name(static_cast<CellKind>(k)));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j)
      EXPECT_NE(names[i], names[j]);
  }
}

TEST(CellKindInfo, MullerFamilyFlags) {
  EXPECT_TRUE(qn::is_muller(CellKind::Muller2));
  EXPECT_TRUE(qn::is_muller(CellKind::Muller2R));
  EXPECT_TRUE(qn::is_muller(CellKind::Muller4));
  EXPECT_FALSE(qn::is_muller(CellKind::Or2));
  EXPECT_TRUE(qn::info(CellKind::Muller2R).has_reset);
  EXPECT_FALSE(qn::info(CellKind::Muller2).has_reset);
  EXPECT_TRUE(qn::is_pseudo(CellKind::Input));
  EXPECT_TRUE(qn::is_pseudo(CellKind::Output));
  EXPECT_FALSE(qn::is_pseudo(CellKind::Buf));
}

TEST(Evaluate, BasicGates) {
  EXPECT_FALSE(eval(CellKind::Inv, {true}));
  EXPECT_TRUE(eval(CellKind::Inv, {false}));
  EXPECT_TRUE(eval(CellKind::Buf, {true}));
  EXPECT_TRUE(eval(CellKind::And2, {true, true}));
  EXPECT_FALSE(eval(CellKind::And2, {true, false}));
  EXPECT_TRUE(eval(CellKind::Or2, {false, true}));
  EXPECT_FALSE(eval(CellKind::Nor2, {false, true}));
  EXPECT_TRUE(eval(CellKind::Nor2, {false, false}));
  EXPECT_TRUE(eval(CellKind::Nand2, {true, false}));
  EXPECT_FALSE(eval(CellKind::Nand2, {true, true}));
  EXPECT_TRUE(eval(CellKind::Xor2, {true, false}));
  EXPECT_FALSE(eval(CellKind::Xor2, {true, true}));
  EXPECT_TRUE(eval(CellKind::Xnor2, {true, true}));
}

// Fig. 5 of the paper: Z = XY + Z(X+Y). Exhaustive over (X, Y, Zprev).
struct MullerCase {
  bool x, y, z_prev, z_expected;
};

class MullerTruthTable : public ::testing::TestWithParam<MullerCase> {};

TEST_P(MullerTruthTable, MatchesPaperFig5) {
  const MullerCase& c = GetParam();
  EXPECT_EQ(eval(CellKind::Muller2, {c.x, c.y}, c.z_prev), c.z_expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllInputs, MullerTruthTable,
    ::testing::Values(MullerCase{false, false, false, false},
                      MullerCase{false, false, true, false},
                      MullerCase{false, true, false, false},   // hold Z-1
                      MullerCase{false, true, true, true},     // hold Z-1
                      MullerCase{true, false, false, false},   // hold Z-1
                      MullerCase{true, false, true, true},     // hold Z-1
                      MullerCase{true, true, false, true},
                      MullerCase{true, true, true, true}));

TEST(Evaluate, Muller3RequiresConsensus) {
  EXPECT_TRUE(eval(CellKind::Muller3, {true, true, true}, false));
  EXPECT_FALSE(eval(CellKind::Muller3, {false, false, false}, true));
  // Any disagreement holds the previous value.
  EXPECT_TRUE(eval(CellKind::Muller3, {true, true, false}, true));
  EXPECT_FALSE(eval(CellKind::Muller3, {true, false, false}, false));
}

TEST(Evaluate, MullerResetDominates) {
  // Reset is the last input and forces the output low even on consensus.
  EXPECT_FALSE(eval(CellKind::Muller2R, {true, true, true}, true));
  EXPECT_TRUE(eval(CellKind::Muller2R, {true, true, false}, false));
  // Hold behaviour with reset low.
  EXPECT_TRUE(eval(CellKind::Muller2R, {true, false, false}, true));
  EXPECT_FALSE(eval(CellKind::Muller2R, {false, true, false}, false));
  EXPECT_FALSE(eval(CellKind::Muller3R, {true, true, true, true}, true));
  EXPECT_TRUE(eval(CellKind::Muller3R, {true, true, true, false}, false));
}

// Exhaustive N-input property sweep: for every combinational kind, the
// output must be independent of prev_output.
class CombinationalIgnoresState
    : public ::testing::TestWithParam<CellKind> {};

TEST_P(CombinationalIgnoresState, PrevOutputHasNoEffect) {
  const CellKind k = GetParam();
  const int n = qn::info(k).num_inputs;
  for (unsigned m = 0; m < (1u << n); ++m) {
    std::vector<bool> in(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b) in[static_cast<std::size_t>(b)] = (m >> b) & 1;
    EXPECT_EQ(eval(k, in, false), eval(k, in, true))
        << qn::name(k) << " input " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinational, CombinationalIgnoresState,
    ::testing::Values(CellKind::Buf, CellKind::Inv, CellKind::And2,
                      CellKind::And3, CellKind::Or2, CellKind::Or3,
                      CellKind::Or4, CellKind::Nor2, CellKind::Nor3,
                      CellKind::Nor4, CellKind::Nand2, CellKind::Nand3,
                      CellKind::Xor2, CellKind::Xnor2));

// Monotone-consensus property for all Muller kinds: all-high -> 1,
// all-low -> 0, anything else holds.
class MullerConsensus : public ::testing::TestWithParam<CellKind> {};

TEST_P(MullerConsensus, HoldsUnlessConsensus) {
  const CellKind k = GetParam();
  const bool has_reset = qn::info(k).has_reset;
  const int n = qn::info(k).num_inputs - (has_reset ? 1 : 0);
  for (unsigned m = 0; m < (1u << n); ++m) {
    std::vector<bool> in(static_cast<std::size_t>(n));
    bool all = true, none = true;
    for (int b = 0; b < n; ++b) {
      const bool v = (m >> b) & 1;
      in[static_cast<std::size_t>(b)] = v;
      all = all && v;
      none = none && !v;
    }
    if (has_reset) in.push_back(false);
    for (bool prev : {false, true}) {
      const bool out = eval(k, in, prev);
      if (all)
        EXPECT_TRUE(out) << qn::name(k);
      else if (none)
        EXPECT_FALSE(out) << qn::name(k);
      else
        EXPECT_EQ(out, prev) << qn::name(k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMuller, MullerConsensus,
                         ::testing::Values(CellKind::Muller2, CellKind::Muller3,
                                           CellKind::Muller4, CellKind::Muller2R,
                                           CellKind::Muller3R));

TEST(Evaluate, TransistorCountsArePositiveForGates) {
  for (int k = 0; k < qn::kNumCellKinds; ++k) {
    const CellKind kind = static_cast<CellKind>(k);
    if (qn::is_pseudo(kind)) continue;
    EXPECT_GT(qn::info(kind).transistor_count, 0) << qn::name(kind);
  }
}
