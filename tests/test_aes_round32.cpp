// Integration test tying the fig. 8 datapath blocks together functionally:
// a full 32-bit AES round column — AddRoundKey(k0), ByteSub (4 S-Boxes),
// MixColumns, AddRoundKey(k1) — simulated gate-by-gate and compared with
// the FIPS-197 software model (~12k gates end to end).
#include <gtest/gtest.h>

#include "qdi/crypto/aes.hpp"
#include "qdi/gates/aes_datapath.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/rng.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;
namespace qc = qdi::crypto;

namespace {

struct Round32 {
  qn::Netlist nl{"aes_round32"};
  std::vector<qg::DualRail> p, k0, k1;
  std::vector<qg::DualRail> out;
  qs::EnvSpec spec;

  Round32() {
    qg::Builder b(nl);
    auto bus_in = [&](const char* name, std::vector<qg::DualRail>& bus) {
      for (int i = 0; i < 32; ++i)
        bus.push_back(b.dr_input(std::string(name) + std::to_string(i)));
    };
    bus_in("p", p);
    bus_in("k0_", k0);
    bus_in("k1_", k1);

    std::vector<qg::DualRail> x, s, m;
    {
      qg::Builder::HierScope scope(b, "addkey0");
      x = qg::xor_bus(b, p, k0, "x");
    }
    {
      qg::Builder::HierScope scope(b, "bytesub");
      s = qg::bytesub32(b, x, "bs");
    }
    m = qg::mixcolumn_column(b, s, "mixcolumn");
    {
      qg::Builder::HierScope scope(b, "addroundkey");
      out = qg::xor_bus(b, m, k1, "ark");
    }
    for (std::size_t i = 0; i < out.size(); ++i)
      b.dr_output(out[i], "o" + std::to_string(i));

    for (const auto& d : p) spec.inputs.push_back(d.ch);
    for (const auto& d : k0) spec.inputs.push_back(d.ch);
    for (const auto& d : k1) spec.inputs.push_back(d.ch);
    for (const auto& d : out) spec.outputs.push_back(d.ch);
    spec.period_ps = 60000.0;
  }
};

std::uint32_t reference_round(std::uint32_t p, std::uint32_t key0,
                              std::uint32_t key1) {
  qc::Block st{};
  for (int i = 0; i < 4; ++i)
    st[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((p >> (8 * i)) ^ (key0 >> (8 * i)));
  for (int i = 0; i < 4; ++i)
    st[static_cast<std::size_t>(i)] = qc::aes_sbox(st[static_cast<std::size_t>(i)]);
  qc::mix_columns(st);
  std::uint32_t r = 0;
  for (int i = 0; i < 4; ++i)
    r |= static_cast<std::uint32_t>(st[static_cast<std::size_t>(i)] ^
                                    static_cast<std::uint8_t>(key1 >> (8 * i)))
         << (8 * i);
  return r;
}

std::vector<int> bits_of(std::uint32_t v) {
  std::vector<int> out(32);
  for (int i = 0; i < 32; ++i) out[static_cast<std::size_t>(i)] = (v >> i) & 1;
  return out;
}

}  // namespace

TEST(AesRound32, MatchesSoftwareRound) {
  Round32 r32;
  ASSERT_TRUE(r32.nl.check().empty());
  EXPECT_GT(r32.nl.num_gates(), 10000u);

  qs::Simulator sim(r32.nl);
  qs::FourPhaseEnv env(sim, r32.spec);
  env.apply_reset();

  qdi::util::Rng rng(606);
  for (int t = 0; t < 5; ++t) {
    const std::uint32_t p = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t key0 = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t key1 = static_cast<std::uint32_t>(rng.next());
    std::vector<int> values = bits_of(p);
    const auto kb0 = bits_of(key0);
    const auto kb1 = bits_of(key1);
    values.insert(values.end(), kb0.begin(), kb0.end());
    values.insert(values.end(), kb1.begin(), kb1.end());

    const auto cyc = env.send(values);
    ASSERT_TRUE(cyc.ok);
    std::uint32_t got = 0;
    for (std::size_t i = 0; i < cyc.outputs.size(); ++i)
      if (cyc.outputs[i] == 1) got |= (1u << i);
    EXPECT_EQ(got, reference_round(p, key0, key1)) << "t=" << t;
  }
  EXPECT_EQ(sim.glitch_count(), 0u);
}

TEST(AesRound32, TransitionCountDataIndependent) {
  Round32 r32;
  qs::Simulator sim(r32.nl);
  qs::FourPhaseEnv env(sim, r32.spec);
  env.apply_reset();
  qdi::util::Rng rng(607);
  std::size_t expected = 0;
  for (int t = 0; t < 3; ++t) {
    std::vector<int> values = bits_of(static_cast<std::uint32_t>(rng.next()));
    const auto kb0 = bits_of(static_cast<std::uint32_t>(rng.next()));
    const auto kb1 = bits_of(static_cast<std::uint32_t>(rng.next()));
    values.insert(values.end(), kb0.begin(), kb0.end());
    values.insert(values.end(), kb1.begin(), kb1.end());
    const auto cyc = env.send(values);
    ASSERT_TRUE(cyc.ok);
    if (expected == 0)
      expected = cyc.transitions;
    else
      EXPECT_EQ(cyc.transitions, expected) << "t=" << t;
  }
}
