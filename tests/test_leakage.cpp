#include <gtest/gtest.h>

#include "qdi/core/leakage.hpp"
#include "qdi/gates/testbench.hpp"

namespace qn = qdi::netlist;
namespace qc = qdi::core;
namespace qs = qdi::sim;
namespace qp = qdi::power;
namespace qg = qdi::gates;

TEST(Leakage, BalancedChannelScoresZero) {
  qg::XorStage x = qg::build_xor_stage();
  const qc::ChannelLeakage lk =
      qc::channel_leakage(x.nl, x.out_ch, qs::DelayModel{}, qp::PowerModelParams{});
  EXPECT_DOUBLE_EQ(lk.dA, 0.0);
  EXPECT_DOUBLE_EQ(lk.peak_current_ua, 0.0);
  EXPECT_DOUBLE_EQ(lk.charge_fc, 0.0);
  EXPECT_DOUBLE_EQ(lk.score_ua, 0.0);
}

TEST(Leakage, ScoreGrowsWithImbalance) {
  double prev = 0.0;
  for (double cap : {8.0, 12.0, 20.0, 40.0}) {
    qg::XorStage x = qg::build_xor_stage();
    x.nl.net(x.co1).cap_ff = cap;
    const qc::ChannelLeakage lk = qc::channel_leakage(
        x.nl, x.out_ch, qs::DelayModel{}, qp::PowerModelParams{});
    EXPECT_GE(lk.score_ua, prev);
    prev = lk.score_ua;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(Leakage, ChargeTermMatchesEq12) {
  qg::XorStage x = qg::build_xor_stage();
  x.nl.net(x.co0).cap_ff = 8.0;
  x.nl.net(x.co1).cap_ff = 24.0;
  qp::PowerModelParams pm;
  const qc::ChannelLeakage lk =
      qc::channel_leakage(x.nl, x.out_ch, qs::DelayModel{}, pm);
  // ΔC·Vdd with the parasitic terms identical on both rails: 16 fF · Vdd.
  EXPECT_NEAR(lk.charge_fc, 16.0 * pm.vdd, 1e-9);
  EXPECT_GT(lk.peak_current_ua, 0.0);
}

TEST(Leakage, TimingInsensitiveModelStillHasChargeTerm) {
  // With Δt independent of C, the peak-current term still differs (same
  // Δt, different C) but purely through the charge numerator.
  qg::XorStage x = qg::build_xor_stage();
  x.nl.net(x.co1).cap_ff = 32.0;
  const qc::ChannelLeakage lk = qc::channel_leakage(
      x.nl, x.out_ch, qs::DelayModel::load_insensitive(), qp::PowerModelParams{});
  EXPECT_GT(lk.peak_current_ua, 0.0);
  EXPECT_GT(lk.charge_fc, 0.0);
}

TEST(Leakage, RankingIsSortedAndComplete) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  // Unbalance a few channels by different amounts.
  slice.nl.net(slice.x[0].r1).cap_ff = 30.0;
  slice.nl.net(slice.q[3].r1).cap_ff = 16.0;
  const auto ranked =
      qc::rank_leakage(slice.nl, qs::DelayModel{}, qp::PowerModelParams{});
  EXPECT_EQ(ranked.size(), slice.nl.num_channels());
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].score_ua, ranked[i].score_ua);
  // The heaviest-unbalanced channel ranks first.
  EXPECT_GT(ranked[0].score_ua, 0.0);
}

TEST(Leakage, TableRendersTopK) {
  qg::XorStage x = qg::build_xor_stage();
  x.nl.net(x.co1).cap_ff = 20.0;
  const auto ranked =
      qc::rank_leakage(x.nl, qs::DelayModel{}, qp::PowerModelParams{});
  const auto t = qc::leakage_table(ranked, 2);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_LE(t.rows(), ranked.size());
}
