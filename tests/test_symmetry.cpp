#include <gtest/gtest.h>

#include "qdi/gates/builder.hpp"
#include "qdi/gates/sbox.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/netlist/symmetry.hpp"

namespace qn = qdi::netlist;
namespace qg = qdi::gates;

TEST(Symmetry, XorStageRailsAreSymmetric) {
  qg::XorStage x = qg::build_xor_stage();
  const qn::Graph g(x.nl);
  const auto rep = qn::check_rail_symmetry(g, x.co0, x.co1);
  EXPECT_TRUE(rep.symmetric) << (rep.diagnostics.empty() ? "" : rep.diagnostics[0]);
  EXPECT_TRUE(rep.isomorphic);
  EXPECT_TRUE(rep.level_histograms_match);
  EXPECT_EQ(rep.cone_size0, rep.cone_size1);
}

TEST(Symmetry, XorCombRailsAreSymmetric) {
  qn::Netlist nl("x");
  qg::Builder b(nl);
  const qg::DualRail a = b.dr_input("a");
  const qg::DualRail c = b.dr_input("b");
  const qg::DualRail o = b.dr_xor(a, c, "x");
  const qn::Graph g(nl);
  EXPECT_TRUE(qn::check_rail_symmetry(g, o.r0, o.r1).symmetric);
}

TEST(Symmetry, AndGateRailsAreAsymmetric) {
  // dr_and merges three minterms into rail 0 through ORs and buffers
  // rail 1: logically balanced in transitions, structurally asymmetric —
  // the checker must report that truthfully.
  qn::Netlist nl("a");
  qg::Builder b(nl);
  const qg::DualRail a = b.dr_input("a");
  const qg::DualRail c = b.dr_input("b");
  const qg::DualRail o = b.dr_and(a, c, "and");
  const qn::Graph g(nl);
  const auto rep = qn::check_rail_symmetry(g, o.r0, o.r1);
  EXPECT_FALSE(rep.symmetric);
  EXPECT_FALSE(rep.diagnostics.empty());
}

TEST(Symmetry, BrokenRailDetected) {
  // Replace one OR of the xor structure by a gate of another kind — the
  // histogram check must flag it.
  qn::Netlist nl("broken");
  qg::Builder b(nl);
  const qg::DualRail a = b.dr_input("a");
  const qg::DualRail c = b.dr_input("b");
  const qn::NetId m1 = b.muller2(a.r0, c.r0);
  const qn::NetId m2 = b.muller2(a.r1, c.r1);
  const qn::NetId m3 = b.muller2(a.r1, c.r0);
  const qn::NetId m4 = b.muller2(a.r0, c.r1);
  const qn::NetId s0 = b.or2(m1, m2);
  const qn::NetId s1 = b.nor2(m3, m4);  // wrong gate kind on rail 1
  b.as_dual_rail(s0, s1, "o");
  const qn::Graph g(nl);
  const auto rep = qn::check_rail_symmetry(g, s0, s1);
  EXPECT_FALSE(rep.symmetric);
  EXPECT_FALSE(rep.isomorphic);
}

TEST(Symmetry, UndrivenRailIsReported) {
  qn::Netlist nl("u");
  qg::Builder b(nl);
  const qg::DualRail a = b.dr_input("a");
  const qn::NetId dangling = nl.add_net("dangling");
  const qn::Graph g(nl);
  const auto rep = qn::check_rail_symmetry(g, a.r0, dangling);
  EXPECT_FALSE(rep.symmetric);
}

TEST(Symmetry, SboxOutputsAreIsomorphic) {
  // The DIMS S-Box OR trees of both rails merge 128 lines each, and every
  // minterm line has an identical decode structure -> the rails of every
  // output channel are structurally isomorphic. (Full cone-size equality
  // is intentionally NOT required: the decode tree is *shared* logic, and
  // how many distinct ancestors each rail's lines have depends on the
  // table — sharing does not unbalance transition counts.)
  qn::Netlist nl("sb");
  qg::Builder b(nl);
  std::vector<qg::DualRail> in;
  for (int i = 0; i < 8; ++i) in.push_back(b.dr_input("i" + std::to_string(i)));
  const qg::LutResult lut = qg::build_aes_sbox(b, in, "sbox");
  const qn::Graph g(nl);
  for (const qg::DualRail& out : lut.outputs) {
    const auto rep = qn::check_rail_symmetry(g, out.r0, out.r1);
    EXPECT_TRUE(rep.isomorphic);
  }
}

TEST(Symmetry, CheckAllChannelsCoversRegistry) {
  qg::XorStage x = qg::build_xor_stage();
  const qn::Graph g(x.nl);
  const auto reps = qn::check_all_channels(g);
  EXPECT_EQ(reps.size(), x.nl.num_channels());
  for (std::size_t i = 0; i < reps.size(); ++i)
    EXPECT_EQ(reps[i].channel,
              x.nl.channel(static_cast<qn::ChannelId>(i)).name);
}

TEST(Symmetry, OneOfFourComparesEveryRailPair) {
  // A 1-of-4 channel where rail 0 matches rails 1 and 2, but rail 3 is
  // wired through an Inv instead of a Buf: the all-pairs scan must flag
  // the channel and name the offending pair.
  qn::Netlist nl("q4");
  qg::Builder b(nl);
  const qg::OneOfN q = b.one_of_n_input("q", 4);
  std::vector<qn::NetId> out_rails;
  for (std::size_t i = 0; i < 3; ++i) out_rails.push_back(b.buf(q.rails[i]));
  out_rails.push_back(b.inv(q.rails[3]));
  nl.add_channel("qo", out_rails);
  const qn::Graph g(nl);
  const auto reps = qn::check_all_channels(g);
  const qn::ChannelId qo = nl.find_channel("qo");
  ASSERT_NE(qo, qn::Netlist::kNoChannel);
  const qn::SymmetryReport& rep = reps[qo];
  EXPECT_FALSE(rep.symmetric);
  EXPECT_EQ(rep.channel, "qo");
  EXPECT_EQ(rep.rail_b, 3u);  // first failing pair is (0, 3)
  EXPECT_EQ(rep.rail_a, 0u);
  ASSERT_FALSE(rep.diagnostics.empty());
  // Diagnostics carry the channel name, not only the index.
  EXPECT_NE(rep.diagnostics[0].find("'qo'"), std::string::npos);
  EXPECT_NE(rep.diagnostics[0].find("(0,3)"), std::string::npos);
}

TEST(Symmetry, OneOfFourAllPairsSymmetric) {
  // All four rails through identical buffers: every pair matches.
  qn::Netlist nl("q4ok");
  qg::Builder b(nl);
  const qg::OneOfN q = b.one_of_n_input("q", 4);
  std::vector<qn::NetId> out_rails;
  for (qn::NetId r : q.rails) out_rails.push_back(b.buf(r));
  nl.add_channel("qo", out_rails);
  const qn::Graph g(nl);
  const auto reps = qn::check_all_channels(g);
  const qn::SymmetryReport& rep = reps[nl.find_channel("qo")];
  EXPECT_TRUE(rep.symmetric);
  EXPECT_TRUE(rep.diagnostics.empty());
}

TEST(Symmetry, AllChannelsAgreesWithPairwiseChecker) {
  // The cached all-channels scan must agree with the direct rail-pair
  // checker on every channel of a real target netlist.
  qn::Netlist nl("sb");
  qg::Builder b(nl);
  std::vector<qg::DualRail> in;
  for (int i = 0; i < 6; ++i) in.push_back(b.dr_input("i" + std::to_string(i)));
  (void)qg::build_des_sbox(b, 0, in, "sbox");
  const qn::Graph g(nl);
  const auto reps = qn::check_all_channels(g);
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const qn::Channel& ch = nl.channel(static_cast<qn::ChannelId>(i));
    bool all_pairs = true;
    for (std::size_t p = 0; p < ch.rails.size(); ++p)
      for (std::size_t r = p + 1; r < ch.rails.size(); ++r)
        all_pairs &=
            qn::check_rail_symmetry(g, ch.rails[p], ch.rails[r]).symmetric;
    EXPECT_EQ(reps[i].symmetric, all_pairs) << ch.name;
  }
}
