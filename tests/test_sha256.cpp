// util::Sha256 against the FIPS 180-4 reference vectors, plus the
// incremental-API properties the checkpoint runtime depends on:
// chunked-vs-one-shot equality, non-destructive digest(), and
// save()/restore() of the mid-state (what a shard checkpoint persists).
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qdi/util/rng.hpp"
#include "qdi/util/sha256.hpp"

namespace qu = qdi::util;

namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

}  // namespace

TEST(Sha256, Fips180_4Vectors) {
  // Empty message.
  EXPECT_EQ(qu::Sha256::hex_of({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  // "abc".
  EXPECT_EQ(qu::Sha256::hex_of(bytes_of("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // Two-block message.
  EXPECT_EQ(qu::Sha256::hex_of(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // One million 'a' (the long-message vector).
  qu::Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk.data(), chunk.size());
  EXPECT_EQ(h.hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ChunkedEqualsOneShot) {
  // Every split point of a two-and-a-bit-block message: the buffered
  // update path must agree with the one-shot digest exactly.
  std::vector<std::uint8_t> msg(150);
  for (std::size_t i = 0; i < msg.size(); ++i)
    msg[i] = static_cast<std::uint8_t>(i * 7 + 3);
  const std::array<std::uint8_t, 32> want = qu::Sha256::of(msg);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    qu::Sha256 h;
    h.update(msg.data(), split);
    h.update(msg.data() + split, msg.size() - split);
    EXPECT_EQ(h.digest(), want) << "split at " << split;
  }
}

TEST(Sha256, DigestIsNonDestructive) {
  qu::Sha256 h;
  h.update(bytes_of("ab"));
  const std::array<std::uint8_t, 32> mid = h.digest();
  EXPECT_EQ(mid, h.digest());  // repeated reads agree
  h.update(bytes_of("c"));
  EXPECT_EQ(h.hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, SaveRestoreResumesMidStream) {
  // The checkpoint use case: persist the mid-state at an arbitrary
  // byte offset (including a partial block), resume in a fresh hasher,
  // and land on the same digest as the uninterrupted stream.
  std::vector<std::uint8_t> msg(517);
  for (std::size_t i = 0; i < msg.size(); ++i)
    msg[i] = static_cast<std::uint8_t>(i ^ (i >> 3));
  const std::array<std::uint8_t, 32> want = qu::Sha256::of(msg);

  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                std::size_t{63}, std::size_t{64},
                                std::size_t{65}, std::size_t{300}}) {
    qu::Sha256 first;
    first.update(msg.data(), cut);
    const qu::Sha256::State state = first.save();
    EXPECT_EQ(state.total_bytes, cut);
    EXPECT_EQ(state.buffered(), cut % 64);

    qu::Sha256 resumed;
    resumed.restore(state);
    resumed.update(msg.data() + cut, msg.size() - cut);
    EXPECT_EQ(resumed.digest(), want) << "cut at " << cut;
  }
}

TEST(Sha256, Update64MatchesLittleEndianBytes) {
  qu::Sha256 a;
  a.update_u64(0x0123456789abcdefULL);
  const std::array<std::uint8_t, 8> le = {0xef, 0xcd, 0xab, 0x89,
                                          0x67, 0x45, 0x23, 0x01};
  qu::Sha256 b;
  b.update(le.data(), le.size());
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Sha256, HardwarePathMatchesPortable) {
  // The dispatched compressor (SHA-NI where the CPU has it) and the
  // portable one must advance an arbitrary chaining state identically,
  // block for block. On machines without SHA-NI both names resolve to
  // the portable path and the test degenerates to a tautology, so only
  // the FIPS vectors pin it there — skip to say so honestly.
  if (!qu::sha256_hw_accelerated())
    GTEST_SKIP() << "no hardware SHA-256 path on this CPU";
  qu::Rng rng(0x5ea1);
  for (const std::size_t nblocks : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}, std::size_t{17}}) {
    std::vector<std::uint8_t> blocks(nblocks * 64);
    for (auto& b : blocks) b = rng.byte();
    std::array<std::uint32_t, 8> h0{};
    for (auto& w : h0) w = static_cast<std::uint32_t>(rng.next());
    auto h_portable = h0;
    auto h_best = h0;
    qu::detail::sha256_compress_portable(h_portable, blocks.data(), nblocks);
    qu::detail::sha256_compress_best(h_best, blocks.data(), nblocks);
    EXPECT_EQ(h_portable, h_best) << nblocks << " blocks";
  }
}
