// Tests for the streaming analysis engine (dpa::OnlineCpa /
// dpa::OnlineDpa) and the fused acquire-and-attack campaign mode:
//
//  * property tests — randomized (n, m, guesses, prefixes) trace sets,
//    online results vs the legacy batch formulas re-derived naively
//    here, to 1e-12;
//  * byte-indexed LUT path vs generic std::function path, bit-identical;
//  * CpaResult/KeyRecoveryResult tie handling (ties rank below);
//  * fused-campaign results == materialized-TraceSet results on two
//    registry targets, including MTD and the rank trajectory;
//  * fused-campaign peak RSS independent of the trace count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "qdi/qdi.hpp"

#ifdef __linux__
#include <sys/resource.h>
#endif

namespace qd = qdi::dpa;
namespace qp = qdi::power;
namespace qu = qdi::util;
namespace qc = qdi::campaign;

namespace {

/// Random trace set: m gaussian samples per trace, 2-byte plaintexts
/// (so byte-indexed models reading byte 1 are exercised too).
qd::TraceSet random_traces(std::size_t n, std::size_t m, qu::Rng& rng) {
  qd::TraceSet ts;
  for (std::size_t i = 0; i < n; ++i) {
    qp::PowerTrace t(0.0, 10.0, m);
    for (std::size_t j = 0; j < m; ++j) t[j] = rng.gaussian(1.0, 2.0);
    ts.add(t, {rng.byte(), rng.byte()});
  }
  return ts;
}

/// The seed implementation of one-guess correlation columns, verbatim:
/// per-guess recomputation of every sum, straight from the definition.
std::vector<double> naive_correlation(const qd::TraceSet& ts,
                                      const qd::LeakageModel& model,
                                      unsigned guess, std::size_t n) {
  const std::size_t m = ts.num_samples();
  std::vector<double> h(n);
  for (std::size_t i = 0; i < n; ++i) h[i] = model(ts.plaintext(i), guess);
  double sum_h = 0.0, sum_h2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_h += h[i];
    sum_h2 += h[i] * h[i];
  }
  std::vector<double> sum_s(m, 0.0), sum_s2(m, 0.0), sum_hs(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = ts.trace(i).samples();
    for (std::size_t j = 0; j < m; ++j) {
      sum_s[j] += s[j];
      sum_s2[j] += s[j] * s[j];
      sum_hs[j] += h[i] * s[j];
    }
  }
  std::vector<double> rho(m, 0.0);
  const double nn = static_cast<double>(n);
  const double var_h = sum_h2 - sum_h * sum_h / nn;
  if (var_h <= 0.0) return rho;
  for (std::size_t j = 0; j < m; ++j) {
    const double var_s = sum_s2[j] - sum_s[j] * sum_s[j] / nn;
    if (var_s <= 0.0) continue;
    rho[j] = (sum_hs[j] - sum_h * sum_s[j] / nn) / std::sqrt(var_h * var_s);
  }
  return rho;
}

/// The seed implementation of the DPA bias: two split means (eq. 8/9).
std::vector<double> naive_bias(const qd::TraceSet& ts, const qd::SelectionFn& d,
                               unsigned guess, std::size_t n) {
  const std::size_t m = ts.num_samples();
  std::vector<double> sum0(m, 0.0), sum1(m, 0.0);
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = ts.trace(i).samples();
    if (d(ts.plaintext(i), guess) == 0) {
      ++n0;
      for (std::size_t j = 0; j < m; ++j) sum0[j] += s[j];
    } else {
      ++n1;
      for (std::size_t j = 0; j < m; ++j) sum1[j] += s[j];
    }
  }
  std::vector<double> bias(m, 0.0);
  if (n0 == 0 || n1 == 0) return bias;
  for (std::size_t j = 0; j < m; ++j)
    bias[j] = sum0[j] / static_cast<double>(n0) - sum1[j] / static_cast<double>(n1);
  return bias;
}

}  // namespace

// ---- property tests vs the legacy batch formulas ---------------------------

TEST(OnlineCpa, MatchesNaiveFormulasOnRandomInputs) {
  qu::Rng rng(0xabc);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 5 + rng.below(96);
    const std::size_t m = 1 + rng.below(24);
    const unsigned guesses = 2 + static_cast<unsigned>(rng.below(15));
    const int byte = static_cast<int>(rng.below(2));
    const qd::TraceSet ts = random_traces(n, m, rng);
    const qd::LeakageModel model = qd::aes_xor_hw_model(byte);

    // A handful of prefixes per trial, online sums advanced once.
    qd::OnlineCpa acc(model, guesses);
    for (const std::size_t prefix : {n / 3, n / 2, n}) {
      if (prefix == 0 || prefix < acc.count()) continue;
      acc.add_prefix(ts, acc.count(), prefix);
      const qd::CpaResult r = acc.finalize();
      ASSERT_EQ(r.correlation.size(), guesses);
      for (unsigned g = 0; g < guesses; ++g) {
        const std::vector<double> rho = naive_correlation(ts, model, g, prefix);
        double peak = 0.0;
        for (double v : rho) peak = std::max(peak, std::fabs(v));
        EXPECT_NEAR(r.correlation[g], peak, 1e-12)
            << "trial " << trial << " prefix " << prefix << " guess " << g;
      }
      // The batch wrapper is the same engine: exact agreement.
      const qd::CpaResult batch = qd::cpa_attack(ts, model, guesses, prefix);
      for (unsigned g = 0; g < guesses; ++g)
        EXPECT_DOUBLE_EQ(r.correlation[g], batch.correlation[g]);
      EXPECT_EQ(r.best_guess, batch.best_guess);
    }
  }
}

TEST(OnlineDpa, MatchesNaiveFormulasOnRandomInputs) {
  qu::Rng rng(0xdef);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 5 + rng.below(96);
    const std::size_t m = 1 + rng.below(24);
    const unsigned guesses = 2 + static_cast<unsigned>(rng.below(15));
    const int bit = static_cast<int>(rng.below(8));
    const qd::TraceSet ts = random_traces(n, m, rng);
    const qd::SelectionFn d = qd::aes_sbox_selection(0, bit);

    qd::OnlineDpa acc({d}, guesses);
    for (const std::size_t prefix : {n / 2, n}) {
      if (prefix == 0 || prefix < acc.count()) continue;
      acc.add_prefix(ts, acc.count(), prefix);
      for (unsigned g = 0; g < guesses; ++g) {
        const qd::BiasResult b = acc.bias(g);
        const std::vector<double> ref = naive_bias(ts, d, g, prefix);
        ASSERT_EQ(b.bias.size(), ref.size());
        for (std::size_t j = 0; j < ref.size(); ++j)
          EXPECT_NEAR(b.bias[j], ref[j], 1e-12)
              << "trial " << trial << " guess " << g << " sample " << j;
      }
      // Wrapper agreement (same engine, same order): exact.
      const qd::KeyRecoveryResult batch =
          qd::recover_key(ts, d, guesses, prefix);
      const qd::KeyRecoveryResult online = acc.recover();
      for (unsigned g = 0; g < guesses; ++g)
        EXPECT_DOUBLE_EQ(online.guess_peak[g], batch.guess_peak[g]);
    }
  }
}

TEST(OnlineCpa, GenericModelPathIsBitIdenticalToLutPath) {
  qu::Rng rng(7);
  const qd::TraceSet ts = random_traces(60, 12, rng);
  const qd::LeakageModel fast = qd::aes_sbox_hw_model(1);
  ASSERT_TRUE(fast.is_byte_indexed());
  // Same model forced down the generic std::function path.
  const qd::LeakageModel generic(
      [&fast](std::span<const std::uint8_t> pt, unsigned g) {
        return fast(pt, g);
      });
  ASSERT_FALSE(generic.is_byte_indexed());
  const qd::CpaResult a = qd::cpa_attack(ts, fast, 24);
  const qd::CpaResult b = qd::cpa_attack(ts, generic, 24);
  for (unsigned g = 0; g < 24; ++g)
    EXPECT_DOUBLE_EQ(a.correlation[g], b.correlation[g]);
  EXPECT_EQ(a.best_guess, b.best_guess);
  EXPECT_EQ(a.best_sample, b.best_sample);
}

TEST(OnlineDpa, GenericSelectionPathIsBitIdenticalToLutPath) {
  qu::Rng rng(8);
  const qd::TraceSet ts = random_traces(60, 12, rng);
  const qd::SelectionFn fast = qd::des_sbox_selection(0, 1);
  ASSERT_TRUE(fast.is_byte_indexed());
  const qd::SelectionFn generic(
      [&fast](std::span<const std::uint8_t> pt, unsigned g) {
        return fast(pt, g);
      });
  ASSERT_FALSE(generic.is_byte_indexed());
  const qd::KeyRecoveryResult a = qd::recover_key(ts, fast, 64);
  const qd::KeyRecoveryResult b = qd::recover_key(ts, generic, 64);
  for (unsigned g = 0; g < 64; ++g)
    EXPECT_DOUBLE_EQ(a.guess_peak[g], b.guess_peak[g]);
}

TEST(OnlineCpa, SingleAddAgreesWithBulkAddPrefix) {
  qu::Rng rng(9);
  const qd::TraceSet ts = random_traces(50, 10, rng);
  const qd::LeakageModel model = qd::aes_sbox_hw_model(0);
  qd::OnlineCpa one(model, 16);
  for (std::size_t i = 0; i < ts.size(); ++i)
    one.add(ts.plaintext(i), ts.trace(i).samples());
  qd::OnlineCpa bulk(model, 16);
  bulk.add_prefix(ts, 0, ts.size());
  const qd::CpaResult a = one.finalize();
  const qd::CpaResult b = bulk.finalize();
  for (unsigned g = 0; g < 16; ++g)
    EXPECT_DOUBLE_EQ(a.correlation[g], b.correlation[g]);
}

// ---- tie handling ----------------------------------------------------------

TEST(RankOf, TiedScoresRankBelowTheReference) {
  // Duplicated columns: guesses 1 and 3 tie exactly with the reference.
  qd::CpaResult cpa;
  cpa.correlation = {0.7, 0.7, 0.2, 0.7, 0.9};
  EXPECT_EQ(cpa.rank_of(0), 1u);  // only the 0.9 ranks above
  EXPECT_EQ(cpa.rank_of(1), 1u);  // same for every member of the tie
  EXPECT_EQ(cpa.rank_of(3), 1u);
  EXPECT_EQ(cpa.rank_of(4), 0u);

  qd::KeyRecoveryResult dpa;
  dpa.guess_peak = {1.5, 1.5, 2.5, 1.5};
  EXPECT_EQ(dpa.rank_of(0), 1u);
  EXPECT_EQ(dpa.rank_of(1), 1u);
  EXPECT_EQ(dpa.rank_of(3), 1u);
  EXPECT_EQ(dpa.rank_of(2), 0u);
}

TEST(RankOf, DuplicatedModelColumnsTieExactly) {
  // A model that cannot tell guesses apart beyond their low bit produces
  // numerically IDENTICAL correlation columns for g and g+2 — the online
  // engine computes them from the same sums, so the tie is exact and the
  // true guess keeps rank 0 among its ghosts.
  const qd::LeakageModel degenerate = qd::LeakageModel::byte_indexed(
      0, [](std::uint8_t v, unsigned g) {
        return static_cast<double>((v ^ g) & 1);
      });
  qu::Rng rng(10);
  const qd::TraceSet ts = random_traces(80, 8, rng);
  const qd::CpaResult r = qd::cpa_attack(ts, degenerate, 8);
  EXPECT_DOUBLE_EQ(r.correlation[0], r.correlation[2]);
  EXPECT_DOUBLE_EQ(r.correlation[0], r.correlation[4]);
  EXPECT_DOUBLE_EQ(r.correlation[1], r.correlation[7]);
  // All four even guesses tie; none ranks above another.
  EXPECT_EQ(r.rank_of(r.best_guess), 0u);
  const std::size_t ghost_rank = r.rank_of(r.best_guess ^ 6u);
  EXPECT_EQ(ghost_rank, r.rank_of(r.best_guess));
}

// ---- CPA measurements-to-disclosure ----------------------------------------

TEST(CpaMtd, StreamingScanMatchesRepeatedAttacks) {
  // Planted Hamming-weight leak: the streaming MTD scan must return
  // exactly what probing every prefix with a full attack returns.
  const std::uint8_t key = 0x5a;
  qu::Rng rng(11);
  qd::TraceSet ts;
  for (std::size_t i = 0; i < 300; ++i) {
    const std::uint8_t p = rng.byte();
    qp::PowerTrace t(0.0, 10.0, 24);
    for (std::size_t j = 0; j < 24; ++j) t[j] = rng.gaussian(0.0, 1.0);
    t[7] += 1.5 * static_cast<double>(__builtin_popcount(
                      qdi::crypto::aes_sbox(static_cast<std::uint8_t>(p ^ key))));
    ts.add(t, {p});
  }
  const qd::LeakageModel model = qd::aes_sbox_hw_model(0);
  const std::size_t streamed =
      qd::cpa_measurements_to_disclosure(ts, model, 256, key, 20, 20);
  std::size_t naive = 0;
  for (std::size_t n = 20; n <= ts.size(); n += 20) {
    const qd::CpaResult r = qd::cpa_attack(ts, model, 256, n);
    const bool ok = (r.best_guess == key) && r.best_rho > 0.0;
    if (ok && naive == 0) naive = n;
    if (!ok) naive = 0;
  }
  EXPECT_EQ(streamed, naive);
  EXPECT_GT(streamed, 0u);  // the planted leak is strong enough to recover
}

TEST(CpaMtd, ZeroStepIsDegenerateNotAnInfiniteLoop) {
  qu::Rng rng(12);
  const qd::TraceSet ts = random_traces(40, 8, rng);
  EXPECT_EQ(qd::cpa_measurements_to_disclosure(ts, qd::aes_sbox_hw_model(0),
                                               256, 0, 8, 0),
            0u);
  EXPECT_EQ(qd::measurements_to_disclosure(ts, qd::aes_sbox_selection(0, 0),
                                           256, 0, 8, 0),
            0u);
}

// ---- TraceSet geometry contract --------------------------------------------

TEST(TraceSetSoA, MismatchedGeometryThrows) {
  qd::TraceSet ts;
  ts.add(qp::PowerTrace(0.0, 1.0, 4), {1, 2}, {9});
  EXPECT_THROW(ts.add(qp::PowerTrace(0.0, 1.0, 5), {1, 2}, {9}),
               std::invalid_argument);  // sample count differs
  EXPECT_THROW(ts.add(qp::PowerTrace(0.0, 1.0, 4), {1}, {9}),
               std::invalid_argument);  // plaintext stride differs
  EXPECT_THROW(ts.add(qp::PowerTrace(0.0, 1.0, 4), {1, 2}),
               std::invalid_argument);  // ciphertext stride differs
  ts.add(qp::PowerTrace(0.0, 1.0, 4), {3, 4}, {8});
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.plaintext(1)[0], 3);
}

TEST(TraceSetSoA, SelfAppendThroughViewsIsSafe) {
  // Duplicating an existing acquisition hands add() spans into the
  // set's own storage; growth reallocation must not invalidate them
  // mid-copy (would be a use-after-free without the aliasing guard).
  qd::TraceSet ts;
  qp::PowerTrace t(0.0, 1.0, 3);
  t[0] = 1.5;
  t[2] = -2.5;
  ts.add(t, {7, 8}, {9});
  for (int i = 0; i < 20; ++i)
    ts.add(ts.trace(0), ts.plaintext(0), ts.ciphertext(0));
  ASSERT_EQ(ts.size(), 21u);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(ts.trace(i)[0], 1.5);
    EXPECT_DOUBLE_EQ(ts.trace(i)[2], -2.5);
    EXPECT_EQ(ts.plaintext(i)[1], 8);
    EXPECT_EQ(ts.ciphertext(i)[0], 9);
  }
}

// ---- chunked acquisition ---------------------------------------------------

TEST(AcquireChunked, SegmentsAreBitIdenticalToBatch) {
  const qc::TargetInstance inst = qc::des_sbox_slice().build(0x11);
  qc::SimTraceSource batch_src(inst.nl, inst.env, inst.stimulus, {});
  const qd::TraceSet batch = qc::acquire_batch(batch_src, 23, 77);

  qc::SimTraceSource chunk_src(inst.nl, inst.env, inst.stimulus, {});
  std::size_t seen = 0;
  qc::acquire_chunked(chunk_src, 23, 77, /*threads=*/2, /*chunk=*/7,
                      [&](const qd::TraceSet& seg, std::size_t first) {
                        EXPECT_EQ(first, seen);
                        for (std::size_t k = 0; k < seg.size(); ++k) {
                          const std::size_t i = first + k;
                          ASSERT_EQ(seg.plaintext(k)[0], batch.plaintext(i)[0]);
                          for (std::size_t j = 0; j < seg.num_samples(); ++j)
                            ASSERT_EQ(seg.trace(k)[j], batch.trace(i)[j])
                                << "trace " << i << " sample " << j;
                        }
                        seen += seg.size();
                      });
  EXPECT_EQ(seen, batch.size());
}

// ---- fused campaign == materialized campaign -------------------------------

namespace {

void expect_same_outcome(const qc::CampaignResult& fused,
                         const qc::CampaignResult& mat) {
  ASSERT_TRUE(fused.attack.has_value());
  ASSERT_TRUE(mat.attack.has_value());
  EXPECT_EQ(fused.attack->kind, mat.attack->kind);
  EXPECT_EQ(fused.attack->best_guess, mat.attack->best_guess);
  EXPECT_EQ(fused.attack->true_key_rank, mat.attack->true_key_rank);
  EXPECT_EQ(fused.attack->mtd, mat.attack->mtd);
  ASSERT_EQ(fused.attack->guess_scores.size(), mat.attack->guess_scores.size());
  for (std::size_t g = 0; g < mat.attack->guess_scores.size(); ++g)
    EXPECT_DOUBLE_EQ(fused.attack->guess_scores[g], mat.attack->guess_scores[g])
        << "guess " << g;
  EXPECT_DOUBLE_EQ(fused.attack->known_key_bias_peak,
                   mat.attack->known_key_bias_peak);
  ASSERT_EQ(fused.rank_trajectory.size(), mat.rank_trajectory.size());
  for (std::size_t i = 0; i < mat.rank_trajectory.size(); ++i) {
    EXPECT_EQ(fused.rank_trajectory[i].traces, mat.rank_trajectory[i].traces);
    EXPECT_EQ(fused.rank_trajectory[i].rank, mat.rank_trajectory[i].rank);
  }
  // Fused mode never materializes the trace set.
  EXPECT_EQ(fused.traces.size(), 0u);
  EXPECT_GT(mat.traces.size(), 0u);
}

}  // namespace

TEST(FusedCampaign, DpaMtdEqualsMaterializedOnDesSboxSlice) {
  qc::Dpa cfg;
  cfg.compute_mtd = true;
  cfg.mtd_start = 40;
  cfg.mtd_step = 40;
  const auto run = [&](bool fuse) {
    qc::Campaign c;
    c.target(qc::des_sbox_slice())
        .key(0x2b)
        .seed(31337)
        .traces(240)
        .threads(2)
        .prepare([](qdi::netlist::Netlist& nl) {
          for (qdi::netlist::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
            const qdi::netlist::Channel& c2 = nl.channel(ch);
            if (c2.name.find("sbox/out") != std::string::npos)
              nl.net(c2.rails[1]).cap_ff *= 1.8;
          }
        })
        .attack(cfg)
        .rank_trajectory(60);
    if (fuse) c.fused(64);  // chunk deliberately misaligned with the grids
    return c.run();
  };
  expect_same_outcome(run(true), run(false));
}

TEST(FusedCampaign, CpaMtdEqualsMaterializedOnAesByteSlice) {
  qc::Cpa cfg;
  cfg.compute_mtd = true;
  cfg.mtd_start = 30;
  cfg.mtd_step = 30;
  const auto run = [&](bool fuse) {
    qc::Campaign c;
    c.target(qc::aes_byte_slice())
        .key(0x66)
        .seed(5)
        .traces(120)
        .prepare([](qdi::netlist::Netlist& nl) {
          for (qdi::netlist::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
            const qdi::netlist::Channel& c2 = nl.channel(ch);
            if (c2.name.find("sbox/out") != std::string::npos ||
                c2.name.find("hb/q_q") != std::string::npos)
              nl.net(c2.rails[1]).cap_ff *= 2.0;
          }
        })
        .attack(cfg)
        .rank_trajectory(50);
    if (fuse) c.fused(32);
    return c.run();
  };
  expect_same_outcome(run(true), run(false));
}

TEST(FusedCampaign, RequiresAnAttack) {
  EXPECT_THROW(
      qc::Campaign().target(qc::des_sbox_slice()).traces(8).fused().run(),
      std::invalid_argument);
}

TEST(FusedCampaign, ZeroChunkStaysFused) {
  // fused(0) must not silently fall back to materializing the traces.
  const qc::CampaignResult r = qc::Campaign()
                                   .target(qc::des_sbox_slice())
                                   .key(0x15)
                                   .traces(6)
                                   .fused(0)
                                   .attack(qc::Cpa{})
                                   .run();
  EXPECT_EQ(r.traces.size(), 0u);
  ASSERT_TRUE(r.attack.has_value());
}

TEST(FusedCampaign, ZeroMtdStepIsRejectedUpFront) {
  qc::Cpa cfg;
  cfg.compute_mtd = true;
  cfg.mtd_step = 0;
  EXPECT_THROW(qc::Campaign()
                   .target(qc::des_sbox_slice())
                   .traces(8)
                   .attack(cfg)
                   .run(),
               std::invalid_argument);
  qc::Dpa dcfg;
  dcfg.compute_mtd = true;
  dcfg.mtd_step = 0;
  EXPECT_THROW(qc::Campaign()
                   .target(qc::des_sbox_slice())
                   .traces(8)
                   .attack(dcfg)
                   .run(),
               std::invalid_argument);
}

// ---- O(1) memory -----------------------------------------------------------

#ifdef __linux__

namespace {

/// Synthetic oscilloscope: procedurally generated leaky traces, fast
/// enough to push 100k traces through a fused campaign in a test.
class SyntheticSource final : public qc::TraceSource {
 public:
  void acquire_into(const qc::TraceRequest& req,
                    qc::AcquiredTrace& out) override {
    qu::Rng rng = qu::split_stream(req.seed, req.index);
    const std::uint8_t p = rng.byte();
    out.trace.reset(0.0, 10.0, 128);
    for (std::size_t j = 0; j < 128; ++j)
      out.trace[j] = rng.gaussian(0.0, 1.0);
    out.trace[31] += static_cast<double>(
        __builtin_popcount(qdi::crypto::aes_sbox(static_cast<std::uint8_t>(p ^ 0x3c))));
    out.plaintext.assign(1, p);
    out.ciphertext.clear();
    out.transitions = 0;
    out.glitches = 0;
  }
  std::unique_ptr<qc::TraceSource> clone() const override {
    return std::make_unique<SyntheticSource>();
  }
  std::string name() const override { return "synthetic"; }
};

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

qc::CampaignResult fused_synthetic(std::size_t traces) {
  return qc::Campaign()
      .target(qc::aes_byte_slice())
      .key(0x3c)
      .traces(traces)
      .fused(1024)
      .source([](const qc::TargetInstance&, const qc::SimTraceSourceOptions&) {
        return std::make_unique<SyntheticSource>();
      })
      .attack(qc::Cpa{})
      .run();
}

}  // namespace

#if defined(__SANITIZE_ADDRESS__)
#define QDI_ASAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define QDI_ASAN_ACTIVE 1
#endif
#endif

TEST(FusedCampaign, PeakRssIndependentOfTraceCount) {
#ifdef QDI_ASAN_ACTIVE
  // ASan's quarantine keeps freed per-trace blocks resident, so peak RSS
  // tracks total allocation volume, not the live set this test bounds.
  GTEST_SKIP() << "peak-RSS bound is meaningless under AddressSanitizer";
#endif
  // Warm up allocator + accumulators at 10k traces, then run 100k. A
  // materialized 100k×128-sample TraceSet alone would add ~100 MB; the
  // fused path must stay within a small constant of the 10k run.
  const qc::CampaignResult small = fused_synthetic(10'000);
  ASSERT_EQ(small.attack->best_guess, 0x3cu);
  const long rss_after_small = peak_rss_kb();

  const qc::CampaignResult big = fused_synthetic(100'000);
  ASSERT_EQ(big.attack->best_guess, 0x3cu);
  const long rss_after_big = peak_rss_kb();

  EXPECT_LT(rss_after_big - rss_after_small, 32 * 1024)
      << "fused campaign peak RSS grew with the trace count";
}

#endif  // __linux__
