// Batch-engine equivalence and guard-rail tests.
//
// The 64-lane BatchSimulator must be bit-identical PER TRACE to the
// scalar engines: the same (seed, index) request produces the same power
// samples, ciphertext, transition count, and glitch count whether it ran
// as a scalar wheel acquisition, one lane of a full 64-lane block, or a
// lane of the partial final block of a campaign — for any worker thread
// count. These tests pin that over every simulatable registry target,
// plus the explicit refusals for the combinations the batch kernel does
// not support (fault injection, flow-only targets, non-levelizable
// netlists, tolerant handshakes).
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "qdi/campaign/batch_trace_source.hpp"
#include "qdi/campaign/campaign.hpp"
#include "qdi/campaign/target.hpp"
#include "qdi/sim/batch_simulator.hpp"

namespace qc = qdi::campaign;
namespace qn = qdi::netlist;
namespace qs = qdi::sim;

namespace {

qdi::dpa::TraceSet acquire(const qc::TargetInstance& inst, qs::EngineKind kind,
                           unsigned threads, qc::AcquisitionStats* stats,
                           std::size_t n, double jitter_ps = 0.0,
                           double noise = 0.0) {
  qc::SimTraceSourceOptions opt;
  opt.engine = kind;
  opt.start_jitter_ps = jitter_ps;
  opt.power.noise_sigma_ua = noise;
  std::unique_ptr<qc::TraceSource> src;
  if (kind == qs::EngineKind::Batch)
    src = std::make_unique<qc::BatchSimTraceSource>(inst.nl, inst.env,
                                                    inst.stimulus, opt);
  else
    src = std::make_unique<qc::SimTraceSource>(inst.nl, inst.env,
                                               inst.stimulus, opt);
  return qc::acquire_batch(*src, n, /*seed=*/42, threads, stats);
}

void expect_bit_identical(const qdi::dpa::TraceSet& a,
                          const qdi::dpa::TraceSet& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_samples(), b.num_samples());
  const auto bytes = [](std::span<const std::uint8_t> s) {
    return std::vector<std::uint8_t>(s.begin(), s.end());
  };
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(bytes(a.plaintext(i)), bytes(b.plaintext(i))) << "trace " << i;
    ASSERT_EQ(bytes(a.ciphertext(i)), bytes(b.ciphertext(i))) << "trace " << i;
    for (std::size_t j = 0; j < a.num_samples(); ++j)
      ASSERT_EQ(a.trace(i)[j], b.trace(i)[j])
          << "trace " << i << " sample " << j;
  }
}

}  // namespace

// ---- registry-wide per-trace equivalence -----------------------------------

TEST(BatchEquivalence, AllRegistryTargetsBitIdenticalToWheelAnyThreadCount) {
  // 70 traces = one full 64-lane block plus a 6-lane partial block, so
  // the partial-batch path runs on every target.
  constexpr std::size_t kTraces = 70;
  for (const std::string& name : qc::list_targets()) {
    SCOPED_TRACE(name);
    const qc::TargetInstance inst = qc::find_target(name).build(0x2b);
    if (!inst.simulatable || !inst.stimulus) continue;

    qc::AcquisitionStats ref_stats;
    const qdi::dpa::TraceSet ref =
        acquire(inst, qs::EngineKind::Compiled, 1, &ref_stats, kTraces);

    for (unsigned threads : {1u, 3u}) {
      SCOPED_TRACE(threads);
      qc::AcquisitionStats stats;
      const qdi::dpa::TraceSet batch =
          acquire(inst, qs::EngineKind::Batch, threads, &stats, kTraces);
      expect_bit_identical(ref, batch);
      EXPECT_EQ(stats.transitions, ref_stats.transitions);
      EXPECT_EQ(stats.glitches, ref_stats.glitches);
      EXPECT_EQ(stats.per_trace_transitions, ref_stats.per_trace_transitions);
    }
  }
}

TEST(BatchEquivalence, JitterAndNoiseStreamsMatchWheel) {
  // Jitter de-aligns the per-lane power windows (the accumulator's
  // per-lane replay path); noise exercises the per-lane RNG draw order.
  const qc::TargetInstance inst = qc::xor_stage().build(0);
  const qdi::dpa::TraceSet ref = acquire(inst, qs::EngineKind::Compiled, 1,
                                         nullptr, 70, 300.0, 1.5);
  const qdi::dpa::TraceSet batch = acquire(inst, qs::EngineKind::Batch, 2,
                                           nullptr, 70, 300.0, 1.5);
  expect_bit_identical(ref, batch);
}

TEST(BatchEquivalence, PhaseAlignedHandshakesMatchWheel) {
  // phase_align_ps snaps every handshake drive onto a coarse tester
  // grid; both environments must round the same way, so the aligned
  // per-trace streams stay bit-identical between the engines.
  qc::TargetInstance inst = qc::des_sbox_slice().build(0x2b);
  inst.env.phase_align_ps = 200.0;
  const qdi::dpa::TraceSet ref =
      acquire(inst, qs::EngineKind::Compiled, 1, nullptr, 70);
  const qdi::dpa::TraceSet batch =
      acquire(inst, qs::EngineKind::Batch, 2, nullptr, 70);
  expect_bit_identical(ref, batch);
}

TEST(BatchEquivalence, BlockPartitionIsNotObservable) {
  // The same trace index must produce the same record as a 1-lane
  // block, as a lane of a full 64-lane block, and as a lane of a
  // partial block — lane independence is what makes the WorkerPool's
  // block partition a pure scheduling choice.
  const qc::TargetInstance inst = qc::des_sbox_slice().build(0x15);
  qc::SimTraceSourceOptions opt;
  opt.engine = qs::EngineKind::Batch;
  qc::BatchSimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);

  std::vector<qc::AcquiredTrace> full(64);
  src.acquire_block(42, 0, 64, full.data());

  qc::BatchSimTraceSource single(inst.nl, inst.env, inst.stimulus, opt);
  for (std::size_t i : {std::size_t{0}, std::size_t{17}, std::size_t{63}}) {
    SCOPED_TRACE(i);
    qc::AcquiredTrace one;
    single.acquire_into({42, i}, one);
    ASSERT_EQ(one.trace.size(), full[i].trace.size());
    for (std::size_t j = 0; j < one.trace.size(); ++j)
      ASSERT_EQ(one.trace[j], full[i].trace[j]) << "sample " << j;
    EXPECT_EQ(one.ciphertext, full[i].ciphertext);
    EXPECT_EQ(one.plaintext, full[i].plaintext);
    EXPECT_EQ(one.transitions, full[i].transitions);
    EXPECT_EQ(one.glitches, full[i].glitches);
  }

  // A partial block starting mid-campaign reproduces the same indices.
  qc::BatchSimTraceSource partial(inst.nl, inst.env, inst.stimulus, opt);
  std::vector<qc::AcquiredTrace> tail(5);
  partial.acquire_block(42, 17, 5, tail.data());
  for (std::size_t l = 0; l < 2; ++l) {
    ASSERT_EQ(tail[l].trace.size(), full[17 + l].trace.size());
    for (std::size_t j = 0; j < tail[l].trace.size(); ++j)
      ASSERT_EQ(tail[l].trace[j], full[17 + l].trace[j]);
    EXPECT_EQ(tail[l].ciphertext, full[17 + l].ciphertext);
  }
}

// ---- campaign-level equivalence --------------------------------------------

TEST(BatchCampaign, AttackOutcomeMatchesCompiledEngine) {
  const auto run = [](qs::EngineKind kind) {
    return qc::Campaign()
        .target(qc::aes_byte_slice())
        .key(0x2b)
        .traces(96)
        .threads(2)
        .engine(kind)
        .attack(qc::Dpa{})
        .run();
  };
  const qc::CampaignResult compiled = run(qs::EngineKind::Compiled);
  const qc::CampaignResult batch = run(qs::EngineKind::Batch);
  ASSERT_TRUE(compiled.attack.has_value());
  ASSERT_TRUE(batch.attack.has_value());
  EXPECT_EQ(compiled.attack->best_guess, batch.attack->best_guess);
  EXPECT_EQ(compiled.attack->true_key_rank, batch.attack->true_key_rank);
  // Same traces in, same accumulator order: scores are bit-identical.
  EXPECT_EQ(compiled.attack->guess_scores, batch.attack->guess_scores);
  EXPECT_EQ(compiled.acquisition.transitions, batch.acquisition.transitions);
}

// ---- lockstep statistics ---------------------------------------------------

TEST(BatchKernel, LockstepOccupancyIsHighOnRegistryTargets) {
  // QDI handshake skeletons keep most lanes on the same (t, net) keys;
  // if occupancy degenerated toward 1 the engine would silently run at
  // scalar cost. Pin a generous floor so a lockstep regression shows up.
  const qc::TargetInstance inst = qc::aes_byte_slice().build(0x2b);
  qc::SimTraceSourceOptions opt;
  opt.engine = qs::EngineKind::Batch;
  qc::BatchSimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);
  std::vector<qc::AcquiredTrace> out(64);
  src.acquire_block(1, 0, 64, out.data());
  EXPECT_GT(src.mean_lane_occupancy(), 4.0);
}

// ---- guard rails: unsupported combinations throw ---------------------------

TEST(BatchGuards, FlowOnlyTargetIsRejectedByValidate) {
  // A flow-only victim (explicitly opted out of simulation — aes_core
  // itself simulates these days) has nothing to acquire, batch or not.
  qc::TargetInstance flow_only;
  flow_only.nl = qn::Netlist("flow_only");
  flow_only.simulatable = false;
  flow_only.name = "flow_only";
  EXPECT_THROW(qc::Campaign()
                   .target(qc::prebuilt(std::move(flow_only)))
                   .key(0x2b)
                   .traces(64)
                   .engine(qs::EngineKind::Batch)
                   .run(),
               std::invalid_argument);
}

TEST(BatchGuards, NonLevelizableConeIsRefusedNamingTheCell) {
  // A cross-coupled NAND latch smuggled in as combinational cells: the
  // batch compile must refuse it (word-parallel evaluation would be
  // order-sensitive) and name the offending cell instead of silently
  // falling back to a scalar engine.
  qn::Netlist nl("sr_latch");
  const qn::NetId s = nl.add_input("s");
  const qn::NetId r = nl.add_input("r");
  const qn::NetId q = nl.add_net("q");
  const qn::NetId qb = nl.add_net("qb");
  nl.add_cell(qn::CellKind::Nand2, "nand_q", {s, qb}, q);
  nl.add_cell(qn::CellKind::Nand2, "nand_qb", {r, q}, qb);
  try {
    qs::compile_batch(nl);
    FAIL() << "compile_batch accepted a combinational cycle";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nand_q"), std::string::npos) << msg;
    EXPECT_NE(msg.find("combinational cycle"), std::string::npos) << msg;
  }
}

TEST(BatchGuards, MullerCutPointsMakeTheSameConeLevelizable) {
  // The same cross-coupling through a Muller cell is a legal QDI cone:
  // state-holding cells are cut points, so batch compilation accepts it.
  qn::Netlist nl("c_loop");
  const qn::NetId a = nl.add_input("a");
  const qn::NetId b = nl.add_input("b");
  const qn::NetId q = nl.add_net("q");
  const qn::NetId inv = nl.add_net("inv");
  nl.add_cell(qn::CellKind::Muller2, "c_el", {a, inv}, q);
  nl.add_cell(qn::CellKind::Inv, "fb", {q}, inv);
  (void)b;
  EXPECT_NO_THROW(qs::compile_batch(nl));
}

TEST(BatchGuards, FaultCampaignRejectsBatchEngine) {
  qc::FaultCampaignOptions opt;
  opt.engine = qs::EngineKind::Batch;
  const qc::TargetInstance inst = qc::des_sbox_slice().build(0x15);
  EXPECT_THROW(qc::run_fault_campaign(inst, 0x15, opt, 1, 1),
               std::invalid_argument);
  // The campaign front end rejects the combination up front too.
  EXPECT_THROW(qc::Campaign()
                   .target(qc::des_sbox_slice())
                   .key(0x15)
                   .traces(8)
                   .engine(qs::EngineKind::Batch)
                   .faults(qc::FaultCampaignOptions{})
                   .run(),
               std::invalid_argument);
}

TEST(BatchGuards, ScalarSourceRejectsBatchEngineKind) {
  const qc::TargetInstance inst = qc::xor_stage().build(0);
  qc::SimTraceSourceOptions opt;
  opt.engine = qs::EngineKind::Batch;
  EXPECT_THROW(qc::SimTraceSource(inst.nl, inst.env, inst.stimulus, opt),
               std::invalid_argument);
}

TEST(BatchGuards, TolerantEnvironmentIsRejected) {
  const qc::TargetInstance inst = qc::xor_stage().build(0);
  auto batch = qs::compile_batch(inst.nl);
  qs::BatchSimulator sim(batch);
  qs::EnvSpec spec = inst.env;
  spec.strict = false;
  EXPECT_THROW(qs::BatchFourPhaseEnv(sim, spec), std::invalid_argument);
}

// ---- precompiled reuse ------------------------------------------------------

TEST(BatchSource, PrecompiledNetlistIsSharedNotRecompiled) {
  const qc::TargetInstance inst = qc::xor_stage().build(0);
  auto cn = qs::compile(inst.nl);
  qc::SimTraceSourceOptions opt;
  opt.engine = qs::EngineKind::Batch;
  opt.precompiled = cn;
  qc::BatchSimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);
  qc::AcquiredTrace slot;
  src.acquire_into({7, 0}, slot);

  qc::SimTraceSourceOptions plain;
  plain.engine = qs::EngineKind::Batch;
  qc::BatchSimTraceSource fresh(inst.nl, inst.env, inst.stimulus, plain);
  qc::AcquiredTrace expect;
  fresh.acquire_into({7, 0}, expect);
  ASSERT_EQ(slot.trace.size(), expect.trace.size());
  for (std::size_t j = 0; j < slot.trace.size(); ++j)
    ASSERT_EQ(slot.trace[j], expect.trace[j]);
  EXPECT_EQ(slot.ciphertext, expect.ciphertext);
}
