#include <gtest/gtest.h>

#include <cstdint>

#include "qdi/crypto/aes.hpp"
#include "qdi/util/rng.hpp"

namespace qc = qdi::crypto;

namespace {
qc::Block block_from(const std::uint8_t (&bytes)[16]) {
  qc::Block b;
  for (int i = 0; i < 16; ++i) b[static_cast<std::size_t>(i)] = bytes[i];
  return b;
}
}  // namespace

TEST(AesSbox, KnownValues) {
  // FIPS-197 table spot checks.
  EXPECT_EQ(qc::aes_sbox(0x00), 0x63);
  EXPECT_EQ(qc::aes_sbox(0x01), 0x7c);
  EXPECT_EQ(qc::aes_sbox(0x53), 0xed);
  EXPECT_EQ(qc::aes_sbox(0xff), 0x16);
}

TEST(AesSbox, IsBijective) {
  bool seen[256] = {};
  for (int x = 0; x < 256; ++x) {
    const std::uint8_t y = qc::aes_sbox(static_cast<std::uint8_t>(x));
    EXPECT_FALSE(seen[y]);
    seen[y] = true;
  }
}

TEST(AesSbox, InverseRoundTrips) {
  for (int x = 0; x < 256; ++x) {
    const std::uint8_t v = static_cast<std::uint8_t>(x);
    EXPECT_EQ(qc::aes_inv_sbox(qc::aes_sbox(v)), v);
  }
}

TEST(AesSbox, OutputBitsAreBalanced) {
  // Each output bit is 1 for exactly 128 of the 256 inputs — the property
  // that makes the QDI S-Box OR trees identical on both rails.
  for (int bit = 0; bit < 8; ++bit) {
    int ones = 0;
    for (int x = 0; x < 256; ++x)
      ones += (qc::aes_sbox(static_cast<std::uint8_t>(x)) >> bit) & 1;
    EXPECT_EQ(ones, 128) << "bit " << bit;
  }
}

TEST(GfMul, KnownProducts) {
  EXPECT_EQ(qc::gf_mul(0x57, 0x83), 0xc1);  // FIPS-197 example
  EXPECT_EQ(qc::gf_mul(0x57, 0x13), 0xfe);
  EXPECT_EQ(qc::xtime(0x57), 0xae);
  EXPECT_EQ(qc::xtime(0xae), 0x47);
}

TEST(GfMul, IdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const std::uint8_t v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(qc::gf_mul(v, 1), v);
    EXPECT_EQ(qc::gf_mul(v, 0), 0);
    EXPECT_EQ(qc::gf_mul(1, v), v);
  }
}

TEST(GfMul, Commutative) {
  qdi::util::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const std::uint8_t a = rng.byte(), b = rng.byte();
    EXPECT_EQ(qc::gf_mul(a, b), qc::gf_mul(b, a));
  }
}

TEST(Aes128, Fips197AppendixBVector) {
  const std::uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const std::uint8_t pt[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                               0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const std::uint8_t ct[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                               0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  qc::Aes128Key k;
  for (int i = 0; i < 16; ++i) k[static_cast<std::size_t>(i)] = key[i];
  const qc::Aes128 aes(k);
  EXPECT_EQ(aes.encrypt(block_from(pt)), block_from(ct));
  EXPECT_EQ(aes.decrypt(block_from(ct)), block_from(pt));
}

TEST(Aes128, Fips197AppendixCVector) {
  const std::uint8_t key[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const std::uint8_t pt[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                               0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const std::uint8_t ct[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                               0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  qc::Aes128Key k;
  for (int i = 0; i < 16; ++i) k[static_cast<std::size_t>(i)] = key[i];
  const qc::Aes128 aes(k);
  EXPECT_EQ(aes.encrypt(block_from(pt)), block_from(ct));
  EXPECT_EQ(aes.decrypt(block_from(ct)), block_from(pt));
}

TEST(Aes128, RoundKey0IsCipherKey) {
  qc::Aes128Key k;
  for (int i = 0; i < 16; ++i) k[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i * 7);
  const qc::Aes128 aes(k);
  const auto rk0 = aes.round_key(0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rk0[static_cast<std::size_t>(i)], k[static_cast<std::size_t>(i)]);
}

class AesRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AesRoundTrip, DecryptInvertsEncrypt) {
  qdi::util::Rng rng(GetParam());
  qc::Aes128Key k;
  qc::Block pt;
  for (auto& b : k) b = rng.byte();
  for (auto& b : pt) b = rng.byte();
  const qc::Aes128 aes(k);
  EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, AesRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(AesRounds, ShiftRowsInverse) {
  qdi::util::Rng rng(77);
  for (int t = 0; t < 50; ++t) {
    qc::Block s;
    for (auto& b : s) b = rng.byte();
    qc::Block u = s;
    qc::shift_rows(u);
    qc::inv_shift_rows(u);
    EXPECT_EQ(u, s);
  }
}

TEST(AesRounds, MixColumnsInverse) {
  qdi::util::Rng rng(78);
  for (int t = 0; t < 50; ++t) {
    qc::Block s;
    for (auto& b : s) b = rng.byte();
    qc::Block u = s;
    qc::mix_columns(u);
    qc::inv_mix_columns(u);
    EXPECT_EQ(u, s);
  }
}

TEST(AesRounds, MixColumnsKnownColumn) {
  // FIPS-197 §5.1.3 example column: db 13 53 45 -> 8e 4d a1 bc.
  qc::Block s{};
  s[0] = 0xdb;
  s[1] = 0x13;
  s[2] = 0x53;
  s[3] = 0x45;
  qc::mix_columns(s);
  EXPECT_EQ(s[0], 0x8e);
  EXPECT_EQ(s[1], 0x4d);
  EXPECT_EQ(s[2], 0xa1);
  EXPECT_EQ(s[3], 0xbc);
}

TEST(AesRounds, AddRoundKeyIsInvolution) {
  qdi::util::Rng rng(79);
  qc::Block s;
  std::array<std::uint8_t, 16> rk;
  for (auto& b : s) b = rng.byte();
  for (auto& b : rk) b = rng.byte();
  qc::Block u = s;
  qc::add_round_key(u, rk);
  qc::add_round_key(u, rk);
  EXPECT_EQ(u, s);
}

TEST(Aes128, FirstRoundTargets) {
  qc::Aes128Key k{};
  k[0] = 0xa5;
  const qc::Aes128 aes(k);
  qc::Block pt{};
  pt[0] = 0x3c;
  EXPECT_EQ(aes.first_round_xor(pt)[0], 0x3c ^ 0xa5);
  EXPECT_EQ(aes.first_round_sbox(pt)[0], qc::aes_sbox(0x3c ^ 0xa5));
}
