#include <gtest/gtest.h>

#include <cmath>

#include "qdi/gates/testbench.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"

namespace qp = qdi::power;
namespace qs = qdi::sim;
namespace qg = qdi::gates;

TEST(TriangleOverlap, IntegratesToOne) {
  for (double width : {1.0, 7.5, 40.0}) {
    double total = 0.0;
    const double bin = 3.0;
    for (double a = -10.0; a < 60.0; a += bin)
      total += qp::triangle_overlap(0.0, width, a, a + bin);
    EXPECT_NEAR(total, 1.0, 1e-12) << "width " << width;
  }
}

TEST(TriangleOverlap, SymmetricAroundApex) {
  const double w = 10.0;
  const double left = qp::triangle_overlap(0.0, w, 0.0, 5.0);
  const double right = qp::triangle_overlap(0.0, w, 5.0, 10.0);
  EXPECT_NEAR(left, right, 1e-12);
  EXPECT_NEAR(left, 0.5, 1e-12);
}

TEST(TriangleOverlap, OutsideSupportIsZero) {
  EXPECT_DOUBLE_EQ(qp::triangle_overlap(100.0, 10.0, 0.0, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(qp::triangle_overlap(100.0, 10.0, 120.0, 130.0), 0.0);
}

TEST(TriangleOverlap, DegenerateImpulse) {
  EXPECT_DOUBLE_EQ(qp::triangle_overlap(5.0, 0.0, 0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(qp::triangle_overlap(15.0, 0.0, 0.0, 10.0), 0.0);
}

TEST(PowerTrace, ArithmeticAndCharge) {
  qp::PowerTrace a(0.0, 2.0, 4);
  a[0] = 1.0;
  a[1] = 3.0;
  qp::PowerTrace b(0.0, 2.0, 4);
  b[0] = 0.5;
  b += a;
  EXPECT_DOUBLE_EQ(b[0], 1.5);
  EXPECT_DOUBLE_EQ(b[1], 3.0);
  b -= a;
  EXPECT_DOUBLE_EQ(b[0], 0.5);
  b *= 2.0;
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(a.total_charge_fc(), (1.0 + 3.0) * 2.0);
  EXPECT_DOUBLE_EQ(a.time_of(0), 1.0);
}

namespace {
std::vector<qs::Transition> one_transition(double t, bool rising, double cap,
                                           double slew) {
  qs::Transition tr;
  tr.t_ps = t;
  tr.net = 0;
  tr.rising = rising;
  tr.cap_ff = cap;
  tr.slew_ps = slew;
  return {tr};
}
}  // namespace

TEST(Synthesize, ChargeExactness) {
  // One rising transition: integral of the trace = weight * C_total * Vdd,
  // in µA·ps after the mA -> µA scaling (x1000 cancels against fC units).
  qp::PowerModelParams pm;
  pm.sample_period_ps = 5.0;
  const auto trs = one_transition(200.0, true, 8.0, 50.0);
  const qp::PowerTrace trace = qp::synthesize(trs, 0.0, 1000.0, pm, nullptr);
  const double q_expected = 1000.0 * pm.total_cap_ff(8.0) * pm.vdd;  // µA·ps
  EXPECT_NEAR(trace.total_charge_fc(), q_expected, 1e-9);
}

TEST(Synthesize, FallingEdgeIsWeighted) {
  qp::PowerModelParams pm;
  const qp::PowerTrace up =
      qp::synthesize(one_transition(200.0, true, 8.0, 50.0), 0.0, 500.0, pm, nullptr);
  const qp::PowerTrace dn =
      qp::synthesize(one_transition(200.0, false, 8.0, 50.0), 0.0, 500.0, pm, nullptr);
  EXPECT_NEAR(dn.total_charge_fc() / up.total_charge_fc(),
              pm.fall_weight / pm.rise_weight, 1e-9);
}

TEST(Synthesize, PulseEndsAtCommitTime) {
  qp::PowerModelParams pm;
  pm.sample_period_ps = 1.0;
  const auto trs = one_transition(300.0, true, 8.0, 40.0);
  const qp::PowerTrace trace = qp::synthesize(trs, 0.0, 600.0, pm, nullptr);
  // All charge must lie in [260, 300].
  for (std::size_t j = 0; j < trace.size(); ++j) {
    const double t = trace.time_of(j);
    if (t < 259.0 || t > 301.0) EXPECT_EQ(trace[j], 0.0) << t;
  }
  EXPECT_GT(trace[280], 0.0);
}

TEST(Synthesize, WindowClipping) {
  qp::PowerModelParams pm;
  // Transition entirely before the window contributes nothing.
  const qp::PowerTrace t1 =
      qp::synthesize(one_transition(100.0, true, 8.0, 20.0), 500.0, 300.0, pm, nullptr);
  EXPECT_DOUBLE_EQ(t1.total_charge_fc(), 0.0);
  // Transition straddling the window start contributes partially.
  const qp::PowerTrace t2 =
      qp::synthesize(one_transition(510.0, true, 8.0, 40.0), 500.0, 300.0, pm, nullptr);
  EXPECT_GT(t2.total_charge_fc(), 0.0);
  const double full = 1000.0 * pm.total_cap_ff(8.0) * pm.vdd;
  EXPECT_LT(t2.total_charge_fc(), full);
}

TEST(Synthesize, BiggerCapMeansMoreChargeAndWiderPulse) {
  qp::PowerModelParams pm;
  pm.sample_period_ps = 1.0;
  const qp::PowerTrace small =
      qp::synthesize(one_transition(200.0, true, 4.0, 30.0), 0.0, 400.0, pm, nullptr);
  const qp::PowerTrace big =
      qp::synthesize(one_transition(200.0, true, 40.0, 210.0), 0.0, 400.0, pm, nullptr);
  EXPECT_GT(big.total_charge_fc(), small.total_charge_fc());
  // Wider pulse: the big-cap trace has more non-zero samples.
  std::size_t nz_small = 0, nz_big = 0;
  for (std::size_t j = 0; j < small.size(); ++j) {
    if (small[j] > 0.0) ++nz_small;
    if (big[j] > 0.0) ++nz_big;
  }
  EXPECT_GT(nz_big, nz_small);
}

TEST(Synthesize, NoiseIsSeededAndZeroMean) {
  qp::PowerModelParams pm;
  pm.noise_sigma_ua = 2.0;
  const std::vector<qs::Transition> none;
  qdi::util::Rng r1(99), r2(99), r3(100);
  const qp::PowerTrace a = qp::synthesize(none, 0.0, 10000.0, pm, &r1);
  const qp::PowerTrace b = qp::synthesize(none, 0.0, 10000.0, pm, &r2);
  const qp::PowerTrace c = qp::synthesize(none, 0.0, 10000.0, pm, &r3);
  for (std::size_t j = 0; j < a.size(); ++j) EXPECT_DOUBLE_EQ(a[j], b[j]);
  bool differs = false;
  for (std::size_t j = 0; j < a.size(); ++j)
    if (a[j] != c[j]) differs = true;
  EXPECT_TRUE(differs);
  // Mean near zero.
  double mean = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) mean += a[j];
  mean /= static_cast<double>(a.size());
  EXPECT_NEAR(mean, 0.0, 0.3);
}

TEST(Synthesize, ZeroNoiseWithoutRng) {
  qp::PowerModelParams pm;
  pm.noise_sigma_ua = 5.0;  // ignored without an Rng
  const std::vector<qs::Transition> none;
  const qp::PowerTrace t = qp::synthesize(none, 0.0, 1000.0, pm, nullptr);
  for (std::size_t j = 0; j < t.size(); ++j) EXPECT_DOUBLE_EQ(t[j], 0.0);
}

TEST(Synthesize, XorCycleTraceHasBothPhases) {
  // Integration: the fig. 6 setup — a full XOR cycle produces current
  // activity in the evaluation phase and in the return-to-zero phase.
  qg::XorStage x = qg::build_xor_stage();
  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  sim.clear_log();
  const std::vector<int> v{1, 0};
  const auto cyc = env.send(v);
  ASSERT_TRUE(cyc.ok);
  qp::PowerModelParams pm;
  const qp::PowerTrace trace =
      qp::synthesize(sim.log(), cyc.t_start, x.env.period_ps, pm, nullptr);
  // Charge in the evaluation window and in the RTZ window must both be
  // strictly positive.
  double q_eval = 0.0, q_rtz = 0.0;
  for (std::size_t j = 0; j < trace.size(); ++j) {
    const double t = trace.time_of(j);
    if (t <= cyc.t_valid)
      q_eval += trace[j];
    else if (t >= cyc.t_valid && t <= cyc.t_empty)
      q_rtz += trace[j];
  }
  EXPECT_GT(q_eval, 0.0);
  EXPECT_GT(q_rtz, 0.0);
}
