#include <gtest/gtest.h>

#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"
#include "qdi/dpa/acquisition.hpp"

// This file deliberately exercises the deprecated acquire_* back-compat
// wrappers alongside their replacements.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace qd = qdi::dpa;
namespace qg = qdi::gates;
namespace qc = qdi::crypto;

TEST(Acquisition, AesSliceCiphertextsMatchGoldenModel) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  qd::Acquisition cfg;
  cfg.num_traces = 40;
  cfg.seed = 11;
  const qd::TraceSet ts = qd::acquire_aes_byte_slice(slice, 0x2b, cfg);
  ASSERT_EQ(ts.size(), 40u);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const std::uint8_t p = ts.plaintext(i)[0];
    EXPECT_EQ(ts.ciphertext(i)[0],
              qc::aes_sbox(static_cast<std::uint8_t>(p ^ 0x2b)))
        << "trace " << i;
  }
}

TEST(Acquisition, TracesHaveUniformGeometryAndActivity) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  qd::Acquisition cfg;
  cfg.num_traces = 10;
  const qd::TraceSet ts = qd::acquire_aes_byte_slice(slice, 0x00, cfg);
  const std::size_t n = ts.num_samples();
  EXPECT_GT(n, 0u);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(ts.trace(i).size(), n);
    EXPECT_GT(ts.trace(i).total_charge_fc(), 0.0);  // real switching activity
  }
}

TEST(Acquisition, DeterministicPerSeed) {
  qg::AesByteSlice s1 = qg::build_aes_byte_slice();
  qg::AesByteSlice s2 = qg::build_aes_byte_slice();
  qd::Acquisition cfg;
  cfg.num_traces = 6;
  cfg.seed = 33;
  cfg.power.noise_sigma_ua = 1.0;
  const qd::TraceSet a = qd::acquire_aes_byte_slice(s1, 0x55, cfg);
  const qd::TraceSet b = qd::acquire_aes_byte_slice(s2, 0x55, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.plaintext(i)[0], b.plaintext(i)[0]);
    for (std::size_t j = 0; j < a.num_samples(); ++j)
      ASSERT_DOUBLE_EQ(a.trace(i)[j], b.trace(i)[j]);
  }
}

TEST(Acquisition, SeedsChangePlaintextSequence) {
  qg::AesByteSlice s1 = qg::build_aes_byte_slice();
  qg::AesByteSlice s2 = qg::build_aes_byte_slice();
  qd::Acquisition c1, c2;
  c1.num_traces = c2.num_traces = 16;
  c1.seed = 1;
  c2.seed = 2;
  const qd::TraceSet a = qd::acquire_aes_byte_slice(s1, 0x55, c1);
  const qd::TraceSet b = qd::acquire_aes_byte_slice(s2, 0x55, c2);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.plaintext(i)[0] != b.plaintext(i)[0]) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Acquisition, DesSliceCiphertextsMatchGoldenModel) {
  qg::DesSboxSlice slice = qg::build_des_sbox_slice(0);
  qd::Acquisition cfg;
  cfg.num_traces = 30;
  const qd::TraceSet ts = qd::acquire_des_sbox_slice(slice, 0x27, cfg);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const std::uint8_t p = ts.plaintext(i)[0];
    EXPECT_LT(p, 64);
    EXPECT_EQ(ts.ciphertext(i)[0],
              qc::des_sbox(0, static_cast<std::uint8_t>(p ^ 0x27)));
  }
}

TEST(Acquisition, XorStageRecordsBothBits) {
  qg::XorStage x = qg::build_xor_stage();
  qd::Acquisition cfg;
  cfg.num_traces = 20;
  const qd::TraceSet ts = qd::acquire_xor_stage(x, cfg);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_LE(ts.plaintext(i)[0], 1);
    EXPECT_LE(ts.plaintext(i)[1], 1);
    EXPECT_EQ(ts.ciphertext(i)[0],
              ts.plaintext(i)[0] ^ ts.plaintext(i)[1]);
  }
}

TEST(Acquisition, BalancedSliceShowsNoKeyDependentCharge) {
  // With uniform caps (no P&R), total per-trace charge must be identical
  // across plaintexts — the QDI balance property seen from the power side.
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  qd::Acquisition cfg;
  cfg.num_traces = 24;
  const qd::TraceSet ts = qd::acquire_aes_byte_slice(slice, 0x99, cfg);
  const double q0 = ts.trace(0).total_charge_fc();
  for (std::size_t i = 1; i < ts.size(); ++i)
    EXPECT_NEAR(ts.trace(i).total_charge_fc(), q0, q0 * 1e-9);
}
