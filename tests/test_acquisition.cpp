// Acquisition-layer tests against the campaign trace source (the
// replacement for the removed per-circuit dpa::acquire_* wrappers) plus
// the retained generic dpa::acquire engine.
#include <gtest/gtest.h>

#include "qdi/campaign/target.hpp"
#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"
#include "qdi/dpa/acquisition.hpp"
#include "qdi/gates/testbench.hpp"

namespace qc = qdi::campaign;
namespace qd = qdi::dpa;
namespace qg = qdi::gates;
namespace qy = qdi::crypto;

namespace {

/// Acquire `n` traces from a built target instance through the campaign
/// trace source (compiled engine, the default).
qd::TraceSet acquire(const qc::TargetInstance& inst, std::size_t n,
                     std::uint64_t seed,
                     qc::SimTraceSourceOptions opt = {}) {
  qc::SimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);
  return qc::acquire_batch(src, n, seed);
}

}  // namespace

TEST(Acquisition, AesSliceCiphertextsMatchGoldenModel) {
  const qc::TargetInstance inst = qc::aes_byte_slice().build(0x2b);
  const qd::TraceSet ts = acquire(inst, 40, 11);
  ASSERT_EQ(ts.size(), 40u);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const std::uint8_t p = ts.plaintext(i)[0];
    EXPECT_EQ(ts.ciphertext(i)[0],
              qy::aes_sbox(static_cast<std::uint8_t>(p ^ 0x2b)))
        << "trace " << i;
  }
}

TEST(Acquisition, TracesHaveUniformGeometryAndActivity) {
  const qc::TargetInstance inst = qc::aes_byte_slice().build(0x00);
  const qd::TraceSet ts = acquire(inst, 10, 1);
  const std::size_t n = ts.num_samples();
  EXPECT_GT(n, 0u);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(ts.trace(i).size(), n);
    EXPECT_GT(ts.trace(i).total_charge_fc(), 0.0);  // real switching activity
  }
}

TEST(Acquisition, DeterministicPerSeed) {
  const qc::TargetInstance i1 = qc::aes_byte_slice().build(0x55);
  const qc::TargetInstance i2 = qc::aes_byte_slice().build(0x55);
  qc::SimTraceSourceOptions opt;
  opt.power.noise_sigma_ua = 1.0;
  const qd::TraceSet a = acquire(i1, 6, 33, opt);
  const qd::TraceSet b = acquire(i2, 6, 33, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.plaintext(i)[0], b.plaintext(i)[0]);
    for (std::size_t j = 0; j < a.num_samples(); ++j)
      ASSERT_DOUBLE_EQ(a.trace(i)[j], b.trace(i)[j]);
  }
}

TEST(Acquisition, SeedsChangePlaintextSequence) {
  const qc::TargetInstance inst = qc::aes_byte_slice().build(0x55);
  const qd::TraceSet a = acquire(inst, 16, 1);
  const qd::TraceSet b = acquire(inst, 16, 2);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.plaintext(i)[0] != b.plaintext(i)[0]) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Acquisition, DesSliceCiphertextsMatchGoldenModel) {
  const qc::TargetInstance inst = qc::des_sbox_slice().build(0x27);
  const qd::TraceSet ts = acquire(inst, 30, 1);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const std::uint8_t p = ts.plaintext(i)[0];
    EXPECT_LT(p, 64);
    EXPECT_EQ(ts.ciphertext(i)[0],
              qy::des_sbox(0, static_cast<std::uint8_t>(p ^ 0x27)));
  }
}

TEST(Acquisition, XorStageRecordsBothBits) {
  const qc::TargetInstance inst = qc::xor_stage().build(0);
  const qd::TraceSet ts = acquire(inst, 20, 1);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_LE(ts.plaintext(i)[0], 1);
    EXPECT_LE(ts.plaintext(i)[1], 1);
    EXPECT_EQ(ts.ciphertext(i)[0],
              ts.plaintext(i)[0] ^ ts.plaintext(i)[1]);
  }
}

TEST(Acquisition, BalancedSliceShowsNoKeyDependentCharge) {
  // With uniform caps (no P&R), total per-trace charge must be identical
  // across plaintexts — the QDI balance property seen from the power side.
  const qc::TargetInstance inst = qc::aes_byte_slice().build(0x99);
  const qd::TraceSet ts = acquire(inst, 24, 1);
  const double q0 = ts.trace(0).total_charge_fc();
  for (std::size_t i = 1; i < ts.size(); ++i)
    EXPECT_NEAR(ts.trace(i).total_charge_fc(), q0, q0 * 1e-9);
}

TEST(Acquisition, GenericEngineRunsBackToBackCycles) {
  // The retained low-level engine: one shared sequential RNG, cycles
  // run continuously without a reset in between.
  qg::XorStage x = qg::build_xor_stage();
  qdi::sim::Simulator sim(x.nl);
  qdi::sim::FourPhaseEnv env(sim, x.env);
  qd::Acquisition cfg;
  cfg.num_traces = 12;
  const qd::TraceSet ts = qd::acquire(
      sim, env,
      [](qdi::util::Rng& rng) {
        const int a = static_cast<int>(rng.below(2));
        const int b = static_cast<int>(rng.below(2));
        return std::make_pair(std::vector<int>{a, b},
                              std::vector<std::uint8_t>{
                                  static_cast<std::uint8_t>(a),
                                  static_cast<std::uint8_t>(b)});
      },
      cfg);
  ASSERT_EQ(ts.size(), 12u);
  for (std::size_t i = 0; i < ts.size(); ++i)
    EXPECT_EQ(ts.ciphertext(i)[0], ts.plaintext(i)[0] ^ ts.plaintext(i)[1]);
}
