// Fault-injection subsystem tests: forced-value semantics in both
// engines, engine/scheduler equivalence under an armed fault, the
// HandshakeOutcome deadlock primitive, fault-campaign classification and
// its determinism contract, DFA key recovery, the golden-path
// equivalence of every simulatable registry target, and the
// configuration guards.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "qdi/qdi.hpp"

namespace qc = qdi::campaign;
namespace qg = qdi::gates;
namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qu = qdi::util;
using qn::CellKind;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// a --inv--> b --inv--> c : the smallest circuit with a gate-driven net
/// to fault (b) and a primary input to shadow (a).
struct InvChain {
  qn::Netlist nl{"invchain"};
  qn::NetId a, b, c;
  InvChain() {
    a = nl.add_input("a");
    b = nl.add_net("b");
    c = nl.add_net("c");
    nl.add_cell(CellKind::Inv, "i1", {a}, b);
    nl.add_cell(CellKind::Inv, "i2", {b}, c);
    nl.mark_output(c, "c");
  }
};

std::unique_ptr<qs::SimEngine> make_engine(const qn::Netlist& nl,
                                           qs::EngineKind kind,
                                           qs::SchedulerKind sched) {
  if (kind == qs::EngineKind::Reference)
    return std::make_unique<qs::Simulator>(nl);
  return std::make_unique<qs::CompiledSimulator>(qs::compile(nl), sched);
}

struct EngineCase {
  const char* label;
  qs::EngineKind kind;
  qs::SchedulerKind sched;
};

constexpr EngineCase kEngines[] = {
    {"reference", qs::EngineKind::Reference, qs::SchedulerKind::Wheel},
    {"compiled-wheel", qs::EngineKind::Compiled, qs::SchedulerKind::Wheel},
    {"compiled-heap", qs::EngineKind::Compiled, qs::SchedulerKind::Heap},
};

}  // namespace

// ---- forced-value semantics (both engines) ---------------------------------

TEST(ForceSemantics, StuckAtPinsNetAgainstDriver) {
  for (const EngineCase& ec : kEngines) {
    SCOPED_TRACE(ec.label);
    InvChain f;
    auto sim = make_engine(f.nl, ec.kind, ec.sched);
    sim->initialize();
    sim->run_until_stable();
    ASSERT_TRUE(sim->value(f.b));  // inv(0)

    // Stuck-at-1 on b: driving a high would normally pull b low.
    sim->arm_force(f.b, true, sim->now() + 10.0, kInf);
    sim->run_until_stable();
    EXPECT_EQ(sim->armed_forces(), 1u);
    sim->drive(f.a, true, sim->now() + 100.0);
    sim->run_until_stable();
    EXPECT_TRUE(sim->value(f.a));
    EXPECT_TRUE(sim->value(f.b)) << "stuck-at-1 must override the driver";
    EXPECT_FALSE(sim->value(f.c));

    sim->clear_forces();
    EXPECT_EQ(sim->armed_forces(), 0u);
  }
}

TEST(ForceSemantics, GlitchReleasesAndGateRecovers) {
  for (const EngineCase& ec : kEngines) {
    SCOPED_TRACE(ec.label);
    InvChain f;
    auto sim = make_engine(f.nl, ec.kind, ec.sched);
    sim->initialize();
    sim->run_until_stable();
    ASSERT_TRUE(sim->value(f.b));

    // Transient 0 on b for 300 ps; the driving inverter must re-assert
    // b = inv(a) = 1 after the window closes.
    const double t0 = sim->now() + 50.0;
    sim->arm_force(f.b, false, t0, t0 + 300.0);
    sim->run_until_stable();
    EXPECT_EQ(sim->armed_forces(), 0u) << "transient must self-disarm";
    EXPECT_TRUE(sim->value(f.b)) << "gate must recover after the window";
    EXPECT_FALSE(sim->value(f.c));
  }
}

TEST(ForceSemantics, InputForceReplaysShadowedDrive) {
  for (const EngineCase& ec : kEngines) {
    SCOPED_TRACE(ec.label);
    InvChain f;
    auto sim = make_engine(f.nl, ec.kind, ec.sched);
    sim->initialize();
    sim->run_until_stable();

    // Raise the input, then hold it high while the environment drives a
    // falling edge into the window: the edge is swallowed by the force
    // (shadowed) and replays at release.
    sim->drive(f.a, true, sim->now() + 10.0);
    sim->run_until_stable();
    ASSERT_TRUE(sim->value(f.a));
    const double t0 = sim->now() + 50.0;
    sim->arm_force(f.a, true, t0, t0 + 500.0);
    sim->drive(f.a, false, t0 + 100.0);
    sim->run_until_stable();
    EXPECT_FALSE(sim->value(f.a)) << "swallowed drive must replay at release";
    EXPECT_TRUE(sim->value(f.b));
  }
}

TEST(ForceSemantics, ArmValidation) {
  for (const EngineCase& ec : kEngines) {
    SCOPED_TRACE(ec.label);
    InvChain f;
    auto sim = make_engine(f.nl, ec.kind, ec.sched);
    sim->initialize();
    sim->run_until_stable();
    const double t = sim->now();
    EXPECT_THROW(sim->arm_force(999, true, t + 1.0, kInf),
                 std::invalid_argument);
    EXPECT_THROW(sim->arm_force(f.b, true, t - 1.0, kInf),
                 std::invalid_argument);  // window starts in the past
    EXPECT_THROW(sim->arm_force(f.b, true, t + 10.0, t + 10.0),
                 std::invalid_argument);  // empty window
    sim->arm_force(f.b, true, t + 10.0, kInf);
    EXPECT_THROW(sim->arm_force(f.b, false, t + 20.0, kInf),
                 std::invalid_argument);  // double-arm
  }
}

TEST(ForceSemantics, CompiledSnapshotWithArmedForceThrows) {
  InvChain f;
  qs::CompiledSimulator sim(qs::compile(f.nl), qs::SchedulerKind::Wheel);
  sim.initialize();
  sim.run_until_stable();
  sim.arm_force(f.b, true, sim.now() + 10.0, kInf);
  EXPECT_THROW((void)sim.save_epoch(), std::logic_error);
}

// ---- engine/scheduler equivalence under a fault ----------------------------

TEST(ForceEquivalence, EnginesBitIdenticalUnderArmedFault) {
  const qc::TargetInstance inst = qc::des_sbox_slice().build(0x2b);
  const std::vector<qn::NetId> sites = qs::fault_sites(inst.nl);
  ASSERT_GE(sites.size(), 3u);

  qs::EnvSpec spec = inst.env;
  spec.strict = false;

  const auto faulted_log = [&](const EngineCase& ec, qn::NetId site,
                               qs::FaultKind kind) {
    auto sim = make_engine(inst.nl, ec.kind, ec.sched);
    qs::FourPhaseEnv env(*sim, spec);
    sim->reset_state();
    env.apply_reset();
    sim->set_log_enabled(true);
    sim->clear_log();
    qu::Rng rng = qu::split_stream(7, 0, qu::kFaultDomain);
    qc::Stimulus stim;
    inst.stimulus(rng, 0, stim);
    qs::FaultInjector inj(*sim);
    inj.arm({site, kind, 500.0, 200.0}, env.next_cycle_start());
    qs::FourPhaseEnv::CycleResult cyc;
    env.send_into(stim.values, cyc);
    return sim->log();
  };

  for (std::size_t i : {std::size_t{0}, sites.size() / 2, sites.size() - 1}) {
    for (qs::FaultKind kind : {qs::FaultKind::StuckAt1, qs::FaultKind::Glitch0}) {
      SCOPED_TRACE(std::string("site ") + std::to_string(sites[i]) + " kind " +
                   qs::name(kind));
      const std::vector<qs::Transition> ref =
          faulted_log(kEngines[0], sites[i], kind);
      ASSERT_FALSE(ref.empty());
      for (int e : {1, 2}) {
        SCOPED_TRACE(kEngines[e].label);
        const std::vector<qs::Transition> got =
            faulted_log(kEngines[e], sites[i], kind);
        ASSERT_EQ(got.size(), ref.size());
        for (std::size_t k = 0; k < ref.size(); ++k) {
          EXPECT_EQ(got[k].net, ref[k].net) << "transition " << k;
          EXPECT_EQ(got[k].rising, ref[k].rising) << "transition " << k;
          EXPECT_DOUBLE_EQ(got[k].t_ps, ref[k].t_ps) << "transition " << k;
        }
      }
    }
  }
}

// ---- the HandshakeOutcome deadlock primitive -------------------------------

TEST(HandshakeOutcome, FaultFreeCycleCompletes) {
  const qc::TargetInstance inst = qc::des_sbox_slice().build(0x2b);
  qs::EnvSpec spec = inst.env;
  spec.strict = false;
  qs::Simulator sim(inst.nl);
  qs::FourPhaseEnv env(sim, spec);
  sim.reset_state();
  env.apply_reset();
  qu::Rng rng(3);
  qc::Stimulus stim;
  inst.stimulus(rng, 0, stim);
  const auto cyc = env.send(stim.values);
  EXPECT_TRUE(cyc.ok);
  EXPECT_TRUE(cyc.handshake.completed);
  EXPECT_EQ(cyc.handshake.stalled_phase, qs::HandshakePhase::None);
}

TEST(HandshakeOutcome, StuckOutputRailStallsDataValidWithChannel) {
  const qc::TargetInstance inst = qc::des_sbox_slice().build(0x2b);
  qs::EnvSpec spec = inst.env;
  spec.strict = false;
  const qn::ChannelId out_ch = spec.outputs.front();
  qs::Simulator sim(inst.nl);
  qs::FourPhaseEnv env(sim, spec);
  sim.reset_state();
  env.apply_reset();
  // Pin both rails of the first output channel low: it can never become
  // valid and phase 1 must stall on exactly that channel.
  for (qn::NetId rail : inst.nl.channel(out_ch).rails)
    sim.arm_force(rail, false, env.next_cycle_start(), kInf);
  qu::Rng rng(3);
  qc::Stimulus stim;
  inst.stimulus(rng, 0, stim);
  const auto cyc = env.send(stim.values);
  EXPECT_FALSE(cyc.ok);
  EXPECT_FALSE(cyc.handshake.completed);
  EXPECT_EQ(cyc.handshake.stalled_phase, qs::HandshakePhase::DataValid);
  EXPECT_EQ(cyc.handshake.stalling_channel, out_ch);
}

// ---- fault campaign: classification and determinism ------------------------

TEST(FaultCampaign, ClassificationDeterministicAcrossThreadsAndSchedulers) {
  const auto sweep = [](unsigned threads, qs::SchedulerKind sched) {
    return qc::FaultCampaign()
        .target(qc::des_sbox_slice())
        .key(0x2b)
        .seed(99)
        .max_sites(10)
        .repeats(3)
        .scheduler(sched)
        .threads(threads)
        .run();
  };
  const qc::FaultCampaignResult ref = sweep(1, qs::SchedulerKind::Wheel);
  EXPECT_EQ(ref.summary.runs, ref.records.size());
  EXPECT_EQ(ref.summary.runs,
            ref.summary.deadlock + ref.summary.masked + ref.summary.exploitable)
      << "every injection must land in exactly one class";
  for (unsigned threads : {2u, 3u}) {
    for (qs::SchedulerKind sched :
         {qs::SchedulerKind::Wheel, qs::SchedulerKind::Heap}) {
      SCOPED_TRACE(threads);
      const qc::FaultCampaignResult got = sweep(threads, sched);
      ASSERT_EQ(got.records.size(), ref.records.size());
      for (std::size_t i = 0; i < ref.records.size(); ++i) {
        EXPECT_EQ(got.records[i].net, ref.records[i].net) << "run " << i;
        EXPECT_EQ(got.records[i].cls, ref.records[i].cls) << "run " << i;
        EXPECT_EQ(got.records[i].plaintext, ref.records[i].plaintext)
            << "run " << i;
        EXPECT_EQ(got.records[i].golden, ref.records[i].golden) << "run " << i;
      }
    }
  }
}

TEST(FaultCampaign, ReferenceEngineAgreesWithCompiled) {
  const auto sweep = [](qs::EngineKind kind) {
    return qc::FaultCampaign()
        .target(qc::des_sbox_slice())
        .key(0x15)
        .seed(5)
        .max_sites(6)
        .repeats(2)
        .engine(kind)
        .run();
  };
  const qc::FaultCampaignResult a = sweep(qs::EngineKind::Compiled);
  const qc::FaultCampaignResult b = sweep(qs::EngineKind::Reference);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].cls, b.records[i].cls) << "run " << i;
    EXPECT_EQ(a.records[i].faulty, b.records[i].faulty) << "run " << i;
  }
}

TEST(FaultCampaign, QdiDualRailYieldsNoExploitableFaults) {
  // The paper's security claim: stuck rails on a QDI dual-rail victim
  // starve completion (deadlock) or are absorbed (masked) — they never
  // emit a valid-looking wrong ciphertext.
  for (const char* target : {"des_sbox_slice", "aes_byte_slice"}) {
    SCOPED_TRACE(target);
    const qc::FaultCampaignResult r = qc::FaultCampaign()
                                          .target(qc::find_target(target))
                                          .key(0x2b)
                                          .seed(31337)
                                          .max_sites(16)
                                          .repeats(3)
                                          .threads(2)
                                          .run();
    EXPECT_EQ(r.summary.exploitable, 0u)
        << "QDI target leaked DFA material";
    EXPECT_GT(r.summary.deadlock, 0u)
        << "stuck rails must stall the handshake somewhere";
    EXPECT_FALSE(r.dfa.has_value());
  }
}

TEST(FaultCampaign, SyncCounterexampleIsExploitableAndDfaRecoversKey) {
  const std::uint8_t key = 0x2b;
  const qc::FaultCampaignResult r = qc::FaultCampaign()
                                        .target(qc::des_sbox_sync())
                                        .key(key)
                                        .seed(31337)
                                        .sites_matching("addkey0")
                                        .repeats(16)
                                        .threads(2)
                                        .run();
  EXPECT_GT(r.summary.exploitable, 0u)
      << "the sync-style victim must emit wrong ciphertexts";
  EXPECT_EQ(r.summary.deadlock, 0u)
      << "faked completion never stalls the handshake";
  ASSERT_TRUE(r.dfa.has_value());
  EXPECT_EQ(r.dfa->rank_of(r.true_guess), 0u)
      << "DFA must recover the 6-bit subkey exactly";
  EXPECT_EQ(r.dfa->best_guess, static_cast<unsigned>(key));
}

TEST(FaultCampaign, TransientGlitchesAreClassifiedToo) {
  const qc::FaultCampaignResult r =
      qc::FaultCampaign()
          .target(qc::des_sbox_slice())
          .key(0x07)
          .seed(11)
          .max_sites(8)
          .kinds({qs::FaultKind::Glitch0, qs::FaultKind::Glitch1})
          .times({0.0, 1000.0})
          .glitch_width(400.0)
          .repeats(2)
          .run();
  EXPECT_EQ(r.summary.runs, r.injections * 2);
  EXPECT_EQ(r.summary.runs,
            r.summary.deadlock + r.summary.masked + r.summary.exploitable);
  EXPECT_EQ(r.summary.exploitable, 0u);
}

// ---- Campaign::faults() integration ----------------------------------------

TEST(CampaignFaults, ProbeMatchesStandaloneFaultCampaign) {
  qc::FaultCampaignOptions opt;
  opt.max_sites = 8;
  opt.repeats = 2;
  const qc::CampaignResult via_campaign = qc::Campaign()
                                              .target(qc::des_sbox_slice())
                                              .key(0x2b)
                                              .seed(123)
                                              .threads(2)
                                              .faults(opt)
                                              .run();
  ASSERT_TRUE(via_campaign.faults.has_value());
  const qc::FaultCampaignResult standalone = qc::FaultCampaign()
                                                 .target(qc::des_sbox_slice())
                                                 .key(0x2b)
                                                 .seed(123)
                                                 .threads(2)
                                                 .max_sites(8)
                                                 .repeats(2)
                                                 .run();
  ASSERT_EQ(via_campaign.faults->records.size(), standalone.records.size());
  for (std::size_t i = 0; i < standalone.records.size(); ++i) {
    EXPECT_EQ(via_campaign.faults->records[i].net, standalone.records[i].net);
    EXPECT_EQ(via_campaign.faults->records[i].cls, standalone.records[i].cls);
  }
  EXPECT_EQ(via_campaign.faults->summary.deadlock,
            standalone.summary.deadlock);
}

TEST(CampaignFaults, TablesRenderFaultColumns) {
  const qc::FaultCampaignResult r = qc::FaultCampaign()
                                        .target(qc::dual_rail_pair())
                                        .key(0)
                                        .max_sites(4)
                                        .repeats(1)
                                        .run();
  const std::string text = r.table().to_string();
  EXPECT_NE(text.find("deadlock"), std::string::npos);
  EXPECT_NE(text.find("exploitable"), std::string::npos);
}

// ---- configuration guards (satellite: consistency) -------------------------

TEST(FaultGuards, CustomSourcePlusFaultsThrows) {
  qc::Campaign c;
  c.target(qc::des_sbox_slice())
      .traces(4)
      .faults(qc::FaultCampaignOptions{})
      .source([](const qc::TargetInstance& inst,
                 const qc::SimTraceSourceOptions& opt) {
        return std::make_unique<qc::SimTraceSource>(inst.nl, inst.env,
                                                    inst.stimulus, opt);
      });
  EXPECT_THROW(c.run(), std::invalid_argument);
}

TEST(FaultGuards, FlowOnlyTargetThrows) {
  // aes_core is simulatable these days; a flow-only victim is modeled
  // with an explicit prebuilt instance that opted out of simulation.
  const auto flow_only = [] {
    qc::TargetInstance inst;
    inst.nl = qn::Netlist("flow_only");
    inst.simulatable = false;
    inst.name = "flow_only";
    return qc::prebuilt(std::move(inst));
  };
  EXPECT_THROW(qc::Campaign()
                   .target(flow_only())
                   .faults(qc::FaultCampaignOptions{})
                   .run(),
               std::invalid_argument);
  EXPECT_THROW(qc::FaultCampaign().target(flow_only()).run(),
               std::invalid_argument);
}

TEST(FaultGuards, DegenerateSweepGridsThrow) {
  EXPECT_THROW(qc::FaultCampaign().run(), std::invalid_argument);  // no target
  EXPECT_THROW(
      qc::FaultCampaign().target(qc::des_sbox_slice()).kinds({}).run(),
      std::invalid_argument);
  EXPECT_THROW(
      qc::FaultCampaign().target(qc::des_sbox_slice()).times({}).run(),
      std::invalid_argument);
  EXPECT_THROW(
      qc::FaultCampaign().target(qc::des_sbox_slice()).repeats(0).run(),
      std::invalid_argument);
  EXPECT_THROW(qc::FaultCampaign()
                   .target(qc::des_sbox_slice())
                   .sites_matching("no_such_net_name")
                   .run(),
               std::invalid_argument);
  EXPECT_THROW(qc::FaultCampaign()
                   .target(qc::des_sbox_slice())
                   .sites({qn::NetId{1u << 30}})
                   .run(),
               std::invalid_argument);
}

// ---- DFA analysis unit tests -----------------------------------------------

TEST(Dfa, AesModelRecoversKeyFromSyntheticSingleBitFaults) {
  const std::uint8_t key = 0x4f;
  std::vector<qdi::dpa::DfaPair> pairs;
  qu::Rng rng(17);
  for (int i = 0; i < 24; ++i) {
    const auto p = static_cast<std::uint8_t>(rng.below(256));
    const auto e = static_cast<std::uint8_t>(1u << rng.below(8));
    const std::uint8_t in = p ^ key;
    pairs.push_back({p, qdi::crypto::aes_sbox(in),
                     qdi::crypto::aes_sbox(static_cast<std::uint8_t>(in ^ e))});
  }
  const qdi::dpa::DfaResult r =
      qdi::dpa::dfa_attack(qdi::dpa::aes_sbox_dfa_model(), pairs, 256);
  EXPECT_EQ(r.rank_of(key), 0u);
  EXPECT_EQ(r.best_guess, key);
  EXPECT_EQ(r.pairs_used, pairs.size());
  EXPECT_GE(r.best_votes, r.second_votes);
}

TEST(Dfa, GoldenEqualsFaultyPairsAreSkipped) {
  std::vector<qdi::dpa::DfaPair> pairs(5, qdi::dpa::DfaPair{0x11, 0x22, 0x22});
  const qdi::dpa::DfaResult r =
      qdi::dpa::dfa_attack(qdi::dpa::des_sbox_dfa_model(0), pairs, 64);
  EXPECT_EQ(r.pairs_used, 0u);
  EXPECT_EQ(r.survivors, 64u) << "no information: every guess survives";
}

// ---- golden path: simulation matches the crypto:: reference ----------------

TEST(GoldenPath, SimulatedOutputsMatchReferenceForAllRegistryTargets) {
  for (const std::string& name : qc::list_targets()) {
    SCOPED_TRACE(name);
    const qc::TargetInstance inst = qc::find_target(name).build(0x2b);
    if (!inst.simulatable || !inst.stimulus || !inst.golden) continue;

    qs::Simulator sim(inst.nl);
    qs::FourPhaseEnv env(sim, inst.env);
    sim.reset_state();
    env.apply_reset();
    qc::Stimulus stim;
    for (std::size_t i = 0; i < 6; ++i) {
      qu::Rng rng = qu::split_stream(42, i);
      inst.stimulus(rng, i, stim);
      const auto cyc = env.send(stim.values);
      ASSERT_TRUE(cyc.ok) << "fault-free cycle " << i << " failed";
      EXPECT_EQ(cyc.outputs, inst.golden(stim.plaintext)) << "cycle " << i;
    }
  }
}

// ---- fault_sites helper ----------------------------------------------------

TEST(FaultSites, GateDrivenNetsOnlyAndFilterable) {
  const qc::TargetInstance inst = qc::des_sbox_slice().build(0);
  const std::vector<qn::NetId> all = qs::fault_sites(inst.nl);
  ASSERT_FALSE(all.empty());
  for (qn::NetId n : all) {
    const qn::CellId d = inst.nl.net(n).driver;
    ASSERT_NE(d, qn::kNoCell);
    EXPECT_NE(inst.nl.cell(d).kind, CellKind::Input);
  }
  const std::vector<std::string> filters = {"sbox"};
  const std::vector<qn::NetId> sbox_only = qs::fault_sites(inst.nl, filters);
  ASSERT_FALSE(sbox_only.empty());
  EXPECT_LT(sbox_only.size(), all.size());
  for (qn::NetId n : sbox_only)
    EXPECT_NE(inst.nl.net(n).name.find("sbox"), std::string::npos);
}
