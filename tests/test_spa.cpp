#include <gtest/gtest.h>

#include "qdi/dpa/spa.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"

namespace qd = qdi::dpa;
namespace qp = qdi::power;
namespace qg = qdi::gates;
namespace qs = qdi::sim;

namespace {
qp::PowerTrace xor_cycle_trace(qg::XorStage& x, qs::Simulator& sim,
                               qs::FourPhaseEnv& env, int a, int b) {
  sim.clear_log();
  const std::vector<int> v{a, b};
  const auto cyc = env.send(v);
  EXPECT_TRUE(cyc.ok);
  qp::PowerModelParams pm;
  return qp::synthesize(sim.log(), cyc.t_start, x.env.period_ps, pm, nullptr);
}
}  // namespace

TEST(Spa, FindsTheFourPhaseBursts) {
  qg::XorStage x = qg::build_xor_stage();
  // Generous inter-phase idle gaps so the phases separate cleanly in the
  // trace (the default 50 ps gap keeps consecutive pulses fused).
  x.env.phase_gap_ps = 400.0;
  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  const qp::PowerTrace t = xor_cycle_trace(x, sim, env, 1, 0);
  const auto bursts = qd::find_bursts(t, 1.0, 4);
  // Evaluation, acknowledge, return-to-zero, release: between 2 and 4
  // visible bursts depending on the gap threshold — at least eval + RTZ.
  EXPECT_GE(bursts.size(), 2u);
  for (const auto& b : bursts) {
    EXPECT_LT(b.start, b.end);
    EXPECT_GT(b.charge_fc, 0.0);
    EXPECT_GT(b.peak_ua, 0.0);
  }
  // Bursts are ordered and non-overlapping.
  for (std::size_t i = 1; i < bursts.size(); ++i)
    EXPECT_GE(bursts[i].start, bursts[i - 1].end);
}

TEST(Spa, EmptyTraceHasNoBursts) {
  const qp::PowerTrace quiet(0.0, 10.0, 100);
  EXPECT_TRUE(qd::find_bursts(quiet, 0.5).empty());
}

TEST(Spa, BalancedXorIsSpaIndistinguishable) {
  // The SPA resistance claim of section II: on a balanced block, any two
  // codewords produce byte-identical traces (same transitions, same caps).
  qg::XorStage x = qg::build_xor_stage();
  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  const qp::PowerTrace t00 = xor_cycle_trace(x, sim, env, 0, 0);
  const qp::PowerTrace t11 = xor_cycle_trace(x, sim, env, 1, 1);
  const qp::PowerTrace t10 = xor_cycle_trace(x, sim, env, 1, 0);
  EXPECT_NEAR(qd::spa_distance(t00, t11), 0.0, 1e-9);
  EXPECT_NEAR(qd::spa_distance(t00, t10), 0.0, 1e-9);
}

TEST(Spa, UnbalancedXorIsSpaDistinguishable) {
  qg::XorStage x = qg::build_xor_stage();
  x.nl.net(x.s0).cap_ff = 32.0;  // heavy xor=0 path
  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  const qp::PowerTrace t00 = xor_cycle_trace(x, sim, env, 0, 0);  // xor=0
  const qp::PowerTrace t10 = xor_cycle_trace(x, sim, env, 1, 0);  // xor=1
  EXPECT_GT(qd::spa_distance(t00, t10), 100.0);
}

TEST(Spa, LocatePatternFindsTheCycle) {
  qg::XorStage x = qg::build_xor_stage();
  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  const qp::PowerTrace cycle = xor_cycle_trace(x, sim, env, 0, 1);

  // Embed the active part of the cycle into a longer quiet trace.
  const auto bursts = qd::find_bursts(cycle, 1.0, 100);
  ASSERT_FALSE(bursts.empty());
  const std::size_t span = bursts.back().end - bursts.front().start;
  qp::PowerTrace pattern(0.0, cycle.dt_ps(), span);
  for (std::size_t j = 0; j < span; ++j)
    pattern[j] = cycle[bursts.front().start + j];

  qp::PowerTrace haystack(0.0, cycle.dt_ps(), 3 * cycle.size());
  const std::size_t at = 517;
  for (std::size_t j = 0; j < span; ++j) haystack[at + j] = pattern[j];

  const qd::MatchResult m = qd::locate_pattern(haystack, pattern);
  EXPECT_EQ(m.offset, at);
  EXPECT_GT(m.correlation, 0.99);
}

TEST(Spa, LocatePatternDegenerateCases) {
  qp::PowerTrace t(0.0, 1.0, 10);
  qp::PowerTrace big(0.0, 1.0, 20);
  EXPECT_EQ(qd::locate_pattern(t, big).correlation, 0.0);  // pattern too long
  qp::PowerTrace empty;
  EXPECT_EQ(qd::locate_pattern(t, empty).correlation, 0.0);
}
