// Property-based fuzzing of the dual-rail circuit builder: random
// expression DAGs built from the DIMS gate set must, for EVERY input
// assignment,
//   * compute the same value as the software evaluation of the DAG,
//   * complete the four-phase protocol (valid then empty),
//   * fire a constant number of transitions (the QDI balance invariant),
//   * stay glitch-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "qdi/campaign/batch_trace_source.hpp"
#include "qdi/campaign/trace_source.hpp"
#include "qdi/gates/builder.hpp"
#include "qdi/sim/compiled_simulator.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/fault.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/rng.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;
namespace qu = qdi::util;

namespace {

enum class Op { Xor, And, Or, Xnor, Mux, Not };

struct Node {
  Op op;
  int a = -1, b = -1, s = -1;  ///< operand node ids (-1 for unused)
};

/// A random DAG over `num_inputs` leaves; node i only references earlier
/// nodes, so evaluation order is the vector order.
struct ExprDag {
  int num_inputs;
  std::vector<Node> nodes;  ///< ids num_inputs.. follow the leaves
  int root;

  int eval(unsigned input_bits) const {
    std::vector<int> value(static_cast<std::size_t>(num_inputs) + nodes.size());
    for (int i = 0; i < num_inputs; ++i)
      value[static_cast<std::size_t>(i)] = (input_bits >> i) & 1;
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      const Node& node = nodes[n];
      const int va = value[static_cast<std::size_t>(node.a)];
      const int vb = node.b >= 0 ? value[static_cast<std::size_t>(node.b)] : 0;
      int out = 0;
      switch (node.op) {
        case Op::Xor: out = va ^ vb; break;
        case Op::And: out = va & vb; break;
        case Op::Or: out = va | vb; break;
        case Op::Xnor: out = 1 - (va ^ vb); break;
        case Op::Not: out = 1 - va; break;
        case Op::Mux:
          out = value[static_cast<std::size_t>(node.s)] ? vb : va;
          break;
      }
      value[static_cast<std::size_t>(num_inputs) + n] = out;
    }
    return value[static_cast<std::size_t>(root)];
  }
};

ExprDag random_dag(qu::Rng& rng, int num_inputs, int num_nodes) {
  ExprDag dag;
  dag.num_inputs = num_inputs;
  for (int n = 0; n < num_nodes; ++n) {
    Node node;
    const int id_limit = num_inputs + n;
    node.a = static_cast<int>(rng.below(static_cast<std::uint64_t>(id_limit)));
    node.b = static_cast<int>(rng.below(static_cast<std::uint64_t>(id_limit)));
    switch (rng.below(6)) {
      case 0: node.op = Op::Xor; break;
      case 1: node.op = Op::And; break;
      case 2: node.op = Op::Or; break;
      case 3: node.op = Op::Xnor; break;
      case 4: node.op = Op::Not; node.b = -1; break;
      default:
        node.op = Op::Mux;
        node.s = static_cast<int>(rng.below(static_cast<std::uint64_t>(id_limit)));
        break;
    }
    dag.nodes.push_back(node);
  }
  dag.root = num_inputs + num_nodes - 1;
  return dag;
}

/// Instantiate the DAG as dual-rail hardware.
struct Hardware {
  qn::Netlist nl{"fuzz"};
  std::vector<qg::DualRail> inputs;
  qs::EnvSpec spec;

  explicit Hardware(const ExprDag& dag) {
    qg::Builder b(nl);
    std::vector<qg::DualRail> value;
    for (int i = 0; i < dag.num_inputs; ++i) {
      const qg::DualRail in = b.dr_input("i" + std::to_string(i));
      inputs.push_back(in);
      value.push_back(in);
    }
    for (std::size_t n = 0; n < dag.nodes.size(); ++n) {
      const Node& node = dag.nodes[n];
      const std::string name = "n" + std::to_string(n);
      const qg::DualRail a = value[static_cast<std::size_t>(node.a)];
      const qg::DualRail c =
          node.b >= 0 ? value[static_cast<std::size_t>(node.b)] : a;
      qg::DualRail out;
      switch (node.op) {
        case Op::Xor: out = b.dr_xor(a, c, name); break;
        case Op::And: out = b.dr_and(a, c, name); break;
        case Op::Or: out = b.dr_or(a, c, name); break;
        case Op::Xnor: out = b.dr_xnor(a, c, name); break;
        case Op::Not: out = b.dr_not(a); break;
        case Op::Mux:
          out = b.dr_mux2(value[static_cast<std::size_t>(node.s)], a, c, name);
          break;
      }
      value.push_back(out);
    }
    const qg::DualRail root = value[static_cast<std::size_t>(dag.root)];
    b.dr_output(root, "out");
    for (const auto& d : inputs) spec.inputs.push_back(d.ch);
    spec.outputs = {root.ch};
    spec.period_ps = 30000.0;
  }
};

}  // namespace

class FuzzDag : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDag, FunctionalAndBalanced) {
  qu::Rng rng(GetParam());
  const int num_inputs = 3 + static_cast<int>(rng.below(3));  // 3..5
  const int num_nodes = 4 + static_cast<int>(rng.below(9));   // 4..12
  const ExprDag dag = random_dag(rng, num_inputs, num_nodes);
  Hardware hw(dag);
  ASSERT_TRUE(hw.nl.check().empty());

  qs::Simulator sim(hw.nl);
  qs::FourPhaseEnv env(sim, hw.spec);
  env.apply_reset();

  std::size_t expected_transitions = 0;
  for (unsigned bits = 0; bits < (1u << num_inputs); ++bits) {
    std::vector<int> values(static_cast<std::size_t>(num_inputs));
    for (int i = 0; i < num_inputs; ++i)
      values[static_cast<std::size_t>(i)] = (bits >> i) & 1;
    const auto cyc = env.send(values);
    ASSERT_TRUE(cyc.ok) << "seed " << GetParam() << " bits " << bits;
    EXPECT_EQ(cyc.outputs.at(0), dag.eval(bits))
        << "seed " << GetParam() << " bits " << bits;
    if (expected_transitions == 0)
      expected_transitions = cyc.transitions;
    else
      EXPECT_EQ(cyc.transitions, expected_transitions)
          << "seed " << GetParam() << " bits " << bits;
  }
  EXPECT_EQ(sim.glitch_count(), 0u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomDags, FuzzDag,
                         ::testing::Range<std::uint64_t>(0, 30));

class FuzzSymmetry : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSymmetry, RegisteredChannelsHaveValidRails) {
  // Structural fuzz: every registered channel's rails are distinct,
  // driven nets.
  qu::Rng rng(GetParam() + 1000);
  const ExprDag dag = random_dag(rng, 4, 8);
  Hardware hw(dag);
  for (const qn::Channel& ch : hw.nl.channels()) {
    for (std::size_t i = 0; i < ch.rails.size(); ++i) {
      EXPECT_NE(hw.nl.net(ch.rails[i]).driver, qn::kNoCell) << ch.name;
      for (std::size_t j = i + 1; j < ch.rails.size(); ++j)
        EXPECT_NE(ch.rails[i], ch.rails[j]) << ch.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, FuzzSymmetry,
                         ::testing::Range<std::uint64_t>(0, 10));

// ---- scheduler differential fuzz -------------------------------------------
//
// The time-wheel and heap schedulers of the compiled kernel must produce
// identical transition logs on ANY netlist, delay model, stimulus
// sequence, and epoch save/restore pattern — the (t_ps, net, seq) total order
// is scheduler-independent by construction, and this fuzz pass pins it
// across random instances of all four dimensions (plus the reference
// interpreter as a third witness).

namespace {

struct SchedulerRun {
  qs::CompiledSimulator sim;
  qs::FourPhaseEnv env;
  std::vector<qs::CompiledSimulator::Epoch> epochs;

  SchedulerRun(const std::shared_ptr<const qs::CompiledNetlist>& cn,
               const qs::EnvSpec& spec, qs::SchedulerKind kind)
      : sim(cn, kind), env(sim, spec) {
    sim.set_log_enabled(true);
    env.apply_reset();
    epochs.push_back(sim.save_epoch());
  }
};

void expect_logs_equal(const qs::CompiledSimulator& a,
                       const qs::CompiledSimulator& b, std::uint64_t seed,
                       int cycle) {
  ASSERT_EQ(a.log().size(), b.log().size())
      << "seed " << seed << " cycle " << cycle;
  for (std::size_t i = 0; i < a.log().size(); ++i) {
    ASSERT_EQ(a.log()[i].t_ps, b.log()[i].t_ps)
        << "seed " << seed << " cycle " << cycle << " transition " << i;
    ASSERT_EQ(a.log()[i].net, b.log()[i].net)
        << "seed " << seed << " cycle " << cycle << " transition " << i;
    ASSERT_EQ(a.log()[i].rising, b.log()[i].rising)
        << "seed " << seed << " cycle " << cycle << " transition " << i;
    ASSERT_EQ(a.log()[i].slew_ps, b.log()[i].slew_ps)
        << "seed " << seed << " cycle " << cycle << " transition " << i;
  }
}

}  // namespace

class FuzzScheduler : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzScheduler, WheelMatchesHeapOnRandomNetlistsDelaysAndEpochs) {
  qu::Rng rng(GetParam() + 7000);
  const int num_inputs = 2 + static_cast<int>(rng.below(3));  // 2..4
  const int num_nodes = 3 + static_cast<int>(rng.below(10));  // 3..12
  const ExprDag dag = random_dag(rng, num_inputs, num_nodes);
  Hardware hw(dag);
  ASSERT_TRUE(hw.nl.check().empty());

  // Random delay model: stresses the wheel geometry (bucket width and
  // rotation size derive from the delay range) well beyond the default
  // standard-cell calibration, including near-degenerate spreads.
  qs::DelayModel dm;
  dm.base_ps = 1.0 + rng.uniform(0.0, 60.0);
  dm.per_input_ps = rng.uniform(0.0, 10.0);
  dm.per_ff_ps = rng.uniform(0.0, 12.0);
  dm.slew_base_ps = 1.0 + rng.uniform(0.0, 20.0);
  dm.slew_per_ff_ps = rng.uniform(0.0, 8.0);
  const auto cn = qs::compile(hw.nl, dm);

  // Reference interpreter as a third witness on the same delay model.
  qs::Simulator ref(hw.nl, dm);
  qs::FourPhaseEnv ref_env(ref, hw.spec);
  ref_env.apply_reset();

  SchedulerRun wheel(cn, hw.spec, qs::SchedulerKind::Wheel);
  SchedulerRun heap(cn, hw.spec, qs::SchedulerKind::Heap);

  bool ref_in_sync = true;  // until the first rewind diverges the timeline
  for (int cycle = 0; cycle < 24; ++cycle) {
    // Random epoch action: occasionally snapshot the quiescent state or
    // rewind to a random earlier snapshot (both runs in lockstep).
    const std::uint64_t action = rng.below(8);
    if (action == 0) {
      wheel.epochs.push_back(wheel.sim.save_epoch());
      heap.epochs.push_back(heap.sim.save_epoch());
    } else if (action == 1) {
      const std::size_t k = rng.below(wheel.epochs.size());
      wheel.sim.restore_epoch(wheel.epochs[k]);
      heap.sim.restore_epoch(heap.epochs[k]);
      ref_in_sync = false;
    }

    std::vector<int> values(static_cast<std::size_t>(num_inputs));
    for (int i = 0; i < num_inputs; ++i)
      values[static_cast<std::size_t>(i)] = static_cast<int>(rng.below(2));

    wheel.sim.clear_log();
    heap.sim.clear_log();
    const auto wc = wheel.env.send(values);
    const auto hc = heap.env.send(values);
    ASSERT_TRUE(wc.ok) << "seed " << GetParam() << " cycle " << cycle;
    ASSERT_TRUE(hc.ok) << "seed " << GetParam() << " cycle " << cycle;
    ASSERT_EQ(wc.outputs, hc.outputs);
    ASSERT_EQ(wc.transitions, hc.transitions);
    expect_logs_equal(wheel.sim, heap.sim, GetParam(), cycle);
    ASSERT_EQ(wheel.sim.glitch_count(), heap.sim.glitch_count());

    // The reference engine never rewinds; compare against it only while
    // no restore has diverged the absolute timeline.
    if (ref_in_sync) {
      ref.clear_log();
      const auto rc = ref_env.send(values);
      ASSERT_TRUE(rc.ok);
      ASSERT_EQ(rc.outputs, wc.outputs);
      ASSERT_EQ(ref.log().size(), wheel.sim.log().size());
      for (std::size_t i = 0; i < ref.log().size(); ++i) {
        ASSERT_EQ(ref.log()[i].t_ps, wheel.sim.log()[i].t_ps);
        ASSERT_EQ(ref.log()[i].net, wheel.sim.log()[i].net);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, FuzzScheduler,
                         ::testing::Range<std::uint64_t>(0, 20));

// ---- fault-injection differential fuzz -------------------------------------
//
// With a randomly armed fault (site, kind, offset, width all fuzzed) the
// three engines must still agree transition for transition: the marker
// events and forced-value suppression are part of the deterministic
// (t_ps, net, seq) order, whether the faulted cycle completes, stalls, or
// aborts.

class FuzzFaultInjection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzFaultInjection, EnginesAgreeUnderRandomFaults) {
  qu::Rng rng(GetParam() + 9100);
  const int num_inputs = 2 + static_cast<int>(rng.below(3));
  const int num_nodes = 3 + static_cast<int>(rng.below(10));
  const ExprDag dag = random_dag(rng, num_inputs, num_nodes);
  Hardware hw(dag);
  ASSERT_TRUE(hw.nl.check().empty());
  qs::EnvSpec spec = hw.spec;
  spec.strict = false;  // stalls are an expected outcome, not a bug

  const std::vector<qn::NetId> sites = qs::fault_sites(hw.nl);
  ASSERT_FALSE(sites.empty());
  const auto cn = qs::compile(hw.nl);

  struct Run {
    bool threw = false;
    bool completed = false;
    std::vector<int> outputs;
    std::vector<qs::Transition> log;
  };
  const auto faulted_cycle = [&](qs::SimEngine& sim, const qs::FaultSpec& fs,
                                 const std::vector<int>& values) {
    qs::FourPhaseEnv env(sim, spec);
    sim.reset_state();
    env.apply_reset();
    sim.set_log_enabled(true);
    sim.clear_log();
    qs::FaultInjector inj(sim);
    inj.arm(fs, env.next_cycle_start());
    Run r;
    try {
      const auto cyc = env.send(values);
      r.completed = cyc.handshake.completed;
      r.outputs = cyc.outputs;
    } catch (const std::runtime_error&) {
      r.threw = true;
    }
    r.log = sim.log();
    return r;
  };

  for (int round = 0; round < 10; ++round) {
    qs::FaultSpec fs;
    fs.net = sites[rng.below(sites.size())];
    fs.kind = static_cast<qs::FaultKind>(rng.below(4));
    fs.t_offset_ps = rng.uniform(0.0, spec.period_ps * 0.5);
    fs.duration_ps = 50.0 + rng.uniform(0.0, 500.0);
    std::vector<int> values(static_cast<std::size_t>(num_inputs));
    for (int i = 0; i < num_inputs; ++i)
      values[static_cast<std::size_t>(i)] = static_cast<int>(rng.below(2));

    qs::Simulator ref_sim(hw.nl);
    qs::CompiledSimulator wheel(cn, qs::SchedulerKind::Wheel);
    qs::CompiledSimulator heap(cn, qs::SchedulerKind::Heap);
    const Run ref = faulted_cycle(ref_sim, fs, values);
    for (qs::SimEngine* sim : {static_cast<qs::SimEngine*>(&wheel),
                               static_cast<qs::SimEngine*>(&heap)}) {
      const Run got = faulted_cycle(*sim, fs, values);
      ASSERT_EQ(got.threw, ref.threw)
          << "seed " << GetParam() << " round " << round;
      ASSERT_EQ(got.completed, ref.completed)
          << "seed " << GetParam() << " round " << round;
      ASSERT_EQ(got.outputs, ref.outputs)
          << "seed " << GetParam() << " round " << round;
      ASSERT_EQ(got.log.size(), ref.log.size())
          << "seed " << GetParam() << " round " << round;
      for (std::size_t i = 0; i < ref.log.size(); ++i) {
        ASSERT_EQ(got.log[i].t_ps, ref.log[i].t_ps)
            << "seed " << GetParam() << " round " << round << " tr " << i;
        ASSERT_EQ(got.log[i].net, ref.log[i].net)
            << "seed " << GetParam() << " round " << round << " tr " << i;
        ASSERT_EQ(got.log[i].rising, ref.log[i].rising)
            << "seed " << GetParam() << " round " << round << " tr " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, FuzzFaultInjection,
                         ::testing::Range<std::uint64_t>(0, 12));

// ---- batch-engine differential fuzz ----------------------------------------
//
// Three-way witness for the 64-lane batch kernel: on random DAGs, random
// delay models, and random stimuli, acquisition through the batch engine
// must be bit-identical (samples, ciphertexts, transition and glitch
// counts) to BOTH scalar schedulers — at batch sizes that hit a single
// lane, a partial block, exactly one full block, and a full block plus a
// 1-lane tail.

class FuzzBatch : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzBatch, BatchMatchesWheelAndHeapAtAwkwardBatchSizes) {
  namespace qc = qdi::campaign;
  qu::Rng rng(GetParam() + 11000);
  const int num_inputs = 2 + static_cast<int>(rng.below(3));  // 2..4
  const int num_nodes = 3 + static_cast<int>(rng.below(10));  // 3..12
  const ExprDag dag = random_dag(rng, num_inputs, num_nodes);
  Hardware hw(dag);
  ASSERT_TRUE(hw.nl.check().empty());

  qs::DelayModel dm;
  dm.base_ps = 1.0 + rng.uniform(0.0, 60.0);
  dm.per_input_ps = rng.uniform(0.0, 10.0);
  dm.per_ff_ps = rng.uniform(0.0, 12.0);
  dm.slew_base_ps = 1.0 + rng.uniform(0.0, 20.0);
  dm.slew_per_ff_ps = rng.uniform(0.0, 8.0);

  // Random dual-rail stimulus; the plaintext byte records the bits so a
  // mismatch pinpoints the offending assignment.
  const int ni = num_inputs;
  const qc::StimulusFn stimulus = [ni](qu::Rng& r, std::size_t,
                                       qc::Stimulus& out) {
    out.values.clear();
    out.plaintext.assign(1, 0);
    for (int i = 0; i < ni; ++i) {
      const int bit = static_cast<int>(r.below(2));
      out.values.push_back(bit);
      out.plaintext[0] |= static_cast<std::uint8_t>(bit << i);
    }
  };

  const auto acquire = [&](qs::EngineKind kind, qs::SchedulerKind sched,
                           std::size_t n) {
    qc::SimTraceSourceOptions opt;
    opt.engine = kind;
    opt.scheduler = sched;
    opt.delays = dm;
    std::unique_ptr<qc::TraceSource> src;
    if (kind == qs::EngineKind::Batch)
      src = std::make_unique<qc::BatchSimTraceSource>(hw.nl, hw.spec, stimulus,
                                                      opt);
    else
      src = std::make_unique<qc::SimTraceSource>(hw.nl, hw.spec, stimulus, opt);
    return qc::acquire_batch(*src, n, /*seed=*/GetParam() + 1, 1, nullptr);
  };

  for (const std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                              std::size_t{65}}) {
    const qdi::dpa::TraceSet wheel =
        acquire(qs::EngineKind::Compiled, qs::SchedulerKind::Wheel, n);
    const qdi::dpa::TraceSet heap =
        acquire(qs::EngineKind::Compiled, qs::SchedulerKind::Heap, n);
    const qdi::dpa::TraceSet batch =
        acquire(qs::EngineKind::Batch, qs::SchedulerKind::Wheel, n);
    ASSERT_EQ(wheel.size(), n);
    ASSERT_EQ(batch.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto pt = wheel.plaintext(i);
      ASSERT_TRUE(std::equal(pt.begin(), pt.end(), batch.plaintext(i).begin(),
                             batch.plaintext(i).end()))
          << "seed " << GetParam() << " n " << n << " trace " << i;
      const auto ct = wheel.ciphertext(i);
      ASSERT_TRUE(std::equal(ct.begin(), ct.end(), heap.ciphertext(i).begin(),
                             heap.ciphertext(i).end()));
      ASSERT_TRUE(std::equal(ct.begin(), ct.end(), batch.ciphertext(i).begin(),
                             batch.ciphertext(i).end()))
          << "seed " << GetParam() << " n " << n << " trace " << i;
      for (std::size_t j = 0; j < wheel.num_samples(); ++j) {
        ASSERT_EQ(wheel.trace(i)[j], heap.trace(i)[j])
            << "seed " << GetParam() << " n " << n << " trace " << i;
        ASSERT_EQ(wheel.trace(i)[j], batch.trace(i)[j])
            << "seed " << GetParam() << " n " << n << " trace " << i
            << " sample " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, FuzzBatch,
                         ::testing::Range<std::uint64_t>(0, 12));
