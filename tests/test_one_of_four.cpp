#include <gtest/gtest.h>

#include "qdi/gates/builder.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;

namespace {
struct Q4XorFixture {
  qn::Netlist nl{"q4xor"};
  qg::Builder b{nl};
  qg::OneOfN a, c, o;
  qs::EnvSpec spec;

  Q4XorFixture() {
    a = b.one_of_n_input("a", 4);
    c = b.one_of_n_input("b", 4);
    o = b.q4_xor(a, c, "x");
    for (std::size_t r = 0; r < o.rails.size(); ++r)
      b.output(o.rails[r], "o" + std::to_string(r));
    spec.inputs = {a.ch, c.ch};
    spec.outputs = {o.ch};
    spec.period_ps = 4000.0;
  }
};
}  // namespace

TEST(Q4Xor, ExhaustiveTruthTable) {
  Q4XorFixture f;
  qs::Simulator sim(f.nl);
  qs::FourPhaseEnv env(sim, f.spec);
  env.apply_reset();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const std::vector<int> v{i, j};
      const auto cyc = env.send(v);
      ASSERT_TRUE(cyc.ok);
      EXPECT_EQ(cyc.outputs[0], i ^ j) << i << "," << j;
    }
  }
  EXPECT_EQ(sim.glitch_count(), 0u);
}

TEST(Q4Xor, TransitionCountConstantAndHalved) {
  // One 1-of-4 XOR does the work of two dual-rail XORs with fewer
  // transitions per computation (section II's power claim).
  Q4XorFixture f;
  qs::Simulator sim(f.nl);
  qs::FourPhaseEnv env(sim, f.spec);
  env.apply_reset();
  std::size_t q4_transitions = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const std::vector<int> v{i, j};
      const auto cyc = env.send(v);
      ASSERT_TRUE(cyc.ok);
      if (q4_transitions == 0)
        q4_transitions = cyc.transitions;
      else
        EXPECT_EQ(cyc.transitions, q4_transitions);
    }
  }

  // Reference: two dual-rail XOR gates computing the same 2-bit xor.
  qn::Netlist nl2("drxor2");
  qg::Builder b2(nl2);
  qg::DualRail alo = b2.dr_input("alo"), ahi = b2.dr_input("ahi");
  qg::DualRail blo = b2.dr_input("blo"), bhi = b2.dr_input("bhi");
  const qg::DualRail xlo = b2.dr_xor(alo, blo, "xlo");
  const qg::DualRail xhi = b2.dr_xor(ahi, bhi, "xhi");
  b2.dr_output(xlo, "xlo");
  b2.dr_output(xhi, "xhi");
  qs::EnvSpec spec2;
  spec2.inputs = {alo.ch, ahi.ch, blo.ch, bhi.ch};
  spec2.outputs = {xlo.ch, xhi.ch};
  spec2.period_ps = 4000.0;
  qs::Simulator sim2(nl2);
  qs::FourPhaseEnv env2(sim2, spec2);
  env2.apply_reset();
  const std::vector<int> v2{1, 0, 0, 1};
  const auto cyc2 = env2.send(v2);
  ASSERT_TRUE(cyc2.ok);

  EXPECT_LT(q4_transitions, cyc2.transitions);
}

TEST(Q4Xor, MintermGroupRegistered) {
  Q4XorFixture f;
  const qn::ChannelId mt = f.nl.find_channel("x_mt");
  ASSERT_NE(mt, qn::Netlist::kNoChannel);
  EXPECT_EQ(f.nl.channel(mt).arity(), 16u);
}

TEST(LatchStage1ofN, HoldsAndClears) {
  qn::Netlist nl("l4");
  qg::Builder b(nl);
  qg::OneOfN d = b.one_of_n_input("d", 4);
  const qn::NetId ack = b.input("ack");
  std::vector<qg::OneOfN> in{d};
  const auto q = b.latch_stage_1ofn(in, ack, "q");
  ASSERT_EQ(q.size(), 1u);
  ASSERT_EQ(q[0].rails.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r)
    b.output(q[0].rails[r], "q" + std::to_string(r));

  qs::Simulator sim(nl);
  sim.drive(b.reset_net(), true, 0.0);
  sim.initialize();
  sim.run_until_stable();
  sim.drive(b.reset_net(), false, sim.now() + 50);
  sim.run_until_stable();

  sim.drive(d.rails[2], true, sim.now() + 10);
  sim.run_until_stable();
  EXPECT_TRUE(sim.value(q[0].rails[2]));
  for (std::size_t r = 0; r < 4; ++r)
    if (r != 2) EXPECT_FALSE(sim.value(q[0].rails[r]));

  sim.drive(ack, true, sim.now() + 10);
  sim.run_until_stable();
  sim.drive(d.rails[2], false, sim.now() + 10);
  sim.run_until_stable();
  EXPECT_FALSE(sim.value(q[0].rails[2]));
}

TEST(Q4Xor, FourPhasePipelineWithLatch) {
  // q4_xor + 1-of-4 latch, full handshake cycles.
  qn::Netlist nl("q4p");
  qg::Builder b(nl);
  qg::OneOfN a = b.one_of_n_input("a", 4);
  qg::OneOfN c = b.one_of_n_input("b", 4);
  const qg::OneOfN x = b.q4_xor(a, c, "x");
  const qn::NetId ack = b.input("ack");
  std::vector<qg::OneOfN> xs{x};
  const auto q = b.latch_stage_1ofn(xs, ack, "q");
  for (std::size_t r = 0; r < 4; ++r)
    b.output(q[0].rails[r], "q" + std::to_string(r));
  qs::EnvSpec spec;
  spec.inputs = {a.ch, c.ch};
  spec.outputs = {q[0].ch};
  spec.acks_to_block = {ack};
  spec.reset = b.reset_net();
  spec.period_ps = 4000.0;

  qs::Simulator sim(nl);
  qs::FourPhaseEnv env(sim, spec);
  env.apply_reset();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const std::vector<int> v{i, j};
      const auto cyc = env.send(v);
      ASSERT_TRUE(cyc.ok);
      EXPECT_EQ(cyc.outputs[0], i ^ j);
    }
  }
}
