#include <gtest/gtest.h>

#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"
#include "qdi/gates/sbox.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;
namespace qc = qdi::crypto;

namespace {
std::vector<int> slice_values(unsigned p, unsigned k, int bits) {
  std::vector<int> v;
  for (int b = 0; b < bits; ++b) v.push_back((p >> b) & 1);
  for (int b = 0; b < bits; ++b) v.push_back((k >> b) & 1);
  return v;
}

unsigned decode_outputs(const std::vector<int>& outs) {
  unsigned v = 0;
  for (std::size_t b = 0; b < outs.size(); ++b)
    if (outs[b] == 1) v |= (1u << b);
  return v;
}
}  // namespace

TEST(BalancedLut, SmallTableExhaustive) {
  // 3-bit -> 2-bit table with balanced output columns.
  auto table = [](unsigned x) { return ((x * 3u) ^ (x >> 1)) & 3u; };
  // Verify the table is non-constant per bit (required by the generator).
  qn::Netlist nl("lut");
  qg::Builder b(nl);
  std::vector<qg::DualRail> in;
  for (int i = 0; i < 3; ++i) in.push_back(b.dr_input("i" + std::to_string(i)));
  const qg::LutResult lut = qg::build_balanced_lut(b, in, 2, table, "t");
  EXPECT_EQ(lut.minterm_lines.size(), 8u);
  EXPECT_EQ(lut.decode_levels, 2);
  for (const auto& o : lut.outputs) b.dr_output(o, "o");

  qs::EnvSpec spec;
  for (const auto& d : in) spec.inputs.push_back(d.ch);
  for (const auto& d : lut.outputs) spec.outputs.push_back(d.ch);
  spec.period_ps = 4000.0;
  qs::Simulator sim(nl);
  qs::FourPhaseEnv env(sim, spec);
  env.apply_reset();
  for (unsigned p = 0; p < 8; ++p) {
    std::vector<int> v;
    for (int bit = 0; bit < 3; ++bit) v.push_back((p >> bit) & 1);
    const auto cyc = env.send(v);
    ASSERT_TRUE(cyc.ok);
    EXPECT_EQ(decode_outputs(cyc.outputs), table(p)) << "p=" << p;
  }
}

TEST(AesByteSlice, ComputesSboxOfXorExhaustively) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  ASSERT_TRUE(slice.nl.check().empty());
  qs::Simulator sim(slice.nl);
  qs::FourPhaseEnv env(sim, slice.env);
  env.apply_reset();
  const unsigned key = 0x5a;
  for (unsigned p = 0; p < 256; p += 1) {
    const auto cyc = env.send(slice_values(p, key, 8));
    ASSERT_TRUE(cyc.ok) << "p=" << p;
    EXPECT_EQ(decode_outputs(cyc.outputs),
              qc::aes_sbox(static_cast<std::uint8_t>(p ^ key)))
        << "p=" << p;
  }
}

TEST(AesByteSlice, TransitionCountConstantOverAllPlaintexts) {
  // The headline security invariant at block scale: Nt is the same for
  // all 256 plaintext bytes.
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  qs::Simulator sim(slice.nl);
  qs::FourPhaseEnv env(sim, slice.env);
  env.apply_reset();
  std::size_t expected = 0;
  for (unsigned p = 0; p < 256; p += 1) {
    const auto cyc = env.send(slice_values(p, 0x3c, 8));
    ASSERT_TRUE(cyc.ok);
    if (expected == 0)
      expected = cyc.transitions;
    else
      ASSERT_EQ(cyc.transitions, expected) << "p=" << p;
  }
  EXPECT_EQ(sim.glitch_count(), 0u);
}

TEST(AesByteSlice, TransitionCountConstantOverKeys) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  qs::Simulator sim(slice.nl);
  qs::FourPhaseEnv env(sim, slice.env);
  env.apply_reset();
  std::size_t expected = 0;
  for (unsigned k : {0u, 1u, 0x80u, 0xffu, 0x5au}) {
    const auto cyc = env.send(slice_values(0xa7, k, 8));
    ASSERT_TRUE(cyc.ok);
    if (expected == 0)
      expected = cyc.transitions;
    else
      EXPECT_EQ(cyc.transitions, expected) << "k=" << k;
  }
}

TEST(DesSboxSlice, ComputesSbox1Exhaustively) {
  qg::DesSboxSlice slice = qg::build_des_sbox_slice(0);
  ASSERT_TRUE(slice.nl.check().empty());
  qs::Simulator sim(slice.nl);
  qs::FourPhaseEnv env(sim, slice.env);
  env.apply_reset();
  const unsigned key = 0x2b;
  for (unsigned p = 0; p < 64; ++p) {
    const auto cyc = env.send(slice_values(p, key, 6));
    ASSERT_TRUE(cyc.ok);
    EXPECT_EQ(decode_outputs(cyc.outputs),
              qc::des_sbox(0, static_cast<std::uint8_t>(p ^ key)))
        << "p=" << p;
  }
}

TEST(DesSboxSlice, OtherBoxesMatchReference) {
  for (int box : {3, 7}) {
    qg::DesSboxSlice slice = qg::build_des_sbox_slice(box);
    qs::Simulator sim(slice.nl);
    qs::FourPhaseEnv env(sim, slice.env);
    env.apply_reset();
    for (unsigned p = 0; p < 64; p += 7) {
      const auto cyc = env.send(slice_values(p, 0, 6));
      ASSERT_TRUE(cyc.ok);
      EXPECT_EQ(decode_outputs(cyc.outputs),
                qc::des_sbox(box, static_cast<std::uint8_t>(p)))
          << "box=" << box << " p=" << p;
    }
  }
}

TEST(DesSboxSlice, TransitionCountConstant) {
  qg::DesSboxSlice slice = qg::build_des_sbox_slice(0);
  qs::Simulator sim(slice.nl);
  qs::FourPhaseEnv env(sim, slice.env);
  env.apply_reset();
  std::size_t expected = 0;
  for (unsigned p = 0; p < 64; ++p) {
    const auto cyc = env.send(slice_values(p, 0x15, 6));
    ASSERT_TRUE(cyc.ok);
    if (expected == 0)
      expected = cyc.transitions;
    else
      ASSERT_EQ(cyc.transitions, expected);
  }
}

TEST(BalancedLut, MintermLinesAreOneHot) {
  // Directly probe the decode bundle: exactly one line high per codeword,
  // all low after return-to-zero.
  qn::Netlist nl("dec");
  qg::Builder b(nl);
  std::vector<qg::DualRail> in;
  for (int i = 0; i < 4; ++i) in.push_back(b.dr_input("i" + std::to_string(i)));
  auto table = [](unsigned x) { return x & 1u; };  // any valid table
  const qg::LutResult lut = qg::build_balanced_lut(b, in, 1, table, "t");
  for (const auto& o : lut.outputs) b.dr_output(o, "o");
  ASSERT_EQ(lut.minterm_lines.size(), 16u);

  qs::Simulator sim(nl);
  sim.initialize();
  sim.run_until_stable();
  for (unsigned p = 0; p < 16; ++p) {
    // Drive valid codeword.
    for (int bit = 0; bit < 4; ++bit)
      sim.drive(in[static_cast<std::size_t>(bit)].rail((p >> bit) & 1), true,
                sim.now() + 10);
    sim.run_until_stable();
    unsigned high = 0, which = 99;
    for (std::size_t m = 0; m < lut.minterm_lines.size(); ++m) {
      if (sim.value(lut.minterm_lines[m])) {
        ++high;
        which = static_cast<unsigned>(m);
      }
    }
    EXPECT_EQ(high, 1u) << "p=" << p;
    EXPECT_EQ(which, p);
    // Return to zero.
    for (int bit = 0; bit < 4; ++bit)
      sim.drive(in[static_cast<std::size_t>(bit)].rail((p >> bit) & 1), false,
                sim.now() + 10);
    sim.run_until_stable();
    for (qn::NetId line : lut.minterm_lines) EXPECT_FALSE(sim.value(line));
  }
}
