#include <gtest/gtest.h>

#include <algorithm>

#include "qdi/gates/testbench.hpp"
#include "qdi/netlist/graph.hpp"

namespace qn = qdi::netlist;
namespace qg = qdi::gates;
using qn::CellKind;

TEST(Graph, ChainLevels) {
  qn::Netlist nl("chain");
  const qn::NetId a = nl.add_input("a");
  const qn::NetId b = nl.add_net("b");
  const qn::NetId c = nl.add_net("c");
  const qn::CellId inv1 = nl.add_cell(CellKind::Inv, "i1", {a}, b);
  const qn::CellId inv2 = nl.add_cell(CellKind::Inv, "i2", {b}, c);
  nl.mark_output(c, "c");

  const qn::Graph g(nl);
  EXPECT_FALSE(g.combinational_cycle());
  EXPECT_EQ(g.level(inv1), 1);
  EXPECT_EQ(g.level(inv2), 2);
  EXPECT_EQ(g.num_levels(), 2);
}

TEST(Graph, TopoOrderRespectsEdges) {
  qn::Netlist nl("diamond");
  const qn::NetId a = nl.add_input("a");
  const qn::NetId l = nl.add_net("l");
  const qn::NetId r = nl.add_net("r");
  const qn::NetId o = nl.add_net("o");
  nl.add_cell(CellKind::Inv, "il", {a}, l);
  nl.add_cell(CellKind::Buf, "ir", {a}, r);
  nl.add_cell(CellKind::And2, "uo", {l, r}, o);
  nl.mark_output(o, "o");

  const qn::Graph g(nl);
  std::vector<int> pos(nl.num_cells());
  for (std::size_t i = 0; i < g.topo_order().size(); ++i)
    pos[g.topo_order()[i]] = static_cast<int>(i);
  for (qn::CellId c = 0; c < nl.num_cells(); ++c) {
    for (qn::CellId s : g.successors(c)) {
      if (!qn::is_muller(nl.cell(s).kind))
        EXPECT_LT(pos[c], pos[s]);
    }
  }
}

TEST(Graph, XorStageMatchesPaperFig5) {
  // The paper reads Nt = Nc = 4 and N1j..N4j = 1 off the fig. 5 graph.
  qg::XorStage x = qg::build_xor_stage();
  const qn::Graph g(x.nl);
  EXPECT_FALSE(g.combinational_cycle());
  EXPECT_EQ(g.num_levels(), 4);

  // Muller minterm layer at level 1, ORs at level 2, Cr at 3, NOR at 4.
  for (qn::NetId m : x.m) EXPECT_EQ(g.level(x.nl.net(m).driver), 1);
  EXPECT_EQ(g.level(x.nl.net(x.s0).driver), 2);
  EXPECT_EQ(g.level(x.nl.net(x.s1).driver), 2);
  EXPECT_EQ(g.level(x.nl.net(x.co0).driver), 3);
  EXPECT_EQ(g.level(x.nl.net(x.co1).driver), 3);
  EXPECT_EQ(g.level(x.nl.net(x.ack_out).driver), 4);
}

TEST(Graph, XorStageLevelOccupancy) {
  qg::XorStage x = qg::build_xor_stage();
  const qn::Graph g(x.nl);
  const auto occ = g.level_occupancy();
  ASSERT_EQ(occ.size(), 4u);
  // Level 1 holds the four minterm gates plus the ack inverter.
  EXPECT_EQ(occ[0], 5u);
  EXPECT_EQ(occ[1], 2u);  // O1, O2
  EXPECT_EQ(occ[2], 2u);  // H1, H2
  EXPECT_EQ(occ[3], 1u);  // N1
}

TEST(Graph, FaninConeOfXorOutput) {
  qg::XorStage x = qg::build_xor_stage();
  const qn::Graph g(x.nl);
  const auto cone = g.fanin_cone(x.co0);
  // co0's cone: H1, O1, M1, M2, inverter, input pseudo-cells (a0,a1,b0,b1,
  // ack, rst). M3/M4/O2 must NOT be in it.
  const qn::CellId o2 = x.nl.net(x.s1).driver;
  const qn::CellId m3 = x.nl.net(x.m[2]).driver;
  EXPECT_EQ(std::count(cone.begin(), cone.end(), o2), 0);
  EXPECT_EQ(std::count(cone.begin(), cone.end(), m3), 0);
  const qn::CellId o1 = x.nl.net(x.s0).driver;
  const qn::CellId m1 = x.nl.net(x.m[0]).driver;
  EXPECT_EQ(std::count(cone.begin(), cone.end(), o1), 1);
  EXPECT_EQ(std::count(cone.begin(), cone.end(), m1), 1);
}

TEST(Graph, CombinationalCycleDetected) {
  qn::Netlist nl("ring");
  const qn::NetId a = nl.add_net("a");
  const qn::NetId b = nl.add_net("b");
  nl.add_cell(CellKind::Inv, "i1", {a}, b);
  nl.add_cell(CellKind::Inv, "i2", {b}, a);
  const qn::Graph g(nl);
  EXPECT_TRUE(g.combinational_cycle());
}

TEST(Graph, MullerCycleIsAccepted) {
  // A C-element loop (e.g. a handshake loop) is legal in QDI.
  qn::Netlist nl("cloop");
  const qn::NetId x = nl.add_input("x");
  const qn::NetId a = nl.add_net("a");
  const qn::NetId b = nl.add_net("b");
  nl.add_cell(CellKind::Muller2, "c1", {x, b}, a);
  nl.add_cell(CellKind::Inv, "i1", {a}, b);
  const qn::Graph g(nl);
  EXPECT_FALSE(g.combinational_cycle());
  EXPECT_EQ(g.topo_order().size(), nl.num_cells());
}

TEST(Graph, DotExportContainsAnnotations) {
  qg::XorStage x = qg::build_xor_stage();
  x.nl.net(x.s0).cap_ff = 16.0;
  const qn::Graph g(x.nl);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("16fF"), std::string::npos);
  const std::string cone = g.cone_to_dot(x.co0);
  EXPECT_NE(cone.find("digraph"), std::string::npos);
  EXPECT_LT(cone.size(), dot.size());
}
