#include <gtest/gtest.h>

#include "qdi/core/power_report.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;
namespace qc = qdi::core;
namespace qp = qdi::power;

namespace {
std::vector<qc::BlockPower> slice_cycle_power() {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  qs::Simulator sim(slice.nl);
  qs::FourPhaseEnv env(sim, slice.env);
  env.apply_reset();
  sim.clear_log();
  std::vector<int> values(16, 0);
  values[0] = 1;
  values[9] = 1;
  const auto cyc = env.send(values);
  EXPECT_TRUE(cyc.ok);
  return qc::block_power(slice.nl, sim.log(), qp::PowerModelParams{});
}
}  // namespace

TEST(BlockPower, SharesSumToOne) {
  const auto rows = slice_cycle_power();
  ASSERT_FALSE(rows.empty());
  double total_share = 0.0;
  for (const auto& b : rows) total_share += b.share;
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST(BlockPower, SortedByChargeAndAllPositive) {
  const auto rows = slice_cycle_power();
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_GE(rows[i - 1].charge_fc, rows[i].charge_fc);
  for (const auto& b : rows) {
    EXPECT_GT(b.transitions, 0u);
    EXPECT_GT(b.charge_fc, 0.0);
  }
}

TEST(BlockPower, SboxDominatesTheSlice) {
  // The 2.5k-gate DIMS S-Box does almost all the switching in the slice.
  const auto rows = slice_cycle_power();
  bool found = false;
  for (const auto& b : rows) {
    if (b.block == "slice/bytesub") {
      found = true;
      EXPECT_GT(b.share, 0.3);
    }
  }
  EXPECT_TRUE(found);
}

TEST(BlockPower, EnvironmentTrafficIsAttributed) {
  const auto rows = slice_cycle_power();
  bool env_found = false;
  for (const auto& b : rows)
    if (b.block == "(environment)") env_found = true;
  EXPECT_TRUE(env_found);  // the driven input rails
}

TEST(BlockPower, TableRenders) {
  const auto rows = slice_cycle_power();
  const auto t = qc::block_power_table(rows);
  EXPECT_EQ(t.rows(), rows.size());
  EXPECT_NE(t.to_string().find("slice/bytesub"), std::string::npos);
}

TEST(BlockPower, EmptyLogIsEmptyReport) {
  qg::XorStage x = qg::build_xor_stage();
  const std::vector<qs::Transition> none;
  EXPECT_TRUE(qc::block_power(x.nl, none, qp::PowerModelParams{}).empty());
}
