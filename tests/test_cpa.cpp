#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "qdi/crypto/des.hpp"

#include "qdi/campaign/target.hpp"
#include "qdi/crypto/aes.hpp"
#include "qdi/dpa/cpa.hpp"
#include "qdi/util/rng.hpp"

namespace qd = qdi::dpa;
namespace qc = qdi::crypto;
namespace qu = qdi::util;
namespace qp = qdi::power;

namespace {
/// Traces leaking hw(SBOX(p ^ key)) at one sample plus noise.
qd::TraceSet synthetic_hw_leak(std::size_t n, std::uint8_t key, double amp,
                               double noise, std::uint64_t seed) {
  qu::Rng rng(seed);
  qd::TraceSet ts;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t p = rng.byte();
    qp::PowerTrace t(0.0, 10.0, 48);
    for (std::size_t j = 0; j < 48; ++j) t[j] = rng.gaussian(0.0, noise);
    const int hw = std::popcount(
        static_cast<unsigned>(qc::aes_sbox(static_cast<std::uint8_t>(p ^ key))));
    t[17] += amp * hw;
    ts.add(std::move(t), {p});
  }
  return ts;
}
}  // namespace

TEST(LeakageModels, HammingWeights) {
  const auto m = qd::aes_sbox_hw_model(0);
  const std::vector<std::uint8_t> pt{0x00};
  EXPECT_DOUBLE_EQ(m(pt, 0x00),
                   std::popcount(static_cast<unsigned>(qc::aes_sbox(0))));
  const auto x = qd::aes_xor_hw_model(0);
  EXPECT_DOUBLE_EQ(x(pt, 0xff), 8.0);
  EXPECT_DOUBLE_EQ(x(pt, 0x0f), 4.0);
  const auto d = qd::des_sbox_hw_model(0);
  EXPECT_DOUBLE_EQ(d(pt, 0),
                   std::popcount(static_cast<unsigned>(qdi::crypto::des_sbox(0, 0))));
}

TEST(Cpa, RecoversPlantedKey) {
  const std::uint8_t key = 0x9c;
  const auto ts = synthetic_hw_leak(1500, key, 2.0, 1.0, 21);
  const qd::CpaResult r = qd::cpa_attack(ts, qd::aes_sbox_hw_model(0), 256);
  EXPECT_EQ(r.best_guess, key);
  EXPECT_EQ(r.rank_of(key), 0u);
  EXPECT_EQ(r.best_sample, 17u);
  EXPECT_GT(r.best_rho, 0.8);
  EXPECT_GT(r.margin(), 1.5);
}

TEST(Cpa, CorrelationTracePeaksAtLeakSample) {
  const std::uint8_t key = 0x42;
  const auto ts = synthetic_hw_leak(1000, key, 3.0, 0.5, 22);
  const auto rho = qd::cpa_correlation_trace(ts, qd::aes_sbox_hw_model(0), key);
  std::size_t best = 0;
  for (std::size_t j = 0; j < rho.size(); ++j)
    if (std::fabs(rho[j]) > std::fabs(rho[best])) best = j;
  EXPECT_EQ(best, 17u);
  EXPECT_GT(rho[17], 0.9);
}

TEST(Cpa, NoLeakMeansLowCorrelation) {
  const auto ts = synthetic_hw_leak(1000, 0x00, 0.0, 1.0, 23);
  const qd::CpaResult r = qd::cpa_attack(ts, qd::aes_sbox_hw_model(0), 256);
  EXPECT_LT(r.best_rho, 0.2);
}

TEST(Cpa, WindowRestrictsSearch) {
  const std::uint8_t key = 0x5d;
  const auto ts = synthetic_hw_leak(800, key, 3.0, 0.5, 24);
  // Window excluding the leak sample: correct key no longer special.
  const qd::CpaResult blind =
      qd::cpa_attack(ts, qd::aes_sbox_hw_model(0), 256, 0, 20, 48);
  EXPECT_LT(blind.best_rho, 0.3);
  // Window containing it: recovered.
  const qd::CpaResult seeing =
      qd::cpa_attack(ts, qd::aes_sbox_hw_model(0), 256, 0, 10, 20);
  EXPECT_EQ(seeing.best_guess, key);
}

TEST(Cpa, PrefixUsesFewerTraces) {
  const std::uint8_t key = 0x31;
  const auto ts = synthetic_hw_leak(2000, key, 1.0, 4.0, 25);
  const qd::CpaResult few = qd::cpa_attack(ts, qd::aes_sbox_hw_model(0), 256, 100);
  const qd::CpaResult many = qd::cpa_attack(ts, qd::aes_sbox_hw_model(0), 256, 2000);
  // With heavy noise, 100 traces are usually not enough but 2000 are.
  EXPECT_EQ(many.best_guess, key);
  EXPECT_GE(many.margin(), few.margin() * 0.8);
}

TEST(Cpa, EndToEndOnUnbalancedSlice) {
  // CPA against the simulated circuit: unbalance the S-Box output
  // channels so that rail-1 charge tracks the output Hamming weight.
  const std::uint8_t key = 0x66;
  qdi::campaign::TargetInstance inst =
      qdi::campaign::aes_byte_slice().build(key);
  for (qdi::netlist::ChannelId ch = 0; ch < inst.nl.num_channels(); ++ch) {
    const qdi::netlist::Channel& c = inst.nl.channel(ch);
    if (c.name.find("sbox/out") != std::string::npos ||
        c.name.find("hb/q_q") != std::string::npos)
      inst.nl.net(c.rails[1]).cap_ff *= 2.0;
  }
  qdi::campaign::SimTraceSource src(inst.nl, inst.env, inst.stimulus, {});
  const qd::TraceSet ts = qdi::campaign::acquire_batch(src, 400, 5);
  const qd::CpaResult r = qd::cpa_attack(ts, qd::aes_sbox_hw_model(0), 256);
  EXPECT_EQ(r.best_guess, key);
  EXPECT_EQ(r.rank_of(key), 0u);
}
