#include <gtest/gtest.h>

#include "qdi/gates/testbench.hpp"
#include "qdi/netlist/verilog.hpp"

namespace qn = qdi::netlist;
namespace qg = qdi::gates;

TEST(VerilogIdent, SanitizesNames) {
  EXPECT_EQ(qn::verilog_ident("xor/a_0"), "xor_a_0");
  EXPECT_EQ(qn::verilog_ident("c#12.g"), "c_12_g");
  EXPECT_EQ(qn::verilog_ident("0net"), "n0net");
  EXPECT_EQ(qn::verilog_ident(""), "n");
  EXPECT_EQ(qn::verilog_ident("plain_name9"), "plain_name9");
}

TEST(Verilog, EmitsModuleWithPorts) {
  qg::XorStage x = qg::build_xor_stage();
  const std::string v = qn::to_verilog(x.nl);
  EXPECT_NE(v.find("module xor_stage("), std::string::npos);
  EXPECT_NE(v.find("input xor_a_0;"), std::string::npos);
  EXPECT_NE(v.find("input xor_b_1;"), std::string::npos);
  EXPECT_NE(v.find("input rst;"), std::string::npos);
  EXPECT_NE(v.find("output"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, InstantiatesEveryRealGate) {
  qg::XorStage x = qg::build_xor_stage();
  const std::string v = qn::to_verilog(x.nl);
  // 4 Muller minterms + 2 Cr latches.
  std::size_t mullers = 0, pos = 0;
  while ((pos = v.find("qdi_muller2 ", pos)) != std::string::npos) {
    ++mullers;
    pos += 1;
  }
  EXPECT_EQ(mullers, 4u);
  EXPECT_NE(v.find("qdi_muller2r "), std::string::npos);
  EXPECT_NE(v.find("qdi_or2 "), std::string::npos);
  EXPECT_NE(v.find("qdi_nor2 "), std::string::npos);
  EXPECT_NE(v.find("qdi_inv "), std::string::npos);
  // The resettable latches reference the reset pin.
  EXPECT_NE(v.find(".rst(rst)"), std::string::npos);
}

TEST(Verilog, CellModelsAreOptional) {
  qg::XorStage x = qg::build_xor_stage();
  qn::VerilogOptions opt;
  opt.emit_cell_models = false;
  const std::string v = qn::to_verilog(x.nl, opt);
  EXPECT_EQ(v.find("module qdi_muller2("), std::string::npos);
  const std::string with = qn::to_verilog(x.nl);
  EXPECT_NE(with.find("module qdi_muller2("), std::string::npos);
  EXPECT_LT(v.size(), with.size());
}

TEST(Verilog, CapCommentsFollowAnnotation) {
  qg::XorStage x = qg::build_xor_stage();
  x.nl.net(x.s0).cap_ff = 23.5;
  const std::string v = qn::to_verilog(x.nl);
  EXPECT_NE(v.find("// 23.5 fF"), std::string::npos);
  qn::VerilogOptions opt;
  opt.emit_cap_comments = false;
  EXPECT_EQ(qn::to_verilog(x.nl, opt).find("// 23.5 fF"), std::string::npos);
}

TEST(Verilog, BalancedParenthesesAndScale) {
  // Smoke: a mid-size netlist emits one instance per real gate.
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  qn::VerilogOptions opt;
  opt.emit_cell_models = false;
  opt.emit_cap_comments = false;
  const std::string v = qn::to_verilog(slice.nl, opt);
  std::size_t instances = 0, pos = 0;
  while ((pos = v.find("qdi_", pos)) != std::string::npos) {
    ++instances;
    pos += 4;
  }
  EXPECT_EQ(instances, slice.nl.num_gates());
}
