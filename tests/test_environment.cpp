#include <gtest/gtest.h>
#include <cmath>

#include "qdi/gates/testbench.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"

namespace qs = qdi::sim;
namespace qg = qdi::gates;

namespace {
struct XorFixture {
  qg::XorStage x = qg::build_xor_stage();
  qs::Simulator sim{x.nl};
  qs::FourPhaseEnv env{sim, x.env};
  XorFixture() { env.apply_reset(); }
};
}  // namespace

TEST(FourPhaseEnv, ResetLeavesBlockEmpty) {
  XorFixture f;
  EXPECT_TRUE(f.env.outputs_empty());
  EXPECT_FALSE(f.sim.value(f.x.co0));
  EXPECT_FALSE(f.sim.value(f.x.co1));
  // Completion NOR is high when the output channel is empty (fig. 4).
  EXPECT_TRUE(f.sim.value(f.x.ack_out));
}

// Exhaustive four-phase functional check of the fig. 4 XOR.
class XorCycle : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(XorCycle, ComputesXorAndReturnsToZero) {
  XorFixture f;
  const auto [a, b] = GetParam();
  const std::vector<int> values{a, b};
  const auto cyc = f.env.send(values);
  ASSERT_TRUE(cyc.ok);
  ASSERT_EQ(cyc.outputs.size(), 1u);
  EXPECT_EQ(cyc.outputs[0], a ^ b);
  EXPECT_GT(cyc.t_valid, cyc.t_start);
  EXPECT_GT(cyc.t_empty, cyc.t_valid);
  EXPECT_GE(cyc.t_end, cyc.t_empty);
  EXPECT_TRUE(f.env.outputs_empty());
}

INSTANTIATE_TEST_SUITE_P(AllInputs, XorCycle,
                         ::testing::Values(std::pair{0, 0}, std::pair{0, 1},
                                           std::pair{1, 0}, std::pair{1, 1}));

TEST(FourPhaseEnv, TransitionCountIsDataIndependent) {
  // The central QDI-security invariant (section II): every computation
  // involves the same number of transitions, whatever the data.
  XorFixture f;
  std::size_t expected = 0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const std::vector<int> values{a, b};
      const auto cyc = f.env.send(values);
      ASSERT_TRUE(cyc.ok);
      if (expected == 0)
        expected = cyc.transitions;
      else
        EXPECT_EQ(cyc.transitions, expected) << a << "," << b;
    }
  }
  EXPECT_GT(expected, 0u);
}

TEST(FourPhaseEnv, EvaluationPhaseHasNtEqualNcEqual4) {
  // Fig. 5 reading: Nt = Nc = 4 — four gates fire between data arrival
  // and output validity (M, O, Cr, NOR).
  XorFixture f;
  f.sim.clear_log();
  const std::vector<int> values{1, 0};
  const auto cyc = f.env.send(values);
  ASSERT_TRUE(cyc.ok);
  std::size_t eval_transitions = 0;
  for (const auto& t : f.sim.log()) {
    if (t.t_ps >= cyc.t_start && t.t_ps <= cyc.t_valid) {
      // Only block-internal nets (skip env-driven input rails).
      const auto& net = f.x.nl.net(t.net);
      const auto& drv = f.x.nl.cell(net.driver);
      if (!qdi::netlist::is_pseudo(drv.kind)) ++eval_transitions;
    }
  }
  EXPECT_EQ(eval_transitions, 4u);
}

TEST(FourPhaseEnv, NoGlitchesInQdiBlock) {
  XorFixture f;
  for (int i = 0; i < 8; ++i) {
    const std::vector<int> values{i & 1, (i >> 1) & 1};
    ASSERT_TRUE(f.env.send(values).ok);
  }
  EXPECT_EQ(f.sim.glitch_count(), 0u);
}

TEST(FourPhaseEnv, CyclesAlignOnPeriodGrid) {
  XorFixture f;
  const std::vector<int> v{1, 1};
  const auto c1 = f.env.send(v);
  const auto c2 = f.env.send(v);
  const double period = f.x.env.period_ps;
  EXPECT_DOUBLE_EQ(std::fmod(c1.t_start, period), 0.0);
  EXPECT_DOUBLE_EQ(std::fmod(c2.t_start, period), 0.0);
  EXPECT_GE(c2.t_start, c1.t_start + period);
}

TEST(FourPhaseEnv, BackToBackCyclesAreIndependent) {
  XorFixture f;
  // Same value twice, then different: outputs must always be correct
  // (return-to-zero between codewords erases history).
  for (int v : {1, 1, 0, 1, 0, 0}) {
    const std::vector<int> values{v, 0};
    const auto cyc = f.env.send(values);
    ASSERT_TRUE(cyc.ok);
    EXPECT_EQ(cyc.outputs[0], v);
  }
}

TEST(FourPhaseEnv, ReadChannelDetectsInvalid) {
  XorFixture f;
  // Before any data, the output channel is empty -> -1.
  EXPECT_EQ(f.env.read_channel(f.x.out_ch), -1);
}

TEST(FourPhaseEnv, PeriodOverflowThrows) {
  qg::XorStage x = qg::build_xor_stage(/*period_ps=*/100.0);  // far too short
  qs::Simulator sim(x.nl);
  qs::FourPhaseEnv env(sim, x.env);
  env.apply_reset();
  const std::vector<int> v{1, 0};
  EXPECT_THROW(env.send(v), std::runtime_error);
}
