// Crash-safe sharded campaign runtime: checkpoint codec named-error
// coverage, atomic commit rotation and recovery fallback, kill/resume
// bit-identity (within a run, across runs, and fuzzed over registry
// targets × engines × thread counts), stall-watchdog re-dispatch, and
// honest degraded-coverage reporting.
//
// Checkpoint directories live under the test working directory (the
// build tree), one per test, wiped at the start of each test.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "qdi/qdi.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define QDI_ASAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define QDI_ASAN_ACTIVE 1
#endif
#endif

namespace qc = qdi::campaign;
namespace qd = qdi::dpa;
namespace qs = qdi::sim;
namespace qu = qdi::util;

namespace {

/// Per-test checkpoint directory (relative: stays inside the build
/// tree). Stale generations from a previous run are unlinked so every
/// test starts from an empty shard store.
std::string fresh_dir(const std::string& name) {
  const std::string dir = "shard_ckpt_tests/" + name;
  for (std::size_t s = 0; s < 16; ++s) {
    std::remove(qc::checkpoint_path(dir, s).c_str());
    std::remove(qc::checkpoint_prev_path(dir, s).c_str());
  }
  return dir;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::vector<std::uint8_t> b = read_file(path);
  ASSERT_LT(offset, b.size());
  b[offset] ^= 0x5a;
  write_file(path, b);
}

/// The strong contract: an interrupted-and-resumed sharded campaign is
/// BIT-identical to an uninterrupted one — scores, trajectories, and
/// per-shard stream digests.
void expect_identical(const qc::ShardedResult& a, const qc::ShardedResult& b) {
  EXPECT_EQ(a.covered, b.covered);
  EXPECT_EQ(a.total_traces, b.total_traces);
  ASSERT_TRUE(a.attack.has_value());
  ASSERT_TRUE(b.attack.has_value());
  EXPECT_EQ(a.attack->guess_scores, b.attack->guess_scores);  // bit-exact
  EXPECT_EQ(a.attack->best_guess, b.attack->best_guess);
  EXPECT_EQ(a.attack->true_key_rank, b.attack->true_key_rank);
  EXPECT_EQ(a.attack->mtd, b.attack->mtd);
  ASSERT_EQ(a.rank_trajectory.size(), b.rank_trajectory.size());
  for (std::size_t i = 0; i < a.rank_trajectory.size(); ++i) {
    EXPECT_EQ(a.rank_trajectory[i].traces, b.rank_trajectory[i].traces);
    EXPECT_EQ(a.rank_trajectory[i].rank, b.rank_trajectory[i].rank);
  }
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t i = 0; i < a.shards.size(); ++i)
    EXPECT_EQ(a.shards[i].digest_hex, b.shards[i].digest_hex) << "shard " << i;
}

qc::Campaign base_campaign(qs::EngineKind engine = qs::EngineKind::Compiled,
                           unsigned threads = 1) {
  return qc::Campaign()
      .target(qc::des_sbox_slice())
      .key(0x15)
      .seed(7)
      .traces(96)
      .threads(threads)
      .engine(engine)
      .attack(qc::Dpa{});
}

qc::ShardedOptions base_opts(const std::string& dir) {
  qc::ShardedOptions opt;
  opt.shards = 3;
  opt.checkpoint_interval = 16;
  opt.chunk_traces = 8;
  opt.checkpoint_dir = dir;
  opt.backoff_ms = 0;
  return opt;
}

}  // namespace

// ---- shard planning --------------------------------------------------------

TEST(ShardPlan, BalancedContiguousCover) {
  const std::vector<qc::ShardSpec> specs = qc::plan_shards(100, 3);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].lo, 0u);
  EXPECT_EQ(specs[0].hi, 34u);  // 100 = 34 + 33 + 33
  EXPECT_EQ(specs[1].lo, 34u);
  EXPECT_EQ(specs[1].hi, 67u);
  EXPECT_EQ(specs[2].lo, 67u);
  EXPECT_EQ(specs[2].hi, 100u);
  // More shards than traces: clamped, never an empty range.
  const std::vector<qc::ShardSpec> tiny = qc::plan_shards(2, 8);
  ASSERT_EQ(tiny.size(), 2u);
  EXPECT_EQ(tiny[1].hi, 2u);
}

// ---- checkpoint codec ------------------------------------------------------

namespace {

qc::ShardCheckpoint sample_checkpoint() {
  qc::ShardCheckpoint c;
  c.fingerprint = 0x1122334455667788ULL;
  c.shard = 1;
  c.lo = 32;
  c.hi = 64;
  c.next = 48;
  qu::Sha256 d;
  d.update_u64(0xdeadbeef);  // leave a buffered partial block behind
  c.digest = d.save();
  for (int i = 0; i < 37; ++i)
    c.acc_state.push_back(static_cast<std::uint8_t>(i * 11));
  return c;
}

qc::CheckpointError::Kind decode_kind(std::vector<std::uint8_t> bytes) {
  try {
    qc::decode_checkpoint(bytes);
  } catch (const qc::CheckpointError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "decode_checkpoint accepted a malformed record of "
                << bytes.size() << " bytes";
  return qc::CheckpointError::Kind::Truncated;
}

}  // namespace

TEST(CheckpointCodec, RoundTripIsExact) {
  const qc::ShardCheckpoint c = sample_checkpoint();
  const std::vector<std::uint8_t> bytes = qc::encode_checkpoint(c);
  const qc::ShardCheckpoint back = qc::decode_checkpoint(bytes);
  EXPECT_EQ(back.fingerprint, c.fingerprint);
  EXPECT_EQ(back.shard, c.shard);
  EXPECT_EQ(back.lo, c.lo);
  EXPECT_EQ(back.hi, c.hi);
  EXPECT_EQ(back.next, c.next);
  EXPECT_EQ(back.digest.h, c.digest.h);
  EXPECT_EQ(back.digest.total_bytes, c.digest.total_bytes);
  EXPECT_EQ(back.acc_state, c.acc_state);
  // The restored digest keeps hashing identically to the original.
  qu::Sha256 a, b;
  a.restore(c.digest);
  b.restore(back.digest);
  a.update_u64(99);
  b.update_u64(99);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(CheckpointCodec, EveryTruncationLengthIsRejected) {
  const std::vector<std::uint8_t> bytes =
      qc::encode_checkpoint(sample_checkpoint());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(len));
    EXPECT_EQ(decode_kind(cut), qc::CheckpointError::Kind::Truncated)
        << "record truncated to " << len << " bytes";
  }
}

TEST(CheckpointCodec, CorruptionVersionAndGeometryAreNamed) {
  const qc::ShardCheckpoint c = sample_checkpoint();
  std::vector<std::uint8_t> bytes = qc::encode_checkpoint(c);

  // Any flipped payload byte breaks the trailing digest.
  for (const std::size_t off : {std::size_t{16}, bytes.size() / 2,
                                bytes.size() - 33}) {
    std::vector<std::uint8_t> bad = bytes;
    bad[off] ^= 0x01;
    EXPECT_EQ(decode_kind(bad), qc::CheckpointError::Kind::Corrupt)
        << "flip at " << off;
  }
  // A flipped digest byte is equally fatal.
  {
    std::vector<std::uint8_t> bad = bytes;
    bad.back() ^= 0x01;
    EXPECT_EQ(decode_kind(bad), qc::CheckpointError::Kind::Corrupt);
  }
  // Trailing garbage after the sealed record.
  {
    std::vector<std::uint8_t> bad = bytes;
    bad.push_back(0);
    EXPECT_EQ(decode_kind(bad), qc::CheckpointError::Kind::Corrupt);
  }
  // Bad magic.
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 0xff;
    EXPECT_EQ(decode_kind(bad), qc::CheckpointError::Kind::Corrupt);
  }
  // Future version (the version field is outside the sealed payload).
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[4] = static_cast<std::uint8_t>(qc::kCheckpointVersion + 1);
    EXPECT_EQ(decode_kind(bad), qc::CheckpointError::Kind::VersionMismatch);
  }
  // Identity mismatches are geometry errors.
  const auto geometry_kind = [&](std::uint64_t fp, std::uint64_t shard,
                                 std::uint64_t lo, std::uint64_t hi) {
    try {
      qc::validate_checkpoint_identity(c, fp, shard, lo, hi);
    } catch (const qc::CheckpointError& e) {
      return e.kind();
    }
    ADD_FAILURE() << "identity mismatch accepted";
    return qc::CheckpointError::Kind::Truncated;
  };
  EXPECT_EQ(geometry_kind(c.fingerprint + 1, c.shard, c.lo, c.hi),
            qc::CheckpointError::Kind::GeometryMismatch);
  EXPECT_EQ(geometry_kind(c.fingerprint, c.shard + 1, c.lo, c.hi),
            qc::CheckpointError::Kind::GeometryMismatch);
  EXPECT_EQ(geometry_kind(c.fingerprint, c.shard, c.lo, c.hi + 8),
            qc::CheckpointError::Kind::GeometryMismatch);
  qc::ShardCheckpoint out_of_range = c;
  out_of_range.next = c.hi + 1;
  EXPECT_THROW(qc::validate_checkpoint_identity(out_of_range, c.fingerprint,
                                                c.shard, c.lo, c.hi),
               qc::CheckpointError);
  // And a clean record validates.
  EXPECT_NO_THROW(
      qc::validate_checkpoint_identity(c, c.fingerprint, c.shard, c.lo, c.hi));
}

TEST(CheckpointCodec, CommitRotatesAndRecoveryFallsBackToPrev) {
  const std::string dir = fresh_dir("rotation");
  qc::ShardCheckpoint c1 = sample_checkpoint();
  c1.shard = 0;
  c1.lo = 0;
  c1.hi = 64;
  c1.next = 16;
  qc::commit_checkpoint(dir, c1);
  qc::ShardCheckpoint c2 = c1;
  c2.next = 32;
  qc::commit_checkpoint(dir, c2);

  // Newest generation wins when intact.
  std::string notes;
  auto rec = qc::recover_checkpoint(dir, 0, c1.fingerprint, 0, 64, nullptr,
                                    &notes);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->ckpt.next, 32u);
  EXPECT_TRUE(notes.empty());

  // Corrupt the newest: recovery rejects it BY NAME and adopts .prev —
  // a torn or bit-flipped record is never silently merged.
  flip_byte(qc::checkpoint_path(dir, 0), 20);
  rec = qc::recover_checkpoint(dir, 0, c1.fingerprint, 0, 64, nullptr, &notes);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->ckpt.next, 16u);
  EXPECT_EQ(rec->file, qc::checkpoint_prev_path(dir, 0));
  EXPECT_NE(notes.find("rejected"), std::string::npos);
  EXPECT_NE(notes.find("digest mismatch"), std::string::npos);

  // Corrupt both generations: nothing to adopt, both rejections named.
  flip_byte(qc::checkpoint_prev_path(dir, 0), 20);
  rec = qc::recover_checkpoint(dir, 0, c1.fingerprint, 0, 64, nullptr, &notes);
  EXPECT_FALSE(rec.has_value());
  EXPECT_NE(notes.find(".ckpt:"), std::string::npos);
  EXPECT_NE(notes.find(".prev:"), std::string::npos);

  // An adopt hook that vetoes (e.g. dpa::StateError from a stale
  // accumulator snapshot) also falls through.
  qc::commit_checkpoint(dir, c2);
  rec = qc::recover_checkpoint(
      dir, 0, c1.fingerprint, 0, 64,
      [](const qc::ShardCheckpoint&) {
        throw qd::StateError(qd::StateError::Kind::Geometry, "veto");
      },
      &notes);
  EXPECT_FALSE(rec.has_value());
  EXPECT_NE(notes.find("veto"), std::string::npos);
}

// ---- sharded campaign: validation ------------------------------------------

TEST(ShardedValidation, InconsistentConfigurationsThrow) {
  const std::string dir = fresh_dir("validation");
  qc::ShardedOptions opt = base_opts(dir);
  // No attack.
  EXPECT_THROW(qc::Campaign()
                   .target(qc::des_sbox_slice())
                   .traces(8)
                   .sharded(opt),
               std::invalid_argument);
  // No traces.
  EXPECT_THROW(
      qc::Campaign().target(qc::des_sbox_slice()).attack(qc::Dpa{}).sharded(
          opt),
      std::invalid_argument);
  // No checkpoint directory.
  qc::ShardedOptions no_dir = opt;
  no_dir.checkpoint_dir.clear();
  EXPECT_THROW(base_campaign().sharded(no_dir), std::invalid_argument);
  // faults() and rank_trajectory() are fused-run features.
  EXPECT_THROW(base_campaign().faults().sharded(opt), std::invalid_argument);
  EXPECT_THROW(base_campaign().rank_trajectory(8).sharded(opt),
               std::invalid_argument);
}

// ---- sharded campaign: clean runs ------------------------------------------

TEST(ShardedRun, CompletesAndAgreesWithFusedCampaign) {
  const std::string dir = fresh_dir("clean");
  const qc::ShardedResult res = base_campaign().sharded(base_opts(dir));
  EXPECT_TRUE(res.complete());
  EXPECT_EQ(res.covered, 96u);
  ASSERT_EQ(res.shards.size(), 3u);
  for (const qc::ShardReport& s : res.shards) {
    EXPECT_TRUE(s.done);
    EXPECT_EQ(s.attempts, 1u);
    EXPECT_EQ(s.committed, s.hi);
    EXPECT_FALSE(s.digest_hex.empty());
    EXPECT_TRUE(s.error.empty());
  }
  EXPECT_EQ(res.rank_trajectory.size(), 3u);
  EXPECT_EQ(res.rank_trajectory.back().traces, 96u);
  EXPECT_EQ(res.table().rows(), 3u);

  const qc::CampaignResult fused = base_campaign().fused(16).run();
  ASSERT_TRUE(fused.attack.has_value());

  // A SINGLE-shard sharded run is the fused loop with commits sprinkled
  // in — window boundaries only decide where checkpoints land, never
  // the accumulation order — so its scores are BIT-identical to the
  // fused campaign's.
  qc::ShardedOptions one = base_opts(fresh_dir("clean_one"));
  one.shards = 1;
  const qc::ShardedResult res1 = base_campaign().sharded(one);
  ASSERT_TRUE(res1.attack.has_value());
  EXPECT_EQ(res1.attack->guess_scores, fused.attack->guess_scores);
  EXPECT_EQ(res1.attack->best_guess, fused.attack->best_guess);
  EXPECT_EQ(res1.attack->true_key_rank, fused.attack->true_key_rank);

  // A MULTI-shard run folds per-shard partial sums together, which
  // re-associates the floating-point additions. On a balanced QDI
  // target the DPA differential signal sits near the double-precision
  // noise floor of the sums, so score ranks among near-ties are not
  // comparable across association orders — the scores themselves agree
  // to the re-association tolerance, and the strong bit-identity
  // contract (asserted throughout this file) is sharded-vs-sharded of
  // the same configuration.
  ASSERT_TRUE(res.attack.has_value());
  ASSERT_EQ(res.attack->guess_scores.size(),
            fused.attack->guess_scores.size());
  for (std::size_t g = 0; g < res.attack->guess_scores.size(); ++g)
    EXPECT_NEAR(res.attack->guess_scores[g], fused.attack->guess_scores[g],
                1e-9);
}

TEST(ShardedRun, RepeatRunsAreBitIdenticalAndResumeFromCompleteCheckpoints) {
  const std::string dir_a = fresh_dir("repeat_a");
  const std::string dir_b = fresh_dir("repeat_b");
  const qc::ShardedResult a = base_campaign().sharded(base_opts(dir_a));
  const qc::ShardedResult b = base_campaign().sharded(base_opts(dir_b));
  expect_identical(a, b);

  // Re-running over the completed checkpoint store re-adopts the final
  // records without re-acquiring anything, bit-identically.
  const qc::ShardedResult c = base_campaign().sharded(base_opts(dir_a));
  expect_identical(a, c);
  for (const qc::ShardReport& s : c.shards)
    EXPECT_FALSE(s.resumed_from.empty());
}

// ---- crash injection: resume bit-identity ----------------------------------

TEST(ShardedCrash, CommitCrashIsRetriedWithinTheRun) {
  const std::string dir_ref = fresh_dir("commit_crash_ref");
  const qc::ShardedResult ref = base_campaign().sharded(base_opts(dir_ref));

  const std::string dir = fresh_dir("commit_crash");
  qc::ShardedOptions opt = base_opts(dir);
  std::atomic<int> crashes{1};
  opt.on_commit = [&](std::size_t shard, std::uint64_t) {
    if (shard == 1 && crashes.fetch_sub(1) > 0)
      throw std::runtime_error("injected crash right after commit");
  };
  const qc::ShardedResult res = base_campaign().sharded(opt);
  EXPECT_TRUE(res.complete());
  EXPECT_EQ(res.shards[1].attempts, 2u);
  EXPECT_FALSE(res.shards[1].resumed_from.empty());
  expect_identical(ref, res);
}

TEST(ShardedCrash, KilledRunResumesBitIdenticalAcrossInvocations) {
  const std::string dir_ref = fresh_dir("kill_ref");
  const qc::ShardedResult ref = base_campaign().sharded(base_opts(dir_ref));

  // "Kill the process" mid-run: max_attempts = 1, a hook that throws
  // mid-window on every shard after a countdown. The first invocation
  // returns a degraded result; re-invoking with the same configuration
  // resumes from the durable store until the run completes.
  const std::string dir = fresh_dir("kill");
  std::atomic<int> countdown{0};
  qc::ShardedOptions opt = base_opts(dir);
  opt.max_attempts = 1;
  opt.on_progress = [&](std::size_t, std::uint64_t) {
    if (countdown.fetch_sub(1) == 0)
      throw std::runtime_error("injected kill");
  };
  qc::ShardedResult res;
  bool resumed_at_least_once = false;
  int invocations = 0;
  for (; invocations < 32; ++invocations) {
    countdown.store(3 + invocations);  // later kills land further in
    res = base_campaign().sharded(opt);
    for (const qc::ShardReport& s : res.shards)
      resumed_at_least_once |= !s.resumed_from.empty();
    if (res.complete()) break;
  }
  ASSERT_TRUE(res.complete()) << "never completed in " << invocations
                              << " invocations";
  EXPECT_TRUE(resumed_at_least_once);
  expect_identical(ref, res);
}

TEST(ShardedCrash, CorruptOrTruncatedCheckpointIsRejectedByNameAndRecovered) {
  // Reference: uninterrupted single-shard run.
  qc::ShardedOptions ref_opt = base_opts(fresh_dir("corrupt_ref"));
  ref_opt.shards = 1;
  const qc::ShardedResult ref = base_campaign().sharded(ref_opt);

  // Interrupted run with >= 2 commits, then a corrupted newest record:
  // recovery must reject it by name, fall back to .prev, and the
  // resumed result must still be bit-identical.
  const std::string dir = fresh_dir("corrupt");
  qc::ShardedOptions opt = base_opts(dir);
  opt.shards = 1;
  opt.max_attempts = 1;
  std::atomic<int> commits{0};
  qc::ShardedOptions crash = opt;
  crash.on_commit = [&](std::size_t, std::uint64_t) {
    if (commits.fetch_add(1) + 1 == 2) throw std::runtime_error("kill");
  };
  qc::ShardedResult partial = base_campaign().sharded(crash);
  ASSERT_FALSE(partial.complete());
  ASSERT_EQ(partial.shards[0].committed, 32u);  // two 16-trace windows

  flip_byte(qc::checkpoint_path(dir, 0), 24);  // corrupt newest payload
  qc::ShardedResult res = base_campaign().sharded(opt);
  EXPECT_TRUE(res.complete());
  EXPECT_NE(res.shards[0].recovery.find("rejected"), std::string::npos);
  EXPECT_NE(res.shards[0].recovery.find("digest mismatch"), std::string::npos);
  EXPECT_EQ(res.shards[0].resumed_from, qc::checkpoint_prev_path(dir, 0));
  expect_identical(ref, res);

  // Truncation instead of corruption: same named rejection path.
  const std::string dir2 = fresh_dir("truncated");
  qc::ShardedOptions opt2 = base_opts(dir2);
  opt2.shards = 1;
  opt2.max_attempts = 1;
  commits.store(0);
  qc::ShardedOptions crash2 = opt2;
  crash2.on_commit = crash.on_commit;
  partial = base_campaign().sharded(crash2);
  ASSERT_FALSE(partial.complete());
  std::vector<std::uint8_t> bytes = read_file(qc::checkpoint_path(dir2, 0));
  bytes.resize(bytes.size() / 2);
  write_file(qc::checkpoint_path(dir2, 0), bytes);
  res = base_campaign().sharded(opt2);
  EXPECT_TRUE(res.complete());
  EXPECT_NE(res.shards[0].recovery.find("truncated"), std::string::npos);
  expect_identical(ref, res);

  // Both generations destroyed: the shard restarts from scratch and the
  // result is STILL bit-identical (determinism), with both rejections
  // named in the report.
  const std::string dir3 = fresh_dir("both_corrupt");
  qc::ShardedOptions opt3 = base_opts(dir3);
  opt3.shards = 1;
  opt3.max_attempts = 1;
  commits.store(0);
  qc::ShardedOptions crash3 = opt3;
  crash3.on_commit = crash.on_commit;
  partial = base_campaign().sharded(crash3);
  ASSERT_FALSE(partial.complete());
  flip_byte(qc::checkpoint_path(dir3, 0), 24);
  flip_byte(qc::checkpoint_prev_path(dir3, 0), 24);
  res = base_campaign().sharded(opt3);
  EXPECT_TRUE(res.complete());
  EXPECT_NE(res.shards[0].recovery.find(".ckpt:"), std::string::npos);
  EXPECT_NE(res.shards[0].recovery.find(".prev:"), std::string::npos);
  EXPECT_TRUE(res.shards[0].resumed_from.empty());
  expect_identical(ref, res);
}

TEST(ShardedCrash, ForeignFingerprintCheckpointsAreRejectedNotMerged) {
  // Complete a campaign under one key, then run a DIFFERENT key over
  // the same directory: the stale records mismatch the fingerprint, are
  // rejected by name, and the new campaign still produces the same
  // result as a fresh-directory run.
  const std::string dir = fresh_dir("foreign");
  base_campaign().sharded(base_opts(dir));

  const qc::ShardedResult fresh = qc::Campaign()
                                      .target(qc::des_sbox_slice())
                                      .key(0x2a)
                                      .seed(7)
                                      .traces(96)
                                      .attack(qc::Dpa{})
                                      .sharded(base_opts(fresh_dir("foreign_fresh")));
  const qc::ShardedResult res = qc::Campaign()
                                    .target(qc::des_sbox_slice())
                                    .key(0x2a)
                                    .seed(7)
                                    .traces(96)
                                    .attack(qc::Dpa{})
                                    .sharded(base_opts(dir));
  EXPECT_TRUE(res.complete());
  for (const qc::ShardReport& s : res.shards) {
    EXPECT_NE(s.recovery.find("fingerprint mismatch"), std::string::npos);
    EXPECT_TRUE(s.resumed_from.empty());
  }
  expect_identical(fresh, res);
}

// ---- stall watchdog --------------------------------------------------------

TEST(ShardedStall, WatchdogCancelsWedgedShardAndRedispatches) {
  const std::string dir_ref = fresh_dir("stall_ref");
  qc::ShardedOptions ref_opt = base_opts(dir_ref);
  ref_opt.shards = 2;
  const qc::ShardedResult ref = base_campaign().sharded(ref_opt);

  // The timeout must sit well above one healthy chunk's acquisition
  // time (progress only ticks at chunk boundaries) and well below the
  // injected wedge. Sanitizer builds simulate ~10x slower, so scale up.
#ifdef QDI_ASAN_ACTIVE
  const unsigned timeout_ms = 2000;
#else
  const unsigned timeout_ms = 400;
#endif
  const std::string dir = fresh_dir("stall");
  qc::ShardedOptions opt = base_opts(dir);
  opt.shards = 2;
  opt.stall_timeout_ms = timeout_ms;
  opt.watchdog_poll_ms = 10;
  opt.max_attempts = 3;
  std::atomic<bool> wedge_once{true};
  opt.on_progress = [&](std::size_t shard, std::uint64_t) {
    if (shard == 1 && wedge_once.exchange(false))
      std::this_thread::sleep_for(std::chrono::milliseconds(3 * timeout_ms));
  };
  const qc::ShardedResult res = base_campaign().sharded(opt);
  EXPECT_TRUE(res.complete());
  EXPECT_TRUE(res.shards[1].wedged);
  EXPECT_GE(res.shards[1].attempts, 2u);
  EXPECT_TRUE(res.shards[1].done);
  expect_identical(ref, res);
}

TEST(ShardedStall, InjectedStallCarriesHandshakePhaseDiagnostics) {
  const std::string dir = fresh_dir("stall_phase");
  qc::ShardedOptions opt = base_opts(dir);
  opt.shards = 1;
  opt.max_attempts = 2;
  opt.on_progress = [](std::size_t, std::uint64_t) {
    throw qc::ShardStall("environment wedged mid-cycle",
                         qs::HandshakePhase::Ack, "S0.out");
  };
  const qc::ShardedResult res = base_campaign().sharded(opt);
  EXPECT_FALSE(res.complete());
  EXPECT_EQ(res.covered, 0u);
  EXPECT_FALSE(res.attack.has_value());
  ASSERT_EQ(res.shards.size(), 1u);
  EXPECT_EQ(res.shards[0].attempts, 2u);
  EXPECT_NE(res.shards[0].error.find("phase ack"), std::string::npos);
  EXPECT_NE(res.shards[0].error.find("S0.out"), std::string::npos);
}

// ---- degraded runs ---------------------------------------------------------

TEST(ShardedDegraded, PartialCoverageIsReportedHonestly) {
  const std::string dir = fresh_dir("degraded");
  qc::ShardedOptions opt = base_opts(dir);
  opt.max_attempts = 2;
  // Shard 2 ([64, 96)) commits its first window and then every further
  // acquisition faults, on every attempt.
  opt.on_progress = [](std::size_t shard, std::uint64_t next) {
    if (shard == 2 && next > 80)
      throw std::runtime_error("injected acquisition fault");
  };
  const qc::ShardedResult res = base_campaign().sharded(opt);
  EXPECT_FALSE(res.complete());
  EXPECT_EQ(res.covered, 80u);  // shards 0, 1 plus shard 2's first window
  ASSERT_EQ(res.shards.size(), 3u);
  EXPECT_TRUE(res.shards[0].done);
  EXPECT_TRUE(res.shards[1].done);
  EXPECT_FALSE(res.shards[2].done);
  EXPECT_EQ(res.shards[2].committed, 80u);
  EXPECT_EQ(res.shards[2].attempts, 2u);
  EXPECT_NE(res.shards[2].error.find("injected acquisition fault"),
            std::string::npos);
  EXPECT_FALSE(res.shards[2].digest_hex.empty());
  // The partial attack outcome exists and covers exactly the merged
  // prefix sums.
  ASSERT_TRUE(res.attack.has_value());
  ASSERT_EQ(res.rank_trajectory.size(), 3u);
  EXPECT_EQ(res.rank_trajectory.back().traces, 80u);
  // The coverage table renders one row per shard, flagging the partial.
  const std::string table = res.table().to_string();
  EXPECT_NE(table.find("partial"), std::string::npos);
}

// ---- kill/resume determinism fuzz over targets × engines × threads ---------

namespace {

struct FuzzConfig {
  const char* target;
  qs::EngineKind engine;
  unsigned threads;
  std::size_t traces;
  std::uint64_t key;
};

qc::Campaign fuzz_campaign(const FuzzConfig& cfg) {
  qc::Dpa attack;
  attack.compute_mtd = true;
  attack.mtd_start = 16;
  attack.mtd_step = 16;
  return qc::Campaign()
      .target(qc::find_target(cfg.target))
      .key(cfg.key)
      .seed(11)
      .traces(cfg.traces)
      .threads(cfg.threads)
      .engine(cfg.engine)
      .attack(attack);
}

}  // namespace

TEST(ShardedFuzz, KillResumeIsBitIdenticalAcrossTargetsEnginesThreads) {
  // Every simulatable attackable registry target, both engines, 1 and 3
  // acquisition threads. Each configuration runs an uninterrupted
  // baseline, then a sequence of killed-and-resumed invocations
  // (max_attempts = 1: a thrown hook IS a process death) until the
  // store completes — and the end state must be bit-identical.
  std::vector<FuzzConfig> configs = {
      {"des_sbox_slice", qs::EngineKind::Compiled, 1, 96, 0x15},
      {"des_sbox_slice", qs::EngineKind::Batch, 3, 96, 0x15},
      {"aes_byte_slice", qs::EngineKind::Compiled, 3, 64, 0x2b},
      {"aes_byte_slice", qs::EngineKind::Batch, 1, 64, 0x2b},
      {"des_sbox_sync", qs::EngineKind::Compiled, 3, 64, 0x19},
      {"des_sbox_sync", qs::EngineKind::Batch, 1, 64, 0x19},
      {"des_round", qs::EngineKind::Compiled, 1, 48, 0x0123456789abULL},
      {"des_round", qs::EngineKind::Batch, 3, 48, 0x0123456789abULL},
  };
#ifdef QDI_ASAN_ACTIVE
  // Sanitizer job: keep the crash/resume coverage but halve the sweep
  // (instrumented simulation is ~10x slower).
  configs.resize(4);
#endif

  qu::Rng rng(0xC0FFEE);
  for (const FuzzConfig& cfg : configs) {
    SCOPED_TRACE(std::string(cfg.target) +
                 (cfg.engine == qs::EngineKind::Batch ? "/batch" : "/compiled") +
                 "/t" + std::to_string(cfg.threads));
    const std::string tag = std::string("fuzz_") + cfg.target + "_" +
                            (cfg.engine == qs::EngineKind::Batch ? "b" : "c") +
                            std::to_string(cfg.threads);
    qc::ShardedOptions opt;
    opt.shards = 3;
    opt.checkpoint_interval = 8;
    opt.chunk_traces = 4;
    opt.backoff_ms = 0;
    opt.concurrency = cfg.threads > 1 ? 2 : 1;

    opt.checkpoint_dir = fresh_dir(tag + "_ref");
    const qc::ShardedResult ref = fuzz_campaign(cfg).sharded(opt);
    ASSERT_TRUE(ref.complete());

    opt.checkpoint_dir = fresh_dir(tag);
    opt.max_attempts = 1;
    std::atomic<int> countdown{0};
    opt.on_progress = [&](std::size_t, std::uint64_t) {
      if (countdown.fetch_sub(1) == 0) throw std::runtime_error("kill");
    };
    opt.on_commit = [&](std::size_t, std::uint64_t) {
      if (countdown.fetch_sub(1) == 0)
        throw std::runtime_error("kill at commit");
    };
    qc::ShardedResult res;
    int invocations = 0;
    for (; invocations < 48; ++invocations) {
      // Random kill point: sometimes immediate (re-tests recovery with
      // zero new progress), sometimes deep enough to commit windows.
      countdown.store(static_cast<int>(rng.below(24)));
      res = fuzz_campaign(cfg).sharded(opt);
      if (res.complete()) break;
    }
    ASSERT_TRUE(res.complete())
        << "never completed in " << invocations << " invocations";
    expect_identical(ref, res);
    ASSERT_TRUE(res.attack.has_value());
    EXPECT_EQ(res.attack->true_key_rank, ref.attack->true_key_rank);
  }
}
