// Countermeasure transform pipeline: per-pass golden idempotence,
// pipeline determinism (byte-identical netlists, bit-identical traces on
// every registry target and both schedulers), and the paper's headline
// structural result — the cone-balancing pass turning previously
// asymmetric registry channels symmetric, re-checked post-transform.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "qdi/qdi.hpp"

namespace qc = qdi::campaign;
namespace qn = qdi::netlist;
namespace qx = qdi::xform;

#if defined(__SANITIZE_ADDRESS__)
#define QDI_ASAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define QDI_ASAN_ACTIVE 1
#endif
#endif

namespace {

/// Byte-exact serialization of everything a netlist holds — structure,
/// names, hierarchy, channel registry, cap/wirelength annotations, and
/// delay jitter — so "byte-identical netlists" is a string equality.
std::string fingerprint(const qn::Netlist& nl) {
  std::ostringstream os;
  os.precision(17);
  os << nl.name() << '\n';
  for (const qn::Cell& c : nl.cells()) {
    os << "c " << c.name << ' ' << qn::name(c.kind) << ' ' << c.hier << ' '
       << c.output << ' ' << c.delay_jitter_ps;
    for (qn::NetId in : c.inputs) os << ' ' << in;
    os << '\n';
  }
  for (const qn::Net& n : nl.nets()) {
    os << "n " << n.name << ' ' << n.driver << ' ' << n.cap_ff << ' '
       << n.wirelength_um;
    for (const qn::Pin& p : n.sinks) os << ' ' << p.cell << ':' << p.pin;
    os << '\n';
  }
  for (const qn::Channel& ch : nl.channels()) {
    os << "ch " << ch.name << ' ' << ch.ack;
    for (qn::NetId r : ch.rails) os << ' ' << r;
    os << '\n';
  }
  return os.str();
}

std::size_t asymmetric_count(const qn::Netlist& nl) {
  return qn::count_asymmetric_channels(qn::Graph(nl));
}

}  // namespace

// ---- pass unit behaviour ---------------------------------------------------

TEST(CapEqualize, EqualizesChannelsAndReportsCost) {
  qc::TargetInstance inst = qc::des_sbox_slice().build(0x2b);
  for (qn::ChannelId ch = 0; ch < inst.nl.num_channels(); ++ch)
    inst.nl.net(inst.nl.channel(ch).rails[1]).cap_ff *= 1.8;

  const qx::CapEqualizePass pass;
  const qx::PassReport rep = pass.run(inst.nl);
  EXPECT_TRUE(rep.changed);
  EXPECT_GT(rep.channels_touched, 0u);
  EXPECT_GT(rep.cap_added_ff, 0.0);
  EXPECT_GT(rep.metric_before, 0.0);
  EXPECT_DOUBLE_EQ(rep.metric_after, 0.0);
  for (const qn::Channel& ch : inst.nl.channels()) {
    const double c0 = inst.nl.net(ch.rails[0]).cap_ff;
    for (qn::NetId r : ch.rails)
      EXPECT_DOUBLE_EQ(inst.nl.net(r).cap_ff, c0);
  }
}

TEST(CapEqualize, ToleranceBoundsResidualDissymmetry) {
  qc::TargetInstance inst = qc::des_sbox_slice().build(0x2b);
  for (qn::ChannelId ch = 0; ch < inst.nl.num_channels(); ++ch)
    inst.nl.net(inst.nl.channel(ch).rails[0]).cap_ff *= 2.5;

  const qx::CapEqualizePass pass({.tolerance_da = 0.10});
  const qx::PassReport rep = pass.run(inst.nl);
  EXPECT_LE(rep.metric_after, 0.10 + 1e-12);
  EXPECT_GT(rep.metric_after, 0.0);  // tolerance means it stops short
}

TEST(CapEqualize, OverlappingChannelsConvergeToAFixpoint) {
  // Channels sharing rails: padding B's shared rail must not leave A
  // violating the tolerance, and the pass must stay idempotent.
  qn::Netlist nl("overlap");
  const qn::NetId r1 = nl.add_input("r1");
  const qn::NetId r2 = nl.add_input("r2");
  const qn::NetId r3 = nl.add_input("r3");
  nl.net(r1).cap_ff = 1.0;
  nl.net(r2).cap_ff = 2.0;
  nl.net(r3).cap_ff = 3.0;
  nl.add_channel("A", {r1, r2});
  nl.add_channel("B", {r2, r3});

  const qx::CapEqualizePass pass;
  const qx::PassReport first = pass.run(nl);
  EXPECT_TRUE(first.changed);
  EXPECT_DOUBLE_EQ(first.metric_after, 0.0);
  EXPECT_DOUBLE_EQ(nl.net(r1).cap_ff, 3.0);
  EXPECT_DOUBLE_EQ(nl.net(r2).cap_ff, 3.0);
  EXPECT_DOUBLE_EQ(nl.net(r3).cap_ff, 3.0);
  const qx::PassReport second = pass.run(nl);
  EXPECT_FALSE(second.changed);
  EXPECT_DOUBLE_EQ(second.cap_added_ff, 0.0);
}

TEST(RandomDelay, SeededJitterIsReproducibleAndBounded) {
  qc::TargetInstance a = qc::des_sbox_slice().build(0x2b);
  qc::TargetInstance b = qc::des_sbox_slice().build(0x2b);

  const qx::RandomDelayPass pass({.seed = 7, .max_jitter_ps = 25.0});
  pass.run(a.nl);
  pass.run(b.nl);
  EXPECT_EQ(fingerprint(a.nl), fingerprint(b.nl));
  bool any = false;
  for (qn::CellId c = 0; c < a.nl.num_cells(); ++c) {
    const double j = a.nl.cell(c).delay_jitter_ps;
    EXPECT_GE(j, 0.0);
    EXPECT_LT(j, 25.0);
    any |= j > 0.0;
  }
  EXPECT_TRUE(any);

  // A different seed draws a different jitter assignment.
  qc::TargetInstance c = qc::des_sbox_slice().build(0x2b);
  qx::RandomDelayPass{{.seed = 8, .max_jitter_ps = 25.0}}.run(c.nl);
  EXPECT_NE(fingerprint(a.nl), fingerprint(c.nl));
}

TEST(RandomDelay, NonPositiveBoundNeverProducesNegativeJitter) {
  // Cell::delay_jitter_ps must stay >= 0 (time-wheel geometry): a
  // negative bound degenerates to zero jitter instead of negatives.
  qc::TargetInstance inst = qc::des_sbox_slice().build(0x2b);
  qx::RandomDelayPass{{.seed = 1, .max_jitter_ps = -50.0}}.run(inst.nl);
  for (qn::CellId c = 0; c < inst.nl.num_cells(); ++c)
    ASSERT_GE(inst.nl.cell(c).delay_jitter_ps, 0.0);
}

// ---- the acceptance result: cone balancing flips registry channels --------

TEST(ConeBalance, FlipsAsymmetricRegistryChannelsSymmetric) {
  qc::TargetInstance inst = qc::des_sbox_slice().build(0x2b);
  const qn::Graph before_g(inst.nl);
  const auto before = qn::check_all_channels(before_g);
  std::size_t asym_before = 0;
  for (const auto& rep : before) asym_before += rep.symmetric ? 0 : 1;
  ASSERT_GT(asym_before, 0u) << "the raw slice must expose asymmetry";

  const qx::ConeBalancePass pass;
  const qx::PassReport rep = pass.run(inst.nl);
  EXPECT_TRUE(rep.changed);
  EXPECT_GT(rep.cells_added, 0u);
  EXPECT_EQ(rep.cells_added, rep.nets_added);
  EXPECT_EQ(rep.metric_before, static_cast<double>(asym_before));
  EXPECT_LT(rep.metric_after, rep.metric_before);

  // Re-check post-transform with the symmetry checker itself: at least
  // one previously asymmetric channel must now report symmetric.
  const qn::Graph after_g(inst.nl);
  const auto after = qn::check_all_channels(after_g);
  ASSERT_EQ(after.size(), before.size());
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < before.size(); ++i)
    if (!before[i].symmetric && after[i].symmetric) ++flipped;
  EXPECT_GT(flipped, 0u);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_FALSE(before[i].symmetric && !after[i].symmetric)
        << "balancing must never break a symmetric channel (channel "
        << after[i].channel << ")";

  // The transform is structural-identity: the netlist stays well-formed.
  EXPECT_TRUE(inst.nl.check().empty());
}

TEST(ConeBalance, PreservesFunction) {
  // The balanced slice must still compute SBOX1(p ^ k): attack-free
  // campaigns on the raw and balanced netlists see identical ciphertexts.
  const qc::CampaignResult raw = qc::Campaign()
                                     .target(qc::des_sbox_slice())
                                     .key(0x17)
                                     .seed(99)
                                     .traces(16)
                                     .run();
  const qc::CampaignResult balanced =
      qc::Campaign()
          .target(qc::des_sbox_slice())
          .key(0x17)
          .seed(99)
          .traces(16)
          .prepare([](qn::Netlist& nl) { qx::ConeBalancePass{}.run(nl); })
          .run();
  ASSERT_EQ(raw.traces.size(), balanced.traces.size());
  for (std::size_t i = 0; i < raw.traces.size(); ++i) {
    ASSERT_EQ(raw.traces.plaintext(i)[0], balanced.traces.plaintext(i)[0]);
    EXPECT_EQ(raw.traces.ciphertext(i)[0], balanced.traces.ciphertext(i)[0]);
  }
}

// ---- golden idempotence ----------------------------------------------------

TEST(XformGolden, EveryPassIsIdempotent) {
  const std::vector<std::shared_ptr<const qx::Pass>> passes = {
      std::make_shared<qx::ConeBalancePass>(),
      std::make_shared<qx::CapEqualizePass>(),
      std::make_shared<qx::RandomDelayPass>(
          qx::RandomDelayOptions{.seed = 3, .max_jitter_ps = 30.0}),
  };
  for (const auto& pass : passes) {
    qc::TargetInstance inst = qc::des_sbox_slice().build(0x2b);
    const qx::PassReport first = pass->run(inst.nl);
    const std::string golden = fingerprint(inst.nl);
    const qx::PassReport second = pass->run(inst.nl);
    EXPECT_FALSE(second.changed) << pass->name();
    EXPECT_EQ(second.cells_added, 0u) << pass->name();
    EXPECT_EQ(second.cap_added_ff, 0.0) << pass->name();
    EXPECT_EQ(golden, fingerprint(inst.nl))
        << pass->name() << " must be idempotent (first run changed="
        << first.changed << ")";
  }
}

// ---- pipeline determinism on every registry target -------------------------

TEST(XformDeterminism, PipelineIsByteIdenticalOnEveryRegistryTarget) {
  for (const std::string& name : qc::list_targets()) {
#ifdef QDI_ASAN_ACTIVE
    // aes_core's tens of thousands of cells make the cone-balance scans
    // minutes-long under sanitizers; the structural determinism it
    // would exercise is identical to des_round's.
    if (name == "aes_core") continue;
#endif
    const qc::CircuitTarget target = qc::find_target(name);
    // One balancing round bounds the aes_core case to seconds; the
    // determinism property does not depend on convergence depth.
    const qx::Recipe recipe = qx::hardened(
        {.max_rounds = name == "aes_core" ? 1 : 4, .verify = false}, {},
        {.seed = 11, .max_jitter_ps = 20.0});

    qc::TargetInstance a = target.build(0x2b);
    qc::TargetInstance b = target.build(0x2b);
    const qx::PipelineReport ra = recipe.pipeline.run(a.nl);
    const qx::PipelineReport rb = recipe.pipeline.run(b.nl);
    EXPECT_EQ(fingerprint(a.nl), fingerprint(b.nl)) << name;
    ASSERT_EQ(ra.passes.size(), rb.passes.size()) << name;
    for (std::size_t i = 0; i < ra.passes.size(); ++i)
      EXPECT_EQ(ra.passes[i].cells_added, rb.passes[i].cells_added) << name;
    EXPECT_TRUE(a.nl.check().empty()) << name;
  }
}

TEST(XformDeterminism, ConeBalanceParallelMatchesSerialAtAnyThreadCount) {
  // The pass's own contract: plan-parallel + serial-commit produces the
  // byte-identical netlist of the single-threaded pass at every thread
  // count, on every registry target.
  for (const std::string& name : qc::list_targets()) {
#ifdef QDI_ASAN_ACTIVE
    if (name == "aes_core") continue;  // minutes-long cone scans
#endif
    const qc::CircuitTarget target = qc::find_target(name);
    // One round bounds aes_core to seconds; thread-count invariance does
    // not depend on convergence depth.
    const int rounds = name == "aes_core" ? 1 : 4;

    qc::TargetInstance ref = target.build(0x2b);
    const qx::PassReport rs =
        qx::ConeBalancePass{{.max_rounds = rounds, .verify = false,
                             .threads = 1}}
            .run(ref.nl);
    const std::string golden = fingerprint(ref.nl);

    for (const unsigned threads : {2u, 4u}) {
      qc::TargetInstance par = target.build(0x2b);
      const qx::PassReport rp =
          qx::ConeBalancePass{{.max_rounds = rounds, .verify = false,
                               .threads = threads}}
              .run(par.nl);
      EXPECT_EQ(golden, fingerprint(par.nl))
          << name << " threads=" << threads;
      EXPECT_EQ(rs.cells_added, rp.cells_added) << name;
      EXPECT_EQ(rs.channels_touched, rp.channels_touched) << name;
      EXPECT_EQ(rs.channels_skipped, rp.channels_skipped) << name;
    }
  }
}

TEST(XformDeterminism, TransformedTracesAreBitIdenticalBothSchedulers) {
  for (const std::string& name : qc::list_targets()) {
#ifdef QDI_ASAN_ACTIVE
    if (name == "aes_core") continue;  // minutes-long cone scans
#endif
    const qc::CircuitTarget base = qc::find_target(name);
    const qc::TargetInstance probe = base.build(0x2b);
    if (!probe.simulatable) continue;
    // One balancing round bounds the aes_core case to seconds (the
    // repeat-run determinism under test is round-count independent).
    const int rounds = name == "aes_core" ? 1 : 4;
    for (const qdi::sim::SchedulerKind sched :
         {qdi::sim::SchedulerKind::Wheel, qdi::sim::SchedulerKind::Heap}) {
      auto run = [&] {
        return qc::Campaign()
            .target(base)
            .key(0x2b)
            .seed(41)
            .traces(3)
            .scheduler(sched)
            .recipe(qx::hardened({.max_rounds = rounds, .verify = false}, {},
                                 {.seed = 11, .max_jitter_ps = 20.0}))
            .run();
      };
      const qc::CampaignResult r1 = run();
      const qc::CampaignResult r2 = run();
      ASSERT_EQ(r1.traces.size(), r2.traces.size()) << name;
      for (std::size_t i = 0; i < r1.traces.size(); ++i) {
        const auto s1 = r1.traces.trace(i).samples();
        const auto s2 = r2.traces.trace(i).samples();
        ASSERT_EQ(s1.size(), s2.size()) << name;
        for (std::size_t j = 0; j < s1.size(); ++j)
          ASSERT_EQ(s1[j], s2[j]) << name << " trace " << i << " sample " << j;
      }
      EXPECT_EQ(fingerprint(r1.nl), fingerprint(r2.nl)) << name;
    }
  }
}

TEST(XformDeterminism, SchedulersAgreeOnTransformedNetlists) {
  // The wheel/heap equivalence must survive jittered per-cell delays
  // (jitter feeds the wheel's bucket geometry through min/max delay).
  auto run = [&](qdi::sim::SchedulerKind sched) {
    return qc::Campaign()
        .target(qc::des_sbox_slice())
        .key(0x2b)
        .seed(17)
        .traces(4)
        .scheduler(sched)
        .recipe(qx::jittered({.seed = 5, .max_jitter_ps = 35.0}))
        .run();
  };
  const qc::CampaignResult wheel = run(qdi::sim::SchedulerKind::Wheel);
  const qc::CampaignResult heap = run(qdi::sim::SchedulerKind::Heap);
  ASSERT_EQ(wheel.traces.size(), heap.traces.size());
  for (std::size_t i = 0; i < wheel.traces.size(); ++i) {
    const auto sw = wheel.traces.trace(i).samples();
    const auto sh = heap.traces.trace(i).samples();
    ASSERT_EQ(sw.size(), sh.size());
    for (std::size_t j = 0; j < sw.size(); ++j) ASSERT_EQ(sw[j], sh[j]);
  }
}

// ---- transformed() target wrapper ------------------------------------------

TEST(TransformedTarget, BuildsVariantThroughNormalCompilePath) {
  const qc::CircuitTarget variant =
      qc::transformed(qc::des_sbox_slice(), qx::balanced());
  EXPECT_EQ(variant.name(), "des_sbox_slice+balanced");
  const qc::CampaignResult r =
      qc::Campaign().target(variant).key(0x2b).seed(3).traces(4).run();
  EXPECT_EQ(r.traces.size(), 4u);
  EXPECT_EQ(r.target, "des_sbox_slice+balanced");
  // The balanced variant computes the same function as the base target.
  const qc::CampaignResult raw =
      qc::Campaign().target(qc::des_sbox_slice()).key(0x2b).seed(3).traces(4).run();
  for (std::size_t i = 0; i < r.traces.size(); ++i) {
    EXPECT_EQ(r.traces.plaintext(i)[0], raw.traces.plaintext(i)[0]);
    EXPECT_EQ(r.traces.ciphertext(i)[0], raw.traces.ciphertext(i)[0]);
  }
}
