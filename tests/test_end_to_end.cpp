// Integration: the paper's full story on one byte slice —
//   balanced layout -> no exploitable DPA leak;
//   rail-capacitance dissymmetry (what flat P&R produces) -> key recovery;
//   repair / re-balancing -> leak collapses again.
#include <gtest/gtest.h>

#include "qdi/core/criterion.hpp"
#include "qdi/core/secure_flow.hpp"
#include "qdi/dpa/acquisition.hpp"
#include "qdi/dpa/dpa.hpp"

// This file deliberately exercises the deprecated acquire_* back-compat
// wrappers alongside their replacements.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace qd = qdi::dpa;
namespace qg = qdi::gates;
namespace qc = qdi::core;
namespace qn = qdi::netlist;

namespace {

/// Multiply the cap of rail-1 of every S-Box output channel by `factor`
/// (a deterministic stand-in for what an uncontrolled flat P&R does).
void unbalance_sbox_outputs(qg::AesByteSlice& slice, double factor) {
  for (const auto& q : slice.q) {
    // The latched outputs and the S-Box rails feeding them.
    slice.nl.net(q.r1).cap_ff *= factor;
    const qn::ChannelId ch = q.ch;
    (void)ch;
  }
  // Also unbalance the pre-latch S-Box rails through the channel registry:
  // channels named ".../sbox/outN".
  for (qn::ChannelId ch = 0; ch < slice.nl.num_channels(); ++ch) {
    const qn::Channel& c = slice.nl.channel(ch);
    if (c.name.find("sbox/out") != std::string::npos)
      slice.nl.net(c.rails[1]).cap_ff *= factor;
  }
}

qd::TraceSet acquire(qg::AesByteSlice& slice, std::uint8_t key, std::size_t n,
                     double noise = 0.0) {
  qd::Acquisition cfg;
  cfg.num_traces = n;
  cfg.seed = 1234;
  cfg.power.noise_sigma_ua = noise;
  return qd::acquire_aes_byte_slice(slice, key, cfg);
}

std::vector<qd::SelectionFn> sbox_bits() {
  std::vector<qd::SelectionFn> bits;
  for (int b = 0; b < 8; ++b) bits.push_back(qd::aes_sbox_selection(0, b));
  return bits;
}

}  // namespace

TEST(EndToEnd, UnbalancedRailsLeakTheKey) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  unbalance_sbox_outputs(slice, 2.0);
  const std::uint8_t key = 0x4f;
  const qd::TraceSet ts = acquire(slice, key, 300);
  const auto r = qd::recover_key_multibit(ts, sbox_bits(), 256);
  EXPECT_EQ(r.best_guess, key);
  EXPECT_EQ(r.rank_of(key), 0u);
  EXPECT_GT(r.margin(), 1.2);
}

TEST(EndToEnd, BalancedRailsDoNotLeak) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  const std::uint8_t key = 0x4f;
  const qd::TraceSet ts = acquire(slice, key, 300);
  const auto r = qd::recover_key_multibit(ts, sbox_bits(), 256);
  // With uniform caps every guess's bias is numerically negligible: the
  // best peak must not stand out the way the leaky layout's does.
  EXPECT_LT(r.margin(), 1.2);
}

TEST(EndToEnd, LeakSurvivesMeasurementNoise) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  unbalance_sbox_outputs(slice, 2.0);
  const std::uint8_t key = 0xd2;
  const qd::TraceSet ts = acquire(slice, key, 600, /*noise=*/2.0);
  const auto r = qd::recover_key_multibit(ts, sbox_bits(), 256);
  EXPECT_EQ(r.best_guess, key);
}

TEST(EndToEnd, RepairPassKillsTheLeak) {
  qg::AesByteSlice slice = qg::build_aes_byte_slice();
  unbalance_sbox_outputs(slice, 2.0);
  const std::uint8_t key = 0x4f;

  // Confirm leak, then repair in place and re-acquire.
  const qd::TraceSet leaky = acquire(slice, key, 300);
  const auto before = qd::recover_key_multibit(leaky, sbox_bits(), 256);
  ASSERT_EQ(before.best_guess, key);

  const auto [touched, added] = qc::repair_rail_caps(slice.nl, 0.0);
  EXPECT_GT(touched, 0u);
  EXPECT_GT(added, 0.0);
  const auto criteria = qc::evaluate_criterion(slice.nl);
  EXPECT_NEAR(qc::max_dA(criteria), 0.0, 1e-9);

  const qd::TraceSet fixed = acquire(slice, key, 300);
  const auto after = qd::recover_key_multibit(fixed, sbox_bits(), 256);
  EXPECT_LT(after.best_peak, before.best_peak * 0.2);
}

TEST(EndToEnd, BiggerDissymmetryMeansBiggerBias) {
  // Eq. 12 end to end: the DPA bias grows with the rail-cap ratio. The
  // integrated |T| is used because the single-sample peak drifts between
  // sample bins as the imbalance also shifts timing.
  // Only the targeted bit's channels are unbalanced so the other output
  // bits do not contribute algorithmic noise, and the load-insensitive
  // delay model isolates eq. 12's charge term (with load-dependent
  // timing, the shifted downstream activity aliases across sample bins
  // and the ordering is only approximate — the ablation bench covers
  // that regime).
  const std::uint8_t key = 0x00;
  double prev = 0.0;
  for (double factor : {1.0, 1.5, 2.0, 3.0}) {
    qg::AesByteSlice slice = qg::build_aes_byte_slice();
    for (qn::ChannelId ch = 0; ch < slice.nl.num_channels(); ++ch) {
      const qn::Channel& c = slice.nl.channel(ch);
      if (c.name.find("sbox/out0") != std::string::npos ||
          c.name.find("hb/q_q0") != std::string::npos)
        slice.nl.net(c.rails[1]).cap_ff *= factor;
    }
    qd::Acquisition cfg;
    cfg.num_traces = 200;
    cfg.seed = 1234;
    const qd::TraceSet ts = qd::acquire_aes_byte_slice(
        slice, key, cfg, qdi::sim::DelayModel::load_insensitive());
    const auto bias = qd::dpa_bias(ts, qd::aes_sbox_selection(0, 0), key);
    EXPECT_GT(bias.integrated, prev) << "factor " << factor;
    prev = bias.integrated;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(EndToEnd, XorChannelLeakIsObservableWithKnownKey) {
  // Section IV's D-function on the AddRoundKey XOR output: with known
  // key (designer-side evaluation) the bias on an unbalanced x-channel
  // shows a clear peak; the balanced circuit shows none.
  const std::uint8_t key = 0xb7;
  auto bias_with_factor = [&](double factor) {
    qg::AesByteSlice slice = qg::build_aes_byte_slice();
    for (qn::ChannelId ch = 0; ch < slice.nl.num_channels(); ++ch) {
      const qn::Channel& c = slice.nl.channel(ch);
      if (c.name.find("addkey0/x0") != std::string::npos)
        slice.nl.net(c.rails[1]).cap_ff *= factor;
    }
    const qd::TraceSet ts = acquire(slice, key, 250);
    return qd::dpa_bias(ts, qd::aes_xor_selection(0, 0), key).peak;
  };
  const double balanced = bias_with_factor(1.0);
  const double leaky = bias_with_factor(3.0);
  EXPECT_GT(leaky, 10.0 * std::max(balanced, 1e-12));
}
