// Integration: the paper's full story on one byte slice —
//   balanced layout -> no exploitable DPA leak;
//   rail-capacitance dissymmetry (what flat P&R produces) -> key recovery;
//   repair / re-balancing -> leak collapses again.
#include <gtest/gtest.h>

#include "qdi/campaign/target.hpp"
#include "qdi/core/criterion.hpp"
#include "qdi/core/secure_flow.hpp"
#include "qdi/dpa/dpa.hpp"

namespace qc = qdi::campaign;
namespace qd = qdi::dpa;
namespace qo = qdi::core;
namespace qn = qdi::netlist;

namespace {

/// Multiply the cap of rail-1 of every channel whose name matches one of
/// `needles` by `factor` (a deterministic stand-in for what an
/// uncontrolled flat P&R does).
void unbalance_channels(qn::Netlist& nl,
                        std::initializer_list<const char*> needles,
                        double factor) {
  for (qn::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
    const qn::Channel& c = nl.channel(ch);
    for (const char* needle : needles)
      if (c.name.find(needle) != std::string::npos) {
        nl.net(c.rails[1]).cap_ff *= factor;
        break;
      }
  }
}

/// The S-Box output rails and the latched outputs they feed.
void unbalance_sbox_outputs(qn::Netlist& nl, double factor) {
  unbalance_channels(nl, {"sbox/out", "hb/q_q"}, factor);
}

qd::TraceSet acquire(const qc::TargetInstance& inst, std::size_t n,
                     double noise = 0.0,
                     qdi::sim::DelayModel delays = {}) {
  qc::SimTraceSourceOptions opt;
  opt.power.noise_sigma_ua = noise;
  opt.delays = delays;
  qc::SimTraceSource src(inst.nl, inst.env, inst.stimulus, opt);
  return qc::acquire_batch(src, n, 1234);
}

std::vector<qd::SelectionFn> sbox_bits() {
  std::vector<qd::SelectionFn> bits;
  for (int b = 0; b < 8; ++b) bits.push_back(qd::aes_sbox_selection(0, b));
  return bits;
}

}  // namespace

TEST(EndToEnd, UnbalancedRailsLeakTheKey) {
  const std::uint8_t key = 0x4f;
  qc::TargetInstance inst = qc::aes_byte_slice().build(key);
  unbalance_sbox_outputs(inst.nl, 2.0);
  const qd::TraceSet ts = acquire(inst, 300);
  const auto r = qd::recover_key_multibit(ts, sbox_bits(), 256);
  EXPECT_EQ(r.best_guess, key);
  EXPECT_EQ(r.rank_of(key), 0u);
  EXPECT_GT(r.margin(), 1.2);
}

TEST(EndToEnd, BalancedRailsDoNotLeak) {
  const std::uint8_t key = 0x4f;
  const qc::TargetInstance inst = qc::aes_byte_slice().build(key);
  const qd::TraceSet ts = acquire(inst, 300);
  const auto r = qd::recover_key_multibit(ts, sbox_bits(), 256);
  // With uniform caps every guess's bias is numerically negligible: the
  // best peak must not stand out the way the leaky layout's does.
  EXPECT_LT(r.margin(), 1.2);
}

TEST(EndToEnd, LeakSurvivesMeasurementNoise) {
  const std::uint8_t key = 0xd2;
  qc::TargetInstance inst = qc::aes_byte_slice().build(key);
  unbalance_sbox_outputs(inst.nl, 2.0);
  const qd::TraceSet ts = acquire(inst, 600, /*noise=*/2.0);
  const auto r = qd::recover_key_multibit(ts, sbox_bits(), 256);
  EXPECT_EQ(r.best_guess, key);
}

TEST(EndToEnd, RepairPassKillsTheLeak) {
  const std::uint8_t key = 0x4f;
  qc::TargetInstance inst = qc::aes_byte_slice().build(key);
  unbalance_sbox_outputs(inst.nl, 2.0);

  // Confirm leak, then repair in place and re-acquire.
  const qd::TraceSet leaky = acquire(inst, 300);
  const auto before = qd::recover_key_multibit(leaky, sbox_bits(), 256);
  ASSERT_EQ(before.best_guess, key);

  const auto [touched, added] = qo::repair_rail_caps(inst.nl, 0.0);
  EXPECT_GT(touched, 0u);
  EXPECT_GT(added, 0.0);
  const auto criteria = qo::evaluate_criterion(inst.nl);
  EXPECT_NEAR(qo::max_dA(criteria), 0.0, 1e-9);

  const qd::TraceSet fixed = acquire(inst, 300);
  const auto after = qd::recover_key_multibit(fixed, sbox_bits(), 256);
  EXPECT_LT(after.best_peak, before.best_peak * 0.2);
}

TEST(EndToEnd, BiggerDissymmetryMeansBiggerBias) {
  // Eq. 12 end to end: the DPA bias grows with the rail-cap ratio. The
  // integrated |T| is used because the single-sample peak drifts between
  // sample bins as the imbalance also shifts timing.
  // Only the targeted bit's channels are unbalanced so the other output
  // bits do not contribute algorithmic noise, and the load-insensitive
  // delay model isolates eq. 12's charge term (with load-dependent
  // timing, the shifted downstream activity aliases across sample bins
  // and the ordering is only approximate — the ablation bench covers
  // that regime).
  const std::uint8_t key = 0x00;
  double prev = 0.0;
  for (double factor : {1.0, 1.5, 2.0, 3.0}) {
    qc::TargetInstance inst = qc::aes_byte_slice().build(key);
    unbalance_channels(inst.nl, {"sbox/out0", "hb/q_q0"}, factor);
    const qd::TraceSet ts =
        acquire(inst, 200, 0.0, qdi::sim::DelayModel::load_insensitive());
    const auto bias = qd::dpa_bias(ts, qd::aes_sbox_selection(0, 0), key);
    EXPECT_GT(bias.integrated, prev) << "factor " << factor;
    prev = bias.integrated;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(EndToEnd, XorChannelLeakIsObservableWithKnownKey) {
  // Section IV's D-function on the AddRoundKey XOR output: with known
  // key (designer-side evaluation) the bias on an unbalanced x-channel
  // shows a clear peak; the balanced circuit shows none.
  const std::uint8_t key = 0xb7;
  auto bias_with_factor = [&](double factor) {
    qc::TargetInstance inst = qc::aes_byte_slice().build(key);
    unbalance_channels(inst.nl, {"addkey0/x0"}, factor);
    const qd::TraceSet ts = acquire(inst, 250);
    return qd::dpa_bias(ts, qd::aes_xor_selection(0, 0), key).peak;
  };
  const double balanced = bias_with_factor(1.0);
  const double leaky = bias_with_factor(3.0);
  EXPECT_GT(leaky, 10.0 * std::max(balanced, 1e-12));
}
