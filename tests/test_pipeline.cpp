#include <gtest/gtest.h>

#include "qdi/gates/pipeline.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/rng.hpp"

namespace qs = qdi::sim;
namespace qg = qdi::gates;

TEST(WchbFifo, StructureIsSound) {
  qg::WchbFifo f = qg::build_wchb_fifo(4, 3);
  EXPECT_TRUE(f.nl.check().empty());
  EXPECT_EQ(f.in.size(), 4u);
  EXPECT_EQ(f.out.size(), 4u);
  // 3 stages x 4 channels x 2 rails Muller2R latches.
  const auto hist = f.nl.kind_histogram();
  EXPECT_EQ(hist[static_cast<int>(qdi::netlist::CellKind::Muller2R)], 24u);
}

class FifoDepth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FifoDepth, TokensFlowThrough) {
  qg::WchbFifo f = qg::build_wchb_fifo(2, GetParam());
  qs::Simulator sim(f.nl);
  qs::FourPhaseEnv env(sim, f.env);
  env.apply_reset();
  qdi::util::Rng rng(GetParam());
  for (int t = 0; t < 12; ++t) {
    const std::vector<int> v{static_cast<int>(rng.below(2)),
                             static_cast<int>(rng.below(2))};
    const auto cyc = env.send(v);
    ASSERT_TRUE(cyc.ok) << "token " << t;
    ASSERT_EQ(cyc.outputs.size(), 2u);
    EXPECT_EQ(cyc.outputs[0], v[0]);
    EXPECT_EQ(cyc.outputs[1], v[1]);
  }
  EXPECT_EQ(sim.glitch_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Depths, FifoDepth, ::testing::Values(1u, 2u, 3u, 5u));

TEST(WchbFifo, TransitionCountDataIndependent) {
  qg::WchbFifo f = qg::build_wchb_fifo(3, 2);
  qs::Simulator sim(f.nl);
  qs::FourPhaseEnv env(sim, f.env);
  env.apply_reset();
  std::size_t expected = 0;
  for (unsigned m = 0; m < 8; ++m) {
    const std::vector<int> v{static_cast<int>(m & 1),
                             static_cast<int>((m >> 1) & 1),
                             static_cast<int>((m >> 2) & 1)};
    const auto cyc = env.send(v);
    ASSERT_TRUE(cyc.ok);
    if (expected == 0)
      expected = cyc.transitions;
    else
      EXPECT_EQ(cyc.transitions, expected) << "m=" << m;
  }
}

TEST(WchbFifo, AckOutFollowsFirstStage) {
  qg::WchbFifo f = qg::build_wchb_fifo(1, 2);
  qs::Simulator sim(f.nl);
  qs::FourPhaseEnv env(sim, f.env);
  env.apply_reset();
  // Empty fifo: first stage holds no data -> ack_out (valid-high) low.
  EXPECT_FALSE(sim.value(f.ack_out));
  const std::vector<int> v{1};
  ASSERT_TRUE(env.send(v).ok);
  // After a complete four-phase cycle the fifo is empty again.
  EXPECT_FALSE(sim.value(f.ack_out));
}

TEST(WchbFifo, WiderFifosWork) {
  qg::WchbFifo f = qg::build_wchb_fifo(8, 2);
  qs::Simulator sim(f.nl);
  qs::FourPhaseEnv env(sim, f.env);
  env.apply_reset();
  std::vector<int> v(8);
  for (std::size_t i = 0; i < 8; ++i) v[i] = static_cast<int>(i & 1);
  const auto cyc = env.send(v);
  ASSERT_TRUE(cyc.ok);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(cyc.outputs[i], v[i]);
}
