#include <gtest/gtest.h>

#include "qdi/crypto/des.hpp"
#include "qdi/gates/des_datapath.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/rng.hpp"

namespace qn = qdi::netlist;
namespace qs = qdi::sim;
namespace qg = qdi::gates;
namespace qc = qdi::crypto;

namespace {

/// Bus convention: index i carries DES bit position i+1 (1 = MSB).
template <int Bits>
std::vector<int> to_bus(std::uint64_t value) {
  std::vector<int> v(Bits);
  for (int i = 0; i < Bits; ++i)
    v[static_cast<std::size_t>(i)] =
        static_cast<int>((value >> (Bits - 1 - i)) & 1);
  return v;
}

std::uint32_t from_bus(const std::vector<int>& outs) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < outs.size(); ++i)
    if (outs[i] == 1) v |= (1u << (outs.size() - 1 - i));
  return v;
}

struct Fixture {
  qg::DesRoundSlice slice = qg::build_des_round_slice();
  qs::Simulator sim{slice.nl};
  qs::FourPhaseEnv env{sim, slice.env};
  Fixture() { env.apply_reset(); }

  std::uint32_t round(std::uint32_t l, std::uint32_t r, std::uint64_t k48) {
    std::vector<int> values = to_bus<32>(l);
    const auto rv = to_bus<32>(r);
    const auto kv = to_bus<48>(k48);
    values.insert(values.end(), rv.begin(), rv.end());
    values.insert(values.end(), kv.begin(), kv.end());
    const auto cyc = env.send(values);
    EXPECT_TRUE(cyc.ok);
    return from_bus(cyc.outputs);
  }
};

}  // namespace

TEST(DesRound, NetlistIsSound) {
  const qg::DesRoundSlice s = qg::build_des_round_slice();
  const auto issues = s.nl.check();
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues[0]);
  // Eight S-Boxes plus the two XOR banks: a few thousand gates.
  EXPECT_GT(s.nl.num_gates(), 3000u);
}

TEST(DesRound, MatchesReferenceRoundFunction) {
  Fixture f;
  qdi::util::Rng rng(8);
  for (int t = 0; t < 10; ++t) {
    const std::uint32_t l = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t r = static_cast<std::uint32_t>(rng.next());
    const std::uint64_t k = rng.next() & 0xffffffffffffULL;
    const auto [rl, rr] = qc::des_round(l, r, k);
    (void)rl;
    EXPECT_EQ(f.round(l, r, k), rr) << "t=" << t;
  }
}

TEST(DesRound, ZeroKeyZeroData) {
  Fixture f;
  const auto [rl, rr] = qc::des_round(0, 0, 0);
  (void)rl;
  EXPECT_EQ(f.round(0, 0, 0), rr);
}

TEST(DesRound, RealSubkeysFromSchedule) {
  Fixture f;
  const qc::Des des(0x133457799BBCDFF1ULL);
  qdi::util::Rng rng(9);
  for (int round = 0; round < 3; ++round) {
    const std::uint32_t l = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t r = static_cast<std::uint32_t>(rng.next());
    const auto [rl, rr] = qc::des_round(l, r, des.round_key(round));
    (void)rl;
    EXPECT_EQ(f.round(l, r, des.round_key(round)), rr);
  }
}

TEST(DesRound, TransitionCountIsDataIndependent) {
  Fixture f;
  qdi::util::Rng rng(10);
  std::size_t expected = 0;
  for (int t = 0; t < 6; ++t) {
    std::vector<int> values = to_bus<32>(static_cast<std::uint32_t>(rng.next()));
    const auto rv = to_bus<32>(static_cast<std::uint32_t>(rng.next()));
    const auto kv = to_bus<48>(rng.next() & 0xffffffffffffULL);
    values.insert(values.end(), rv.begin(), rv.end());
    values.insert(values.end(), kv.begin(), kv.end());
    const auto cyc = f.env.send(values);
    ASSERT_TRUE(cyc.ok);
    if (expected == 0)
      expected = cyc.transitions;
    else
      EXPECT_EQ(cyc.transitions, expected) << "t=" << t;
  }
  EXPECT_EQ(f.sim.glitch_count(), 0u);
}

TEST(DesRound, Fig8StyleHierarchyPresent) {
  const qg::DesRoundSlice s = qg::build_des_round_slice();
  bool saw_keyxor = false, saw_sbox = false, saw_lxor = false;
  for (const auto& cell : s.nl.cells()) {
    if (cell.hier.find("keyxor") != std::string::npos) saw_keyxor = true;
    if (cell.hier.find("sbox3") != std::string::npos) saw_sbox = true;
    if (cell.hier.find("lxor") != std::string::npos) saw_lxor = true;
  }
  EXPECT_TRUE(saw_keyxor);
  EXPECT_TRUE(saw_sbox);
  EXPECT_TRUE(saw_lxor);
}
