// SIMD analysis-kernel dispatch and thread-sharded accumulation.
//
//  * every SIMD arm the host supports (SSE2, AVX2) is fuzzed against
//    the portable arm over awkward geometries — odd sample counts,
//    vector-width±1 tails, 1/5/256 guesses, byte-indexed and generic
//    models — and must leave BIT-identical accumulator state and emit
//    bit-identical finalize()/correlation_trace() results (the
//    determinism contract of qdi/dpa/kernels.hpp);
//  * the cached per-sample variance scan is invalidated by
//    ingest/merge/restore (a stale cache would poison every prefix
//    probe after the first);
//  * Campaign::sharded_ingest block-fold results are bit-identical
//    across thread counts (the block partition, not the scheduling,
//    determines the fold order) and match the serial fused path to
//    1e-12, with rank/MTD probes firing at exactly their trace counts;
//  * ShardedOptions::ingest_block_traces reproduces the serial sharded
//    runtime's per-shard stream digests exactly (the digest is fed
//    trace-ordered either way) while its fingerprint extension keeps
//    the two modes' checkpoints from cross-adopting.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "qdi/dpa/kernels.hpp"
#include "qdi/qdi.hpp"
#include "qdi/util/cpu.hpp"

namespace qc = qdi::campaign;
namespace qd = qdi::dpa;
namespace qk = qdi::dpa::kernels;
namespace qp = qdi::power;
namespace qu = qdi::util;

namespace {

qd::TraceSet random_traces(std::size_t n, std::size_t m, qu::Rng& rng) {
  qd::TraceSet ts;
  for (std::size_t i = 0; i < n; ++i) {
    qp::PowerTrace t(0.0, 10.0, m);
    for (std::size_t j = 0; j < m; ++j) t[j] = rng.gaussian(1.0, 2.0);
    ts.add(t, {rng.byte(), rng.byte()});
  }
  return ts;
}

/// Feed `ts` through `acc` in deliberately awkward chunkings: single
/// add()s at the front, then add_prefix() chunks of co-prime widths.
template <typename Acc>
void feed_awkward(Acc& acc, const qd::TraceSet& ts) {
  std::size_t i = 0;
  for (; i < std::min<std::size_t>(3, ts.size()); ++i)
    acc.add(ts.plaintext(i), ts.trace(i).samples());
  const std::size_t widths[] = {5, 1, 7, 13};
  std::size_t w = 0;
  while (i < ts.size()) {
    const std::size_t hi = std::min(ts.size(), i + widths[w % 4]);
    acc.add_prefix(ts, i, hi);
    i = hi;
    ++w;
  }
}

const std::vector<qk::Kind> kSimdKinds = {qk::Kind::Sse2, qk::Kind::Avx2};

/// Generic (non-byte-indexed) twin of aes_sbox_hw_model(0): forces the
/// scratch-row hypothesis path while computing the same values.
qd::LeakageModel generic_sbox_model() {
  return qd::LeakageModel([](std::span<const std::uint8_t> pt, unsigned g) {
    return static_cast<double>(std::popcount(static_cast<unsigned>(
        qdi::crypto::aes_sbox(static_cast<std::uint8_t>(pt[0] ^ g)))));
  });
}

qd::SelectionFn generic_sbox_selection(int bit) {
  return qd::SelectionFn([bit](std::span<const std::uint8_t> pt, unsigned g) {
    return (qdi::crypto::aes_sbox(static_cast<std::uint8_t>(pt[0] ^ g)) >>
            bit) &
           1;
  });
}

}  // namespace

// ---- arm-vs-arm bit identity -----------------------------------------------

TEST(KernelDispatch, ActiveArmHonorsForcePortable) {
  const qk::KernelTable& a = qk::active();
  ASSERT_NE(a.name, nullptr);
  if (qu::force_portable()) {
    EXPECT_STREQ(a.name, "portable");
    EXPECT_FALSE(qu::sha256_hw_accelerated());
  }
  // Every arm the probe reports must actually hand out a table.
  for (const qk::Kind k : kSimdKinds)
    if (qk::supported(k)) EXPECT_NE(qk::table(k), nullptr);
  EXPECT_NE(qk::table(qk::Kind::Portable), nullptr);
  EXPECT_TRUE(qk::supported(qk::Kind::Portable));
}

TEST(KernelArms, CpaStateBitIdenticalAcrossArms) {
  qu::Rng rng(0x51u);
  for (const std::size_t m : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}, std::size_t{17},
                              std::size_t{31}, std::size_t{64},
                              std::size_t{129}}) {
    for (const unsigned guesses : {1u, 5u, 256u}) {
      const std::size_t n = 24 + rng.below(16);
      const qd::TraceSet ts = random_traces(n, m, rng);
      for (const bool byte_indexed : {true, false}) {
        const qd::LeakageModel model =
            byte_indexed ? qd::aes_sbox_hw_model(0) : generic_sbox_model();
        qd::OnlineCpa ref(model, guesses);
        ref.set_kernels(*qk::table(qk::Kind::Portable));
        feed_awkward(ref, ts);
        const std::vector<std::uint8_t> ref_state = ref.serialize_state();
        const qd::CpaResult ref_fin = ref.finalize(1, m > 2 ? m - 1 : m);
        const std::vector<double> ref_rho = ref.correlation_trace(0);
        for (const qk::Kind kind : kSimdKinds) {
          if (!qk::supported(kind)) continue;
          qd::OnlineCpa acc(model, guesses);
          acc.set_kernels(*qk::table(kind));
          feed_awkward(acc, ts);
          // The whole running-sum state, byte for byte: no tolerance.
          EXPECT_EQ(acc.serialize_state(), ref_state)
              << qk::table(kind)->name << " m=" << m << " guesses=" << guesses
              << " byte_indexed=" << byte_indexed;
          const qd::CpaResult fin = acc.finalize(1, m > 2 ? m - 1 : m);
          EXPECT_EQ(fin.best_guess, ref_fin.best_guess);
          EXPECT_EQ(fin.best_sample, ref_fin.best_sample);
          for (unsigned g = 0; g < guesses; ++g)
            EXPECT_EQ(fin.correlation[g], ref_fin.correlation[g])
                << qk::table(kind)->name << " g=" << g;
          const std::vector<double> rho = acc.correlation_trace(0);
          for (std::size_t j = 0; j < m; ++j)
            EXPECT_EQ(rho[j], ref_rho[j]) << qk::table(kind)->name;
        }
      }
    }
  }
}

TEST(KernelArms, DpaStateBitIdenticalAcrossArms) {
  qu::Rng rng(0x52u);
  for (const std::size_t m : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                              std::size_t{9}, std::size_t{33},
                              std::size_t{130}}) {
    for (const unsigned guesses : {1u, 5u, 256u}) {
      const std::size_t n = 24 + rng.below(16);
      const qd::TraceSet ts = random_traces(n, m, rng);
      for (const bool byte_indexed : {true, false}) {
        std::vector<qd::SelectionFn> bits;
        if (byte_indexed) {
          bits.push_back(qd::aes_sbox_selection(0, 0));
          bits.push_back(qd::aes_sbox_selection(0, 3));
        } else {
          bits.push_back(generic_sbox_selection(0));
          bits.push_back(generic_sbox_selection(3));
        }
        qd::OnlineDpa ref(bits, guesses);
        ref.set_kernels(*qk::table(qk::Kind::Portable));
        feed_awkward(ref, ts);
        const std::vector<std::uint8_t> ref_state = ref.serialize_state();
        const qd::KeyRecoveryResult ref_rec = ref.recover();
        for (const qk::Kind kind : kSimdKinds) {
          if (!qk::supported(kind)) continue;
          qd::OnlineDpa acc(bits, guesses);
          acc.set_kernels(*qk::table(kind));
          feed_awkward(acc, ts);
          EXPECT_EQ(acc.serialize_state(), ref_state)
              << qk::table(kind)->name << " m=" << m << " guesses=" << guesses
              << " byte_indexed=" << byte_indexed;
          const qd::KeyRecoveryResult rec = acc.recover();
          EXPECT_EQ(rec.best_guess, ref_rec.best_guess);
          for (unsigned g = 0; g < guesses; ++g)
            EXPECT_EQ(rec.guess_peak[g], ref_rec.guess_peak[g]);
        }
      }
    }
  }
}

// ---- variance-cache correctness --------------------------------------------

TEST(KernelArms, VarianceCacheInvalidatedByIngestMergeRestore) {
  qu::Rng rng(0x53u);
  const qd::TraceSet ts = random_traces(60, 19, rng);
  const qd::LeakageModel model = qd::aes_sbox_hw_model(0);

  // finalize – ingest – finalize must equal a fresh single-shot feed
  // (a stale variance cache from the first finalize would poison the
  // second).
  qd::OnlineCpa probed(model, 16);
  probed.add_prefix(ts, 0, 30);
  (void)probed.finalize();           // populates the cache at n=30
  probed.add_prefix(ts, 30, 60);     // must invalidate it
  qd::OnlineCpa fresh(model, 16);
  fresh.add_prefix(ts, 0, 60);
  const qd::CpaResult a = probed.finalize();
  const qd::CpaResult b = fresh.finalize();
  for (unsigned g = 0; g < 16; ++g)
    EXPECT_EQ(a.correlation[g], b.correlation[g]) << "g=" << g;

  // Same rule through merge() ...
  qd::OnlineCpa left(model, 16), right(model, 16);
  left.add_prefix(ts, 0, 30);
  (void)left.finalize();
  right.add_prefix(ts, 30, 60);
  left.merge(right);
  const qd::CpaResult c = left.finalize();
  // merge() re-associates the sums (block totals instead of trace
  // order), so this leg is 1e-12, not bitwise.
  for (unsigned g = 0; g < 16; ++g)
    EXPECT_NEAR(c.correlation[g], b.correlation[g], 1e-12) << "g=" << g;

  // ... and through restore_state().
  qd::OnlineCpa restored(model, 16);
  restored.add_prefix(ts, 0, 30);
  (void)restored.finalize();
  restored.restore_state(fresh.serialize_state());
  const qd::CpaResult d = restored.finalize();
  for (unsigned g = 0; g < 16; ++g)
    EXPECT_EQ(d.correlation[g], b.correlation[g]) << "g=" << g;
}

TEST(KernelArms, ResetDropsTracesKeepsGeometry) {
  qu::Rng rng(0x54u);
  const qd::TraceSet ts = random_traces(24, 11, rng);
  qd::OnlineCpa acc(qd::aes_sbox_hw_model(0), 8);
  acc.add_prefix(ts, 0, 12);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
  acc.add_prefix(ts, 0, 24);
  qd::OnlineCpa fresh(qd::aes_sbox_hw_model(0), 8);
  fresh.add_prefix(ts, 0, 24);
  EXPECT_EQ(acc.serialize_state(), fresh.serialize_state());

  qd::OnlineDpa dacc({qd::aes_sbox_selection(0, 0)}, 8);
  dacc.add_prefix(ts, 0, 12);
  dacc.reset();
  EXPECT_EQ(dacc.count(), 0u);
  dacc.add_prefix(ts, 0, 24);
  qd::OnlineDpa dfresh({qd::aes_sbox_selection(0, 0)}, 8);
  dfresh.add_prefix(ts, 0, 24);
  EXPECT_EQ(dacc.serialize_state(), dfresh.serialize_state());
}

// ---- thread-sharded accumulation (campaign block-fold) ---------------------

namespace {

/// Leakage amplifier shared by the campaign tests below: skew one rail
/// of the sbox output channels so the CPA signal is real (a perfectly
/// balanced victim correlates at noise level ~1e-7, where the
/// serial-vs-block 1e-12 comparison would be dominated by catastrophic
/// cancellation in the covariance, not by the property under test).
void skew_sbox_rails(qdi::netlist::Netlist& nl) {
  for (qdi::netlist::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
    const qdi::netlist::Channel& c = nl.channel(ch);
    if (c.name.find("sbox/out") != std::string::npos ||
        c.name.find("hb/q_q") != std::string::npos)
      nl.net(c.rails[1]).cap_ff *= 2.0;
  }
}

qc::CampaignResult run_fused_campaign(unsigned threads,
                                      std::size_t sharded_block) {
  qc::Cpa cfg;
  cfg.compute_mtd = true;
  cfg.mtd_start = 30;
  cfg.mtd_step = 30;
  qc::Campaign c;
  c.target(qc::aes_byte_slice())
      .key(0x3c)
      .seed(77)
      .traces(130)  // NOT a multiple of the block width: partial final block
      .threads(threads)
      .prepare(skew_sbox_rails)
      .attack(cfg)
      .rank_trajectory(50)
      .fused(64);
  if (sharded_block > 0) c.sharded_ingest(sharded_block);
  return c.run();
}

void expect_bitwise_equal(const qc::CampaignResult& a,
                          const qc::CampaignResult& b) {
  ASSERT_TRUE(a.attack && b.attack);
  EXPECT_EQ(a.attack->best_guess, b.attack->best_guess);
  EXPECT_EQ(a.attack->best_score, b.attack->best_score);
  EXPECT_EQ(a.attack->second_score, b.attack->second_score);
  EXPECT_EQ(a.attack->true_key_rank, b.attack->true_key_rank);
  EXPECT_EQ(a.attack->mtd, b.attack->mtd);
  ASSERT_EQ(a.attack->guess_scores.size(), b.attack->guess_scores.size());
  for (std::size_t g = 0; g < a.attack->guess_scores.size(); ++g)
    EXPECT_EQ(a.attack->guess_scores[g], b.attack->guess_scores[g])
        << "g=" << g;
  ASSERT_EQ(a.rank_trajectory.size(), b.rank_trajectory.size());
  for (std::size_t i = 0; i < a.rank_trajectory.size(); ++i) {
    EXPECT_EQ(a.rank_trajectory[i].traces, b.rank_trajectory[i].traces);
    EXPECT_EQ(a.rank_trajectory[i].rank, b.rank_trajectory[i].rank);
  }
}

}  // namespace

TEST(ShardedIngest, ResultsBitIdenticalAcrossThreadCounts) {
  const qc::CampaignResult one = run_fused_campaign(1, 32);
  const qc::CampaignResult two = run_fused_campaign(2, 32);
  const qc::CampaignResult three = run_fused_campaign(3, 32);
  expect_bitwise_equal(one, two);
  expect_bitwise_equal(one, three);
}

TEST(ShardedIngest, MatchesSerialFusedWithinFpReassociation) {
  const qc::CampaignResult serial = run_fused_campaign(2, 0);
  const qc::CampaignResult block = run_fused_campaign(2, 32);
  ASSERT_TRUE(serial.attack && block.attack);
  // The block fold re-associates the sums (merge adds block sums where
  // the serial feed adds traces); the correlation's covariance step
  // amplifies that ~1e-15-relative sum perturbation by its cancellation
  // factor, so the end-to-end score tolerance is 1e-10 (the raw
  // accumulator sums agree to 1e-12 — test_online_merge.cpp) — and
  // every discrete outcome agrees exactly.
  EXPECT_EQ(serial.attack->best_guess, block.attack->best_guess);
  EXPECT_EQ(serial.attack->true_key_rank, block.attack->true_key_rank);
  EXPECT_EQ(serial.attack->mtd, block.attack->mtd);
  ASSERT_EQ(serial.attack->guess_scores.size(),
            block.attack->guess_scores.size());
  for (std::size_t g = 0; g < serial.attack->guess_scores.size(); ++g)
    EXPECT_NEAR(serial.attack->guess_scores[g], block.attack->guess_scores[g],
                1e-10)
        << "g=" << g;
  ASSERT_EQ(serial.rank_trajectory.size(), block.rank_trajectory.size());
  for (std::size_t i = 0; i < serial.rank_trajectory.size(); ++i) {
    EXPECT_EQ(serial.rank_trajectory[i].traces, block.rank_trajectory[i].traces);
    EXPECT_EQ(serial.rank_trajectory[i].rank, block.rank_trajectory[i].rank);
  }
}

TEST(ShardedIngest, RequiresFused) {
  qc::Campaign c;
  c.target(qc::aes_byte_slice())
      .traces(32)
      .attack(qc::Cpa{})
      .sharded_ingest(16);  // no fused(): nowhere to fold blocks into
  EXPECT_THROW(c.run(), std::invalid_argument);
}

// ---- thread-sharded accumulation (sharded runtime) -------------------------

namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = "kernel_ckpt_tests/" + name;
  for (std::size_t s = 0; s < 8; ++s) {
    std::remove(qc::checkpoint_path(dir, s).c_str());
    std::remove(qc::checkpoint_prev_path(dir, s).c_str());
  }
  return dir;
}

qc::ShardedResult run_sharded(unsigned threads, std::size_t ingest_block,
                              const std::string& dir) {
  qc::ShardedOptions opt;
  opt.shards = 2;
  opt.checkpoint_interval = 48;
  opt.checkpoint_dir = dir;
  opt.chunk_traces = 16;
  opt.ingest_block_traces = ingest_block;
  qc::Cpa cfg;
  cfg.compute_mtd = true;
  cfg.mtd_start = 40;
  cfg.mtd_step = 40;
  return qc::Campaign()
      .target(qc::aes_byte_slice())
      .key(0x3c)
      .seed(9)
      .traces(110)  // 2 shards of 55: partial blocks and windows everywhere
      .threads(threads)
      .prepare(skew_sbox_rails)
      .attack(cfg)
      .sharded(opt);
}

}  // namespace

TEST(ShardedIngest, ShardRuntimeDigestsMatchSerialAndThreadsDontMatter) {
  const qc::ShardedResult serial =
      run_sharded(2, 0, fresh_dir("serial"));
  const qc::ShardedResult block2 =
      run_sharded(2, 32, fresh_dir("block_t2"));
  const qc::ShardedResult block3 =
      run_sharded(3, 32, fresh_dir("block_t3"));
  ASSERT_TRUE(serial.complete());
  ASSERT_TRUE(block2.complete());
  ASSERT_TRUE(block3.complete());

  // The stream digest is fed trace by trace in index order in BOTH
  // modes, so it is bit-identical — the strongest possible witness that
  // the block-fold acquired exactly the serial trace stream.
  ASSERT_EQ(serial.shards.size(), block2.shards.size());
  for (std::size_t s = 0; s < serial.shards.size(); ++s) {
    EXPECT_EQ(serial.shards[s].digest_hex, block2.shards[s].digest_hex);
    EXPECT_EQ(block2.shards[s].digest_hex, block3.shards[s].digest_hex);
  }

  // Accumulator results: bit-identical across thread counts, 1e-12
  // against the serial fold.
  ASSERT_TRUE(serial.attack && block2.attack && block3.attack);
  EXPECT_EQ(block2.attack->best_score, block3.attack->best_score);
  for (std::size_t g = 0; g < block2.attack->guess_scores.size(); ++g) {
    EXPECT_EQ(block2.attack->guess_scores[g], block3.attack->guess_scores[g]);
    EXPECT_NEAR(serial.attack->guess_scores[g],
                block2.attack->guess_scores[g], 1e-12);
  }
  EXPECT_EQ(serial.attack->best_guess, block2.attack->best_guess);
  EXPECT_EQ(serial.attack->true_key_rank, block2.attack->true_key_rank);
}

TEST(ShardedIngest, BlockFoldResumeIsBitIdentical) {
  // Kill the first run after its first durable commit (the on_commit
  // hook throws with max_attempts=1), then resume: the resumed
  // block-fold run must be bit-identical to an uninterrupted one.
  const std::string dir = fresh_dir("resume");
  const std::string dir_ref = fresh_dir("resume_ref");
  const qc::ShardedResult ref = [&] {
    return run_sharded(2, 32, dir_ref);
  }();

  qc::ShardedOptions opt;
  opt.shards = 2;
  opt.checkpoint_interval = 48;
  opt.checkpoint_dir = dir;
  opt.chunk_traces = 16;
  opt.ingest_block_traces = 32;
  opt.max_attempts = 1;
  unsigned commits = 0;
  opt.on_commit = [&](std::size_t, std::uint64_t) {
    if (++commits == 1) throw std::runtime_error("injected crash");
  };
  qc::Cpa cfg;
  cfg.compute_mtd = true;
  cfg.mtd_start = 40;
  cfg.mtd_step = 40;
  const auto campaign = [&] {
    return qc::Campaign()
        .target(qc::aes_byte_slice())
        .key(0x3c)
        .seed(9)
        .traces(110)
        .threads(2)
        .prepare(skew_sbox_rails)
        .attack(cfg);
  };
  const qc::ShardedResult crashed = campaign().sharded(opt);
  EXPECT_LT(crashed.covered, crashed.total_traces);

  qc::ShardedOptions resume = opt;
  resume.on_commit = nullptr;
  resume.max_attempts = 3;
  const qc::ShardedResult resumed = campaign().sharded(resume);
  ASSERT_TRUE(resumed.complete());
  ASSERT_TRUE(resumed.attack && ref.attack);
  EXPECT_EQ(resumed.attack->best_score, ref.attack->best_score);
  for (std::size_t g = 0; g < ref.attack->guess_scores.size(); ++g)
    EXPECT_EQ(resumed.attack->guess_scores[g], ref.attack->guess_scores[g]);
  ASSERT_EQ(resumed.shards.size(), ref.shards.size());
  for (std::size_t s = 0; s < ref.shards.size(); ++s)
    EXPECT_EQ(resumed.shards[s].digest_hex, ref.shards[s].digest_hex);
}
