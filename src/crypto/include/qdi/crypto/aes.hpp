// AES-128 software reference (FIPS-197 / Rijndael). The reproduction uses
// it in three roles:
//   1. golden model for the QDI AES datapath generators (qdi/),
//   2. source of the DPA selection function D(C1,P8,K8) = XOR(P8,K8)(C1)
//      from section IV of the paper,
//   3. plaintext/ciphertext generation for trace acquisition.
// Encryption and decryption are both implemented so the library stands on
// its own as an AES implementation (tested against FIPS-197 vectors).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace qdi::crypto {

inline constexpr int kAesBlockBytes = 16;
inline constexpr int kAes128KeyBytes = 16;
inline constexpr int kAes128Rounds = 10;

using Block = std::array<std::uint8_t, kAesBlockBytes>;
using Aes128Key = std::array<std::uint8_t, kAes128KeyBytes>;

/// Forward S-box lookup (SubBytes), table generated from GF(2^8) inverse
/// plus the affine map at static-initialization time — no magic constants.
std::uint8_t aes_sbox(std::uint8_t x) noexcept;
/// Inverse S-box.
std::uint8_t aes_inv_sbox(std::uint8_t x) noexcept;

/// GF(2^8) multiplication modulo x^8+x^4+x^3+x+1 (0x11b).
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept;
/// xtime: multiplication by {02}.
std::uint8_t xtime(std::uint8_t a) noexcept;

/// Expanded key schedule: 11 round keys of 16 bytes.
class Aes128 {
 public:
  explicit Aes128(const Aes128Key& key);

  Block encrypt(const Block& plaintext) const;
  Block decrypt(const Block& ciphertext) const;

  /// Round key r (0..10) as 16 bytes, column-major as in FIPS-197.
  std::span<const std::uint8_t, 16> round_key(int r) const;

  /// State after AddRoundKey(round 0) — the 16 bytes P ^ K. This is the
  /// intermediate the paper's AES D-function targets ("XOR = a xor
  /// function of AES with 8-bit output").
  Block first_round_xor(const Block& plaintext) const;

  /// State after SubBytes of round 1 (useful as an alternative, more
  /// diffusive DPA target).
  Block first_round_sbox(const Block& plaintext) const;

 private:
  std::array<std::uint8_t, 16 * (kAes128Rounds + 1)> round_keys_{};
};

// --- individual round transforms (exposed for tests and for the QDI
//     datapath generators, which mirror them structurally) ---------------
void sub_bytes(Block& s) noexcept;
void inv_sub_bytes(Block& s) noexcept;
void shift_rows(Block& s) noexcept;
void inv_shift_rows(Block& s) noexcept;
void mix_columns(Block& s) noexcept;
void inv_mix_columns(Block& s) noexcept;
void add_round_key(Block& s, std::span<const std::uint8_t, 16> rk) noexcept;

}  // namespace qdi::crypto
