// DES reference implementation (FIPS 46-3). The paper's DPA recap
// (section IV, following Messerges) uses the DES selection function
//   D(C1, P6, K0) = SBOX1(P6 xor K0)(C1)
// so the S-boxes are exposed directly; the full 16-round cipher is also
// implemented (and tested against published vectors) so that DES-based
// examples can generate real ciphertexts.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>

namespace qdi::crypto {

using DesBlock = std::uint64_t;  ///< 64-bit block, MSB-first bit numbering
using DesKey = std::uint64_t;    ///< 64-bit key (8 parity bits ignored)

/// S-box lookup: box in [0,8), idx is the 6-bit input (b5..b0 with the
/// DES convention: outer bits b5b0 select the row, inner b4..b1 the
/// column). Returns the 4-bit output.
std::uint8_t des_sbox(int box, std::uint8_t idx) noexcept;

/// The Feistel f-function: f(R, K) = P(S(E(R) xor K)); K in the low 48
/// bits. Exposed so gate-level DES datapaths can be verified against it.
std::uint32_t des_f(std::uint32_t r, std::uint64_t subkey48) noexcept;

/// One Feistel round: (L, R) -> (R, L ^ f(R, K)).
std::pair<std::uint32_t, std::uint32_t> des_round(std::uint32_t l,
                                                  std::uint32_t r,
                                                  std::uint64_t subkey48) noexcept;

/// The expansion E (32 -> 48 bits) and permutation P (32 -> 32 bits)
/// position tables, 1-based DES bit positions (1 = MSB), exposed for the
/// wiring-only blocks of the gate-level datapath.
std::span<const int, 48> des_expansion_table() noexcept;
std::span<const int, 32> des_p_table() noexcept;

class Des {
 public:
  explicit Des(DesKey key);

  DesBlock encrypt(DesBlock plaintext) const noexcept;
  DesBlock decrypt(DesBlock ciphertext) const noexcept;

  /// 48-bit round key for round r (0..15), in the low 48 bits.
  std::uint64_t round_key(int r) const noexcept { return subkeys_[static_cast<std::size_t>(r)]; }

  /// First-round f-function S-box outputs: given the plaintext, returns
  /// the 32-bit concatenation of the eight 4-bit S-box outputs of round 1
  /// (before the P permutation). Bit extraction helpers for DPA targets.
  std::uint32_t first_round_sbox_outputs(DesBlock plaintext) const noexcept;

  /// The 6-bit input of S-box `box` in round 1 for this plaintext.
  std::uint8_t first_round_sbox_input(DesBlock plaintext, int box) const noexcept;

 private:
  std::array<std::uint64_t, 16> subkeys_{};
};

}  // namespace qdi::crypto
