#include "qdi/crypto/aes.hpp"

#include <cassert>

namespace qdi::crypto {

namespace {

/// GF(2^8) inverse via exponentiation (a^254 = a^-1), branch-free enough
/// for a reference model.
std::uint8_t gf_inv(std::uint8_t a) noexcept {
  if (a == 0) return 0;
  // a^254 = a^(2+4+8+16+32+64+128) * ... compute via square-and-multiply.
  std::uint8_t result = 1;
  std::uint8_t base = a;
  int e = 254;
  while (e) {
    if (e & 1) result = gf_mul(result, base);
    base = gf_mul(base, base);
    e >>= 1;
  }
  return result;
}

struct SboxTables {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};

  SboxTables() {
    for (int x = 0; x < 256; ++x) {
      const std::uint8_t i = gf_inv(static_cast<std::uint8_t>(x));
      // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
      auto rotl8 = [](std::uint8_t v, int k) -> std::uint8_t {
        return static_cast<std::uint8_t>((v << k) | (v >> (8 - k)));
      };
      const std::uint8_t s = static_cast<std::uint8_t>(
          i ^ rotl8(i, 1) ^ rotl8(i, 2) ^ rotl8(i, 3) ^ rotl8(i, 4) ^ 0x63);
      fwd[static_cast<std::size_t>(x)] = s;
      inv[s] = static_cast<std::uint8_t>(x);
    }
  }
};

const SboxTables& tables() {
  static const SboxTables t;
  return t;
}

}  // namespace

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    const bool hi = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

std::uint8_t xtime(std::uint8_t a) noexcept { return gf_mul(a, 0x02); }

std::uint8_t aes_sbox(std::uint8_t x) noexcept { return tables().fwd[x]; }
std::uint8_t aes_inv_sbox(std::uint8_t x) noexcept { return tables().inv[x]; }

void sub_bytes(Block& s) noexcept {
  for (auto& b : s) b = aes_sbox(b);
}
void inv_sub_bytes(Block& s) noexcept {
  for (auto& b : s) b = aes_inv_sbox(b);
}

// State layout: s[r + 4c] = row r, column c (FIPS-197 column-major bytes:
// input byte i maps to row i%4, column i/4).
void shift_rows(Block& s) noexcept {
  Block t = s;
  for (int r = 1; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      s[static_cast<std::size_t>(r + 4 * c)] =
          t[static_cast<std::size_t>(r + 4 * ((c + r) % 4))];
}
void inv_shift_rows(Block& s) noexcept {
  Block t = s;
  for (int r = 1; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      s[static_cast<std::size_t>(r + 4 * ((c + r) % 4))] =
          t[static_cast<std::size_t>(r + 4 * c)];
}

void mix_columns(Block& s) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[static_cast<std::size_t>(4 * c)];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
    col[3] = static_cast<std::uint8_t>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
  }
}
void inv_mix_columns(Block& s) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[static_cast<std::size_t>(4 * c)];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gf_mul(a0, 14) ^ gf_mul(a1, 11) ^
                                       gf_mul(a2, 13) ^ gf_mul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gf_mul(a0, 9) ^ gf_mul(a1, 14) ^
                                       gf_mul(a2, 11) ^ gf_mul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gf_mul(a0, 13) ^ gf_mul(a1, 9) ^
                                       gf_mul(a2, 14) ^ gf_mul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gf_mul(a0, 11) ^ gf_mul(a1, 13) ^
                                       gf_mul(a2, 9) ^ gf_mul(a3, 14));
  }
}

void add_round_key(Block& s, std::span<const std::uint8_t, 16> rk) noexcept {
  for (int i = 0; i < 16; ++i)
    s[static_cast<std::size_t>(i)] ^= rk[static_cast<std::size_t>(i)];
}

Aes128::Aes128(const Aes128Key& key) {
  // Key expansion (FIPS-197 §5.2), Nk=4, Nr=10.
  for (int i = 0; i < 16; ++i) round_keys_[static_cast<std::size_t>(i)] = key[static_cast<std::size_t>(i)];
  std::uint8_t rcon = 0x01;
  for (int w = 4; w < 4 * (kAes128Rounds + 1); ++w) {
    std::uint8_t t[4];
    for (int b = 0; b < 4; ++b)
      t[b] = round_keys_[static_cast<std::size_t>(4 * (w - 1) + b)];
    if (w % 4 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t tmp = t[0];
      t[0] = static_cast<std::uint8_t>(aes_sbox(t[1]) ^ rcon);
      t[1] = aes_sbox(t[2]);
      t[2] = aes_sbox(t[3]);
      t[3] = aes_sbox(tmp);
      rcon = xtime(rcon);
    }
    for (int b = 0; b < 4; ++b)
      round_keys_[static_cast<std::size_t>(4 * w + b)] =
          static_cast<std::uint8_t>(round_keys_[static_cast<std::size_t>(4 * (w - 4) + b)] ^ t[b]);
  }
}

std::span<const std::uint8_t, 16> Aes128::round_key(int r) const {
  assert(r >= 0 && r <= kAes128Rounds);
  return std::span<const std::uint8_t, 16>(
      round_keys_.data() + 16 * static_cast<std::size_t>(r), 16);
}

Block Aes128::encrypt(const Block& plaintext) const {
  Block s = plaintext;
  add_round_key(s, round_key(0));
  for (int r = 1; r < kAes128Rounds; ++r) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, round_key(r));
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, round_key(kAes128Rounds));
  return s;
}

Block Aes128::decrypt(const Block& ciphertext) const {
  Block s = ciphertext;
  add_round_key(s, round_key(kAes128Rounds));
  inv_shift_rows(s);
  inv_sub_bytes(s);
  for (int r = kAes128Rounds - 1; r >= 1; --r) {
    add_round_key(s, round_key(r));
    inv_mix_columns(s);
    inv_shift_rows(s);
    inv_sub_bytes(s);
  }
  add_round_key(s, round_key(0));
  return s;
}

Block Aes128::first_round_xor(const Block& plaintext) const {
  Block s = plaintext;
  add_round_key(s, round_key(0));
  return s;
}

Block Aes128::first_round_sbox(const Block& plaintext) const {
  Block s = first_round_xor(plaintext);
  sub_bytes(s);
  return s;
}

}  // namespace qdi::crypto
