#include "qdi/crypto/des.hpp"

#include <cassert>

namespace qdi::crypto {

namespace {

// FIPS 46-3 tables. Bit numbering: bit 1 = MSB of the 64-bit block.
constexpr int kIP[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr int kFP[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr int kE[48] = {32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
                        8,  9,  10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
                        16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
                        24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr int kP[32] = {16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23, 26,
                        5,  18, 31, 10, 2,  8,  24, 14, 32, 27, 3,  9,
                        19, 13, 30, 6,  22, 11, 4,  25};

constexpr int kPC1[56] = {57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
                          10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
                          63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
                          14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr int kPC2[48] = {14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
                          23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
                          41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
                          44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr int kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1};

constexpr std::uint8_t kSbox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6,  1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8,  6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9,  2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3,  12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

/// Extract bit `pos` (1 = MSB) from a `width`-bit value held in the low
/// bits of v.
constexpr std::uint64_t get_bit(std::uint64_t v, int pos, int width) noexcept {
  return (v >> (width - pos)) & 1ULL;
}

/// Generic permutation: out bit i (1 = MSB of `out_width` bits) takes
/// input bit table[i].
template <int OutWidth, int InWidth>
constexpr std::uint64_t permute(std::uint64_t v, const int (&table)[OutWidth]) noexcept {
  std::uint64_t out = 0;
  for (int i = 0; i < OutWidth; ++i)
    out = (out << 1) | get_bit(v, table[i], InWidth);
  return out;
}

constexpr std::uint32_t rotl28(std::uint32_t v, int k) noexcept {
  return ((v << k) | (v >> (28 - k))) & 0x0fffffffu;
}

}  // namespace

std::uint32_t des_f(std::uint32_t r, std::uint64_t subkey48) noexcept {
  const std::uint64_t expanded = permute<48, 32>(r, kE) ^ subkey48;
  std::uint32_t sout = 0;
  for (int box = 0; box < 8; ++box) {
    const std::uint8_t six =
        static_cast<std::uint8_t>((expanded >> (42 - 6 * box)) & 0x3f);
    sout = (sout << 4) | des_sbox(box, six);
  }
  return static_cast<std::uint32_t>(permute<32, 32>(sout, kP));
}

std::pair<std::uint32_t, std::uint32_t> des_round(std::uint32_t l,
                                                  std::uint32_t r,
                                                  std::uint64_t subkey48) noexcept {
  return {r, l ^ des_f(r, subkey48)};
}

std::span<const int, 48> des_expansion_table() noexcept {
  return std::span<const int, 48>(kE);
}

std::span<const int, 32> des_p_table() noexcept {
  return std::span<const int, 32>(kP);
}

std::uint8_t des_sbox(int box, std::uint8_t idx) noexcept {
  assert(box >= 0 && box < 8);
  assert(idx < 64);
  // Row = outer bits (b5,b0), column = inner bits (b4..b1).
  const int row = ((idx >> 4) & 0x2) | (idx & 0x1);
  const int col = (idx >> 1) & 0xf;
  return kSbox[box][row * 16 + col];
}

Des::Des(DesKey key) {
  std::uint64_t cd = permute<56, 64>(key, kPC1);
  std::uint32_t c = static_cast<std::uint32_t>(cd >> 28) & 0x0fffffffu;
  std::uint32_t d = static_cast<std::uint32_t>(cd) & 0x0fffffffu;
  for (int r = 0; r < 16; ++r) {
    c = rotl28(c, kShifts[r]);
    d = rotl28(d, kShifts[r]);
    const std::uint64_t merged = (static_cast<std::uint64_t>(c) << 28) | d;
    subkeys_[static_cast<std::size_t>(r)] = permute<48, 56>(merged, kPC2);
  }
}

DesBlock Des::encrypt(DesBlock plaintext) const noexcept {
  std::uint64_t v = permute<64, 64>(plaintext, kIP);
  std::uint32_t l = static_cast<std::uint32_t>(v >> 32);
  std::uint32_t r = static_cast<std::uint32_t>(v);
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t nl = r;
    r = l ^ des_f(r, subkeys_[static_cast<std::size_t>(i)]);
    l = nl;
  }
  // Note the final swap: (R16, L16).
  const std::uint64_t pre = (static_cast<std::uint64_t>(r) << 32) | l;
  return permute<64, 64>(pre, kFP);
}

DesBlock Des::decrypt(DesBlock ciphertext) const noexcept {
  std::uint64_t v = permute<64, 64>(ciphertext, kIP);
  std::uint32_t l = static_cast<std::uint32_t>(v >> 32);
  std::uint32_t r = static_cast<std::uint32_t>(v);
  for (int i = 15; i >= 0; --i) {
    const std::uint32_t nl = r;
    r = l ^ des_f(r, subkeys_[static_cast<std::size_t>(i)]);
    l = nl;
  }
  const std::uint64_t pre = (static_cast<std::uint64_t>(r) << 32) | l;
  return permute<64, 64>(pre, kFP);
}

std::uint32_t Des::first_round_sbox_outputs(DesBlock plaintext) const noexcept {
  const std::uint64_t v = permute<64, 64>(plaintext, kIP);
  const std::uint32_t r0 = static_cast<std::uint32_t>(v);
  const std::uint64_t expanded = permute<48, 32>(r0, kE) ^ subkeys_[0];
  std::uint32_t sout = 0;
  for (int box = 0; box < 8; ++box) {
    const std::uint8_t six =
        static_cast<std::uint8_t>((expanded >> (42 - 6 * box)) & 0x3f);
    sout = (sout << 4) | des_sbox(box, six);
  }
  return sout;
}

std::uint8_t Des::first_round_sbox_input(DesBlock plaintext, int box) const noexcept {
  const std::uint64_t v = permute<64, 64>(plaintext, kIP);
  const std::uint32_t r0 = static_cast<std::uint32_t>(v);
  const std::uint64_t expanded = permute<48, 32>(r0, kE) ^ subkeys_[0];
  return static_cast<std::uint8_t>((expanded >> (42 - 6 * box)) & 0x3f);
}

}  // namespace qdi::crypto
