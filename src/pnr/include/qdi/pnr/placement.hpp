// Placement engine reproducing the two flows compared in section VI:
//
//   * flat: the whole netlist is annealed over the entire die — the
//     conventional flow where "the tool performs multiple random runs to
//     optimize the design, in which the designer has no control on the
//     net capacitances";
//   * hierarchical: cells are grouped by hierarchical block, each block
//     is assigned a floorplan region (fig. 9) by recursive area
//     bisection, and annealing moves are confined to the block's region —
//     "the cells that implement a given function are gathered in a
//     specified physical area which limits net length and dispersion".
//
// The placer is a classic site-grid simulated-annealing HPWL minimizer:
// cells occupy sites of a uniform grid, moves are cell relocations or
// swaps, cost is total half-perimeter wirelength. It is intentionally
// seed-sensitive — Table 2's observation that "the most sensitive
// channels are never the same from one place and route to another" is a
// property of exactly this randomness.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qdi/netlist/netlist.hpp"
#include "qdi/util/rng.hpp"

namespace qdi::pnr {

enum class FlowMode {
  Flat,          ///< AES_v2 of the paper
  Hierarchical,  ///< AES_v1 of the paper
};

struct PlacerOptions {
  FlowMode mode = FlowMode::Flat;
  std::uint64_t seed = 1;

  double row_height_um = 3.7;        ///< standard-cell row height (0.13 µm class)
  double site_pitch_um = 4.0;        ///< uniform site width
  double target_utilization = 0.65;  ///< die sizing: cell sites / total sites
  /// Extra area factor applied to every floorplan region in hierarchical
  /// mode (the paper reports ~20% area overhead for the constrained flow).
  double region_padding = 1.20;

  /// How many hierarchical path components define a region ("aes_core/
  /// bytesub" with depth 2). Cells with shorter paths use what they have.
  int region_depth = 2;

  // --- annealing schedule ---
  int moves_per_cell = 40;  ///< total move budget = moves_per_cell * cells
  double t_initial_sites = 8.0;  ///< initial temperature, in units of site pitch
  double t_final_sites = 0.05;
  int stages = 60;  ///< geometric cooling steps
};

struct Region {
  std::string name;
  // Site-coordinate rectangle [c0, c1) x [r0, r1).
  int c0 = 0, r0 = 0, c1 = 0, r1 = 0;

  int width() const noexcept { return c1 - c0; }
  int height() const noexcept { return r1 - r0; }
  long capacity() const noexcept {
    return static_cast<long>(width()) * height();
  }
};

struct Placement {
  struct Pos {
    double x_um = 0.0;
    double y_um = 0.0;
  };

  std::vector<Pos> cell_pos;  ///< indexed by CellId
  double die_w_um = 0.0;
  double die_h_um = 0.0;
  std::vector<Region> regions;             ///< one entry in flat mode
  std::vector<int> region_of_cell;         ///< region index per cell
  double total_hpwl_um = 0.0;              ///< final cost
  std::uint64_t seed = 0;
  FlowMode mode = FlowMode::Flat;

  double core_area_um2() const noexcept { return die_w_um * die_h_um; }
};

/// Half-perimeter wirelength of one net under a placement.
double net_hpwl_um(const netlist::Netlist& nl, const Placement& p,
                   netlist::NetId net);

/// Run the placer.
Placement place(const netlist::Netlist& nl, const PlacerOptions& opt);

/// Region key of a cell under the given depth ("" for unhierarchized cells).
std::string region_key(const netlist::Cell& cell, int depth);

}  // namespace qdi::pnr
