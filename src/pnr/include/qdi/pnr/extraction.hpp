// Net-capacitance extraction: back-annotates every net of the netlist
// with C = Cl(wire) + Cl(pins) from the placement's half-perimeter
// wirelength estimate. This closes the loop of the paper's fig. 5: "these
// annotations after the back end step permit to take into account logical
// and real physical elements in the graph analysis".
#pragma once

#include "qdi/netlist/netlist.hpp"
#include "qdi/pnr/placement.hpp"

namespace qdi::pnr {

struct ExtractionParams {
  double cap_per_um_ff = 0.20;  ///< routing capacitance per µm of HPWL
  double pin_cap_ff = 2.0;      ///< gate capacitance per sink pin (0.13 µm)
  double driver_cap_ff = 1.5;   ///< driver diffusion capacitance
  double min_cap_ff = 1.0;      ///< floor (every physical net has some C)
  /// Repeater model: routers buffer long wires, so the capacitance seen
  /// by the driving gate saturates at this wirelength (the rest of the
  /// route is driven by inserted repeaters). 0 disables the cap.
  double repeater_distance_um = 250.0;
};

struct ExtractionSummary {
  double total_wirelength_um = 0.0;
  double total_cap_ff = 0.0;
  double max_net_cap_ff = 0.0;
  double mean_net_cap_ff = 0.0;
  /// Nets touching a cell with no placement entry (created after the
  /// placement ran, e.g. by an xform pass). They get the defined
  /// pin-model default capacitance — zero wirelength, pin + driver caps,
  /// floored at min_cap_ff — instead of reading stale table entries.
  std::size_t unplaced_nets = 0;
};

/// Annotate nl's nets (cap_ff, wirelength_um) from the placement.
ExtractionSummary extract(netlist::Netlist& nl, const Placement& placement,
                          const ExtractionParams& params = {});

}  // namespace qdi::pnr
