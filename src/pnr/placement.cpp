#include "qdi/pnr/placement.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "qdi/util/log.hpp"

namespace qdi::pnr {

using netlist::CellId;
using netlist::kNoCell;
using netlist::Netlist;
using netlist::NetId;

std::string region_key(const netlist::Cell& cell, int depth) {
  if (cell.hier.empty()) return {};
  std::size_t pos = 0;
  for (int d = 0; d < depth; ++d) {
    const std::size_t next = cell.hier.find('/', pos);
    if (next == std::string::npos) return cell.hier;
    pos = next + 1;
  }
  return cell.hier.substr(0, pos == 0 ? std::string::npos : pos - 1);
}

namespace {

struct Rect {
  double x0, y0, x1, y1;
  double w() const noexcept { return x1 - x0; }
  double h() const noexcept { return y1 - y0; }
};

/// Recursive area bisection of `rect` among items (name, weight); appends
/// (item index -> sub-rect) assignments.
void bisect(const Rect& rect, std::vector<std::pair<std::size_t, double>>& items,
            std::size_t lo, std::size_t hi, std::vector<Rect>& out) {
  if (hi - lo == 1) {
    out[items[lo].first] = rect;
    return;
  }
  // Split the item range at roughly half the total weight.
  double total = 0.0;
  for (std::size_t i = lo; i < hi; ++i) total += items[i].second;
  double acc = 0.0;
  std::size_t cut = lo + 1;
  for (std::size_t i = lo; i < hi - 1; ++i) {
    acc += items[i].second;
    if (acc >= total / 2.0) {
      cut = i + 1;
      break;
    }
    cut = i + 2;
  }
  cut = std::min(cut, hi - 1);
  double w_lo = 0.0;
  for (std::size_t i = lo; i < cut; ++i) w_lo += items[i].second;
  const double frac = total > 0.0 ? w_lo / total : 0.5;

  Rect a = rect, b = rect;
  if (rect.w() >= rect.h()) {
    const double xm = rect.x0 + rect.w() * frac;
    a.x1 = xm;
    b.x0 = xm;
  } else {
    const double ym = rect.y0 + rect.h() * frac;
    a.y1 = ym;
    b.y0 = ym;
  }
  bisect(a, items, lo, cut, out);
  bisect(b, items, cut, hi, out);
}

class Annealer {
 public:
  Annealer(const Netlist& nl, const PlacerOptions& opt)
      : nl_(nl), opt_(opt), rng_(opt.seed) {}

  Placement run() {
    build_regions();
    initial_place();
    anneal();
    return export_placement();
  }

 private:
  // --- geometry ------------------------------------------------------------

  double site_x(int col) const noexcept {
    return (static_cast<double>(col) + 0.5) * opt_.site_pitch_um;
  }
  double site_y(int row) const noexcept {
    return (static_cast<double>(row) + 0.5) * opt_.row_height_um;
  }
  long site_index(int col, int row) const noexcept {
    return static_cast<long>(row) * cols_ + col;
  }

  void build_regions() {
    const std::size_t n = nl_.num_cells();
    // Die sizing: enough sites for all cells at target utilization, padded
    // in hierarchical mode.
    double sites_needed = static_cast<double>(n) / opt_.target_utilization;
    if (opt_.mode == FlowMode::Hierarchical) sites_needed *= opt_.region_padding;
    // Near-square aspect with the differing pitches.
    const double area =
        sites_needed * opt_.site_pitch_um * opt_.row_height_um;
    const double side = std::sqrt(area);
    cols_ = std::max(2, static_cast<int>(std::ceil(side / opt_.site_pitch_um)));
    rows_ = std::max(2, static_cast<int>(std::ceil(side / opt_.row_height_um)));

    region_of_cell_.assign(n, 0);
    if (opt_.mode == FlowMode::Flat) {
      regions_.push_back(Region{"die", 0, 0, cols_, rows_});
      return;
    }

    // Group cells by region key.
    std::map<std::string, std::vector<CellId>> groups;
    for (CellId c = 0; c < n; ++c)
      groups[region_key(nl_.cell(c), opt_.region_depth)].push_back(c);

    std::vector<std::pair<std::size_t, double>> items;
    std::vector<std::string> names;
    std::vector<std::vector<CellId>> members;
    for (auto& [key, cells] : groups) {
      items.emplace_back(items.size(), static_cast<double>(cells.size()));
      names.push_back(key.empty() ? "top" : key);
      members.push_back(std::move(cells));
    }
    // Largest blocks first gives better split balance.
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });

    std::vector<Rect> rects(items.size());
    bisect(Rect{0.0, 0.0, static_cast<double>(cols_), static_cast<double>(rows_)},
           items, 0, items.size(), rects);

    regions_.reserve(items.size());
    for (std::size_t g = 0; g < rects.size(); ++g) {
      const Rect& r = rects[g];
      Region reg;
      reg.name = names[g];
      reg.c0 = static_cast<int>(std::floor(r.x0));
      reg.r0 = static_cast<int>(std::floor(r.y0));
      reg.c1 = std::max(reg.c0 + 1, static_cast<int>(std::ceil(r.x1)));
      reg.r1 = std::max(reg.r0 + 1, static_cast<int>(std::ceil(r.y1)));
      reg.c1 = std::min(reg.c1, cols_);
      reg.r1 = std::min(reg.r1, rows_);
      if (reg.capacity() < static_cast<long>(members[g].size()))
        throw std::runtime_error("placement region '" + reg.name +
                                 "' too small; increase region_padding");
      const int idx = static_cast<int>(regions_.size());
      for (CellId c : members[g]) region_of_cell_[c] = idx;
      regions_.push_back(reg);
    }
  }

  void initial_place() {
    const std::size_t n = nl_.num_cells();
    cell_site_.assign(n, -1);
    site_cell_.assign(static_cast<std::size_t>(cols_) * rows_, kNoCell);

    // Random initial assignment, region by region.
    std::vector<std::vector<CellId>> by_region(regions_.size());
    for (CellId c = 0; c < n; ++c)
      by_region[static_cast<std::size_t>(region_of_cell_[c])].push_back(c);

    for (std::size_t g = 0; g < regions_.size(); ++g) {
      const Region& reg = regions_[g];
      std::vector<long> sites;
      sites.reserve(static_cast<std::size_t>(reg.capacity()));
      for (int r = reg.r0; r < reg.r1; ++r)
        for (int c = reg.c0; c < reg.c1; ++c) sites.push_back(site_index(c, r));
      // Fisher-Yates shuffle.
      for (std::size_t i = sites.size(); i > 1; --i)
        std::swap(sites[i - 1], sites[rng_.below(i)]);
      assert(sites.size() >= by_region[g].size());
      for (std::size_t i = 0; i < by_region[g].size(); ++i) {
        const CellId c = by_region[g][i];
        cell_site_[c] = sites[i];
        site_cell_[static_cast<std::size_t>(sites[i])] = c;
      }
    }

    // Net HPWL cache.
    net_hpwl_.assign(nl_.num_nets(), 0.0);
    total_hpwl_ = 0.0;
    for (NetId i = 0; i < nl_.num_nets(); ++i) {
      net_hpwl_[i] = compute_hpwl(i);
      total_hpwl_ += net_hpwl_[i];
    }
  }

  double cell_x(CellId c) const noexcept {
    return site_x(static_cast<int>(cell_site_[c] % cols_));
  }
  double cell_y(CellId c) const noexcept {
    return site_y(static_cast<int>(cell_site_[c] / cols_));
  }

  double compute_hpwl(NetId i) const {
    const netlist::Net& net = nl_.net(i);
    if (net.driver == kNoCell && net.sinks.empty()) return 0.0;
    double x0 = 1e18, x1 = -1e18, y0 = 1e18, y1 = -1e18;
    auto acc = [&](CellId c) {
      const double x = cell_x(c), y = cell_y(c);
      x0 = std::min(x0, x);
      x1 = std::max(x1, x);
      y0 = std::min(y0, y);
      y1 = std::max(y1, y);
    };
    if (net.driver != kNoCell) acc(net.driver);
    for (const netlist::Pin& p : net.sinks) acc(p.cell);
    if (x1 < x0) return 0.0;
    return (x1 - x0) + (y1 - y0);
  }

  /// Nets incident to a cell (driver output + each input), deduplicated
  /// into `scratch_nets_`.
  void collect_nets(CellId c) {
    const netlist::Cell& cell = nl_.cell(c);
    if (cell.output != netlist::kNoNet) push_net(cell.output);
    for (NetId i : cell.inputs) push_net(i);
  }
  void push_net(NetId i) {
    if (net_mark_[i] == mark_token_) return;
    net_mark_[i] = mark_token_;
    scratch_nets_.push_back(i);
  }

  void anneal() {
    const std::size_t n = nl_.num_cells();
    if (n < 2) return;
    net_mark_.assign(nl_.num_nets(), 0);
    mark_token_ = 0;

    const long total_moves =
        static_cast<long>(opt_.moves_per_cell) * static_cast<long>(n);
    const long moves_per_stage = std::max<long>(1, total_moves / opt_.stages);
    const double pitch = opt_.site_pitch_um;
    double temp = opt_.t_initial_sites * pitch;
    const double t_final = opt_.t_final_sites * pitch;
    const double alpha =
        std::pow(t_final / temp, 1.0 / std::max(1, opt_.stages - 1));

    for (int stage = 0; stage < opt_.stages; ++stage, temp *= alpha) {
      for (long m = 0; m < moves_per_stage; ++m) {
        const CellId a = static_cast<CellId>(rng_.below(n));
        const Region& reg = regions_[static_cast<std::size_t>(region_of_cell_[a])];
        const int tc = reg.c0 + static_cast<int>(rng_.below(
                                    static_cast<std::uint64_t>(reg.width())));
        const int tr = reg.r0 + static_cast<int>(rng_.below(
                                    static_cast<std::uint64_t>(reg.height())));
        const long target = site_index(tc, tr);
        if (target == cell_site_[a]) continue;
        const CellId bcell = site_cell_[static_cast<std::size_t>(target)];
        if (bcell != kNoCell &&
            region_of_cell_[bcell] != region_of_cell_[a])
          continue;  // can't displace a cell into a foreign region

        // Affected nets.
        ++mark_token_;
        scratch_nets_.clear();
        collect_nets(a);
        if (bcell != kNoCell) collect_nets(bcell);

        double before = 0.0;
        for (NetId i : scratch_nets_) before += net_hpwl_[i];

        const long src = cell_site_[a];
        apply_move(a, bcell, target);

        double after = 0.0;
        for (NetId i : scratch_nets_) after += compute_hpwl(i);

        const double delta = after - before;
        if (delta <= 0.0 || rng_.uniform() < std::exp(-delta / temp)) {
          for (NetId i : scratch_nets_) {
            total_hpwl_ += compute_hpwl(i) - net_hpwl_[i];
            net_hpwl_[i] = compute_hpwl(i);
          }
        } else {
          apply_move(a, bcell, src);  // revert the relocation/swap
        }
      }
    }
  }

  /// Move cell a to `target`; if `bcell` occupies it, swap.
  void apply_move(CellId a, CellId bcell, long target) {
    const long src = cell_site_[a];
    site_cell_[static_cast<std::size_t>(src)] = bcell;
    if (bcell != kNoCell) cell_site_[bcell] = src;
    site_cell_[static_cast<std::size_t>(target)] = a;
    cell_site_[a] = target;
  }

  Placement export_placement() {
    Placement p;
    p.mode = opt_.mode;
    p.seed = opt_.seed;
    p.die_w_um = static_cast<double>(cols_) * opt_.site_pitch_um;
    p.die_h_um = static_cast<double>(rows_) * opt_.row_height_um;
    p.cell_pos.resize(nl_.num_cells());
    for (CellId c = 0; c < nl_.num_cells(); ++c)
      p.cell_pos[c] = Placement::Pos{cell_x(c), cell_y(c)};
    p.regions = regions_;
    p.region_of_cell = region_of_cell_;
    // Recompute the final cost exactly (the incremental sum drifts by ulps).
    p.total_hpwl_um = 0.0;
    for (NetId i = 0; i < nl_.num_nets(); ++i)
      p.total_hpwl_um += compute_hpwl(i);
    return p;
  }

  const Netlist& nl_;
  PlacerOptions opt_;
  util::Rng rng_;

  int cols_ = 0, rows_ = 0;
  std::vector<Region> regions_;
  std::vector<int> region_of_cell_;
  std::vector<long> cell_site_;
  std::vector<CellId> site_cell_;
  std::vector<double> net_hpwl_;
  double total_hpwl_ = 0.0;

  std::vector<NetId> scratch_nets_;
  std::vector<std::uint64_t> net_mark_;
  std::uint64_t mark_token_ = 0;
};

}  // namespace

double net_hpwl_um(const Netlist& nl, const Placement& p, NetId net) {
  const netlist::Net& n = nl.net(net);
  double x0 = 1e18, x1 = -1e18, y0 = 1e18, y1 = -1e18;
  // Cells created after the placement ran (e.g. by an xform pass) have
  // no position entry; they contribute nothing to the bounding box
  // instead of reading past the end of the table.
  auto acc = [&](CellId c) {
    if (c >= p.cell_pos.size()) return;
    x0 = std::min(x0, p.cell_pos[c].x_um);
    x1 = std::max(x1, p.cell_pos[c].x_um);
    y0 = std::min(y0, p.cell_pos[c].y_um);
    y1 = std::max(y1, p.cell_pos[c].y_um);
  };
  if (n.driver != kNoCell) acc(n.driver);
  for (const netlist::Pin& pin : n.sinks) acc(pin.cell);
  if (x1 < x0) return 0.0;
  return (x1 - x0) + (y1 - y0);
}

Placement place(const Netlist& nl, const PlacerOptions& opt) {
  Annealer annealer(nl, opt);
  return annealer.run();
}

}  // namespace qdi::pnr
