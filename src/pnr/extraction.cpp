#include "qdi/pnr/extraction.hpp"

#include <algorithm>

namespace qdi::pnr {

namespace {

/// True when every cell on the net has a position in the placement.
/// Nets (or cells) created after the placement ran — e.g. buffer cells
/// an xform pass spliced in — are "unplaced": they have no wirelength,
/// and their capacitance must come from the pin model alone instead of
/// a stale or out-of-range position-table entry.
bool net_fully_placed(const netlist::Netlist& nl, const Placement& p,
                      netlist::NetId id) {
  const netlist::Net& net = nl.net(id);
  if (net.driver != netlist::kNoCell && net.driver >= p.cell_pos.size())
    return false;
  for (const netlist::Pin& pin : net.sinks)
    if (pin.cell >= p.cell_pos.size()) return false;
  return true;
}

}  // namespace

ExtractionSummary extract(netlist::Netlist& nl, const Placement& placement,
                          const ExtractionParams& params) {
  ExtractionSummary s;
  const std::size_t n = nl.num_nets();
  for (netlist::NetId i = 0; i < n; ++i) {
    const bool placed = net_fully_placed(nl, placement, i);
    if (!placed) ++s.unplaced_nets;
    netlist::Net& net = nl.net(i);
    const double wl = placed ? net_hpwl_um(nl, placement, i) : 0.0;
    double driver_wl = wl;
    if (params.repeater_distance_um > 0.0)
      driver_wl = std::min(driver_wl, params.repeater_distance_um);
    const double cap = std::max(
        params.min_cap_ff,
        params.cap_per_um_ff * driver_wl +
            params.pin_cap_ff * static_cast<double>(net.sinks.size()) +
            params.driver_cap_ff);
    net.wirelength_um = wl;
    net.cap_ff = cap;
    s.total_wirelength_um += wl;
    s.total_cap_ff += cap;
    s.max_net_cap_ff = std::max(s.max_net_cap_ff, cap);
  }
  if (n > 0) s.mean_net_cap_ff = s.total_cap_ff / static_cast<double>(n);
  return s;
}

}  // namespace qdi::pnr
