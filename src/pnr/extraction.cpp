#include "qdi/pnr/extraction.hpp"

#include <algorithm>

namespace qdi::pnr {

ExtractionSummary extract(netlist::Netlist& nl, const Placement& placement,
                          const ExtractionParams& params) {
  ExtractionSummary s;
  const std::size_t n = nl.num_nets();
  for (netlist::NetId i = 0; i < n; ++i) {
    netlist::Net& net = nl.net(i);
    const double wl = net_hpwl_um(nl, placement, i);
    double driver_wl = wl;
    if (params.repeater_distance_um > 0.0)
      driver_wl = std::min(driver_wl, params.repeater_distance_um);
    const double cap = std::max(
        params.min_cap_ff,
        params.cap_per_um_ff * driver_wl +
            params.pin_cap_ff * static_cast<double>(net.sinks.size()) +
            params.driver_cap_ff);
    net.wirelength_um = wl;
    net.cap_ff = cap;
    s.total_wirelength_um += wl;
    s.total_cap_ff += cap;
    s.max_net_cap_ff = std::max(s.max_net_cap_ff, cap);
  }
  if (n > 0) s.mean_net_cap_ff = s.total_cap_ff / static_cast<double>(n);
  return s;
}

}  // namespace qdi::pnr
