// The paper-grounded countermeasure passes (section II's balanced
// dual-rail logic + section VI's capacitance control, plus the classic
// temporal countermeasure the conclusion points to):
//
//   * ConeBalancePass   — logical symmetry: make both rails of every
//                         channel structurally isomorphic,
//   * CapEqualizePass   — electrical symmetry: equalize the rail load
//                         capacitances (the dA criterion's numerator),
//   * RandomDelayPass   — temporal decorrelation: per-cell delay jitter.
#pragma once

#include <cstdint>

#include "qdi/xform/pass.hpp"

namespace qdi::xform {

// ---- cone balancing --------------------------------------------------------

struct ConeBalanceOptions {
  /// Whole-netlist sweeps until no channel changes (fixes the coupling
  /// between channels that share logic, e.g. the per-layer group
  /// channels of an S-Box merge tree).
  int max_rounds = 8;
  /// Per-channel safety valve on inserted duplicate cells.
  std::size_t max_clones_per_channel = 512;
  /// Re-verify every touched channel against netlist::check_rail_symmetry
  /// after the transform and count the asymmetric channels before/after
  /// (metric_before / metric_after). Costs one full symmetry scan.
  bool verify = true;
  /// Worker threads for the per-channel plan phase and the verify scans.
  /// 0 = one per hardware thread. The committed netlist is byte-identical
  /// for every thread count: planning fans out over a frozen netlist,
  /// commits apply serially in channel-id order, and any plan invalidated
  /// by an earlier commit is re-planned at its serial position.
  unsigned threads = 0;
};

/// Equalizes the per-level gate-kind histograms of every channel's rail
/// fanin cones by *unsharing*: where one rail's cone has fewer distinct
/// cells of some kind at some level because logic is shared more
/// aggressively on its side, the pass clones such a shared cell (same
/// kind, same inputs — an identity transform) and rewires one in-cone
/// sink to the clone. Function is preserved exactly; the registry
/// channels' residual asymmetry class (isomorphic signatures, unequal
/// distinct-ancestor counts) becomes fully symmetric. Channels whose
/// asymmetry is not fixable this way (differing primary-input support,
/// non-isomorphic signatures, no valid clone site) are reported as
/// skipped and left untouched. Idempotent: a balanced channel yields no
/// further clones.
class ConeBalancePass final : public Pass {
 public:
  explicit ConeBalancePass(ConeBalanceOptions opt = {}) : opt_(opt) {}

  std::string name() const override { return "cone-balance"; }
  PassReport run(netlist::Netlist& nl) const override;

 private:
  ConeBalanceOptions opt_;
};

// ---- capacitance equalization ----------------------------------------------

struct CapEqualizeOptions {
  /// Pad the lighter rails of each channel until the channel's worst
  /// pairwise dissymmetry dA = |C0 − C1| / min(C0, C1) is at most this.
  /// 0 equalizes exactly.
  double tolerance_da = 0.0;
};

/// Pulls every channel's rail loads toward the heaviest rail (post-
/// extraction trimming / dummy-metal fill): each rail below
/// C_max / (1 + tolerance) is padded up to that floor, which bounds
/// every pairwise dA of the channel by the tolerance. Updates the
/// netlist cap annotations, i.e. exactly the dense cap table the
/// compiled netlist consumes on the next sim::compile(). Metric:
/// max dA over all channels before/after. Idempotent.
class CapEqualizePass final : public Pass {
 public:
  explicit CapEqualizePass(CapEqualizeOptions opt = {}) : opt_(opt) {}

  std::string name() const override { return "cap-equalize"; }
  PassReport run(netlist::Netlist& nl) const override;
  bool preserves_structure() const override { return true; }  // caps only

 private:
  CapEqualizeOptions opt_;
};

// ---- random delay insertion ------------------------------------------------

struct RandomDelayOptions {
  std::uint64_t seed = 1;
  /// Per-cell jitter is uniform in [0, max_jitter_ps).
  double max_jitter_ps = 40.0;
};

/// Sets every real gate's delay_jitter_ps to a draw from the cell's own
/// util::split_stream(seed, cell_id) stream — bit-reproducible per seed,
/// independent of pass order and of how many cells other passes added
/// before it ran. Overwrites (never accumulates), so the pass is
/// idempotent. Metric: mean jitter before/after.
class RandomDelayPass final : public Pass {
 public:
  explicit RandomDelayPass(RandomDelayOptions opt = {}) : opt_(opt) {}

  std::string name() const override { return "random-delay"; }
  PassReport run(netlist::Netlist& nl) const override;
  bool preserves_structure() const override { return true; }  // delays only

 private:
  RandomDelayOptions opt_;
};

// ---- standard recipes ------------------------------------------------------

/// Baseline: empty pipeline (the attack target exactly as built).
Recipe unprotected();

/// The paper's countermeasure: cone balancing then capacitance
/// equalization.
Recipe balanced(ConeBalanceOptions cone = {}, CapEqualizeOptions cap = {});

/// balanced() plus random delay insertion.
Recipe hardened(ConeBalanceOptions cone = {}, CapEqualizeOptions cap = {},
                RandomDelayOptions delay = {});

/// Random delay insertion alone (the temporal countermeasure ablation).
Recipe jittered(RandomDelayOptions delay = {});

}  // namespace qdi::xform
