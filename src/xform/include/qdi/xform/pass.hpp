// qdi::xform — deterministic netlist-to-netlist transform pipeline.
//
// The paper does not stop at *detecting* DPA leakage on QDI circuits; it
// removes it by rebalancing the dual-rail data path (logical symmetry of
// the rail cones, then equalization of the rail capacitances). This
// module is that countermeasure step as a compiler-style pass manager:
// each Pass mutates a netlist::Netlist in place and returns a structured
// report; a Pipeline runs an ordered list of passes; a Recipe names a
// pipeline so campaign-level sweeps can compare countermeasure variants
// ("unprotected" vs "balanced" vs "hardened") by name.
//
// Determinism contract: a pass's output depends only on (input netlist,
// pass options). All randomness is drawn through util::split_stream from
// an explicit seed, all iteration is in id order, and every pass is
// idempotent — running it twice from the same options yields a
// byte-identical netlist the second time (asserted per pass in
// tests/test_xform.cpp). Transformed netlists compile through the
// existing sim::compile() path unchanged.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qdi/netlist/netlist.hpp"
#include "qdi/util/table.hpp"

namespace qdi::xform {

/// What one pass did to one netlist.
struct PassReport {
  std::string pass;
  bool changed = false;
  std::size_t cells_added = 0;
  std::size_t nets_added = 0;
  /// Channels the pass modified / declined. A declined channel keeps a
  /// note in `notes`; a channel can count in both when the pass changed
  /// it but could not finish (clone budget exhausted, no further valid
  /// site).
  std::size_t channels_touched = 0;
  std::size_t channels_skipped = 0;
  /// Added silicon cost where the pass pads capacitances.
  double cap_added_ff = 0.0;
  /// Pass-specific headline metric before/after (documented per pass:
  /// asymmetric-channel count for cone balancing, max dA for cap
  /// equalization, mean jitter for random delay). `verified` marks
  /// metrics computed by a full re-verification scan (ConeBalancePass
  /// with verify=true) — consumers may reuse them instead of rescanning.
  double metric_before = 0.0;
  double metric_after = 0.0;
  bool verified = false;
  /// Stamped by Pipeline::run from Pass::preserves_structure() — lets
  /// report consumers reason about which passes could have changed the
  /// netlist's connectivity.
  bool structure_preserving = false;
  /// Wall-clock time of this pass's run() — stamped by Pipeline::run
  /// (0.0 for a bare Pass::run call), so recipe reports show where the
  /// transform time goes at core scale.
  double wall_ms = 0.0;
  std::vector<std::string> notes;
};

/// A deterministic in-place netlist transform. Implementations are
/// immutable option bundles: run() must not retain state between calls.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual PassReport run(netlist::Netlist& nl) const = 0;

  /// True when the pass can never change connectivity (cells, nets,
  /// pins, channels) — it only edits annotations such as capacitances
  /// or delays. Structural facts computed before such a pass (symmetry
  /// reports, cone histograms) remain valid after it. Default false:
  /// claiming preservation is an opt-in promise.
  virtual bool preserves_structure() const { return false; }
};

struct PipelineReport {
  std::vector<PassReport> passes;

  bool changed() const noexcept;
  std::size_t cells_added() const noexcept;
  std::size_t nets_added() const noexcept;
  double cap_added_ff() const noexcept;
  const PassReport* find(std::string_view pass_name) const noexcept;

  /// Per-pass report table (pass, changed, cells+, nets+, cap+, metric).
  util::Table table() const;
};

/// Ordered pass list. Passes are shared immutable objects, so pipelines
/// (and the recipes holding them) copy cheaply.
class Pipeline {
 public:
  Pipeline() = default;

  Pipeline& add(std::shared_ptr<const Pass> pass);

  template <typename P, typename... Args>
  Pipeline& emplace(Args&&... args) {
    return add(std::make_shared<const P>(std::forward<Args>(args)...));
  }

  std::size_t size() const noexcept { return passes_.size(); }
  bool empty() const noexcept { return passes_.empty(); }
  const std::vector<std::shared_ptr<const Pass>>& passes() const noexcept {
    return passes_;
  }

  /// Run every pass in order; one PassReport per pass.
  PipelineReport run(netlist::Netlist& nl) const;

 private:
  std::vector<std::shared_ptr<const Pass>> passes_;
};

/// A named pipeline — the unit a campaign sweep compares. See recipes.hpp
/// for the paper-grounded standard recipes.
struct Recipe {
  std::string name;
  Pipeline pipeline;
};

}  // namespace qdi::xform
