#include <algorithm>

#include "qdi/xform/passes.hpp"

#include "qdi/util/rng.hpp"

namespace qdi::xform {

PassReport RandomDelayPass::run(netlist::Netlist& nl) const {
  PassReport rep;
  rep.pass = name();

  // Cell::delay_jitter_ps must stay >= 0 (the compiled kernel's
  // time-wheel geometry assumes non-negative delays); a non-positive
  // bound degenerates to "no jitter" instead of drawing negatives.
  const double bound = std::max(0.0, opt_.max_jitter_ps);
  double sum_before = 0.0, sum_after = 0.0;
  std::size_t gates = 0;
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    if (netlist::is_pseudo(nl.cell(c).kind)) continue;
    ++gates;
    sum_before += nl.cell(c).delay_jitter_ps;
    // One private stream per (seed, cell id): the draw is independent of
    // iteration order and of every other cell's draw, and *overwrites*
    // the previous jitter — re-running the pass is a no-op.
    const double jitter =
        bound > 0.0 ? util::split_stream(opt_.seed, c).uniform(0.0, bound)
                    : 0.0;
    if (nl.cell(c).delay_jitter_ps != jitter) {
      nl.cell(c).delay_jitter_ps = jitter;
      rep.changed = true;
    }
    sum_after += jitter;
  }
  if (gates > 0) {
    rep.metric_before = sum_before / static_cast<double>(gates);
    rep.metric_after = sum_after / static_cast<double>(gates);
  }
  return rep;
}

}  // namespace qdi::xform
