// Cone balancing by *unsharing*.
//
// The residual asymmetry class of this library's generated circuits
// (see tests/test_symmetry.cpp, SboxOutputsAreIsomorphic) is: the two
// rails' fanin cones are structurally isomorphic — same recursive
// signature — but their *distinct* ancestor counts differ, because the
// shared decode logic below the merge trees is shared more aggressively
// on one side than the other. check_rail_symmetry rightly reports that
// as asymmetric: the per-level distinct-gate histograms (and hence the
// per-level switched capacitance available to one computation) differ.
//
// The fix is the dual of sharing: where rail r's cone is short one gate
// of kind k at level l, find a cell of that kind and level inside the
// cone whose output fans out to several in-cone sinks, clone it (same
// kind, same inputs — the clone computes the identical function), and
// rewire exactly one of those sinks to the clone. Function, protocol,
// and hazard-freedom are untouched; the cone gains one distinct cell at
// exactly (l, k). Repeating this until every rail matches the per-level
// maximum makes the channel's histograms — and, because the signatures
// were already isomorphic, the full SymmetryReport — symmetric.
//
// Channels whose asymmetry is NOT of this class (differing primary-
// input support, genuinely different structure like dr_and's 3-vs-1
// minterm merge, or no valid clone site) are left untouched and
// reported as skipped: inventing structure would change transition
// counts, which is the opposite of balancing.
#include <algorithm>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "qdi/netlist/graph.hpp"
#include "qdi/netlist/symmetry.hpp"
#include "qdi/xform/passes.hpp"

namespace qdi::xform {

namespace {

using netlist::Cell;
using netlist::CellId;
using netlist::CellKind;
using netlist::Channel;
using netlist::ChannelId;
using netlist::kNoCell;
using netlist::kNoNet;
using netlist::Net;
using netlist::Netlist;
using netlist::NetId;
using netlist::Pin;

/// (level, kind) -> distinct-cell count; std::map for deterministic
/// deficit iteration order.
using Hist = std::map<std::pair<int, int>, std::size_t>;

struct RailCone {
  std::vector<char> in_cone;  ///< per-cell membership mask
  /// Cone cells in ascending id order (candidate iteration order). May
  /// retain evicted cells — consumers re-check in_cone — and clones are
  /// appended (their ids are the largest, so the order is preserved).
  std::vector<CellId> members;
  Hist hist;  ///< real gates only
  std::size_t input_cells = 0;
  std::size_t size = 0;  ///< all cells, pseudo included
  bool driven = false;
};

/// Mirror of Graph::fanin_cone over the live (possibly just-mutated)
/// netlist: walk driver edges, never ascending in level (feedback cut).
RailCone compute_cone(const Netlist& nl, const std::vector<int>& level,
                      NetId rail) {
  RailCone rc;
  rc.in_cone.assign(nl.num_cells(), 0);
  const CellId root = nl.net(rail).driver;
  if (root == kNoCell) return rc;
  rc.driven = true;
  std::vector<CellId> stack{root};
  rc.in_cone[root] = 1;
  while (!stack.empty()) {
    const CellId c = stack.back();
    stack.pop_back();
    ++rc.size;
    rc.members.push_back(c);
    const Cell& cell = nl.cell(c);
    if (cell.kind == CellKind::Input) {
      ++rc.input_cells;
    } else if (!netlist::is_pseudo(cell.kind)) {
      ++rc.hist[{level[c], static_cast<int>(cell.kind)}];
    }
    for (NetId in : cell.inputs) {
      const CellId p = nl.net(in).driver;
      if (p != kNoCell && !rc.in_cone[p] && level[p] <= level[c]) {
        rc.in_cone[p] = 1;
        stack.push_back(p);
      }
    }
  }
  std::sort(rc.members.begin(), rc.members.end());
  return rc;
}

/// One clone-and-rewire site: duplicate `cell`, move sink pin
/// (sink_cell, sink_pin) onto the duplicate.
struct CloneSite {
  CellId cell = kNoCell;
  CellId sink_cell = kNoCell;
  int sink_pin = 0;
};

class Balancer {
 public:
  Balancer(Netlist& nl, const ConeBalanceOptions& opt, PassReport& rep)
      : nl_(nl), opt_(opt), rep_(rep) {}

  void run() {
    for (int round = 0; round < opt_.max_rounds; ++round) {
      refresh_levels();
      bool changed = false;
      for (ChannelId id = 0; id < nl_.num_channels(); ++id)
        changed |= balance_channel(id);
      if (!changed) break;
    }
    for (const auto& [id, note] : skip_notes_) {
      ++rep_.channels_skipped;
      rep_.notes.push_back(note);
    }
    // Touched = received at least one clone, whether or not it reached
    // balance; a channel can be both touched and skipped (e.g. clone
    // budget exhausted mid-way, or re-broken by a sibling's clones).
    for (const auto& [id, clones] : clones_of_)
      if (clones > 0) ++rep_.channels_touched;
  }

 private:
  void refresh_levels() {
    const netlist::Graph g(nl_);
    level_.resize(nl_.num_cells());
    for (CellId c = 0; c < nl_.num_cells(); ++c) level_[c] = g.level(c);
  }

  void skip(ChannelId id, const std::string& why) {
    std::ostringstream os;
    os << "channel '" << nl_.channel(id).name << "': " << why;
    skip_notes_[id] = os.str();
  }

  /// Returns true when the channel was mutated this visit.
  bool balance_channel(ChannelId id) {
    const Channel& ch = nl_.channel(id);
    if (ch.rails.size() < 2) return false;

    // Cones are computed once per channel visit and then maintained
    // incrementally: a clone-and-rewire changes membership in exactly
    // one way per rail cone — the clone joins every cone containing the
    // stolen sink, and the original leaves those where the stolen edge
    // was its only forward path (its ancestors stay reachable through
    // the clone, which shares its inputs). apply() applies that delta.
    std::vector<RailCone> cones;
    cones.reserve(ch.rails.size());
    for (NetId r : ch.rails) cones.push_back(compute_cone(nl_, level_, r));
    for (const RailCone& rc : cones) {
      if (!rc.driven) {
        skip(id, "undriven rail");
        return false;
      }
    }

    // Cloning adds gates, never primary inputs: rails with differing
    // input support cannot be balanced by this pass.
    for (std::size_t r = 1; r < cones.size(); ++r) {
      if (cones[r].input_cells != cones[0].input_cells) {
        skip(id, "primary-input support differs between rails");
        return false;
      }
    }

    bool changed = false;
    for (;;) {
      // Per-(level, kind) target = max over rails; first deficit in
      // (rail, level, kind) order is the next hole to fill.
      Hist target;
      for (const RailCone& rc : cones)
        for (const auto& [key, n] : rc.hist)
          target[key] = std::max(target[key], n);
      std::size_t rail = cones.size();
      std::pair<int, int> key{};
      for (std::size_t r = 0; r < cones.size() && rail == cones.size(); ++r) {
        for (const auto& [k, want] : target) {
          const auto it = cones[r].hist.find(k);
          if ((it == cones[r].hist.end() ? 0 : it->second) < want) {
            rail = r;
            key = k;
            break;
          }
        }
      }
      if (rail == cones.size()) {
        // Histograms uniform (and with matching input support, cone
        // sizes follow). Signature equality is the verifier's concern.
        skip_notes_.erase(id);
        return changed;
      }

      if (clones_of_[id] >= opt_.max_clones_per_channel) {
        skip(id, "clone budget exhausted");
        return changed;
      }
      const CloneSite site = find_site(ch, cones, rail, key);
      if (site.cell == kNoCell) {
        std::ostringstream os;
        os << "no clone site for kind "
           << netlist::name(static_cast<CellKind>(key.second)) << " at level "
           << key.first << " on rail " << rail;
        skip(id, os.str());
        return changed;
      }
      apply(site, ch, cones, key);
      ++clones_of_[id];
      changed = true;
    }
  }

  /// A valid site duplicates a shared cell of the wanted (level, kind)
  /// inside rail `r`'s cone and steals one of its forward in-cone sinks.
  /// Per rail cone containing the stolen sink, the clone joins it and
  /// the original either stays (another edge keeps it reachable — the
  /// cone gains one distinct cell, so it must be below target) or is
  /// replaced by the clone (count unchanged — always safe). The target
  /// rail `r` must be in the former class, or there is no progress.
  CloneSite find_site(const Channel& ch, const std::vector<RailCone>& cones,
                      std::size_t r, const std::pair<int, int>& key) const {
    for (CellId c : cones[r].members) {
      if (!cones[r].in_cone[c]) continue;  // evicted since discovery
      const Cell& cell = nl_.cell(c);
      if (static_cast<int>(cell.kind) != key.second) continue;
      if (level_[c] != key.first) continue;
      if (cell.output == kNoNet) continue;
      const Net& net = nl_.net(cell.output);
      for (const Pin& pin : net.sinks) {
        if (netlist::is_pseudo(nl_.cell(pin.cell).kind)) continue;
        // The cone traversal descends an edge iff level[driver] <=
        // level[sink] (Graph::fanin_cone's cycle cut). Only such edges
        // let the sink adopt the clone — level[clone] == level[c] —
        // into a cone; the rule here must mirror the traversal exactly
        // or the incremental cone bookkeeping drifts.
        if (level_[pin.cell] < level_[c]) continue;
        if (!cones[r].in_cone[pin.cell]) continue;
        if (site_ok(ch, cones, c, pin, key, r)) return {c, pin.cell, pin.pin};
      }
    }
    return {};
  }

  /// Does cell `c` keep a path into the cone after losing the `moved`
  /// edge — i.e. does it drive the rail itself or feed another forward
  /// in-cone sink?
  bool stays_in_cone(const RailCone& rc, NetId rail, CellId c,
                     const Pin& moved) const {
    if (nl_.cell(c).output == rail) return true;
    const Net& net = nl_.net(nl_.cell(c).output);
    for (const Pin& other : net.sinks) {
      if (other == moved) continue;
      if (netlist::is_pseudo(nl_.cell(other.cell).kind)) continue;
      // Same inclusive rule as the cone traversal (level[c] <=
      // level[sink] edges are descended): see find_site.
      if (level_[other.cell] < level_[c]) continue;
      if (rc.in_cone[other.cell]) return true;
    }
    return false;
  }

  bool site_ok(const Channel& ch, const std::vector<RailCone>& cones, CellId c,
               const Pin& moved, const std::pair<int, int>& key,
               std::size_t target_rail) const {
    for (std::size_t r2 = 0; r2 < cones.size(); ++r2) {
      const RailCone& rc = cones[r2];
      if (!rc.in_cone[moved.cell]) {
        if (r2 == target_rail) return false;  // unreachable; defensive
        continue;
      }
      const bool stays = stays_in_cone(rc, ch.rails[r2], c, moved);
      if (r2 == target_rail) {
        // Progress requires the original to remain: the cone must end up
        // with both the original and the clone.
        if (!stays) return false;
        continue;
      }
      if (!stays) continue;  // clone replaces original: count unchanged
      // Cone gains a distinct cell at (level, kind): only allowed while
      // it is below the shared target, or the overshoot would ratchet
      // the target upward on the next iteration.
      auto it = rc.hist.find(key);
      const std::size_t have = it == rc.hist.end() ? 0 : it->second;
      std::size_t want = 0;
      for (const RailCone& other : cones) {
        auto jt = other.hist.find(key);
        if (jt != other.hist.end()) want = std::max(want, jt->second);
      }
      if (have >= want) return false;
    }
    return true;
  }

  void apply(const CloneSite& site, const Channel& ch,
             std::vector<RailCone>& cones, const std::pair<int, int>& key) {
    const Cell original = nl_.cell(static_cast<CellId>(site.cell));
    const Pin moved{site.sink_cell, site.sink_pin};
    // Membership deltas are decided against the pre-rewire state.
    std::vector<char> joins(cones.size(), 0), evicts(cones.size(), 0);
    for (std::size_t r = 0; r < cones.size(); ++r) {
      if (!cones[r].in_cone[site.sink_cell]) continue;
      joins[r] = 1;
      evicts[r] = !stays_in_cone(cones[r], ch.rails[r], site.cell, moved);
    }

    std::ostringstream os;
    os << original.name << "$bal" << clone_counter_++;
    const std::string cname = os.str();
    const NetId nn = nl_.add_net(cname + "$o");
    const CellId cc =
        nl_.add_cell(original.kind, cname, original.inputs, nn, original.hier);
    nl_.cell(cc).delay_jitter_ps = original.delay_jitter_ps;
    nl_.rewire_input(site.sink_cell, site.sink_pin, nn);
    level_.push_back(level_[site.cell]);
    ++rep_.cells_added;
    ++rep_.nets_added;

    for (std::size_t r = 0; r < cones.size(); ++r) {
      cones[r].in_cone.resize(nl_.num_cells(), 0);
      if (!joins[r]) continue;
      cones[r].in_cone[cc] = 1;
      cones[r].members.push_back(cc);  // largest id: order preserved
      ++cones[r].hist[key];
      ++cones[r].size;
      if (evicts[r]) {
        cones[r].in_cone[site.cell] = 0;  // members entry goes stale
        --cones[r].hist[key];
        --cones[r].size;
      }
    }
  }

  Netlist& nl_;
  const ConeBalanceOptions& opt_;
  PassReport& rep_;
  std::vector<int> level_;
  std::map<ChannelId, std::string> skip_notes_;
  std::map<ChannelId, std::size_t> clones_of_;
  std::size_t clone_counter_ = 0;
};

std::size_t count_asymmetric(const Netlist& nl) {
  return netlist::count_asymmetric_channels(netlist::Graph(nl));
}

}  // namespace

PassReport ConeBalancePass::run(netlist::Netlist& nl) const {
  PassReport rep;
  rep.pass = name();
  if (opt_.verify)
    rep.metric_before = static_cast<double>(count_asymmetric(nl));

  Balancer balancer(nl, opt_, rep);
  balancer.run();
  rep.changed = rep.cells_added > 0;

  if (opt_.verify) {
    rep.metric_after = static_cast<double>(count_asymmetric(nl));
    rep.verified = true;
  }
  return rep;
}

}  // namespace qdi::xform
