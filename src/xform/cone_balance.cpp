// Cone balancing by *unsharing*.
//
// The residual asymmetry class of this library's generated circuits
// (see tests/test_symmetry.cpp, SboxOutputsAreIsomorphic) is: the two
// rails' fanin cones are structurally isomorphic — same recursive
// signature — but their *distinct* ancestor counts differ, because the
// shared decode logic below the merge trees is shared more aggressively
// on one side than the other. check_rail_symmetry rightly reports that
// as asymmetric: the per-level distinct-gate histograms (and hence the
// per-level switched capacitance available to one computation) differ.
//
// The fix is the dual of sharing: where rail r's cone is short one gate
// of kind k at level l, find a cell of that kind and level inside the
// cone whose output fans out to several in-cone sinks, clone it (same
// kind, same inputs — the clone computes the identical function), and
// rewire exactly one of those sinks to the clone. Function, protocol,
// and hazard-freedom are untouched; the cone gains one distinct cell at
// exactly (l, k). Repeating this until every rail matches the per-level
// maximum makes the channel's histograms — and, because the signatures
// were already isomorphic, the full SymmetryReport — symmetric.
//
// Channels whose asymmetry is NOT of this class (differing primary-
// input support, genuinely different structure like dr_and's 3-vs-1
// minterm merge, or no valid clone site) are left untouched and
// reported as skipped: inventing structure would change transition
// counts, which is the opposite of balancing.
//
// ---- plan-then-commit execution -------------------------------------------
//
// At core scale (aes_core: ~25k cells, ~2.4k channels) the naive
// visit-everything-every-round loop is minutes of work, so the pass runs
// in two phases per round:
//
//   PLAN    Per-channel analysis fans out across worker threads over the
//           *frozen* netlist. A planner simulates the serial pass's
//           clone-and-rewire edits on a copy-on-write Overlay (virtual
//           clone ids, virtual output nets, cow sink/input lists that
//           replicate add_cell/rewire_input ordering exactly) and records
//           the clone list plus the channel's read *footprint* (its cone
//           members).
//
//   COMMIT  Plans apply serially in ascending channel-id order. A plan
//           whose footprint intersects the cells dirtied by earlier
//           commits this round is re-planned in place against the live
//           netlist — exactly what the serial pass would have computed at
//           that position — so the committed netlist is byte-identical to
//           the single-threaded pass at any thread count.
//
// Rounds after the first only revisit channels whose stored footprint
// intersects the previous round's dirty set: a clone-and-rewire can only
// change channel X's plan through a cell X already read (the moved sink
// and the cloned cell are both cone members of any channel they affect;
// foreign clones outside a cone are invisible to its membership tests).
// Untouched channels' round-(r+1) visits were no-ops in the old
// algorithm — now they are skipped outright, which is where most of the
// wall-time at aes_core scale went (the fixpoint typically needs one
// heavy round, one light round, and six no-op confirmation sweeps).
// Per-rail cone membership uses epoch-stamped per-worker scratch instead
// of a fresh num_cells-sized mask per rail visit, and clone-site lookup
// is bucketed by (level, kind) instead of rescanning every cone member
// per deficit.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qdi/netlist/graph.hpp"
#include "qdi/netlist/symmetry.hpp"
#include "qdi/util/parallel.hpp"
#include "qdi/xform/passes.hpp"

namespace qdi::xform {

namespace {

using netlist::Cell;
using netlist::CellId;
using netlist::CellKind;
using netlist::Channel;
using netlist::ChannelId;
using netlist::kNoCell;
using netlist::kNoNet;
using netlist::Net;
using netlist::Netlist;
using netlist::NetId;
using netlist::Pin;

/// (level, kind) — the unit of histogram accounting.
using Key = std::pair<int, int>;
/// (level, kind) -> distinct-cell count; std::map for deterministic
/// deficit iteration order.
using Hist = std::map<Key, std::size_t>;

std::size_t hist_count(const Hist& h, const Key& k) {
  const auto it = h.find(k);
  return it == h.end() ? 0 : it->second;
}

/// Dense mirror of the netlist fields the cone walk touches. Cell and
/// Net carry strings and sink vectors the walk never reads; at aes_core
/// scale (~61M member visits per round) the pointer-chasing through
/// those fat structs dominates the pass, so the walk reads these flat
/// arrays instead. Rebuilt from scratch each round (cheap: one linear
/// scan) and patched incrementally at every commit so it always equals
/// the live netlist.
struct FlatGraph {
  std::vector<CellKind> kind;            ///< per cell
  std::vector<int> level;                ///< per cell (Graph::level)
  std::vector<std::uint32_t> input_off;  ///< per cell, size num_cells+1
  std::vector<NetId> input_net;          ///< CSR payload of cell inputs
  std::vector<CellId> driver;            ///< per net

  void build(const Netlist& nl, const netlist::Graph& g) {
    const std::size_t nc = nl.num_cells();
    const std::size_t nn = nl.num_nets();
    kind.resize(nc);
    level.resize(nc);
    driver.resize(nn);
    for (NetId n = 0; n < static_cast<NetId>(nn); ++n)
      driver[n] = nl.net(n).driver;
    input_off.clear();
    input_off.reserve(nc + 1);
    input_off.push_back(0);
    input_net.clear();
    for (CellId c = 0; c < static_cast<CellId>(nc); ++c) {
      const Cell& cell = nl.cell(c);
      kind[c] = cell.kind;
      level[c] = g.level(c);
      input_net.insert(input_net.end(), cell.inputs.begin(),
                       cell.inputs.end());
      input_off.push_back(static_cast<std::uint32_t>(input_net.size()));
    }
  }

  /// Mirror of add_net + add_cell + rewire_input for one committed
  /// clone: `inputs` are the clone's input nets, `nn` its output net id
  /// (== driver.size() by construction), and the rewired (sink, pin)
  /// now reads `nn`. Levels are fanin-derived, so the clone inherits
  /// the original's level.
  void append_clone(CellId clone, const std::vector<NetId>& inputs,
                    int clone_level, CellKind clone_kind, NetId nn,
                    CellId sink, int sink_pin) {
    driver.push_back(clone);  // net nn: ids stay dense
    kind.push_back(clone_kind);
    level.push_back(clone_level);
    input_net.insert(input_net.end(), inputs.begin(), inputs.end());
    input_off.push_back(static_cast<std::uint32_t>(input_net.size()));
    input_net[input_off[sink] + static_cast<std::uint32_t>(sink_pin)] = nn;
  }
};

/// One clone-and-rewire edit: duplicate `orig`, move sink pin
/// (sink_cell, sink_pin) onto the duplicate. Ids may be *virtual*
/// (>= the plan's base_cells) when they reference clones planned earlier
/// in the same channel visit; commit resolves them in creation order.
struct PlannedClone {
  CellId orig = kNoCell;
  CellId sink_cell = kNoCell;
  int sink_pin = 0;
};

/// Everything one channel visit decided, plus the read set that
/// determines whether the decision survives earlier commits.
struct ChannelPlan {
  bool visited = false;  ///< rails >= 2, planning ran
  bool changed = false;
  bool set_note = false;
  bool clear_note = false;
  std::string note;
  std::vector<PlannedClone> clones;
  /// Sorted unique ids of every *real* cell the planner read (cone
  /// members of all rails, evicted members included). Any commit that
  /// can change this channel's plan dirties at least one of them.
  std::vector<CellId> footprint;
  std::size_t base_cells = 0;  ///< virtual-id base at plan time
};

/// Copy-on-write view of (netlist + the clones planned so far for one
/// channel). Mutations replicate Netlist::add_cell / rewire_input
/// byte-for-byte where it matters: pin push order into sink lists and
/// order-preserving erase of a moved pin, so a plan's site search sees
/// exactly what the serial pass's live netlist would show.
class Overlay {
 public:
  /// Lightweight view over a cell's input nets: either a CSR slice of
  /// the FlatGraph or a cow/virtual vector.
  struct InSpan {
    const NetId* ptr = nullptr;
    std::size_t len = 0;
    const NetId* begin() const { return ptr; }
    const NetId* end() const { return ptr + len; }
    std::size_t size() const { return len; }
    NetId operator[](std::size_t i) const { return ptr[i]; }
  };

  Overlay(const Netlist& nl, const FlatGraph& fg)
      : nl_(&nl),
        fg_(&fg),
        base_cells_(static_cast<CellId>(nl.num_cells())),
        base_nets_(static_cast<NetId>(nl.num_nets())) {}

  CellId base_cells() const { return base_cells_; }
  bool is_virtual(CellId c) const { return c >= base_cells_; }

  CellKind kind(CellId c) const {
    return is_virtual(c) ? vcells_[c - base_cells_].kind : fg_->kind[c];
  }
  int level(CellId c) const {
    return is_virtual(c) ? vcells_[c - base_cells_].level : fg_->level[c];
  }
  NetId output(CellId c) const {
    return is_virtual(c) ? base_nets_ + (c - base_cells_) : nl_->cell(c).output;
  }
  InSpan inputs(CellId c) const {
    if (is_virtual(c)) {
      const std::vector<NetId>& v = vcells_[c - base_cells_].inputs;
      return {v.data(), v.size()};
    }
    // Most visits plan zero clones, so the overlay maps are usually
    // empty: skip the hash lookup on that hot path.
    if (!inputs_ov_.empty()) {
      const auto it = inputs_ov_.find(c);
      if (it != inputs_ov_.end()) return {it->second.data(), it->second.size()};
    }
    return {fg_->input_net.data() + fg_->input_off[c],
            static_cast<std::size_t>(fg_->input_off[c + 1] -
                                     fg_->input_off[c])};
  }
  const std::vector<Pin>& sinks(NetId n) const {
    // Virtual nets always own an entry, so the fallback is real-only.
    if (!sinks_ov_.empty()) {
      const auto it = sinks_ov_.find(n);
      if (it != sinks_ov_.end()) return it->second;
    }
    return nl_->net(n).sinks;
  }
  CellId driver(NetId n) const {
    return n >= base_nets_ ? base_cells_ + (n - base_nets_) : fg_->driver[n];
  }

  /// The virtual counterpart of the commit's add_net + add_cell +
  /// rewire_input sequence. Returns the virtual clone id.
  CellId clone_and_rewire(CellId orig, CellId sink_cell, int sink_pin) {
    VCell vc;
    vc.kind = kind(orig);
    vc.level = level(orig);
    const InSpan in = inputs(orig);  // snapshot of the *current* inputs
    vc.inputs.assign(in.begin(), in.end());
    const CellId cc = base_cells_ + static_cast<CellId>(vcells_.size());
    const NetId nn = base_nets_ + static_cast<NetId>(vcells_.size());
    // add_cell: the clone becomes a sink of each of its input nets, in
    // pin order.
    for (std::size_t pin = 0; pin < vc.inputs.size(); ++pin)
      mutable_sinks(vc.inputs[pin]).push_back(
          Pin{cc, static_cast<int>(pin)});
    sinks_ov_.emplace(nn, std::vector<Pin>{});
    vcells_.push_back(std::move(vc));
    // rewire_input: order-preserving erase from the old net, append to
    // the clone's net.
    std::vector<NetId>& si = mutable_inputs(sink_cell);
    const NetId old_net = si[static_cast<std::size_t>(sink_pin)];
    std::vector<Pin>& old_sinks = mutable_sinks(old_net);
    const Pin target{sink_cell, sink_pin};
    for (std::size_t i = 0; i < old_sinks.size(); ++i) {
      if (old_sinks[i] == target) {
        old_sinks.erase(old_sinks.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    mutable_sinks(nn).push_back(target);
    si[static_cast<std::size_t>(sink_pin)] = nn;
    return cc;
  }

 private:
  struct VCell {
    CellKind kind{};
    int level = 0;
    std::vector<NetId> inputs;
  };

  std::vector<Pin>& mutable_sinks(NetId n) {
    auto it = sinks_ov_.find(n);
    if (it == sinks_ov_.end())
      it = sinks_ov_.emplace(n, nl_->net(n).sinks).first;
    return it->second;
  }
  std::vector<NetId>& mutable_inputs(CellId c) {
    if (is_virtual(c)) return vcells_[c - base_cells_].inputs;
    auto it = inputs_ov_.find(c);
    if (it == inputs_ov_.end())
      it = inputs_ov_.emplace(c, nl_->cell(c).inputs).first;
    return it->second;
  }

  const Netlist* nl_;
  const FlatGraph* fg_;
  CellId base_cells_;
  NetId base_nets_;
  std::vector<VCell> vcells_;
  std::unordered_map<NetId, std::vector<Pin>> sinks_ov_;
  std::unordered_map<CellId, std::vector<NetId>> inputs_ov_;
};

/// Per-worker epoch-stamped cone-membership scratch: one stamp array per
/// rail slot, reused across every channel visit of the worker. A cell is
/// in rail r's cone iff its stamp equals the visit epoch — clearing is a
/// single epoch bump instead of a num_cells memset per rail.
class Marks {
 public:
  void begin_visit(std::size_t rails, std::size_t capacity) {
    ++epoch_;
    if (stamps_.size() < rails) stamps_.resize(rails);
    for (std::size_t r = 0; r < rails; ++r)
      if (stamps_[r].size() < capacity) stamps_[r].resize(capacity, 0);
  }
  bool in_cone(std::size_t r, CellId c) const {
    return stamps_[r][c] == epoch_;
  }
  void set(std::size_t r, CellId c) { stamps_[r][c] = epoch_; }
  void clear(std::size_t r, CellId c) { stamps_[r][c] = 0; }

 private:
  std::vector<std::vector<std::uint32_t>> stamps_;
  std::uint32_t epoch_ = 0;
};

struct RailCone {
  /// Cone cells in ascending id order (candidate iteration order). May
  /// retain evicted cells — consumers re-check membership — and clones
  /// are appended (their ids are the largest, so order is preserved).
  std::vector<CellId> members;
  Hist hist;  ///< real gates only
  /// Clone-site candidates by (level, kind), each list ascending by id.
  /// Built lazily on the first find_site against this rail: the common
  /// visit (already balanced, or skipped before site search) never pays
  /// for it.
  std::map<Key, std::vector<CellId>> buckets;
  bool buckets_built = false;
  std::size_t input_cells = 0;
  bool driven = false;
};

struct CloneSite {
  CellId cell = kNoCell;
  CellId sink_cell = kNoCell;
  int sink_pin = 0;
};

/// Plans one channel against a (frozen or live) netlist. Stateless
/// between plan() calls except for reused scratch buffers, so one
/// planner per worker suffices.
class ChannelPlanner {
 public:
  ChannelPlanner(const Netlist& nl, const FlatGraph& fg,
                 const ConeBalanceOptions& opt)
      : nl_(nl), fg_(fg), opt_(opt) {}

  /// `budget` = clones this channel may still receive (max minus already
  /// committed). The plan is exactly what the serial pass's
  /// balance_channel visit would do from the current netlist state.
  ChannelPlan plan(ChannelId id, std::size_t budget, Marks& marks) {
    ChannelPlan out;
    out.base_cells = nl_.num_cells();
    const Channel& ch = nl_.channel(id);
    if (ch.rails.size() < 2) return out;
    out.visited = true;

    Overlay ov(nl_, fg_);
    marks.begin_visit(ch.rails.size(), nl_.num_cells() + budget + 1);

    std::vector<RailCone> cones(ch.rails.size());
    for (std::size_t r = 0; r < ch.rails.size(); ++r)
      compute_cone(ov, r, ch.rails[r], marks, cones[r]);

    const auto finish = [&] {
      collect_footprint(cones, out);
      return out;
    };

    for (const RailCone& rc : cones) {
      if (!rc.driven) return skip(out, ch, "undriven rail"), finish();
    }
    // Cloning adds gates, never primary inputs: rails with differing
    // input support cannot be balanced by this pass.
    for (std::size_t r = 1; r < cones.size(); ++r) {
      if (cones[r].input_cells != cones[0].input_cells)
        return skip(out, ch, "primary-input support differs between rails"),
               finish();
    }

    for (;;) {
      // Per-(level, kind) target = max over rails; first deficit in
      // (rail, level, kind) order is the next hole to fill.
      Hist target;
      for (const RailCone& rc : cones)
        for (const auto& [key, n] : rc.hist)
          target[key] = std::max(target[key], n);
      std::size_t rail = cones.size();
      Key key{};
      for (std::size_t r = 0; r < cones.size() && rail == cones.size(); ++r) {
        for (const auto& [k, want] : target) {
          if (hist_count(cones[r].hist, k) < want) {
            rail = r;
            key = k;
            break;
          }
        }
      }
      if (rail == cones.size()) {
        // Histograms uniform (and with matching input support, cone
        // sizes follow). Signature equality is the verifier's concern.
        out.clear_note = true;
        return finish();
      }

      if (out.clones.size() >= budget) {
        skip(out, ch, "clone budget exhausted");
        return finish();
      }
      const CloneSite site = find_site(ov, marks, cones, ch, rail, key);
      if (site.cell == kNoCell) {
        std::ostringstream os;
        os << "no clone site for kind "
           << netlist::name(static_cast<CellKind>(key.second)) << " at level "
           << key.first << " on rail " << rail;
        skip(out, ch, os.str());
        return finish();
      }
      apply_virtual(ov, marks, cones, ch, site, key);
      out.clones.push_back({site.cell, site.sink_cell, site.sink_pin});
      out.changed = true;
    }
  }

 private:
  void skip(ChannelPlan& out, const Channel& ch, const std::string& why) {
    std::ostringstream os;
    os << "channel '" << ch.name << "': " << why;
    out.set_note = true;
    out.note = os.str();
  }

  /// Mirror of Graph::fanin_cone over the overlay view: walk driver
  /// edges, never ascending in level (feedback cut).
  void compute_cone(const Overlay& ov, std::size_t r, NetId rail,
                    Marks& marks, RailCone& rc) {
    const CellId root = ov.driver(rail);
    if (root == kNoCell) return;
    rc.driven = true;
    stack_.clear();
    stack_.push_back(root);
    marks.set(r, root);
    while (!stack_.empty()) {
      const CellId c = stack_.back();
      stack_.pop_back();
      rc.members.push_back(c);
      const CellKind k = ov.kind(c);
      if (k == CellKind::Input) {
        ++rc.input_cells;
      } else if (!netlist::is_pseudo(k)) {
        ++rc.hist[{ov.level(c), static_cast<int>(k)}];
      }
      for (NetId in : ov.inputs(c)) {
        const CellId p = ov.driver(in);
        if (p != kNoCell && !marks.in_cone(r, p) && ov.level(p) <= ov.level(c)) {
          marks.set(r, p);
          stack_.push_back(p);
        }
      }
    }
    // members stays in traversal order — only the site-candidate buckets
    // need ascending ids, and they sort their (much smaller) lists when
    // lazily built.
  }

  static void ensure_buckets(const Overlay& ov, RailCone& rc) {
    if (rc.buckets_built) return;
    rc.buckets_built = true;
    for (CellId c : rc.members) {
      const CellKind k = ov.kind(c);
      if (k == CellKind::Input || netlist::is_pseudo(k)) continue;
      rc.buckets[{ov.level(c), static_cast<int>(k)}].push_back(c);
    }
    // Ascending id = the serial pass's candidate scan order. Clones
    // appended after this keep it: their ids only grow.
    for (auto& [key, list] : rc.buckets) {
      (void)key;
      std::sort(list.begin(), list.end());
    }
  }

  void collect_footprint(const std::vector<RailCone>& cones,
                         ChannelPlan& out) {
    // Plain concatenation of the real (non-virtual) cone members; the
    // footprint is only ever membership-tested against a dirty mask, so
    // cross-rail duplicates are harmless and not worth deduplicating.
    for (const RailCone& rc : cones)
      for (CellId c : rc.members)
        if (c < static_cast<CellId>(out.base_cells))
          out.footprint.push_back(c);
  }

  /// A valid site duplicates a shared cell of the wanted (level, kind)
  /// inside rail `r`'s cone and steals one of its forward in-cone sinks.
  /// Per rail cone containing the stolen sink, the clone joins it and
  /// the original either stays (another edge keeps it reachable — the
  /// cone gains one distinct cell, so it must be below target) or is
  /// replaced by the clone (count unchanged — always safe). The target
  /// rail `r` must be in the former class, or there is no progress.
  CloneSite find_site(const Overlay& ov, const Marks& marks,
                      std::vector<RailCone>& cones, const Channel& ch,
                      std::size_t r, const Key& key) const {
    ensure_buckets(ov, cones[r]);
    const auto bit = cones[r].buckets.find(key);
    if (bit == cones[r].buckets.end()) return {};
    for (CellId c : bit->second) {
      if (!marks.in_cone(r, c)) continue;  // evicted since discovery
      if (ov.output(c) == kNoNet) continue;
      for (const Pin& pin : ov.sinks(ov.output(c))) {
        if (netlist::is_pseudo(ov.kind(pin.cell))) continue;
        // The cone traversal descends an edge iff level[driver] <=
        // level[sink] (Graph::fanin_cone's cycle cut). Only such edges
        // let the sink adopt the clone — level[clone] == level[c] —
        // into a cone; the rule here must mirror the traversal exactly
        // or the incremental cone bookkeeping drifts.
        if (ov.level(pin.cell) < ov.level(c)) continue;
        if (!marks.in_cone(r, pin.cell)) continue;
        if (site_ok(ov, marks, cones, ch, c, pin, key, r))
          return {c, pin.cell, pin.pin};
      }
    }
    return {};
  }

  /// Does cell `c` keep a path into the cone after losing the `moved`
  /// edge — i.e. does it drive the rail itself or feed another forward
  /// in-cone sink?
  bool stays_in_cone(const Overlay& ov, const Marks& marks, std::size_t r,
                     NetId rail, CellId c, const Pin& moved) const {
    if (ov.output(c) == rail) return true;
    for (const Pin& other : ov.sinks(ov.output(c))) {
      if (other == moved) continue;
      if (netlist::is_pseudo(ov.kind(other.cell))) continue;
      // Same inclusive rule as the cone traversal (level[c] <=
      // level[sink] edges are descended): see find_site.
      if (ov.level(other.cell) < ov.level(c)) continue;
      if (marks.in_cone(r, other.cell)) return true;
    }
    return false;
  }

  bool site_ok(const Overlay& ov, const Marks& marks,
               const std::vector<RailCone>& cones, const Channel& ch, CellId c,
               const Pin& moved, const Key& key, std::size_t target_rail) const {
    for (std::size_t r2 = 0; r2 < cones.size(); ++r2) {
      if (!marks.in_cone(r2, moved.cell)) {
        if (r2 == target_rail) return false;  // unreachable; defensive
        continue;
      }
      const bool stays =
          stays_in_cone(ov, marks, r2, ch.rails[r2], c, moved);
      if (r2 == target_rail) {
        // Progress requires the original to remain: the cone must end up
        // with both the original and the clone.
        if (!stays) return false;
        continue;
      }
      if (!stays) continue;  // clone replaces original: count unchanged
      // Cone gains a distinct cell at (level, kind): only allowed while
      // it is below the shared target, or the overshoot would ratchet
      // the target upward on the next iteration.
      const std::size_t have = hist_count(cones[r2].hist, key);
      std::size_t want = 0;
      for (const RailCone& other : cones)
        want = std::max(want, hist_count(other.hist, key));
      if (have >= want) return false;
    }
    return true;
  }

  void apply_virtual(Overlay& ov, Marks& marks, std::vector<RailCone>& cones,
                     const Channel& ch, const CloneSite& site, const Key& key) {
    const Pin moved{site.sink_cell, site.sink_pin};
    // Membership deltas are decided against the pre-rewire state: the
    // clone joins every cone containing the stolen sink, and the
    // original leaves those where the stolen edge was its only forward
    // path (its ancestors stay reachable through the clone, which
    // shares its inputs).
    joins_.assign(cones.size(), 0);
    evicts_.assign(cones.size(), 0);
    for (std::size_t r = 0; r < cones.size(); ++r) {
      if (!marks.in_cone(r, site.sink_cell)) continue;
      joins_[r] = 1;
      evicts_[r] =
          !stays_in_cone(ov, marks, r, ch.rails[r], site.cell, moved);
    }

    const CellId cc =
        ov.clone_and_rewire(site.cell, site.sink_cell, site.sink_pin);

    for (std::size_t r = 0; r < cones.size(); ++r) {
      if (!joins_[r]) continue;
      marks.set(r, cc);
      cones[r].members.push_back(cc);  // largest id: order preserved
      // An unbuilt bucket set picks the clone up from members when (if
      // ever) this rail's first find_site builds it.
      if (cones[r].buckets_built) cones[r].buckets[key].push_back(cc);
      ++cones[r].hist[key];
      if (evicts_[r]) {
        marks.clear(r, site.cell);  // members/bucket entries go stale
        --cones[r].hist[key];
      }
    }
  }

  const Netlist& nl_;
  const FlatGraph& fg_;
  const ConeBalanceOptions& opt_;
  std::vector<CellId> stack_;
  std::vector<char> joins_, evicts_;
};

class Balancer {
 public:
  Balancer(Netlist& nl, const ConeBalanceOptions& opt, unsigned threads,
           PassReport& rep)
      : nl_(nl), opt_(opt), threads_(threads), rep_(rep) {}

  void run() {
    footprints_.resize(nl_.num_channels());
    // Round 1 visits everything; later rounds only what earlier commits
    // could have re-broken.
    std::vector<ChannelId> worklist(nl_.num_channels());
    for (ChannelId id = 0; id < nl_.num_channels(); ++id) worklist[id] = id;

    const bool trace = std::getenv("QDI_CB_TRACE") != nullptr;
    for (int round = 0; round < opt_.max_rounds && !worklist.empty();
         ++round) {
      const auto tr0 = std::chrono::steady_clock::now();
      refresh_graph();
      dirty_.assign(nl_.num_cells(), 0);
      bool changed = false;

      if (threads_ <= 1) {
        // Serial: plan against the live netlist and commit immediately —
        // the reference order every parallel run must reproduce.
        ChannelPlanner planner(nl_, flat_, opt_);
        Marks marks;
        for (ChannelId id : worklist) {
          ChannelPlan plan = planner.plan(id, budget_of(id), marks);
          changed |= commit(id, plan);
        }
      } else {
        // PLAN: fan out over the frozen netlist; plans land in
        // worklist-indexed slots, so the outcome is independent of the
        // slab partition.
        std::vector<ChannelPlan> plans(worklist.size());
        std::vector<Marks> marks(threads_);
        util::parallel_for_slabs(
            threads_, worklist.size(),
            [&](unsigned w, std::size_t begin, std::size_t end) {
              ChannelPlanner planner(nl_, flat_, opt_);
              for (std::size_t i = begin; i < end; ++i)
                plans[i] = planner.plan(worklist[i], budget_of(worklist[i]),
                                        marks[w]);
            });
        // COMMIT: serial, ascending channel id. A stale plan (footprint
        // touched by an earlier commit this round) is re-planned here,
        // at its serial position, against the live netlist.
        ChannelPlanner replanner(nl_, flat_, opt_);
        for (std::size_t i = 0; i < worklist.size(); ++i) {
          const ChannelId id = worklist[i];
          if (intersects_dirty(plans[i].footprint))
            plans[i] = replanner.plan(id, budget_of(id), marks[0]);
          changed |= commit(id, plans[i]);
        }
      }

      if (trace) {
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - tr0)
                                .count();
        std::fprintf(stderr, "cone-balance round=%d worklist=%zu clones=%zu %.2fs\n",
                     round, worklist.size(), rep_.cells_added, secs);
      }
      if (!changed) break;
      worklist = next_worklist();
    }

    for (const auto& [id, note] : skip_notes_) {
      (void)id;
      ++rep_.channels_skipped;
      rep_.notes.push_back(note);
    }
    // Touched = received at least one clone, whether or not it reached
    // balance; a channel can be both touched and skipped (e.g. clone
    // budget exhausted mid-way, or re-broken by a sibling's clones).
    for (const auto& [id, clones] : clones_of_) {
      (void)id;
      if (clones > 0) ++rep_.channels_touched;
    }
  }

 private:
  void refresh_graph() {
    const netlist::Graph g(nl_);
    flat_.build(nl_, g);
  }

  std::size_t budget_of(ChannelId id) const {
    const auto it = clones_of_.find(id);
    const std::size_t done = it == clones_of_.end() ? 0 : it->second;
    return done >= opt_.max_clones_per_channel
               ? 0
               : opt_.max_clones_per_channel - done;
  }

  bool intersects_dirty(const std::vector<CellId>& footprint) const {
    for (CellId c : footprint)
      if (c < dirty_.size() && dirty_[c]) return true;
    return false;
  }

  void mark_dirty(CellId c) {
    if (c >= dirty_.size()) dirty_.resize(nl_.num_cells(), 0);
    dirty_[c] = 1;
  }

  /// Apply one channel's plan to the live netlist: resolve virtual ids
  /// in creation order and replay add_net/add_cell/rewire_input exactly
  /// as the serial pass would.
  bool commit(ChannelId id, const ChannelPlan& plan) {
    if (!plan.visited) return false;
    if (plan.clear_note) skip_notes_.erase(id);
    if (plan.set_note) skip_notes_[id] = plan.note;

    created_.clear();
    const auto resolve = [&](CellId c) {
      return c >= static_cast<CellId>(plan.base_cells)
                 ? created_[c - static_cast<CellId>(plan.base_cells)]
                 : c;
    };
    for (const PlannedClone& pc : plan.clones) {
      const CellId orig = resolve(pc.orig);
      const CellId sink = resolve(pc.sink_cell);
      const Cell original = nl_.cell(orig);
      std::ostringstream os;
      os << original.name << "$bal" << clone_counter_++;
      const std::string cname = os.str();
      const NetId nn = nl_.add_net(cname + "$o");
      const CellId cc =
          nl_.add_cell(original.kind, cname, original.inputs, nn,
                       original.hier);
      nl_.cell(cc).delay_jitter_ps = original.delay_jitter_ps;
      nl_.rewire_input(sink, pc.sink_pin, nn);
      flat_.append_clone(cc, original.inputs, flat_.level[orig],
                         original.kind, nn, sink, pc.sink_pin);
      ++rep_.cells_added;
      ++rep_.nets_added;
      created_.push_back(cc);
      // Only the rewired sink invalidates other channels' state: a
      // channel's cone (and hence hist, sites, notes) can change only if
      // it contains `sink` — `orig` in a cone without `sink` leaves every
      // read unchanged (the clone and the moved pin are invisible behind
      // the planner's in-cone gates), and `sink` in a cone forces `orig`
      // into it too (the traversal descends the very edge being moved).
      mark_dirty(sink);
    }
    if (!plan.clones.empty()) clones_of_[id] += plan.clones.size();

    // The stored footprint feeds the next round's worklist: the plan's
    // read set plus the cells this commit created.
    std::vector<CellId>& fp = footprints_[id];
    fp = plan.footprint;
    fp.insert(fp.end(), created_.begin(), created_.end());
    return plan.changed;
  }

  std::vector<ChannelId> next_worklist() const {
    std::vector<ChannelId> out;
    for (ChannelId id = 0; id < nl_.num_channels(); ++id)
      if (intersects_dirty(footprints_[id])) out.push_back(id);
    return out;
  }

  Netlist& nl_;
  const ConeBalanceOptions& opt_;
  unsigned threads_;
  PassReport& rep_;
  FlatGraph flat_;
  std::vector<char> dirty_;
  std::vector<std::vector<CellId>> footprints_;
  std::vector<CellId> created_;
  std::map<ChannelId, std::string> skip_notes_;
  std::map<ChannelId, std::size_t> clones_of_;
  std::size_t clone_counter_ = 0;
};

}  // namespace

PassReport ConeBalancePass::run(netlist::Netlist& nl) const {
  PassReport rep;
  rep.pass = name();
  const unsigned threads =
      opt_.threads == 0 ? util::hardware_threads() : opt_.threads;
  if (opt_.verify)
    rep.metric_before = static_cast<double>(
        netlist::count_asymmetric_channels(netlist::Graph(nl), threads));

  Balancer balancer(nl, opt_, threads, rep);
  balancer.run();
  rep.changed = rep.cells_added > 0;

  if (opt_.verify) {
    rep.metric_after = static_cast<double>(
        netlist::count_asymmetric_channels(netlist::Graph(nl), threads));
    rep.verified = true;
  }
  return rep;
}

}  // namespace qdi::xform
