#include <algorithm>

#include "qdi/xform/passes.hpp"

namespace qdi::xform {

namespace {

/// Worst pairwise dissymmetry of one channel under the current caps.
double channel_da(const netlist::Netlist& nl, const netlist::Channel& ch) {
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (netlist::NetId r : ch.rails) {
    const double c = nl.net(r).cap_ff;
    if (first) {
      lo = hi = c;
      first = false;
    } else {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  }
  if (lo <= 0.0) return 0.0;
  return (hi - lo) / lo;
}

double max_da(const netlist::Netlist& nl) {
  double worst = 0.0;
  for (const netlist::Channel& ch : nl.channels())
    worst = std::max(worst, channel_da(nl, ch));
  return worst;
}

}  // namespace

PassReport CapEqualizePass::run(netlist::Netlist& nl) const {
  PassReport rep;
  rep.pass = name();
  rep.metric_before = max_da(nl);

  // Channels may share rails (the S-Box merge trees register the same
  // nets in layer group channels and in the final output channel), so
  // padding one channel can raise another's max retroactively. Sweep to
  // a fixpoint: caps only ever increase toward the overlap component's
  // dominant rail, so the loop terminates within the component diameter.
  std::vector<char> touched(nl.num_channels(), 0);
  for (bool again = true; again;) {
    again = false;
    for (netlist::ChannelId id = 0; id < nl.num_channels(); ++id) {
      const netlist::Channel& ch = nl.channel(id);
      double cap_max = 0.0;
      for (netlist::NetId r : ch.rails)
        cap_max = std::max(cap_max, nl.net(r).cap_ff);
      // Padding every rail up to C_max / (1 + tol) bounds each pairwise
      // dA = (C_max − C_min') / C_min' by tol.
      const double floor_cap = cap_max / (1.0 + opt_.tolerance_da);
      for (netlist::NetId r : ch.rails) {
        netlist::Net& net = nl.net(r);
        if (net.cap_ff < floor_cap) {
          rep.cap_added_ff += floor_cap - net.cap_ff;
          net.cap_ff = floor_cap;
          touched[id] = 1;
          again = true;
        }
      }
    }
  }
  for (char t : touched)
    if (t) ++rep.channels_touched;

  rep.metric_after = max_da(nl);
  rep.changed = rep.channels_touched > 0;
  return rep;
}

}  // namespace qdi::xform
