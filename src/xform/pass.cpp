#include "qdi/xform/pass.hpp"

#include <chrono>

#include "qdi/xform/passes.hpp"

namespace qdi::xform {

bool PipelineReport::changed() const noexcept {
  for (const PassReport& p : passes)
    if (p.changed) return true;
  return false;
}

std::size_t PipelineReport::cells_added() const noexcept {
  std::size_t n = 0;
  for (const PassReport& p : passes) n += p.cells_added;
  return n;
}

std::size_t PipelineReport::nets_added() const noexcept {
  std::size_t n = 0;
  for (const PassReport& p : passes) n += p.nets_added;
  return n;
}

double PipelineReport::cap_added_ff() const noexcept {
  double c = 0.0;
  for (const PassReport& p : passes) c += p.cap_added_ff;
  return c;
}

const PassReport* PipelineReport::find(std::string_view pass_name) const noexcept {
  for (const PassReport& p : passes)
    if (p.pass == pass_name) return &p;
  return nullptr;
}

util::Table PipelineReport::table() const {
  util::Table t({"pass", "changed", "cells+", "nets+", "cap+fF", "touched",
                 "skipped", "metric before", "metric after", "wall ms"});
  for (const PassReport& p : passes) {
    t.add_row({p.pass, p.changed ? "yes" : "no", std::to_string(p.cells_added),
               std::to_string(p.nets_added), t.format_double(p.cap_added_ff),
               std::to_string(p.channels_touched),
               std::to_string(p.channels_skipped),
               t.format_double(p.metric_before),
               t.format_double(p.metric_after), t.format_double(p.wall_ms)});
  }
  return t;
}

Pipeline& Pipeline::add(std::shared_ptr<const Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

PipelineReport Pipeline::run(netlist::Netlist& nl) const {
  PipelineReport rep;
  rep.passes.reserve(passes_.size());
  for (const auto& pass : passes_) {
    const auto t0 = std::chrono::steady_clock::now();
    rep.passes.push_back(pass->run(nl));
    const auto t1 = std::chrono::steady_clock::now();
    rep.passes.back().structure_preserving = pass->preserves_structure();
    rep.passes.back().wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
  }
  return rep;
}

Recipe unprotected() { return Recipe{"unprotected", Pipeline{}}; }

Recipe balanced(ConeBalanceOptions cone, CapEqualizeOptions cap) {
  Pipeline p;
  p.emplace<ConeBalancePass>(cone).emplace<CapEqualizePass>(cap);
  return Recipe{"balanced", std::move(p)};
}

Recipe hardened(ConeBalanceOptions cone, CapEqualizeOptions cap,
                RandomDelayOptions delay) {
  Pipeline p;
  p.emplace<ConeBalancePass>(cone)
      .emplace<CapEqualizePass>(cap)
      .emplace<RandomDelayPass>(delay);
  return Recipe{"hardened", std::move(p)};
}

Recipe jittered(RandomDelayOptions delay) {
  Pipeline p;
  p.emplace<RandomDelayPass>(delay);
  return Recipe{"jittered", std::move(p)};
}

}  // namespace qdi::xform
