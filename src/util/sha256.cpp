#include "qdi/util/sha256.hpp"

#include <cstring>

#include "qdi/util/cpu.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QDI_SHA256_X86 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace qdi::util {

namespace {

constexpr std::uint32_t kInit[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

constexpr std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return (x >> n) | (x << (32 - n));
}

#ifdef QDI_SHA256_X86

// Two SHA-NI rounds per sha256rnds2; the message schedule advances four
// words at a time through msg1/msg2. The lane layout (ABEF/CDGH state
// pairs, byte-swapped message loads) follows the instruction set's
// native ordering, so the packing shuffles at entry/exit are the whole
// interface to the portable chaining state.
__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani(
    std::array<std::uint32_t, 8>& h, const std::uint8_t* p,
    std::size_t n) noexcept {
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bll, 0x0405060700010203ll);
  const auto k = [](std::uint64_t hi2, std::uint64_t lo2) {
    return _mm_set_epi64x(static_cast<long long>(hi2),
                          static_cast<long long>(lo2));
  };

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);     // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);          // CDGH

  while (n-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msg0, msg1, msg2, msg3;

    // Rounds 0-3
    msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0)), kByteSwap);
    msg = _mm_add_epi32(msg0, k(0xE9B5DBA5B5C0FBCFull, 0x71374491428A2F98ull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7
    msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)), kByteSwap);
    msg = _mm_add_epi32(msg1, k(0xAB1C5ED5923F82A4ull, 0x59F111F13956C25Bull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)), kByteSwap);
    msg = _mm_add_epi32(msg2, k(0x550C7DC3243185BEull, 0x12835B01D807AA98ull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15
    msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)), kByteSwap);
    msg = _mm_add_epi32(msg3, k(0xC19BF1749BDC06A7ull, 0x80DEB1FE72BE5D74ull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19
    msg = _mm_add_epi32(msg0, k(0x240CA1CC0FC19DC6ull, 0xEFBE4786E49B69C1ull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23
    msg = _mm_add_epi32(msg1, k(0x76F988DA5CB0A9DCull, 0x4A7484AA2DE92C6Full));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27
    msg = _mm_add_epi32(msg2, k(0xBF597FC7B00327C8ull, 0xA831C66D983E5152ull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31
    msg = _mm_add_epi32(msg3, k(0x1429296706CA6351ull, 0xD5A79147C6E00BF3ull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35
    msg = _mm_add_epi32(msg0, k(0x53380D134D2C6DFCull, 0x2E1B213827B70A85ull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39
    msg = _mm_add_epi32(msg1, k(0x92722C8581C2C92Eull, 0x766A0ABB650A7354ull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43
    msg = _mm_add_epi32(msg2, k(0xC76C51A3C24B8B70ull, 0xA81A664BA2BFE8A1ull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47
    msg = _mm_add_epi32(msg3, k(0x106AA070F40E3585ull, 0xD6990624D192E819ull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51
    msg = _mm_add_epi32(msg0, k(0x34B0BCB52748774Cull, 0x1E376C0819A4C116ull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55 (message schedule exhausted after w[63])
    msg = _mm_add_epi32(msg1, k(0x682E6FF35B9CCA4Full, 0x4ED8AA4A391C0CB3ull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59
    msg = _mm_add_epi32(msg2, k(0x8CC7020884C87814ull, 0x78A5636F748F82EEull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63
    msg = _mm_add_epi32(msg3, k(0xC67178F2BEF9A3F7ull, 0xA4506CEB90BEFFFAull));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    p += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);          // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);             // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&h[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&h[4]), state1);
}

#endif  // QDI_SHA256_X86

using CompressFn = void (*)(std::array<std::uint32_t, 8>&,
                            const std::uint8_t*, std::size_t);

CompressFn pick_compress() noexcept {
#ifdef QDI_SHA256_X86
  const CpuFeatures& f = cpu_features();
  if (!force_portable() && f.sha_ni && f.ssse3 && f.sse41)
    return &compress_shani;
#endif
  return &detail::sha256_compress_portable;
}

const CompressFn kCompress = pick_compress();

}  // namespace

namespace detail {

void sha256_compress_portable(std::array<std::uint32_t, 8>& hs,
                              const std::uint8_t* block,
                              std::size_t n) noexcept {
  for (; n > 0; --n, block += 64) {
    std::uint32_t w[64];
    for (int t = 0; t < 16; ++t)
      w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
             (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
             (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
             static_cast<std::uint32_t>(block[4 * t + 3]);
    for (int t = 16; t < 64; ++t) {
      const std::uint32_t s0 =
          rotr(w[t - 15], 7) ^ rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[t - 2], 17) ^ rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
      w[t] = w[t - 16] + s0 + w[t - 7] + s1;
    }
    std::uint32_t a = hs[0], b = hs[1], c = hs[2], d = hs[3], e = hs[4],
                  f = hs[5], g = hs[6], h = hs[7];
    for (int t = 0; t < 64; ++t) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kRound[t] + w[t];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    hs[0] += a;
    hs[1] += b;
    hs[2] += c;
    hs[3] += d;
    hs[4] += e;
    hs[5] += f;
    hs[6] += g;
    hs[7] += h;
  }
}

void sha256_compress_best(std::array<std::uint32_t, 8>& h,
                          const std::uint8_t* blocks, std::size_t n) noexcept {
  kCompress(h, blocks, n);
}

}  // namespace detail

bool sha256_hw_accelerated() noexcept {
  return kCompress != &detail::sha256_compress_portable;
}

Sha256::Sha256() noexcept {
  for (int i = 0; i < 8; ++i) state_.h[static_cast<std::size_t>(i)] = kInit[i];
}

void Sha256::update(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t fill = state_.buffered();
  state_.total_bytes += len;
  if (fill > 0) {
    const std::size_t take = std::min(len, 64 - fill);
    std::memcpy(state_.buf.data() + fill, p, take);
    p += take;
    len -= take;
    fill += take;
    if (fill < 64) return;
    kCompress(state_.h, state_.buf.data(), 1);
  }
  if (len >= 64) {
    const std::size_t blocks = len / 64;
    kCompress(state_.h, p, blocks);
    p += blocks * 64;
    len -= blocks * 64;
  }
  if (len > 0) std::memcpy(state_.buf.data(), p, len);
}

void Sha256::update_u64(std::uint64_t v) noexcept {
  std::uint8_t le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<std::uint8_t>(v >> (8 * i));
  update(le, 8);
}

std::array<std::uint8_t, 32> Sha256::digest() const noexcept {
  // Pad a copy: 0x80, zeros to 56 mod 64, then the bit length big-endian.
  Sha256 tmp(*this);
  const std::uint64_t bits = state_.total_bytes * 8;
  std::uint8_t pad[72] = {0x80};
  const std::size_t fill = state_.buffered();
  const std::size_t pad_len = (fill < 56 ? 56 - fill : 120 - fill);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i)
    len_be[i] = static_cast<std::uint8_t>(bits >> (8 * (7 - i)));
  tmp.update(pad, pad_len);
  tmp.update(len_be, 8);
  std::array<std::uint8_t, 32> out{};
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t v = tmp.state_.h[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(v >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(v >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(v >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(v);
  }
  return out;
}

std::string Sha256::hex() const {
  const auto d = digest();
  return to_hex(d);
}

std::array<std::uint8_t, 32> Sha256::of(std::span<const std::uint8_t> bytes) {
  Sha256 h;
  h.update(bytes);
  return h.digest();
}

std::string Sha256::hex_of(std::span<const std::uint8_t> bytes) {
  const auto d = of(bytes);
  return to_hex(d);
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

}  // namespace qdi::util
