#include "qdi/util/table.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

namespace qdi::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size() && "Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::format_double(double v) const {
  std::ostringstream os;
  os.precision(precision_);
  os << std::fixed << v;
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < width.size(); ++c)
      os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace qdi::util
