#include "qdi/util/parallel.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace qdi::util {

unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

void parallel_for_slabs(
    unsigned threads, std::size_t n,
    const std::function<void(unsigned worker, std::size_t begin,
                             std::size_t end)>& fn) {
  if (n == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(std::max(threads, 1u), n));
  if (workers == 1) {
    fn(0, 0, n);
    return;
  }

  // Contiguous slabs: worker w gets [w*base + min(w, rem) ...), the first
  // `rem` slabs one element longer.
  const std::size_t base = n / workers, rem = n % workers;
  auto slab = [&](unsigned w) {
    const std::size_t begin = w * base + std::min<std::size_t>(w, rem);
    return std::pair<std::size_t, std::size_t>(
        begin, begin + base + (w < rem ? 1 : 0));
  };

  std::exception_ptr first_error;
  std::mutex error_mu;
  auto guarded = [&](unsigned w) {
    const auto [begin, end] = slab(w);
    try {
      fn(w, begin, end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(guarded, w);
  guarded(0);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace qdi::util
