// Shared runtime CPU-feature probe for the load-time-dispatched
// kernels (util::Sha256's SHA-NI compressor, dpa::kernels' SSE2/AVX2
// analysis kernels). One cpuid interrogation per process; every
// dispatcher reads the same answers.
//
// Dispatch override: setting QDI_FORCE_PORTABLE (to anything but "0"
// or the empty string) in the environment makes every dispatched
// kernel pick its portable arm regardless of what the CPU supports, so
// both arms of each dispatch are exercisable on any box (the sanitizer
// CI job runs the analysis tests under both settings). The override is
// latched on first use — flipping the variable after process start has
// no effect.
#pragma once

namespace qdi::util {

struct CpuFeatures {
  bool sse2 = false;   ///< baseline on x86-64, probed anyway
  bool ssse3 = false;
  bool sse41 = false;
  bool avx2 = false;   ///< true only if the OS enables YMM state (XGETBV)
  bool sha_ni = false;
};

/// The probed features of this CPU (all-false on non-x86 builds).
/// Probed once, on first call; safe to call during static
/// initialization of other translation units.
const CpuFeatures& cpu_features() noexcept;

/// True when QDI_FORCE_PORTABLE requests portable kernels everywhere.
bool force_portable() noexcept;

}  // namespace qdi::util
