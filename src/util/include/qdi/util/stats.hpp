// Small statistics toolkit used by the power model and the DPA engine:
// streaming mean/variance (Welford), correlation, and the trace-set
// average/difference operations of Messerges' DPA formalization.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qdi::util {

/// Numerically stable streaming accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n).
  double variance() const noexcept { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Sample variance (divide by n-1).
  double sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Element-wise running mean over equal-length vectors ("average power
/// signal" A[j] of eq. 8). Length is fixed by the first added vector.
class VectorMean {
 public:
  void add(std::span<const double> v);
  std::size_t count() const noexcept { return n_; }
  std::size_t size() const noexcept { return sum_.size(); }
  /// A[j] = (1/n) * sum_i S_ij. Empty if nothing was added.
  std::vector<double> mean() const;

 private:
  std::size_t n_ = 0;
  std::vector<double> sum_;
};

double mean(std::span<const double> v) noexcept;
double variance(std::span<const double> v) noexcept;
double stddev(std::span<const double> v) noexcept;

/// Pearson correlation coefficient; returns 0 when either side is constant.
double pearson(std::span<const double> x, std::span<const double> y) noexcept;

/// Welch's t statistic between two samples (used for leakage assessment,
/// a standard side-channel evaluation statistic; 0 if degenerate).
double welch_t(std::span<const double> a, std::span<const double> b) noexcept;

/// Index of the element with the largest absolute value (0 if empty).
std::size_t argmax_abs(std::span<const double> v) noexcept;

/// max_j |v[j]| (0 if empty).
double max_abs(std::span<const double> v) noexcept;

/// Sum of |v[j]| — the "integrated bias" metric reported by the benches.
double sum_abs(std::span<const double> v) noexcept;

/// a[j] - b[j]; sizes must match (asserted).
std::vector<double> subtract(std::span<const double> a, std::span<const double> b);

}  // namespace qdi::util
