// Deterministic, seedable random number generation for reproducible
// experiments. All stochastic components of the library (placement
// annealing, noise injection, plaintext generation) take an explicit
// Rng so that every experiment is replayable from a single seed.
#pragma once

#include <cstdint>
#include <limits>

namespace qdi::util {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Passes BigCrush when used directly; here it is only the seeder.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: fast, high-quality 64-bit generator.
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be
/// used with <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eedbead5eedbeadULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method would need
  /// 128-bit multiply; a rejection loop is simpler and still branch-cheap).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Box-Muller (polar form avoided to stay constexpr-
  /// friendly is not required; this is the classic trig-free ratio variant).
  double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Random boolean with probability p of being true.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Random byte.
  constexpr std::uint8_t byte() noexcept {
    return static_cast<std::uint8_t>(next() & 0xff);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

constexpr std::uint64_t rotl64(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// Deterministic stream split: derives an independent generator from a
/// root seed and a stream index. Used to give every trace of an
/// acquisition campaign its own RNG stream keyed by (campaign seed,
/// trace index), so results are bit-identical however the traces are
/// partitioned across worker threads. The two inputs pass through
/// separate SplitMix64 scramblers before mixing, so neighbouring stream
/// indices produce uncorrelated states.
constexpr Rng split_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
  SplitMix64 a(seed);
  SplitMix64 b(stream ^ 0x63686172676521ULL);
  return Rng(a.next() ^ (b.next() + 0x9e3779b97f4a7c15ULL));
}

/// Domain tag for fault-campaign streams (see the three-argument
/// split_stream below). ASCII "faultdom".
inline constexpr std::uint64_t kFaultDomain = 0x6661756c74646f6dULL;

/// Domain-separated stream split: like the two-argument form, but the
/// `domain` tag guarantees that two subsystems drawing from the same
/// (seed, stream) pair — e.g. power acquisition and fault injection of
/// the same campaign index — see non-overlapping streams. The
/// two-argument form is NOT the same as domain 0: its outputs stay
/// bit-identical to what they were before the domain form existed.
constexpr Rng split_stream(std::uint64_t seed, std::uint64_t stream,
                           std::uint64_t domain) noexcept {
  SplitMix64 a(seed);
  SplitMix64 b(stream ^ 0x63686172676521ULL);
  SplitMix64 c(domain ^ 0x646f6d61696e7321ULL);
  return Rng(a.next() ^ (b.next() + 0x9e3779b97f4a7c15ULL) ^ rotl64(c.next(), 23));
}

}  // namespace qdi::util
