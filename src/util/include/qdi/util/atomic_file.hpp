// Crash-safe file primitives for the checkpoint runtime.
//
// atomic_write_file publishes a byte buffer with the classic
// temp-file + fsync + rename(2) sequence: the data is fully durable in
// a sibling temp file before the atomic rename makes it visible under
// the final name. A process killed at ANY instant therefore leaves the
// destination either untouched (old content, or absent) or fully
// written — never a torn mix. That property is what lets the shard
// checkpoint loader treat a malformed file as corruption to reject
// rather than an expected intermediate state.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace qdi::util {

/// How hard atomic_write_file pushes the bytes toward stable storage.
enum class Durability {
  /// fsync the temp file before the rename and the directory after it:
  /// the published contents survive even a whole-machine crash.
  Fsync,
  /// Skip both fsyncs. The rename is still atomic and the temp file
  /// never aliases `path`, so a killed PROCESS leaves either the old
  /// or the new complete contents — but an OS crash or power loss may
  /// roll the file back to whatever the page cache last wrote out.
  RenameOnly,
};

/// Atomically replace `path` with `bytes`. The temp file lives in the
/// same directory (rename must not cross filesystems) and, under
/// Durability::Fsync, is fsynced before the rename with the directory
/// fsynced after it so the rename itself survives a crash. Throws
/// std::runtime_error naming the failing step on I/O errors (and
/// unlinks the temp file best-effort).
void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes,
                       Durability durability = Durability::Fsync);

/// Whole-file read. Returns nullopt when the file does not exist;
/// throws std::runtime_error on any other I/O failure.
std::optional<std::vector<std::uint8_t>> read_file_if_exists(
    const std::string& path);

}  // namespace qdi::util
