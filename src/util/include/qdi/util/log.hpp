// Tiny leveled logger. Benches and examples use Info; the simulator's
// hazard diagnostics use Warn. Off by default in tests to keep output
// clean; controlled globally, not per-translation-unit, so a bench can
// silence a whole flow with one call.
#pragma once

#include <sstream>
#include <string>

namespace qdi::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line at the given level (thread-unsafe by design: the library
/// is single-threaded per experiment; experiments parallelize by process).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_line(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_line(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_line(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log_line(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace qdi::util
