// Minimal ASCII table / CSV emitters used by the benches to print the
// paper's tables (e.g. Table 2) in a readable, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qdi::util {

/// Column-aligned ASCII table. Rows may be added as pre-formatted strings
/// or via the variadic helper that formats arithmetic values.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the configured precision and
  /// integers/strings verbatim.
  void set_precision(int digits) noexcept { precision_ = digits; }
  int precision() const noexcept { return precision_; }

  std::string format_double(double v) const;

  std::size_t rows() const noexcept { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 4;
};

/// Escape one CSV field (quotes fields containing separators/quotes).
std::string csv_escape(const std::string& field);

}  // namespace qdi::util
