// Incremental SHA-256 (FIPS 180-4) — the integrity primitive of the
// crash-safe campaign runtime.
//
// Two jobs, one implementation:
//   * record integrity: every shard checkpoint ends in the SHA-256 of
//     its payload, so a torn or bit-flipped file is detected instead of
//     silently mis-restored;
//   * stream identity: each shard keeps a running digest of its trace
//     stream (index, plaintext, ciphertext, and a 64-bit fingerprint
//     of the raw samples per trace — see campaign::feed_stream_digest
//     for why the bulky sample vector enters folded). Traces are
//     bit-identical across engines and thread counts, so two runs that
//     produce the same digest replayed the same acquisitions — the
//     verifiable-reproduction scheme of ROADMAP item 2.
//
// The running-digest use case is why the hasher exposes its mid-state
// (`save()`/`restore()`): a checkpoint persists the digest state at the
// committed trace index, and a resumed shard continues hashing exactly
// where the killed one stopped. `digest()` is non-destructive — it pads
// a copy — so the stream digest can be inspected at any commit point
// and still keep accumulating.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace qdi::util {

class Sha256 {
 public:
  /// Exported mid-state: the eight chaining words, the total byte count,
  /// and the buffered partial block (`total_bytes % 64` bytes of `buf`
  /// are meaningful). Plain data so checkpoints can serialize it.
  struct State {
    std::array<std::uint32_t, 8> h{};
    std::uint64_t total_bytes = 0;
    std::array<std::uint8_t, 64> buf{};

    std::size_t buffered() const noexcept {
      return static_cast<std::size_t>(total_bytes % 64);
    }
  };

  Sha256() noexcept;

  void update(const void* data, std::size_t len) noexcept;
  void update(std::span<const std::uint8_t> bytes) noexcept {
    update(bytes.data(), bytes.size());
  }
  /// Convenience for fixed-width fields (little-endian, matching the
  /// checkpoint codec's integer encoding).
  void update_u64(std::uint64_t v) noexcept;

  /// Digest of everything fed so far. Non-destructive: pads a copy of
  /// the state, so updates may continue afterwards.
  std::array<std::uint8_t, 32> digest() const noexcept;
  std::string hex() const;

  State save() const noexcept { return state_; }
  void restore(const State& s) noexcept { state_ = s; }

  static std::array<std::uint8_t, 32> of(std::span<const std::uint8_t> bytes);
  static std::string hex_of(std::span<const std::uint8_t> bytes);

 private:
  State state_;
};

/// True when the hasher runs on the hardware compression path (x86
/// SHA-NI), picked once at load time via util::cpu_features() and
/// disabled by QDI_FORCE_PORTABLE (see qdi/util/cpu.hpp). Both paths
/// produce identical digests — the FIPS vectors pin whichever is
/// active, and the cross-path test pins them against each other on
/// SHA-NI machines.
bool sha256_hw_accelerated() noexcept;

namespace detail {
/// Raw multi-block compressors over a chaining state, exposed so tests
/// can drive the portable and dispatched paths side by side. `blocks`
/// is `n` consecutive 64-byte message blocks; `h` is updated in place.
void sha256_compress_portable(std::array<std::uint32_t, 8>& h,
                              const std::uint8_t* blocks,
                              std::size_t n) noexcept;
/// Whatever update() itself uses: SHA-NI when available, else portable.
void sha256_compress_best(std::array<std::uint32_t, 8>& h,
                          const std::uint8_t* blocks, std::size_t n) noexcept;
}  // namespace detail

/// Lowercase hex rendering of a raw digest.
std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace qdi::util
