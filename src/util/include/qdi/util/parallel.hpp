// Minimal fork/join helper for the deterministic fan-out phases of the
// transformation passes (and any other layer below campaign's persistent
// WorkerPool, which is specialized for TraceSource acquisition and lives
// two layers up the include graph).
//
// Determinism contract: parallel_for_slabs partitions [0, n) into
// `threads` contiguous slabs, so a caller that writes results into a
// preallocated slot per index observes output independent of the thread
// count and of scheduling. With threads <= 1 (or n small) the body runs
// inline on the calling thread — no spawn, byte-identical by
// construction.
#pragma once

#include <cstddef>
#include <functional>

namespace qdi::util {

/// Threads worth spawning on this machine (>= 1).
unsigned hardware_threads() noexcept;

/// Run `fn(worker, begin, end)` over a contiguous partition of [0, n)
/// on min(threads, n) workers. worker 0 runs on the calling thread.
/// The first exception thrown by any worker is rethrown after join.
void parallel_for_slabs(
    unsigned threads, std::size_t n,
    const std::function<void(unsigned worker, std::size_t begin,
                             std::size_t end)>& fn);

}  // namespace qdi::util
