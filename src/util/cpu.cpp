#include "qdi/util/cpu.hpp"

#include <cstdint>
#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QDI_CPU_X86 1
#include <cpuid.h>
#endif

namespace qdi::util {

namespace {

#ifdef QDI_CPU_X86
// XGETBV(0) without -mxsave: only called after the OSXSAVE cpuid bit
// confirmed the instruction is available.
std::uint64_t xgetbv0() noexcept {
  std::uint32_t eax = 0;
  std::uint32_t edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}
#endif

CpuFeatures probe() noexcept {
  CpuFeatures f;
#ifdef QDI_CPU_X86
  unsigned a = 0;
  unsigned b = 0;
  unsigned c = 0;
  unsigned d = 0;
  if (__get_cpuid(1, &a, &b, &c, &d)) {
    f.sse2 = (d & (1u << 26)) != 0;
    f.ssse3 = (c & (1u << 9)) != 0;
    f.sse41 = (c & (1u << 19)) != 0;
    // AVX2 usability needs the CPU flag (leaf 7) AND the OS to have
    // enabled XMM+YMM state saving: OSXSAVE, then XCR0 bits 1|2.
    const bool osxsave = (c & (1u << 27)) != 0;
    const bool avx = (c & (1u << 28)) != 0;
    bool ymm_os = false;
    if (osxsave) ymm_os = (xgetbv0() & 0x6) == 0x6;
    unsigned a7 = 0;
    unsigned b7 = 0;
    unsigned c7 = 0;
    unsigned d7 = 0;
    if (__get_cpuid_count(7, 0, &a7, &b7, &c7, &d7)) {
      f.avx2 = avx && ymm_os && (b7 & (1u << 5)) != 0;
      f.sha_ni = (b7 & (1u << 29)) != 0;
    }
  }
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures f = probe();
  return f;
}

bool force_portable() noexcept {
  static const bool forced = [] {
    const char* e = std::getenv("QDI_FORCE_PORTABLE");
    return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
  }();
  return forced;
}

}  // namespace qdi::util
