#include "qdi/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace qdi::util {

double Rng::gaussian() noexcept {
  // Box-Muller. u1 is kept away from zero so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace qdi::util
