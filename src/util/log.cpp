#include "qdi/util/log.hpp"

#include <cstdio>

namespace qdi::util {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }
LogLevel log_level() noexcept { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace qdi::util
