#include "qdi/util/atomic_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace qdi::util {

namespace {

[[noreturn]] void fail(const std::string& step, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + step + " failed for '" +
                           path + "': " + std::strerror(errno));
}

/// RAII fd so every error path closes.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

void fsync_parent_dir(const std::string& path) {
  // Durability of the rename itself: fsync the containing directory.
  // Best-effort — some filesystems refuse O_RDONLY|O_DIRECTORY fsync;
  // the rename is still atomic without it, only its persistence across
  // a whole-machine crash is weaker.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  Fd d{::open(dir.c_str(), O_RDONLY | O_DIRECTORY)};
  if (d.fd >= 0) ::fsync(d.fd);
}

}  // namespace

void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes,
                       Durability durability) {
  const std::string tmp = path + ".tmp";
  {
    Fd f{::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644)};
    if (f.fd < 0) fail("open(tmp)", tmp);
    const std::uint8_t* p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
      const ::ssize_t n = ::write(f.fd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::unlink(tmp.c_str());
        fail("write", tmp);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    if (durability == Durability::Fsync && ::fsync(f.fd) != 0) {
      ::unlink(tmp.c_str());
      fail("fsync", tmp);
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename", path);
  }
  if (durability == Durability::Fsync) fsync_parent_dir(path);
}

std::optional<std::vector<std::uint8_t>> read_file_if_exists(
    const std::string& path) {
  Fd f{::open(path.c_str(), O_RDONLY)};
  if (f.fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw std::runtime_error("read_file_if_exists: open failed for '" + path +
                             "': " + std::strerror(errno));
  }
  std::vector<std::uint8_t> out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ::ssize_t n = ::read(f.fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("read_file_if_exists: read failed for '" +
                               path + "': " + std::strerror(errno));
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  return out;
}

}  // namespace qdi::util
