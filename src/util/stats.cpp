#include "qdi/util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qdi::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void VectorMean::add(std::span<const double> v) {
  if (sum_.empty()) sum_.assign(v.size(), 0.0);
  assert(v.size() == sum_.size() && "VectorMean: inconsistent trace length");
  for (std::size_t j = 0; j < v.size(); ++j) sum_[j] += v[j];
  ++n_;
}

std::vector<double> VectorMean::mean() const {
  std::vector<double> out(sum_.size(), 0.0);
  if (n_ == 0) return out;
  const double inv = 1.0 / static_cast<double>(n_);
  for (std::size_t j = 0; j < sum_.size(); ++j) out[j] = sum_[j] * inv;
  return out;
}

double mean(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) noexcept { return std::sqrt(variance(v)); }

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  assert(x.size() == y.size());
  if (x.empty()) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double welch_t(std::span<const double> a, std::span<const double> b) noexcept {
  if (a.size() < 2 || b.size() < 2) return 0.0;
  RunningStats sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  const double va = sa.sample_variance() / static_cast<double>(a.size());
  const double vb = sb.sample_variance() / static_cast<double>(b.size());
  const double denom = std::sqrt(va + vb);
  if (denom <= 0.0) return 0.0;
  return (sa.mean() - sb.mean()) / denom;
}

std::size_t argmax_abs(std::span<const double> v) noexcept {
  std::size_t best = 0;
  double best_abs = -1.0;
  for (std::size_t j = 0; j < v.size(); ++j) {
    const double a = std::fabs(v[j]);
    if (a > best_abs) {
      best_abs = a;
      best = j;
    }
  }
  return best;
}

double max_abs(std::span<const double> v) noexcept {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double sum_abs(std::span<const double> v) noexcept {
  double s = 0.0;
  for (double x : v) s += std::fabs(x);
  return s;
}

std::vector<double> subtract(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t j = 0; j < a.size(); ++j) out[j] = a[j] - b[j];
  return out;
}

}  // namespace qdi::util
