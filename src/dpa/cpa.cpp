#include "qdi/dpa/cpa.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"
#include "qdi/dpa/online.hpp"

namespace qdi::dpa {

LeakageModel aes_sbox_hw_model(int byte) {
  return LeakageModel::byte_indexed(byte, [](std::uint8_t p, unsigned guess) {
    const std::uint8_t x = static_cast<std::uint8_t>(p ^ guess);
    return static_cast<double>(
        std::popcount(static_cast<unsigned>(crypto::aes_sbox(x))));
  });
}

LeakageModel aes_xor_hw_model(int byte) {
  return LeakageModel::byte_indexed(byte, [](std::uint8_t p, unsigned guess) {
    const std::uint8_t x = static_cast<std::uint8_t>(p ^ guess);
    return static_cast<double>(std::popcount(static_cast<unsigned>(x)));
  });
}

LeakageModel des_sbox_hw_model(int box) {
  return LeakageModel::byte_indexed(0, [box](std::uint8_t p, unsigned guess) {
    const std::uint8_t x = static_cast<std::uint8_t>((p ^ guess) & 0x3f);
    return static_cast<double>(
        std::popcount(static_cast<unsigned>(crypto::des_sbox(box, x))));
  });
}

std::size_t CpaResult::rank_of(unsigned key) const {
  assert(key < correlation.size());
  const double ref = correlation[key];
  std::size_t rank = 0;
  for (double r : correlation)
    if (r > ref) ++rank;  // strictly greater: ties rank below the reference
  return rank;
}

std::vector<double> cpa_correlation_trace(const TraceSet& ts,
                                          const LeakageModel& model,
                                          unsigned guess, std::size_t prefix) {
  OnlineCpa acc(model.pinned(guess), 1);
  acc.add_prefix(ts, 0, ts.prefix_rows(prefix));
  return acc.correlation_trace(0);
}

CpaResult cpa_attack(const TraceSet& ts, const LeakageModel& model,
                     unsigned num_guesses, std::size_t prefix,
                     std::size_t window_lo, std::size_t window_hi) {
  OnlineCpa acc(model, num_guesses);
  acc.add_prefix(ts, 0, ts.prefix_rows(prefix));
  return acc.finalize(window_lo, window_hi);
}

std::size_t cpa_measurements_to_disclosure(
    const TraceSet& ts, const LeakageModel& model, unsigned num_guesses,
    unsigned correct_key, std::size_t start, std::size_t step,
    std::size_t window_lo, std::size_t window_hi) {
  if (step == 0) return 0;  // degenerate grid, never stably recovered
  // One streaming pass: the running sums advance to each probed prefix
  // and finalize there — never a re-attack from trace zero.
  OnlineCpa acc(model, num_guesses);
  MtdScan scan;
  for (std::size_t n = start; n <= ts.size(); n += step) {
    acc.add_prefix(ts, acc.count(), n);
    const CpaResult r = acc.finalize(window_lo, window_hi);
    scan.probe((r.best_guess == correct_key) && r.best_rho > 0.0, n);
  }
  return scan.value();
}

}  // namespace qdi::dpa
