#include "qdi/dpa/cpa.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"

namespace qdi::dpa {

LeakageModel aes_sbox_hw_model(int byte) {
  return [byte](std::span<const std::uint8_t> pt, unsigned guess) -> double {
    const std::uint8_t x = static_cast<std::uint8_t>(
        pt[static_cast<std::size_t>(byte)] ^ static_cast<std::uint8_t>(guess));
    return static_cast<double>(std::popcount(static_cast<unsigned>(crypto::aes_sbox(x))));
  };
}

LeakageModel aes_xor_hw_model(int byte) {
  return [byte](std::span<const std::uint8_t> pt, unsigned guess) -> double {
    const std::uint8_t x = static_cast<std::uint8_t>(
        pt[static_cast<std::size_t>(byte)] ^ static_cast<std::uint8_t>(guess));
    return static_cast<double>(std::popcount(static_cast<unsigned>(x)));
  };
}

LeakageModel des_sbox_hw_model(int box) {
  return [box](std::span<const std::uint8_t> pt, unsigned guess) -> double {
    const std::uint8_t x = static_cast<std::uint8_t>((pt[0] ^ guess) & 0x3f);
    return static_cast<double>(
        std::popcount(static_cast<unsigned>(crypto::des_sbox(box, x))));
  };
}

std::size_t CpaResult::rank_of(unsigned key) const {
  assert(key < correlation.size());
  const double ref = correlation[key];
  std::size_t rank = 0;
  for (double r : correlation)
    if (r > ref) ++rank;
  return rank;
}

namespace {

/// One-pass correlation of the model column h against all samples:
/// rho[j] = cov(h, s_j) / (sigma_h * sigma_{s_j}).
std::vector<double> correlation_columns(const TraceSet& ts,
                                        std::span<const double> h,
                                        std::size_t n) {
  const std::size_t m = ts.num_samples();
  double sum_h = 0.0, sum_h2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_h += h[i];
    sum_h2 += h[i] * h[i];
  }
  std::vector<double> sum_s(m, 0.0), sum_s2(m, 0.0), sum_hs(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = ts.trace(i).samples();
    const double hi = h[i];
    for (std::size_t j = 0; j < m; ++j) {
      sum_s[j] += s[j];
      sum_s2[j] += s[j] * s[j];
      sum_hs[j] += hi * s[j];
    }
  }
  std::vector<double> rho(m, 0.0);
  const double nn = static_cast<double>(n);
  const double var_h = sum_h2 - sum_h * sum_h / nn;
  if (var_h <= 0.0) return rho;
  for (std::size_t j = 0; j < m; ++j) {
    const double var_s = sum_s2[j] - sum_s[j] * sum_s[j] / nn;
    if (var_s <= 0.0) continue;
    const double cov = sum_hs[j] - sum_h * sum_s[j] / nn;
    rho[j] = cov / std::sqrt(var_h * var_s);
  }
  return rho;
}

}  // namespace

std::vector<double> cpa_correlation_trace(const TraceSet& ts,
                                          const LeakageModel& model,
                                          unsigned guess, std::size_t prefix) {
  const std::size_t n = (prefix == 0) ? ts.size() : std::min(prefix, ts.size());
  std::vector<double> h(n);
  for (std::size_t i = 0; i < n; ++i) h[i] = model(ts.plaintext(i), guess);
  return correlation_columns(ts, h, n);
}

CpaResult cpa_attack(const TraceSet& ts, const LeakageModel& model,
                     unsigned num_guesses, std::size_t prefix,
                     std::size_t window_lo, std::size_t window_hi) {
  CpaResult res;
  res.correlation.resize(num_guesses, 0.0);
  const std::size_t m = ts.num_samples();
  const std::size_t hi = (window_hi == 0) ? m : std::min(window_hi, m);

  for (unsigned g = 0; g < num_guesses; ++g) {
    const std::vector<double> rho = cpa_correlation_trace(ts, model, g, prefix);
    double best = 0.0;
    std::size_t best_j = window_lo;
    for (std::size_t j = window_lo; j < hi; ++j) {
      const double a = std::fabs(rho[j]);
      if (a > best) {
        best = a;
        best_j = j;
      }
    }
    res.correlation[g] = best;
    if (best > res.best_rho) {
      res.best_rho = best;
      res.best_guess = g;
      res.best_sample = best_j;
    }
  }
  res.second_rho = 0.0;
  for (unsigned g = 0; g < num_guesses; ++g)
    if (g != res.best_guess)
      res.second_rho = std::max(res.second_rho, res.correlation[g]);
  return res;
}

}  // namespace qdi::dpa
