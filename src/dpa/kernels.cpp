#include "qdi/dpa/kernels.hpp"

#include <cmath>

#include "qdi/util/cpu.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QDI_KERNELS_X86 1
#include <immintrin.h>
#endif

// Every arm below performs, per accumulator cell, the exact same
// sequence of IEEE operations in the exact same order as the portable
// arm — the SIMD arms only pack independent sample-axis lanes into one
// register. Multiplies and adds stay separate (the x86 arms' target
// sets exclude "fma", so the compiler cannot contract them), divisions
// stay divisions, and scalar tails repeat the identical expressions.
// tests/test_dpa_kernels.cpp pins the arms against each other bit for
// bit; treat any divergence there as a bug in this file.

namespace qdi::dpa::kernels {

namespace {

// ---------------------------------------------------------------- portable

void cpa_moments_portable(double* sum_s, double* sum_s2,
                          const double* const* rows, std::size_t cnt,
                          std::size_t m) {
  for (std::size_t c = 0; c < cnt; ++c) {
    const double* s = rows[c];
    for (std::size_t j = 0; j < m; ++j) {
      sum_s[j] += s[j];
      sum_s2[j] += s[j] * s[j];
    }
  }
}

void cpa_rank_update_portable(double* sum_hs, const double* const* rows,
                              const double* const* hyp, std::size_t cnt,
                              unsigned guesses, std::size_t m) {
  for (unsigned g = 0; g < guesses; ++g) {
    double* dst = sum_hs + static_cast<std::size_t>(g) * m;
    for (std::size_t c = 0; c < cnt; ++c) {
      const double h = hyp[c][g];
      if (h == 0.0) continue;  // zero hypothesis contributes nothing
      const double* s = rows[c];
      for (std::size_t j = 0; j < m; ++j) dst[j] += h * s[j];
    }
  }
}

void row_add_portable(double* dst, const double* src, std::size_t m) {
  for (std::size_t j = 0; j < m; ++j) dst[j] += src[j];
}

void masked_sum_portable(double* dst, const double* const* rows,
                         const double* mask, std::size_t cnt, std::size_t m) {
  for (std::size_t c = 0; c < cnt; ++c) {
    const double w = mask[c];
    const double* s = rows[c];
    for (std::size_t j = 0; j < m; ++j) dst[j] += w * s[j];
  }
}

void variance_portable(double* var, const double* sum_s, const double* sum_s2,
                       double nn, std::size_t m) {
  for (std::size_t j = 0; j < m; ++j)
    var[j] = sum_s2[j] - sum_s[j] * sum_s[j] / nn;
}

void corr_scan_portable(double* rho, const double* hs, const double* sum_s,
                        const double* var_s, double sum_h, double var_h,
                        double nn, std::size_t m) {
  for (std::size_t j = 0; j < m; ++j) {
    if (var_s[j] > 0.0) {
      const double cov = hs[j] - sum_h * sum_s[j] / nn;
      rho[j] = cov / std::sqrt(var_h * var_s[j]);
    } else {
      rho[j] = 0.0;
    }
  }
}

constexpr KernelTable kPortable = {
    "portable",          &cpa_moments_portable, &cpa_rank_update_portable,
    &row_add_portable,   &masked_sum_portable,  &variance_portable,
    &corr_scan_portable,
};

#ifdef QDI_KERNELS_X86

// ------------------------------------------------------------------- sse2
// SSE2 is the x86-64 baseline, so these build with no target attribute;
// they exist so the dispatch has a narrow-vector arm to fall back to
// (and to differentially test) on pre-AVX2 silicon.

void cpa_moments_sse2(double* sum_s, double* sum_s2, const double* const* rows,
                      std::size_t cnt, std::size_t m) {
  for (std::size_t c = 0; c < cnt; ++c) {
    const double* s = rows[c];
    std::size_t j = 0;
    for (; j + 2 <= m; j += 2) {
      const __m128d v = _mm_loadu_pd(s + j);
      _mm_storeu_pd(sum_s + j, _mm_add_pd(_mm_loadu_pd(sum_s + j), v));
      _mm_storeu_pd(sum_s2 + j, _mm_add_pd(_mm_loadu_pd(sum_s2 + j),
                                           _mm_mul_pd(v, v)));
    }
    for (; j < m; ++j) {
      sum_s[j] += s[j];
      sum_s2[j] += s[j] * s[j];
    }
  }
}

void cpa_rank_update_sse2(double* sum_hs, const double* const* rows,
                          const double* const* hyp, std::size_t cnt,
                          unsigned guesses, std::size_t m) {
  for (unsigned g = 0; g < guesses; ++g) {
    double* dst = sum_hs + static_cast<std::size_t>(g) * m;
    for (std::size_t c = 0; c < cnt; ++c) {
      const double h = hyp[c][g];
      if (h == 0.0) continue;
      const double* s = rows[c];
      const __m128d hv = _mm_set1_pd(h);
      std::size_t j = 0;
      for (; j + 2 <= m; j += 2) {
        const __m128d prod = _mm_mul_pd(hv, _mm_loadu_pd(s + j));
        _mm_storeu_pd(dst + j, _mm_add_pd(_mm_loadu_pd(dst + j), prod));
      }
      for (; j < m; ++j) dst[j] += h * s[j];
    }
  }
}

void row_add_sse2(double* dst, const double* src, std::size_t m) {
  std::size_t j = 0;
  for (; j + 2 <= m; j += 2)
    _mm_storeu_pd(dst + j,
                  _mm_add_pd(_mm_loadu_pd(dst + j), _mm_loadu_pd(src + j)));
  for (; j < m; ++j) dst[j] += src[j];
}

void masked_sum_sse2(double* dst, const double* const* rows,
                     const double* mask, std::size_t cnt, std::size_t m) {
  for (std::size_t c = 0; c < cnt; ++c) {
    const double w = mask[c];
    const double* s = rows[c];
    const __m128d wv = _mm_set1_pd(w);
    std::size_t j = 0;
    for (; j + 2 <= m; j += 2) {
      const __m128d prod = _mm_mul_pd(wv, _mm_loadu_pd(s + j));
      _mm_storeu_pd(dst + j, _mm_add_pd(_mm_loadu_pd(dst + j), prod));
    }
    for (; j < m; ++j) dst[j] += w * s[j];
  }
}

void variance_sse2(double* var, const double* sum_s, const double* sum_s2,
                   double nn, std::size_t m) {
  const __m128d nv = _mm_set1_pd(nn);
  std::size_t j = 0;
  for (; j + 2 <= m; j += 2) {
    const __m128d sv = _mm_loadu_pd(sum_s + j);
    const __m128d mean_sq = _mm_div_pd(_mm_mul_pd(sv, sv), nv);
    _mm_storeu_pd(var + j, _mm_sub_pd(_mm_loadu_pd(sum_s2 + j), mean_sq));
  }
  for (; j < m; ++j) var[j] = sum_s2[j] - sum_s[j] * sum_s[j] / nn;
}

void corr_scan_sse2(double* rho, const double* hs, const double* sum_s,
                    const double* var_s, double sum_h, double var_h,
                    double nn, std::size_t m) {
  const __m128d hv = _mm_set1_pd(sum_h);
  const __m128d nv = _mm_set1_pd(nn);
  const __m128d vh = _mm_set1_pd(var_h);
  const __m128d zero = _mm_setzero_pd();
  std::size_t j = 0;
  for (; j + 2 <= m; j += 2) {
    const __m128d vs = _mm_loadu_pd(var_s + j);
    const __m128d cov = _mm_sub_pd(
        _mm_loadu_pd(hs + j),
        _mm_div_pd(_mm_mul_pd(hv, _mm_loadu_pd(sum_s + j)), nv));
    const __m128d r = _mm_div_pd(cov, _mm_sqrt_pd(_mm_mul_pd(vh, vs)));
    // Lanes with var_s <= 0 computed garbage (NaN/inf); the and-mask
    // replaces them with +0.0, which finalize()'s strict max ignores.
    _mm_storeu_pd(rho + j, _mm_and_pd(_mm_cmpgt_pd(vs, zero), r));
  }
  for (; j < m; ++j) {
    if (var_s[j] > 0.0) {
      const double cov = hs[j] - sum_h * sum_s[j] / nn;
      rho[j] = cov / std::sqrt(var_h * var_s[j]);
    } else {
      rho[j] = 0.0;
    }
  }
}

constexpr KernelTable kSse2 = {
    "sse2",          &cpa_moments_sse2, &cpa_rank_update_sse2,
    &row_add_sse2,   &masked_sum_sse2,  &variance_sse2,
    &corr_scan_sse2,
};

// ------------------------------------------------------------------- avx2
// target("avx2") only — deliberately NOT "fma": mul and add must round
// separately to match the portable arm bit for bit.

__attribute__((target("avx2"))) void cpa_moments_avx2(
    double* sum_s, double* sum_s2, const double* const* rows, std::size_t cnt,
    std::size_t m) {
  for (std::size_t c = 0; c < cnt; ++c) {
    const double* s = rows[c];
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const __m256d v = _mm256_loadu_pd(s + j);
      _mm256_storeu_pd(sum_s + j,
                       _mm256_add_pd(_mm256_loadu_pd(sum_s + j), v));
      _mm256_storeu_pd(sum_s2 + j, _mm256_add_pd(_mm256_loadu_pd(sum_s2 + j),
                                                 _mm256_mul_pd(v, v)));
    }
    for (; j < m; ++j) {
      sum_s[j] += s[j];
      sum_s2[j] += s[j] * s[j];
    }
  }
}

// The hot loop of the whole analysis engine: guesses x m accumulator
// rows, every trace. Guesses are walked in pairs so one s[j] vector
// load feeds two accumulator rows (the trace row is the only stream
// the unpaired form reloads per guess). Pairing never reorders a
// cell's contributions — both rows still see traces in ascending c —
// and a pair member with h == 0.0 falls back to the single-row form,
// preserving the portable arm's exact skip decisions.
__attribute__((target("avx2"))) void rank_row_avx2(double* dst, double h,
                                                   const double* s,
                                                   std::size_t m) {
  const __m256d hv = _mm256_set1_pd(h);
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    const __m256d prod = _mm256_mul_pd(hv, _mm256_loadu_pd(s + j));
    _mm256_storeu_pd(dst + j, _mm256_add_pd(_mm256_loadu_pd(dst + j), prod));
  }
  for (; j < m; ++j) dst[j] += h * s[j];
}

__attribute__((target("avx2"))) void cpa_rank_update_avx2(
    double* sum_hs, const double* const* rows, const double* const* hyp,
    std::size_t cnt, unsigned guesses, std::size_t m) {
  unsigned g = 0;
  for (; g + 2 <= guesses; g += 2) {
    double* dst0 = sum_hs + static_cast<std::size_t>(g) * m;
    double* dst1 = dst0 + m;
    for (std::size_t c = 0; c < cnt; ++c) {
      const double h0 = hyp[c][g];
      const double h1 = hyp[c][g + 1];
      const double* s = rows[c];
      if (h0 != 0.0 && h1 != 0.0) {
        const __m256d h0v = _mm256_set1_pd(h0);
        const __m256d h1v = _mm256_set1_pd(h1);
        std::size_t j = 0;
        for (; j + 4 <= m; j += 4) {
          const __m256d sv = _mm256_loadu_pd(s + j);
          _mm256_storeu_pd(
              dst0 + j, _mm256_add_pd(_mm256_loadu_pd(dst0 + j),
                                      _mm256_mul_pd(h0v, sv)));
          _mm256_storeu_pd(
              dst1 + j, _mm256_add_pd(_mm256_loadu_pd(dst1 + j),
                                      _mm256_mul_pd(h1v, sv)));
        }
        for (; j < m; ++j) {
          dst0[j] += h0 * s[j];
          dst1[j] += h1 * s[j];
        }
      } else {
        if (h0 != 0.0) rank_row_avx2(dst0, h0, s, m);
        if (h1 != 0.0) rank_row_avx2(dst1, h1, s, m);
      }
    }
  }
  for (; g < guesses; ++g) {
    double* dst = sum_hs + static_cast<std::size_t>(g) * m;
    for (std::size_t c = 0; c < cnt; ++c) {
      const double h = hyp[c][g];
      if (h == 0.0) continue;
      rank_row_avx2(dst, h, rows[c], m);
    }
  }
}

__attribute__((target("avx2"))) void row_add_avx2(double* dst,
                                                  const double* src,
                                                  std::size_t m) {
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4)
    _mm256_storeu_pd(
        dst + j, _mm256_add_pd(_mm256_loadu_pd(dst + j),
                               _mm256_loadu_pd(src + j)));
  for (; j < m; ++j) dst[j] += src[j];
}

__attribute__((target("avx2"))) void masked_sum_avx2(
    double* dst, const double* const* rows, const double* mask,
    std::size_t cnt, std::size_t m) {
  for (std::size_t c = 0; c < cnt; ++c) {
    const double w = mask[c];
    const double* s = rows[c];
    const __m256d wv = _mm256_set1_pd(w);
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const __m256d prod = _mm256_mul_pd(wv, _mm256_loadu_pd(s + j));
      _mm256_storeu_pd(dst + j,
                       _mm256_add_pd(_mm256_loadu_pd(dst + j), prod));
    }
    for (; j < m; ++j) dst[j] += w * s[j];
  }
}

__attribute__((target("avx2"))) void variance_avx2(double* var,
                                                   const double* sum_s,
                                                   const double* sum_s2,
                                                   double nn, std::size_t m) {
  const __m256d nv = _mm256_set1_pd(nn);
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    const __m256d sv = _mm256_loadu_pd(sum_s + j);
    const __m256d mean_sq = _mm256_div_pd(_mm256_mul_pd(sv, sv), nv);
    _mm256_storeu_pd(var + j,
                     _mm256_sub_pd(_mm256_loadu_pd(sum_s2 + j), mean_sq));
  }
  for (; j < m; ++j) var[j] = sum_s2[j] - sum_s[j] * sum_s[j] / nn;
}

__attribute__((target("avx2"))) void corr_scan_avx2(
    double* rho, const double* hs, const double* sum_s, const double* var_s,
    double sum_h, double var_h, double nn, std::size_t m) {
  const __m256d hv = _mm256_set1_pd(sum_h);
  const __m256d nv = _mm256_set1_pd(nn);
  const __m256d vh = _mm256_set1_pd(var_h);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    const __m256d vs = _mm256_loadu_pd(var_s + j);
    const __m256d cov = _mm256_sub_pd(
        _mm256_loadu_pd(hs + j),
        _mm256_div_pd(_mm256_mul_pd(hv, _mm256_loadu_pd(sum_s + j)), nv));
    const __m256d r =
        _mm256_div_pd(cov, _mm256_sqrt_pd(_mm256_mul_pd(vh, vs)));
    _mm256_storeu_pd(rho + j,
                     _mm256_and_pd(_mm256_cmp_pd(vs, zero, _CMP_GT_OQ), r));
  }
  for (; j < m; ++j) {
    if (var_s[j] > 0.0) {
      const double cov = hs[j] - sum_h * sum_s[j] / nn;
      rho[j] = cov / std::sqrt(var_h * var_s[j]);
    } else {
      rho[j] = 0.0;
    }
  }
}

constexpr KernelTable kAvx2 = {
    "avx2",          &cpa_moments_avx2, &cpa_rank_update_avx2,
    &row_add_avx2,   &masked_sum_avx2,  &variance_avx2,
    &corr_scan_avx2,
};

#endif  // QDI_KERNELS_X86

}  // namespace

bool supported(Kind k) noexcept {
  switch (k) {
    case Kind::Portable:
      return true;
#ifdef QDI_KERNELS_X86
    case Kind::Sse2:
      return util::cpu_features().sse2;
    case Kind::Avx2:
      return util::cpu_features().avx2;
#else
    case Kind::Sse2:
    case Kind::Avx2:
      return false;
#endif
  }
  return false;
}

const KernelTable* table(Kind k) noexcept {
  if (!supported(k)) return nullptr;
  switch (k) {
    case Kind::Portable:
      return &kPortable;
#ifdef QDI_KERNELS_X86
    case Kind::Sse2:
      return &kSse2;
    case Kind::Avx2:
      return &kAvx2;
#else
    case Kind::Sse2:
    case Kind::Avx2:
      return nullptr;
#endif
  }
  return nullptr;
}

const KernelTable& active() noexcept {
  static const KernelTable* const picked = [] {
    if (!util::force_portable()) {
      if (const KernelTable* avx2 = table(Kind::Avx2)) return avx2;
      if (const KernelTable* sse2 = table(Kind::Sse2)) return sse2;
    }
    return table(Kind::Portable);
  }();
  return *picked;
}

}  // namespace qdi::dpa::kernels
