#include "qdi/dpa/acquisition.hpp"

#include <stdexcept>

namespace qdi::dpa {

TraceSet acquire(sim::Simulator& sim, sim::FourPhaseEnv& env,
                 const StimulusFn& stimulus, const Acquisition& cfg) {
  util::Rng rng(cfg.seed);
  TraceSet ts;
  env.apply_reset();
  sim.clear_log();

  for (std::size_t i = 0; i < cfg.num_traces; ++i) {
    auto [values, plaintext] = stimulus(rng);
    sim.clear_log();
    const auto cyc = env.send(values);
    if (!cyc.ok)
      throw std::runtime_error("acquire: four-phase protocol failure");
    const double jitter =
        cfg.start_jitter_ps > 0.0 ? rng.uniform(0.0, cfg.start_jitter_ps) : 0.0;
    power::PowerTrace trace =
        power::synthesize(sim.log(), cyc.t_start - jitter,
                          env.spec().period_ps, cfg.power, &rng);
    // Pack the decoded output channel values as "ciphertext" bytes
    // (LSB-first bit packing, 8 channels per byte).
    std::vector<std::uint8_t> ct((cyc.outputs.size() + 7) / 8, 0);
    for (std::size_t b = 0; b < cyc.outputs.size(); ++b)
      if (cyc.outputs[b] == 1) ct[b / 8] |= static_cast<std::uint8_t>(1u << (b % 8));
    ts.add(std::move(trace), std::move(plaintext), std::move(ct));
  }
  return ts;
}

}  // namespace qdi::dpa
