#include "qdi/dpa/acquisition.hpp"

#include <cassert>
#include <stdexcept>

namespace qdi::dpa {

TraceSet acquire(sim::Simulator& sim, sim::FourPhaseEnv& env,
                 const StimulusFn& stimulus, const Acquisition& cfg) {
  util::Rng rng(cfg.seed);
  TraceSet ts;
  env.apply_reset();
  sim.clear_log();

  for (std::size_t i = 0; i < cfg.num_traces; ++i) {
    auto [values, plaintext] = stimulus(rng);
    sim.clear_log();
    const auto cyc = env.send(values);
    if (!cyc.ok)
      throw std::runtime_error("acquire: four-phase protocol failure");
    const double jitter =
        cfg.start_jitter_ps > 0.0 ? rng.uniform(0.0, cfg.start_jitter_ps) : 0.0;
    power::PowerTrace trace =
        power::synthesize(sim.log(), cyc.t_start - jitter,
                          env.spec().period_ps, cfg.power, &rng);
    // Pack the decoded output channel values as "ciphertext" bytes
    // (LSB-first bit packing, 8 channels per byte).
    std::vector<std::uint8_t> ct((cyc.outputs.size() + 7) / 8, 0);
    for (std::size_t b = 0; b < cyc.outputs.size(); ++b)
      if (cyc.outputs[b] == 1) ct[b / 8] |= static_cast<std::uint8_t>(1u << (b % 8));
    ts.add(std::move(trace), std::move(plaintext), std::move(ct));
  }
  return ts;
}

namespace {
/// Bits of `value` (LSB first) as 1-of-2 channel values.
void push_bits(std::vector<int>& values, unsigned value, int bits) {
  for (int b = 0; b < bits; ++b) values.push_back((value >> b) & 1);
}
}  // namespace

TraceSet acquire_aes_byte_slice(gates::AesByteSlice& circuit,
                                std::uint8_t key_byte, const Acquisition& cfg,
                                const sim::DelayModel& delays) {
  sim::Simulator sim(circuit.nl, delays);
  sim::FourPhaseEnv env(sim, circuit.env);
  return acquire(
      sim, env,
      [key_byte](util::Rng& rng) {
        const std::uint8_t p = rng.byte();
        std::vector<int> values;
        values.reserve(16);
        push_bits(values, p, 8);
        push_bits(values, key_byte, 8);
        return std::make_pair(std::move(values),
                              std::vector<std::uint8_t>{p});
      },
      cfg);
}

TraceSet acquire_des_sbox_slice(gates::DesSboxSlice& circuit, std::uint8_t key6,
                                const Acquisition& cfg,
                                const sim::DelayModel& delays) {
  assert(key6 < 64);
  sim::Simulator sim(circuit.nl, delays);
  sim::FourPhaseEnv env(sim, circuit.env);
  return acquire(
      sim, env,
      [key6](util::Rng& rng) {
        const std::uint8_t p =
            static_cast<std::uint8_t>(rng.below(64));
        std::vector<int> values;
        values.reserve(12);
        push_bits(values, p, 6);
        push_bits(values, key6, 6);
        return std::make_pair(std::move(values),
                              std::vector<std::uint8_t>{p});
      },
      cfg);
}

TraceSet acquire_xor_stage(gates::XorStage& circuit, const Acquisition& cfg,
                           const sim::DelayModel& delays) {
  sim::Simulator sim(circuit.nl, delays);
  sim::FourPhaseEnv env(sim, circuit.env);
  return acquire(
      sim, env,
      [](util::Rng& rng) {
        const int a = static_cast<int>(rng.below(2));
        const int b = static_cast<int>(rng.below(2));
        return std::make_pair(std::vector<int>{a, b},
                              std::vector<std::uint8_t>{
                                  static_cast<std::uint8_t>(a),
                                  static_cast<std::uint8_t>(b)});
      },
      cfg);
}

}  // namespace qdi::dpa
