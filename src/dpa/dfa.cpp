#include "qdi/dpa/dfa.hpp"

#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"

namespace qdi::dpa {

DfaModel des_sbox_dfa_model(int box) {
  return [box](const DfaPair& pair, unsigned guess) {
    const auto delta =
        static_cast<std::uint8_t>(pair.golden ^ pair.faulty);
    if (delta == 0) return false;
    const auto in = static_cast<std::uint8_t>((pair.input ^ guess) & 0x3f);
    const std::uint8_t ref = crypto::des_sbox(box, in);
    for (int bit = 0; bit < 6; ++bit) {
      const auto flipped = static_cast<std::uint8_t>(in ^ (1u << bit));
      if ((ref ^ crypto::des_sbox(box, flipped)) == delta) return true;
    }
    return false;
  };
}

DfaModel aes_sbox_dfa_model() {
  return [](const DfaPair& pair, unsigned guess) {
    const auto delta =
        static_cast<std::uint8_t>(pair.golden ^ pair.faulty);
    if (delta == 0) return false;
    const auto in = static_cast<std::uint8_t>(pair.input ^ guess);
    const std::uint8_t ref = crypto::aes_sbox(in);
    for (int bit = 0; bit < 8; ++bit) {
      const auto flipped = static_cast<std::uint8_t>(in ^ (1u << bit));
      if ((ref ^ crypto::aes_sbox(flipped)) == delta) return true;
    }
    return false;
  };
}

std::size_t DfaResult::rank_of(unsigned key) const {
  if (key >= votes.size()) return votes.size();
  std::size_t rank = 0;
  for (std::size_t g = 0; g < votes.size(); ++g)
    if (votes[g] > votes[key]) ++rank;
  return rank;
}

DfaResult dfa_attack(const DfaModel& model, std::span<const DfaPair> pairs,
                     unsigned num_guesses) {
  DfaResult res;
  res.votes.assign(num_guesses, 0);
  for (const DfaPair& pair : pairs) {
    if (pair.golden == pair.faulty) continue;  // masked: no information
    ++res.pairs_used;
    for (unsigned g = 0; g < num_guesses; ++g)
      if (model(pair, g)) ++res.votes[g];
  }
  for (unsigned g = 0; g < num_guesses; ++g) {
    if (res.votes[g] > res.best_votes) {
      res.best_votes = res.votes[g];
      res.best_guess = g;
    }
  }
  for (unsigned g = 0; g < num_guesses; ++g) {
    if (res.votes[g] == res.best_votes) ++res.survivors;
    if (g != res.best_guess && res.votes[g] > res.second_votes)
      res.second_votes = res.votes[g];
  }
  return res;
}

}  // namespace qdi::dpa
