#include "qdi/dpa/dpa.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "qdi/util/stats.hpp"

namespace qdi::dpa {

namespace {
void window_stats(BiasResult& r, SampleWindow window) {
  r.peak = 0.0;
  r.peak_index = window.lo;
  r.integrated = 0.0;
  for (std::size_t j = 0; j < r.bias.size(); ++j) {
    if (!window.contains(j)) continue;
    const double a = std::fabs(r.bias[j]);
    r.integrated += a;
    if (a > r.peak) {
      r.peak = a;
      r.peak_index = j;
    }
  }
}
}  // namespace

BiasResult dpa_bias(const TraceSet& ts, const SelectionFn& d, unsigned guess,
                    std::size_t prefix, SampleWindow window) {
  const std::size_t n = (prefix == 0) ? ts.size() : std::min(prefix, ts.size());
  util::VectorMean a0, a1;
  for (std::size_t i = 0; i < n; ++i) {
    if (d(ts.plaintext(i), guess) == 0)
      a0.add(ts.trace(i).samples());
    else
      a1.add(ts.trace(i).samples());
  }
  BiasResult r;
  r.n0 = a0.count();
  r.n1 = a1.count();
  if (r.n0 == 0 || r.n1 == 0) {
    r.bias.assign(ts.num_samples(), 0.0);
    return r;
  }
  r.bias = util::subtract(a0.mean(), a1.mean());
  window_stats(r, window);
  return r;
}

std::size_t KeyRecoveryResult::rank_of(unsigned key) const {
  assert(key < guess_peak.size());
  const double ref = guess_peak[key];
  std::size_t rank = 0;
  for (double p : guess_peak)
    if (p > ref) ++rank;
  return rank;
}

namespace {
void finalize(KeyRecoveryResult& r, unsigned num_guesses) {
  r.best_guess = static_cast<unsigned>(
      std::max_element(r.guess_peak.begin(), r.guess_peak.end()) -
      r.guess_peak.begin());
  r.best_peak = r.guess_peak[r.best_guess];
  r.second_peak = 0.0;
  for (unsigned g = 0; g < num_guesses; ++g)
    if (g != r.best_guess)
      r.second_peak = std::max(r.second_peak, r.guess_peak[g]);
}
}  // namespace

KeyRecoveryResult recover_key(const TraceSet& ts, const SelectionFn& d,
                              unsigned num_guesses, std::size_t prefix,
                              SampleWindow window) {
  KeyRecoveryResult r;
  r.guess_peak.resize(num_guesses, 0.0);
  for (unsigned g = 0; g < num_guesses; ++g)
    r.guess_peak[g] = dpa_bias(ts, d, g, prefix, window).peak;
  finalize(r, num_guesses);
  return r;
}

KeyRecoveryResult recover_key_multibit(const TraceSet& ts,
                                       const std::vector<SelectionFn>& bits,
                                       unsigned num_guesses, std::size_t prefix,
                                       SampleWindow window) {
  KeyRecoveryResult r;
  r.guess_peak.resize(num_guesses, 0.0);
  for (unsigned g = 0; g < num_guesses; ++g) {
    double sum = 0.0;
    for (const SelectionFn& d : bits)
      sum += dpa_bias(ts, d, g, prefix, window).peak;
    r.guess_peak[g] = sum;
  }
  finalize(r, num_guesses);
  return r;
}

std::size_t measurements_to_disclosure(const TraceSet& ts, const SelectionFn& d,
                                       unsigned num_guesses, unsigned correct_key,
                                       std::size_t start, std::size_t step,
                                       SampleWindow window) {
  // Scan prefixes; find the earliest n such that the attack succeeds at n
  // and at every subsequent probed prefix (stability requirement).
  std::size_t candidate = 0;
  for (std::size_t n = start; n <= ts.size(); n += step) {
    const KeyRecoveryResult r = recover_key(ts, d, num_guesses, n, window);
    const bool success = (r.best_guess == correct_key) && r.best_peak > 0.0;
    if (success && candidate == 0) candidate = n;
    if (!success) candidate = 0;
  }
  return candidate;
}

}  // namespace qdi::dpa
