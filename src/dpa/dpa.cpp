#include "qdi/dpa/dpa.hpp"

#include <algorithm>
#include <cassert>

#include "qdi/dpa/online.hpp"

namespace qdi::dpa {

BiasResult dpa_bias(const TraceSet& ts, const SelectionFn& d, unsigned guess,
                    std::size_t prefix, SampleWindow window) {
  OnlineDpa acc({d.pinned(guess)}, 1);
  acc.add_prefix(ts, 0, ts.prefix_rows(prefix));
  return acc.bias(0, 0, window);
}

std::size_t KeyRecoveryResult::rank_of(unsigned key) const {
  assert(key < guess_peak.size());
  const double ref = guess_peak[key];
  std::size_t rank = 0;
  for (double p : guess_peak)
    if (p > ref) ++rank;  // strictly greater: ties rank below the reference
  return rank;
}

KeyRecoveryResult recover_key(const TraceSet& ts, const SelectionFn& d,
                              unsigned num_guesses, std::size_t prefix,
                              SampleWindow window) {
  OnlineDpa acc({d}, num_guesses);
  acc.add_prefix(ts, 0, ts.prefix_rows(prefix));
  return acc.recover(window);
}

KeyRecoveryResult recover_key_multibit(const TraceSet& ts,
                                       const std::vector<SelectionFn>& bits,
                                       unsigned num_guesses, std::size_t prefix,
                                       SampleWindow window) {
  OnlineDpa acc(bits, num_guesses);
  acc.add_prefix(ts, 0, ts.prefix_rows(prefix));
  return acc.recover(window);
}

std::size_t measurements_to_disclosure(const TraceSet& ts, const SelectionFn& d,
                                       unsigned num_guesses, unsigned correct_key,
                                       std::size_t start, std::size_t step,
                                       SampleWindow window) {
  if (step == 0) return 0;  // degenerate grid, never stably recovered
  // Scan prefixes; find the earliest n such that the attack succeeds at n
  // and at every subsequent probed prefix (stability requirement). One
  // streaming pass: each probe finalizes the running sums in place.
  OnlineDpa acc({d}, num_guesses);
  MtdScan scan;
  for (std::size_t n = start; n <= ts.size(); n += step) {
    acc.add_prefix(ts, acc.count(), n);
    const KeyRecoveryResult r = acc.recover(window);
    scan.probe((r.best_guess == correct_key) && r.best_peak > 0.0, n);
  }
  return scan.value();
}

}  // namespace qdi::dpa
