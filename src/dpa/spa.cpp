#include "qdi/dpa/spa.hpp"

#include <algorithm>
#include <cmath>

#include "qdi/dpa/trace_set.hpp"
#include "qdi/util/stats.hpp"

namespace qdi::dpa {

std::vector<ActivityBurst> find_bursts(power::TraceView trace,
                                       double threshold_ua,
                                       std::size_t min_gap) {
  std::vector<ActivityBurst> bursts;
  const std::size_t n = trace.size();
  std::size_t i = 0;
  while (i < n) {
    if (std::fabs(trace[i]) < threshold_ua) {
      ++i;
      continue;
    }
    ActivityBurst b;
    b.start = i;
    std::size_t quiet = 0;
    std::size_t last_active = i;
    while (i < n) {
      if (std::fabs(trace[i]) >= threshold_ua) {
        quiet = 0;
        last_active = i;
        b.charge_fc += trace[i] * trace.dt_ps();
        b.peak_ua = std::max(b.peak_ua, std::fabs(trace[i]));
      } else if (++quiet > min_gap) {
        break;
      }
      ++i;
    }
    b.end = last_active + 1;
    bursts.push_back(b);
  }
  return bursts;
}

double spa_distance(power::TraceView a, power::TraceView b) {
  const std::size_t n = std::min(a.size(), b.size());
  double d = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    d = std::max(d, std::fabs(a[j] - b[j]));
  return d;
}

namespace {
/// Cross-correlation score between reference and trace shifted left by s.
double shift_score(std::span<const double> ref, std::span<const double> t,
                   std::size_t s) {
  const std::size_t n = ref.size() - s;
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) sum += ref[j] * t[j + s];
  return sum;
}
}  // namespace

std::size_t realign_traces(TraceSet& ts, std::size_t max_shift_samples) {
  if (ts.size() < 2 || ts.num_samples() == 0) return 0;
  const std::size_t max_s =
      std::min(max_shift_samples, ts.num_samples() - 1);

  std::size_t moved = 0;
  for (std::size_t i = 1; i < ts.size(); ++i) {
    // The reference row is re-fetched per trace: mutating row i never
    // moves row 0 (one contiguous matrix), but spans are cheap anyway.
    const std::span<const double> ref = ts.trace(0).samples();
    const std::span<double> t = ts.mutable_samples(i);
    std::size_t best_s = 0;
    double best = shift_score(ref, t, 0);
    for (std::size_t s = 1; s <= max_s; ++s) {
      const double score = shift_score(ref, t, s);
      if (score > best) {
        best = score;
        best_s = s;
      }
    }
    if (best_s == 0) continue;
    ++moved;
    const std::size_t n = t.size();
    for (std::size_t j = 0; j + best_s < n; ++j) t[j] = t[j + best_s];
    for (std::size_t j = n - best_s; j < n; ++j) t[j] = 0.0;
  }
  return moved;
}

MatchResult locate_pattern(power::TraceView trace,
                           power::TraceView pattern) {
  MatchResult best;
  if (pattern.size() == 0 || pattern.size() > trace.size()) return best;
  const std::size_t m = pattern.size();
  std::vector<double> window(m);
  for (std::size_t off = 0; off + m <= trace.size(); ++off) {
    for (std::size_t j = 0; j < m; ++j) window[j] = trace[off + j];
    const double rho = util::pearson(window, pattern.samples());
    if (rho > best.correlation) {
      best.correlation = rho;
      best.offset = off;
    }
  }
  return best;
}

}  // namespace qdi::dpa
