// IndexedFn<R> — the common shape of the attacker's keyed predictors:
// a function of (plaintext, key guess) returning R, which may declare
// that it reads only ONE plaintext byte. SelectionFn (R = int, the
// DPA D-functions) and LeakageModel (R = double, the CPA models) are
// aliases of this template; see selection.hpp / cpa.hpp for their
// semantics.
//
// The byte-indexed declaration is what the streaming engine
// (dpa::OnlineCpa / dpa::OnlineDpa) exploits: a declared predictor is
// tabulated into a 256-entry-per-guess LUT once, so no std::function
// runs on the per-trace hot path. Predictors built from plain lambdas
// still work everywhere — they take the generic scalar-call path.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <type_traits>
#include <utility>

namespace qdi::dpa {

template <typename R>
class IndexedFn {
 public:
  using GenericFn =
      std::function<R(std::span<const std::uint8_t> plaintext, unsigned guess)>;
  using ByteFn = std::function<R(std::uint8_t value, unsigned guess)>;

  IndexedFn() = default;
  /// Generic predictor over the whole plaintext (implicit, so plain
  /// lambda call sites keep working).
  IndexedFn(GenericFn fn) : generic_(std::move(fn)) {}  // NOLINT: implicit
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, IndexedFn> &&
             !std::is_same_v<std::remove_cvref_t<F>, GenericFn> &&
             std::is_invocable_r_v<R, F, std::span<const std::uint8_t>,
                                   unsigned>)
  IndexedFn(F fn) : generic_(std::move(fn)) {}  // NOLINT: implicit

  /// Predictor that depends only on plaintext[byte]: f(pt, g) =
  /// fn(pt[byte], g). Enables the LUT fast path of the online engine.
  static IndexedFn byte_indexed(int byte, ByteFn fn) {
    IndexedFn f;
    f.byte_ = byte;
    f.byte_fn_ = std::move(fn);
    return f;
  }

  R operator()(std::span<const std::uint8_t> pt, unsigned guess) const {
    if (byte_fn_) return byte_fn_(pt[static_cast<std::size_t>(byte_)], guess);
    return generic_(pt, guess);
  }

  explicit operator bool() const noexcept {
    return static_cast<bool>(generic_) || static_cast<bool>(byte_fn_);
  }
  bool is_byte_indexed() const noexcept { return static_cast<bool>(byte_fn_); }
  int byte() const noexcept { return byte_; }
  /// Direct byte-indexed evaluation (valid iff is_byte_indexed()).
  R eval_byte(std::uint8_t value, unsigned guess) const {
    return byte_fn_(value, guess);
  }

  /// Restrict to one fixed guess: the result answers every guess index
  /// with this predictor's value at `guess` (callers use index 0). The
  /// byte-indexed fast path is preserved.
  IndexedFn pinned(unsigned guess) const {
    if (byte_fn_)
      return byte_indexed(byte_, [fn = byte_fn_, guess](std::uint8_t v,
                                                        unsigned) {
        return fn(v, guess);
      });
    return IndexedFn(GenericFn(
        [fn = generic_, guess](std::span<const std::uint8_t> pt, unsigned) {
          return fn(pt, guess);
        }));
  }

 private:
  GenericFn generic_;
  ByteFn byte_fn_;
  int byte_ = 0;
};

}  // namespace qdi::dpa
