// Differential Fault Analysis — the attack the fault-injection half of
// the paper defends against (Biham/Shamir on DES, Piret/Quisquater
// style on AES, here in single-S-box form matching the registry's slice
// targets).
//
// The attacker's material is (plaintext, golden ciphertext, faulty
// ciphertext) triples where the fault hit the S-box *input* — in the
// simulated targets, a forced x_i = p_i ^ k_i net. A key guess g is
// *consistent* with a pair when some single-bit input flip e explains
// the observed output differential:
//
//     exists e in {single bits}:  S(p ^ g) ^ S(p ^ g ^ e) == golden ^ faulty
//
// Crucially the test uses only the DIFFERENTIAL golden ^ faulty, never
// the absolute golden value: an attacker who could check S(p ^ g) ==
// golden directly would not need faults at all. Each pair votes for
// every consistent guess; enough pairs leave the true key (and, for
// some S-boxes, a small coset of ghosts) with the top vote count.
//
// QDI circuits defeat the collection step, not the mathematics: a
// stuck rail deadlocks the handshake instead of emitting a faulty
// ciphertext, so the (golden, faulty) pairs never exist. The fault
// campaign (campaign/fault_campaign.hpp) measures exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace qdi::dpa {

/// One collected differential: the S-box-slice input word (plaintext
/// bits), the fault-free output word, and the faulty output word.
struct DfaPair {
  std::uint8_t input = 0;
  std::uint8_t golden = 0;
  std::uint8_t faulty = 0;
};

/// Consistency predicate: does `guess` explain `pair` under the fault
/// model? Wired per target (TargetInstance::dfa).
using DfaModel = std::function<bool(const DfaPair&, unsigned guess)>;

/// Single-bit input-flip model for DES S-box `box` (6-bit guess space).
DfaModel des_sbox_dfa_model(int box);
/// Single-bit input-flip model for the AES S-box (8-bit guess space).
DfaModel aes_sbox_dfa_model();

struct DfaResult {
  std::vector<std::size_t> votes;  ///< consistent-pair count per guess
  unsigned best_guess = 0;
  std::size_t best_votes = 0;
  std::size_t second_votes = 0;  ///< best count among the other guesses
  /// Pairs that actually carried information (golden != faulty); pairs
  /// with a zero differential are skipped — they are masked faults that
  /// leaked nothing.
  std::size_t pairs_used = 0;
  /// Guesses tied at best_votes — the residual key ambiguity (1 = unique
  /// recovery; S-box differential symmetries can leave small cosets).
  std::size_t survivors = 0;

  /// Rank of a reference guess: the number of guesses with STRICTLY
  /// more votes (ties rank below the reference, mirroring
  /// CpaResult::rank_of).
  std::size_t rank_of(unsigned key) const;
};

/// Vote every guess against every informative pair. Guess space is
/// [0, num_guesses).
DfaResult dfa_attack(const DfaModel& model, std::span<const DfaPair> pairs,
                     unsigned num_guesses);

}  // namespace qdi::dpa
