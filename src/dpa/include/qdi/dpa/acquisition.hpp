// Trace acquisition: runs a circuit under its four-phase environment for
// N random plaintexts and synthesizes one power trace per cycle — the
// reproduction's stand-in for the oscilloscope bench of a physical DPA
// setup. Each trace window covers the full four-phase cycle: evaluation
// and return-to-zero phases, as in fig. 6 of the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "qdi/dpa/trace_set.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"

namespace qdi::dpa {

struct Acquisition {
  std::size_t num_traces = 500;
  std::uint64_t seed = 1;
  power::PowerModelParams power{};
  /// Trace misalignment: the acquisition window of each trace starts
  /// uniformly in [0, start_jitter_ps) *after* the cycle start. Models
  /// the attacker's central difficulty with clockless circuits — there
  /// is no clock edge to trigger on. 0 = perfectly aligned (a designer-
  /// side bench, or an attacker with a perfect EM trigger).
  double start_jitter_ps = 0.0;
};

/// Stimulus callback: produces (per-input-channel 1-of-N values, recorded
/// plaintext bytes) for one acquisition.
using StimulusFn = std::function<
    std::pair<std::vector<int>, std::vector<std::uint8_t>>(util::Rng&)>;

/// Generic engine: resets the environment once, then runs `num_traces`
/// back-to-back cycles (no reset between traces), synthesizing the
/// supply-current trace of each full cycle from the transition log.
/// Sequential-RNG, single-threaded — the campaign API's
/// SimTraceSource/acquire_batch is the parallel, per-trace-stream
/// replacement; this engine remains for bench-style sweeps that want
/// the continuous-operation model. (The per-circuit acquire_<circuit>()
/// wrappers it used to carry are gone — use qdi::campaign targets.)
TraceSet acquire(sim::Simulator& sim, sim::FourPhaseEnv& env,
                 const StimulusFn& stimulus, const Acquisition& cfg);

}  // namespace qdi::dpa
