// Trace acquisition: runs a circuit under its four-phase environment for
// N random plaintexts and synthesizes one power trace per cycle — the
// reproduction's stand-in for the oscilloscope bench of a physical DPA
// setup. Each trace window covers the full four-phase cycle: evaluation
// and return-to-zero phases, as in fig. 6 of the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "qdi/dpa/trace_set.hpp"
#include "qdi/gates/testbench.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/environment.hpp"

namespace qdi::dpa {

struct Acquisition {
  std::size_t num_traces = 500;
  std::uint64_t seed = 1;
  power::PowerModelParams power{};
  /// Trace misalignment: the acquisition window of each trace starts
  /// uniformly in [0, start_jitter_ps) *after* the cycle start. Models
  /// the attacker's central difficulty with clockless circuits — there
  /// is no clock edge to trigger on. 0 = perfectly aligned (a designer-
  /// side bench, or an attacker with a perfect EM trigger).
  double start_jitter_ps = 0.0;
};

/// Stimulus callback: produces (per-input-channel 1-of-N values, recorded
/// plaintext bytes) for one acquisition.
using StimulusFn = std::function<
    std::pair<std::vector<int>, std::vector<std::uint8_t>>(util::Rng&)>;

/// Generic engine: resets the environment once, then runs `num_traces`
/// cycles, synthesizing the supply-current trace of each full cycle.
TraceSet acquire(sim::Simulator& sim, sim::FourPhaseEnv& env,
                 const StimulusFn& stimulus, const Acquisition& cfg);

/// AES byte slice: random plaintext byte against a fixed key byte.
/// plaintext(i) = {p}; ciphertext(i) = {SBOX(p ^ key_byte)} as decoded
/// from the circuit outputs.
[[deprecated("use qdi::campaign (qdi/campaign/campaign.hpp) instead")]]
TraceSet acquire_aes_byte_slice(gates::AesByteSlice& circuit,
                                std::uint8_t key_byte, const Acquisition& cfg,
                                const sim::DelayModel& delays = {});

/// DES S-box slice: random 6-bit input against a fixed 6-bit key chunk.
[[deprecated("use qdi::campaign (qdi/campaign/campaign.hpp) instead")]]
TraceSet acquire_des_sbox_slice(gates::DesSboxSlice& circuit, std::uint8_t key6,
                                const Acquisition& cfg,
                                const sim::DelayModel& delays = {});

/// Fig. 4 XOR stage: random bit pair (a, b); plaintext(i) = {a, b}.
[[deprecated("use qdi::campaign (qdi/campaign/campaign.hpp) instead")]]
TraceSet acquire_xor_stage(gates::XorStage& circuit, const Acquisition& cfg,
                           const sim::DelayModel& delays = {});

}  // namespace qdi::dpa
