// Simple Power Analysis utilities — the paper's introduction motivates
// both SPA and DPA; SPA inspects *individual* traces for operation-level
// structure. For four-phase QDI circuits the natural SPA questions are:
// where are the handshake cycles, how much charge does each move, and do
// two traces differ visibly (they must not, on a balanced block).
#pragma once

#include <cstddef>
#include <vector>

#include "qdi/power/trace.hpp"

namespace qdi::dpa {

struct ActivityBurst {
  std::size_t start = 0;   ///< first sample above threshold
  std::size_t end = 0;     ///< one past the last sample above threshold
  double charge_fc = 0.0;  ///< integrated charge of the burst
  double peak_ua = 0.0;
};

/// Segment a trace into activity bursts: maximal runs of samples above
/// `threshold_ua` separated by at least `min_gap` quiet samples. On a
/// four-phase QDI trace the bursts are the protocol phases.
std::vector<ActivityBurst> find_bursts(power::TraceView trace,
                                       double threshold_ua,
                                       std::size_t min_gap = 4);

/// Largest absolute point-wise difference between two traces of equal
/// geometry — the SPA distinguishability of two operations. A balanced
/// QDI block yields ~0 between any two codewords of the same operation.
double spa_distance(power::TraceView a, power::TraceView b);

/// Simple matched filter: cross-correlate `pattern` over `trace` and
/// return the offset with the highest normalized correlation — locating
/// a known operation inside a longer acquisition.
struct MatchResult {
  std::size_t offset = 0;
  double correlation = 0.0;
};
MatchResult locate_pattern(power::TraceView trace,
                           power::TraceView pattern);

/// Trace-set realignment: clockless circuits give the attacker no
/// trigger edge, so acquisitions are mutually shifted (see
/// Acquisition::start_jitter_ps). This pass aligns every trace to the
/// first one by maximizing the sample cross-correlation over left shifts
/// in [0, max_shift_samples], shifting in place (tail zero-padded).
/// Returns the number of traces that were moved.
std::size_t realign_traces(class TraceSet& ts, std::size_t max_shift_samples);

}  // namespace qdi::dpa
