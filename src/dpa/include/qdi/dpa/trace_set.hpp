// Acquisition container: N power signals S_ij plus the plaintext (and
// optional ciphertext) that produced each one — the inputs of the DPA
// algorithm of section IV.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qdi/power/trace.hpp"

namespace qdi::dpa {

class TraceSet {
 public:
  /// Append one acquisition. All traces must share geometry.
  void add(power::PowerTrace trace, std::vector<std::uint8_t> plaintext,
           std::vector<std::uint8_t> ciphertext = {});

  std::size_t size() const noexcept { return traces_.size(); }
  std::size_t num_samples() const noexcept {
    return traces_.empty() ? 0 : traces_.front().size();
  }

  const power::PowerTrace& trace(std::size_t i) const { return traces_.at(i); }
  /// Mutable access for preprocessing passes (realignment, filtering).
  power::PowerTrace& mutable_trace(std::size_t i) { return traces_.at(i); }
  std::span<const std::uint8_t> plaintext(std::size_t i) const {
    return plaintexts_.at(i);
  }
  std::span<const std::uint8_t> ciphertext(std::size_t i) const {
    return ciphertexts_.at(i);
  }

  /// Restrict to the first n acquisitions (view semantics are not needed;
  /// MTD scans pass an explicit prefix length to the analysis instead).
  void truncate(std::size_t n);

 private:
  std::vector<power::PowerTrace> traces_;
  std::vector<std::vector<std::uint8_t>> plaintexts_;
  std::vector<std::vector<std::uint8_t>> ciphertexts_;
};

}  // namespace qdi::dpa
