// Acquisition container: N power signals S_ij plus the plaintext (and
// optional ciphertext) that produced each one — the inputs of the DPA
// algorithm of section IV.
//
// Storage is structure-of-arrays: all samples live in one contiguous
// power::SampleMatrix (trace i = row i) and the plaintext/ciphertext
// bytes are packed into fixed-stride byte arrays. The analysis kernels
// (dpa::OnlineCpa / dpa::OnlineDpa) sweep rows linearly; nothing on the
// analysis path chases per-trace heap allocations.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "qdi/power/sample_matrix.hpp"
#include "qdi/power/trace.hpp"

namespace qdi::dpa {

class TraceSet {
 public:
  /// Append one acquisition. All traces must share geometry: the first
  /// add fixes the sample count and the plaintext/ciphertext strides,
  /// and a later add with different lengths throws std::invalid_argument
  /// (the packed SoA storage has no representation for ragged rows).
  void add(const power::PowerTrace& trace, std::vector<std::uint8_t> plaintext,
           std::vector<std::uint8_t> ciphertext = {});
  void add(power::TraceView trace, std::span<const std::uint8_t> plaintext,
           std::span<const std::uint8_t> ciphertext = {});

  std::size_t size() const noexcept { return samples_.rows(); }
  std::size_t num_samples() const noexcept { return samples_.cols(); }

  /// Rows a `prefix` analysis argument selects: min(prefix, size),
  /// where 0 means the whole set.
  std::size_t prefix_rows(std::size_t prefix) const noexcept {
    return (prefix == 0 || prefix > size()) ? size() : prefix;
  }

  /// Read view of trace i (shared geometry, borrowed samples). The
  /// accessors are range-checked like the pre-SoA `.at()` storage was;
  /// the bulk kernels go through matrix() rows instead.
  power::TraceView trace(std::size_t i) const {
    return samples_.view(check(i));
  }
  /// Mutable access to trace i's samples for preprocessing passes
  /// (realignment, filtering).
  std::span<double> mutable_samples(std::size_t i) {
    return samples_.mutable_row(check(i));
  }
  std::span<const std::uint8_t> plaintext(std::size_t i) const {
    return {pt_.data() + check(i) * pt_stride_, pt_stride_};
  }
  std::span<const std::uint8_t> ciphertext(std::size_t i) const {
    return {ct_.data() + check(i) * ct_stride_, ct_stride_};
  }

  /// The contiguous n×m sample block, for bulk kernels.
  const power::SampleMatrix& matrix() const noexcept { return samples_; }

  /// Preallocate for n traces (no-op before the first add fixes strides).
  void reserve(std::size_t n);

  /// Restrict to the first n acquisitions (view semantics are not needed;
  /// MTD scans pass an explicit prefix length to the analysis instead).
  void truncate(std::size_t n);

  /// Drop all traces but keep capacity and geometry — lets the fused
  /// campaign reuse one chunk buffer with zero steady-state reallocation.
  void clear() noexcept;

 private:
  std::size_t check(std::size_t i) const {
    if (i >= size()) throw std::out_of_range("TraceSet: trace index");
    return i;
  }

  power::SampleMatrix samples_;
  std::size_t pt_stride_ = 0;
  std::size_t ct_stride_ = 0;
  std::vector<std::uint8_t> pt_;
  std::vector<std::uint8_t> ct_;
};

}  // namespace qdi::dpa
