// Correlation Power Analysis (Brier/Clavier/Olivier style), the
// natural successor of the paper's difference-of-means DPA: instead of
// splitting traces on one predicted bit, the attacker correlates each
// trace sample with a multi-bit leakage *model* of the predicted
// intermediate (here: Hamming weight, which matches the dual-rail
// charge model — each set bit fires its rail-1 net).
//
// Included because the paper's eq. 12 predicts exactly the per-bit
// charge differences a Hamming-weight model aggregates; comparing DPA
// and CPA on the same layouts is a natural extension experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "qdi/dpa/trace_set.hpp"

namespace qdi::dpa {

/// Leakage model: maps (plaintext, guess) to a predicted real-valued
/// leakage (e.g. Hamming weight of an intermediate).
using LeakageModel =
    std::function<double(std::span<const std::uint8_t> plaintext, unsigned guess)>;

/// Hamming weight of SBOX(plaintext[byte] ^ guess).
LeakageModel aes_sbox_hw_model(int byte);
/// Hamming weight of plaintext[byte] ^ guess (first-round key addition).
LeakageModel aes_xor_hw_model(int byte);
/// Hamming weight of DES SBOX<box>(p6 ^ guess).
LeakageModel des_sbox_hw_model(int box);

struct CpaResult {
  std::vector<double> correlation;  ///< max-|rho| per guess
  unsigned best_guess = 0;
  double best_rho = 0.0;
  double second_rho = 0.0;
  std::size_t best_sample = 0;  ///< sample index of the best guess's peak

  double margin() const noexcept {
    return second_rho > 0.0 ? best_rho / second_rho : 0.0;
  }
  std::size_t rank_of(unsigned key) const;
};

/// Full CPA: for every guess, the maximum absolute Pearson correlation
/// over samples (optionally windowed) between the model prediction and
/// the trace value. `prefix` limits the trace count (0 = all).
CpaResult cpa_attack(const TraceSet& ts, const LeakageModel& model,
                     unsigned num_guesses, std::size_t prefix = 0,
                     std::size_t window_lo = 0, std::size_t window_hi = 0);

/// Correlation trace rho[j] for a single guess (useful for plotting and
/// for validating eq. 12's predicted leak location).
std::vector<double> cpa_correlation_trace(const TraceSet& ts,
                                          const LeakageModel& model,
                                          unsigned guess,
                                          std::size_t prefix = 0);

}  // namespace qdi::dpa
