// Correlation Power Analysis (Brier/Clavier/Olivier style), the
// natural successor of the paper's difference-of-means DPA: instead of
// splitting traces on one predicted bit, the attacker correlates each
// trace sample with a multi-bit leakage *model* of the predicted
// intermediate (here: Hamming weight, which matches the dual-rail
// charge model — each set bit fires its rail-1 net).
//
// Included because the paper's eq. 12 predicts exactly the per-bit
// charge differences a Hamming-weight model aggregates; comparing DPA
// and CPA on the same layouts is a natural extension experiment.
//
// The batch entry points below are thin wrappers over the streaming
// engine in online.hpp (dpa::OnlineCpa): one pass over the trace matrix
// accumulates the sums for ALL guesses at once, so batch and online
// results agree by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "qdi/dpa/indexed_fn.hpp"
#include "qdi/dpa/trace_set.hpp"

namespace qdi::dpa {

/// Leakage model: maps (plaintext, guess) to a predicted real-valued
/// leakage (e.g. Hamming weight of an intermediate).
///
/// Like SelectionFn, an IndexedFn: the classic models declare
/// themselves byte-indexed — a pure function of ONE plaintext byte and
/// the guess — so the streaming engine tabulates model(v, g) over all
/// 256 byte values once and never calls a std::function per trace.
/// Models built from plain lambdas take the generic scalar path.
using LeakageModel = IndexedFn<double>;

/// Hamming weight of SBOX(plaintext[byte] ^ guess).
LeakageModel aes_sbox_hw_model(int byte);
/// Hamming weight of plaintext[byte] ^ guess (first-round key addition).
LeakageModel aes_xor_hw_model(int byte);
/// Hamming weight of DES SBOX<box>(p6 ^ guess).
LeakageModel des_sbox_hw_model(int box);

struct CpaResult {
  std::vector<double> correlation;  ///< max-|rho| per guess
  unsigned best_guess = 0;
  double best_rho = 0.0;
  double second_rho = 0.0;
  std::size_t best_sample = 0;  ///< sample index of the best guess's peak

  double margin() const noexcept {
    return second_rho > 0.0 ? best_rho / second_rho : 0.0;
  }
  /// Rank of a reference guess: the number of guesses with STRICTLY
  /// greater correlation. Ties rank below the reference — guesses whose
  /// model columns are numerically identical (e.g. ghost keys of a
  /// degenerate model) never push the true key down, independent of
  /// float comparison order.
  std::size_t rank_of(unsigned key) const;
};

/// Full CPA: for every guess, the maximum absolute Pearson correlation
/// over samples (optionally windowed) between the model prediction and
/// the trace value. `prefix` limits the trace count (0 = all).
CpaResult cpa_attack(const TraceSet& ts, const LeakageModel& model,
                     unsigned num_guesses, std::size_t prefix = 0,
                     std::size_t window_lo = 0, std::size_t window_hi = 0);

/// Correlation trace rho[j] for a single guess (useful for plotting and
/// for validating eq. 12's predicted leak location).
std::vector<double> cpa_correlation_trace(const TraceSet& ts,
                                          const LeakageModel& model,
                                          unsigned guess,
                                          std::size_t prefix = 0);

/// CPA measurements-to-disclosure: the smallest prefix length starting
/// at `start` from which the reference guess holds rank 0 (with a
/// strictly positive peak) at every probed prefix up to the full set,
/// scanned in `step` increments. One streaming pass over the trace
/// matrix — each probe is a finalize of the running sums, not a
/// re-attack. Returns 0 if never stably recovered.
std::size_t cpa_measurements_to_disclosure(const TraceSet& ts,
                                           const LeakageModel& model,
                                           unsigned num_guesses,
                                           unsigned correct_key,
                                           std::size_t start = 8,
                                           std::size_t step = 8,
                                           std::size_t window_lo = 0,
                                           std::size_t window_hi = 0);

}  // namespace qdi::dpa
