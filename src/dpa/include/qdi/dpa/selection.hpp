// Selection functions D — section IV of the paper:
//
//   DES:  D(C1, P6, K0) = SBOX1(P6 xor K0)(C1)
//   AES:  D(C1, P8, K8) = XOR(P8, K8)(C1)
//
// A selection function maps (plaintext, key guess) to the predicted value
// of one intermediate bit; DPA splits the trace set on that bit (eq. 7).
//
// SelectionFn is an IndexedFn rather than a bare std::function so that
// the classic D-functions can declare what they actually are: a pure
// function of ONE plaintext byte and the guess — which the streaming
// engine (dpa::OnlineDpa) turns into a per-guess decision table with no
// std::function call on the per-trace hot path. A SelectionFn built
// from a plain lambda still works everywhere.
#pragma once

#include "qdi/dpa/indexed_fn.hpp"

namespace qdi::dpa {

/// D(plaintext, key_guess) in {0, 1}.
using SelectionFn = IndexedFn<int>;

/// AES first-round key addition: bit `bit` of plaintext[byte] ^ guess
/// (the paper's "XOR = a xor function of AES with 8-bit output").
SelectionFn aes_xor_selection(int byte, int bit);

/// AES first-round SubBytes output: bit `bit` of SBOX(plaintext[byte] ^
/// guess) — the more diffusive classic target, used by the ablation
/// benches.
SelectionFn aes_sbox_selection(int byte, int bit);

/// DES SBOX1 first-round output bit. The plaintext span carries the 6-bit
/// S-box input in plaintext[0] (as produced by the DES slice acquisition);
/// guess is the 6-bit subkey chunk.
SelectionFn des_sbox_selection(int box, int bit);

}  // namespace qdi::dpa
