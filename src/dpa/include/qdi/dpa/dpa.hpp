// The DPA algorithm, eqs. 7-9 of the paper (after Messerges et al.):
// split the power signals into S0 = {S_ij | D = 0} and S1 = {S_ij | D=1},
// average each set (eq. 8), and form the bias signal T[j] = A0[j] - A1[j]
// (eq. 9). "If the DPA bias signal shows important peaks, it means there
// is a strong correlation between the D function and the power signal."
#pragma once

#include <cstddef>
#include <vector>

#include "qdi/dpa/selection.hpp"
#include "qdi/dpa/trace_set.hpp"

namespace qdi::dpa {

/// Sample window for peak statistics. Real attacks window the analysis
/// to the time span of the targeted operation (here: the evaluation
/// phase where the attacked intermediate switches); the diffuse bias a
/// globally-unbalanced layout produces in the return-to-zero and
/// acknowledge phases would otherwise drown the aligned peak.
struct SampleWindow {
  std::size_t lo = 0;
  std::size_t hi = 0;  ///< exclusive; 0 = to the end

  bool contains(std::size_t j) const noexcept {
    return j >= lo && (hi == 0 || j < hi);
  }
};

struct BiasResult {
  std::vector<double> bias;   ///< T[j] (always full-length)
  std::size_t n0 = 0;         ///< |S0|
  std::size_t n1 = 0;         ///< |S1|
  double peak = 0.0;          ///< max_j |T[j]| within the window
  std::size_t peak_index = 0; ///< argmax within the window
  double integrated = 0.0;    ///< sum_j |T[j]| within the window
};

/// Bias signal for a fixed key guess. Uses the first `prefix` traces
/// (0 = all); peak statistics restricted to `window`.
BiasResult dpa_bias(const TraceSet& ts, const SelectionFn& d, unsigned guess,
                    std::size_t prefix = 0, SampleWindow window = {});

struct KeyRecoveryResult {
  std::vector<double> guess_peak;  ///< per-guess max |T|
  unsigned best_guess = 0;
  double best_peak = 0.0;
  double second_peak = 0.0;
  /// Nearest-rival ratio (>1 means the best guess stands out).
  double margin() const noexcept {
    return second_peak > 0.0 ? best_peak / second_peak : 0.0;
  }
  /// Rank of a reference key (0 = recovered exactly): the number of
  /// guesses with STRICTLY greater peak. Ties rank below the reference,
  /// so numerically identical guess columns never demote the true key,
  /// independent of float comparison order.
  std::size_t rank_of(unsigned key) const;
};

/// Exhaust `num_guesses` key hypotheses and rank them by bias peak.
KeyRecoveryResult recover_key(const TraceSet& ts, const SelectionFn& d,
                              unsigned num_guesses, std::size_t prefix = 0,
                              SampleWindow window = {});

/// Multi-bit DPA: sum of per-bit bias peaks for each guess (the "d-bit
/// attack" refinement of Messerges/Bevan cited by the paper as "ways to
/// succeed the attack with a minimum of random values").
KeyRecoveryResult recover_key_multibit(
    const TraceSet& ts, const std::vector<SelectionFn>& bits,
    unsigned num_guesses, std::size_t prefix = 0, SampleWindow window = {});

/// Measurements-to-disclosure: the smallest prefix length starting at
/// `start` from which the correct key holds rank 0 for every probed
/// prefix up to the full set (scanned in `step` increments). Returns 0 if
/// the key is never stably recovered. One streaming pass over the trace
/// matrix — each probe finalizes the running sums, not a re-attack.
std::size_t measurements_to_disclosure(const TraceSet& ts, const SelectionFn& d,
                                       unsigned num_guesses, unsigned correct_key,
                                       std::size_t start = 8, std::size_t step = 8,
                                       SampleWindow window = {});

}  // namespace qdi::dpa
