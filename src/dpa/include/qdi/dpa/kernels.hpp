// Runtime-dispatched SIMD kernels for the streaming analysis engine.
//
// The ingest hot loops of dpa::OnlineCpa / dpa::OnlineDpa (per-sample
// moments, the guesses x m rank update, the DPA partitioned sums) and
// the finalize-side covariance scans are factored into this table of
// function pointers with portable, SSE2, and AVX2 arms. The arm is
// picked ONCE at load via util::cpu_features() — the same pattern as
// util::Sha256's SHA-NI compressor — and QDI_FORCE_PORTABLE pins the
// portable arm everywhere.
//
// Determinism contract (why the arms are interchangeable): every
// kernel vectorizes over the SAMPLE axis j only. Each accumulator cell
// (g, j) still receives its contributions in strict trace order, one
// rounding per add and one per multiply (mul-then-add, never FMA —
// the arms exclude "fma" from their target sets so the compiler cannot
// contract), and the scalar tail performs the identical operations on
// the identical values. There is no reassociation anywhere, so the
// SSE2 and AVX2 arms are BIT-IDENTICAL to the portable arm — a
// property tests/test_dpa_kernels.cpp asserts on awkward geometries
// rather than assumes.
#pragma once

#include <cstddef>

namespace qdi::dpa::kernels {

/// One implementation of every analysis hot loop. All pointers are
/// non-null in any table returned by table() / active().
struct KernelTable {
  const char* name;  ///< "portable" / "sse2" / "avx2"

  /// CPA per-sample moments: for each trace c in order,
  /// sum_s[j] += s[j]; sum_s2[j] += s[j]*s[j].
  void (*cpa_moments)(double* sum_s, double* sum_s2,
                      const double* const* rows, std::size_t cnt,
                      std::size_t m);

  /// CPA rank update: for each guess g, dst = sum_hs + g*m; for each
  /// trace c in order: h = hyp[c][g]; if h == 0.0 the trace is skipped
  /// (identical skip decision in every arm); else dst[j] += h * s[j].
  void (*cpa_rank_update)(double* sum_hs, const double* const* rows,
                          const double* const* hyp, std::size_t cnt,
                          unsigned guesses, std::size_t m);

  /// dst[j] += src[j] (the DPA shared per-sample sum, one trace row).
  void (*row_add)(double* dst, const double* src, std::size_t m);

  /// DPA partitioned sum, branch-free: for each trace c in order,
  /// dst[j] += mask[c] * rows[c][j], with mask[c] in {0.0, 1.0}.
  /// Bit-identical to the historical "if (d) dst[j] += s[j]" loop:
  /// 1.0*x == x exactly, and adding the resulting +/-0.0 of a masked-
  /// out trace never changes a finite accumulator (an accumulator
  /// seeded with +0.0 can never become -0.0 under round-to-nearest).
  void (*masked_sum)(double* dst, const double* const* rows,
                     const double* mask, std::size_t cnt, std::size_t m);

  /// var[j] = sum_s2[j] - sum_s[j] * (sum_s[j] / nn) is NOT what we
  /// compute — the scan keeps the engine's historical expression
  /// var[j] = sum_s2[j] - sum_s[j] * sum_s[j] / nn (mul, then divide,
  /// then subtract) so cached variances match the pre-kernel bits.
  void (*variance)(double* var, const double* sum_s, const double* sum_s2,
                   double nn, std::size_t m);

  /// Signed correlation scan for one guess over a sample range:
  /// cov = hs[j] - sum_h * sum_s[j] / nn;
  /// rho[j] = var_s[j] > 0.0 ? cov / sqrt(var_h * var_s[j]) : 0.0.
  /// The zeroed lanes can never win finalize()'s strict max scan, so
  /// the select reproduces the historical "skip non-positive variance"
  /// semantics bit-for-bit.
  void (*corr_scan)(double* rho, const double* hs, const double* sum_s,
                    const double* var_s, double sum_h, double var_h,
                    double nn, std::size_t m);
};

enum class Kind { Portable, Sse2, Avx2 };

/// True when this build/CPU can run the given arm (Portable: always).
bool supported(Kind k) noexcept;

/// The named arm, or nullptr when unsupported on this build/CPU.
/// Differential tests use this to pit the arms against each other.
const KernelTable* table(Kind k) noexcept;

/// The arm every accumulator uses by default: the widest supported
/// one, picked once at load; QDI_FORCE_PORTABLE pins Portable.
const KernelTable& active() noexcept;

}  // namespace qdi::dpa::kernels
