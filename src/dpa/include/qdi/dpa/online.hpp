// Streaming analysis engine — single-pass, all-guess CPA and DPA.
//
// Mangard-style incremental correlation: a Pearson correlation (and a
// difference-of-means bias) is a function of a handful of running sums,
// so an attack over ANY trace-count prefix can be emitted at ANY point
// of one linear pass over the acquisitions. The accumulators below hold
//
//   shared across all guesses:  n, sum_s[j], sum_s2[j]
//   per guess (CPA):            sum_h[g], sum_h2[g], sum_hs[g][j]
//   per guess+bit (DPA):        n1[b][g], sum1[b][g][j]
//
// and update them per added trace with a blocked, GEMM-like rank-B
// kernel over the contiguous SoA trace matrix. The per-sample sums are
// computed ONCE instead of once per guess (the batch path re-derived
// them 256 times), and the classic byte-indexed leakage models become a
// 256-entry-per-guess hypothesis LUT — no std::function call ever runs
// on the per-trace hot path. Models/selections built from plain lambdas
// still work: they take a scalar evaluation per (trace, guess), but the
// shared sums stay hoisted.
//
// finalize()/recover() read the running sums without disturbing them,
// so measurements-to-disclosure curves and key-rank trajectories are
// byproducts of one pass: add traces up to each probe point, emit, and
// keep going — O(n·m·guesses) total instead of O(prefixes·n·m·guesses).
// Accumulation order is trace order regardless of blocking, so add()
// one-at-a-time, add_prefix() in bulk, and the fused campaign's chunked
// feed all produce bit-identical results.
//
// The hot loops themselves live in qdi/dpa/kernels.hpp: a table of
// portable / SSE2 / AVX2 implementations picked once at load. Every
// arm vectorizes over the sample axis only — each accumulator cell
// receives contributions in trace order with no reassociation and no
// FMA contraction — so the dispatch choice (and QDI_FORCE_PORTABLE)
// never changes a single result bit.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "qdi/dpa/cpa.hpp"
#include "qdi/dpa/dpa.hpp"
#include "qdi/dpa/kernels.hpp"
#include "qdi/dpa/selection.hpp"
#include "qdi/dpa/trace_set.hpp"

namespace qdi::dpa {

/// Named failure of OnlineCpa/OnlineDpa::restore_state — the hardened
/// deserialization contract the crash-safe shard runtime depends on.
/// Every malformed buffer (truncated at any byte, trailing garbage, a
/// foreign magic, or a snapshot taken under different guess/bit/sample
/// geometry) is rejected with the matching kind, and the accumulator is
/// left exactly as it was (restore parses into temporaries and commits
/// only after every check passed).
class StateError : public std::runtime_error {
 public:
  enum class Kind {
    Truncated,  ///< buffer ends before the declared fields
    Oversized,  ///< trailing bytes after the last field
    BadMagic,   ///< not a snapshot of this accumulator type
    Geometry,   ///< guess / selection-bit / sample-count mismatch
  };

  StateError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Stability accumulator of a measurements-to-disclosure scan: feed the
/// (success, prefix) outcome of each probe in increasing prefix order;
/// value() is the earliest prefix from which EVERY probe so far
/// succeeded (0 if the tail is not all-success). Shared by the batch
/// MTD functions and the fused campaign so the stability rule cannot
/// drift between them.
class MtdScan {
 public:
  void probe(bool success, std::size_t prefix) noexcept {
    if (success && candidate_ == 0) candidate_ = prefix;
    if (!success) candidate_ = 0;
  }
  std::size_t value() const noexcept { return candidate_; }

 private:
  std::size_t candidate_ = 0;
};

/// All-guess streaming CPA accumulator.
class OnlineCpa {
 public:
  /// The hypothesis LUT (byte-indexed models) is tabulated here, once.
  OnlineCpa(LeakageModel model, unsigned num_guesses);

  /// Feed one acquisition. Sample geometry is fixed by the first trace.
  void add(std::span<const std::uint8_t> plaintext,
           std::span<const double> samples);
  /// Feed rows [lo, hi) of a trace set through the blocked kernel.
  void add_prefix(const TraceSet& ts, std::size_t lo, std::size_t hi);

  std::size_t count() const noexcept { return n_; }
  unsigned num_guesses() const noexcept { return guesses_; }

  /// Emit the CPA result for the traces fed so far (optionally windowed
  /// to samples [window_lo, window_hi)). Non-destructive: keep adding
  /// traces afterwards for the next prefix probe.
  CpaResult finalize(std::size_t window_lo = 0,
                     std::size_t window_hi = 0) const;

  /// Full correlation trace rho[j] of one guess at the current prefix.
  std::vector<double> correlation_trace(unsigned guess) const;

  /// Fold another accumulator's traces into this one. Every statistic is
  /// an additive running sum, so merging N disjoint partial passes is
  /// equivalent to one pass over the union — up to floating-point
  /// re-association (sums are added blockwise instead of trace by
  /// trace), which perturbs results at the 1e-12 level, not the
  /// attack-outcome level (tests/test_online_merge.cpp). Both sides must
  /// share num_guesses and sample geometry (an empty side merges
  /// trivially); `other` must have been built over the same leakage
  /// model for the result to mean anything — that cannot be checked
  /// here. Throws std::invalid_argument on mismatched geometry.
  void merge(const OnlineCpa& other);

  /// Compact byte snapshot of the accumulator state (counts + running
  /// sums; the model is NOT serialized — it is code, not data).
  /// restore_state() requires an accumulator constructed with the same
  /// model and num_guesses, and replaces its state wholesale. Round-trip
  /// is exact: serialize/restore reproduces bit-identical results. A
  /// truncated, oversized, foreign, or geometry-mismatched buffer throws
  /// StateError with the matching kind and leaves this accumulator
  /// untouched (tests/test_online_merge.cpp fuzzes every truncation
  /// length).
  std::vector<std::uint8_t> serialize_state() const;
  void restore_state(std::span<const std::uint8_t> bytes);

  /// Drop all accumulated traces but keep the model, LUT, and (once
  /// fixed) the sample geometry and capacity — lets the thread-sharded
  /// campaign feed recycle one accumulator per block with zero
  /// steady-state allocation.
  void reset() noexcept;

  /// Pin a specific kernel arm (differential-testing seam; production
  /// accumulators keep the load-time kernels::active() pick). The arms
  /// are bit-identical, so this never changes results.
  void set_kernels(const kernels::KernelTable& k) noexcept {
    kernels_ = &k;
    var_valid_ = false;
  }
  const char* kernel_name() const noexcept { return kernels_->name; }

 private:
  void ensure_geometry(std::size_t m);
  /// Hypothesis row h[g] for one trace: a LUT row (byte-indexed) or the
  /// freshly evaluated scratch row (generic).
  const double* hyp_row(std::span<const std::uint8_t> plaintext);
  void ingest(const double* const* rows, const double* const* hyp,
              std::size_t cnt);
  /// The cached per-sample variance scan shared by finalize() and
  /// correlation_trace(); recomputed only after ingest/merge/restore
  /// invalidated it, so repeated prefix probes in MTD scans pay it once.
  const std::vector<double>& var_s_cache() const;

  LeakageModel model_;
  unsigned guesses_;
  const kernels::KernelTable* kernels_ = &kernels::active();
  std::size_t m_ = 0;
  std::size_t n_ = 0;
  std::vector<double> lut_;       ///< hyp[v*guesses + g], byte-indexed models
  std::vector<double> scratch_;   ///< one hypothesis row, generic models
  std::vector<double> sum_s_, sum_s2_;  ///< per sample, shared by all guesses
  std::vector<double> sum_h_, sum_h2_;  ///< per guess
  std::vector<double> sum_hs_;          ///< guesses × m
  mutable std::vector<double> var_cache_;  ///< per-sample variances at n_
  mutable std::vector<double> rho_scratch_;  ///< finalize() scan buffer
  mutable bool var_valid_ = false;
};

/// All-guess, multi-bit streaming difference-of-means DPA accumulator.
class OnlineDpa {
 public:
  OnlineDpa(std::vector<SelectionFn> bits, unsigned num_guesses);

  void add(std::span<const std::uint8_t> plaintext,
           std::span<const double> samples);
  void add_prefix(const TraceSet& ts, std::size_t lo, std::size_t hi);

  std::size_t count() const noexcept { return n_; }
  unsigned num_guesses() const noexcept { return guesses_; }
  std::size_t num_bits() const noexcept { return bits_.size(); }

  /// Bias signal T[j] = A0[j] - A1[j] of one (guess, bit) at the current
  /// prefix, with peak statistics restricted to `window`.
  BiasResult bias(unsigned guess, std::size_t bit = 0,
                  SampleWindow window = {}) const;

  /// Rank all guesses by (summed, if multi-bit) bias peak at the current
  /// prefix — the streaming recover_key/recover_key_multibit.
  KeyRecoveryResult recover(SampleWindow window = {}) const;

  /// Rank all guesses by the bias peak of ONE bit — what the MTD scan
  /// uses (the paper's historical single-bit D-function attack).
  KeyRecoveryResult recover_single(std::size_t bit,
                                   SampleWindow window = {}) const;

  /// Fold another accumulator's traces into this one; see
  /// OnlineCpa::merge for the contract (here both sides must also share
  /// the selection-bit count).
  void merge(const OnlineDpa& other);

  /// State snapshot / restore; see OnlineCpa (same StateError contract:
  /// malformed buffers are rejected wholesale, the accumulator keeps its
  /// prior state). restore_state() requires the same selection bits and
  /// num_guesses at construction.
  std::vector<std::uint8_t> serialize_state() const;
  void restore_state(std::span<const std::uint8_t> bytes);

  /// Drop accumulated traces, keep selections/LUT/geometry; see
  /// OnlineCpa::reset().
  void reset() noexcept;

  /// Pin a kernel arm; see OnlineCpa::set_kernels().
  void set_kernels(const kernels::KernelTable& k) noexcept { kernels_ = &k; }
  const char* kernel_name() const noexcept { return kernels_->name; }

 private:
  void ensure_geometry(std::size_t m);
  void ingest(const double* const* rows, const std::uint8_t* const* pts,
              std::size_t cnt);
  double peak_of(unsigned guess, std::size_t bit, SampleWindow window) const;

  std::vector<SelectionFn> bits_;
  unsigned guesses_;
  const kernels::KernelTable* kernels_ = &kernels::active();
  std::size_t m_ = 0;
  std::size_t n_ = 0;
  bool lut_ok_ = false;          ///< all selection bits byte-indexed
  std::vector<double> lut_;      ///< d[(b*256 + v)*guesses + g] in {0.0, 1.0}
  std::vector<double> scratch_;  ///< one decision row, generic selections
  std::vector<double> sum_s_;       ///< per sample, shared
  std::vector<std::uint32_t> n1_;   ///< bits × guesses
  std::vector<double> sum1_;        ///< bits × guesses × m
};

}  // namespace qdi::dpa
