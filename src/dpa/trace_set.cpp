#include "qdi/dpa/trace_set.hpp"

#include <cassert>

namespace qdi::dpa {

void TraceSet::add(power::PowerTrace trace, std::vector<std::uint8_t> plaintext,
                   std::vector<std::uint8_t> ciphertext) {
  assert(traces_.empty() || trace.size() == traces_.front().size());
  traces_.push_back(std::move(trace));
  plaintexts_.push_back(std::move(plaintext));
  ciphertexts_.push_back(std::move(ciphertext));
}

void TraceSet::truncate(std::size_t n) {
  if (n >= traces_.size()) return;
  traces_.resize(n);
  plaintexts_.resize(n);
  ciphertexts_.resize(n);
}

}  // namespace qdi::dpa
