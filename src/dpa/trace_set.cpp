#include "qdi/dpa/trace_set.hpp"

#include <stdexcept>

namespace qdi::dpa {

void TraceSet::add(const power::PowerTrace& trace,
                   std::vector<std::uint8_t> plaintext,
                   std::vector<std::uint8_t> ciphertext) {
  add(power::TraceView(trace), plaintext, ciphertext);
}

void TraceSet::add(power::TraceView trace,
                   std::span<const std::uint8_t> plaintext,
                   std::span<const std::uint8_t> ciphertext) {
  if (samples_.rows() == 0) {
    pt_stride_ = plaintext.size();
    ct_stride_ = ciphertext.size();
  } else if (trace.size() != num_samples() || plaintext.size() != pt_stride_ ||
             ciphertext.size() != ct_stride_) {
    throw std::invalid_argument(
        "TraceSet::add: acquisition geometry differs from the first trace");
  }
  samples_.append(trace);
  power::internal::append_possibly_aliasing(pt_, plaintext.data(),
                                            plaintext.size());
  power::internal::append_possibly_aliasing(ct_, ciphertext.data(),
                                            ciphertext.size());
}

void TraceSet::reserve(std::size_t n) {
  samples_.reserve_rows(n);
  pt_.reserve(n * pt_stride_);
  ct_.reserve(n * ct_stride_);
}

void TraceSet::truncate(std::size_t n) {
  if (n >= samples_.rows()) return;
  samples_.truncate(n);
  pt_.resize(n * pt_stride_);
  ct_.resize(n * ct_stride_);
}

void TraceSet::clear() noexcept {
  samples_.clear();
  pt_.clear();
  ct_.clear();
}

}  // namespace qdi::dpa
