#include "qdi/dpa/selection.hpp"

#include <cassert>

#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"

namespace qdi::dpa {

SelectionFn aes_xor_selection(int byte, int bit) {
  assert(bit >= 0 && bit < 8);
  return SelectionFn::byte_indexed(byte, [bit](std::uint8_t p, unsigned guess) {
    const std::uint8_t x = static_cast<std::uint8_t>(p ^ guess);
    return (x >> bit) & 1;
  });
}

SelectionFn aes_sbox_selection(int byte, int bit) {
  assert(bit >= 0 && bit < 8);
  return SelectionFn::byte_indexed(byte, [bit](std::uint8_t p, unsigned guess) {
    const std::uint8_t x = static_cast<std::uint8_t>(p ^ guess);
    return (crypto::aes_sbox(x) >> bit) & 1;
  });
}

SelectionFn des_sbox_selection(int box, int bit) {
  assert(bit >= 0 && bit < 4);
  return SelectionFn::byte_indexed(0, [box, bit](std::uint8_t p, unsigned guess) {
    const std::uint8_t six = static_cast<std::uint8_t>((p ^ guess) & 0x3f);
    return (crypto::des_sbox(box, six) >> bit) & 1;
  });
}

}  // namespace qdi::dpa
