#include "qdi/dpa/online.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace qdi::dpa {

namespace {

/// Traces per rank-B kernel invocation. Small enough that a block of
/// sample rows stays cache-resident while every guess sweeps it.
constexpr std::size_t kBlock = 16;

void window_stats(BiasResult& r, SampleWindow window) {
  r.peak = 0.0;
  r.peak_index = window.lo;
  r.integrated = 0.0;
  for (std::size_t j = 0; j < r.bias.size(); ++j) {
    if (!window.contains(j)) continue;
    const double a = std::fabs(r.bias[j]);
    r.integrated += a;
    if (a > r.peak) {
      r.peak = a;
      r.peak_index = j;
    }
  }
}

void rank_finalize(KeyRecoveryResult& r, unsigned num_guesses) {
  r.best_guess = static_cast<unsigned>(
      std::max_element(r.guess_peak.begin(), r.guess_peak.end()) -
      r.guess_peak.begin());
  r.best_peak = r.guess_peak[r.best_guess];
  r.second_peak = 0.0;
  for (unsigned g = 0; g < num_guesses; ++g)
    if (g != r.best_guess)
      r.second_peak = std::max(r.second_peak, r.guess_peak[g]);
}

}  // namespace

// ---- OnlineCpa -------------------------------------------------------------

OnlineCpa::OnlineCpa(LeakageModel model, unsigned num_guesses)
    : model_(std::move(model)), guesses_(num_guesses) {
  assert(model_);
  assert(guesses_ > 0);
  sum_h_.assign(guesses_, 0.0);
  sum_h2_.assign(guesses_, 0.0);
  if (model_.is_byte_indexed()) {
    lut_.resize(256 * static_cast<std::size_t>(guesses_));
    for (unsigned v = 0; v < 256; ++v)
      for (unsigned g = 0; g < guesses_; ++g)
        lut_[v * guesses_ + g] =
            model_.eval_byte(static_cast<std::uint8_t>(v), g);
  } else {
    scratch_.resize(guesses_);
  }
}

void OnlineCpa::ensure_geometry(std::size_t m) {
  if (!sum_s_.empty() || n_ > 0) {
    if (m != m_)
      throw std::invalid_argument(
          "OnlineCpa: sample count differs from the first trace");
    return;
  }
  m_ = m;
  sum_s_.assign(m_, 0.0);
  sum_s2_.assign(m_, 0.0);
  sum_hs_.assign(static_cast<std::size_t>(guesses_) * m_, 0.0);
}

void OnlineCpa::ingest(const double* const* rows, const double* const* hyp,
                       std::size_t cnt) {
  // Shared per-sample moments (trace order — identical whatever the
  // caller's blocking), then the per-guess moments, then the rank-cnt
  // update of the guesses × m products matrix. The sample-axis loops
  // run through the dispatched kernel table; per (g, j) cell the adds
  // happen in trace order in every arm, so neither blocking nor the
  // dispatch choice changes the floating-point result.
  kernels_->cpa_moments(sum_s_.data(), sum_s2_.data(), rows, cnt, m_);
  for (std::size_t c = 0; c < cnt; ++c) {
    const double* h = hyp[c];
    for (unsigned g = 0; g < guesses_; ++g) {
      sum_h_[g] += h[g];
      sum_h2_[g] += h[g] * h[g];
    }
  }
  kernels_->cpa_rank_update(sum_hs_.data(), rows, hyp, cnt, guesses_, m_);
  n_ += cnt;
  var_valid_ = false;
}

const double* OnlineCpa::hyp_row(std::span<const std::uint8_t> plaintext) {
  // Byte-indexed models: a LUT row, zero copies. Generic models: one
  // std::function evaluation per guess into scratch (the scalar
  // fallback; the shared per-sample sums stay hoisted either way).
  if (model_.is_byte_indexed()) {
    const auto v = plaintext[static_cast<std::size_t>(model_.byte())];
    return lut_.data() + static_cast<std::size_t>(v) * guesses_;
  }
  for (unsigned g = 0; g < guesses_; ++g) scratch_[g] = model_(plaintext, g);
  return scratch_.data();
}

void OnlineCpa::add(std::span<const std::uint8_t> plaintext,
                    std::span<const double> samples) {
  ensure_geometry(samples.size());
  const double* row = samples.data();
  const double* hyp = hyp_row(plaintext);
  ingest(&row, &hyp, 1);
}

void OnlineCpa::add_prefix(const TraceSet& ts, std::size_t lo, std::size_t hi) {
  hi = std::min(hi, ts.size());
  if (lo >= hi) return;
  ensure_geometry(ts.num_samples());
  // Generic models share the one scratch hypothesis row, so they feed
  // one trace per ingest; byte-indexed models block up rank-kBlock
  // updates of LUT rows.
  const std::size_t block = model_.is_byte_indexed() ? kBlock : 1;
  for (std::size_t t0 = lo; t0 < hi; t0 += block) {
    const std::size_t cnt = std::min(block, hi - t0);
    const double* rows[kBlock];
    const double* hyp[kBlock];
    for (std::size_t c = 0; c < cnt; ++c) {
      rows[c] = ts.matrix().row(t0 + c).data();
      hyp[c] = hyp_row(ts.plaintext(t0 + c));
    }
    ingest(rows, hyp, cnt);
  }
}

const std::vector<double>& OnlineCpa::var_s_cache() const {
  // Shared by finalize() and correlation_trace(): repeated prefix
  // probes of an MTD scan hit the cache until the next ingest (or
  // merge/restore) invalidates it.
  if (!var_valid_) {
    var_cache_.resize(m_);
    kernels_->variance(var_cache_.data(), sum_s_.data(), sum_s2_.data(),
                       static_cast<double>(n_), m_);
    var_valid_ = true;
  }
  return var_cache_;
}

CpaResult OnlineCpa::finalize(std::size_t window_lo,
                              std::size_t window_hi) const {
  CpaResult res;
  res.correlation.assign(guesses_, 0.0);
  if (n_ == 0 || m_ == 0) return res;
  const std::size_t hi = (window_hi == 0) ? m_ : std::min(window_hi, m_);
  const std::size_t span = hi > window_lo ? hi - window_lo : 0;
  const double nn = static_cast<double>(n_);
  const std::vector<double>& var_s = var_s_cache();
  rho_scratch_.resize(m_);

  for (unsigned g = 0; g < guesses_; ++g) {
    const double var_h = sum_h2_[g] - sum_h_[g] * sum_h_[g] / nn;
    double best = 0.0;
    std::size_t best_j = window_lo;
    if (var_h > 0.0 && span > 0) {
      const double* hs = sum_hs_.data() + static_cast<std::size_t>(g) * m_;
      double* rho = rho_scratch_.data();
      // Zero-variance samples scan as rho == 0.0, which can never win
      // the strict max below — the same candidates as the historical
      // "skip non-positive variance" loop, peak values bit-identical.
      kernels_->corr_scan(rho, hs + window_lo, sum_s_.data() + window_lo,
                          var_s.data() + window_lo, sum_h_[g], var_h, nn,
                          span);
      for (std::size_t j = 0; j < span; ++j) {
        const double a = std::fabs(rho[j]);
        if (a > best) {
          best = a;
          best_j = window_lo + j;
        }
      }
    }
    res.correlation[g] = best;
    if (best > res.best_rho) {
      res.best_rho = best;
      res.best_guess = g;
      res.best_sample = best_j;
    }
  }
  res.second_rho = 0.0;
  for (unsigned g = 0; g < guesses_; ++g)
    if (g != res.best_guess)
      res.second_rho = std::max(res.second_rho, res.correlation[g]);
  return res;
}

std::vector<double> OnlineCpa::correlation_trace(unsigned guess) const {
  assert(guess < guesses_);
  std::vector<double> rho(m_, 0.0);
  if (n_ == 0) return rho;
  const double nn = static_cast<double>(n_);
  const double var_h = sum_h2_[guess] - sum_h_[guess] * sum_h_[guess] / nn;
  if (var_h <= 0.0) return rho;
  const std::vector<double>& var_s = var_s_cache();
  const double* hs = sum_hs_.data() + static_cast<std::size_t>(guess) * m_;
  kernels_->corr_scan(rho.data(), hs, sum_s_.data(), var_s.data(),
                      sum_h_[guess], var_h, nn, m_);
  return rho;
}

void OnlineCpa::reset() noexcept {
  n_ = 0;
  std::fill(sum_s_.begin(), sum_s_.end(), 0.0);
  std::fill(sum_s2_.begin(), sum_s2_.end(), 0.0);
  std::fill(sum_h_.begin(), sum_h_.end(), 0.0);
  std::fill(sum_h2_.begin(), sum_h2_.end(), 0.0);
  std::fill(sum_hs_.begin(), sum_hs_.end(), 0.0);
  var_valid_ = false;
}

// ---- OnlineDpa -------------------------------------------------------------

OnlineDpa::OnlineDpa(std::vector<SelectionFn> bits, unsigned num_guesses)
    : bits_(std::move(bits)), guesses_(num_guesses) {
  assert(!bits_.empty());
  assert(guesses_ > 0);
  n1_.assign(bits_.size() * static_cast<std::size_t>(guesses_), 0);
  lut_ok_ = std::all_of(bits_.begin(), bits_.end(),
                        [](const SelectionFn& d) { return d.is_byte_indexed(); });
  if (lut_ok_) {
    // Decisions are stored as {0.0, 1.0} doubles: the ingest kernel
    // turns them into a mask row and accumulates every set-1 trace
    // branch-free (dst[j] += mask * s[j]).
    lut_.resize(bits_.size() * 256 * static_cast<std::size_t>(guesses_));
    for (std::size_t b = 0; b < bits_.size(); ++b)
      for (unsigned v = 0; v < 256; ++v)
        for (unsigned g = 0; g < guesses_; ++g)
          lut_[(b * 256 + v) * guesses_ + g] =
              bits_[b].eval_byte(static_cast<std::uint8_t>(v), g) != 0 ? 1.0
                                                                       : 0.0;
  } else {
    // One decision row (bits × guesses): generic selections are fed one
    // trace per ingest, never blocked.
    scratch_.resize(bits_.size() * static_cast<std::size_t>(guesses_));
  }
}

void OnlineDpa::ensure_geometry(std::size_t m) {
  if (!sum_s_.empty() || n_ > 0) {
    if (m != m_)
      throw std::invalid_argument(
          "OnlineDpa: sample count differs from the first trace");
    return;
  }
  m_ = m;
  sum_s_.assign(m_, 0.0);
  sum1_.assign(bits_.size() * static_cast<std::size_t>(guesses_) * m_, 0.0);
}

void OnlineDpa::ingest(const double* const* rows,
                       const std::uint8_t* const* pts, std::size_t cnt) {
  assert(lut_ok_ || cnt == 1);  // generic selections share one scratch row
  const std::size_t nbits = bits_.size();
  for (std::size_t c = 0; c < cnt; ++c)
    kernels_->row_add(sum_s_.data(), rows[c], m_);
  // Branch-free partitioned sums: per (bit, guess) the {0.0, 1.0} LUT
  // decisions become a mask over the trace block and the kernel runs
  // dst[j] += mask[c] * s[j] with no data-dependent branch in the
  // sample loop. A masked-out trace adds a signed zero, which cannot
  // change any accumulator bit (see kernels.hpp), so this is
  // bit-identical to the historical "if (d) skip" loop.
  double mask[kBlock];
  for (std::size_t b = 0; b < nbits; ++b) {
    const auto byte =
        lut_ok_ ? static_cast<std::size_t>(bits_[b].byte()) : std::size_t{0};
    for (unsigned g = 0; g < guesses_; ++g) {
      double* dst = sum1_.data() +
                    (b * static_cast<std::size_t>(guesses_) + g) * m_;
      std::uint32_t ones = 0;
      for (std::size_t c = 0; c < cnt; ++c) {
        const double d = lut_ok_
                             ? lut_[(b * 256 + pts[c][byte]) * guesses_ + g]
                             : scratch_[b * guesses_ + g];
        mask[c] = d;
        ones += static_cast<std::uint32_t>(d);
      }
      n1_[b * guesses_ + g] += ones;
      kernels_->masked_sum(dst, rows, mask, cnt, m_);
    }
  }
  n_ += cnt;
}

void OnlineDpa::add(std::span<const std::uint8_t> plaintext,
                    std::span<const double> samples) {
  ensure_geometry(samples.size());
  if (!lut_ok_) {
    double* dst = scratch_.data();
    for (std::size_t b = 0; b < bits_.size(); ++b)
      for (unsigned g = 0; g < guesses_; ++g)
        dst[b * guesses_ + g] = bits_[b](plaintext, g) != 0 ? 1.0 : 0.0;
  }
  const double* row = samples.data();
  const std::uint8_t* pt = plaintext.data();
  ingest(&row, &pt, 1);
}

void OnlineDpa::add_prefix(const TraceSet& ts, std::size_t lo, std::size_t hi) {
  hi = std::min(hi, ts.size());
  if (lo >= hi) return;
  ensure_geometry(ts.num_samples());
  if (!lut_ok_) {
    for (std::size_t i = lo; i < hi; ++i)
      add(ts.plaintext(i), ts.matrix().row(i));
    return;
  }
  for (std::size_t t0 = lo; t0 < hi; t0 += kBlock) {
    const std::size_t cnt = std::min(kBlock, hi - t0);
    const double* rows[kBlock];
    const std::uint8_t* pts[kBlock];
    for (std::size_t c = 0; c < cnt; ++c) {
      rows[c] = ts.matrix().row(t0 + c).data();
      pts[c] = ts.plaintext(t0 + c).data();
    }
    ingest(rows, pts, cnt);
  }
}

BiasResult OnlineDpa::bias(unsigned guess, std::size_t bit,
                           SampleWindow window) const {
  assert(guess < guesses_ && bit < bits_.size());
  BiasResult r;
  const std::size_t idx = bit * static_cast<std::size_t>(guesses_) + guess;
  r.n1 = n1_[idx];
  r.n0 = n_ - r.n1;
  if (r.n0 == 0 || r.n1 == 0) {
    r.bias.assign(m_, 0.0);
    return r;
  }
  const double* s1 = sum1_.data() + idx * m_;
  const double inv0 = 1.0 / static_cast<double>(r.n0);
  const double inv1 = 1.0 / static_cast<double>(r.n1);
  r.bias.resize(m_);
  for (std::size_t j = 0; j < m_; ++j)
    r.bias[j] = (sum_s_[j] - s1[j]) * inv0 - s1[j] * inv1;
  window_stats(r, window);
  return r;
}

double OnlineDpa::peak_of(unsigned guess, std::size_t bit,
                          SampleWindow window) const {
  const std::size_t idx = bit * static_cast<std::size_t>(guesses_) + guess;
  const std::size_t c1 = n1_[idx];
  const std::size_t c0 = n_ - c1;
  if (c0 == 0 || c1 == 0) return 0.0;
  const double* s1 = sum1_.data() + idx * m_;
  const double inv0 = 1.0 / static_cast<double>(c0);
  const double inv1 = 1.0 / static_cast<double>(c1);
  double peak = 0.0;
  for (std::size_t j = 0; j < m_; ++j) {
    if (!window.contains(j)) continue;
    const double a = std::fabs((sum_s_[j] - s1[j]) * inv0 - s1[j] * inv1);
    if (a > peak) peak = a;
  }
  return peak;
}

KeyRecoveryResult OnlineDpa::recover(SampleWindow window) const {
  KeyRecoveryResult r;
  r.guess_peak.assign(guesses_, 0.0);
  for (unsigned g = 0; g < guesses_; ++g) {
    double sum = 0.0;
    for (std::size_t b = 0; b < bits_.size(); ++b)
      sum += peak_of(g, b, window);
    r.guess_peak[g] = sum;
  }
  rank_finalize(r, guesses_);
  return r;
}

// ---- merge + state serialization -------------------------------------------

namespace {

// Tiny little-endian byte codec for the accumulator snapshots. The
// format is an implementation detail shared by serialize_state and
// restore_state only — not a stable interchange format.
constexpr std::uint32_t kCpaMagic = 0x71647043;  // "qdpC"
constexpr std::uint32_t kDpaMagic = 0x71647044;  // "qdpD"

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_doubles(std::vector<std::uint8_t>& out,
                 const std::vector<double>& v) {
  put_u64(out, v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  out.insert(out.end(), p, p + v.size() * sizeof(double));
}

void put_u32s(std::vector<std::uint8_t>& out,
              const std::vector<std::uint32_t>& v) {
  put_u64(out, v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  out.insert(out.end(), p, p + v.size() * sizeof(std::uint32_t));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t u64() {
    if (bytes_.size() - pos_ < 8) truncated();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  // The element counts are length-prefixed and attacker-controlled, so
  // the bound checks divide instead of multiplying — `n * sizeof(T)`
  // on a hostile n would wrap around std::uint64_t and pass a `pos + n
  // * size > total` comparison that the buffer cannot actually satisfy.
  void doubles(std::vector<double>& out) {
    const std::uint64_t n = u64();
    if (n > (bytes_.size() - pos_) / sizeof(double)) truncated();
    out.resize(n);
    std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
  }

  void u32s(std::vector<std::uint32_t>& out) {
    const std::uint64_t n = u64();
    if (n > (bytes_.size() - pos_) / sizeof(std::uint32_t)) truncated();
    out.resize(n);
    std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(std::uint32_t));
    pos_ += n * sizeof(std::uint32_t);
  }

  void expect_end() const {
    if (pos_ != bytes_.size())
      throw StateError(StateError::Kind::Oversized,
                       "Online accumulator: state snapshot has trailing "
                       "bytes past the last field");
  }

 private:
  [[noreturn]] static void truncated() {
    throw StateError(StateError::Kind::Truncated,
                     "Online accumulator: state snapshot ends before the "
                     "declared fields");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void add_into(std::vector<double>& dst, const std::vector<double>& src) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

}  // namespace

void OnlineCpa::merge(const OnlineCpa& other) {
  if (other.guesses_ != guesses_)
    throw std::invalid_argument("OnlineCpa::merge: num_guesses differ");
  if (other.n_ == 0) return;
  if (n_ == 0) {
    ensure_geometry(other.m_);
  } else if (other.m_ != m_) {
    throw std::invalid_argument(
        "OnlineCpa::merge: sample geometry differs");
  }
  add_into(sum_s_, other.sum_s_);
  add_into(sum_s2_, other.sum_s2_);
  add_into(sum_h_, other.sum_h_);
  add_into(sum_h2_, other.sum_h2_);
  add_into(sum_hs_, other.sum_hs_);
  n_ += other.n_;
  var_valid_ = false;
}

std::vector<std::uint8_t> OnlineCpa::serialize_state() const {
  std::vector<std::uint8_t> out;
  put_u64(out, kCpaMagic);
  put_u64(out, guesses_);
  put_u64(out, m_);
  put_u64(out, n_);
  put_doubles(out, sum_s_);
  put_doubles(out, sum_s2_);
  put_doubles(out, sum_h_);
  put_doubles(out, sum_h2_);
  put_doubles(out, sum_hs_);
  return out;
}

void OnlineCpa::restore_state(std::span<const std::uint8_t> bytes) {
  // Parse into temporaries and commit only after every check passed:
  // a rejected snapshot (StateError of any kind) must leave this
  // accumulator exactly as it was, or a shard that falls back to an
  // older checkpoint after a corrupt one would start from garbage.
  Reader r(bytes);
  if (r.u64() != kCpaMagic)
    throw StateError(StateError::Kind::BadMagic,
                     "OnlineCpa::restore_state: not an OnlineCpa snapshot");
  if (r.u64() != guesses_)
    throw StateError(StateError::Kind::Geometry,
                     "OnlineCpa::restore_state: snapshot was taken with a "
                     "different num_guesses");
  const std::uint64_t m = r.u64();
  const std::uint64_t n = r.u64();
  std::vector<double> s, s2, h, h2, hs;
  r.doubles(s);
  r.doubles(s2);
  r.doubles(h);
  r.doubles(h2);
  r.doubles(hs);
  r.expect_end();
  if (s.size() != m || s2.size() != m || h.size() != guesses_ ||
      h2.size() != guesses_ ||
      hs.size() != static_cast<std::size_t>(guesses_) * m)
    throw StateError(StateError::Kind::Geometry,
                     "OnlineCpa::restore_state: inconsistent snapshot "
                     "geometry");
  sum_s_ = std::move(s);
  sum_s2_ = std::move(s2);
  sum_h_ = std::move(h);
  sum_h2_ = std::move(h2);
  sum_hs_ = std::move(hs);
  m_ = m;
  n_ = n;
  var_valid_ = false;
}

void OnlineDpa::merge(const OnlineDpa& other) {
  if (other.guesses_ != guesses_ || other.bits_.size() != bits_.size())
    throw std::invalid_argument(
        "OnlineDpa::merge: guess or selection-bit counts differ");
  if (other.n_ == 0) return;
  if (n_ == 0) {
    ensure_geometry(other.m_);
  } else if (other.m_ != m_) {
    throw std::invalid_argument(
        "OnlineDpa::merge: sample geometry differs");
  }
  add_into(sum_s_, other.sum_s_);
  for (std::size_t i = 0; i < n1_.size(); ++i) n1_[i] += other.n1_[i];
  add_into(sum1_, other.sum1_);
  n_ += other.n_;
}

std::vector<std::uint8_t> OnlineDpa::serialize_state() const {
  std::vector<std::uint8_t> out;
  put_u64(out, kDpaMagic);
  put_u64(out, guesses_);
  put_u64(out, bits_.size());
  put_u64(out, m_);
  put_u64(out, n_);
  put_doubles(out, sum_s_);
  put_u32s(out, n1_);
  put_doubles(out, sum1_);
  return out;
}

void OnlineDpa::restore_state(std::span<const std::uint8_t> bytes) {
  // Same parse-then-commit discipline as OnlineCpa::restore_state.
  Reader r(bytes);
  if (r.u64() != kDpaMagic)
    throw StateError(StateError::Kind::BadMagic,
                     "OnlineDpa::restore_state: not an OnlineDpa snapshot");
  if (r.u64() != guesses_ || r.u64() != bits_.size())
    throw StateError(StateError::Kind::Geometry,
                     "OnlineDpa::restore_state: snapshot was taken with a "
                     "different guess/selection-bit configuration");
  const std::uint64_t m = r.u64();
  const std::uint64_t n = r.u64();
  std::vector<double> s, s1;
  std::vector<std::uint32_t> counts;
  r.doubles(s);
  r.u32s(counts);
  r.doubles(s1);
  r.expect_end();
  if (s.size() != m || counts.size() != bits_.size() * guesses_ ||
      s1.size() != bits_.size() * static_cast<std::size_t>(guesses_) * m)
    throw StateError(StateError::Kind::Geometry,
                     "OnlineDpa::restore_state: inconsistent snapshot "
                     "geometry");
  sum_s_ = std::move(s);
  n1_ = std::move(counts);
  sum1_ = std::move(s1);
  m_ = m;
  n_ = n;
}

KeyRecoveryResult OnlineDpa::recover_single(std::size_t bit,
                                            SampleWindow window) const {
  assert(bit < bits_.size());
  KeyRecoveryResult r;
  r.guess_peak.assign(guesses_, 0.0);
  for (unsigned g = 0; g < guesses_; ++g)
    r.guess_peak[g] = peak_of(g, bit, window);
  rank_finalize(r, guesses_);
  return r;
}

void OnlineDpa::reset() noexcept {
  n_ = 0;
  std::fill(sum_s_.begin(), sum_s_.end(), 0.0);
  std::fill(n1_.begin(), n1_.end(), 0u);
  std::fill(sum1_.begin(), sum1_.end(), 0.0);
}

}  // namespace qdi::dpa
