#include "qdi/gates/des_datapath.hpp"

#include "qdi/crypto/des.hpp"
#include "qdi/gates/sbox.hpp"

namespace qdi::gates {

DesRoundSlice build_des_round_slice(double period_ps) {
  DesRoundSlice c;
  c.nl.set_name("des_round");
  Builder b(c.nl, "des_round");
  c.reset = b.reset_net();

  for (int i = 0; i < 32; ++i)
    c.l[static_cast<std::size_t>(i)] = b.dr_input("l" + std::to_string(i));
  for (int i = 0; i < 32; ++i)
    c.r[static_cast<std::size_t>(i)] = b.dr_input("r" + std::to_string(i));
  for (int i = 0; i < 48; ++i)
    c.k[static_cast<std::size_t>(i)] = b.dr_input("k" + std::to_string(i));

  // Expansion E: 48 channels, pure wiring from the right half.
  std::array<DualRail, 48> expanded{};
  {
    const auto table = crypto::des_expansion_table();
    for (int j = 0; j < 48; ++j)
      expanded[static_cast<std::size_t>(j)] =
          c.r[static_cast<std::size_t>(table[static_cast<std::size_t>(j)] - 1)];
  }

  // Key addition: 48 fig. 4 XOR gates.
  std::array<DualRail, 48> keyed{};
  {
    Builder::HierScope s(b, "keyxor");
    for (int j = 0; j < 48; ++j)
      keyed[static_cast<std::size_t>(j)] =
          b.dr_xor(expanded[static_cast<std::size_t>(j)],
                   c.k[static_cast<std::size_t>(j)], "kx" + std::to_string(j));
  }

  // Eight balanced S-Boxes: 6 channels in, 4 out each. Bus position
  // 6*box is the MSB (b5) of the S-Box input; our LUT generator indexes
  // minterms by in[bit] = bit `bit` of the line index (LSB first), so the
  // input span is reversed.
  std::array<DualRail, 32> sboxed{};
  for (int box = 0; box < 8; ++box) {
    Builder::HierScope s(b, "sbox" + std::to_string(box));
    std::array<DualRail, 6> in{};
    for (int bit = 0; bit < 6; ++bit) {
      // LUT input k is weight-2^k: S-Box input b0 is bus position 6box+5.
      in[static_cast<std::size_t>(bit)] =
          keyed[static_cast<std::size_t>(6 * box + 5 - bit)];
    }
    const LutResult lut = build_des_sbox(b, box, in, "s");
    // Output bit 3 (MSB) goes to bus position 4*box.
    for (int bit = 0; bit < 4; ++bit)
      sboxed[static_cast<std::size_t>(4 * box + 3 - bit)] =
          lut.outputs[static_cast<std::size_t>(bit)];
  }

  // Permutation P: wiring.
  std::array<DualRail, 32> permuted{};
  {
    const auto table = crypto::des_p_table();
    for (int j = 0; j < 32; ++j)
      permuted[static_cast<std::size_t>(j)] =
          sboxed[static_cast<std::size_t>(table[static_cast<std::size_t>(j)] - 1)];
  }

  // Feistel output: out_r = l xor P(...); out_l = r (wiring).
  {
    Builder::HierScope s(b, "lxor");
    for (int j = 0; j < 32; ++j)
      c.out_r[static_cast<std::size_t>(j)] =
          b.dr_xor(c.l[static_cast<std::size_t>(j)],
                   permuted[static_cast<std::size_t>(j)], "lx" + std::to_string(j));
  }
  c.out_l = c.r;

  for (int j = 0; j < 32; ++j)
    b.dr_output(c.out_r[static_cast<std::size_t>(j)], "outr" + std::to_string(j));

  for (const auto& d : c.l) c.env.inputs.push_back(d.ch);
  for (const auto& d : c.r) c.env.inputs.push_back(d.ch);
  for (const auto& d : c.k) c.env.inputs.push_back(d.ch);
  for (const auto& d : c.out_r) c.env.outputs.push_back(d.ch);
  c.env.reset = c.reset;
  c.env.period_ps = period_ps;
  return c;
}

}  // namespace qdi::gates
