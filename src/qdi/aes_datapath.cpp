#include "qdi/gates/aes_datapath.hpp"

#include <array>
#include <cassert>

#include "qdi/gates/sbox.hpp"

namespace qdi::gates {

std::vector<DualRail> xor_bus(Builder& b, std::span<const DualRail> a,
                              std::span<const DualRail> b_in,
                              const std::string& name) {
  assert(a.size() == b_in.size());
  std::vector<DualRail> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(b.dr_xor(a[i], b_in[i], name + std::to_string(i)));
  return out;
}

std::vector<DualRail> xtime_byte(Builder& b, std::span<const DualRail> a,
                                 const std::string& name) {
  assert(a.size() == 8);
  // xtime(a) = (a << 1) ^ (a7 ? 0x1b : 0); 0x1b = bits {0,1,3,4}.
  // Bit 0 is a7 itself (shift feeds 0, xor with a7) — pure wiring.
  std::vector<DualRail> out(8);
  out[0] = a[7];
  out[1] = b.dr_xor(a[0], a[7], name + "_b1");
  out[2] = a[1];
  out[3] = b.dr_xor(a[2], a[7], name + "_b3");
  out[4] = b.dr_xor(a[3], a[7], name + "_b4");
  out[5] = a[4];
  out[6] = a[5];
  out[7] = a[6];
  return out;
}

namespace {
std::span<const DualRail> byte_of(std::span<const DualRail> bus, std::size_t i) {
  return bus.subspan(8 * i, 8);
}

std::vector<DualRail> byte_xor(Builder& b, std::span<const DualRail> x,
                               std::span<const DualRail> y,
                               const std::string& name) {
  return xor_bus(b, x, y, name + "_bit");
}
}  // namespace

std::vector<DualRail> mixcolumn_column(Builder& b, std::span<const DualRail> col,
                                       const std::string& name) {
  assert(col.size() == 32);
  Builder::HierScope scope(b, name);

  // tmp_i = a_i ^ a_{i+1};  t = a0^a1^a2^a3 = tmp0 ^ tmp2;
  // out_i = a_i ^ t ^ xtime(tmp_i).
  std::array<std::vector<DualRail>, 4> tmp;
  for (std::size_t i = 0; i < 4; ++i)
    tmp[i] = byte_xor(b, byte_of(col, i), byte_of(col, (i + 1) % 4),
                      "tmp" + std::to_string(i));
  const std::vector<DualRail> t = byte_xor(b, tmp[0], tmp[2], "t");

  std::vector<DualRail> out;
  out.reserve(32);
  for (std::size_t i = 0; i < 4; ++i) {
    const std::vector<DualRail> xt = xtime_byte(b, tmp[i], "xt" + std::to_string(i));
    const std::vector<DualRail> at = byte_xor(b, byte_of(col, i), t, "at" + std::to_string(i));
    const std::vector<DualRail> o = byte_xor(b, at, xt, "o" + std::to_string(i));
    out.insert(out.end(), o.begin(), o.end());
  }
  return out;
}

std::vector<DualRail> mux2_bus(Builder& b, const DualRail& sel,
                               std::span<const DualRail> a,
                               std::span<const DualRail> b_in,
                               const std::string& name) {
  assert(a.size() == b_in.size());
  std::vector<DualRail> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(b.dr_mux2(sel, a[i], b_in[i], name + std::to_string(i)));
  return out;
}

std::vector<DualRail> merge_bus(Builder& b, std::span<const DualRail> a,
                                std::span<const DualRail> b_in,
                                const std::string& name) {
  assert(a.size() == b_in.size());
  std::vector<DualRail> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string cn = name + std::to_string(i);
    const NetId r0 = b.or2(a[i].r0, b_in[i].r0, cn + "_0");
    const NetId r1 = b.or2(a[i].r1, b_in[i].r1, cn + "_1");
    out.push_back(b.as_dual_rail(r0, r1, cn));
  }
  return out;
}

std::vector<std::vector<DualRail>> demux4_bus(Builder& b, const OneOfN& sel,
                                              std::span<const DualRail> in,
                                              const std::string& name) {
  assert(sel.rails.size() == 4);
  std::vector<std::vector<DualRail>> out(4);
  for (std::size_t w = 0; w < 4; ++w) {
    out[w].reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      const std::string cn = name + std::to_string(w) + "_" + std::to_string(i);
      const NetId r0 = b.muller2(sel.rails[w], in[i].r0, cn + "_0");
      const NetId r1 = b.muller2(sel.rails[w], in[i].r1, cn + "_1");
      out[w].push_back(b.as_dual_rail(r0, r1, cn));
    }
  }
  return out;
}

std::vector<DualRail> mux4_bus(Builder& b, const OneOfN& sel,
                               std::span<const std::vector<DualRail>> choices,
                               const std::string& name) {
  assert(sel.rails.size() == 4 && choices.size() == 4);
  const std::size_t width = choices[0].size();
  std::vector<DualRail> out;
  out.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    const std::string cn = name + std::to_string(i);
    std::array<NetId, 4> t0{}, t1{};
    for (std::size_t w = 0; w < 4; ++w) {
      t0[w] = b.muller2(sel.rails[w], choices[w][i].r0,
                        cn + "_c0" + std::to_string(w));
      t1[w] = b.muller2(sel.rails[w], choices[w][i].r1,
                        cn + "_c1" + std::to_string(w));
    }
    const NetId r0 = b.or_tree(std::span<const NetId>(t0.data(), 4), cn + "_0t");
    const NetId r1 = b.or_tree(std::span<const NetId>(t1.data(), 4), cn + "_1t");
    out.push_back(b.as_dual_rail(r0, r1, cn));
  }
  return out;
}

std::vector<DualRail> bytesub32(Builder& b, std::span<const DualRail> in,
                                const std::string& name) {
  assert(in.size() == 32);
  std::vector<DualRail> out;
  out.reserve(32);
  for (std::size_t byte = 0; byte < 4; ++byte) {
    const LutResult lut =
        build_aes_sbox(b, byte_of(in, byte), name + "_s" + std::to_string(byte));
    out.insert(out.end(), lut.outputs.begin(), lut.outputs.end());
  }
  return out;
}

namespace {

/// 32-wide dual-rail primary-input bus.
std::vector<DualRail> bus_input(Builder& b, const std::string& name,
                                std::size_t width) {
  std::vector<DualRail> bus;
  bus.reserve(width);
  for (std::size_t i = 0; i < width; ++i)
    bus.push_back(b.dr_input(name + std::to_string(i)));
  return bus;
}

void bus_output(Builder& b, std::span<const DualRail> bus,
                const std::string& name) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    b.dr_output(bus[i], name + std::to_string(i));
}

std::vector<netlist::ChannelId> channels_of(std::span<const DualRail> bus) {
  std::vector<netlist::ChannelId> chs;
  chs.reserve(bus.size());
  for (const DualRail& d : bus) chs.push_back(d.ch);
  return chs;
}

}  // namespace

AesCoreNetlist build_aes_core(const AesCoreParams& params) {
  AesCoreNetlist result;
  result.nl.set_name("aes_crypto_processor");
  Builder b(result.nl);
  result.reset = b.reset_net();

  // Shared testbench acknowledge for all half-buffer stages.
  const NetId gack = result.nl.add_input("gack");
  result.gack = gack;

  // ======================= AES_KEY region =================================
  std::vector<DualRail> subkey;
  if (params.include_key_path) {
    Builder::HierScope key_scope(b, "aes_key");

    std::vector<DualRail> key_in;
    {
      Builder::HierScope s(b, "lecture");
      key_in = bus_input(b, "key", 32);
      result.key_in_channels = channels_of(key_in);
    }
    DualRail sel_key;
    OneOfN ctrl_key;
    {
      Builder::HierScope s(b, "controle_key");
      sel_key = b.dr_input("sel");
      ctrl_key = b.one_of_n_input("cnt", 4);
      result.sel_key_channel = sel_key.ch;
      result.ctrl_key_channel = ctrl_key.ch;
      // Control distribution pipeline (one HB on the select channel).
      std::vector<DualRail> v = b.latch_stage(std::span(&sel_key, 1), gack, "selq");
      sel_key = v[0];
    }

    // mux9_1_key modeled as the 2:1 recirculation mux of the key loop.
    std::vector<DualRail> key_loop_placeholder;  // filled after xor_key
    std::vector<DualRail> mux_key_out;
    {
      Builder::HierScope s(b, "mux9_1_key");
      // The loopback channel physically exists after xor_key; to keep the
      // generator single-pass the recirculated operand is the FIFO head,
      // wired below — here the mux merges key_in with a staged copy.
      std::vector<DualRail> staged = b.latch_stage(key_in, gack, "stage");
      mux_key_out = mux2_bus(b, sel_key, key_in, staged, "mx");
    }

    // FIFO of half-buffer stages (fig. 8 block 8).
    std::vector<DualRail> fifo_out = mux_key_out;
    {
      Builder::HierScope s(b, "fifo");
      for (int d = 0; d < params.fifo_depth; ++d)
        fifo_out = b.latch_stage(fifo_out, gack, "f" + std::to_string(d));
    }

    // demux1_3_xor: distribute the FIFO head to the S-Box path / RC path /
    // output XOR. This is a QDI FORK, not a demux: the three consumers are
    // XOR gates that need *every* operand valid before their outputs
    // validate, so steering (leaving two ways empty) would deadlock the
    // sub-key computation. Each way gets its own buffered rail copy — a
    // registered channel per branch, which is what the balancing passes
    // and the capacitance criterion see as three distinct loads.
    std::vector<DualRail> to_sbox, to_rc, to_out;
    {
      Builder::HierScope s(b, "demux1_3_xor");
      auto fork_way = [&](const char* way) {
        std::vector<DualRail> w;
        w.reserve(fifo_out.size());
        for (std::size_t i = 0; i < fifo_out.size(); ++i) {
          const std::string cn = std::string(way) + std::to_string(i);
          const NetId r0 = b.buf(fifo_out[i].r0, cn + "_0");
          const NetId r1 = b.buf(fifo_out[i].r1, cn + "_1");
          w.push_back(b.as_dual_rail(r0, r1, cn));
        }
        return w;
      };
      to_sbox = fork_way("s");
      to_rc = fork_way("r");
      to_out = fork_way("o");
    }

    // mux2_1_sbox + ByteSub (RotWord is rail wiring upstream of the boxes).
    std::vector<DualRail> sbox_out;
    {
      Builder::HierScope s(b, "mux2_1_sbox");
      // Rotate bytes: RotWord on the 32-bit word — wiring only.
      std::vector<DualRail> rot(to_sbox.begin() + 8, to_sbox.end());
      rot.insert(rot.end(), to_sbox.begin(), to_sbox.begin() + 8);
      to_sbox = mux2_bus(b, sel_key, to_sbox, rot, "mx");
    }
    {
      Builder::HierScope s(b, "bytesub");
      sbox_out = bytesub32(b, to_sbox, "bs");
    }

    // xor_rc: round constant on the first byte.
    std::vector<DualRail> rc_applied;
    {
      Builder::HierScope s(b, "xor_rc");
      std::vector<DualRail> rc = bus_input(b, "rc", 8);
      result.rc_channels = channels_of(rc);
      std::vector<DualRail> first(sbox_out.begin(), sbox_out.begin() + 8);
      std::vector<DualRail> x = xor_bus(b, first, rc, "x");
      rc_applied = x;
      rc_applied.insert(rc_applied.end(), sbox_out.begin() + 8, sbox_out.end());
      // to_rc path merges here (demux1_2_rc counterpart).
      Builder::HierScope s2(b, "demux1_2_rc");
      rc_applied = xor_bus(b, rc_applied, to_rc, "merge");
    }

    // xor_key: w_i = w_{i-4} ^ temp (fig. 8 block 14) + duplication.
    {
      Builder::HierScope s(b, "xor_key");
      subkey = xor_bus(b, rc_applied, to_out, "xk");
    }
    {
      Builder::HierScope s(b, "duplicateur");
      subkey = b.latch_stage(subkey, gack, "dup");
    }
    {
      Builder::HierScope s(b, "duplic_nk");
      std::vector<DualRail> nk = b.latch_stage(subkey, gack, "nk");
      bus_output(b, nk, "nk_out");
      result.nk_out_channels = channels_of(nk);
    }
    (void)key_loop_placeholder;
  } else {
    Builder::HierScope s(b, "aes_key");
    subkey = bus_input(b, "subkey", 32);
  }
  result.subkey_channels = channels_of(subkey);

  // ======================= Interface ======================================
  std::vector<DualRail> data_in;
  {
    Builder::HierScope s(b, params.include_interface ? "interface/sa_interface2"
                                                     : "interface");
    data_in = bus_input(b, "data", 32);
    result.data_in_channels = channels_of(data_in);
    if (params.include_interface) data_in = b.latch_stage(data_in, gack, "ib");
  }
  OneOfN round_sel;
  DualRail path_sel;
  {
    Builder::HierScope s(b, "interface/controle_interface");
    round_sel = b.one_of_n_input("round", 4);
    path_sel = b.dr_input("path");
    result.round_sel_channel = round_sel.ch;
    result.path_sel_channel = path_sel.ch;
    if (params.include_interface) {
      std::vector<DualRail> v = b.latch_stage(std::span(&path_sel, 1), gack, "pq");
      path_sel = v[0];
    }
  }

  // ======================= AES_CORE region ================================
  {
    Builder::HierScope core_scope(b, "aes_core");

    // Controller blocks (fig. 8: CONTROLE, COMPTEUR4, Canal_controle).
    DualRail loop_sel;
    OneOfN bank_sel;
    {
      Builder::HierScope s(b, "controle");
      loop_sel = b.dr_input("loop");
      result.loop_sel_channel = loop_sel.ch;
      std::vector<DualRail> v = b.latch_stage(std::span(&loop_sel, 1), gack, "lq");
      loop_sel = v[0];
    }
    {
      Builder::HierScope s(b, "compteur4");
      bank_sel = b.one_of_n_input("bank", 4);
      result.bank_sel_channel = bank_sel.ch;
    }
    {
      Builder::HierScope s(b, "canal_controle");
      std::vector<DualRail> v = b.latch_stage(std::span(&path_sel, 1), gack, "cq");
      path_sel = v[0];
    }

    // Dmuxkey: distribute the sub-key to the three consumers through a
    // half-buffer (real designs duplicate the channel; we stage it).
    std::vector<DualRail> subkey_c;
    {
      Builder::HierScope s(b, "dmuxkey");
      subkey_c = b.latch_stage(subkey, gack, "skq");
    }

    // Addkey0: initial key addition (fig. 8 block 7).
    std::vector<DualRail> addkey0_out;
    {
      Builder::HierScope s(b, "addkey0");
      addkey0_out = xor_bus(b, data_in, subkey_c, "ak");
    }

    // Round-loop state registers C0..C3 (32-bit half-buffer banks) —
    // these are the "HB block of the AES core" channels cited in Table 2.
    // Built before the loop mux so their outputs can recirculate.
    // The loop is closed structurally: HB inputs come from the round
    // demux below; one builder pass is kept by creating the bank inputs
    // as explicit channels now and wiring their drivers later would
    // require net merging, so instead the banks latch the mux4 output of
    // the previous iteration stage, i.e. the recirculation is
    // HB -> shiftrow wiring -> mux4_1 -> round logic -> dmux1_4 -> HB'
    // with HB' a second rank (C2/C3), matching the two-rank structure of
    // the reference architecture.
    std::vector<DualRail> mux_in = addkey0_out;

    std::vector<DualRail> mux_out;
    {
      Builder::HierScope s(b, "mux");
      // Entry mux: first round takes addkey0, later rounds the loop value;
      // at build time the loop value is the C-bank output created below —
      // to keep one pass, stage addkey0 into C0/C1 first.
      std::vector<DualRail> c0, c1;
      {
        Builder::HierScope s2(b, "c0");
        c0 = b.latch_stage(mux_in, gack, "r");
      }
      {
        Builder::HierScope s2(b, "c1");
        c1 = b.latch_stage(c0, gack, "r");
      }
      mux_out = mux2_bus(b, loop_sel, mux_in, c1, "mx");
    }

    // ByteSub: 4 S-Boxes (fig. 8 block 10).
    std::vector<DualRail> bs_out;
    {
      Builder::HierScope s(b, "bytesub");
      result.bytesub_in_channels = channels_of(mux_out);
      bs_out = bytesub32(b, mux_out, "bs");
    }

    // ShiftRow (fig. 8: Shiftrow feeding ByteSub outputs onward): byte-lane
    // rotation across the word — wiring only, but the nets cross block
    // regions, which is where flat P&R creates dissymmetry.
    std::vector<DualRail> sr_out;
    {
      std::vector<DualRail> tmp;
      tmp.reserve(32);
      for (std::size_t byte = 0; byte < 4; ++byte) {
        const std::size_t src = (byte + 1) % 4;  // rotate byte lanes
        for (std::size_t bit = 0; bit < 8; ++bit)
          tmp.push_back(bs_out[8 * src + bit]);
      }
      sr_out = std::move(tmp);
    }

    // Dmux (fig. 8 block 11): steer to MixColumn (rounds 1..9) or to
    // AddLastKey (round 10).
    std::vector<DualRail> to_mix, to_last;
    {
      Builder::HierScope s(b, "dmux");
      OneOfN dsel = b.one_of_n_input("dsel", 4);
      result.dsel_channel = dsel.ch;
      auto ways = demux4_bus(b, dsel, sr_out, "w");
      to_mix = std::move(ways[0]);
      to_last = std::move(ways[1]);
    }

    // MixColumn (fig. 8 block 14).
    std::vector<DualRail> mix_out = mixcolumn_column(b, to_mix, "mixcolumn");

    // AddRoundKey (fig. 8 block 13).
    std::vector<DualRail> ark_out;
    {
      Builder::HierScope s(b, "addroundkey");
      ark_out = xor_bus(b, mix_out, subkey_c, "ark");
    }

    // Dmux1_4 into the C2/C3 register banks, then Mux4_1 recirculation.
    std::vector<std::vector<DualRail>> banks;
    {
      Builder::HierScope s(b, "dmux1_4");
      banks = demux4_bus(b, bank_sel, ark_out, "w");
    }
    std::vector<std::vector<DualRail>> bank_q(4);
    for (std::size_t w = 0; w < 4; ++w) {
      Builder::HierScope s(b, "c" + std::to_string(2 + w / 2));
      bank_q[w] = b.latch_stage(banks[w], gack, "q" + std::to_string(w));
    }
    std::vector<DualRail> recirc;
    {
      Builder::HierScope s(b, "mux4_1");
      recirc = mux4_bus(b, round_sel,
                        std::span<const std::vector<DualRail>>(bank_q.data(), 4),
                        "mx");
    }

    // AddLastKey and primary output (fig. 8 block 4). The dmux above
    // leaves exactly one of the two branches valid per cycle (`dsel` way 0
    // feeds MixColumn and the register banks, way 1 feeds AddLastKey), so
    // the primary output is the QDI MERGE of the two: a rail-wise OR that
    // forwards whichever branch computed. An XOR here would wait forever
    // on the empty branch.
    {
      Builder::HierScope s(b, "addlastkey");
      std::vector<DualRail> out = xor_bus(b, to_last, subkey_c, "alk");
      std::vector<DualRail> merged = merge_bus(b, out, recirc, "fin");
      bus_output(b, merged, "data_out");
      result.data_out_channels = channels_of(merged);
    }
  }

  result.num_cells = result.nl.num_cells();
  result.num_channels = result.nl.num_channels();
  return result;
}

}  // namespace qdi::gates
