// WCHB (weak-condition half-buffer) pipelines with *real* internal
// acknowledge wiring: stage i's ack comes from stage i+1's completion
// detector, the last stage is acknowledged by the environment. Used by
// the pipeline example and by throughput/property tests (tokens must flow
// FIFO, one per four-phase cycle, with constant transition counts).
#pragma once

#include <vector>

#include "qdi/gates/builder.hpp"
#include "qdi/sim/environment.hpp"

namespace qdi::gates {

struct WchbFifo {
  netlist::Netlist nl;
  std::vector<DualRail> in;    ///< producer-side channels (env drives)
  std::vector<DualRail> out;   ///< consumer-side channels (env observes)
  NetId ack_in = kNoNet;       ///< consumer acknowledge (env drives)
  NetId ack_out = kNoNet;      ///< producer-side acknowledge (observed)
  NetId reset = kNoNet;
  sim::EnvSpec env;
};

/// Build a `depth`-stage, `width`-channel WCHB FIFO. The internal acks
/// use ValidHigh completion (ack rises when the downstream stage holds
/// data), matching the four-phase protocol of fig. 2.
WchbFifo build_wchb_fifo(std::size_t width, std::size_t depth,
                         double period_ps = 8000.0);

}  // namespace qdi::gates
