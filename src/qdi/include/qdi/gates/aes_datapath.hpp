// Structural generator for the secured QDI AES crypto-processor of
// fig. 8 / fig. 9 of the paper: a 32-bit iterative architecture with a
// ciphering data path (AES_CORE), a sub-key computation data path
// (AES_KEY) synchronized through the Sub-key channel, and an interface.
//
// Every block named in fig. 8's legend exists as a hierarchical region
// tag ("aes_core/bytesub", "aes_key/fifo", ...), built from real balanced
// dual-rail gate structures (DIMS S-Boxes, fig. 4 XOR banks, WCHB
// half-buffers, DIMS mux/demux steering). The generator's purpose is the
// place-and-route study of section VI (Table 2): tens of thousands of
// cells, thousands of registered dual-rail channels, and a two-level
// hierarchy for the constrained floorplan. Functional round-loop control
// is not exercised in simulation at this scale — the functional DPA
// experiments use the byte-slice circuits of testbench.hpp, which share
// the same gate structures.
//
// Latch-stage acknowledges are tied to a single environment-driven "gack"
// input (testbench convention), keeping the netlist structurally closed.
#pragma once

#include <vector>

#include "qdi/gates/builder.hpp"

namespace qdi::gates {

struct AesCoreParams {
  bool include_key_path = true;   ///< build the AES_KEY region
  bool include_interface = true;  ///< build the interface HB chains
  int fifo_depth = 4;             ///< AES_KEY FIFO depth (32-bit stages)
};

struct AesCoreNetlist {
  netlist::Netlist nl;
  /// Channels of the ciphering data path's round-loop buses, useful for
  /// focused reporting.
  std::vector<netlist::ChannelId> subkey_channels;   ///< AES_KEY -> AES_CORE
  std::vector<netlist::ChannelId> bytesub_in_channels;
  std::size_t num_cells = 0;
  std::size_t num_channels = 0;
};

AesCoreNetlist build_aes_core(const AesCoreParams& params = {});

// --- reusable bus-level helpers (exposed for tests) -----------------------

/// 32-wide (or arbitrary) XOR bank: out[i] = a[i] ^ b[i] (fig. 4 gates).
std::vector<DualRail> xor_bus(Builder& b, std::span<const DualRail> a,
                              std::span<const DualRail> b_in,
                              const std::string& name);

/// GF(2^8) xtime over one byte (LSB-first): wiring plus three XOR gates.
std::vector<DualRail> xtime_byte(Builder& b, std::span<const DualRail> a,
                                 const std::string& name);

/// One MixColumns column over 4 bytes (32 channels in, 32 out).
std::vector<DualRail> mixcolumn_column(Builder& b, std::span<const DualRail> col,
                                       const std::string& name);

/// DIMS 2:1 mux bank steered by one dual-rail select channel.
std::vector<DualRail> mux2_bus(Builder& b, const DualRail& sel,
                               std::span<const DualRail> a,
                               std::span<const DualRail> b_in,
                               const std::string& name);

/// DIMS 1:4 demux bank steered by a 1-of-4 channel.
std::vector<std::vector<DualRail>> demux4_bus(Builder& b, const OneOfN& sel,
                                              std::span<const DualRail> in,
                                              const std::string& name);

/// DIMS 4:1 mux bank steered by a 1-of-4 channel.
std::vector<DualRail> mux4_bus(Builder& b, const OneOfN& sel,
                               std::span<const std::vector<DualRail>> choices,
                               const std::string& name);

/// ByteSub over a 32-bit bus: four balanced AES S-Boxes.
std::vector<DualRail> bytesub32(Builder& b, std::span<const DualRail> in,
                                const std::string& name);

}  // namespace qdi::gates
