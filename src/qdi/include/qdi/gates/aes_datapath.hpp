// Structural generator for the secured QDI AES crypto-processor of
// fig. 8 / fig. 9 of the paper: a 32-bit iterative architecture with a
// ciphering data path (AES_CORE), a sub-key computation data path
// (AES_KEY) synchronized through the Sub-key channel, and an interface.
//
// Every block named in fig. 8's legend exists as a hierarchical region
// tag ("aes_core/bytesub", "aes_key/fifo", ...), built from real balanced
// dual-rail gate structures (DIMS S-Boxes, fig. 4 XOR banks, WCHB
// half-buffers, DIMS mux/demux steering). The generator's purpose is the
// place-and-route study of section VI (Table 2) — tens of thousands of
// cells, thousands of registered dual-rail channels, and a two-level
// hierarchy for the constrained floorplan — and, since the core became
// simulatable, the full-scale DPA/fault campaigns: every primary channel
// is exposed through AesCoreNetlist so campaign::aes_core() can assemble
// a four-phase environment and drive one round iteration per handshake
// (initial AddKey0, ByteSub, ShiftRow, then either MixColumn+AddRoundKey
// through the register banks or AddLastKey, steered by `dsel`).
//
// Latch-stage acknowledges are tied to a single environment-driven "gack"
// input (testbench convention), keeping the netlist structurally closed.
#pragma once

#include <vector>

#include "qdi/gates/builder.hpp"

namespace qdi::gates {

struct AesCoreParams {
  bool include_key_path = true;   ///< build the AES_KEY region
  bool include_interface = true;  ///< build the interface HB chains
  int fifo_depth = 4;             ///< AES_KEY FIFO depth (32-bit stages)
};

struct AesCoreNetlist {
  netlist::Netlist nl;
  /// Channels of the ciphering data path's round-loop buses, useful for
  /// focused reporting.
  std::vector<netlist::ChannelId> subkey_channels;   ///< AES_KEY -> AES_CORE
  std::vector<netlist::ChannelId> bytesub_in_channels;
  std::size_t num_cells = 0;
  std::size_t num_channels = 0;

  // --- environment ports (four-phase testbench wiring) ---------------------
  // Primary-input channels in the order an EnvSpec should drive them, and
  // the primary-output channel groups an environment should wait on. All
  // are filled by build_aes_core; key-path fields stay empty when
  // include_key_path is false.
  std::vector<netlist::ChannelId> data_in_channels;  ///< 32 dual-rail
  std::vector<netlist::ChannelId> key_in_channels;   ///< 32 dual-rail
  std::vector<netlist::ChannelId> rc_channels;       ///< 8 dual-rail (round constant)
  netlist::ChannelId sel_key_channel = 0;   ///< dual-rail: 1 = RotWord the key word
  netlist::ChannelId ctrl_key_channel = 0;  ///< 1-of-4 control distribution
  netlist::ChannelId round_sel_channel = 0; ///< 1-of-4: recirculation bank read
  netlist::ChannelId path_sel_channel = 0;  ///< dual-rail interface steering
  netlist::ChannelId loop_sel_channel = 0;  ///< dual-rail: 1 = take the loop value
  netlist::ChannelId bank_sel_channel = 0;  ///< 1-of-4: register bank write
  netlist::ChannelId dsel_channel = 0;      ///< 1-of-4: 0 = MixColumn, 1 = AddLastKey
  std::vector<netlist::ChannelId> data_out_channels;  ///< 32 dual-rail
  std::vector<netlist::ChannelId> nk_out_channels;    ///< 32 dual-rail (next key)
  netlist::NetId gack = 0;   ///< shared half-buffer acknowledge (env-driven)
  netlist::NetId reset = 0;  ///< global reset input
};

AesCoreNetlist build_aes_core(const AesCoreParams& params = {});

// --- reusable bus-level helpers (exposed for tests) -----------------------

/// 32-wide (or arbitrary) XOR bank: out[i] = a[i] ^ b[i] (fig. 4 gates).
std::vector<DualRail> xor_bus(Builder& b, std::span<const DualRail> a,
                              std::span<const DualRail> b_in,
                              const std::string& name);

/// GF(2^8) xtime over one byte (LSB-first): wiring plus three XOR gates.
std::vector<DualRail> xtime_byte(Builder& b, std::span<const DualRail> a,
                                 const std::string& name);

/// One MixColumns column over 4 bytes (32 channels in, 32 out).
std::vector<DualRail> mixcolumn_column(Builder& b, std::span<const DualRail> col,
                                       const std::string& name);

/// DIMS 2:1 mux bank steered by one dual-rail select channel.
std::vector<DualRail> mux2_bus(Builder& b, const DualRail& sel,
                               std::span<const DualRail> a,
                               std::span<const DualRail> b_in,
                               const std::string& name);

/// DIMS 1:4 demux bank steered by a 1-of-4 channel.
std::vector<std::vector<DualRail>> demux4_bus(Builder& b, const OneOfN& sel,
                                              std::span<const DualRail> in,
                                              const std::string& name);

/// Rail-wise OR merge of two mutually-exclusive dual-rail buses: exactly
/// one operand carries a valid codeword per cycle (the other stays empty,
/// both rails low), so the OR forwards the valid one — the QDI MERGE of
/// two conditional branches. XORing such branches instead deadlocks: a
/// DIMS XOR needs *all* operands valid before its output validates.
std::vector<DualRail> merge_bus(Builder& b, std::span<const DualRail> a,
                                std::span<const DualRail> b_in,
                                const std::string& name);

/// DIMS 4:1 mux bank steered by a 1-of-4 channel.
std::vector<DualRail> mux4_bus(Builder& b, const OneOfN& sel,
                               std::span<const std::vector<DualRail>> choices,
                               const std::string& name);

/// ByteSub over a 32-bit bus: four balanced AES S-Boxes.
std::vector<DualRail> bytesub32(Builder& b, std::span<const DualRail> in,
                                const std::string& name);

}  // namespace qdi::gates
