// Balanced 1-of-N table-lookup generator (DIMS style).
//
// Secured QDI S-Boxes are built as a *decode / re-encode* structure:
//   1. a Muller C-element tree decodes the N dual-rail inputs into a
//      one-hot bundle of 2^N minterm lines — exactly one line fires per
//      codeword, after exactly N-1 C-levels, for every input value;
//   2. per output rail, a balanced OR tree merges the minterm lines that
//      map to that rail.
// For bijective tables (AES S-Box) and balanced tables (DES S-Boxes) both
// rails of every output bit merge the same number of lines, so the OR
// trees have identical shape and the whole block is balanced: the number
// of transitions Nt per computation is a constant independent of data —
// the property section II of the paper requires of secured QDI blocks.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "qdi/gates/builder.hpp"

namespace qdi::gates {

struct LutResult {
  std::vector<DualRail> outputs;       ///< out_bits channels
  std::vector<NetId> minterm_lines;    ///< the 2^N one-hot bundle
  int decode_levels = 0;               ///< C-tree depth
};

/// Build the lookup structure for `table` : [0, 2^in.size()) -> out_bits
/// wide values. Bit k of the minterm index corresponds to in[k].
LutResult build_balanced_lut(Builder& b, std::span<const DualRail> in,
                             int out_bits,
                             const std::function<unsigned(unsigned)>& table,
                             const std::string& name);

/// AES SubBytes S-Box over one byte (8 dual-rail channels in and out).
LutResult build_aes_sbox(Builder& b, std::span<const DualRail> in,
                         const std::string& name);

/// DES S-Box `box` (6 dual-rail in, 4 out).
LutResult build_des_sbox(Builder& b, int box, std::span<const DualRail> in,
                         const std::string& name);

}  // namespace qdi::gates
