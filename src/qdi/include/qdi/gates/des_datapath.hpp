// Gate-level QDI DES round datapath — the workload family of the
// authors' companion study ("DPA on Quasi Delay Insensitive Asynchronous
// circuits: Concrete Results", ref. [5] of the paper), which analysed
// three QDI DES architectures.
//
// One Feistel round: (L, R) -> (R, L xor P(S(E(R) xor K))). The
// expansion E and permutation P are pure channel wiring; the key
// addition is a fig. 4 XOR bank; the eight S-Boxes are balanced DIMS
// lookups (6 dual-rail in, 4 out). Bus convention: index i carries DES
// bit position i+1 (1 = MSB), matching the FIPS tables directly.
#pragma once

#include <array>

#include "qdi/gates/builder.hpp"
#include "qdi/sim/environment.hpp"

namespace qdi::gates {

struct DesRoundSlice {
  netlist::Netlist nl;

  std::array<DualRail, 32> l{};   ///< left half input
  std::array<DualRail, 32> r{};   ///< right half input
  std::array<DualRail, 48> k{};   ///< 48-bit round key input
  std::array<DualRail, 32> out_l{};  ///< = r (wiring)
  std::array<DualRail, 32> out_r{};  ///< = l ^ f(r, k)
  netlist::NetId reset = netlist::kNoNet;

  sim::EnvSpec env;  ///< inputs {l, r, k}, outputs {out_r} (out_l = r)
};

/// Build the full round (eight S-Boxes, ~4k gates).
DesRoundSlice build_des_round_slice(double period_ps = 30000.0);

}  // namespace qdi::gates
