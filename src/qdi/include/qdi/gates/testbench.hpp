// Self-contained experiment circuits, each bundling a netlist, the port
// handles, and a ready-to-use four-phase environment spec.
//
// XorStage reproduces fig. 4/5 of the paper *exactly*: four Muller
// minterm gates (level 1), two OR rail-merges (level 2), two Cr output
// latches (level 3), and the NOR completion/acknowledge gate (level 4).
// The internal net handles are exposed so the fig. 6/7 experiments can
// inject load-capacitance imbalances on specific Cl_ij:
//   Cl11..Cl14 -> m[0..3]   (level-1 gate outputs, m1..m4)
//   Cl21,Cl22  -> s0, s1    (level-2 OR outputs)
//   Cl31,Cl32  -> co0, co1  (level-3 Cr outputs, the block outputs)
#pragma once

#include <array>

#include "qdi/gates/builder.hpp"
#include "qdi/sim/environment.hpp"

namespace qdi::gates {

struct XorStage {
  netlist::Netlist nl;

  DualRail a, b;             ///< dual-rail inputs
  NetId ack_in = kNoNet;     ///< downstream acknowledge (env-driven)
  NetId reset = kNoNet;
  std::array<NetId, 4> m{};  ///< level-1 Muller outputs (m1..m4)
  NetId s0 = kNoNet, s1 = kNoNet;    ///< level-2 OR outputs
  NetId co0 = kNoNet, co1 = kNoNet;  ///< level-3 Cr outputs (block outputs)
  NetId ack_out = kNoNet;            ///< level-4 NOR (fig. 4 completion)
  netlist::ChannelId out_ch = 0;

  sim::EnvSpec env;  ///< inputs {a,b}, outputs {co}, acks {ack_in}
};

/// Build the fig. 4 dual-rail XOR pipeline stage.
XorStage build_xor_stage(double period_ps = 4000.0);

/// First-round AES byte slice: co = SBOX(p xor k), with an output latch
/// stage and fig. 4-style completion. This is the circuit the paper's
/// AES selection function D(C1, P8, K8) targets (section IV).
struct AesByteSlice {
  netlist::Netlist nl;

  std::array<DualRail, 8> p{};  ///< plaintext byte (LSB first)
  std::array<DualRail, 8> k{};  ///< key byte
  std::array<DualRail, 8> x{};  ///< AddRoundKey outputs p^k (attack target)
  std::array<DualRail, 8> q{};  ///< latched S-Box outputs
  NetId ack_in = kNoNet;
  NetId reset = kNoNet;
  NetId ack_out = kNoNet;

  sim::EnvSpec env;  ///< inputs {p,k}, outputs {q}, acks {ack_in}
};

AesByteSlice build_aes_byte_slice(double period_ps = 20000.0);

/// First-round DES S-Box slice: q = SBOX<box>(p6 xor k6) (4 bits out).
struct DesSboxSlice {
  netlist::Netlist nl;

  std::array<DualRail, 6> p{};
  std::array<DualRail, 6> k{};
  std::array<DualRail, 6> x{};  ///< p ^ k
  std::array<DualRail, 4> q{};  ///< latched S-Box outputs
  NetId ack_in = kNoNet;
  NetId reset = kNoNet;
  NetId ack_out = kNoNet;

  sim::EnvSpec env;
};

DesSboxSlice build_des_sbox_slice(int box, double period_ps = 20000.0);

/// Unprotected synchronous-style DES S-Box slice — the fault-attack
/// *counterexample* to the QDI targets. Same dual-rail channel interface
/// (so the four-phase environment drives it unchanged), but internally
/// the data path is single-rail SOP logic and "completion" is faked from
/// input validity alone: the output rails are `bit & dv` / `~bit & dv`
/// with dv derived only from the input channels. A fault that corrupts
/// an internal value therefore still *completes the handshake* and emits
/// a wrong ciphertext — the exploitable outcome DFA feeds on — where the
/// dual-rail DIMS slice would stall its completion tree and deadlock.
struct DesSboxSync {
  netlist::Netlist nl;

  std::array<DualRail, 6> p{};
  std::array<DualRail, 6> k{};
  std::array<NetId, 6> x{};     ///< single-rail S-box inputs p^k (fault sites)
  std::array<DualRail, 4> q{};  ///< validity-gated outputs
  NetId ack_in = kNoNet;        ///< consumer ack (unused by the logic)
  NetId dv = kNoNet;            ///< input-validity "completion"
  NetId reset = kNoNet;         ///< kNoNet: the data path is stateless
  sim::EnvSpec env;
};

DesSboxSync build_des_sbox_sync(int box, double period_ps = 20000.0);

}  // namespace qdi::gates
