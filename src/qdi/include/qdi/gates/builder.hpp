// Dual-rail / 1-of-N circuit construction API.
//
// The Builder wraps a Netlist with the idioms of secured QDI design from
// section II of the paper:
//   * dual-rail channels (table 1) registered in the netlist's channel
//     registry so the dissymmetry criterion of section VI can be applied,
//   * DIMS-style function blocks (Muller C-element minterm layer + OR
//     rail-merge layer — the structure of fig. 4),
//   * Cr output latches (resettable C-elements) and completion/ack
//     generation (the NOR of fig. 4),
//   * hierarchical naming, so the hierarchical place-and-route flow can
//     constrain each block into its own region (fig. 9).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "qdi/netlist/netlist.hpp"

namespace qdi::gates {

using netlist::ChannelId;
using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;

/// Handle to a dual-rail channel: rail r0 carries "value 0", r1 "value 1"
/// (table 1 of the paper). `ch` is the registry entry used for the
/// dissymmetry criterion.
struct DualRail {
  NetId r0 = kNoNet;
  NetId r1 = kNoNet;
  ChannelId ch = 0;

  NetId rail(int v) const { return v ? r1 : r0; }
};

/// Handle to a 1-of-N channel.
struct OneOfN {
  std::vector<NetId> rails;
  ChannelId ch = 0;
};

/// Completion-detector polarity (fig. 4 uses a NOR: high = channel empty).
enum class CompletionStyle {
  ValidHigh,  ///< OR-based: output high when data valid
  EmptyHigh,  ///< NOR-based (paper's fig. 4): output high when empty
};

class Builder {
 public:
  explicit Builder(Netlist& nl, std::string top_hier = {});

  Netlist& netlist() noexcept { return *nl_; }
  const Netlist& netlist() const noexcept { return *nl_; }

  /// Global active-high reset input net; created on first use.
  NetId reset_net();
  /// True if a reset net has been created.
  bool has_reset() const noexcept { return reset_ != kNoNet; }

  // ---- hierarchy ---------------------------------------------------------

  /// RAII scope: all cells created while alive carry "outer/name" as their
  /// hierarchical path.
  class HierScope {
   public:
    HierScope(Builder& b, const std::string& name);
    ~HierScope();
    HierScope(const HierScope&) = delete;
    HierScope& operator=(const HierScope&) = delete;

   private:
    Builder* b_;
    std::string saved_;  ///< full prefix to restore (names may contain '/')
  };
  const std::string& hier() const noexcept { return hier_; }

  // ---- ports -------------------------------------------------------------

  NetId input(const std::string& name);
  void output(NetId net, const std::string& name);
  DualRail dr_input(const std::string& name);
  void dr_output(const DualRail& d, const std::string& name);
  OneOfN one_of_n_input(const std::string& name, std::size_t n);

  // ---- raw single-rail gates ----------------------------------------------

  NetId inv(NetId a, const std::string& name = {});
  NetId buf(NetId a, const std::string& name = {});
  NetId or2(NetId a, NetId b, const std::string& name = {});
  NetId and2(NetId a, NetId b, const std::string& name = {});
  NetId nor2(NetId a, NetId b, const std::string& name = {});
  /// Single-rail XOR — only legal in the *unprotected* synchronous-style
  /// testbenches (a dual-rail QDI design never XORs bare rails; use
  /// dr_xor there).
  NetId xor2(NetId a, NetId b, const std::string& name = {});
  NetId muller2(NetId a, NetId b, const std::string& name = {});
  NetId muller3(NetId a, NetId b, NetId c, const std::string& name = {});
  /// Resettable C-element; the reset pin is wired to reset_net().
  NetId muller2r(NetId a, NetId b, const std::string& name = {});

  /// Balanced binary OR tree (depth ceil(log2(n))); single input passes
  /// through a Buf so every tree has at least one gate (constant Nt).
  NetId or_tree(std::span<const NetId> nets, const std::string& name = {});
  /// Balanced binary AND tree (validity conjunction of the sync testbench).
  NetId and_tree(std::span<const NetId> nets, const std::string& name = {});
  /// Balanced binary Muller tree — the multi-bit completion combiner.
  NetId muller_tree(std::span<const NetId> nets, const std::string& name = {});

  /// Paired OR trees over the two rails' minterm sets of one output bit
  /// (the S-Box re-encode structure). Both sets must have the same
  /// power-of-two size so the trees are perfect and shape-identical.
  /// Every tree layer is registered as a 1-of-N *group channel* spanning
  /// both trees: per computation exactly one node per layer fires, so
  /// equalizing the group's capacitances (criterion/repair) makes the
  /// layer's charge data-independent.
  DualRail or_tree_pair(std::span<const NetId> zeros,
                        std::span<const NetId> ones, const std::string& name);

  // ---- dual-rail channels --------------------------------------------------

  /// Register two existing nets as a dual-rail channel.
  DualRail as_dual_rail(NetId r0, NetId r1, const std::string& name,
                        NetId ack = kNoNet);

  /// Logical NOT: swaps rails. Zero gates, zero transitions — the
  /// canonical QDI trick. Registers a derived channel with the swapped
  /// rail order so that decoding (and the criterion) see a coherent view.
  DualRail dr_not(const DualRail& a);

  // DIMS combinational function blocks (minterm C-layer + OR layer, no
  // output latch). All are balanced: exactly one C-element and one OR
  // fire per rail-resolution regardless of the data values.
  DualRail dr_xor(const DualRail& a, const DualRail& b, const std::string& name);
  DualRail dr_xnor(const DualRail& a, const DualRail& b, const std::string& name);
  DualRail dr_and(const DualRail& a, const DualRail& b, const std::string& name);
  DualRail dr_or(const DualRail& a, const DualRail& b, const std::string& name);

  /// DIMS 2-way multiplexer: out = sel ? b : a. Both data inputs must be
  /// valid before the output resolves (strongly-indicating mux).
  DualRail dr_mux2(const DualRail& sel, const DualRail& a, const DualRail& b,
                   const std::string& name);

  /// WCHB half-buffer stage over a set of channels: per rail a Muller2R
  /// latch gated by the inverted downstream acknowledge; returns the
  /// latched channels. One shared inverter per stage.
  /// `ack_in` is the downstream acknowledge (active high, as in fig. 2).
  std::vector<DualRail> latch_stage(std::span<const DualRail> data, NetId ack_in,
                                    const std::string& name);

  /// Completion detection over channels: per-channel OR (validity), then
  /// a Muller tree; final polarity per `style` (EmptyHigh appends the
  /// paper's NOR-equivalent inverter). For a single dual-rail channel
  /// with EmptyHigh this degenerates to fig. 4's single NOR gate.
  NetId completion(std::span<const DualRail> data, CompletionStyle style,
                   const std::string& name);

  // ---- 1-of-4 re-encoding (section II: "easily extended to N rails") -------

  /// Two dual-rail channels -> one 1-of-4 channel (4 C-elements).
  OneOfN to_one_of_four(const DualRail& lo, const DualRail& hi,
                        const std::string& name);
  /// 1-of-4 -> two dual-rail channels (4 OR gates).
  std::pair<DualRail, DualRail> from_one_of_four(const OneOfN& q,
                                                 const std::string& name);

  /// DIMS XOR directly on 1-of-4 codes: out[i^j] fires when a=i, b=j
  /// (16 minterm C-elements + four OR merges). Computing in the 1-of-4
  /// domain halves the transitions per 2-bit operation versus two
  /// dual-rail XORs — section II's power argument for 1-of-N encoding.
  OneOfN q4_xor(const OneOfN& a, const OneOfN& b, const std::string& name);

  /// WCHB half-buffer stage over 1-of-N channels (one Muller2R per rail,
  /// shared inverted acknowledge).
  std::vector<OneOfN> latch_stage_1ofn(std::span<const OneOfN> data,
                                       NetId ack_in, const std::string& name);

  /// Fresh internal net with an auto-generated unique name.
  NetId fresh(const std::string& stem);

 private:
  std::string qualify(const std::string& name) const;
  std::string autoname(const std::string& stem);

  Netlist* nl_;
  std::string hier_;
  NetId reset_ = kNoNet;
  std::uint64_t counter_ = 0;
};

}  // namespace qdi::gates
