#include "qdi/gates/builder.hpp"

#include <array>
#include <cassert>

namespace qdi::gates {

using netlist::CellKind;

Builder::Builder(Netlist& nl, std::string top_hier)
    : nl_(&nl), hier_(std::move(top_hier)) {}

NetId Builder::reset_net() {
  if (reset_ == kNoNet) reset_ = nl_->add_input("rst");
  return reset_;
}

Builder::HierScope::HierScope(Builder& b, const std::string& name)
    : b_(&b), saved_(b.hier_) {
  if (b_->hier_.empty())
    b_->hier_ = name;
  else
    b_->hier_ += "/" + name;
}

Builder::HierScope::~HierScope() { b_->hier_ = std::move(saved_); }

std::string Builder::qualify(const std::string& name) const {
  return hier_.empty() ? name : hier_ + "/" + name;
}

std::string Builder::autoname(const std::string& stem) {
  return qualify(stem + "#" + std::to_string(counter_++));
}

NetId Builder::fresh(const std::string& stem) {
  return nl_->add_net(autoname(stem));
}

NetId Builder::input(const std::string& name) {
  return nl_->add_input(qualify(name), hier_);
}

void Builder::output(NetId net, const std::string& name) {
  nl_->mark_output(net, qualify(name), hier_);
}

DualRail Builder::dr_input(const std::string& name) {
  const NetId r0 = nl_->add_input(qualify(name + "_0"), hier_);
  const NetId r1 = nl_->add_input(qualify(name + "_1"), hier_);
  return as_dual_rail(r0, r1, name);
}

void Builder::dr_output(const DualRail& d, const std::string& name) {
  nl_->mark_output(d.r0, qualify(name + "_0"), hier_);
  nl_->mark_output(d.r1, qualify(name + "_1"), hier_);
}

OneOfN Builder::one_of_n_input(const std::string& name, std::size_t n) {
  OneOfN q;
  q.rails.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    q.rails.push_back(nl_->add_input(qualify(name + "_" + std::to_string(i)), hier_));
  q.ch = nl_->add_channel(qualify(name), q.rails);
  return q;
}

namespace {
std::string stem_or(const std::string& name, const char* stem) {
  return name.empty() ? stem : name;
}
}  // namespace

NetId Builder::inv(NetId a, const std::string& name) {
  const NetId out = fresh(stem_or(name, "inv"));
  nl_->add_cell(CellKind::Inv, nl_->net(out).name + ".g", {a}, out, hier_);
  return out;
}

NetId Builder::buf(NetId a, const std::string& name) {
  const NetId out = fresh(stem_or(name, "buf"));
  nl_->add_cell(CellKind::Buf, nl_->net(out).name + ".g", {a}, out, hier_);
  return out;
}

NetId Builder::or2(NetId a, NetId b, const std::string& name) {
  const NetId out = fresh(stem_or(name, "or"));
  nl_->add_cell(CellKind::Or2, nl_->net(out).name + ".g", {a, b}, out, hier_);
  return out;
}

NetId Builder::and2(NetId a, NetId b, const std::string& name) {
  const NetId out = fresh(stem_or(name, "and"));
  nl_->add_cell(CellKind::And2, nl_->net(out).name + ".g", {a, b}, out, hier_);
  return out;
}

NetId Builder::nor2(NetId a, NetId b, const std::string& name) {
  const NetId out = fresh(stem_or(name, "nor"));
  nl_->add_cell(CellKind::Nor2, nl_->net(out).name + ".g", {a, b}, out, hier_);
  return out;
}

NetId Builder::xor2(NetId a, NetId b, const std::string& name) {
  const NetId out = fresh(stem_or(name, "xor"));
  nl_->add_cell(CellKind::Xor2, nl_->net(out).name + ".g", {a, b}, out, hier_);
  return out;
}

NetId Builder::and_tree(std::span<const NetId> nets, const std::string& name) {
  assert(!nets.empty());
  if (nets.size() == 1) return buf(nets[0], name);
  std::vector<NetId> layer(nets.begin(), nets.end());
  while (layer.size() > 1) {
    std::vector<NetId> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(and2(layer[i], layer[i + 1], name));
    if (layer.size() % 2 != 0) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer[0];
}

NetId Builder::muller2(NetId a, NetId b, const std::string& name) {
  const NetId out = fresh(stem_or(name, "c"));
  nl_->add_cell(CellKind::Muller2, nl_->net(out).name + ".g", {a, b}, out, hier_);
  return out;
}

NetId Builder::muller3(NetId a, NetId b, NetId c, const std::string& name) {
  const NetId out = fresh(stem_or(name, "c3"));
  nl_->add_cell(CellKind::Muller3, nl_->net(out).name + ".g", {a, b, c}, out, hier_);
  return out;
}

NetId Builder::muller2r(NetId a, NetId b, const std::string& name) {
  const NetId out = fresh(stem_or(name, "cr"));
  nl_->add_cell(CellKind::Muller2R, nl_->net(out).name + ".g",
                {a, b, reset_net()}, out, hier_);
  return out;
}

NetId Builder::or_tree(std::span<const NetId> nets, const std::string& name) {
  assert(!nets.empty());
  if (nets.size() == 1) return buf(nets[0], name);
  std::vector<NetId> layer(nets.begin(), nets.end());
  while (layer.size() > 1) {
    std::vector<NetId> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(or2(layer[i], layer[i + 1], name));
    if (layer.size() % 2 != 0) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer[0];
}

NetId Builder::muller_tree(std::span<const NetId> nets, const std::string& name) {
  assert(!nets.empty());
  if (nets.size() == 1) return buf(nets[0], name);
  std::vector<NetId> layer(nets.begin(), nets.end());
  while (layer.size() > 1) {
    std::vector<NetId> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(muller2(layer[i], layer[i + 1], name));
    if (layer.size() % 2 != 0) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer[0];
}

DualRail Builder::or_tree_pair(std::span<const NetId> zeros,
                               std::span<const NetId> ones,
                               const std::string& name) {
  assert(!zeros.empty() && zeros.size() == ones.size() &&
         (zeros.size() & (zeros.size() - 1)) == 0 &&
         "or_tree_pair requires equal power-of-two rail sets");
  std::vector<NetId> l0(zeros.begin(), zeros.end());
  std::vector<NetId> l1(ones.begin(), ones.end());
  int layer = 0;
  while (l0.size() > 1) {
    std::vector<NetId> n0, n1, group;
    n0.reserve(l0.size() / 2);
    n1.reserve(l1.size() / 2);
    for (std::size_t i = 0; i + 1 < l0.size(); i += 2) {
      n0.push_back(or2(l0[i], l0[i + 1], name + "_t0"));
      n1.push_back(or2(l1[i], l1[i + 1], name + "_t1"));
    }
    group.insert(group.end(), n0.begin(), n0.end());
    group.insert(group.end(), n1.begin(), n1.end());
    // One node of the whole layer (across both rails) fires per token.
    nl_->add_channel(qualify(name + "_l" + std::to_string(layer)), group);
    l0 = std::move(n0);
    l1 = std::move(n1);
    ++layer;
  }
  return as_dual_rail(l0[0], l1[0], name);
}

DualRail Builder::as_dual_rail(NetId r0, NetId r1, const std::string& name,
                               NetId ack) {
  DualRail d;
  d.r0 = r0;
  d.r1 = r1;
  d.ch = nl_->add_channel(qualify(name), {r0, r1}, ack);
  return d;
}

DualRail Builder::dr_not(const DualRail& a) {
  // Same physical nets, complementary interpretation. A derived registry
  // entry keeps read-out and criterion evaluation coherent with the
  // handle's rail order.
  return as_dual_rail(a.r1, a.r0, nl_->channel(a.ch).name + "_n");
}

DualRail Builder::dr_xor(const DualRail& a, const DualRail& b,
                         const std::string& name) {
  // Fig. 4 structure: minterm Muller layer then per-rail OR merge.
  //   xor = 0 : (a0,b0) or (a1,b1);   xor = 1 : (a1,b0) or (a0,b1).
  const NetId m1 = muller2(a.r0, b.r0, name + "_m1");
  const NetId m2 = muller2(a.r1, b.r1, name + "_m2");
  const NetId m3 = muller2(a.r1, b.r0, name + "_m3");
  const NetId m4 = muller2(a.r0, b.r1, name + "_m4");
  // The minterm layer is a 1-of-4 code group: registering it lets the
  // criterion and the repair pass equalize its capacitances (otherwise
  // the per-minterm charge fingerprints the input pair).
  nl_->add_channel(qualify(name + "_mt"), {m1, m2, m3, m4});
  const NetId s0 = or2(m1, m2, name + "_0");
  const NetId s1 = or2(m3, m4, name + "_1");
  return as_dual_rail(s0, s1, name);
}

DualRail Builder::dr_xnor(const DualRail& a, const DualRail& b,
                          const std::string& name) {
  return dr_not(dr_xor(a, b, name));
}

DualRail Builder::dr_and(const DualRail& a, const DualRail& b,
                         const std::string& name) {
  // and = 1 only for (1,1); the three remaining minterms merge into rail 0.
  // Every minterm path is padded to the same depth (m10 goes through a
  // buffer, rail 1 through two) so the number of transitions per
  // computation is constant for all input values — section II's
  // balanced-path requirement ("the gate structure is modified to ensure
  // that all data paths ... involve a constant number of transitions").
  const NetId m00 = muller2(a.r0, b.r0, name + "_m00");
  const NetId m01 = muller2(a.r0, b.r1, name + "_m01");
  const NetId m10 = muller2(a.r1, b.r0, name + "_m10");
  const NetId m11 = muller2(a.r1, b.r1, name + "_m11");
  nl_->add_channel(qualify(name + "_mt"), {m00, m01, m10, m11});
  const NetId s0a = or2(m00, m01, name + "_0a");
  const NetId s0b = buf(m10, name + "_0b");
  const NetId s0 = or2(s0a, s0b, name + "_0");
  const NetId s1a = buf(m11, name + "_1a");
  const NetId s1 = buf(s1a, name + "_1");
  // Mid-layer group: exactly one of (s0a, s0b, s1a) fires per token.
  nl_->add_channel(qualify(name + "_ml"), {s0a, s0b, s1a});
  return as_dual_rail(s0, s1, name);
}

DualRail Builder::dr_or(const DualRail& a, const DualRail& b,
                        const std::string& name) {
  // De Morgan on the rails: or(a,b) = not(and(not a, not b)) — rail swaps
  // are free, so OR is the AND structure with rails exchanged.
  return dr_not(dr_and(dr_not(a), dr_not(b), name));
}

DualRail Builder::dr_mux2(const DualRail& sel, const DualRail& a,
                          const DualRail& b, const std::string& name) {
  // out_r = (sel=0 and a=r) or (sel=1 and b=r).
  const NetId m0a = muller2(sel.r0, a.r0, name + "_m0a");
  const NetId m0b = muller2(sel.r1, b.r0, name + "_m0b");
  const NetId m1a = muller2(sel.r0, a.r1, name + "_m1a");
  const NetId m1b = muller2(sel.r1, b.r1, name + "_m1b");
  nl_->add_channel(qualify(name + "_mt"), {m0a, m0b, m1a, m1b});
  const NetId s0 = or2(m0a, m0b, name + "_0");
  const NetId s1 = or2(m1a, m1b, name + "_1");
  return as_dual_rail(s0, s1, name);
}

std::vector<DualRail> Builder::latch_stage(std::span<const DualRail> data,
                                           NetId ack_in,
                                           const std::string& name) {
  // Shared inverter: the Cr latches open while the downstream consumer
  // has not acknowledged (ack low -> nack high), per the WCHB template.
  const NetId nack = inv(ack_in, name + "_nack");
  std::vector<DualRail> out;
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::string ch_name = name + "_q" + std::to_string(i);
    const NetId q0 = muller2r(data[i].r0, nack, ch_name + "_0");
    const NetId q1 = muller2r(data[i].r1, nack, ch_name + "_1");
    out.push_back(as_dual_rail(q0, q1, ch_name));
  }
  return out;
}

NetId Builder::completion(std::span<const DualRail> data, CompletionStyle style,
                          const std::string& name) {
  assert(!data.empty());
  if (data.size() == 1 && style == CompletionStyle::EmptyHigh) {
    // Degenerate case: exactly fig. 4's NOR over the two output rails.
    return nor2(data[0].r0, data[0].r1, name);
  }
  std::vector<NetId> valid;
  valid.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    valid.push_back(or2(data[i].r0, data[i].r1, name + "_v" + std::to_string(i)));
  const NetId all = muller_tree(valid, name + "_t");
  if (style == CompletionStyle::ValidHigh) return all;
  return inv(all, name + "_n");
}

OneOfN Builder::to_one_of_four(const DualRail& lo, const DualRail& hi,
                               const std::string& name) {
  OneOfN q;
  q.rails = {
      muller2(hi.r0, lo.r0, name + "_q0"),
      muller2(hi.r0, lo.r1, name + "_q1"),
      muller2(hi.r1, lo.r0, name + "_q2"),
      muller2(hi.r1, lo.r1, name + "_q3"),
  };
  q.ch = nl_->add_channel(qualify(name), q.rails);
  return q;
}

OneOfN Builder::q4_xor(const OneOfN& a, const OneOfN& b,
                       const std::string& name) {
  assert(a.rails.size() == 4 && b.rails.size() == 4);
  // Minterm layer: one C-element per (i, j) pair; registered as a
  // 1-of-16 group channel for the criterion/repair passes.
  std::array<std::array<NetId, 4>, 4> m{};
  std::vector<NetId> group;
  group.reserve(16);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          muller2(a.rails[static_cast<std::size_t>(i)],
                  b.rails[static_cast<std::size_t>(j)],
                  name + "_m" + std::to_string(i) + std::to_string(j));
      group.push_back(m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
  }
  nl_->add_channel(qualify(name + "_mt"), group);

  OneOfN out;
  out.rails.resize(4);
  for (int v = 0; v < 4; ++v) {
    std::array<NetId, 4> terms{};
    int t = 0;
    for (int i = 0; i < 4; ++i)
      terms[static_cast<std::size_t>(t++)] =
          m[static_cast<std::size_t>(i)][static_cast<std::size_t>(i ^ v)];
    out.rails[static_cast<std::size_t>(v)] =
        or_tree(std::span<const NetId>(terms.data(), 4),
                name + "_v" + std::to_string(v));
  }
  out.ch = nl_->add_channel(qualify(name), out.rails);
  return out;
}

std::vector<OneOfN> Builder::latch_stage_1ofn(std::span<const OneOfN> data,
                                              NetId ack_in,
                                              const std::string& name) {
  const NetId nack = inv(ack_in, name + "_nack");
  std::vector<OneOfN> out;
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::string ch_name = name + "_q" + std::to_string(i);
    OneOfN q;
    q.rails.reserve(data[i].rails.size());
    for (std::size_t r = 0; r < data[i].rails.size(); ++r)
      q.rails.push_back(muller2r(data[i].rails[r], nack,
                                 ch_name + "_" + std::to_string(r)));
    q.ch = nl_->add_channel(qualify(ch_name), q.rails);
    out.push_back(std::move(q));
  }
  return out;
}

std::pair<DualRail, DualRail> Builder::from_one_of_four(const OneOfN& q,
                                                        const std::string& name) {
  assert(q.rails.size() == 4);
  const NetId lo0 = or2(q.rails[0], q.rails[2], name + "_lo0");
  const NetId lo1 = or2(q.rails[1], q.rails[3], name + "_lo1");
  const NetId hi0 = or2(q.rails[0], q.rails[1], name + "_hi0");
  const NetId hi1 = or2(q.rails[2], q.rails[3], name + "_hi1");
  return {as_dual_rail(lo0, lo1, name + "_lo"),
          as_dual_rail(hi0, hi1, name + "_hi")};
}

}  // namespace qdi::gates
