#include "qdi/gates/testbench.hpp"

#include <functional>

#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"
#include "qdi/gates/sbox.hpp"

namespace qdi::gates {

using netlist::CellKind;

XorStage build_xor_stage(double period_ps) {
  XorStage c;
  c.nl.set_name("xor_stage");
  Builder b(c.nl, "xor");

  c.a = b.dr_input("a");
  c.b = b.dr_input("b");
  c.ack_in = b.input("ack_in");
  c.reset = b.reset_net();

  // Level 1: minterm Muller gates M1..M4 (fig. 5 ordering:
  // M1=(a0,b0), M2=(a1,b1) -> co0;  M3=(a1,b0), M4=(a0,b1) -> co1).
  c.m[0] = b.muller2(c.a.r0, c.b.r0, "m1");
  c.m[1] = b.muller2(c.a.r1, c.b.r1, "m2");
  c.m[2] = b.muller2(c.a.r1, c.b.r0, "m3");
  c.m[3] = b.muller2(c.a.r0, c.b.r1, "m4");

  // Level 2: OR rail merges O1, O2.
  c.s0 = b.or2(c.m[0], c.m[1], "s0");
  c.s1 = b.or2(c.m[2], c.m[3], "s1");

  // Level 3: Cr output latches H1, H2 (gated by inverted downstream ack).
  const NetId nack = b.inv(c.ack_in, "nack");
  c.co0 = b.muller2r(c.s0, nack, "co0");
  c.co1 = b.muller2r(c.s1, nack, "co1");
  DualRail out = b.as_dual_rail(c.co0, c.co1, "co");
  c.out_ch = out.ch;

  // Level 4: the fig. 4 completion NOR N1 (high when the output is empty).
  c.ack_out = b.nor2(c.co0, c.co1, "ack_out");
  b.output(c.ack_out, "ack");
  b.dr_output(out, "co_out");

  c.env.inputs = {c.a.ch, c.b.ch};
  c.env.outputs = {c.out_ch};
  c.env.acks_to_block = {c.ack_in};
  c.env.reset = c.reset;
  c.env.period_ps = period_ps;
  return c;
}

namespace {

/// Common body for the AES/DES first-round slices: x = p ^ k, q =
/// latch(SBOX(x)), plus completion.
template <std::size_t NIn, std::size_t NOut>
void build_slice(Builder& b, std::array<DualRail, NIn>& p,
                 std::array<DualRail, NIn>& k, std::array<DualRail, NIn>& x,
                 std::array<DualRail, NOut>& q, NetId& ack_in, NetId& ack_out,
                 const std::function<unsigned(unsigned)>& table) {
  for (std::size_t i = 0; i < NIn; ++i)
    p[i] = b.dr_input("p" + std::to_string(i));
  for (std::size_t i = 0; i < NIn; ++i)
    k[i] = b.dr_input("k" + std::to_string(i));
  ack_in = b.input("ack_in");

  {
    Builder::HierScope scope(b, "addkey0");
    for (std::size_t i = 0; i < NIn; ++i)
      x[i] = b.dr_xor(p[i], k[i], "x" + std::to_string(i));
  }

  LutResult lut;
  {
    Builder::HierScope scope(b, "bytesub");
    lut = build_balanced_lut(b, std::span<const DualRail>(x.data(), NIn),
                             static_cast<int>(NOut), table, "sbox");
  }

  std::vector<DualRail> latched;
  {
    Builder::HierScope scope(b, "hb");
    latched = b.latch_stage(lut.outputs, ack_in, "q");
    for (std::size_t i = 0; i < NOut; ++i) q[i] = latched[i];
    ack_out = b.completion(latched, CompletionStyle::EmptyHigh, "cd");
  }
  b.output(ack_out, "ack");
  for (std::size_t i = 0; i < NOut; ++i)
    b.dr_output(q[i], "q" + std::to_string(i) + "_out");
}

}  // namespace

AesByteSlice build_aes_byte_slice(double period_ps) {
  AesByteSlice c;
  c.nl.set_name("aes_byte_slice");
  Builder b(c.nl, "slice");
  c.reset = b.reset_net();

  build_slice<8, 8>(b, c.p, c.k, c.x, c.q, c.ack_in, c.ack_out,
                    [](unsigned v) {
                      return static_cast<unsigned>(
                          crypto::aes_sbox(static_cast<std::uint8_t>(v)));
                    });

  for (const auto& d : c.p) c.env.inputs.push_back(d.ch);
  for (const auto& d : c.k) c.env.inputs.push_back(d.ch);
  for (const auto& d : c.q) c.env.outputs.push_back(d.ch);
  c.env.acks_to_block = {c.ack_in};
  c.env.reset = c.reset;
  c.env.period_ps = period_ps;
  return c;
}

DesSboxSync build_des_sbox_sync(int box, double period_ps) {
  DesSboxSync c;
  c.nl.set_name("des_sbox_sync");
  Builder b(c.nl, "sync");

  for (std::size_t i = 0; i < 6; ++i)
    c.p[i] = b.dr_input("p" + std::to_string(i));
  for (std::size_t i = 0; i < 6; ++i)
    c.k[i] = b.dr_input("k" + std::to_string(i));
  c.ack_in = b.input("ack_in");

  // Key addition on bare rail-1 wires — the nets a DFA adversary targets.
  // Named like the QDI slices' addkey stage so site filters transfer.
  {
    Builder::HierScope scope(b, "addkey0");
    for (std::size_t i = 0; i < 6; ++i)
      c.x[i] = b.xor2(c.p[i].r1, c.k[i].r1, "x" + std::to_string(i));
  }

  // Fake completion: input validity only. Nothing downstream of the
  // S-box feeds it, which is exactly the unprotected design's flaw.
  {
    Builder::HierScope scope(b, "cd");
    std::vector<NetId> valids;
    for (std::size_t i = 0; i < 6; ++i)
      valids.push_back(b.or2(c.p[i].r0, c.p[i].r1, "vp" + std::to_string(i)));
    for (std::size_t i = 0; i < 6; ++i)
      valids.push_back(b.or2(c.k[i].r0, c.k[i].r1, "vk" + std::to_string(i)));
    c.dv = b.and_tree(valids, "dv");
  }

  // S-box as shared-minterm SOP over the single-rail x word.
  std::array<NetId, 4> bits{};
  {
    Builder::HierScope scope(b, "bytesub");
    std::array<NetId, 6> nx{};
    for (std::size_t i = 0; i < 6; ++i)
      nx[i] = b.inv(c.x[i], "nx" + std::to_string(i));
    std::array<NetId, 64> minterm{};
    for (unsigned v = 0; v < 64; ++v) {
      std::array<NetId, 6> lits{};
      for (std::size_t i = 0; i < 6; ++i)
        lits[i] = (v >> i) & 1u ? c.x[i] : nx[i];
      minterm[v] = b.and_tree(lits, "mt" + std::to_string(v));
    }
    for (int j = 0; j < 4; ++j) {
      std::vector<NetId> ones;
      for (unsigned v = 0; v < 64; ++v)
        if ((crypto::des_sbox(box, static_cast<std::uint8_t>(v)) >> j) & 1u)
          ones.push_back(minterm[v]);
      bits[j] = b.or_tree(ones, "b" + std::to_string(j));
    }
  }

  // Validity-gated output rails: complementary only while fault-free.
  {
    Builder::HierScope scope(b, "out");
    for (int j = 0; j < 4; ++j) {
      const std::string qn = "q" + std::to_string(j);
      const NetId r1 = b.and2(bits[static_cast<std::size_t>(j)], c.dv, qn + "_t");
      const NetId r0 = b.and2(b.inv(bits[static_cast<std::size_t>(j)], qn + "_n"),
                              c.dv, qn + "_f");
      c.q[static_cast<std::size_t>(j)] = b.as_dual_rail(r0, r1, qn);
    }
  }
  // The ack input plays no logical role; echo it so no net floats.
  b.output(b.buf(c.ack_in, "ack_echo"), "ack");
  for (std::size_t j = 0; j < 4; ++j)
    b.dr_output(c.q[j], "q" + std::to_string(j) + "_out");

  for (const auto& d : c.p) c.env.inputs.push_back(d.ch);
  for (const auto& d : c.k) c.env.inputs.push_back(d.ch);
  for (const auto& d : c.q) c.env.outputs.push_back(d.ch);
  c.env.acks_to_block = {c.ack_in};
  c.env.reset = c.reset;
  c.env.period_ps = period_ps;
  return c;
}

DesSboxSlice build_des_sbox_slice(int box, double period_ps) {
  DesSboxSlice c;
  c.nl.set_name("des_sbox_slice");
  Builder b(c.nl, "des");
  c.reset = b.reset_net();

  build_slice<6, 4>(b, c.p, c.k, c.x, c.q, c.ack_in, c.ack_out,
                    [box](unsigned v) {
                      return static_cast<unsigned>(
                          crypto::des_sbox(box, static_cast<std::uint8_t>(v)));
                    });

  for (const auto& d : c.p) c.env.inputs.push_back(d.ch);
  for (const auto& d : c.k) c.env.inputs.push_back(d.ch);
  for (const auto& d : c.q) c.env.outputs.push_back(d.ch);
  c.env.acks_to_block = {c.ack_in};
  c.env.reset = c.reset;
  c.env.period_ps = period_ps;
  return c;
}

}  // namespace qdi::gates
