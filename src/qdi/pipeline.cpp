#include "qdi/gates/pipeline.hpp"

#include <cassert>
#include <string>

namespace qdi::gates {

using netlist::CellKind;

WchbFifo build_wchb_fifo(std::size_t width, std::size_t depth,
                         double period_ps) {
  assert(width >= 1 && depth >= 1);
  WchbFifo f;
  f.nl.set_name("wchb_fifo");
  Builder b(f.nl, "fifo");
  f.reset = b.reset_net();
  f.ack_in = b.input("ack_in");

  // Producer-side channels.
  f.in.reserve(width);
  for (std::size_t c = 0; c < width; ++c)
    f.in.push_back(b.dr_input("in" + std::to_string(c)));

  // Pre-create every stage's output rail nets so the backward-flowing
  // acknowledge wiring can reference later stages before their cells are
  // instantiated.
  std::vector<std::vector<DualRail>> q(depth);
  for (std::size_t s = 0; s < depth; ++s) {
    q[s].reserve(width);
    for (std::size_t c = 0; c < width; ++c) {
      const std::string name =
          "fifo/q" + std::to_string(s) + "_" + std::to_string(c);
      const NetId r0 = f.nl.add_net(name + "_0");
      const NetId r1 = f.nl.add_net(name + "_1");
      q[s].push_back(b.as_dual_rail(r0, r1, "q" + std::to_string(s) + "_" +
                                                std::to_string(c)));
    }
  }

  // Completion detectors: ackv[s] rises when stage s holds valid data.
  std::vector<NetId> ackv(depth);
  for (std::size_t s = 0; s < depth; ++s) {
    Builder::HierScope scope(b, "cd" + std::to_string(s));
    ackv[s] = b.completion(q[s], CompletionStyle::ValidHigh,
                           "cd" + std::to_string(s));
  }

  // Latch stages: stage s is gated by the inverted acknowledge of stage
  // s+1 (the environment acknowledges the last stage).
  for (std::size_t s = 0; s < depth; ++s) {
    Builder::HierScope scope(b, "st" + std::to_string(s));
    const NetId ack_next = (s + 1 < depth) ? ackv[s + 1] : f.ack_in;
    const NetId nack = b.inv(ack_next, "nack" + std::to_string(s));
    const std::vector<DualRail>& din = (s == 0) ? f.in : q[s - 1];
    for (std::size_t c = 0; c < width; ++c) {
      f.nl.add_cell(CellKind::Muller2R,
                    "fifo/st" + std::to_string(s) + "/l" + std::to_string(c) + "_0",
                    {din[c].r0, nack, f.reset}, q[s][c].r0, b.hier());
      f.nl.add_cell(CellKind::Muller2R,
                    "fifo/st" + std::to_string(s) + "/l" + std::to_string(c) + "_1",
                    {din[c].r1, nack, f.reset}, q[s][c].r1, b.hier());
    }
  }

  f.out = q[depth - 1];
  f.ack_out = ackv[0];
  b.output(f.ack_out, "ack_out");
  for (std::size_t c = 0; c < width; ++c)
    b.dr_output(f.out[c], "out" + std::to_string(c));

  for (const DualRail& d : f.in) f.env.inputs.push_back(d.ch);
  for (const DualRail& d : f.out) f.env.outputs.push_back(d.ch);
  f.env.acks_to_block = {f.ack_in};
  f.env.reset = f.reset;
  f.env.period_ps = period_ps;
  return f;
}

}  // namespace qdi::gates
