#include "qdi/gates/sbox.hpp"

#include <cassert>

#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"

namespace qdi::gates {

LutResult build_balanced_lut(Builder& b, std::span<const DualRail> in,
                             int out_bits,
                             const std::function<unsigned(unsigned)>& table,
                             const std::string& name) {
  assert(!in.empty() && in.size() <= 16);
  assert(out_bits >= 1 && out_bits <= 16);
  Builder::HierScope scope(b, name);

  LutResult res;

  // --- decode: one-hot minterm lines --------------------------------------
  // lines[m] is high iff input k equals bit k of m, for all k. Every
  // decode level is a 1-of-2^(k+1) code group and is registered as a
  // channel so the dissymmetry criterion (and the repair pass) covers it:
  // an unbalanced decode level would fingerprint the input word.
  std::vector<NetId> lines = {in[0].r0, in[0].r1};
  for (std::size_t k = 1; k < in.size(); ++k) {
    std::vector<NetId> next(lines.size() * 2);
    for (std::size_t m = 0; m < lines.size(); ++m) {
      next[m] = b.muller2(lines[m], in[k].r0,
                          "dec" + std::to_string(k) + "_" + std::to_string(m));
      next[m + lines.size()] =
          b.muller2(lines[m], in[k].r1,
                    "dec" + std::to_string(k) + "_" +
                        std::to_string(m + lines.size()));
    }
    lines = std::move(next);
    b.netlist().add_channel(
        b.hier().empty() ? "dec_l" + std::to_string(k)
                         : b.hier() + "/dec_l" + std::to_string(k),
        lines);
  }
  res.minterm_lines = lines;
  res.decode_levels = static_cast<int>(in.size()) - 1;

  // --- re-encode: per-rail OR trees ---------------------------------------
  // Balanced tables (AES, DES: every output column half ones) get paired,
  // shape-identical trees whose layers are registered as group channels;
  // unbalanced tables fall back to independent trees (still functionally
  // correct, but with weaker balance guarantees — documented in
  // DESIGN.md).
  res.outputs.reserve(static_cast<std::size_t>(out_bits));
  for (int bit = 0; bit < out_bits; ++bit) {
    std::vector<NetId> ones, zeros;
    for (std::size_t m = 0; m < lines.size(); ++m) {
      if ((table(static_cast<unsigned>(m)) >> bit) & 1u)
        ones.push_back(lines[m]);
      else
        zeros.push_back(lines[m]);
    }
    assert(!ones.empty() && !zeros.empty() &&
           "constant output bit: not a valid dual-rail function");
    const std::string bit_name = "out" + std::to_string(bit);
    const bool paired = ones.size() == zeros.size() &&
                        (ones.size() & (ones.size() - 1)) == 0;
    if (paired) {
      res.outputs.push_back(b.or_tree_pair(zeros, ones, bit_name));
    } else {
      const NetId r1 = b.or_tree(ones, bit_name + "_1t");
      const NetId r0 = b.or_tree(zeros, bit_name + "_0t");
      res.outputs.push_back(b.as_dual_rail(r0, r1, bit_name));
    }
  }
  return res;
}

LutResult build_aes_sbox(Builder& b, std::span<const DualRail> in,
                         const std::string& name) {
  assert(in.size() == 8);
  return build_balanced_lut(
      b, in, 8,
      [](unsigned x) { return static_cast<unsigned>(crypto::aes_sbox(static_cast<std::uint8_t>(x))); },
      name);
}

LutResult build_des_sbox(Builder& b, int box, std::span<const DualRail> in,
                         const std::string& name) {
  assert(in.size() == 6);
  return build_balanced_lut(
      b, in, 4,
      [box](unsigned x) {
        return static_cast<unsigned>(crypto::des_sbox(box, static_cast<std::uint8_t>(x)));
      },
      name);
}

}  // namespace qdi::gates
