#include "qdi/netlist/graph.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <sstream>

namespace qdi::netlist {

Graph::Graph(const Netlist& nl) : nl_(&nl) {
  const std::size_t n = nl.num_cells();
  succ_.assign(n, {});
  pred_.assign(n, {});

  for (CellId c = 0; c < n; ++c) {
    const Cell& cell = nl.cell(c);
    if (cell.output == kNoNet) continue;
    for (const Pin& p : nl.net(cell.output).sinks) {
      succ_[c].push_back(p.cell);
      pred_[p.cell].push_back(c);
    }
  }
  levelize();
}

void Graph::levelize() {
  const std::size_t n = succ_.size();
  // Kahn's algorithm with cycle-cutting at Muller gates: an edge u->v is a
  // "feedback" edge when v is a Muller gate and the edge closes a cycle.
  // We approximate by ignoring, for in-degree purposes, edges into Muller
  // gates coming from cells that are not yet resolvable — implemented as:
  // run Kahn normally; when it stalls, force-release the unresolved Muller
  // gate with the smallest id (its remaining inputs are feedback).
  std::vector<int> indeg(n, 0);
  for (CellId c = 0; c < n; ++c)
    for (CellId s : succ_[c]) indeg[s]++;

  level_.assign(n, 0);
  topo_.clear();
  topo_.reserve(n);
  comb_cycle_ = false;

  std::vector<char> done(n, 0);
  std::priority_queue<CellId, std::vector<CellId>, std::greater<>> ready;
  for (CellId c = 0; c < n; ++c)
    if (indeg[c] == 0) ready.push(c);

  std::size_t resolved = 0;
  while (resolved < n) {
    if (ready.empty()) {
      // Stall: every unresolved cell is on a cycle. Release the smallest
      // unresolved Muller gate; if none exists the cycle is combinational.
      CellId pick = kNoCell;
      for (CellId c = 0; c < n; ++c) {
        if (!done[c] && is_muller(nl_->cell(c).kind)) {
          pick = c;
          break;
        }
      }
      if (pick == kNoCell) {
        comb_cycle_ = true;
        // Fall back: release the smallest unresolved cell to terminate.
        for (CellId c = 0; c < n; ++c)
          if (!done[c]) {
            pick = c;
            break;
          }
      }
      indeg[pick] = 0;
      ready.push(pick);
      continue;
    }
    const CellId c = ready.top();
    ready.pop();
    if (done[c]) continue;
    done[c] = 1;
    ++resolved;
    topo_.push_back(c);

    // Level: 1 + max level of resolved predecessors (unresolved ones are
    // feedback and do not constrain the level). Input pseudo-cells stay 0.
    int lvl = 0;
    for (CellId p : pred_[c])
      if (done[p]) lvl = std::max(lvl, level_[p] + 1);
    if (nl_->cell(c).kind == CellKind::Input) lvl = 0;
    level_[c] = lvl;

    for (CellId s : succ_[c]) {
      if (--indeg[s] == 0 && !done[s]) ready.push(s);
    }
  }

  nc_ = 0;
  for (CellId c = 0; c < n; ++c)
    if (!is_pseudo(nl_->cell(c).kind)) nc_ = std::max(nc_, level_[c]);

  by_level_.assign(static_cast<std::size_t>(nc_) + 1, {});
  for (CellId c = 0; c < n; ++c) {
    if (nl_->cell(c).kind == CellKind::Output) continue;
    const int l = std::min(level_[c], nc_);
    by_level_[static_cast<std::size_t>(l)].push_back(c);
  }
}

std::vector<std::size_t> Graph::level_occupancy() const {
  std::vector<std::size_t> occ;
  occ.reserve(by_level_.size() > 0 ? by_level_.size() - 1 : 0);
  for (std::size_t l = 1; l < by_level_.size(); ++l)
    occ.push_back(by_level_[l].size());
  return occ;
}

std::vector<CellId> Graph::fanin_cone(NetId net) const {
  std::vector<CellId> cone;
  std::vector<char> seen(succ_.size(), 0);
  std::vector<CellId> stack;
  const CellId root = nl_->net(net).driver;
  if (root == kNoCell) return cone;
  stack.push_back(root);
  seen[root] = 1;
  while (!stack.empty()) {
    const CellId c = stack.back();
    stack.pop_back();
    cone.push_back(c);
    for (CellId p : pred_[c]) {
      // Do not traverse feedback into a deeper level: only walk edges that
      // decrease or keep the level, which terminates on cyclic graphs.
      if (!seen[p] && level_[p] <= level_[c]) {
        seen[p] = 1;
        stack.push_back(p);
      }
    }
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

namespace {
void emit_vertex(std::ostringstream& os, const Netlist& nl, CellId c, int level) {
  const Cell& cell = nl.cell(c);
  os << "  c" << c << " [label=\"" << cell.name << "\\n"
     << name(cell.kind) << " L" << level << "\"";
  if (is_muller(cell.kind)) os << ", shape=circle";
  if (is_pseudo(cell.kind)) os << ", shape=plaintext";
  os << "];\n";
}
}  // namespace

std::string Graph::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << nl_->name() << "\" {\n  rankdir=LR;\n";
  for (CellId c = 0; c < succ_.size(); ++c) emit_vertex(os, *nl_, c, level_[c]);
  for (CellId c = 0; c < succ_.size(); ++c) {
    const Cell& cell = nl_->cell(c);
    if (cell.output == kNoNet) continue;
    const Net& net = nl_->net(cell.output);
    for (const Pin& p : net.sinks) {
      os << "  c" << c << " -> c" << p.cell << " [label=\"" << net.name << "\\n"
         << net.cap_ff << "fF\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string Graph::cone_to_dot(NetId root) const {
  const std::vector<CellId> cone = fanin_cone(root);
  std::vector<char> in_cone(succ_.size(), 0);
  for (CellId c : cone) in_cone[c] = 1;

  std::ostringstream os;
  os << "digraph \"" << nl_->name() << "_cone\" {\n  rankdir=LR;\n";
  for (CellId c : cone) emit_vertex(os, *nl_, c, level_[c]);
  for (CellId c : cone) {
    const Cell& cell = nl_->cell(c);
    if (cell.output == kNoNet) continue;
    const Net& net = nl_->net(cell.output);
    for (const Pin& p : net.sinks) {
      if (!in_cone[p.cell]) continue;
      os << "  c" << c << " -> c" << p.cell << " [label=\"" << net.name << "\\n"
         << net.cap_ff << "fF\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace qdi::netlist
