#include "qdi/netlist/netlist.hpp"

#include <cassert>
#include <sstream>
#include <utility>

namespace qdi::netlist {

Netlist::Netlist(const Netlist& other)
    : name_(other.name_),
      cells_(other.cells_),
      nets_(other.nets_),
      channels_(other.channels_),
      inputs_(other.inputs_),
      outputs_(other.outputs_) {}

Netlist& Netlist::operator=(const Netlist& other) {
  if (this != &other) {
    name_ = other.name_;
    cells_ = other.cells_;
    nets_ = other.nets_;
    channels_ = other.channels_;
    inputs_ = other.inputs_;
    outputs_ = other.outputs_;
    invalidate_name_index();
  }
  return *this;
}

Netlist::Netlist(Netlist&& other) noexcept
    : name_(std::move(other.name_)),
      cells_(std::move(other.cells_)),
      nets_(std::move(other.nets_)),
      channels_(std::move(other.channels_)),
      inputs_(std::move(other.inputs_)),
      outputs_(std::move(other.outputs_)) {}

Netlist& Netlist::operator=(Netlist&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    cells_ = std::move(other.cells_);
    nets_ = std::move(other.nets_);
    channels_ = std::move(other.channels_);
    inputs_ = std::move(other.inputs_);
    outputs_ = std::move(other.outputs_);
    invalidate_name_index();
  }
  return *this;
}

NetId Netlist::add_net(std::string name) {
  invalidate_name_index();
  const NetId id = static_cast<NetId>(nets_.size());
  Net n;
  n.name = std::move(name);
  nets_.push_back(std::move(n));
  return id;
}

CellId Netlist::add_cell(CellKind kind, std::string name,
                         std::vector<NetId> inputs, NetId output,
                         std::string hier) {
  const auto& ki = info(kind);
  assert(static_cast<int>(inputs.size()) == ki.num_inputs &&
         "add_cell: input count does not match cell arity");
  (void)ki;

  invalidate_name_index();
  const CellId id = static_cast<CellId>(cells_.size());
  Cell c;
  c.name = std::move(name);
  c.kind = kind;
  c.inputs = std::move(inputs);
  c.output = output;
  c.hier = std::move(hier);

  for (std::size_t pin = 0; pin < c.inputs.size(); ++pin) {
    assert(c.inputs[pin] < nets_.size() && "add_cell: unknown input net");
    nets_[c.inputs[pin]].sinks.push_back(Pin{id, static_cast<int>(pin)});
  }
  if (output != kNoNet) {
    assert(output < nets_.size() && "add_cell: unknown output net");
    assert(nets_[output].driver == kNoCell && "add_cell: net already driven");
    nets_[output].driver = id;
  }
  cells_.push_back(std::move(c));
  return id;
}

NetId Netlist::add_input(std::string name, std::string hier) {
  const NetId net = add_net(name);
  add_cell(CellKind::Input, name + ".in", {}, net, std::move(hier));
  inputs_.push_back(net);
  return net;
}

CellId Netlist::mark_output(NetId net, std::string name, std::string hier) {
  const CellId c =
      add_cell(CellKind::Output, std::move(name), {net}, kNoNet, std::move(hier));
  outputs_.push_back(net);
  return c;
}

ChannelId Netlist::add_channel(std::string name, std::vector<NetId> rails,
                               NetId ack) {
  assert(rails.size() >= 2 && "channel needs at least two rails (1-of-N)");
  invalidate_name_index();
  const ChannelId id = static_cast<ChannelId>(channels_.size());
  Channel ch;
  ch.name = std::move(name);
  ch.rails = std::move(rails);
  ch.ack = ack;
  channels_.push_back(std::move(ch));
  return id;
}

void Netlist::rewire_input(CellId cell, int pin, NetId new_net) {
  assert(cell < cells_.size() && "rewire_input: unknown cell");
  assert(new_net < nets_.size() && "rewire_input: unknown net");
  Cell& c = cells_[cell];
  assert(pin >= 0 && static_cast<std::size_t>(pin) < c.inputs.size() &&
         "rewire_input: pin out of range");
  const NetId old_net = c.inputs[static_cast<std::size_t>(pin)];
  if (old_net == new_net) return;
  invalidate_name_index();
  auto& old_sinks = nets_[old_net].sinks;
  const Pin target{cell, pin};
  for (std::size_t i = 0; i < old_sinks.size(); ++i) {
    if (old_sinks[i] == target) {
      old_sinks.erase(old_sinks.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  nets_[new_net].sinks.push_back(target);
  c.inputs[static_cast<std::size_t>(pin)] = new_net;
}

void Netlist::build_name_index_locked() const {
  if (index_built_.load(std::memory_order_acquire)) return;
  NameIndex idx;
  idx.nets.reserve(nets_.size());
  idx.cells.reserve(cells_.size());
  idx.channels.reserve(channels_.size());
  // try_emplace keeps the first occurrence, matching the linear scan's
  // lowest-id resolution of duplicate names.
  for (NetId i = 0; i < nets_.size(); ++i)
    idx.nets.try_emplace(nets_[i].name, i);
  for (CellId i = 0; i < cells_.size(); ++i)
    idx.cells.try_emplace(cells_[i].name, i);
  for (ChannelId i = 0; i < channels_.size(); ++i)
    idx.channels.try_emplace(channels_[i].name, i);
  name_index_ = std::move(idx);
  index_built_.store(true, std::memory_order_release);
}

namespace {

template <typename Map, typename Id>
Id indexed_find(const Map& map, std::string_view name, Id missing) {
  const auto it = map.find(name);
  return it == map.end() ? missing : it->second;
}

}  // namespace

NetId Netlist::find_net(std::string_view name) const {
  if (nets_.size() >= kNameIndexThreshold) {
    const std::lock_guard<std::mutex> lock(index_mu_);
    build_name_index_locked();
    return indexed_find(name_index_.nets, name, kNoNet);
  }
  for (NetId i = 0; i < nets_.size(); ++i)
    if (nets_[i].name == name) return i;
  return kNoNet;
}

CellId Netlist::find_cell(std::string_view name) const {
  if (cells_.size() >= kNameIndexThreshold) {
    const std::lock_guard<std::mutex> lock(index_mu_);
    build_name_index_locked();
    return indexed_find(name_index_.cells, name, kNoCell);
  }
  for (CellId i = 0; i < cells_.size(); ++i)
    if (cells_[i].name == name) return i;
  return kNoCell;
}

ChannelId Netlist::find_channel(std::string_view name) const {
  if (channels_.size() >= kNameIndexThreshold) {
    const std::lock_guard<std::mutex> lock(index_mu_);
    build_name_index_locked();
    return indexed_find(name_index_.channels, name, kNoChannel);
  }
  for (ChannelId i = 0; i < channels_.size(); ++i)
    if (channels_[i].name == name) return i;
  return kNoChannel;
}

std::size_t Netlist::num_gates() const noexcept {
  std::size_t n = 0;
  for (const auto& c : cells_)
    if (!is_pseudo(c.kind)) ++n;
  return n;
}

std::vector<std::size_t> Netlist::kind_histogram() const {
  std::vector<std::size_t> hist(kNumCellKinds, 0);
  for (const auto& c : cells_) ++hist[static_cast<int>(c.kind)];
  return hist;
}

std::size_t Netlist::transistor_count() const noexcept {
  std::size_t n = 0;
  for (const auto& c : cells_) n += info(c.kind).transistor_count;
  return n;
}

void Netlist::reset_caps(double cap_ff) {
  for (auto& n : nets_) {
    n.cap_ff = cap_ff;
    n.wirelength_um = 0.0;
  }
}

std::vector<std::string> Netlist::check() const {
  std::vector<std::string> issues;
  auto complain = [&](const std::string& msg) { issues.push_back(msg); };

  for (NetId i = 0; i < nets_.size(); ++i) {
    const Net& n = nets_[i];
    if (n.driver == kNoCell)
      complain("net '" + n.name + "' has no driver");
    if (n.driver == kNoCell && n.sinks.empty())
      complain("net '" + n.name + "' is floating (no driver, no sinks)");
    if (n.cap_ff <= 0.0) {
      std::ostringstream os;
      os << "net '" << n.name << "' has non-positive capacitance " << n.cap_ff;
      complain(os.str());
    }
    for (const Pin& p : n.sinks) {
      if (p.cell >= cells_.size()) {
        complain("net '" + n.name + "' has sink on unknown cell");
        continue;
      }
      const Cell& c = cells_[p.cell];
      if (p.pin < 0 || p.pin >= static_cast<int>(c.inputs.size()) ||
          c.inputs[static_cast<std::size_t>(p.pin)] != i)
        complain("net '" + n.name + "' sink pin inconsistent with cell '" +
                 c.name + "'");
    }
  }

  for (CellId i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    if (static_cast<int>(c.inputs.size()) != info(c.kind).num_inputs)
      complain("cell '" + c.name + "' arity mismatch");
    if (c.kind != CellKind::Output && c.output == kNoNet)
      complain("cell '" + c.name + "' drives no net");
    if (c.output != kNoNet) {
      if (c.output >= nets_.size())
        complain("cell '" + c.name + "' drives unknown net");
      else if (nets_[c.output].driver != i)
        complain("cell '" + c.name + "' driver link broken on net '" +
                 nets_[c.output].name + "'");
    }
  }

  for (const Channel& ch : channels_) {
    for (NetId r : ch.rails)
      if (r >= nets_.size())
        complain("channel '" + ch.name + "' references unknown rail net");
    if (ch.ack != kNoNet && ch.ack >= nets_.size())
      complain("channel '" + ch.name + "' references unknown ack net");
    if (ch.rails.size() < 2)
      complain("channel '" + ch.name + "' has fewer than 2 rails");
  }
  return issues;
}

}  // namespace qdi::netlist
