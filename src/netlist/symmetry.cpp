#include "qdi/netlist/symmetry.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace qdi::netlist {

namespace {

/// Canonical structural signature of a cell's fanin cone, computed
/// bottom-up with memoization. Two cones are isomorphic iff their root
/// signatures are equal. Inputs are canonicalized by arrival order of
/// sorted child signatures, so pin permutations of commutative gates do
/// not break the match (all gates in the QDI library are commutative
/// except the reset pin of Muller*R, which is kept positional).
class ConeSignature {
 public:
  ConeSignature(const Graph& g) : g_(g) {}

  const std::string& signature(CellId c) {
    auto it = memo_.find(c);
    if (it != memo_.end()) return it->second;
    // Mark in-progress to terminate on feedback loops: a cycle back into
    // an in-progress cell contributes a fixed token.
    auto [slot, inserted] = memo_.emplace(c, "@cycle");
    if (!inserted) return slot->second;

    const Cell& cell = g_.netlist().cell(c);
    std::ostringstream os;
    os << name(cell.kind);
    if (cell.kind == CellKind::Input) {
      // Primary inputs are leaves; they match any other primary input so
      // that e.g. (a0,b0) cone matches (a1,b1) cone.
      os << "()";
      slot->second = os.str();
      return slot->second;
    }

    std::vector<std::string> kids;
    const bool has_reset = info(cell.kind).has_reset;
    const std::size_t data_pins =
        cell.inputs.size() - (has_reset ? 1u : 0u);
    for (std::size_t pin = 0; pin < data_pins; ++pin) {
      const CellId drv = g_.netlist().net(cell.inputs[pin]).driver;
      // Only descend monotonically in level (feedback edges excluded),
      // mirroring Graph::fanin_cone.
      if (drv == kNoCell) {
        kids.emplace_back("@undriven");
      } else if (g_.level(drv) <= g_.level(c)) {
        kids.push_back(signature(drv));
      } else {
        kids.emplace_back("@feedback");
      }
    }
    std::sort(kids.begin(), kids.end());
    os << '(';
    for (std::size_t i = 0; i < kids.size(); ++i) {
      if (i) os << ',';
      os << kids[i];
    }
    if (has_reset) os << ";rst";
    os << ')';
    slot->second = os.str();
    return slot->second;
  }

 private:
  const Graph& g_;
  std::map<CellId, std::string> memo_;
};

/// kind -> count histogram per level of the cone.
std::map<int, std::map<CellKind, std::size_t>> level_histogram(
    const Graph& g, const std::vector<CellId>& cone) {
  std::map<int, std::map<CellKind, std::size_t>> h;
  for (CellId c : cone) {
    const CellKind k = g.netlist().cell(c).kind;
    if (is_pseudo(k)) continue;
    ++h[g.level(c)][k];
  }
  return h;
}

}  // namespace

SymmetryReport check_rail_symmetry(const Graph& g, NetId rail0, NetId rail1) {
  SymmetryReport rep;
  const auto cone0 = g.fanin_cone(rail0);
  const auto cone1 = g.fanin_cone(rail1);
  rep.cone_size0 = cone0.size();
  rep.cone_size1 = cone1.size();

  if (cone0.size() != cone1.size()) {
    std::ostringstream os;
    os << "cone sizes differ: " << cone0.size() << " vs " << cone1.size();
    rep.diagnostics.push_back(os.str());
  }

  const auto h0 = level_histogram(g, cone0);
  const auto h1 = level_histogram(g, cone1);
  rep.level_histograms_match = (h0 == h1);
  if (!rep.level_histograms_match) {
    for (const auto& [lvl, kinds] : h0) {
      auto it = h1.find(lvl);
      if (it == h1.end() || it->second != kinds) {
        std::ostringstream os;
        os << "level " << lvl << " gate-kind histograms differ";
        rep.diagnostics.push_back(os.str());
      }
    }
    for (const auto& [lvl, kinds] : h1) {
      (void)kinds;
      if (h0.find(lvl) == h0.end()) {
        std::ostringstream os;
        os << "level " << lvl << " present only in rail1 cone";
        rep.diagnostics.push_back(os.str());
      }
    }
  }

  const CellId d0 = g.netlist().net(rail0).driver;
  const CellId d1 = g.netlist().net(rail1).driver;
  if (d0 == kNoCell || d1 == kNoCell) {
    rep.diagnostics.emplace_back("one of the rails is undriven");
    rep.isomorphic = false;
  } else {
    ConeSignature sig(g);
    rep.isomorphic = (sig.signature(d0) == sig.signature(d1));
    if (!rep.isomorphic)
      rep.diagnostics.emplace_back("cone structural signatures differ");
  }

  rep.symmetric = rep.level_histograms_match && rep.isomorphic &&
                  rep.cone_size0 == rep.cone_size1;
  return rep;
}

std::vector<SymmetryReport> check_all_channels(const Graph& g) {
  std::vector<SymmetryReport> out;
  out.reserve(g.netlist().num_channels());
  for (const Channel& ch : g.netlist().channels()) {
    // For 1-of-N channels every rail must be symmetric to rail 0; report
    // the worst pair.
    SymmetryReport worst = check_rail_symmetry(g, ch.rails[0], ch.rails[1]);
    for (std::size_t r = 2; r < ch.rails.size(); ++r) {
      SymmetryReport rep = check_rail_symmetry(g, ch.rails[0], ch.rails[r]);
      if (!rep.symmetric && worst.symmetric) worst = rep;
    }
    out.push_back(std::move(worst));
  }
  return out;
}

}  // namespace qdi::netlist
