#include "qdi/netlist/symmetry.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "qdi/util/parallel.hpp"

namespace qdi::netlist {

namespace {

/// Canonical structural signature of a cell's fanin cone, hash-consed
/// into small integer ids: two cones are isomorphic iff their root
/// signature ids are equal, and id equality is *exact* (interning, not
/// hashing — a fresh id is allocated for every distinct structure).
/// Inputs are canonicalized by sorting child signature ids, so pin
/// permutations of commutative gates do not break the match (all gates
/// in the QDI library are commutative except the reset pin of Muller*R,
/// which is kept positional). Memoization is shared across every rail
/// and channel signed through one interner, which is what makes a
/// full-netlist check_all_channels scan near-linear.
class SignatureInterner {
 public:
  using SigId = std::uint32_t;
  // Special leaves, mirroring the historical string tokens.
  static constexpr SigId kUndriven = 0;  ///< "@undriven"
  static constexpr SigId kFeedback = 1;  ///< "@feedback"
  static constexpr SigId kCycle = 2;     ///< "@cycle" (in-progress marker)

  explicit SignatureInterner(const Graph& g) : g_(g) {}

  SigId signature(CellId c) {
    auto it = memo_.find(c);
    if (it != memo_.end()) return it->second;
    // Mark in-progress to terminate on feedback loops: a cycle back into
    // an in-progress cell contributes a fixed token.
    memo_.emplace(c, kCycle);

    const Cell& cell = g_.netlist().cell(c);
    // Key layout: [kind, has_reset, sorted child ids...]. Primary inputs
    // are leaves and match any other primary input, so that e.g. the
    // (a0,b0) cone matches the (a1,b1) cone. The key is a local — this
    // function recurses.
    std::vector<SigId> key;
    key.push_back(static_cast<SigId>(cell.kind));
    if (cell.kind == CellKind::Input) {
      key.push_back(0);
      return memo_[c] = intern(key);
    }

    const bool has_reset = info(cell.kind).has_reset;
    const std::size_t data_pins = cell.inputs.size() - (has_reset ? 1u : 0u);
    key.push_back(has_reset ? 1u : 0u);
    for (std::size_t pin = 0; pin < data_pins; ++pin) {
      const CellId drv = g_.netlist().net(cell.inputs[pin]).driver;
      // Only descend monotonically in level (feedback edges excluded),
      // mirroring Graph::fanin_cone.
      if (drv == kNoCell) {
        key.push_back(kUndriven);
      } else if (g_.level(drv) <= g_.level(c)) {
        key.push_back(signature(drv));
      } else {
        key.push_back(kFeedback);
      }
    }
    std::sort(key.begin() + 2, key.end());
    return memo_[c] = intern(key);
  }

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<SigId>& k) const noexcept {
      std::size_t h = 0x9e3779b97f4a7c15ULL;
      for (SigId v : k) h = (h ^ v) * 0x100000001b3ULL;
      return h;
    }
  };

  SigId intern(const std::vector<SigId>& key) {
    auto [it, inserted] = table_.try_emplace(key, next_id_);
    if (inserted) ++next_id_;
    return it->second;
  }

  const Graph& g_;
  std::unordered_map<std::vector<SigId>, SigId, KeyHash> table_;
  std::unordered_map<CellId, SigId> memo_;
  SigId next_id_ = 3;  // 0..2 reserved for the special leaves
};

using Histogram = std::map<int, std::map<CellKind, std::size_t>>;

/// Everything pair comparison needs about one rail, computed once.
struct RailInfo {
  std::size_t cone_size = 0;
  Histogram hist;  ///< kind -> count per level, pseudo-cells excluded
  bool driven = false;
  SignatureInterner::SigId sig = SignatureInterner::kUndriven;
};

RailInfo rail_info(const Graph& g, SignatureInterner& interner, NetId rail) {
  RailInfo info;
  const auto cone = g.fanin_cone(rail);
  info.cone_size = cone.size();
  for (CellId c : cone) {
    const CellKind k = g.netlist().cell(c).kind;
    if (is_pseudo(k)) continue;
    ++info.hist[g.level(c)][k];
  }
  const CellId drv = g.netlist().net(rail).driver;
  info.driven = drv != kNoCell;
  if (info.driven) info.sig = interner.signature(drv);
  return info;
}

SymmetryReport compare_rails(const RailInfo& a, const RailInfo& b) {
  SymmetryReport rep;
  rep.cone_size0 = a.cone_size;
  rep.cone_size1 = b.cone_size;

  if (a.cone_size != b.cone_size) {
    std::ostringstream os;
    os << "cone sizes differ: " << a.cone_size << " vs " << b.cone_size;
    rep.diagnostics.push_back(os.str());
  }

  rep.level_histograms_match = (a.hist == b.hist);
  if (!rep.level_histograms_match) {
    for (const auto& [lvl, kinds] : a.hist) {
      auto it = b.hist.find(lvl);
      if (it == b.hist.end() || it->second != kinds) {
        std::ostringstream os;
        os << "level " << lvl << " gate-kind histograms differ";
        rep.diagnostics.push_back(os.str());
      }
    }
    for (const auto& [lvl, kinds] : b.hist) {
      (void)kinds;
      if (a.hist.find(lvl) == a.hist.end()) {
        std::ostringstream os;
        os << "level " << lvl << " present only in rail1 cone";
        rep.diagnostics.push_back(os.str());
      }
    }
  }

  if (!a.driven || !b.driven) {
    rep.diagnostics.emplace_back("one of the rails is undriven");
    rep.isomorphic = false;
  } else {
    rep.isomorphic = (a.sig == b.sig);
    if (!rep.isomorphic)
      rep.diagnostics.emplace_back("cone structural signatures differ");
  }

  rep.symmetric = rep.level_histograms_match && rep.isomorphic &&
                  rep.cone_size0 == rep.cone_size1;
  return rep;
}

void bind_to_channel(SymmetryReport& rep, const std::string& channel,
                     std::size_t rail_a, std::size_t rail_b) {
  rep.channel = channel;
  rep.rail_a = rail_a;
  rep.rail_b = rail_b;
  for (std::string& d : rep.diagnostics) {
    std::ostringstream os;
    os << "channel '" << channel << "' rails (" << rail_a << "," << rail_b
       << "): " << d;
    d = os.str();
  }
}

}  // namespace

SymmetryReport check_rail_symmetry(const Graph& g, NetId rail0, NetId rail1) {
  SignatureInterner interner(g);
  const RailInfo a = rail_info(g, interner, rail0);
  const RailInfo b = rail_info(g, interner, rail1);
  return compare_rails(a, b);
}

namespace {

/// Scan channels [first, last) into out[first..last), sharing one
/// signature memo and per-rail cache across the range.
void check_channel_range(const Graph& g, std::size_t first, std::size_t last,
                         SymmetryReport* out) {
  SignatureInterner interner(g);
  // Rails shared between channels (e.g. the per-layer group channels of
  // the S-Box merge trees) are analyzed once.
  std::unordered_map<NetId, RailInfo> cache;
  auto info_of = [&](NetId rail) -> const RailInfo& {
    auto it = cache.find(rail);
    if (it == cache.end())
      it = cache.emplace(rail, rail_info(g, interner, rail)).first;
    return it->second;
  };

  for (std::size_t i = first; i < last; ++i) {
    const Channel& ch = g.netlist().channels()[i];
    if (ch.rails.size() < 2) {
      // A single-rail channel has no pair to compare: vacuously symmetric.
      SymmetryReport rep;
      rep.symmetric = true;
      rep.level_histograms_match = true;
      rep.isomorphic = true;
      if (!ch.rails.empty()) {
        const RailInfo& only = info_of(ch.rails[0]);
        rep.cone_size0 = rep.cone_size1 = only.cone_size;
      }
      bind_to_channel(rep, ch.name, 0, 0);
      out[i] = std::move(rep);
      continue;
    }
    // All-rail-pairs coverage (the 1-of-4 extension): the channel is
    // symmetric only when every pair of its N rails is. Because the
    // verdict is pure equality on the cached per-rail facts (cone size,
    // histogram, interned signature, driven-ness), pairwise symmetry is
    // transitive — comparing every rail against rail 0 decides all
    // N·(N−1)/2 pairs, and the first asymmetric (0, r) pair is also the
    // first asymmetric pair overall. Report it, or (0, 1) when all
    // rails match.
    SymmetryReport chosen = compare_rails(info_of(ch.rails[0]),
                                          info_of(ch.rails[1]));
    std::size_t chosen_b = 1;
    for (std::size_t r = 2; chosen.symmetric && r < ch.rails.size(); ++r) {
      SymmetryReport rep =
          compare_rails(info_of(ch.rails[0]), info_of(ch.rails[r]));
      if (!rep.symmetric) {
        chosen = std::move(rep);
        chosen_b = r;
      }
    }
    bind_to_channel(chosen, ch.name, 0, chosen_b);
    out[i] = std::move(chosen);
  }
}

}  // namespace

std::vector<SymmetryReport> check_all_channels(const Graph& g) {
  std::vector<SymmetryReport> out(g.netlist().num_channels());
  check_channel_range(g, 0, out.size(), out.data());
  return out;
}

std::vector<SymmetryReport> check_all_channels(const Graph& g,
                                               unsigned threads) {
  if (threads == 0) threads = util::hardware_threads();
  std::vector<SymmetryReport> out(g.netlist().num_channels());
  // One memo shard per worker: a slab re-derives signatures its
  // neighbors also derive, trading some redundant interning for
  // lock-free scanning. Each channel's verdict depends only on the
  // graph, so out[] is identical for any slab partition.
  util::parallel_for_slabs(
      threads, out.size(),
      [&](unsigned, std::size_t begin, std::size_t end) {
        check_channel_range(g, begin, end, out.data());
      });
  return out;
}

std::size_t count_asymmetric_channels(const Graph& g) {
  std::size_t n = 0;
  for (const SymmetryReport& rep : check_all_channels(g))
    if (!rep.symmetric) ++n;
  return n;
}

std::size_t count_asymmetric_channels(const Graph& g, unsigned threads) {
  std::size_t n = 0;
  for (const SymmetryReport& rep : check_all_channels(g, threads))
    if (!rep.symmetric) ++n;
  return n;
}

}  // namespace qdi::netlist
