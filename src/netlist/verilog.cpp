#include "qdi/netlist/verilog.hpp"

#include <ostream>
#include <sstream>

namespace qdi::netlist {

std::string verilog_ident(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out += ok ? ch : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), 'n');
  return out;
}

namespace {

/// Behavioural models of the QDI cell library. The Muller gates use the
/// canonical keeper expression Z = XY + Z(X+Y) (fig. 5 of the paper).
const char* kCellModels = R"(
// --- QDI cell library (behavioural) ---------------------------------
module qdi_buf(input a, output z);      assign z = a;        endmodule
module qdi_inv(input a, output z);      assign z = ~a;       endmodule
module qdi_and2(input a, b, output z);  assign z = a & b;    endmodule
module qdi_and3(input a, b, c, output z); assign z = a & b & c; endmodule
module qdi_or2(input a, b, output z);   assign z = a | b;    endmodule
module qdi_or3(input a, b, c, output z); assign z = a | b | c; endmodule
module qdi_or4(input a, b, c, d, output z); assign z = a | b | c | d; endmodule
module qdi_nor2(input a, b, output z);  assign z = ~(a | b); endmodule
module qdi_nor3(input a, b, c, output z); assign z = ~(a | b | c); endmodule
module qdi_nor4(input a, b, c, d, output z); assign z = ~(a | b | c | d); endmodule
module qdi_nand2(input a, b, output z); assign z = ~(a & b); endmodule
module qdi_nand3(input a, b, c, output z); assign z = ~(a & b & c); endmodule
module qdi_xor2(input a, b, output z);  assign z = a ^ b;    endmodule
module qdi_xnor2(input a, b, output z); assign z = ~(a ^ b); endmodule
module qdi_muller2(input a, b, output reg z);
  always @(*) if (a & b) z = 1'b1; else if (~a & ~b) z = 1'b0;
endmodule
module qdi_muller3(input a, b, c, output reg z);
  always @(*) if (a & b & c) z = 1'b1; else if (~a & ~b & ~c) z = 1'b0;
endmodule
module qdi_muller4(input a, b, c, d, output reg z);
  always @(*) if (a & b & c & d) z = 1'b1; else if (~(a | b | c | d)) z = 1'b0;
endmodule
module qdi_muller2r(input a, b, rst, output reg z);
  always @(*) if (rst) z = 1'b0; else if (a & b) z = 1'b1;
              else if (~a & ~b) z = 1'b0;
endmodule
module qdi_muller3r(input a, b, c, rst, output reg z);
  always @(*) if (rst) z = 1'b0; else if (a & b & c) z = 1'b1;
              else if (~(a | b | c)) z = 1'b0;
endmodule
// ---------------------------------------------------------------------
)";

const char* module_of(CellKind kind) {
  switch (kind) {
    case CellKind::Buf: return "qdi_buf";
    case CellKind::Inv: return "qdi_inv";
    case CellKind::And2: return "qdi_and2";
    case CellKind::And3: return "qdi_and3";
    case CellKind::Or2: return "qdi_or2";
    case CellKind::Or3: return "qdi_or3";
    case CellKind::Or4: return "qdi_or4";
    case CellKind::Nor2: return "qdi_nor2";
    case CellKind::Nor3: return "qdi_nor3";
    case CellKind::Nor4: return "qdi_nor4";
    case CellKind::Nand2: return "qdi_nand2";
    case CellKind::Nand3: return "qdi_nand3";
    case CellKind::Xor2: return "qdi_xor2";
    case CellKind::Xnor2: return "qdi_xnor2";
    case CellKind::Muller2: return "qdi_muller2";
    case CellKind::Muller3: return "qdi_muller3";
    case CellKind::Muller4: return "qdi_muller4";
    case CellKind::Muller2R: return "qdi_muller2r";
    case CellKind::Muller3R: return "qdi_muller3r";
    case CellKind::Input:
    case CellKind::Output: return nullptr;
  }
  return nullptr;
}

const char* kPinNames[] = {"a", "b", "c", "d"};

}  // namespace

void write_verilog(std::ostream& os, const Netlist& nl,
                   const VerilogOptions& opt) {
  if (opt.emit_cell_models) os << kCellModels << '\n';

  const std::string mod = verilog_ident(nl.name().empty() ? "top" : nl.name());
  os << "module " << mod << "(";
  bool first = true;
  for (NetId in : nl.primary_inputs()) {
    os << (first ? "" : ", ") << verilog_ident(nl.net(in).name);
    first = false;
  }
  for (NetId out : nl.primary_outputs()) {
    os << (first ? "" : ", ") << verilog_ident(nl.net(out).name);
    first = false;
  }
  os << ");\n";
  for (NetId in : nl.primary_inputs())
    os << "  input " << verilog_ident(nl.net(in).name) << ";\n";
  for (NetId out : nl.primary_outputs())
    os << "  output " << verilog_ident(nl.net(out).name) << ";\n";

  // Internal wires (skip ports).
  std::vector<char> is_port(nl.num_nets(), 0);
  for (NetId in : nl.primary_inputs()) is_port[in] = 1;
  for (NetId out : nl.primary_outputs()) is_port[out] = 1;
  for (NetId i = 0; i < nl.num_nets(); ++i) {
    if (is_port[i]) continue;
    os << "  wire " << verilog_ident(nl.net(i).name) << ";";
    if (opt.emit_cap_comments) os << "  // " << nl.net(i).cap_ff << " fF";
    os << '\n';
  }

  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const Cell& cell = nl.cell(c);
    const char* module = module_of(cell.kind);
    if (module == nullptr) continue;  // pseudo-cells are ports
    os << "  " << module << " " << verilog_ident(cell.name) << " (";
    const bool has_reset = info(cell.kind).has_reset;
    const std::size_t data_pins = cell.inputs.size() - (has_reset ? 1 : 0);
    for (std::size_t p = 0; p < data_pins; ++p) {
      os << "." << kPinNames[p] << "("
         << verilog_ident(nl.net(cell.inputs[p]).name) << "), ";
    }
    if (has_reset)
      os << ".rst(" << verilog_ident(nl.net(cell.inputs.back()).name) << "), ";
    os << ".z(" << verilog_ident(nl.net(cell.output).name) << "));\n";
  }
  os << "endmodule\n";
}

std::string to_verilog(const Netlist& nl, const VerilogOptions& opt) {
  std::ostringstream os;
  write_verilog(os, nl, opt);
  return os.str();
}

}  // namespace qdi::netlist
