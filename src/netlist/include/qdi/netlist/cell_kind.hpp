// Cell catalogue of the QDI standard-cell library used throughout the
// reproduction. It mirrors the gate set of the paper's TAL-style library:
// Muller C-elements (the workhorse of QDI logic, fig. 5 of the paper),
// simple CMOS gates, and pseudo-cells for primary I/O.
//
// Evaluation semantics live here (not in the simulator) so that tests,
// the simulator, and the formal model all agree on one definition.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace qdi::netlist {

enum class CellKind : std::uint8_t {
  // Pseudo-cells for block boundaries.
  Input,    // no inputs; its output net is a primary input of the block
  Output,   // one input; marks a primary output (drives nothing)

  // Combinational gates.
  Buf,
  Inv,
  And2,
  And3,
  Or2,
  Or3,
  Or4,
  Nor2,
  Nor3,
  Nor4,
  Nand2,
  Nand3,
  Xor2,
  Xnor2,

  // State-holding Muller C-elements (Z = XY + Z(X+Y), fig. 5).
  Muller2,
  Muller3,
  Muller4,
  // Resettable C-element ("Cr" in fig. 4): last input is an active-high
  // reset that forces the output low regardless of the data inputs.
  Muller2R,
  Muller3R,
};

inline constexpr int kNumCellKinds = static_cast<int>(CellKind::Muller3R) + 1;

struct CellKindInfo {
  std::string_view name;
  int num_inputs;       // includes the reset pin for Muller*R kinds
  bool state_holding;   // true for Muller gates
  bool has_reset;       // true for Muller*R; reset is the LAST input pin
  int transistor_count; // static CMOS realization, used by the area model
};

/// Static metadata for a cell kind.
const CellKindInfo& info(CellKind kind) noexcept;

/// Human-readable name ("muller2r", "nor2", ...).
std::string_view name(CellKind kind) noexcept;

/// Evaluate the cell function. `inputs` must have info(kind).num_inputs
/// entries; `prev_output` supplies the held state for Muller gates (it is
/// ignored by combinational kinds). Input/Output pseudo-cells pass through
/// (Input has no inputs and returns prev_output, i.e. whatever the
/// environment drove).
bool evaluate(CellKind kind, std::span<const bool> inputs, bool prev_output) noexcept;

/// True for the Muller (C-element) family.
bool is_muller(CellKind kind) noexcept;

/// True for Input/Output pseudo-cells.
bool is_pseudo(CellKind kind) noexcept;

}  // namespace qdi::netlist
