// Gate-level netlist container. This is the "V and E" of the paper's
// annotated directed graph G(V,E) (fig. 5): cells are vertices, nets are
// hyper-edges from one driver to its sinks, and each net carries the
// physical annotations (load capacitance, wirelength) that the electrical
// model of section III consumes.
//
// The netlist also owns the *dual-rail channel registry*: the pairs
// (rail0, rail1) over which section VI's dissymmetry criterion
// dA = |Cl0 - Cl1| / min(Cl0, Cl1) is evaluated.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "qdi/netlist/cell_kind.hpp"

namespace qdi::netlist {

using CellId = std::uint32_t;
using NetId = std::uint32_t;
inline constexpr CellId kNoCell = std::numeric_limits<CellId>::max();
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();

/// Default net load used before extraction. The paper's electrical
/// validation (section V) uses Cd = 8 fF as the default net capacitance.
inline constexpr double kDefaultNetCapFf = 8.0;

/// A sink pin: input pin `pin` of cell `cell`.
struct Pin {
  CellId cell = kNoCell;
  int pin = 0;

  friend bool operator==(const Pin&, const Pin&) = default;
};

struct Net {
  std::string name;
  CellId driver = kNoCell;
  std::vector<Pin> sinks;

  // --- physical annotations (back-annotated by pnr extraction) ---
  double cap_ff = kDefaultNetCapFf;  ///< total load capacitance C = Cl+Cpar+Csc
  double wirelength_um = 0.0;        ///< routing estimate, 0 before extraction
};

struct Cell {
  std::string name;
  CellKind kind = CellKind::Buf;
  std::vector<NetId> inputs;  ///< size == info(kind).num_inputs
  NetId output = kNoNet;
  /// Hierarchical block path ("aes_core/addkey0"). The hierarchical
  /// place-and-route flow (section VI) constrains all cells sharing a
  /// top-level prefix into one region.
  std::string hier;
  /// Additive propagation-delay offset on top of the DelayModel — the
  /// random-delay-insertion countermeasure (xform::RandomDelayPass).
  /// Both simulation engines honor it identically; must be >= 0 so the
  /// compiled kernel's time-wheel geometry stays valid.
  double delay_jitter_ps = 0.0;
};

/// A 1-of-N channel: `rails[v]` is the wire that goes high to transmit
/// value v. Dual-rail channels have N == 2. `ack` is the acknowledge wire
/// of the four-phase handshake (kNoNet for internal, un-acked channels).
struct Channel {
  std::string name;
  std::vector<NetId> rails;
  NetId ack = kNoNet;

  std::size_t arity() const noexcept { return rails.size(); }
};

using ChannelId = std::uint32_t;

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // Copies and moves transfer the graph but drop the lazy name index
  // (rebuilt on the next find_*); the index mutex is never transferred.
  Netlist(const Netlist& other);
  Netlist& operator=(const Netlist& other);
  Netlist(Netlist&& other) noexcept;
  Netlist& operator=(Netlist&& other) noexcept;
  ~Netlist() = default;

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -----------------------------------------------------

  /// Create a named net with no driver yet.
  NetId add_net(std::string name);

  /// Create a cell driving `output`; registers the sink pins on each input
  /// net and the driver on the output net. The number of inputs must match
  /// the kind's arity. Returns the new cell id.
  CellId add_cell(CellKind kind, std::string name, std::vector<NetId> inputs,
                  NetId output, std::string hier = {});

  /// Create a primary input: an Input pseudo-cell plus its net.
  NetId add_input(std::string name, std::string hier = {});

  /// Mark `net` as a primary output by attaching an Output pseudo-cell.
  CellId mark_output(NetId net, std::string name, std::string hier = {});

  /// Register a 1-of-N channel over existing nets. Returns its id.
  ChannelId add_channel(std::string name, std::vector<NetId> rails,
                        NetId ack = kNoNet);

  /// Reconnect input pin `pin` of `cell` from its current net to
  /// `new_net`, keeping the sink bookkeeping exact (the Pin entry moves
  /// from the old net's sink list to the new one's). The netlist-to-
  /// netlist transform passes (qdi/xform) splice cells with this.
  void rewire_input(CellId cell, int pin, NetId new_net);

  // ---- access -----------------------------------------------------------

  std::size_t num_cells() const noexcept { return cells_.size(); }
  std::size_t num_nets() const noexcept { return nets_.size(); }
  std::size_t num_channels() const noexcept { return channels_.size(); }

  const Cell& cell(CellId id) const { return cells_.at(id); }
  // Mutable access may rename the element, so it invalidates the lazy
  // name index (a single atomic store; rebuilt on the next find_*).
  // Caveat: the invalidation happens when the reference is *taken* — a
  // rename through a reference held across an intervening find_* leaves
  // that lookup's rebuilt index stale. Re-take the reference to rename.
  Cell& cell(CellId id) { invalidate_name_index(); return cells_.at(id); }
  const Net& net(NetId id) const { return nets_.at(id); }
  Net& net(NetId id) { invalidate_name_index(); return nets_.at(id); }
  const Channel& channel(ChannelId id) const { return channels_.at(id); }

  const std::vector<Cell>& cells() const noexcept { return cells_; }
  const std::vector<Net>& nets() const noexcept { return nets_; }
  const std::vector<Channel>& channels() const noexcept { return channels_; }

  /// Primary input nets (outputs of Input pseudo-cells), in creation order.
  const std::vector<NetId>& primary_inputs() const noexcept { return inputs_; }
  /// Primary output nets, in creation order.
  const std::vector<NetId>& primary_outputs() const noexcept { return outputs_; }

  /// Find a net/cell/channel by exact name; kNoNet/kNoCell/nullptr-like
  /// sentinel when absent. Small netlists use a linear scan; past
  /// kNameIndexThreshold elements a hashed name index is built lazily on
  /// first lookup and reused until the netlist is mutated (any add_*, or
  /// taking a mutable net()/cell() reference, invalidates it). Duplicate
  /// names resolve to the lowest id, exactly like the linear scan. The
  /// index is mutex-guarded, so concurrent find_* on a shared const
  /// Netlist stay safe (concurrent *mutation* was and is the caller's
  /// problem).
  NetId find_net(std::string_view name) const;
  CellId find_cell(std::string_view name) const;
  ChannelId find_channel(std::string_view name) const;
  static constexpr ChannelId kNoChannel = std::numeric_limits<ChannelId>::max();
  static constexpr std::size_t kNameIndexThreshold = 32;

  /// Count of non-pseudo cells (real gates).
  std::size_t num_gates() const noexcept;

  /// Per-kind cell histogram, indexed by static_cast<int>(CellKind).
  std::vector<std::size_t> kind_histogram() const;

  /// Total transistor count of all real gates (area proxy).
  std::size_t transistor_count() const noexcept;

  // ---- annotations ------------------------------------------------------

  /// Set every net's capacitance back to `cap_ff` (used to reset between
  /// place-and-route runs).
  void reset_caps(double cap_ff = kDefaultNetCapFf);

  // ---- integrity --------------------------------------------------------

  /// Structural well-formedness diagnostics: multiply-driven nets,
  /// driverless non-input nets, floating nets, arity mismatches, channels
  /// over missing nets. Empty result means the netlist is sound.
  std::vector<std::string> check() const;

 private:
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  using NameMap =
      std::unordered_map<std::string, std::uint32_t, NameHash, std::equal_to<>>;

  /// Lazily built name → id maps, guarded by index_mu_; index_built_ is
  /// atomic so invalidation (the common, mutation-path operation) is a
  /// single store with no mutex round-trip.
  struct NameIndex {
    NameMap nets, cells, channels;
  };
  void build_name_index_locked() const;  // caller holds index_mu_
  void invalidate_name_index() const noexcept {
    index_built_.store(false, std::memory_order_release);
  }

  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<Channel> channels_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  mutable std::mutex index_mu_;
  mutable NameIndex name_index_;
  mutable std::atomic<bool> index_built_{false};
};

}  // namespace qdi::netlist
