// Gate-level netlist container. This is the "V and E" of the paper's
// annotated directed graph G(V,E) (fig. 5): cells are vertices, nets are
// hyper-edges from one driver to its sinks, and each net carries the
// physical annotations (load capacitance, wirelength) that the electrical
// model of section III consumes.
//
// The netlist also owns the *dual-rail channel registry*: the pairs
// (rail0, rail1) over which section VI's dissymmetry criterion
// dA = |Cl0 - Cl1| / min(Cl0, Cl1) is evaluated.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "qdi/netlist/cell_kind.hpp"

namespace qdi::netlist {

using CellId = std::uint32_t;
using NetId = std::uint32_t;
inline constexpr CellId kNoCell = std::numeric_limits<CellId>::max();
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();

/// Default net load used before extraction. The paper's electrical
/// validation (section V) uses Cd = 8 fF as the default net capacitance.
inline constexpr double kDefaultNetCapFf = 8.0;

/// A sink pin: input pin `pin` of cell `cell`.
struct Pin {
  CellId cell = kNoCell;
  int pin = 0;

  friend bool operator==(const Pin&, const Pin&) = default;
};

struct Net {
  std::string name;
  CellId driver = kNoCell;
  std::vector<Pin> sinks;

  // --- physical annotations (back-annotated by pnr extraction) ---
  double cap_ff = kDefaultNetCapFf;  ///< total load capacitance C = Cl+Cpar+Csc
  double wirelength_um = 0.0;        ///< routing estimate, 0 before extraction
};

struct Cell {
  std::string name;
  CellKind kind = CellKind::Buf;
  std::vector<NetId> inputs;  ///< size == info(kind).num_inputs
  NetId output = kNoNet;
  /// Hierarchical block path ("aes_core/addkey0"). The hierarchical
  /// place-and-route flow (section VI) constrains all cells sharing a
  /// top-level prefix into one region.
  std::string hier;
};

/// A 1-of-N channel: `rails[v]` is the wire that goes high to transmit
/// value v. Dual-rail channels have N == 2. `ack` is the acknowledge wire
/// of the four-phase handshake (kNoNet for internal, un-acked channels).
struct Channel {
  std::string name;
  std::vector<NetId> rails;
  NetId ack = kNoNet;

  std::size_t arity() const noexcept { return rails.size(); }
};

using ChannelId = std::uint32_t;

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -----------------------------------------------------

  /// Create a named net with no driver yet.
  NetId add_net(std::string name);

  /// Create a cell driving `output`; registers the sink pins on each input
  /// net and the driver on the output net. The number of inputs must match
  /// the kind's arity. Returns the new cell id.
  CellId add_cell(CellKind kind, std::string name, std::vector<NetId> inputs,
                  NetId output, std::string hier = {});

  /// Create a primary input: an Input pseudo-cell plus its net.
  NetId add_input(std::string name, std::string hier = {});

  /// Mark `net` as a primary output by attaching an Output pseudo-cell.
  CellId mark_output(NetId net, std::string name, std::string hier = {});

  /// Register a 1-of-N channel over existing nets. Returns its id.
  ChannelId add_channel(std::string name, std::vector<NetId> rails,
                        NetId ack = kNoNet);

  // ---- access -----------------------------------------------------------

  std::size_t num_cells() const noexcept { return cells_.size(); }
  std::size_t num_nets() const noexcept { return nets_.size(); }
  std::size_t num_channels() const noexcept { return channels_.size(); }

  const Cell& cell(CellId id) const { return cells_.at(id); }
  Cell& cell(CellId id) { return cells_.at(id); }
  const Net& net(NetId id) const { return nets_.at(id); }
  Net& net(NetId id) { return nets_.at(id); }
  const Channel& channel(ChannelId id) const { return channels_.at(id); }

  const std::vector<Cell>& cells() const noexcept { return cells_; }
  const std::vector<Net>& nets() const noexcept { return nets_; }
  const std::vector<Channel>& channels() const noexcept { return channels_; }

  /// Primary input nets (outputs of Input pseudo-cells), in creation order.
  const std::vector<NetId>& primary_inputs() const noexcept { return inputs_; }
  /// Primary output nets, in creation order.
  const std::vector<NetId>& primary_outputs() const noexcept { return outputs_; }

  /// Find a net/cell/channel by exact name; kNoNet/kNoCell/nullptr-like
  /// sentinel when absent. Linear scan: intended for tests and examples,
  /// not inner loops.
  NetId find_net(std::string_view name) const noexcept;
  CellId find_cell(std::string_view name) const noexcept;
  ChannelId find_channel(std::string_view name) const noexcept;
  static constexpr ChannelId kNoChannel = std::numeric_limits<ChannelId>::max();

  /// Count of non-pseudo cells (real gates).
  std::size_t num_gates() const noexcept;

  /// Per-kind cell histogram, indexed by static_cast<int>(CellKind).
  std::vector<std::size_t> kind_histogram() const;

  /// Total transistor count of all real gates (area proxy).
  std::size_t transistor_count() const noexcept;

  // ---- annotations ------------------------------------------------------

  /// Set every net's capacitance back to `cap_ff` (used to reset between
  /// place-and-route runs).
  void reset_caps(double cap_ff = kDefaultNetCapFf);

  // ---- integrity --------------------------------------------------------

  /// Structural well-formedness diagnostics: multiply-driven nets,
  /// driverless non-input nets, floating nets, arity mismatches, channels
  /// over missing nets. Empty result means the netlist is sound.
  std::vector<std::string> check() const;

 private:
  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<Channel> channels_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
};

}  // namespace qdi::netlist
