// Structural Verilog export. Produces a gate-level module instantiating
// the QDI cell library (plus behavioural `celldefine` models for the
// library itself, so the output is self-contained and simulatable by any
// Verilog tool). Net capacitance annotations are emitted as comments so
// a back-end flow can be replayed outside this library.
#pragma once

#include <iosfwd>
#include <string>

#include "qdi/netlist/netlist.hpp"

namespace qdi::netlist {

struct VerilogOptions {
  bool emit_cell_models = true;  ///< prepend behavioural cell definitions
  bool emit_cap_comments = true; ///< annotate wires with cap_ff comments
};

/// Emit the netlist as a structural Verilog module named after
/// Netlist::name() (sanitized). Primary inputs/outputs become ports.
void write_verilog(std::ostream& os, const Netlist& nl,
                   const VerilogOptions& opt = {});

/// Convenience: render to a string.
std::string to_verilog(const Netlist& nl, const VerilogOptions& opt = {});

/// Identifier sanitizer (slashes, '#' and dots become '_'); exposed for
/// tests.
std::string verilog_ident(const std::string& name);

}  // namespace qdi::netlist
