// Directed-graph view of a netlist, following the paper's fig. 5: every
// gate is a vertex, every driver->sink connection a directed edge. This is
// the structure over which the formal model of section III computes
//   Nc  — number of logic levels (gates in series on the critical path),
//   Nij — gates at level i (statically: level occupancy; dynamically the
//         simulator reports which of them switch),
//   Nt  — total transitions per computation (measured by simulation on
//         balanced blocks, constant per block).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "qdi/netlist/netlist.hpp"

namespace qdi::netlist {

class Graph {
 public:
  /// Builds the adjacency from the netlist. Pseudo-cells participate:
  /// Input cells are the sources (level 0), Output cells the final sinks.
  explicit Graph(const Netlist& nl);

  const Netlist& netlist() const noexcept { return *nl_; }

  std::size_t num_vertices() const noexcept { return succ_.size(); }

  const std::vector<CellId>& successors(CellId c) const { return succ_.at(c); }
  const std::vector<CellId>& predecessors(CellId c) const { return pred_.at(c); }

  /// Topological order over the acyclic subgraph. QDI circuits contain
  /// feedback (C-element acknowledge loops); edges into Muller gates from
  /// higher-numbered cells are treated as cut-points (standard practice:
  /// state-holding gates break combinational cycles). `is_dag()` reports
  /// whether any cycle through purely combinational gates exists — that
  /// would be a genuine structural error.
  const std::vector<CellId>& topo_order() const noexcept { return topo_; }
  bool combinational_cycle() const noexcept { return comb_cycle_; }

  /// Level of a cell: longest path (in gates) from any Input pseudo-cell,
  /// with cycle-cut edges ignored. Input cells have level 0; the first
  /// layer of real gates has level 1 (matching "level 1..4" in fig. 5).
  int level(CellId c) const { return level_.at(c); }

  /// Nc: the number of logic levels = max level over real gates.
  int num_levels() const noexcept { return nc_; }

  /// Cells at each level (index 0 holds the Input pseudo-cells).
  const std::vector<std::vector<CellId>>& cells_by_level() const noexcept {
    return by_level_;
  }

  /// Static level occupancy |{cells at level i}| for i in 1..Nc. This is
  /// the upper bound of the paper's Nij (all gates at the level switching).
  std::vector<std::size_t> level_occupancy() const;

  /// Transitive fanin cone of a net: every cell that can influence it
  /// (cycle-cut edges ignored). Sorted by cell id.
  std::vector<CellId> fanin_cone(NetId net) const;

  /// Graphviz DOT of the whole graph (or of a cone when `roots` given),
  /// with nets annotated by their capacitance — the "annotated directed
  /// graph" of fig. 5.
  std::string to_dot() const;
  std::string cone_to_dot(NetId root) const;

 private:
  void levelize();

  const Netlist* nl_;
  std::vector<std::vector<CellId>> succ_;
  std::vector<std::vector<CellId>> pred_;
  std::vector<CellId> topo_;
  std::vector<int> level_;
  std::vector<std::vector<CellId>> by_level_;
  int nc_ = 0;
  bool comb_cycle_ = false;
};

}  // namespace qdi::netlist
