// Logical-symmetry verification of dual-rail data paths.
//
// Section III of the paper: "the graphic representation ... offers the
// opportunity to formally verify the logical symmetry of the data-path".
// Two rails of a channel are *logically symmetric* when their fanin cones
// are structurally isomorphic: same gate kinds level by level, same
// connection pattern. Logical symmetry guarantees equal transition counts
// (Nt) regardless of data; it does NOT guarantee equal capacitances —
// that residual asymmetry is exactly the leakage eq. 12 exposes.
#pragma once

#include <string>
#include <vector>

#include "qdi/netlist/graph.hpp"
#include "qdi/netlist/netlist.hpp"

namespace qdi::netlist {

struct SymmetryReport {
  bool symmetric = false;
  /// Gate count of each compared rail's fanin cone.
  std::size_t cone_size0 = 0;
  std::size_t cone_size1 = 0;
  /// Per-level gate-kind histograms match?
  bool level_histograms_match = false;
  /// Full recursive structural isomorphism holds?
  bool isomorphic = false;
  /// Channel this report belongs to (filled by check_all_channels; empty
  /// for a bare check_rail_symmetry call) — diagnostics carry it too, so
  /// a report line identifies its channel by name, not only by index.
  std::string channel;
  /// Rail indices of the reported pair. check_all_channels compares
  /// every rail pair of a 1-of-N channel (N·(N−1)/2 comparisons) and
  /// reports the first asymmetric pair, or (0, 1) when all match.
  std::size_t rail_a = 0;
  std::size_t rail_b = 1;
  /// Human-readable mismatch diagnostics (empty when symmetric).
  std::vector<std::string> diagnostics;
};

/// Check logical symmetry between two rails (typically channel.rails[0]
/// and channel.rails[1]).
SymmetryReport check_rail_symmetry(const Graph& g, NetId rail0, NetId rail1);

/// Check every registered channel of the netlist; returns one report per
/// channel, index-aligned with netlist.channels(). Dual-rail channels
/// compare their one pair; 1-of-N channels (e.g. 1-of-4) compare all
/// rail pairs and are symmetric only when every pair is. Cone
/// signatures, cones, and histograms are computed once per rail and
/// shared across pairs and channels, so a full-netlist scan stays
/// near-linear in circuit size.
std::vector<SymmetryReport> check_all_channels(const Graph& g);

/// Parallel scan: channels are partitioned into contiguous slabs, one
/// signature-interner memo shard per worker (interned ids are private to
/// a shard, but a channel's verdict is a pure function of the graph, so
/// the reports are identical to the serial scan for any thread count —
/// only the id namespace differs, and ids never leave this function).
/// threads == 0 means one worker per hardware thread.
std::vector<SymmetryReport> check_all_channels(const Graph& g,
                                               unsigned threads);

/// Number of channels check_all_channels reports asymmetric — the
/// scalar the cone-balancing pass and campaign sweeps track.
std::size_t count_asymmetric_channels(const Graph& g);

/// Parallel count with the same sharded-memo contract as the parallel
/// check_all_channels overload.
std::size_t count_asymmetric_channels(const Graph& g, unsigned threads);

}  // namespace qdi::netlist
