// Logical-symmetry verification of dual-rail data paths.
//
// Section III of the paper: "the graphic representation ... offers the
// opportunity to formally verify the logical symmetry of the data-path".
// Two rails of a channel are *logically symmetric* when their fanin cones
// are structurally isomorphic: same gate kinds level by level, same
// connection pattern. Logical symmetry guarantees equal transition counts
// (Nt) regardless of data; it does NOT guarantee equal capacitances —
// that residual asymmetry is exactly the leakage eq. 12 exposes.
#pragma once

#include <string>
#include <vector>

#include "qdi/netlist/graph.hpp"
#include "qdi/netlist/netlist.hpp"

namespace qdi::netlist {

struct SymmetryReport {
  bool symmetric = false;
  /// Gate count of each rail's fanin cone.
  std::size_t cone_size0 = 0;
  std::size_t cone_size1 = 0;
  /// Per-level gate-kind histograms match?
  bool level_histograms_match = false;
  /// Full recursive structural isomorphism holds?
  bool isomorphic = false;
  /// Human-readable mismatch diagnostics (empty when symmetric).
  std::vector<std::string> diagnostics;
};

/// Check logical symmetry between two rails (typically channel.rails[0]
/// and channel.rails[1]).
SymmetryReport check_rail_symmetry(const Graph& g, NetId rail0, NetId rail1);

/// Check every registered dual-rail channel of the netlist; returns one
/// report per channel, index-aligned with netlist.channels().
std::vector<SymmetryReport> check_all_channels(const Graph& g);

}  // namespace qdi::netlist
