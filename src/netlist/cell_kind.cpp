#include "qdi/netlist/cell_kind.hpp"

#include <cassert>

namespace qdi::netlist {

namespace {
// Transistor counts are classic static-CMOS figures (2 per input for
// NAND/NOR, inverters where needed, weak-feedback keeper for C-elements).
constexpr CellKindInfo kInfo[kNumCellKinds] = {
    /*Input*/    {"input", 0, false, false, 0},
    /*Output*/   {"output", 1, false, false, 0},
    /*Buf*/      {"buf", 1, false, false, 4},
    /*Inv*/      {"inv", 1, false, false, 2},
    /*And2*/     {"and2", 2, false, false, 6},
    /*And3*/     {"and3", 3, false, false, 8},
    /*Or2*/      {"or2", 2, false, false, 6},
    /*Or3*/      {"or3", 3, false, false, 8},
    /*Or4*/      {"or4", 4, false, false, 10},
    /*Nor2*/     {"nor2", 2, false, false, 4},
    /*Nor3*/     {"nor3", 3, false, false, 6},
    /*Nor4*/     {"nor4", 4, false, false, 8},
    /*Nand2*/    {"nand2", 2, false, false, 4},
    /*Nand3*/    {"nand3", 3, false, false, 6},
    /*Xor2*/     {"xor2", 2, false, false, 10},
    /*Xnor2*/    {"xnor2", 2, false, false, 10},
    /*Muller2*/  {"muller2", 2, true, false, 8},
    /*Muller3*/  {"muller3", 3, true, false, 10},
    /*Muller4*/  {"muller4", 4, true, false, 12},
    /*Muller2R*/ {"muller2r", 3, true, true, 10},
    /*Muller3R*/ {"muller3r", 4, true, true, 12},
};
}  // namespace

const CellKindInfo& info(CellKind kind) noexcept {
  return kInfo[static_cast<int>(kind)];
}

std::string_view name(CellKind kind) noexcept { return info(kind).name; }

bool is_muller(CellKind kind) noexcept { return info(kind).state_holding; }

bool is_pseudo(CellKind kind) noexcept {
  return kind == CellKind::Input || kind == CellKind::Output;
}

namespace {
bool all(std::span<const bool> v) noexcept {
  for (bool b : v)
    if (!b) return false;
  return true;
}
bool any(std::span<const bool> v) noexcept {
  for (bool b : v)
    if (b) return true;
  return false;
}
/// Muller semantics over the data inputs: rise when all high, fall when
/// all low, hold otherwise.
bool muller(std::span<const bool> data, bool prev) noexcept {
  if (all(data)) return true;
  if (!any(data)) return false;
  return prev;
}
}  // namespace

bool evaluate(CellKind kind, std::span<const bool> inputs, bool prev_output) noexcept {
  assert(static_cast<int>(inputs.size()) == info(kind).num_inputs);
  switch (kind) {
    case CellKind::Input:
      return prev_output;  // driven by the environment, not by logic
    case CellKind::Output:
    case CellKind::Buf:
      return inputs[0];
    case CellKind::Inv:
      return !inputs[0];
    case CellKind::And2:
    case CellKind::And3:
      return all(inputs);
    case CellKind::Or2:
    case CellKind::Or3:
    case CellKind::Or4:
      return any(inputs);
    case CellKind::Nor2:
    case CellKind::Nor3:
    case CellKind::Nor4:
      return !any(inputs);
    case CellKind::Nand2:
    case CellKind::Nand3:
      return !all(inputs);
    case CellKind::Xor2:
      return inputs[0] != inputs[1];
    case CellKind::Xnor2:
      return inputs[0] == inputs[1];
    case CellKind::Muller2:
    case CellKind::Muller3:
    case CellKind::Muller4:
      return muller(inputs, prev_output);
    case CellKind::Muller2R:
    case CellKind::Muller3R: {
      // Last pin is the active-high reset: it forces the output low.
      const bool reset = inputs[inputs.size() - 1];
      if (reset) return false;
      return muller(inputs.subspan(0, inputs.size() - 1), prev_output);
    }
  }
  return false;
}

}  // namespace qdi::netlist
