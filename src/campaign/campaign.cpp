#include "qdi/campaign/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "attack_state.hpp"
#include "qdi/campaign/batch_trace_source.hpp"
#include "qdi/dpa/online.hpp"
#include "qdi/netlist/graph.hpp"
#include "qdi/netlist/symmetry.hpp"
#include "qdi/util/sha256.hpp"

namespace qdi::campaign {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Single-pass analysis driver shared by the materialized and fused
/// campaign paths. Traces are fed in index order (whole set at once, or
/// chunk by chunk); at each precomputed checkpoint the running sums are
/// finalized in place to emit a rank-trajectory point and/or advance the
/// measurements-to-disclosure scan. Because both paths push the same
/// traces through the same accumulators in the same order, their
/// results are bit-identical by construction. The accumulator pair and
/// the probe rules live in detail::AttackState, shared with the sharded
/// runtime (shard.cpp) so the two paths cannot drift.
class StreamingAnalysis {
 public:
  StreamingAnalysis(const AttackConfig& attack, const TargetInstance& inst,
                    std::size_t rank_step, std::size_t total)
      : state_(attack, inst), total_(total) {
    if (const Dpa* cfg = std::get_if<Dpa>(&attack)) {
      if (cfg->compute_mtd) plan_mtd(cfg->mtd_start, cfg->mtd_step);
    } else {
      const Cpa& c = std::get<Cpa>(attack);
      if (c.compute_mtd) plan_mtd(c.mtd_start, c.mtd_step);
    }
    if (rank_step > 0)
      for (std::size_t n = rank_step; n < total_; n += rank_step)
        checkpoints_.push_back({n, /*rank=*/true, /*mtd=*/false});
    for (std::size_t n : mtd_points_)
      checkpoints_.push_back({n, /*rank=*/false, /*mtd=*/true});
    // Sort the union of the two grids and coalesce coinciding points so
    // each prefix is probed once with the merged flags.
    std::sort(checkpoints_.begin(), checkpoints_.end(),
              [](const Checkpoint& a, const Checkpoint& b) { return a.n < b.n; });
    std::size_t out = 0;
    for (const Checkpoint& cp : checkpoints_) {
      if (out > 0 && checkpoints_[out - 1].n == cp.n) {
        checkpoints_[out - 1].rank |= cp.rank;
        checkpoints_[out - 1].mtd |= cp.mtd;
      } else {
        checkpoints_[out++] = cp;
      }
    }
    checkpoints_.resize(out);
  }

  /// Feed traces [first, first + segment.size()) of the campaign.
  void feed(const dpa::TraceSet& segment, std::size_t first) {
    std::size_t lo = 0;  // row within the segment
    while (next_cp_ < checkpoints_.size() &&
           checkpoints_[next_cp_].n <= first + segment.size()) {
      const Checkpoint& cp = checkpoints_[next_cp_];
      state_.add_rows(segment, lo, cp.n - first);
      lo = cp.n - first;
      probe(cp);
      ++next_cp_;
    }
    state_.add_rows(segment, lo, segment.size());
  }

  /// Checkpoint prefixes as absolute cut positions for the block-fold
  /// ingest (WorkerPool::acquire_sharded_range's extra_cuts): cutting
  /// the block partition at every checkpoint guarantees each probe
  /// fires at exactly its trace count — a checkpoint can end a block
  /// but never fall inside one.
  std::vector<std::size_t> checkpoint_cuts() const {
    std::vector<std::size_t> cuts;
    cuts.reserve(checkpoints_.size());
    for (const Checkpoint& cp : checkpoints_) cuts.push_back(cp.n);
    return cuts;
  }

  /// Block-fold variant of feed(): probe any degenerate prefix-0
  /// checkpoints before the first block commits (feed() would have
  /// probed them before its first row; a block commit only fires after
  /// a whole block merged).
  void probe_prefix_zero() {
    while (next_cp_ < checkpoints_.size() && checkpoints_[next_cp_].n == 0) {
      probe(checkpoints_[next_cp_]);
      ++next_cp_;
    }
  }

  /// Block-fold variant of feed(): merge block `block` (covering traces
  /// [first, first + count)) into the master accumulator and fire every
  /// checkpoint falling at its end. Must be called in ascending block
  /// order — acquire_sharded_range's commit contract.
  void commit_block(detail::BlockMerge& blocks, std::size_t block,
                    std::size_t first, std::size_t count) {
    blocks.merge_into(block, state_);
    while (next_cp_ < checkpoints_.size() &&
           checkpoints_[next_cp_].n <= first + count) {
      probe(checkpoints_[next_cp_]);
      ++next_cp_;
    }
  }

  /// Final attack outcome + the closing rank-trajectory point.
  AttackOutcome finish(std::size_t rank_step,
                       std::vector<RankPoint>& trajectory) {
    AttackOutcome out = state_.outcome();
    if (state_.mtd_enabled() && out.true_key_rank == 0) out.mtd = mtd_.value();
    trajectory = std::move(trajectory_);
    if (rank_step > 0) trajectory.push_back({total_, out.true_key_rank});
    return out;
  }

 private:
  struct Checkpoint {
    std::size_t n = 0;
    bool rank = false;
    bool mtd = false;
  };

  void plan_mtd(std::size_t start, std::size_t step) {
    for (std::size_t n = start; n <= total_; n += step)
      mtd_points_.push_back(n);
  }

  void probe(const Checkpoint& cp) {
    if (cp.rank) trajectory_.push_back({cp.n, state_.rank_now()});
    if (cp.mtd) mtd_.probe(state_.mtd_success_now(), cp.n);
  }

  detail::AttackState state_;
  std::size_t total_;
  std::vector<Checkpoint> checkpoints_;
  std::vector<std::size_t> mtd_points_;
  std::size_t next_cp_ = 0;
  dpa::MtdScan mtd_;
  std::vector<RankPoint> trajectory_;
};

}  // namespace

void Campaign::validate(const TargetInstance& inst) const {
  const bool attacking = !std::holds_alternative<std::monostate>(attack_);
  if (attacking && num_traces_ == 0)
    throw std::invalid_argument(
        "Campaign: an attack needs traces(n > 0) to analyse");
  if (attacking && inst.num_guesses == 0)
    throw std::invalid_argument("Campaign: target '" + inst.name +
                                "' has no keyed intermediate to attack");
  if (std::holds_alternative<Cpa>(attack_) && !inst.leakage)
    throw std::invalid_argument("Campaign: target '" + inst.name +
                                "' has no leakage model for CPA");
  if (std::holds_alternative<Dpa>(attack_) && inst.selection_bits.empty())
    throw std::invalid_argument("Campaign: target '" + inst.name +
                                "' has no selection functions for DPA");
  if (num_traces_ > 0 && !inst.simulatable && !source_)
    throw std::invalid_argument(
        "Campaign: target '" + inst.name +
        "' is flow-only; acquisition needs a custom source()");
  if (num_traces_ > 0 && inst.simulatable && !inst.stimulus && !source_)
    throw std::invalid_argument("Campaign: target '" + inst.name +
                                "' provides no stimulus");
  if (rank_step_ > 0 && !attacking)
    throw std::invalid_argument(
        "Campaign: rank_trajectory() needs an attack() to rank with");
  const bool mtd_step_zero =
      (std::holds_alternative<Dpa>(attack_) && std::get<Dpa>(attack_).compute_mtd &&
       std::get<Dpa>(attack_).mtd_step == 0) ||
      (std::holds_alternative<Cpa>(attack_) && std::get<Cpa>(attack_).compute_mtd &&
       std::get<Cpa>(attack_).mtd_step == 0);
  if (mtd_step_zero)
    throw std::invalid_argument(
        "Campaign: compute_mtd needs mtd_step > 0 (the prefix grid must "
        "advance)");
  if (fused_chunk_ > 0 && !attacking)
    throw std::invalid_argument(
        "Campaign: fused() discards traces, so it needs an attack() to "
        "stream them into");
  if (sharded_ingest_ > 0 && fused_chunk_ == 0)
    throw std::invalid_argument(
        "Campaign: sharded_ingest() folds trace blocks into the streaming "
        "accumulators — it needs fused()");
  if (faults_ && source_)
    throw std::invalid_argument(
        "Campaign: faults() injects into the simulated netlist, which a "
        "custom source() bypasses — drop one of the two");
  if (faults_ && !inst.simulatable)
    throw std::invalid_argument(
        "Campaign: target '" + inst.name +
        "' is flow-only; faults() needs a simulatable netlist to inject "
        "into");
  if (faults_ && opt_.engine == sim::EngineKind::Batch)
    throw std::invalid_argument(
        "Campaign: faults() needs a scalar engine — the batch kernel "
        "cannot inject forces; drop faults() or use engine(Compiled / "
        "Reference)");
}

/// Sweep-shared acquisition state: one WorkerPool living across every
/// variant, plus the variant's live source (the pool holds clones of
/// it, so it must stay alive until the next rebind).
struct Campaign::PoolState {
  std::unique_ptr<TraceSource> src;
  std::optional<WorkerPool> pool;
};

CampaignResult Campaign::run() const {
  const auto t_run = std::chrono::steady_clock::now();
  if (!target_.valid())
    throw std::invalid_argument("Campaign: no target set");
  TargetInstance inst = target_.build(key_);
  validate(inst);
  return run_stages(std::move(inst), recipe_ ? &*recipe_ : nullptr, nullptr,
                    /*force_fused=*/false, t_run);
}

/// `t_run` is the moment the caller started (before target build), so
/// total_wall_ms keeps covering the whole campaign including netlist
/// construction.
CampaignResult Campaign::run_stages(
    TargetInstance inst, const xform::Recipe* recipe, PoolState* shared,
    bool force_fused, std::chrono::steady_clock::time_point t_run) const {
  CampaignResult res;
  res.target = inst.name;
  res.key = key_;

  // ---- design-flow stage ---------------------------------------------------
  if (flow_) res.flow = core::run_secure_flow(inst.nl, *flow_);
  for (const PrepareFn& fn : prepare_) fn(inst.nl);

  // ---- countermeasure stage ------------------------------------------------
  if (recipe != nullptr) {
    res.recipe = recipe->name;
    res.xform = recipe->pipeline.run(inst.nl);
  }

  res.criteria = core::evaluate_criterion(inst.nl);
  res.max_da = core::max_dA(res.criteria);
  res.mean_da = core::mean_dA(res.criteria);

  const bool attacking = !std::holds_alternative<std::monostate>(attack_);
  const std::size_t fused_chunk =
      fused_chunk_ > 0 ? fused_chunk_
                       : (force_fused && attacking ? std::size_t{1024} : 0);

  // ---- acquisition + analysis ----------------------------------------------
  if (num_traces_ > 0) {
    std::unique_ptr<TraceSource> owned_src =
        source_ ? source_(inst, opt_)
        : opt_.engine == sim::EngineKind::Batch
            ? std::unique_ptr<TraceSource>(std::make_unique<
                  BatchSimTraceSource>(inst.nl, inst.env, inst.stimulus, opt_))
            : std::make_unique<SimTraceSource>(inst.nl, inst.env,
                                               inst.stimulus, opt_);
    // Worker clones (per-thread simulators + scratch) are campaign
    // state: created once and persistent across every segment the
    // acquisition below runs. A sweep hands in its own PoolState so the
    // pool (and its scratch slots) persist across variants; the clones
    // are rebound to this variant's source.
    const auto threads = static_cast<unsigned>(
        std::min<std::size_t>(threads_ == 0 ? 1 : threads_, num_traces_));
    std::optional<WorkerPool> local_pool;
    WorkerPool* pool_ptr = nullptr;
    if (shared != nullptr) {
      shared->src = std::move(owned_src);
      if (!shared->pool) {
        shared->pool.emplace(*shared->src, threads);
      } else {
        shared->pool->rebind(*shared->src);
      }
      pool_ptr = &*shared->pool;
    } else {
      local_pool.emplace(*owned_src, threads);
      pool_ptr = &*local_pool;
    }
    WorkerPool& pool = *pool_ptr;
    if (fused_chunk > 0) {
      // Fused mode: each acquired segment streams into the attack
      // accumulators and is discarded — O(chunk + guesses·samples)
      // memory for any trace budget. Analysis time is measured around
      // the feed/finish calls and subtracted from the stage total, so
      // acquisition.wall_ms and attack->wall_ms partition the fused
      // stage instead of double-counting it.
      StreamingAnalysis analysis(attack_, inst, rank_step_, num_traces_);
      // acquire_chunked's wall clock covers acquisition + feeds; only
      // the feed share is subtracted back out. finish() runs after the
      // stage clock stops and is attributed to the attack alone.
      double feed_ms = 0.0;
      if (sharded_ingest_ > 0) {
        // Block-fold ingest: workers fold their own blocks into pooled
        // partial accumulators in parallel with acquisition; the
        // serialized ascending-order commit merges each partial into
        // the master and fires the rank/MTD probes at exactly their
        // trace counts (checkpoint prefixes are block cuts). feed_ms
        // only counts the commit side — the per-block folds overlap
        // acquisition on the worker threads, so they are already part
        // of (and hidden inside) the acquisition wall clock.
        detail::BlockMerge blocks(attack_, inst);
        analysis.probe_prefix_zero();
        WorkerPool::ShardedIngest si;
        si.ingest = [&](unsigned, std::size_t block,
                        const dpa::TraceSet& segment, std::size_t) {
          blocks.ingest(block, segment);
        };
        si.commit = [&](std::size_t block, const dpa::TraceSet& segment,
                        std::size_t first) {
          const auto t_feed = std::chrono::steady_clock::now();
          analysis.commit_block(blocks, block, first, segment.size());
          feed_ms += ms_since(t_feed);
        };
        pool.acquire_sharded_range(0, num_traces_, seed_, sharded_ingest_,
                                   analysis.checkpoint_cuts(), si,
                                   &res.acquisition);
      } else {
        pool.acquire_chunked(
            num_traces_, seed_, fused_chunk,
            [&](const dpa::TraceSet& segment, std::size_t first) {
              const auto t_feed = std::chrono::steady_clock::now();
              analysis.feed(segment, first);
              feed_ms += ms_since(t_feed);
            },
            &res.acquisition);
      }
      const auto t_finish = std::chrono::steady_clock::now();
      AttackOutcome out = analysis.finish(rank_step_, res.rank_trajectory);
      out.wall_ms = feed_ms + ms_since(t_finish);
      res.acquisition.wall_ms = std::max(0.0, res.acquisition.wall_ms - feed_ms);
      res.acquisition.traces_per_s =
          res.acquisition.wall_ms > 0.0
              ? 1e3 * static_cast<double>(num_traces_) / res.acquisition.wall_ms
              : 0.0;
      res.attack = std::move(out);
    } else {
      res.traces = pool.acquire(num_traces_, seed_, &res.acquisition);
      if (attacking) {
        const auto t_attack = std::chrono::steady_clock::now();
        StreamingAnalysis analysis(attack_, inst, rank_step_,
                                   res.traces.size());
        analysis.feed(res.traces, 0);
        AttackOutcome out = analysis.finish(rank_step_, res.rank_trajectory);
        out.wall_ms = ms_since(t_attack);
        res.attack = std::move(out);
      }
    }
    if (shared != nullptr) {
      // This variant's netlist dies with this call (moved into the
      // result below); a SimTraceSource points into it, so drop the
      // source and the pool's clones now — the pool keeps only its
      // netlist-independent scratch slots until the next rebind.
      shared->pool->unbind();
      shared->src.reset();
    }
  }

  // ---- fault-resilience probe ----------------------------------------------
  // Runs on the as-attacked netlist (post-flow, post-prepare,
  // post-recipe) and must precede the move below — the probe's
  // simulators point into inst.nl.
  if (faults_) {
    FaultCampaignOptions fo = *faults_;
    fo.delays = opt_.delays;
    fo.engine = opt_.engine;
    fo.scheduler = opt_.scheduler;
    res.faults =
        run_fault_campaign(inst, key_, fo, seed_, threads_ == 0 ? 1 : threads_);
  }

  res.nl = std::move(inst.nl);
  res.total_wall_ms = ms_since(t_run);
  return res;
}

namespace {

/// Campaign-configuration fingerprint: ties a shard checkpoint to one
/// (target, key, seed, budget, shard geometry, attack, trace physics)
/// tuple. Engine, scheduler, thread count, and checkpoint interval are
/// deliberately excluded — none of them changes a single trace value
/// (the determinism contract of trace_source.hpp), so a campaign may
/// resume on a different engine or commit cadence; the shard stream
/// digest remains the arbiter of trace identity.
/// `ingest_block` is ShardedOptions::ingest_block_traces. It enters the
/// fingerprint ONLY when non-zero: the block-fold changes the
/// accumulator's FP reduction order, so its checkpoints must never be
/// adopted by a serial run (or by a run with a different block width) —
/// while every pre-existing serial fingerprint stays byte-identical.
std::uint64_t config_fingerprint(const TargetInstance& inst, std::uint64_t key,
                                 std::uint64_t seed, std::size_t num_traces,
                                 std::size_t shards, const AttackConfig& attack,
                                 const SimTraceSourceOptions& opt,
                                 std::size_t ingest_block) {
  util::Sha256 h;
  const auto str = [&](std::string_view s) {
    h.update_u64(s.size());
    h.update(s.data(), s.size());
  };
  const auto f64 = [&](double v) { h.update(&v, sizeof(v)); };
  str("qdi-sharded-campaign-v1");
  str(inst.name);
  h.update_u64(key);
  h.update_u64(seed);
  h.update_u64(num_traces);
  h.update_u64(shards);
  h.update_u64(inst.num_guesses);
  if (const Dpa* d = std::get_if<Dpa>(&attack)) {
    str("dpa");
    h.update_u64(d->bits.size());
    for (int b : d->bits) h.update_u64(static_cast<std::uint64_t>(b));
    h.update_u64(inst.selection_bits.size());
  } else {
    str("cpa");
  }
  // Trace physics: any change alters the sample values themselves, so
  // sums from an old configuration must never merge into a new one.
  f64(opt.delays.base_ps);
  f64(opt.delays.per_input_ps);
  f64(opt.delays.per_ff_ps);
  f64(opt.delays.slew_base_ps);
  f64(opt.delays.slew_per_ff_ps);
  f64(opt.power.vdd);
  f64(opt.power.sample_period_ps);
  f64(opt.power.cpar_ff);
  f64(opt.power.csc_ff);
  f64(opt.power.rise_weight);
  f64(opt.power.fall_weight);
  f64(opt.power.noise_sigma_ua);
  f64(opt.start_jitter_ps);
  if (ingest_block > 0) {
    str("block-fold-ingest");
    h.update_u64(ingest_block);
  }
  const std::array<std::uint8_t, 32> d = h.digest();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(d[static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

}  // namespace

ShardedResult Campaign::sharded(ShardedOptions opt) const {
  const auto t_run = std::chrono::steady_clock::now();
  if (!target_.valid())
    throw std::invalid_argument("Campaign: no target set");
  if (std::holds_alternative<std::monostate>(attack_))
    throw std::invalid_argument(
        "Campaign: sharded() streams into attack accumulators — configure "
        "attack(Dpa) or attack(Cpa)");
  if (num_traces_ == 0)
    throw std::invalid_argument("Campaign: sharded() needs traces(n > 0)");
  if (opt.checkpoint_dir.empty())
    throw std::invalid_argument(
        "Campaign: sharded() needs a checkpoint_dir for its durable state");
  if (faults_)
    throw std::invalid_argument(
        "Campaign: sharded() does not run the faults() probe — run it as a "
        "separate campaign over the same target");
  if (rank_step_ > 0)
    throw std::invalid_argument(
        "Campaign: sharded() probes the rank trajectory at shard merge "
        "boundaries; drop rank_trajectory()");
  TargetInstance inst = target_.build(key_);
  validate(inst);

  // Same victim-preparation stages as run_stages: the shard runtime
  // attacks exactly the netlist a fused run() would attack.
  if (flow_) core::run_secure_flow(inst.nl, *flow_);
  for (const PrepareFn& fn : prepare_) fn(inst.nl);
  if (recipe_) recipe_->pipeline.run(inst.nl);

  const std::unique_ptr<TraceSource> src =
      source_ ? source_(inst, opt_)
      : opt_.engine == sim::EngineKind::Batch
          ? std::unique_ptr<TraceSource>(std::make_unique<BatchSimTraceSource>(
                inst.nl, inst.env, inst.stimulus, opt_))
          : std::make_unique<SimTraceSource>(inst.nl, inst.env, inst.stimulus,
                                             opt_);

  const std::size_t shards =
      plan_shards(num_traces_, opt.shards).size();  // after clamping
  CoordinatorConfig cfg;
  cfg.inst = &inst;
  cfg.attack = &attack_;
  cfg.primary = src.get();
  cfg.fingerprint = config_fingerprint(inst, key_, seed_, num_traces_, shards,
                                       attack_, opt_, opt.ingest_block_traces);
  cfg.seed = seed_;
  cfg.num_traces = num_traces_;
  cfg.threads = static_cast<unsigned>(
      std::min<std::size_t>(threads_ == 0 ? 1 : threads_, num_traces_));
  opt.shards = shards;
  Coordinator coordinator(cfg, std::move(opt));
  ShardedResult res = coordinator.run();
  res.key = key_;
  res.total_wall_ms = ms_since(t_run);
  return res;
}

SweepResult Campaign::sweep(const std::vector<xform::Recipe>& recipes) const {
  if (recipes.empty())
    throw std::invalid_argument("Campaign: sweep() needs at least one recipe");
  if (!target_.valid())
    throw std::invalid_argument("Campaign: no target set");
  if (recipe_)
    throw std::invalid_argument(
        "Campaign: sweep() and recipe() both set the countermeasure stage — "
        "pass every variant (including the recipe() one) in the sweep list");

  SweepResult out;
  out.variants.reserve(recipes.size());
  PoolState shared;
  // Variants whose pipeline never alters connectivity all share the base
  // netlist's symmetry scan (every variant rebuilds the same instance
  // and runs the same flow/prepare stages) — computed at most once.
  std::optional<std::size_t> base_asymmetric;
  for (const xform::Recipe& recipe : recipes) {
    // Each variant rebuilds the victim through the target's
    // parameterized builder, so recipes never see each other's edits.
    const auto t_variant = std::chrono::steady_clock::now();
    TargetInstance inst = target_.build(key_);
    validate(inst);
    SweepVariant variant;
    variant.recipe = recipe.name;
    variant.result = run_stages(std::move(inst), &recipe, &shared,
                                /*force_fused=*/true, t_variant);
    // Post-transform structural metrics: the symmetry scan next to the
    // attack outcome — the paper's designer-vs-attacker comparison.
    // When the recipe's cone-balance pass already re-verified (its
    // metric_after is this very count) and every later pass declared
    // itself structure-preserving, reuse the count instead of scanning
    // the netlist a third time (multi-second on aes_core-scale targets).
    variant.channels = variant.result.nl.num_channels();
    const xform::PipelineReport* xf =
        variant.result.xform ? &*variant.result.xform : nullptr;
    const xform::PassReport* verified_count = nullptr;
    bool structure_untouched = true;
    if (xf != nullptr) {
      for (const xform::PassReport& p : xf->passes) {
        if (p.pass == "cone-balance" && p.verified)
          verified_count = &p;
        else if (!p.structure_preserving)
          verified_count = nullptr;  // may have altered connectivity
        structure_untouched &= p.structure_preserving;
      }
    }
    if (verified_count != nullptr) {
      variant.asymmetric_channels =
          static_cast<std::size_t>(verified_count->metric_after);
    } else if (structure_untouched && base_asymmetric) {
      variant.asymmetric_channels = *base_asymmetric;
    } else {
      variant.asymmetric_channels = netlist::count_asymmetric_channels(
          netlist::Graph(variant.result.nl));
      if (structure_untouched) base_asymmetric = variant.asymmetric_channels;
    }
    out.variants.push_back(std::move(variant));
  }
  return out;
}

const SweepVariant* SweepResult::find(std::string_view recipe) const noexcept {
  for (const SweepVariant& v : variants)
    if (v.recipe == recipe) return &v;
  return nullptr;
}

util::Table SweepResult::table() const {
  util::Table t({"recipe", "cells+", "cap+fF", "asym ch", "max dA", "rank",
                 "MTD", "bias peak", "best score", "faults d/m/e"});
  for (const SweepVariant& v : variants) {
    const FaultSummary* fs = v.faults();
    const std::string fault_cell =
        fs != nullptr ? std::to_string(fs->deadlock) + "/" +
                            std::to_string(fs->masked) + "/" +
                            std::to_string(fs->exploitable)
                      : "-";
    const std::size_t cells_added =
        v.result.xform ? v.result.xform->cells_added() : 0;
    const double cap_added =
        v.result.xform ? v.result.xform->cap_added_ff() : 0.0;
    t.add_row({v.recipe, std::to_string(cells_added),
               t.format_double(cap_added),
               std::to_string(v.asymmetric_channels) + "/" +
                   std::to_string(v.channels),
               t.format_double(v.result.max_da),
               v.result.attack
                   ? std::to_string(v.result.attack->true_key_rank)
                   : "-",
               v.result.attack ? std::to_string(v.result.attack->mtd) : "-",
               // The known-key bias is a DPA-side quantity; printing the
               // 0.0 default for a CPA sweep would read as "no bias" on
               // a leaking variant.
               v.result.attack && v.result.attack->kind == "dpa"
                   ? t.format_double(v.bias_peak())
                   : "-",
               v.result.attack ? t.format_double(v.result.attack->best_score)
                               : "-",
               fault_cell});
  }
  return t;
}

}  // namespace qdi::campaign
