#include "qdi/campaign/campaign.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace qdi::campaign {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Resolve the Dpa bit list against the target's selection functions.
std::vector<dpa::SelectionFn> resolve_bits(const Dpa& cfg,
                                           const TargetInstance& inst) {
  std::vector<dpa::SelectionFn> bits;
  if (cfg.bits.empty()) {
    bits = inst.selection_bits;
  } else {
    for (int b : cfg.bits) {
      if (b < 0 || static_cast<std::size_t>(b) >= inst.selection_bits.size())
        throw std::invalid_argument(
            "Campaign: Dpa bit index out of range for target '" + inst.name +
            "'");
      bits.push_back(inst.selection_bits[static_cast<std::size_t>(b)]);
    }
  }
  return bits;
}

}  // namespace

void Campaign::validate(const TargetInstance& inst) const {
  const bool attacking = !std::holds_alternative<std::monostate>(attack_);
  if (attacking && num_traces_ == 0)
    throw std::invalid_argument(
        "Campaign: an attack needs traces(n > 0) to analyse");
  if (attacking && inst.num_guesses == 0)
    throw std::invalid_argument("Campaign: target '" + inst.name +
                                "' has no keyed intermediate to attack");
  if (std::holds_alternative<Cpa>(attack_) && !inst.leakage)
    throw std::invalid_argument("Campaign: target '" + inst.name +
                                "' has no leakage model for CPA");
  if (std::holds_alternative<Dpa>(attack_) && inst.selection_bits.empty())
    throw std::invalid_argument("Campaign: target '" + inst.name +
                                "' has no selection functions for DPA");
  if (num_traces_ > 0 && !inst.simulatable && !source_)
    throw std::invalid_argument(
        "Campaign: target '" + inst.name +
        "' is flow-only; acquisition needs a custom source()");
  if (num_traces_ > 0 && inst.simulatable && !inst.stimulus && !source_)
    throw std::invalid_argument("Campaign: target '" + inst.name +
                                "' provides no stimulus");
  if (rank_step_ > 0 && !attacking)
    throw std::invalid_argument(
        "Campaign: rank_trajectory() needs an attack() to rank with");
}

CampaignResult Campaign::run() const {
  const auto t_run = std::chrono::steady_clock::now();
  if (!target_.valid())
    throw std::invalid_argument("Campaign: no target set");

  TargetInstance inst = target_.build(key_);
  validate(inst);

  CampaignResult res;
  res.target = inst.name;
  res.key = key_;

  // ---- design-flow stage ---------------------------------------------------
  if (flow_) res.flow = core::run_secure_flow(inst.nl, *flow_);
  for (const PrepareFn& fn : prepare_) fn(inst.nl);
  res.criteria = core::evaluate_criterion(inst.nl);
  res.max_da = core::max_dA(res.criteria);
  res.mean_da = core::mean_dA(res.criteria);

  // ---- acquisition stage ---------------------------------------------------
  if (num_traces_ > 0) {
    std::unique_ptr<TraceSource> src =
        source_ ? source_(inst, opt_)
                : std::make_unique<SimTraceSource>(inst.nl, inst.env,
                                                   inst.stimulus, opt_);
    res.traces =
        acquire_batch(*src, num_traces_, seed_, threads_, &res.acquisition);
  }

  // ---- analysis stage ------------------------------------------------------
  if (!std::holds_alternative<std::monostate>(attack_)) {
    const auto t_attack = std::chrono::steady_clock::now();
    AttackOutcome out;

    if (const Dpa* cfg = std::get_if<Dpa>(&attack_)) {
      const std::vector<dpa::SelectionFn> bits = resolve_bits(*cfg, inst);
      const dpa::KeyRecoveryResult rec =
          bits.size() == 1
              ? dpa::recover_key(res.traces, bits[0], inst.num_guesses, 0,
                                 cfg->window)
              : dpa::recover_key_multibit(res.traces, bits, inst.num_guesses,
                                          0, cfg->window);
      out.kind = "dpa";
      out.guess_scores = rec.guess_peak;
      out.best_guess = rec.best_guess;
      out.best_score = rec.best_peak;
      out.second_score = rec.second_peak;
      out.margin = rec.margin();
      out.true_key_rank = rec.rank_of(inst.true_guess);

      const dpa::BiasResult known =
          dpa::dpa_bias(res.traces, bits[0], inst.true_guess, 0, cfg->window);
      out.known_key_bias_peak = known.peak;
      out.known_key_bias_integral = known.integrated;

      if (cfg->compute_mtd && out.true_key_rank == 0)
        out.mtd = dpa::measurements_to_disclosure(
            res.traces, bits[0], inst.num_guesses, inst.true_guess,
            cfg->mtd_start, cfg->mtd_step, cfg->window);

      if (rank_step_ > 0) {
        for (std::size_t n = rank_step_; n < res.traces.size();
             n += rank_step_) {
          const dpa::KeyRecoveryResult r =
              bits.size() == 1
                  ? dpa::recover_key(res.traces, bits[0], inst.num_guesses, n,
                                     cfg->window)
                  : dpa::recover_key_multibit(res.traces, bits,
                                              inst.num_guesses, n, cfg->window);
          res.rank_trajectory.push_back({n, r.rank_of(inst.true_guess)});
        }
        res.rank_trajectory.push_back({res.traces.size(), out.true_key_rank});
      }
    } else {
      const Cpa& ccfg = std::get<Cpa>(attack_);
      const dpa::CpaResult rec =
          dpa::cpa_attack(res.traces, inst.leakage, inst.num_guesses, 0,
                          ccfg.window_lo, ccfg.window_hi);
      out.kind = "cpa";
      out.guess_scores = rec.correlation;
      out.best_guess = rec.best_guess;
      out.best_score = rec.best_rho;
      out.second_score = rec.second_rho;
      out.margin = rec.margin();
      out.true_key_rank = rec.rank_of(inst.true_guess);

      if (rank_step_ > 0) {
        for (std::size_t n = rank_step_; n < res.traces.size();
             n += rank_step_) {
          const dpa::CpaResult r =
              dpa::cpa_attack(res.traces, inst.leakage, inst.num_guesses, n,
                              ccfg.window_lo, ccfg.window_hi);
          res.rank_trajectory.push_back({n, r.rank_of(inst.true_guess)});
        }
        res.rank_trajectory.push_back({res.traces.size(), out.true_key_rank});
      }
    }

    out.wall_ms = ms_since(t_attack);
    res.attack = std::move(out);
  }

  res.nl = std::move(inst.nl);
  res.total_wall_ms = ms_since(t_run);
  return res;
}

}  // namespace qdi::campaign
