#include "qdi/campaign/fault_campaign.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace qdi::campaign {

namespace {

/// Wire format of a classified run through AcquiredTrace (the WorkerPool
/// scratch type): fault_class packs the class in the low nibble and the
/// stall phase above it; ciphertext carries the faulty output bytes
/// followed by the golden output bytes. Encoded in FaultTraceSource::
/// acquire_into, decoded in run_fault_campaign — nowhere else.
int encode_class(FaultClass cls, sim::HandshakePhase phase) noexcept {
  return static_cast<int>(cls) | (static_cast<int>(phase) << 4);
}
FaultClass decode_class(int v) noexcept {
  return static_cast<FaultClass>(v & 0xf);
}
sim::HandshakePhase decode_phase(int v) noexcept {
  return static_cast<sim::HandshakePhase>((v >> 4) & 0x7);
}

/// Pack decoded 1-of-2 channel outputs LSB-first, 8 channels per byte
/// (same convention as SimTraceSource ciphertexts). Invalid channels
/// (-1) pack as 0 — callers only read the bytes of valid runs.
void pack_outputs(const std::vector<int>& outputs, std::size_t num_channels,
                  std::vector<std::uint8_t>& out) {
  const std::size_t bytes = (num_channels + 7) / 8;
  const std::size_t base = out.size();
  out.resize(base + bytes, 0);
  for (std::size_t b = 0; b < outputs.size() && b < num_channels; ++b)
    if (outputs[b] == 1)
      out[base + b / 8] |= static_cast<std::uint8_t>(1u << (b % 8));
}

/// Fault runs expect stalls and overruns; strict-mode warnings and the
/// period throw would turn every deadlock into noise.
sim::EnvSpec tolerant(sim::EnvSpec e) {
  e.strict = false;
  return e;
}

/// One (net, kind, time) combination of the sweep grid.
struct Injection {
  netlist::NetId net = netlist::kNoNet;
  sim::FaultKind kind = sim::FaultKind::StuckAt0;
  double t_offset_ps = 0.0;
};

/// Immutable sweep plan shared by every worker clone.
struct FaultPlan {
  std::vector<Injection> injections;
  std::size_t repeats = 1;
  double glitch_ps = 200.0;
  StimulusFn stimulus;
};

/// TraceSource that runs one classified injection per request index:
/// injection index/repeats, plaintext stream index%repeats. Each run
/// simulates the fault-free cycle first (the golden ciphertext an
/// attacker is assumed to know), rewinds to the post-reset epoch, and
/// replays the identical cycle with the fault armed — so golden and
/// faulty runs differ in nothing but the injection, and the comparison
/// is exact, not statistical.
class FaultTraceSource final : public TraceSource {
 public:
  FaultTraceSource(const netlist::Netlist& nl, sim::EnvSpec env,
                   std::shared_ptr<const FaultPlan> plan,
                   const FaultCampaignOptions& opt)
      : nl_(&nl),
        spec_(tolerant(std::move(env))),
        plan_(std::move(plan)),
        compiled_(opt.engine == sim::EngineKind::Compiled
                      ? (opt.precompiled ? opt.precompiled
                                         : sim::compile(nl, opt.delays))
                      : nullptr),
        delays_(opt.delays),
        scheduler_(opt.scheduler),
        sim_(make_engine()),
        csim_(compiled_ ? static_cast<sim::CompiledSimulator*>(sim_.get())
                        : nullptr),
        env_(*sim_, spec_) {
    sim_->set_log_enabled(false);
  }

  FaultTraceSource(const FaultTraceSource&) = delete;
  FaultTraceSource& operator=(const FaultTraceSource&) = delete;

  void acquire_into(const TraceRequest& req, AcquiredTrace& out) override;

  std::unique_ptr<TraceSource> clone() const override {
    return std::unique_ptr<TraceSource>(
        new FaultTraceSource(*this, WorkerCloneTag{}));
  }

  std::string name() const override { return "fault-sim"; }

 private:
  struct WorkerCloneTag {};
  FaultTraceSource(const FaultTraceSource& other, WorkerCloneTag)
      : nl_(other.nl_),
        spec_(other.spec_),
        plan_(other.plan_),
        compiled_(other.compiled_),
        delays_(other.delays_),
        scheduler_(other.scheduler_),
        sim_(make_engine()),
        csim_(compiled_ ? static_cast<sim::CompiledSimulator*>(sim_.get())
                        : nullptr),
        env_(*sim_, spec_) {
    sim_->set_log_enabled(false);
  }

  std::unique_ptr<sim::SimEngine> make_engine() const {
    if (compiled_)
      return std::make_unique<sim::CompiledSimulator>(compiled_, scheduler_);
    return std::make_unique<sim::Simulator>(*nl_, delays_);
  }

  /// Return to the post-reset state. The epoch fast path is invalid
  /// after an oscillation abort left events in the queue (reinit_); a
  /// full reset + reset handshake re-establishes it.
  void rewind() {
    if (csim_ != nullptr && epoch_.has_value() && !reinit_) {
      csim_->restore_epoch(*epoch_);
      return;
    }
    sim_->reset_state();
    env_.apply_reset();
    if (csim_ != nullptr) epoch_ = csim_->save_epoch();
    reinit_ = false;
  }

  const netlist::Netlist* nl_;
  sim::EnvSpec spec_;
  std::shared_ptr<const FaultPlan> plan_;
  std::shared_ptr<const sim::CompiledNetlist> compiled_;
  sim::DelayModel delays_;
  sim::SchedulerKind scheduler_;
  std::unique_ptr<sim::SimEngine> sim_;
  sim::CompiledSimulator* csim_ = nullptr;
  sim::FourPhaseEnv env_;
  Stimulus stim_;
  sim::FourPhaseEnv::CycleResult cyc_;
  std::vector<int> golden_;
  std::optional<sim::CompiledSimulator::Epoch> epoch_;
  bool reinit_ = false;
};

void FaultTraceSource::acquire_into(const TraceRequest& req,
                                    AcquiredTrace& out) {
  const std::size_t inj_idx = req.index / plan_->repeats;
  const std::size_t rep = req.index % plan_->repeats;
  const Injection& inj = plan_->injections.at(inj_idx);

  // Domain-tagged stream: disjoint from power acquisition's
  // split_stream(seed, index) even at the same (seed, index).
  util::Rng rng = util::split_stream(req.seed, req.index, util::kFaultDomain);
  plan_->stimulus(rng, rep, stim_);

  // Golden run: the fault-free cycle under this plaintext.
  rewind();
  env_.send_into(stim_.values, cyc_);
  if (!cyc_.ok)
    throw std::runtime_error(
        "FaultCampaign: the fault-free cycle failed — the target cannot be "
        "classified against itself");
  golden_.assign(cyc_.outputs.begin(), cyc_.outputs.end());

  // Faulty run: identical cycle start, identical stimulus, one fault.
  rewind();
  sim::FaultInjector injector(*sim_);
  injector.arm({inj.net, inj.kind, inj.t_offset_ps, plan_->glitch_ps},
               env_.next_cycle_start());
  bool oscillated = false;
  try {
    env_.send_into(stim_.values, cyc_);
  } catch (const std::runtime_error&) {
    // Event-budget exhaustion: the faulted netlist oscillates instead of
    // settling. No stable output exists — a deadlock in the DoS sense.
    oscillated = true;
    reinit_ = true;
  }
  injector.disarm();

  FaultClass cls = FaultClass::Deadlock;
  sim::HandshakePhase phase = sim::HandshakePhase::None;
  bool valid = false;
  if (!oscillated) {
    valid = !cyc_.outputs.empty();
    for (int v : cyc_.outputs) valid &= v >= 0;
    if (valid && cyc_.outputs != golden_) {
      // Wrong ciphertext emitted with a valid encoding: the attacker
      // reads it at t_valid whether or not the handshake finishes.
      cls = FaultClass::Exploitable;
    } else if (valid && cyc_.handshake.completed) {
      cls = FaultClass::Masked;
    } else {
      phase = cyc_.handshake.stalled_phase;
    }
  }

  const std::size_t num_out = spec_.outputs.size();
  out.ciphertext.clear();
  pack_outputs(oscillated ? std::vector<int>{} : cyc_.outputs, num_out,
               out.ciphertext);
  pack_outputs(golden_, num_out, out.ciphertext);
  out.plaintext.assign(stim_.plaintext.begin(), stim_.plaintext.end());
  out.transitions = oscillated ? 0 : cyc_.transitions;
  out.glitches = sim_->glitch_count();
  out.fault_class = encode_class(cls, phase);
}

}  // namespace

FaultCampaignResult run_fault_campaign(const TargetInstance& inst,
                                       std::uint64_t key,
                                       const FaultCampaignOptions& opt,
                                       std::uint64_t seed, unsigned threads) {
  if (!inst.simulatable)
    throw std::invalid_argument("FaultCampaign: target '" + inst.name +
                                "' is flow-only and cannot be simulated");
  if (opt.engine == sim::EngineKind::Batch)
    throw std::invalid_argument(
        "FaultCampaign: EngineKind::Batch cannot inject forces — fault "
        "sweeps need the compiled or reference engine");
  if (!inst.stimulus)
    throw std::invalid_argument("FaultCampaign: target '" + inst.name +
                                "' provides no stimulus");
  if (inst.env.outputs.empty())
    throw std::invalid_argument("FaultCampaign: target '" + inst.name +
                                "' exposes no output channels to classify");
  if (opt.kinds.empty())
    throw std::invalid_argument("FaultCampaign: empty fault-kind list");
  if (opt.times_ps.empty())
    throw std::invalid_argument("FaultCampaign: empty injection-time list");
  if (opt.repeats == 0)
    throw std::invalid_argument("FaultCampaign: repeats must be > 0");

  std::vector<netlist::NetId> sites = opt.sites;
  if (sites.empty()) {
    sites = sim::fault_sites(inst.nl, opt.site_filters);
  } else {
    for (netlist::NetId n : sites)
      if (n >= inst.nl.num_nets())
        throw std::invalid_argument(
            "FaultCampaign: explicit site is not a net of the target");
  }
  if (sites.empty())
    throw std::invalid_argument(
        "FaultCampaign: no injection sites (filters matched nothing?)");
  if (opt.max_sites > 0 && sites.size() > opt.max_sites) {
    // Deterministic subsample: partial Fisher-Yates from the campaign's
    // domain stream, then re-sorted so run order stays site-ordered.
    util::Rng rng = util::split_stream(seed, sites.size(), util::kFaultDomain);
    for (std::size_t i = 0; i < opt.max_sites; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.below(sites.size() - i));
      std::swap(sites[i], sites[j]);
    }
    sites.resize(opt.max_sites);
    std::sort(sites.begin(), sites.end());
  }

  auto plan = std::make_shared<FaultPlan>();
  plan->repeats = opt.repeats;
  plan->glitch_ps = opt.glitch_ps;
  plan->stimulus = inst.stimulus;
  plan->injections.reserve(sites.size() * opt.kinds.size() *
                           opt.times_ps.size());
  for (netlist::NetId net : sites)
    for (sim::FaultKind kind : opt.kinds)
      for (double t : opt.times_ps)
        plan->injections.push_back({net, kind, t});

  FaultCampaignResult res;
  res.target = inst.name;
  res.key = key;
  res.sites = sites.size();
  res.injections = plan->injections.size();
  res.true_guess = inst.true_guess;
  const std::size_t runs = res.injections * opt.repeats;
  res.records.reserve(runs);

  const std::size_t out_bytes = (inst.env.outputs.size() + 7) / 8;
  FaultTraceSource src(inst.nl, inst.env, plan, opt);
  WorkerPool pool(src, threads == 0 ? 1 : threads);
  pool.acquire_each(
      runs, seed, /*chunk=*/256,
      [&](std::size_t index, const AcquiredTrace& rec) {
        const Injection& inj = plan->injections[index / opt.repeats];
        FaultRecord r;
        r.net = inj.net;
        r.kind = inj.kind;
        r.t_offset_ps = inj.t_offset_ps;
        r.plaintext = rec.plaintext.empty() ? 0 : rec.plaintext[0];
        r.faulty = rec.ciphertext[0];
        r.golden = rec.ciphertext[out_bytes];
        r.cls = decode_class(rec.fault_class);
        r.stalled_phase = decode_phase(rec.fault_class);
        switch (r.cls) {
          case FaultClass::Deadlock: ++res.summary.deadlock; break;
          case FaultClass::Masked: ++res.summary.masked; break;
          case FaultClass::Exploitable:
            ++res.summary.exploitable;
            // Multi-byte outputs would need a wider DfaPair; the slice
            // targets (the DFA-bearing ones) are single-byte.
            res.pairs.push_back({r.plaintext, r.golden, r.faulty});
            break;
        }
        ++res.summary.runs;
        res.records.push_back(r);
      });

  if (opt.run_dfa && inst.dfa && inst.num_guesses > 0 && !res.pairs.empty())
    res.dfa = dpa::dfa_attack(inst.dfa, res.pairs, inst.num_guesses);
  return res;
}

FaultCampaignResult FaultCampaign::run() const {
  if (!target_.valid())
    throw std::invalid_argument("FaultCampaign: no target set");
  TargetInstance inst = target_.build(key_);
  return run_fault_campaign(inst, key_, opt_, seed_, threads_);
}

util::Table FaultCampaignResult::table() const {
  util::Table t({"outcome", "runs", "share"});
  const auto share = [this, &t](std::size_t n) {
    return summary.runs > 0
               ? t.format_double(100.0 * static_cast<double>(n) /
                                 static_cast<double>(summary.runs)) +
                     "%"
               : std::string("-");
  };
  t.add_row({"deadlock", std::to_string(summary.deadlock),
             share(summary.deadlock)});
  t.add_row({"masked", std::to_string(summary.masked), share(summary.masked)});
  t.add_row({"exploitable", std::to_string(summary.exploitable),
             share(summary.exploitable)});
  return t;
}

}  // namespace qdi::campaign
