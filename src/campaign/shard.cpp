#include "qdi/campaign/shard.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "attack_state.hpp"
#include "qdi/util/sha256.hpp"

namespace qdi::campaign {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string digest_hex(const util::Sha256::State& s) {
  util::Sha256 h;
  h.restore(s);
  return h.hex();
}

/// 64-bit mix of a trace's raw sample bits. Pure integer arithmetic on
/// the IEEE-754 bit patterns, so it is bit-exact wherever the samples
/// are — any engine, scheduler, or thread count that produces the same
/// doubles produces the same fingerprint. Four independent lanes keep
/// the multiply chains out of each other's latency shadow; this has to
/// run per trace, next to ~100 us of simulation, so it is sized to
/// cost single-digit microseconds where hashing the full ~24 KB sample
/// vector through SHA-256 costs tens.
std::uint64_t sample_fingerprint(std::span<const double> s) noexcept {
  constexpr std::uint64_t kMul = 0x9e3779b97f4a7c15ull;
  std::uint64_t lane[4] = {0x243f6a8885a308d3ull, 0x13198a2e03707344ull,
                           0xa4093822299f31d0ull, 0x082efa98ec4e6c89ull};
  std::size_t i = 0;
  for (; i + 4 <= s.size(); i += 4) {
    for (std::size_t l = 0; l < 4; ++l) {
      std::uint64_t b;
      std::memcpy(&b, &s[i + l], sizeof b);
      lane[l] = (lane[l] ^ b) * kMul;
      lane[l] ^= lane[l] >> 29;
    }
  }
  for (; i < s.size(); ++i) {
    std::uint64_t b;
    std::memcpy(&b, &s[i], sizeof b);
    lane[i & 3] = (lane[i & 3] ^ b) * kMul;
    lane[i & 3] ^= lane[i & 3] >> 29;
  }
  std::uint64_t h = static_cast<std::uint64_t>(s.size());
  for (const std::uint64_t l : lane) {
    h = (h ^ l) * kMul;
    h ^= h >> 32;
  }
  return h;
}

/// Fold traces [first, first + segment.size()) into the stream digest:
/// global index, plaintext, and ciphertext enter the SHA-256 stream
/// verbatim (length-prefixed); the bulky sample vector enters as its
/// 64-bit fingerprint. The chain stays SHA-256, so two runs with equal
/// digests replayed the same index/stimulus sequence exactly and the
/// same sample data up to the fingerprint's 2^-64 per-trace accidental
/// collision odds — ample for its job of catching nondeterministic or
/// diverging replays (checkpoint RECORD integrity is separate and
/// stays a full SHA-256 seal of the payload).
void feed_stream_digest(util::Sha256& d, const dpa::TraceSet& segment,
                        std::uint64_t first) {
  for (std::size_t i = 0; i < segment.size(); ++i) {
    d.update_u64(first + i);
    const std::span<const std::uint8_t> pt = segment.plaintext(i);
    d.update_u64(pt.size());
    d.update(pt);
    const std::span<const std::uint8_t> ct = segment.ciphertext(i);
    d.update_u64(ct.size());
    d.update(ct);
    const std::span<const double> s = segment.trace(i).samples();
    d.update_u64(s.size());
    d.update_u64(sample_fingerprint(s));
  }
}

}  // namespace

std::vector<ShardSpec> plan_shards(std::size_t num_traces,
                                   std::size_t shards) {
  if (shards == 0) shards = 1;
  if (shards > num_traces && num_traces > 0) shards = num_traces;
  std::vector<ShardSpec> out;
  out.reserve(shards);
  const std::uint64_t base = num_traces / shards;
  const std::uint64_t extra = num_traces % shards;
  std::uint64_t lo = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::uint64_t len = base + (s < extra ? 1 : 0);
    out.push_back({s, lo, lo + len});
    lo += len;
  }
  return out;
}

// ---- ShardRunner ------------------------------------------------------------

ShardRunner::ShardRunner(const CoordinatorConfig& cfg,
                         const ShardedOptions& opt, ShardSpec spec)
    : cfg_(cfg), opt_(opt), spec_(spec) {}

ShardRunner::Outcome ShardRunner::run(std::atomic<std::uint64_t>* progress,
                                      const std::atomic<bool>* cancel) {
  detail::AttackState acc(*cfg_.attack, *cfg_.inst);
  util::Sha256 stream;
  std::uint64_t next = spec_.lo;
  Outcome out;

  // Adopt the newest durable checkpoint that decodes, matches this
  // campaign's identity, and restores cleanly. The restore is
  // parse-then-commit (dpa::StateError vetoes the generation without
  // touching `acc`), so a corrupt-but-well-framed record falls through
  // to the previous generation instead of poisoning the attempt.
  const auto recovered = recover_checkpoint(
      opt_.checkpoint_dir, spec_.shard, cfg_.fingerprint, spec_.lo, spec_.hi,
      [&](const ShardCheckpoint& c) {
        acc.restore(c.acc_state);
        stream.restore(c.digest);
      },
      &out.recovery_notes);
  if (recovered) {
    next = recovered->ckpt.next;
    out.resumed_from = recovered->file;
    if (next >= spec_.hi) {  // fully committed by an earlier run
      out.final_state = recovered->ckpt;
      return out;
    }
  }

  const std::unique_ptr<TraceSource> src = cfg_.primary->clone();
  WorkerPool pool(*src, cfg_.threads == 0 ? 1 : cfg_.threads);
  const std::size_t interval =
      opt_.checkpoint_interval == 0 ? 1 : opt_.checkpoint_interval;

  const auto check_cancel = [&] {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed))
      throw ShardStall("shard " + std::to_string(spec_.shard) +
                       ": stall watchdog cancelled the attempt");
  };

  // Block-fold ingest (opt-in): pooled partial accumulators shared
  // across every window of this attempt, so steady state allocates
  // nothing per block.
  std::optional<detail::BlockMerge> blocks;
  if (opt_.ingest_block_traces > 0) blocks.emplace(*cfg_.attack, *cfg_.inst);

  while (next < spec_.hi) {
    check_cancel();
    // Window boundaries only decide where commits land; accumulation is
    // strictly index-ordered either way (serial feed, or block commits
    // in ascending index order), so the partition is never observable
    // in the sums of its own mode.
    const std::uint64_t window_end =
        std::min<std::uint64_t>(spec_.hi, next + interval);
    if (blocks) {
      // Workers fold their blocks into pooled partials in parallel with
      // acquisition; the serialized ascending-order commit chains the
      // stream digest (trace-ordered, so bit-identical to the serial
      // path) and merges each partial into the shard accumulator.
      // Window boundaries are deterministic, so a resumed attempt
      // re-partitions the open window identically and stays
      // bit-identical to an uninterrupted block-fold run.
      WorkerPool::ShardedIngest si;
      si.ingest = [&](unsigned, std::size_t block,
                      const dpa::TraceSet& segment, std::size_t) {
        check_cancel();
        blocks->ingest(block, segment);
      };
      si.commit = [&](std::size_t block, const dpa::TraceSet& segment,
                      std::size_t first) {
        feed_stream_digest(stream, segment, first);
        blocks->merge_into(block, acc);
        if (progress != nullptr)
          progress->fetch_add(segment.size(), std::memory_order_relaxed);
        if (opt_.on_progress)
          opt_.on_progress(spec_.shard, first + segment.size());
      };
      pool.acquire_sharded_range(
          static_cast<std::size_t>(next),
          static_cast<std::size_t>(window_end - next), cfg_.seed,
          opt_.ingest_block_traces, {}, si);
    } else {
      pool.acquire_chunked_range(
          static_cast<std::size_t>(next),
          static_cast<std::size_t>(window_end - next), cfg_.seed,
          opt_.chunk_traces,
          [&](const dpa::TraceSet& segment, std::size_t first) {
            check_cancel();
            feed_stream_digest(stream, segment, first);
            acc.add_rows(segment, 0, segment.size());
            if (progress != nullptr)
              progress->fetch_add(segment.size(), std::memory_order_relaxed);
            if (opt_.on_progress)
              opt_.on_progress(spec_.shard, first + segment.size());
          });
    }
    next = window_end;
    ShardCheckpoint c;
    c.fingerprint = cfg_.fingerprint;
    c.shard = spec_.shard;
    c.lo = spec_.lo;
    c.hi = spec_.hi;
    c.next = next;
    c.digest = stream.save();
    c.acc_state = acc.serialize();
    commit_checkpoint(opt_.checkpoint_dir, c,
                      opt_.fsync_commits ? util::Durability::Fsync
                                         : util::Durability::RenameOnly);
    // The hook fires after the durable commit: a throw here models a
    // crash between commit and the next window — the resumed attempt
    // must pick up at exactly `next`.
    if (opt_.on_commit) opt_.on_commit(spec_.shard, next);
    if (next == spec_.hi) out.final_state = std::move(c);
  }
  return out;
}

// ---- Coordinator ------------------------------------------------------------

namespace {

/// Mutable supervision state of one dispatched shard.
struct Slot {
  ShardSpec spec;
  std::atomic<std::uint64_t> progress{0};
  std::atomic<bool> cancel{false};
  std::atomic<bool> running{false};
  ShardReport report;
  std::optional<ShardRunner::Outcome> outcome;
};

}  // namespace

Coordinator::Coordinator(CoordinatorConfig cfg, ShardedOptions opt)
    : cfg_(std::move(cfg)), opt_(std::move(opt)) {}

ShardedResult Coordinator::run() {
  const auto t0 = std::chrono::steady_clock::now();
  if (cfg_.inst == nullptr || cfg_.attack == nullptr ||
      cfg_.primary == nullptr)
    throw std::invalid_argument(
        "Coordinator: instance, attack, and primary source are required");
  if (std::holds_alternative<std::monostate>(*cfg_.attack))
    throw std::invalid_argument(
        "Coordinator: a sharded campaign needs an attack to accumulate");
  if (cfg_.num_traces == 0)
    throw std::invalid_argument("Coordinator: num_traces must be > 0");
  if (opt_.checkpoint_dir.empty())
    throw std::invalid_argument(
        "Coordinator: checkpoint_dir is required (a sharded campaign "
        "without durable state is just a slower fused run)");
  if (opt_.max_attempts == 0) opt_.max_attempts = 1;
  if (opt_.chunk_traces == 0) opt_.chunk_traces = 1;
  ensure_checkpoint_dir(opt_.checkpoint_dir);

  const std::vector<ShardSpec> specs =
      plan_shards(cfg_.num_traces, opt_.shards);
  std::vector<std::unique_ptr<Slot>> slots;
  slots.reserve(specs.size());
  for (const ShardSpec& s : specs) {
    auto slot = std::make_unique<Slot>();
    slot->spec = s;
    slots.push_back(std::move(slot));
  }

  // ---- dispatch -------------------------------------------------------------
  std::atomic<std::size_t> queue{0};
  std::atomic<std::size_t> finished{0};
  const auto work = [&] {
    for (;;) {
      const std::size_t idx = queue.fetch_add(1, std::memory_order_relaxed);
      if (idx >= slots.size()) return;
      Slot& slot = *slots[idx];
      for (unsigned attempt = 1; attempt <= opt_.max_attempts; ++attempt) {
        slot.report.attempts = attempt;
        if (attempt > 1 && opt_.backoff_ms > 0) {
          const unsigned shift = std::min(attempt - 2, 10u);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(opt_.backoff_ms << shift));
        }
        slot.cancel.store(false, std::memory_order_relaxed);
        // Artificial progress tick: a fresh attempt must restart the
        // watchdog's stall clock even if the previous one died wedged.
        slot.progress.fetch_add(1, std::memory_order_relaxed);
        ShardRunner runner(cfg_, opt_, slot.spec);
        slot.running.store(true, std::memory_order_release);
        try {
          ShardRunner::Outcome out = runner.run(&slot.progress, &slot.cancel);
          slot.running.store(false, std::memory_order_release);
          slot.outcome = std::move(out);
          slot.report.done = true;
          slot.report.error.clear();
          break;
        } catch (const ShardStall& e) {
          slot.running.store(false, std::memory_order_release);
          std::string msg = std::string("stall (phase ") +
                            sim::name(e.phase());
          if (!e.channel().empty()) msg += " on " + e.channel();
          msg += "): ";
          msg += e.what();
          slot.report.error = std::move(msg);
        } catch (const std::exception& e) {
          slot.running.store(false, std::memory_order_release);
          slot.report.error = e.what();
        }
      }
      finished.fetch_add(1, std::memory_order_release);
    }
  };

  // ---- stall watchdog -------------------------------------------------------
  std::thread watchdog;
  if (opt_.stall_timeout_ms > 0) {
    watchdog = std::thread([&] {
      std::vector<std::uint64_t> last(slots.size(), 0);
      std::vector<std::chrono::steady_clock::time_point> since(
          slots.size(), std::chrono::steady_clock::now());
      const auto poll = std::chrono::milliseconds(
          opt_.watchdog_poll_ms == 0 ? 1 : opt_.watchdog_poll_ms);
      while (finished.load(std::memory_order_acquire) < slots.size()) {
        std::this_thread::sleep_for(poll);
        const auto now = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < slots.size(); ++i) {
          Slot& slot = *slots[i];
          const std::uint64_t p =
              slot.progress.load(std::memory_order_relaxed);
          if (!slot.running.load(std::memory_order_acquire) || p != last[i]) {
            last[i] = p;
            since[i] = now;
            continue;
          }
          if (!slot.cancel.load(std::memory_order_relaxed) &&
              now - since[i] >
                  std::chrono::milliseconds(opt_.stall_timeout_ms)) {
            slot.report.wedged = true;
            slot.cancel.store(true, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      opt_.concurrency == 0 ? 1 : opt_.concurrency, slots.size()));
  std::vector<std::thread> crew;
  crew.reserve(workers > 0 ? workers - 1 : 0);
  for (unsigned w = 1; w < workers; ++w) crew.emplace_back(work);
  work();
  for (std::thread& t : crew) t.join();
  if (watchdog.joinable()) watchdog.join();

  // ---- merge ----------------------------------------------------------------
  // Shard states fold together in shard-id order — a deterministic
  // order, so the merged sums (and the boundary-granularity rank/MTD
  // trajectories probed along the way) are reproducible run to run.
  const auto t_merge = std::chrono::steady_clock::now();
  ShardedResult res;
  res.target = cfg_.inst->name;
  res.total_traces = cfg_.num_traces;
  detail::AttackState merged(*cfg_.attack, *cfg_.inst);
  dpa::MtdScan mtd;
  for (const std::unique_ptr<Slot>& sp : slots) {
    Slot& slot = *sp;
    ShardReport rep = slot.report;
    rep.shard = slot.spec.shard;
    rep.lo = slot.spec.lo;
    rep.hi = slot.spec.hi;
    rep.committed = slot.spec.lo;
    if (slot.outcome) {
      const ShardRunner::Outcome& out = *slot.outcome;
      rep.resumed_from = out.resumed_from;
      rep.recovery = out.recovery_notes;
      rep.committed = out.final_state.next;
      rep.digest_hex = digest_hex(out.final_state.digest);
      merged.merge_serialized(out.final_state.acc_state);
    } else {
      // Degraded shard: every attempt failed. Fall back to its last
      // durable checkpoint so the partial sums it DID commit still
      // count — the result reports honest partial coverage instead of
      // discarding paid-for traces.
      std::string notes;
      const auto rec = recover_checkpoint(
          opt_.checkpoint_dir, slot.spec.shard, cfg_.fingerprint,
          slot.spec.lo, slot.spec.hi,
          [&](const ShardCheckpoint& c) {
            // Veto un-restorable states with a twin; `merged` stays
            // untouched until the record is known good.
            detail::AttackState probe(*cfg_.attack, *cfg_.inst);
            probe.restore(c.acc_state);
          },
          &notes);
      rep.recovery = notes;
      if (rec) {
        rep.resumed_from = rec->file;
        rep.committed = rec->ckpt.next;
        rep.digest_hex = digest_hex(rec->ckpt.digest);
        if (rec->ckpt.next > slot.spec.lo)
          merged.merge_serialized(rec->ckpt.acc_state);
      }
    }
    const std::uint64_t contributed = rep.committed - rep.lo;
    if (contributed > 0) {
      res.covered += static_cast<std::size_t>(contributed);
      res.rank_trajectory.push_back({res.covered, merged.rank_now()});
      if (merged.mtd_enabled())
        mtd.probe(merged.mtd_success_now(), res.covered);
    }
    res.shards.push_back(std::move(rep));
  }
  if (res.covered > 0) {
    AttackOutcome out = merged.outcome();
    if (merged.mtd_enabled() && out.true_key_rank == 0) out.mtd = mtd.value();
    out.wall_ms = ms_since(t_merge);
    res.attack = std::move(out);
  }
  res.total_wall_ms = ms_since(t0);
  return res;
}

// ---- report -----------------------------------------------------------------

util::Table ShardedResult::table() const {
  util::Table t({"shard", "range", "committed", "attempts", "status",
                 "resumed", "digest", "error"});
  for (const ShardReport& s : shards) {
    std::string status = s.done ? "done"
                         : s.committed > s.lo ? "partial"
                                              : "failed";
    if (s.wedged) status += "+wedged";
    t.add_row({std::to_string(s.shard),
               "[" + std::to_string(s.lo) + ", " + std::to_string(s.hi) + ")",
               std::to_string(s.committed), std::to_string(s.attempts),
               status, s.resumed_from.empty() ? "-" : s.resumed_from,
               s.digest_hex.empty() ? "-" : s.digest_hex.substr(0, 12),
               s.error.empty() ? "-" : s.error});
  }
  return t;
}

}  // namespace qdi::campaign
